// Quickstart: bring up a simulated Aurora cluster, run transactions, and
// watch the consistency points advance.
//
//   $ ./quickstart
//
// What it shows:
//  * a 3-AZ cluster with one protection group (6 segments, 4/6 quorum),
//  * transactional puts/gets/scans through the writer,
//  * VCL/VDL advancing from asynchronous quorum acknowledgements alone —
//    no consensus round anywhere on the path.

#include <cstdio>

#include "src/core/cluster.h"

using namespace aurora;

int main() {
  core::AuroraOptions options;
  options.seed = 2024;
  options.num_pgs = 1;
  options.blocks_per_pg = 1 << 16;

  core::AuroraCluster cluster(options);
  Status st = cluster.StartBlocking();
  if (!st.ok()) {
    std::printf("bootstrap failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("cluster up: %zu storage nodes in %zu AZs, volume epoch %llu\n",
              cluster.storage_nodes().size(), options.num_azs,
              static_cast<unsigned long long>(
                  cluster.writer()->volume_epoch()));
  std::printf("protection group 0: %s\n\n",
              cluster.geometry().Pg(0).ToString().c_str());

  // --- Simple autocommit writes -------------------------------------------
  for (int i = 0; i < 5; ++i) {
    const std::string key = "user:" + std::to_string(1000 + i);
    st = cluster.PutBlocking(key, "balance=" + std::to_string(100 * i));
    std::printf("put %-12s -> %s   (vcl=%llu vdl=%llu)\n", key.c_str(),
                st.ToString().c_str(),
                static_cast<unsigned long long>(cluster.writer()->vcl()),
                static_cast<unsigned long long>(cluster.writer()->vdl()));
  }

  // --- A multi-statement transaction --------------------------------------
  auto* writer = cluster.writer();
  const TxnId txn = writer->Begin();
  std::printf("\ntxn %llu: transfer 50 from user:1000 to user:1001\n",
              static_cast<unsigned long long>(txn));
  bool ready = false;
  writer->Put(txn, "user:1000", "balance=-50", [&](Status s) {
    writer->Put(txn, "user:1001", "balance=150", [&](Status s2) {
      ready = s.ok() && s2.ok();
    });
  });
  cluster.RunUntil([&]() { return ready; });
  st = cluster.CommitBlocking(txn);
  std::printf("commit: %s (commit latency p50 so far: %lldus)\n",
              st.ToString().c_str(),
              static_cast<long long>(writer->commit_latency().P50()));

  // --- Reads and a range scan ---------------------------------------------
  auto value = cluster.GetBlocking("user:1001");
  std::printf("\nget user:1001 -> %s\n",
              value.ok() ? value->c_str() : value.status().ToString().c_str());

  bool scanned = false;
  writer->Scan(kInvalidTxn, "user:", "user:~", 10, [&](auto rows) {
    if (rows.ok()) {
      std::printf("scan user:* -> %zu rows:\n", rows->size());
      for (const auto& [k, v] : *rows) {
        std::printf("  %-12s = %s\n", k.c_str(), v.c_str());
      }
    }
    scanned = true;
  });
  cluster.RunUntil([&]() { return scanned; });

  // --- Peek at the storage fleet ------------------------------------------
  std::printf("\nstorage fleet after the workload:\n");
  for (const auto& node : cluster.storage_nodes()) {
    for (const auto& [id, segment] : node->segments()) {
      std::printf(
          "  segment %u (node %u, az %u): scl=%llu, %zu hot records, "
          "%llu bytes of versions\n",
          id, node->id(), node->az(),
          static_cast<unsigned long long>(segment->scl()),
          segment->hot_log().RecordCount(),
          static_cast<unsigned long long>(segment->TotalVersionBytes()));
    }
  }
  std::printf("\nno 2PC, no Paxos — just quorum writes and local "
              "bookkeeping. Done.\n");
  return 0;
}
