// Read scaling with shared-storage replicas (§3.2–§3.4).
//
//   $ ./read_scaling
//
// Spins up replicas against the SAME storage volume (no volume copy, no
// catch-up snapshot), runs a mixed workload, and shows: replica reads of
// committed data, snapshot isolation on the replica (an uncommitted writer
// transaction stays invisible, reverted via undo), VDL lag, and PGMRPL
// feedback that holds storage GC back for replica readers.

#include <cstdio>

#include "src/core/cluster.h"

using namespace aurora;

int main() {
  core::AuroraOptions options;
  options.seed = 987;
  options.blocks_per_pg = 1 << 16;
  core::AuroraCluster cluster(options);
  if (!cluster.StartBlocking().ok()) return 1;
  for (int i = 0; i < 50; ++i) {
    (void)cluster.PutBlocking("item" + std::to_string(i),
                              "stock=" + std::to_string(i));
  }

  std::printf("adding two read replicas (instant: durable state is "
              "shared, §3.2)\n");
  auto* r1 = cluster.AddReplica();
  auto* r2 = cluster.AddReplica();
  cluster.RunFor(300 * kMillisecond);
  std::printf("  writer vdl=%llu  r1 vdl=%llu  r2 vdl=%llu\n\n",
              static_cast<unsigned long long>(cluster.writer()->vdl()),
              static_cast<unsigned long long>(r1->vdl()),
              static_cast<unsigned long long>(r2->vdl()));

  // Replica point read.
  bool done = false;
  r1->Get("item7", [&](Result<std::string> v) {
    std::printf("replica 1 reads item7 -> %s\n",
                v.ok() ? v->c_str() : v.status().ToString().c_str());
    done = true;
  });
  cluster.RunUntil([&]() { return done; });

  // Snapshot isolation across the stream: writer mutates uncommitted.
  auto* writer = cluster.writer();
  const TxnId txn = writer->Begin();
  done = false;
  writer->Put(txn, "item7", "stock=SOLD-OUT", [&](Status) { done = true; });
  cluster.RunUntil([&]() { return done; });
  cluster.RunFor(50 * kMillisecond);  // MTR ships to replicas

  done = false;
  r2->Get("item7", [&](Result<std::string> v) {
    std::printf("replica 2 reads item7 while txn uncommitted -> %s "
                "(reverted via undo, §3.4)\n",
                v.ok() ? v->c_str() : v.status().ToString().c_str());
    done = true;
  });
  cluster.RunUntil([&]() { return done; });

  (void)cluster.CommitBlocking(txn);
  cluster.RunFor(50 * kMillisecond);
  done = false;
  r2->Get("item7", [&](Result<std::string> v) {
    std::printf("replica 2 reads item7 after commit        -> %s\n",
                v.ok() ? v->c_str() : v.status().ToString().c_str());
    done = true;
  });
  cluster.RunUntil([&]() { return done; });

  // Replica range scan.
  done = false;
  r1->Scan("item1", "item2\xff", 20, [&](auto rows) {
    if (rows.ok()) {
      std::printf("\nreplica 1 scan [item1, item2~]: %zu rows\n",
                  rows->size());
    }
    done = true;
  });
  cluster.RunUntil([&]() { return done; });

  // PGMRPL: the writer aggregates replica read points; storage GC may not
  // pass them.
  cluster.RunFor(300 * kMillisecond);
  std::printf("\nPGMRPL bookkeeping: writer min read point = %llu "
              "(replicas report %llu, %llu)\n",
              static_cast<unsigned long long>(
                  cluster.writer()->ComputePgmrpl()),
              static_cast<unsigned long long>(r1->MinReadPoint()),
              static_cast<unsigned long long>(r2->MinReadPoint()));

  std::printf("\nreplica cache stats: r1 {applied=%llu discarded=%llu "
              "invalidated=%llu}\n",
              static_cast<unsigned long long>(r1->stats().records_applied),
              static_cast<unsigned long long>(
                  r1->stats().records_discarded_uncached),
              static_cast<unsigned long long>(
                  r1->stats().pages_invalidated));
  return 0;
}
