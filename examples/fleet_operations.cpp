// Fleet operations tour: the §4 toolbox beyond failure repair.
//
//   $ ./fleet_operations
//
// Walks through: the full/tail cost model (§4.2), heat management (move a
// hot segment with zero downtime), volume growth (geometry epochs),
// extended-AZ-loss degradation to a 3/4 quorum and back (§4.1), and a
// point-in-time restore from the continuous redo archive (Figure 2).

#include <cstdio>

#include "src/core/cluster.h"

using namespace aurora;

int main() {
  core::AuroraOptions options;
  options.seed = 31337;
  options.blocks_per_pg = 1 << 16;
  options.quorum_model = quorum::QuorumModel::kFullTail;
  options.storage_nodes_per_az = 3;
  options.storage_node.backup_interval = 20 * kMillisecond;

  core::AuroraCluster cluster(options);
  if (!cluster.StartBlocking().ok()) return 1;
  std::printf("1) full/tail volume (§4.2):\n   %s\n",
              cluster.geometry().Pg(0).ToString().c_str());

  for (int i = 0; i < 200; ++i) {
    (void)cluster.PutBlocking("row" + std::to_string(i),
                              std::string(128, 'd'));
  }
  cluster.RunFor(kSecond);
  uint64_t full_bytes = 0, tail_bytes = 0, one_copy = 0;
  for (const auto& node : cluster.storage_nodes()) {
    for (const auto& [id, segment] : node->segments()) {
      if (segment->is_full()) {
        full_bytes += segment->TotalVersionBytes();
        one_copy = std::max(one_copy, segment->TotalVersionBytes());
      } else {
        tail_bytes += segment->TotalVersionBytes();
      }
    }
  }
  std::printf("   block bytes: full segments %llu, tail segments %llu "
              "(amplification %.1fx, not 6x)\n\n",
              static_cast<unsigned long long>(full_bytes),
              static_cast<unsigned long long>(tail_bytes),
              one_copy ? static_cast<double>(full_bytes + tail_bytes) /
                             one_copy
                       : 0.0);

  // ---- Heat management ----------------------------------------------------
  std::printf("2) heat management: node hosting segment 0 is hot; move it\n");
  auto moved = cluster.MoveSegmentBlocking(0);
  std::printf("   moved -> segment %u (epochs %llu -> %llu), zero write "
              "stall\n\n",
              moved.ok() ? moved->new_segment : 0,
              static_cast<unsigned long long>(
                  moved.ok() ? moved->begin_epoch : 0),
              static_cast<unsigned long long>(
                  moved.ok() ? moved->final_epoch : 0));

  // ---- Volume growth ------------------------------------------------------
  std::printf("3) volume growth: geometry epoch %llu",
              static_cast<unsigned long long>(
                  cluster.geometry().geometry_epoch()));
  (void)cluster.GrowVolumeBlocking();
  std::printf(" -> %llu (now %zu protection groups)\n\n",
              static_cast<unsigned long long>(
                  cluster.geometry().geometry_epoch()),
              cluster.geometry().PgCount());

  // ---- Archive + PITR -----------------------------------------------------
  cluster.RunFor(kSecond);
  const Lsn restore_point = cluster.writer()->vdl();
  std::printf("4) archive horizon %llu; taking restore point %llu\n",
              static_cast<unsigned long long>(cluster.ArchiveHorizon()),
              static_cast<unsigned long long>(restore_point));
  (void)cluster.PutBlocking("oops", "fat-fingered DROP TABLE");
  cluster.RunFor(200 * kMillisecond);
  Status restored = cluster.RestoreToPointBlocking(restore_point);
  std::printf("   restore: %s; 'oops' now: %s; 'row7' still: %s\n\n",
              restored.ToString().c_str(),
              cluster.GetBlocking("oops").status().ToString().c_str(),
              cluster.GetBlocking("row7").ok() ? "present" : "LOST");

  // ---- Extended AZ loss ---------------------------------------------------
  std::printf("5) extended AZ loss: AZ 2 down for the long haul\n");
  cluster.network().FailAz(2);
  Status shrink = cluster.ShrinkAfterAzLossBlocking(2);
  std::printf("   shrink to 3/4: %s\n   %s\n", shrink.ToString().c_str(),
              cluster.geometry().Pg(0).ToString().c_str());
  (void)cluster.PutBlocking("resilient", "still-writing");
  std::printf("   writes flow on 3/4: %s\n",
              cluster.GetBlocking("resilient").ok() ? "yes" : "no");
  cluster.network().RestoreAz(2);
  cluster.RunFor(200 * kMillisecond);
  Status expand = cluster.ExpandToSixBlocking(2);
  std::printf("   AZ back; expand to 4/6: %s (epoch %llu)\n",
              expand.ToString().c_str(),
              static_cast<unsigned long long>(
                  cluster.geometry().Pg(0).epoch()));
  std::printf("\nall five operations used only quorum writes + epochs — "
              "no consensus protocol ran.\n");
  return 0;
}
