// Failover drill: the scenario every §2.4 / §3.2 claim is about.
//
//   $ ./failover_drill
//
// Story: a busy writer with a read replica; an entire Availability Zone
// fails; then the writer crashes. A fresh instance runs crash recovery
// (read-quorum SCL scan, truncation, volume-epoch bump), the replica is
// promoted-equivalent, and NOT ONE acknowledged commit is lost. The old
// zombie instance is fenced out by the epoch — no lease to wait for.

#include <cstdio>
#include <map>

#include "src/core/cluster.h"

using namespace aurora;

int main() {
  core::AuroraOptions options;
  options.seed = 1717;
  options.blocks_per_pg = 1 << 16;
  core::AuroraCluster cluster(options);
  if (!cluster.StartBlocking().ok()) return 1;
  auto* replica = cluster.AddReplica();
  std::printf("cluster up; replica %u attached to shared volume\n\n",
              replica->id());

  std::map<std::string, std::string> acked;
  auto write_burst = [&](const std::string& phase, int n) {
    int ok = 0;
    for (int i = 0; i < n; ++i) {
      const std::string key = phase + ":" + std::to_string(i);
      if (cluster.PutBlocking(key, "v").ok()) {
        acked[key] = "v";
        ok++;
      }
    }
    std::printf("[%s] %d/%d commits acked (vdl=%llu, epoch=%llu)\n",
                phase.c_str(), ok, n,
                static_cast<unsigned long long>(cluster.writer()->vdl()),
                static_cast<unsigned long long>(
                    cluster.writer()->volume_epoch()));
  };

  write_burst("steady", 25);

  std::printf("\n>>> Availability Zone 2 fails (2 of 6 segments down)\n");
  cluster.network().FailAz(2);
  write_burst("az-down", 25);

  std::printf("\n>>> the writer instance crashes mid-flight\n");
  const SimTime crash_at = cluster.sim().Now();
  auto promoted = cluster.FailoverBlocking();
  if (!promoted.ok()) {
    std::printf("failover failed: %s\n", promoted.status().ToString().c_str());
    return 1;
  }
  std::printf("new writer open after %lldms of simulated time "
              "(recovery = quorum probes + truncation + epoch %llu)\n",
              static_cast<long long>(
                  (cluster.sim().Now() - crash_at) / kMillisecond),
              static_cast<unsigned long long>(
                  cluster.writer()->volume_epoch()));

  std::printf("\n>>> verifying every acknowledged commit survived...\n");
  int lost = 0;
  for (const auto& [key, value] : acked) {
    if (!cluster.GetBlocking(key).ok()) {
      std::printf("  LOST: %s\n", key.c_str());
      lost++;
    }
  }
  std::printf("%d lost of %zu acked  %s\n", lost, acked.size(),
              lost == 0 ? "— zero data loss, as §3.2 promises" : "(BUG!)");

  std::printf("\n>>> AZ 2 recovers; gossip refills its segments\n");
  cluster.network().RestoreAz(2);
  cluster.RunFor(2 * kSecond);
  write_burst("healed", 25);

  Lsn min_scl = UINT64_MAX, max_scl = 0;
  for (const auto& node : cluster.storage_nodes()) {
    for (const auto& [id, segment] : node->segments()) {
      min_scl = std::min(min_scl, segment->scl());
      max_scl = std::max(max_scl, segment->scl());
    }
  }
  std::printf("\nsegment SCL spread after heal: [%llu, %llu] %s\n",
              static_cast<unsigned long long>(min_scl),
              static_cast<unsigned long long>(max_scl),
              min_scl == max_scl ? "(fully converged)" : "(converging)");
  return lost == 0 ? 0 : 1;
}
