// Membership-change walkthrough: Figure 5, live.
//
//   $ ./membership_change
//
// Narrates the two-step, reversible quorum-set transition: segment F's
// node dies; G joins at epoch+1 (dual quorum — writes continue
// throughout); G hydrates from its peers; the change commits at epoch+2.
// Then the drill repeats, but the "failed" node comes back and the change
// is REVERTED instead — "membership change decisions inconsequential".

#include <cstdio>

#include "src/core/cluster.h"

using namespace aurora;

namespace {

void PrintPg(const core::AuroraCluster& cluster) {
  std::printf("    %s\n", cluster.geometry().Pg(0).ToString().c_str());
}

}  // namespace

int main() {
  core::AuroraOptions options;
  options.seed = 404;
  options.blocks_per_pg = 1 << 16;
  options.storage_nodes_per_az = 3;
  core::AuroraCluster cluster(options);
  if (!cluster.StartBlocking().ok()) return 1;
  for (int i = 0; i < 40; ++i) {
    (void)cluster.PutBlocking("row" + std::to_string(i), "v");
  }
  std::printf("epoch 1 — all six members healthy:\n");
  PrintPg(cluster);

  // ---- Act 1: F dies and is replaced by G --------------------------------
  const SegmentId f = 5;
  std::printf("\n>>> segment %u's storage node fails\n", f);
  cluster.network().Crash(cluster.NodeForSegment(f)->id());

  auto begin = cluster.BeginReplaceBlocking(f);
  if (!begin.ok()) {
    std::printf("begin failed: %s\n", begin.status().ToString().c_str());
    return 1;
  }
  std::printf("\nepoch 2 — dual quorum (write = 4/6 of BOTH candidate "
              "sets; ABCD alone satisfies it):\n");
  PrintPg(cluster);

  std::printf("\nwrites proceed during the change:\n");
  int ok = 0;
  for (int i = 0; i < 15; ++i) {
    if (cluster.PutBlocking("during" + std::to_string(i), "v").ok()) ok++;
  }
  std::printf("    %d/15 commits acked while G hydrates\n", ok);

  Status commit = cluster.CommitReplaceBlocking(f);
  std::printf("\nepoch 3 — change committed (%s); F's state abandoned "
              "only now that G holds a full copy:\n",
              commit.ToString().c_str());
  PrintPg(cluster);

  // ---- Act 2: E is suspected but comes back — revert ---------------------
  const SegmentId e = 4;
  std::printf("\n>>> segment %u's node stops responding (just busy!)\n", e);
  cluster.network().Crash(cluster.NodeForSegment(e)->id());
  auto begin2 = cluster.BeginReplaceBlocking(e);
  if (!begin2.ok()) {
    std::printf("begin failed: %s\n", begin2.status().ToString().c_str());
    return 1;
  }
  std::printf("\nepoch 4 — replacement %u staged:\n", begin2->new_segment);
  PrintPg(cluster);

  std::printf("\n>>> the suspect node comes back; reverse the change\n");
  cluster.network().Restart(cluster.NodeForSegment(e)->id());
  cluster.RunFor(100 * kMillisecond);
  Status revert = cluster.RevertReplaceBlocking(e);
  std::printf("\nepoch 5 — reverted (%s); original member retained:\n",
              revert.ToString().c_str());
  PrintPg(cluster);

  // ---- Validate -----------------------------------------------------------
  int readable = 0;
  for (int i = 0; i < 40; ++i) {
    if (cluster.GetBlocking("row" + std::to_string(i)).ok()) readable++;
  }
  std::printf("\nall data intact: %d/40 rows readable; no I/O was blocked "
              "at any epoch.\n", readable);
  return readable == 40 ? 0 : 1;
}
