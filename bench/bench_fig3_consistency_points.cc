// Experiment F3 — Figure 3: storage consistency points.
//
// Reproduces the figure's exact tableau: two protection groups, odd LSNs
// to PG1 and even LSNs to PG2; records 105 and 106 have not met quorum.
// PGCL(PG1)=103, PGCL(PG2)=104, VCL=104. Then demonstrates the same on a
// LIVE cluster by partitioning segments and watching PGCL/VCL stall and
// resume, and measures consistency-point advancement throughput.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/engine/consistency_tracker.h"

namespace aurora {
namespace {

void PrintTableauFromTracker() {
  using engine::ConsistencyTracker;
  ConsistencyTracker tracker;
  auto members1 = std::vector<SegmentId>{0, 1, 2, 3, 4, 5};
  auto members2 = std::vector<SegmentId>{6, 7, 8, 9, 10, 11};
  tracker.ConfigurePg(1, quorum::QuorumSet::KofN(4, members1), members1);
  tracker.ConfigurePg(2, quorum::QuorumSet::KofN(4, members2), members2);
  for (Lsn lsn : {101, 103, 105}) tracker.RecordIssued(1, lsn);
  for (Lsn lsn : {102, 104, 106}) tracker.RecordIssued(2, lsn);
  tracker.SetMaxAllocated(106);
  // Quorum has 103 / 104; the tail records 105 / 106 reached only one
  // segment each (the figure's unshaded cells).
  for (SegmentId s : {0, 1, 2, 3}) tracker.ObserveScl(1, s, 103);
  for (SegmentId s : {4, 5}) tracker.ObserveScl(1, s, 105);
  for (SegmentId s : {6, 7, 8, 9}) tracker.ObserveScl(2, s, 104);
  for (SegmentId s : {10}) tracker.ObserveScl(2, s, 106);
  tracker.Advance();

  bench::Table table("Figure 3: storage consistency points (scripted)");
  table.Columns({"point", "value", "paper"});
  table.Row({"PGCL(PG1)", std::to_string(tracker.pgcl(1)), "103"});
  table.Row({"PGCL(PG2)", std::to_string(tracker.pgcl(2)), "104"});
  table.Row({"VCL", std::to_string(tracker.vcl()), "104"});
  table.Print();
}

void PrintLiveClusterStall() {
  core::AuroraOptions options;
  options.seed = 31;
  options.num_pgs = 2;
  options.blocks_per_pg = 1 << 16;
  options.storage_nodes_per_az = 4;
  core::AuroraCluster cluster(options);
  if (!cluster.StartBlocking().ok()) return;
  (void)bench::RunClosedLoopWrites(cluster, 32, "warm");

  bench::Table table(
      "Figure 3 (live): VCL stalls when one PG cannot meet quorum and "
      "resumes when it heals");
  table.Columns({"phase", "vcl", "pgcl(pg0)", "pgcl(pg1)",
                 "commits acked"});
  auto snapshot = [&](const char* phase) {
    table.Row({phase, std::to_string(cluster.writer()->vcl()),
               std::to_string(cluster.writer()->pgcl(0)),
               std::to_string(cluster.writer()->pgcl(1)),
               std::to_string(cluster.writer()->stats().commits_acked)});
  };
  snapshot("healthy");
  // Take down 3 of PG0's segments: its write quorum is gone; VCL stalls
  // as soon as a PG0 record is issued.
  const auto& pg0 = cluster.geometry().Pg(0);
  int downed = 0;
  for (const auto& m : pg0.AllMembers()) {
    if (downed >= 3) break;
    cluster.network().Crash(m.node);
    downed++;
  }
  // Writes continue to be ISSUED; commits to PG0 blocks cannot ack.
  auto* writer = cluster.writer();
  int acked = 0;
  for (int i = 0; i < 10; ++i) {
    const TxnId txn = writer->Begin();
    writer->Put(txn, "stall" + std::to_string(i), "v", [&](Status st) {
      if (st.ok()) writer->Commit(txn, [&](Status cs) {
        if (cs.ok()) acked++;
      });
    });
  }
  cluster.RunFor(2 * kSecond);
  snapshot("PG0 quorum lost");
  // Heal: VCL resumes and stalled commits drain.
  for (const auto& m : pg0.AllMembers()) cluster.network().Restart(m.node);
  cluster.RunFor(2 * kSecond);
  snapshot("healed");
  table.Print();
  std::printf("(stalled commits acked after heal: %d of 10)\n", acked);
}

}  // namespace
}  // namespace aurora

namespace {

void BM_TrackerAdvance(benchmark::State& state) {
  aurora::engine::ConsistencyTracker tracker;
  std::vector<aurora::SegmentId> members = {0, 1, 2, 3, 4, 5};
  tracker.ConfigurePg(0, aurora::quorum::QuorumSet::KofN(4, members),
                      members);
  aurora::Lsn lsn = 1;
  for (auto _ : state) {
    tracker.RecordIssued(0, lsn);
    tracker.SetMaxAllocated(lsn);
    tracker.RecordMtrComplete(lsn);
    for (aurora::SegmentId s : members) tracker.ObserveScl(0, s, lsn);
    benchmark::DoNotOptimize(tracker.Advance());
    ++lsn;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackerAdvance);

void BM_TrackerAdvanceDualQuorum(benchmark::State& state) {
  aurora::engine::ConsistencyTracker tracker;
  std::vector<aurora::SegmentId> members = {0, 1, 2, 3, 4, 5, 6};
  auto dual = aurora::quorum::QuorumSet::And(
      {aurora::quorum::QuorumSet::KofN(4, {0, 1, 2, 3, 4, 5}),
       aurora::quorum::QuorumSet::KofN(4, {0, 1, 2, 3, 4, 6})});
  tracker.ConfigurePg(0, dual, members);
  aurora::Lsn lsn = 1;
  for (auto _ : state) {
    tracker.RecordIssued(0, lsn);
    tracker.SetMaxAllocated(lsn);
    for (aurora::SegmentId s : members) tracker.ObserveScl(0, s, lsn);
    benchmark::DoNotOptimize(tracker.Advance());
    ++lsn;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackerAdvanceDualQuorum);

}  // namespace

int main(int argc, char** argv) {
  aurora::PrintTableauFromTracker();
  aurora::PrintLiveClusterStall();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
