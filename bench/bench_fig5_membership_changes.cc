// Experiment F5 — Figure 5: reversible, non-blocking membership changes.
//
// "Membership changes do not block either reads or writes" and "each
// transition is reversible" (§4.1). The table runs a steady write load,
// fails a segment's node, and performs the two-step replacement while
// measuring commit latency in each phase. The Paxos-style baseline models
// the traditional stop-the-world reconfiguration: writes pause while the
// new configuration is agreed and the replacement node state-transfers.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace aurora {
namespace {

struct PhaseStats {
  Histogram latency;
  uint64_t commits = 0;
};

void Run() {
  core::AuroraOptions options;
  options.seed = 5555;
  options.blocks_per_pg = 1 << 16;
  options.storage_nodes_per_az = 3;
  core::AuroraCluster cluster(options);
  if (!cluster.StartBlocking().ok()) return;
  (void)bench::RunClosedLoopWrites(cluster, 64, "warm");

  bench::Table table(
      "Figure 5: commit latency across a two-step membership change "
      "(segment F -> G) under steady load");
  table.Columns({"phase", "epoch", "commits", "p50", "p99", "max"});

  auto run_phase = [&](const char* name) {
    Histogram latency;
    const uint64_t commits =
        bench::RunOpenLoopWrites(cluster, 400.0, 2 * kSecond, &latency);
    table.Row({name, std::to_string(cluster.geometry().Pg(0).epoch()),
               std::to_string(commits), bench::Us(latency.P50()),
               bench::Us(latency.P99()), bench::Us(latency.max())});
  };

  run_phase("epoch 1: healthy ABCDEF");

  // Fail F's node; I/O continues on the 4/6 of the survivors.
  const SegmentId f = 5;
  cluster.network().Crash(cluster.NodeForSegment(f)->id());
  run_phase("F failed (no change yet)");

  // Step 1: add G — dual quorum, still serving.
  auto begin_report = cluster.BeginReplaceBlocking(f);
  if (!begin_report.ok()) {
    std::printf("begin failed: %s\n",
                begin_report.status().ToString().c_str());
    return;
  }
  run_phase("epoch 2: dual quorum ABCDEF+G");

  // Step 2: commit to ABCDEG once G hydrated.
  const SimTime commit_start = cluster.sim().Now();
  Status commit_st = cluster.CommitReplaceBlocking(f);
  const SimDuration change_time = cluster.sim().Now() - commit_start;
  if (!commit_st.ok()) {
    std::printf("commit failed: %s\n", commit_st.ToString().c_str());
    return;
  }
  run_phase("epoch 3: committed ABCDEG");
  table.Print();
  std::printf("hydration+commit of step 2 took %s of wall-clock SIM time "
              "(I/O never paused).\n\n",
              bench::Us(change_time).c_str());

  // Baseline: stop-the-world reconfiguration. Writes pause for the
  // consensus rounds plus the full state transfer before the new member
  // serves. We charge only the state-transfer time measured above plus
  // two majority consensus rounds (~2 RTTs) — generous to the baseline.
  bench::Table baseline_table(
      "F5 baseline: write-availability gap during reconfiguration");
  baseline_table.Columns({"system", "write stall during change"});
  baseline_table.Row({"Aurora quorum-set epochs", "0 (non-blocking)"});
  baseline_table.Row(
      {"stop-the-world reconfig (consensus + state transfer)",
       bench::Us(change_time + 4 * 600)});
  baseline_table.Print();

  // Reversibility: fail another segment, begin, then revert.
  const SegmentId e = 4;
  cluster.network().Crash(cluster.NodeForSegment(e)->id());
  auto report2 = cluster.BeginReplaceBlocking(e);
  if (report2.ok()) {
    cluster.network().Restart(cluster.NodeForSegment(e)->id());
    cluster.RunFor(100 * kMillisecond);
    Status revert = cluster.RevertReplaceBlocking(e);
    std::printf("reversibility: E suspected, replacement begun (epoch %llu)"
                ", E returned, reverted: %s (epoch %llu)\n",
                static_cast<unsigned long long>(report2->begin_epoch),
                revert.ToString().c_str(),
                static_cast<unsigned long long>(
                    cluster.geometry().Pg(0).epoch()));
  }
}

}  // namespace
}  // namespace aurora

namespace {

void BM_MembershipTransitionPlan(benchmark::State& state) {
  using namespace aurora::quorum;
  std::vector<SegmentInfo> members;
  for (aurora::SegmentId id = 0; id < 6; ++id) {
    members.push_back({id, static_cast<aurora::NodeId>(100 + id),
                       static_cast<aurora::AzId>(id / 2), true});
  }
  auto config = PgConfig::Create(0, QuorumModel::kUniform46, members);
  for (auto _ : state) {
    auto next = config.BeginReplace(5, SegmentInfo{6, 110, 2, true});
    benchmark::DoNotOptimize(next->WriteSet());
    benchmark::DoNotOptimize(next->CommitReplace(5));
  }
}
BENCHMARK(BM_MembershipTransitionPlan);

void BM_TransitionSafetyProof(benchmark::State& state) {
  using namespace aurora::quorum;
  std::vector<SegmentInfo> members;
  for (aurora::SegmentId id = 0; id < 6; ++id) {
    members.push_back({id, static_cast<aurora::NodeId>(100 + id),
                       static_cast<aurora::AzId>(id / 2), true});
  }
  auto config = PgConfig::Create(0, QuorumModel::kUniform46, members);
  auto next = config.BeginReplace(5, SegmentInfo{6, 110, 2, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransitionIsSafe(config, *next));
  }
}
BENCHMARK(BM_TransitionSafetyProof);

}  // namespace

int main(int argc, char** argv) {
  aurora::Run();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
