// Experiment C2 — §2.2 claim: boxcarring without induced latency.
//
// "Waiting creates performance jitter since early requests entering the
// boxcar have to wait for later requests or a timeout to fill the request.
// Jitter is greatest under low load when the boxcar times out. Aurora
// handles this by submitting the asynchronous network operation when it
// receives the first redo log record in the boxcar but continuing to fill
// the buffer until the network operation executes."
//
// The table sweeps arrival rates and reports, for both policies: the added
// batching delay (record arrival -> dispatch) p50/p99 and the packing
// efficiency (records per network operation).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/log/boxcar.h"

namespace aurora {
namespace {

struct BoxcarResult {
  Histogram added_delay;
  double mean_fill = 0;
  uint64_t batches = 0;
};

BoxcarResult RunPolicy(log::BoxcarPolicy policy, double records_per_sec,
                       SimDuration duration) {
  sim::Simulator sim(99);
  log::BoxcarOptions options;
  options.policy = policy;
  options.dispatch_delay = 20;
  options.fill_timeout = 4 * kMillisecond;
  options.max_batch_bytes = 32 * 1024;

  BoxcarResult result;
  std::map<Lsn, SimTime> arrival;
  log::BoxcarBatcher boxcar(&sim, options,
                            [&](std::vector<log::RedoRecord> batch) {
                              for (const auto& rec : batch) {
                                result.added_delay.Record(
                                    sim.Now() - arrival[rec.lsn]);
                              }
                            });
  // Poisson arrivals.
  Rng rng(7);
  Lsn next_lsn = 1;
  std::function<void()> arrive = [&]() {
    if (sim.Now() >= duration) return;
    log::RedoRecord rec;
    rec.lsn = next_lsn++;
    rec.prev_lsn_segment = rec.lsn - 1;
    rec.payload = std::string(200, 'x');
    arrival[rec.lsn] = sim.Now();
    boxcar.Add(std::move(rec));
    sim.Schedule(static_cast<SimDuration>(
                     rng.NextExponential(1e6 / records_per_sec)),
                 arrive);
  };
  arrive();
  sim.RunUntil(duration + kSecond);
  boxcar.Flush();
  result.mean_fill = boxcar.MeanBatchFill();
  result.batches = boxcar.batches_sent();
  return result;
}

}  // namespace
}  // namespace aurora

namespace {

void BM_BoxcarAdd(benchmark::State& state) {
  aurora::sim::Simulator sim;
  aurora::log::BoxcarBatcher boxcar(
      &sim, {}, [](std::vector<aurora::log::RedoRecord>) {});
  aurora::log::RedoRecord rec;
  rec.payload = std::string(200, 'x');
  aurora::Lsn lsn = 1;
  for (auto _ : state) {
    rec.lsn = lsn++;
    boxcar.Add(rec);
    if (lsn % 64 == 0) {
      boxcar.Flush();
      sim.Run();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoxcarAdd);

}  // namespace

int main(int argc, char** argv) {
  using aurora::bench::Num;
  using aurora::bench::Table;
  using aurora::bench::Us;

  Table table("C2: boxcar policies — added batching delay and packing "
              "(5 simulated seconds per cell)");
  table.Columns({"records/s", "policy", "delay p50", "delay p99",
                 "records/batch"});
  for (double rate : {50.0, 500.0, 5000.0, 50000.0}) {
    for (auto policy : {aurora::log::BoxcarPolicy::kSubmitOnFirst,
                        aurora::log::BoxcarPolicy::kFillOrTimeout}) {
      auto r = aurora::RunPolicy(policy, rate, 5 * aurora::kSecond);
      table.Row({Num(rate, 0),
                 policy == aurora::log::BoxcarPolicy::kSubmitOnFirst
                     ? "Aurora submit-on-first"
                     : "fill-or-timeout",
                 Us(r.added_delay.P50()), Us(r.added_delay.P99()),
                 Num(r.mean_fill, 2)});
    }
  }
  table.Print();
  std::printf(
      "(At low rates the timeout boxcar adds its full 4ms timeout to every\n"
      " record — the jitter the paper calls out — while submit-on-first\n"
      " adds only the ~20us dispatch window. At high rates both pack well\n"
      " and the delay difference disappears.)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
