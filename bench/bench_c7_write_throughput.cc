// Experiment C7 — write-path throughput as the hardware sees it.
//
// The paper's core claim is that the data path is cheap BECAUSE it avoids
// consensus: a commit costs only local bookkeeping over asynchronous
// quorum acknowledgements (§2.3). That claim only holds if the local
// bookkeeping itself is cheap — so this benchmark measures how fast our
// reproduction pushes redo through the full pipeline (writer → driver →
// 6-way segment fan-out → SCL/PGCL/VCL/VDL advance → commit ack) in REAL
// wall-clock time, not simulated time.
//
// Three sustained-rate numbers are reported and written to
// BENCH_c7_write_throughput.json so the perf trajectory is tracked across
// PRs:
//   * records/sec  — per-member redo records pushed through the driver;
//   * commits/sec  — transactions acknowledged;
//   * events/sec   — simulator events executed (event-loop overhead).
//
// `--quick` runs a small workload as a CTest smoke check (regressions in
// the hot path fail loudly); the full run uses enough transactions for a
// stable estimate. Microbenchmarks for the two hottest structures
// (SegmentHotLog append, boxcar+fanout) run under google-benchmark.
//
// A second, open-loop workload runs on the sharded windowed engine
// (event_shards = 3, DESIGN.md §9) across a --threads sweep: the writer
// issues at a fixed arrival rate while RunSharded drives the cluster.
// Commits and the schedule fingerprint must be identical at every thread
// count — the sweep measures what parallel execution costs/buys on the
// REAL protocol workload, not a synthetic mesh.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/log/hot_log.h"
#include "src/log/record.h"

namespace aurora {
namespace {

struct ThroughputResult {
  uint64_t txns = 0;
  uint64_t reads_done = 0;        // --read-ratio mixed-in point reads
  uint64_t records_sent = 0;      // per-member records through the driver
  uint64_t commits_acked = 0;
  uint64_t events_executed = 0;
  SimTime sim_elapsed = 0;
  double wall_seconds = 0;

  // From the metrics registry (enabled for the measured window), proving
  // the instrumented hot path still hits the throughput floor.
  uint64_t fanout_records = 0;
  uint64_t retransmitted_records = 0;
  uint64_t reads_issued = 0;
  uint64_t hedged_reads = 0;
  SimDuration vdl_advance_p50_us = 0;
  SimDuration vdl_advance_p99_us = 0;
  std::string metrics_json;

  double HedgeRate() const {
    return reads_issued == 0
               ? 0.0
               : static_cast<double>(hedged_reads) / reads_issued;
  }
  double RecordsPerSec() const { return records_sent / wall_seconds; }
  double CommitsPerSec() const { return commits_acked / wall_seconds; }
  double EventsPerSec() const { return events_executed / wall_seconds; }
};

/// Closed-loop sustained write workload: `txns` autocommit transactions
/// with a realistic row payload, one read replica attached (replication
/// shares the same record stream). Deterministic: the same seed and txn
/// count always execute the same simulated events. With `read_ratio` > 0
/// that fraction of operations becomes writer point reads (the mix is
/// drawn from a dedicated Rng that is never touched at ratio 0, so the
/// default workload stays bit-identical to earlier baselines).
ThroughputResult RunWorkload(int txns, uint64_t seed,
                             double read_ratio = 0.0) {
  core::AuroraOptions options;
  options.seed = seed;
  options.num_pgs = 2;  // VCL must straddle protection groups (Figure 3)
  options.blocks_per_pg = 1 << 16;
  // Throughput configuration: load-adaptive boxcarring and coalesced ack
  // processing. Both are opt-in driver features (defaults stay per-ack /
  // submit-on-first so protocol schedules elsewhere are untouched).
  options.db.driver.boxcar.policy = log::BoxcarPolicy::kAdaptive;
  options.db.driver.ack_coalesce_window = 10;
  core::AuroraCluster cluster(options);
  ThroughputResult result;
  if (!cluster.StartBlocking().ok()) return result;
  cluster.AddReplica();
  // Warm the tree so steady state dominates the measurement.
  (void)bench::RunClosedLoopWrites(cluster, 128, "warm");

  auto& registry = metrics::Registry::Global();
  registry.Reset();
  metrics::Registry::SetEnabled(true);

  const std::string value(256, 'v');
  const uint64_t records_before = cluster.writer()->driver()->stats().records_sent;
  const uint64_t commits_before = cluster.writer()->stats().commits_acked;
  const uint64_t events_before = cluster.sim().ExecutedEvents();
  const SimTime sim_before = cluster.sim().Now();

  Rng mix_rng(seed ^ 0xc7ead);
  uint64_t writes_done = 0;  // == i when read_ratio is 0
  const auto wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < txns; ++i) {
    if (read_ratio > 0 && writes_done > 0 &&
        mix_rng.NextDouble() < read_ratio) {
      // Point-read a key this run already wrote.
      const uint64_t k = mix_rng.NextBounded(writes_done) % 4096;
      if (cluster.GetBlocking("c7-" + std::to_string(k)).ok()) {
        result.reads_done++;
      }
      continue;
    }
    Status st =
        cluster.PutBlocking("c7-" + std::to_string(writes_done % 4096), value);
    if (!st.ok()) break;
    writes_done++;
  }
  const auto wall_end = std::chrono::steady_clock::now();

  result.txns = static_cast<uint64_t>(txns);
  result.records_sent =
      cluster.writer()->driver()->stats().records_sent - records_before;
  result.commits_acked =
      cluster.writer()->stats().commits_acked - commits_before;
  result.events_executed = cluster.sim().ExecutedEvents() - events_before;
  result.sim_elapsed = cluster.sim().Now() - sim_before;
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (result.wall_seconds <= 0) result.wall_seconds = 1e-9;

  result.fanout_records = registry.CounterValue("driver.fanout_records");
  result.retransmitted_records =
      registry.CounterValue("driver.retransmitted_records");
  result.reads_issued = registry.CounterValue("read.issued");
  result.hedged_reads = registry.CounterValue("read.hedges");
  if (const Histogram* gaps =
          registry.FindHistogram("engine.vdl_advance_gap_us")) {
    result.vdl_advance_p50_us = gaps->Percentile(0.50);
    result.vdl_advance_p99_us = gaps->Percentile(0.99);
  }
  result.metrics_json = registry.ToJson();
  metrics::Registry::SetEnabled(false);
  registry.Reset();
  return result;
}

struct ParallelResult {
  int threads = 0;
  uint64_t commits_acked = 0;
  uint64_t events_executed = 0;
  uint64_t fingerprint = 0;
  double wall_seconds = 0;

  double CommitsPerSec() const { return commits_acked / wall_seconds; }
  double EventsPerSec() const { return events_executed / wall_seconds; }
};

/// Open-loop write workload on the sharded engine, driven by RunSharded.
/// Deterministic in (seed, rate, duration) — identical for every thread
/// count, which the caller verifies via the fingerprint.
ParallelResult RunParallelWorkload(double txn_per_sec, SimDuration duration,
                                   uint64_t seed, int threads) {
  core::AuroraOptions options;
  options.seed = seed;
  options.num_pgs = 2;
  options.blocks_per_pg = 1 << 16;
  options.db.driver.boxcar.policy = log::BoxcarPolicy::kAdaptive;
  options.db.driver.ack_coalesce_window = 10;
  options.event_shards = 3;
  // Give the conservative windows useful width: every cross-node hop is
  // at least 40us, so each window batches ~40us of per-shard work.
  options.network.min_latency_us = 40;
  core::AuroraCluster cluster(options);
  ParallelResult result;
  result.threads = threads;
  if (!cluster.StartBlocking().ok()) return result;
  cluster.AddReplica();
  (void)bench::RunClosedLoopWrites(cluster, 128, "warm");

  // Arm the open-loop generator (it reschedules itself on the writer's
  // shard), then hand the cluster to the windowed engine.
  struct LoopState {
    core::AuroraCluster* cluster;
    engine::DbInstance* writer;
    SimDuration interval;
    SimTime end;
    uint64_t acked = 0;
    std::function<void(int)> issue;
  };
  auto state = std::make_shared<LoopState>();
  state->cluster = &cluster;
  state->writer = cluster.writer();
  state->interval = static_cast<SimDuration>(1e6 / txn_per_sec);
  state->end = cluster.sim().Now() + duration;
  const std::string value(256, 'v');
  state->issue = [state, value](int i) {
    auto& sim = state->cluster->sim();
    if (sim.Now() >= state->end) return;
    engine::DbInstance* writer = state->writer;
    const TxnId txn = writer->Begin();
    writer->Put(txn, "c7p-" + std::to_string(i % 4096), value,
                [state, writer, txn](Status st) {
                  if (!st.ok()) return;
                  writer->Commit(txn, [state](Status commit_st) {
                    if (commit_st.ok()) state->acked++;
                  });
                });
    sim.Schedule(state->interval, [state, i]() { state->issue(i + 1); });
  };
  state->issue(0);

  const uint64_t events_before = cluster.sim().ExecutedEvents();
  const auto wall_start = std::chrono::steady_clock::now();
  cluster.sim().RunShardedFor(duration + 2 * kSecond, threads);
  const auto wall_end = std::chrono::steady_clock::now();

  result.commits_acked = state->acked;
  result.events_executed = cluster.sim().ExecutedEvents() - events_before;
  result.fingerprint = cluster.sim().ScheduleFingerprint();
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (result.wall_seconds <= 0) result.wall_seconds = 1e-9;
  state->issue = nullptr;  // break the shared_ptr self-reference cycle
  return result;
}

}  // namespace
}  // namespace aurora

namespace {

// ---------------------------------------------------------------------- //
// Microbenchmarks for the hot structures themselves.

aurora::log::RedoRecord MakeRecord(aurora::Lsn lsn, aurora::Lsn prev_seg,
                                   size_t payload_bytes) {
  aurora::log::RedoRecord rec;
  rec.lsn = lsn;
  rec.prev_lsn_volume = lsn - 1;
  rec.prev_lsn_segment = prev_seg;
  rec.prev_lsn_block = 0;
  rec.pg = 0;
  rec.block = lsn % 512;
  rec.txn = 1;
  rec.payload = std::string(payload_bytes, 'p');
  return rec;
}

void BM_HotLogAppendInOrder(benchmark::State& state) {
  // In-order append is the overwhelmingly common case: a single writer
  // allocates LSNs monotonically and the network rarely reorders.
  const size_t n = 4096;
  for (auto _ : state) {
    aurora::log::SegmentHotLog log;
    for (aurora::Lsn l = 1; l <= n; ++l) {
      benchmark::DoNotOptimize(log.Append(MakeRecord(l, l - 1, 256)));
    }
    benchmark::DoNotOptimize(log.scl());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HotLogAppendInOrder)->Unit(benchmark::kMicrosecond);

void BM_HotLogGossipChain(benchmark::State& state) {
  aurora::log::SegmentHotLog log;
  const size_t n = 4096;
  for (aurora::Lsn l = 1; l <= n; ++l) {
    (void)log.Append(MakeRecord(l, l - 1, 256));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.ChainAfter(n / 2, 1024));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_HotLogGossipChain)->Unit(benchmark::kMicrosecond);

void BM_RecordFanOutCopy(benchmark::State& state) {
  // The driver hands each record to 6 segment boxcars, retains it for
  // retransmission, and ships it to replicas — 8+ handoffs per record.
  // This measures the cost of one such handoff (copy) incl. payload.
  const aurora::log::RedoRecord rec = MakeRecord(1, 0, 256);
  for (auto _ : state) {
    aurora::log::RedoRecord copy = rec;
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordFanOutCopy);

}  // namespace

int main(int argc, char** argv) {
  using aurora::bench::BenchJson;
  using aurora::bench::Num;
  using aurora::bench::Table;

  bool quick = false;
  int threads_arg = 0;      // 0 = sweep 1/2/4/8
  double read_ratio = 0.0;  // 0 = pure writes (the gated baseline shape)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads_arg = std::atoi(argv[i] + 10);
    }
    if (std::strncmp(argv[i], "--read-ratio=", 13) == 0) {
      read_ratio = std::atof(argv[i] + 13);
    }
  }

  const int txns = quick ? 1500 : 15000;
  const auto result = aurora::RunWorkload(txns, /*seed=*/4242, read_ratio);
  if (result.commits_acked == 0) {
    std::fprintf(stderr, "C7: workload failed to commit anything\n");
    return 1;
  }

  Table table("C7: sustained write-path throughput (wall clock)");
  table.Columns({"metric", "count", "per wall-second"});
  table.Row({"txns issued", std::to_string(result.txns), ""});
  if (read_ratio > 0) {
    table.Row({"reads mixed in (--read-ratio=" + Num(read_ratio, 2) + ")",
               std::to_string(result.reads_done), ""});
  }
  table.Row({"records sent (per-member)", std::to_string(result.records_sent),
             Num(result.RecordsPerSec(), 0)});
  table.Row({"commits acked", std::to_string(result.commits_acked),
             Num(result.CommitsPerSec(), 0)});
  table.Row({"sim events executed", std::to_string(result.events_executed),
             Num(result.EventsPerSec(), 0)});
  table.Row({"wall seconds", Num(result.wall_seconds, 3), ""});
  table.Row({"sim seconds", Num(result.sim_elapsed / 1e6, 3), ""});
  table.Row({"fan-out record copies", std::to_string(result.fanout_records),
             ""});
  table.Row({"retransmitted records",
             std::to_string(result.retransmitted_records), ""});
  table.Row({"VDL advance gap p50/p99 (us)",
             std::to_string(result.vdl_advance_p50_us) + " / " +
                 std::to_string(result.vdl_advance_p99_us),
             ""});
  table.Row({"hedge rate", Num(result.HedgeRate(), 4), ""});
  table.Print();

  // Sharded-engine sweep on the protocol workload.
  const std::vector<int> thread_counts =
      threads_arg > 0 ? std::vector<int>{threads_arg}
                      : std::vector<int>{1, 2, 4, 8};
  const double rate = quick ? 4000.0 : 10000.0;
  const aurora::SimDuration window =
      (quick ? 1 : 4) * aurora::kSecond;
  std::vector<aurora::ParallelResult> parallel;
  for (int t : thread_counts) {
    parallel.push_back(
        aurora::RunParallelWorkload(rate, window, /*seed=*/4242, t));
    const auto& p = parallel.back();
    if (p.commits_acked == 0) {
      std::fprintf(stderr, "C7: parallel workload committed nothing\n");
      return 1;
    }
    if (p.fingerprint != parallel.front().fingerprint ||
        p.commits_acked != parallel.front().commits_acked) {
      std::fprintf(stderr,
                   "C7: parallel run diverged at %d threads — "
                   "determinism bug\n",
                   t);
      return 1;
    }
  }

  Table scaling("C7: write path on the sharded engine (RunSharded sweep)");
  scaling.Columns(
      {"threads", "commits", "commits/sec", "events/sec", "vs 1 thread"});
  const double base = parallel.front().EventsPerSec();
  for (const auto& p : parallel) {
    scaling.Row({std::to_string(p.threads), std::to_string(p.commits_acked),
                 Num(p.CommitsPerSec(), 0), Num(p.EventsPerSec(), 0),
                 Num(p.EventsPerSec() / base, 2) + "x"});
  }
  scaling.Print();

  BenchJson json("c7_write_throughput");
  json.SetString("mode", quick ? "quick" : "full")
      .Set("txns", result.txns)
      .Set("read_ratio", read_ratio)
      .Set("reads_done", result.reads_done)
      .Set("records_sent", result.records_sent)
      .Set("commits_acked", result.commits_acked)
      .Set("events_executed", result.events_executed)
      .Set("wall_seconds", result.wall_seconds)
      .Set("sim_seconds", result.sim_elapsed / 1e6)
      .Set("records_per_sec", result.RecordsPerSec())
      .Set("commits_per_sec", result.CommitsPerSec())
      .Set("events_per_sec", result.EventsPerSec())
      .Set("fanout_records", result.fanout_records)
      .Set("retransmitted_records", result.retransmitted_records)
      .Set("reads_issued", result.reads_issued)
      .Set("hedged_reads", result.hedged_reads)
      .Set("hedge_rate", result.HedgeRate())
      .Set("vdl_advance_p50_us", static_cast<uint64_t>(result.vdl_advance_p50_us))
      .Set("vdl_advance_p99_us", static_cast<uint64_t>(result.vdl_advance_p99_us));
  for (const auto& p : parallel) {
    const std::string suffix = "_t" + std::to_string(p.threads);
    json.Set("parallel_commits" + suffix, p.commits_acked)
        .Set("parallel_commits_per_sec" + suffix, p.CommitsPerSec())
        .Set("parallel_events_per_sec" + suffix, p.EventsPerSec());
  }
  json.Set("parallel_fingerprint", parallel.front().fingerprint)
      .SetRaw("metrics", result.metrics_json);
  if (!json.WriteFile()) return 1;

  if (!quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
