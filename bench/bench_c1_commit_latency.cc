// Experiment C1 — §2.3 claim: commits without 2PC or Paxos.
//
// "A traditional relational database ... might use a two-phase commit, or
// a Paxos commit ... This is heavyweight and introduces stalls and jitter
// into the write path." Aurora instead acknowledges a commit as soon as
// VCL passes the SCN, driven purely by asynchronous quorum write acks.
//
// All three systems run on the SAME simulated network (3 AZs, lognormal
// link latency with a heavy tail) and the same disk model; the table
// reports the commit latency distribution of each. The expected shape:
// Aurora ~ one cross-AZ one-way + 4th-fastest-of-6 ack; MultiPaxos ~ one
// RTT to a majority (close, but serialized by the leader and stalled by
// leader change); 2PC ~ two RTTs gated on the SLOWEST of all participants,
// with p999 blowing up under the tail.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/baseline/paxos.h"
#include "src/baseline/two_phase_commit.h"

namespace aurora {
namespace {

constexpr int kTxns = 2000;

Histogram AuroraCommitLatency() {
  core::AuroraOptions options;
  options.seed = 9001;
  options.blocks_per_pg = 1 << 16;
  core::AuroraCluster cluster(options);
  if (!cluster.StartBlocking().ok()) return {};
  // Warm up tree + status pages.
  (void)bench::RunClosedLoopWrites(cluster, 64, "warm");
  cluster.writer()->commit_latency().Reset();
  Histogram latency;
  bench::RunOpenLoopWrites(cluster, /*txn_per_sec=*/500.0, 5 * kSecond,
                           &latency);
  return latency;
}

Histogram TpcCommitLatency(bool inject_slow_participant) {
  sim::Simulator sim(77);
  sim::Network net(&sim);
  std::vector<std::unique_ptr<baseline::TpcParticipant>> participants;
  std::vector<baseline::TpcParticipant*> raw;
  for (NodeId id = 10; id < 16; ++id) {
    participants.push_back(std::make_unique<baseline::TpcParticipant>(
        &sim, &net, id, static_cast<AzId>((id - 10) / 2)));
    raw.push_back(participants.back().get());
  }
  if (inject_slow_participant) net.SetNodeSlowdown(15, 10.0);
  baseline::TpcCoordinator coordinator(&sim, &net, 1, 0, raw);
  for (int i = 0; i < kTxns; ++i) {
    sim.Schedule(i * 2000, [&]() { coordinator.Commit([](bool) {}); });
  }
  sim.Run();
  return coordinator.latency();
}

Histogram PaxosCommitLatency() {
  sim::Simulator sim(78);
  sim::Network net(&sim);
  std::vector<std::unique_ptr<baseline::PaxosAcceptor>> acceptors;
  std::vector<baseline::PaxosAcceptor*> raw;
  for (NodeId id = 20; id < 25; ++id) {
    acceptors.push_back(std::make_unique<baseline::PaxosAcceptor>(
        &sim, &net, id, static_cast<AzId>((id - 20) % 3)));
    raw.push_back(acceptors.back().get());
  }
  baseline::MultiPaxosLog log(&sim, &net, 1, 0, raw);
  for (int i = 0; i < kTxns; ++i) {
    sim.Schedule(i * 2000, [&, i]() {
      // Occasional leader churn (deploys, failures) forces prepare rounds.
      if (i % 500 == 250) log.LoseLeadership();
      log.Append("commit-record", [](uint64_t) {});
    });
  }
  sim.Run();
  return log.latency();
}

}  // namespace
}  // namespace aurora

namespace {

void BM_AuroraCommitPath(benchmark::State& state) {
  // Wall-clock cost of simulating one committed transaction end-to-end
  // (simulator + protocol overhead per txn).
  aurora::core::AuroraOptions options;
  options.blocks_per_pg = 1 << 16;
  aurora::core::AuroraCluster cluster(options);
  if (!cluster.StartBlocking().ok()) {
    state.SkipWithError("bootstrap failed");
    return;
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster.PutBlocking("bench" + std::to_string(i++ % 128), "v"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuroraCommitPath)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  using aurora::bench::LatencySummary;
  using aurora::bench::Table;
  using aurora::bench::Us;

  auto aurora_lat = aurora::AuroraCommitLatency();
  auto tpc_lat = aurora::TpcCommitLatency(false);
  auto tpc_slow_lat = aurora::TpcCommitLatency(true);
  auto paxos_lat = aurora::PaxosCommitLatency();

  Table table(
      "C1: commit latency on identical network/disks (simulated us)");
  table.Columns({"system", "p50", "p90", "p99", "p999", "mean"});
  auto row = [&](const char* name, const aurora::Histogram& h) {
    table.Row({name, Us(h.P50()), Us(h.P90()), Us(h.P99()), Us(h.P999()),
               Us(static_cast<aurora::SimDuration>(h.Mean()))});
  };
  row("Aurora quorum-VCL commit", aurora_lat);
  row("MultiPaxos commit (5 acceptors)", paxos_lat);
  row("2PC commit (6 participants)", tpc_lat);
  row("2PC + one 10x-slow participant", tpc_slow_lat);
  table.Print();
  std::printf(
      "(Expected shape: Aurora lowest and tightest — 4/6 quorum masks slow\n"
      " copies; 2PC pays 2 RTTs gated on the slowest of ALL participants,\n"
      " so a single slow node multiplies its p50; Paxos sits between.)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
