// Experiment F1 — Figure 1: "Why are 6 copies necessary?"
//
// The paper's argument: a 2/3 quorum (one copy per AZ) loses BOTH its read
// and write quorum when an AZ failure coincides with one more independent
// failure ("AZ+1"); Aurora's 3-AZ 4/6-write / 3/6-read layout survives an
// AZ loss outright and keeps its READ quorum under AZ+1, so it can repair.
//
// Reproduction: (a) exhaustive enumeration of the failure scenarios in the
// figure; (b) a Monte-Carlo fleet simulation with exponential segment
// MTTF/MTTR plus periodic AZ outages, reporting unavailability fractions.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/random.h"
#include "src/quorum/membership.h"

namespace aurora {
namespace {

using quorum::PgConfig;
using quorum::QuorumModel;
using quorum::QuorumSet;
using quorum::SegmentInfo;
using quorum::SegmentSet;

PgConfig MakeConfig(int copies_per_az, QuorumModel model) {
  std::vector<SegmentInfo> members;
  SegmentId id = 0;
  for (AzId az = 0; az < 3; ++az) {
    for (int c = 0; c < copies_per_az; ++c) {
      members.push_back({id, static_cast<NodeId>(100 + id), az, true});
      ++id;
    }
  }
  return PgConfig::Create(0, model, members);
}

struct Scheme {
  const char* name;
  PgConfig config;
};

// Survivors after failing one AZ plus `extra` more random segments.
bool QuorumHolds(const PgConfig& config, const QuorumSet& quorum,
                 AzId failed_az, SegmentId extra_failed) {
  SegmentSet alive;
  for (const auto& m : config.AllMembers()) {
    if (m.az == failed_az) continue;
    if (m.id == extra_failed) continue;
    alive.insert(m.id);
  }
  return quorum.SatisfiedBy(alive);
}

void PrintScenarioTable() {
  std::vector<Scheme> schemes;
  schemes.push_back({"2/3 across 3 AZs", MakeConfig(1, QuorumModel::kUniform34)});
  // 2/3: V=3, Vw=2, Vr=2 -> build explicitly via kUniform46 generalization
  // (n/2+1 = 2 for n=3), so kUniform46 gives exactly 2/3-2/3.
  schemes.back().config = MakeConfig(1, QuorumModel::kUniform46);
  schemes.push_back(
      {"4/6 across 3 AZs (Aurora)", MakeConfig(2, QuorumModel::kUniform46)});

  bench::Table table("Figure 1: quorum survival under AZ and AZ+1 failures");
  table.Columns({"scheme", "scenario", "write quorum", "read quorum"});
  for (const auto& scheme : schemes) {
    const auto write = scheme.config.WriteSet();
    const auto read = scheme.config.ReadSet();
    // Scenario A: one AZ fails (all its segments).
    bool write_ok = true, read_ok = true;
    for (AzId az = 0; az < 3; ++az) {
      write_ok &= QuorumHolds(scheme.config, write, az, kInvalidSegment);
      read_ok &= QuorumHolds(scheme.config, read, az, kInvalidSegment);
    }
    table.Row({scheme.name, "AZ failure",
               write_ok ? "SURVIVES" : "BROKEN",
               read_ok ? "SURVIVES" : "BROKEN"});
    // Scenario B: AZ failure + one more segment anywhere (worst case).
    write_ok = true;
    read_ok = true;
    for (AzId az = 0; az < 3; ++az) {
      for (const auto& m : scheme.config.AllMembers()) {
        if (m.az == az) continue;
        write_ok &= QuorumHolds(scheme.config, write, az, m.id);
        read_ok &= QuorumHolds(scheme.config, read, az, m.id);
      }
    }
    table.Row({scheme.name, "AZ + 1 failure",
               write_ok ? "SURVIVES" : "BROKEN",
               read_ok ? "SURVIVES" : "BROKEN"});
  }
  table.Print();
  std::printf(
      "(Paper: 2/3 breaks entirely under AZ+1; Aurora 4/6 loses writes but\n"
      " keeps the 3/6 read quorum, so it can repair without data loss.)\n");
}

// Monte-Carlo fleet availability: exponential node failures + AZ outages.
void PrintMonteCarloTable() {
  struct Row {
    const char* name;
    int copies_per_az;
  };
  bench::Table table(
      "Figure 1 (Monte Carlo): unavailability fractions over 30 simulated "
      "days, node MTTF=12h MTTR=60s, AZ outage 1/10d for 1h");
  table.Columns({"scheme", "write unavail %", "read unavail %",
                 "quorum-loss events"});
  for (const Row& row : {Row{"2/3 across 3 AZs", 1},
                         Row{"4/6 across 3 AZs (Aurora)", 2}}) {
    const PgConfig config = MakeConfig(row.copies_per_az,
                                       QuorumModel::kUniform46);
    const auto write = config.WriteSet();
    const auto read = config.ReadSet();
    const auto members = config.AllMembers();

    Rng rng(1234);
    const double mttf_us = 12.0 * 3600 * 1e6;
    const double mttr_us = 60.0 * 1e6;
    const double az_mttf_us = 10.0 * 86400 * 1e6;
    const double az_mttr_us = 3600.0 * 1e6;
    const double horizon = 30.0 * 86400 * 1e6;
    const double step = 1e6;  // 1s sampling

    // Per-member and per-AZ up/down renewal processes, sampled.
    std::vector<double> member_downtime_left(members.size(), 0.0);
    std::vector<double> member_next_failure(members.size());
    for (auto& t : member_next_failure) t = rng.NextExponential(mttf_us);
    double az_downtime_left = 0.0;
    double az_next_failure = rng.NextExponential(az_mttf_us);
    AzId failed_az = 0;

    double write_down = 0, read_down = 0;
    uint64_t loss_events = 0;
    bool was_down = false;
    for (double now = 0; now < horizon; now += step) {
      for (size_t i = 0; i < members.size(); ++i) {
        if (member_downtime_left[i] > 0) {
          member_downtime_left[i] -= step;
        } else if ((member_next_failure[i] -= step) <= 0) {
          member_downtime_left[i] = rng.NextExponential(mttr_us);
          member_next_failure[i] = rng.NextExponential(mttf_us);
        }
      }
      if (az_downtime_left > 0) {
        az_downtime_left -= step;
      } else if ((az_next_failure -= step) <= 0) {
        az_downtime_left = az_mttr_us;
        az_next_failure = rng.NextExponential(az_mttf_us);
        failed_az = static_cast<AzId>(rng.NextBounded(3));
      }
      SegmentSet alive;
      for (size_t i = 0; i < members.size(); ++i) {
        const bool az_down = az_downtime_left > 0 &&
                             members[i].az == failed_az;
        if (member_downtime_left[i] <= 0 && !az_down) {
          alive.insert(members[i].id);
        }
      }
      const bool w = write.SatisfiedBy(alive);
      const bool r = read.SatisfiedBy(alive);
      if (!w) write_down += step;
      if (!r) read_down += step;
      if (!r && !was_down) loss_events++;
      was_down = !r;
    }
    table.Row({row.name, bench::Num(100.0 * write_down / horizon, 4),
               bench::Num(100.0 * read_down / horizon, 4),
               std::to_string(loss_events)});
  }
  table.Print();
}

// Microbenchmark: quorum-set evaluation cost (it sits on the ack path).
void BM_QuorumEvaluation(benchmark::State& state) {
  const PgConfig config = MakeConfig(2, QuorumModel::kUniform46);
  const auto write = config.WriteSet();
  SegmentSet acked = {0, 2, 3, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(write.SatisfiedBy(acked));
  }
}
BENCHMARK(BM_QuorumEvaluation);

void BM_DualQuorumEvaluation(benchmark::State& state) {
  PgConfig config = MakeConfig(2, QuorumModel::kUniform46);
  auto mid = config.BeginReplace(5, SegmentInfo{6, 110, 2, true});
  const auto write = mid->WriteSet();
  SegmentSet acked = {0, 1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(write.SatisfiedBy(acked));
  }
}
BENCHMARK(BM_DualQuorumEvaluation);

void BM_OverlapProof46(benchmark::State& state) {
  const PgConfig config = MakeConfig(2, QuorumModel::kUniform46);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        QuorumSet::AlwaysOverlaps(config.ReadSet(), config.WriteSet()));
  }
}
BENCHMARK(BM_OverlapProof46);

}  // namespace
}  // namespace aurora

int main(int argc, char** argv) {
  aurora::PrintScenarioTable();
  aurora::PrintMonteCarloTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
