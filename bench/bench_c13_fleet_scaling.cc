// Experiment C13 — fleet-granularity engine scaling (DESIGN.md §9).
//
// The paper's storage fleet is embarrassingly parallel: segment servers
// never coordinate with each other, only with writers. This bench drives
// the sharded event engine with a fleet-SHAPED synthetic workload — T
// tenant writers fanning WAL appends out to 6-member protection groups,
// storage-node actors doing loopback-heavy disk work plus peer gossip —
// and compares the two actor→shard mappings the cluster supports:
//
//   * per-AZ    — the shipped PR 6/8 mapping: 3 shards, one per AZ,
//                 writers co-resident with their AZ's nodes, and the
//                 engine's single global-min lookahead knob
//                 (network.min_latency_us = 40, the value every shipped
//                 per-AZ config uses).
//   * per-node  — this PR's mapping: every storage node on its own
//                 shard, writers on shard 0, and the pairwise lookahead
//                 matrix derived from per-link-class floors (intra-AZ
//                 60us, cross-AZ 240us — each at the ~0.5th percentile
//                 of its class's latency distribution, so the floors
//                 clamp almost no samples).
//
// Both arms execute the IDENTICAL simulated schedule — every delay is a
// pure hash of (seed, actor, tick), independent of the mapping — so
// executed-event counts match exactly and the windows / events-per-window
// / mailbox-occupancy columns isolate pure engine behavior. The quick
// cell (10 tenants x 100 PGs, threads = 1) asserts the headline claims:
// per-node + pairwise crosses strictly fewer window barriers and executes
// strictly more events per window than the shipped per-AZ configuration.
// The threads sweep on the per-node arm gives `fleet_events_per_sec`
// (best worker count), gated in scripts/bench_gate.sh; the schedule
// fingerprint must be bit-identical across thread counts.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/sim/simulator.h"

namespace aurora {
namespace {

// Deterministic parameter hash: every delay must be a pure function of
// (seed, actor, tick) so the two arms generate the same physical
// schedule and the parallel runs stay interleaving-independent.
uint64_t Mix(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t h = a * 0x9e3779b97f4a7c15ULL ^ (b + 0xbf58476d1ce4e5b9ULL) * 31 ^
               (c + 0x94d049bb133111ebULL) * 127;
  h ^= h >> 31;
  h *= 0x2545f4914f6cdd1dULL;
  h ^= h >> 29;
  return h;
}

// Fleet shape: 3 AZs x 4 storage nodes, the PR 8 production-scale cell.
constexpr uint32_t kAzs = 3;
constexpr uint32_t kNodesPerAz = 4;
constexpr uint32_t kNodes = kAzs * kNodesPerAz;
constexpr uint32_t kPgMembers = 6;  // 2 per AZ, the 4/6 quorum layout

// Link-class floors (us). The per-AZ arm's engine only knows the shipped
// global knob (40); the per-node arm's matrix knows the class floors.
constexpr SimDuration kGlobalMinLatency = 40;
constexpr SimDuration kIntraAzFloor = 60;
constexpr SimDuration kCrossAzFloor = 240;

uint32_t AzOfNode(uint32_t node) { return node / kNodesPerAz; }

SimDuration LinkFloor(uint32_t az_a, uint32_t az_b) {
  return az_a == az_b ? kIntraAzFloor : kCrossAzFloor;
}

struct FleetConfig {
  size_t tenants = 10;
  size_t pgs_per_tenant = 10;
  bool per_node = false;
  SimTime span = 60 * kMillisecond;
  uint64_t seed = 1301;

  std::string Label() const {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "t%02zu_pg%03zu_%s", tenants,
                  pgs_per_tenant * tenants, per_node ? "node" : "az");
    return buf;
  }
};

struct FleetResult {
  uint64_t executed = 0;
  uint64_t fingerprint = 0;
  uint64_t commits = 0;
  double wall_seconds = 0;
  sim::Simulator::EngineStats stats;

  double EventsPerSec() const {
    return static_cast<double>(executed) / wall_seconds;
  }
  double EventsPerWindow() const {
    return stats.windows == 0
               ? 0.0
               : static_cast<double>(executed) / stats.windows;
  }
  double MsgsPerBatch() const {
    return stats.mailbox_batches == 0
               ? 0.0
               : static_cast<double>(stats.mailbox_msgs) /
                     stats.mailbox_batches;
  }
};

/// Mutable per-run actor state. Writers/nodes only ever touch their own
/// slots from their own shard; `commits` is summed after the run.
struct FleetState {
  std::vector<uint64_t> commits;    // per tenant, acked WAL rounds
  std::vector<uint64_t> disk_work;  // per node, loopback tick mixer
};

// Writer `t` appends one WAL round to protection group `pg`: a message
// to each of the 6 members, each member does a short loopback disk-apply
// chain on its own shard, then acks back to the writer's shard.
void WalRound(sim::Simulator* sim, FleetState* st, const FleetConfig& cfg,
              uint32_t writer_shard, uint32_t t, uint64_t tick);

void WriterTick(sim::Simulator* sim, FleetState* st, const FleetConfig& cfg,
                uint32_t writer_shard, uint32_t t, uint64_t tick) {
  if (sim->Now() >= cfg.span - kMillisecond) return;
  WalRound(sim, st, cfg, writer_shard, t, tick);
  sim->Schedule(
      18 + Mix(cfg.seed, t, tick) % 13,
      [sim, st, &cfg, writer_shard, t, tick] {
        WriterTick(sim, st, cfg, writer_shard, t, tick + 1);
      },
      "fleet.writer");
}

void WalRound(sim::Simulator* sim, FleetState* st, const FleetConfig& cfg,
              uint32_t writer_shard, uint32_t t, uint64_t tick) {
  const uint32_t writer_az = t % kAzs;
  const uint32_t pg = static_cast<uint32_t>(tick % cfg.pgs_per_tenant);
  for (uint32_t m = 0; m < kPgMembers; ++m) {
    // Member layout: 2 per AZ, rotated by (tenant, pg) so the whole
    // fleet participates.
    const uint32_t az = m % kAzs;
    const uint32_t node =
        az * kNodesPerAz + (t + pg + m / kAzs) % kNodesPerAz;
    const uint32_t node_shard =
        cfg.per_node ? 1 + node : AzOfNode(node) % kAzs;
    const SimDuration hop = LinkFloor(writer_az, AzOfNode(node)) +
                                 Mix(cfg.seed, t * 251 + m, tick) % 80;
    sim->ScheduleOn(
        node_shard, hop,
        [sim, st, &cfg, writer_shard, t, node, tick] {
          // Loopback disk-apply chain: the storage-heavy part of the
          // fleet's event mix, entirely shard-local.
          struct Chain {
            static void Step(sim::Simulator* sim, FleetState* st,
                             const FleetConfig* cfg, uint32_t writer_shard,
                             uint32_t t, uint32_t node, uint64_t tick,
                             int remaining) {
              st->disk_work[node] =
                  st->disk_work[node] * 6364136223846793005ULL + tick + 1;
              if (remaining > 0) {
                sim->Schedule(
                    2 + Mix(cfg->seed, node, tick + remaining) % 7,
                    [sim, st, cfg, writer_shard, t, node, tick, remaining] {
                      Step(sim, st, cfg, writer_shard, t, node, tick,
                           remaining - 1);
                    },
                    "fleet.disk");
                return;
              }
              // Ack back to the writer's shard.
              const SimDuration back =
                  LinkFloor(AzOfNode(node), t % kAzs) +
                  Mix(cfg->seed, node * 131 + t, tick) % 80;
              sim->ScheduleOn(
                  writer_shard, back,
                  [st, t] { st->commits[t]++; }, "fleet.ack");
            }
          };
          Chain::Step(sim, st, &cfg, writer_shard, t, node, tick, 4);
        },
        "fleet.wal");
  }
}

// Peer gossip: each node periodically pings one same-AZ peer and one
// cross-AZ peer — the traffic that keeps intra-AZ matrix entries honest.
void GossipTick(sim::Simulator* sim, FleetState* st, const FleetConfig& cfg,
                uint32_t node, uint64_t tick) {
  if (sim->Now() >= cfg.span - kMillisecond) return;
  const uint32_t az = AzOfNode(node);
  const uint32_t same_az_peer =
      az * kNodesPerAz + (node + 1 + tick) % kNodesPerAz;
  const uint32_t cross_az = (az + 1 + tick % (kAzs - 1)) % kAzs;
  const uint32_t cross_peer =
      cross_az * kNodesPerAz + (node + tick) % kNodesPerAz;
  for (uint32_t peer : {same_az_peer, cross_peer}) {
    if (peer == node) continue;
    const uint32_t peer_shard =
        cfg.per_node ? 1 + peer : AzOfNode(peer) % kAzs;
    sim->ScheduleOn(
        peer_shard,
        LinkFloor(az, AzOfNode(peer)) + Mix(cfg.seed, node * 7 + peer, tick) % 60,
        [st, peer] { st->disk_work[peer] ^= 0x5bd1e995; }, "fleet.gossip");
  }
  sim->Schedule(
      400 + Mix(cfg.seed, node, tick * 3) % 200,
      [sim, st, &cfg, node, tick] {
        GossipTick(sim, st, cfg, node, tick + 1);
      },
      "fleet.gossiptick");
}

FleetResult RunFleet(const FleetConfig& cfg, int threads) {
  sim::Simulator sim(cfg.seed);
  const uint32_t shards = cfg.per_node ? 1 + kNodes : kAzs;
  sim.ConfigureShards(shards);
  sim.SetLookahead(kGlobalMinLatency);
  if (cfg.per_node) {
    // The pairwise matrix, derived exactly as Network does it: each
    // (src, dst) entry is the tightest link class connecting the actors
    // resident on the pair. Shard 0 hosts writers of every AZ, so its
    // rows/columns floor at the intra-AZ class; storage-storage pairs
    // split by AZ placement.
    for (uint32_t s = 0; s < shards; ++s) {
      for (uint32_t d = 0; d < shards; ++d) {
        if (s == d) continue;
        SimDuration floor;
        if (s == 0 || d == 0) {
          floor = kIntraAzFloor;  // writers span all AZs
        } else {
          floor = LinkFloor(AzOfNode(s - 1), AzOfNode(d - 1));
        }
        sim.SetPairwiseLookahead(s, d, floor);
      }
    }
  }

  FleetState st;
  st.commits.assign(cfg.tenants, 0);
  st.disk_work.assign(kNodes, 1);

  for (uint32_t t = 0; t < cfg.tenants; ++t) {
    const uint32_t writer_shard = cfg.per_node ? 0 : t % kAzs;
    sim::Simulator::ShardScope scope(&sim, writer_shard);
    sim.Schedule(
        1 + t % 5,
        [sim_p = &sim, st_p = &st, &cfg, writer_shard, t] {
          WriterTick(sim_p, st_p, cfg, writer_shard, t, 0);
        },
        "fleet.start");
  }
  for (uint32_t node = 0; node < kNodes; ++node) {
    const uint32_t node_shard =
        cfg.per_node ? 1 + node : AzOfNode(node) % kAzs;
    sim::Simulator::ShardScope scope(&sim, node_shard);
    sim.Schedule(
        50 + node * 3,
        [sim_p = &sim, st_p = &st, &cfg, node] {
          GossipTick(sim_p, st_p, cfg, node, 0);
        },
        "fleet.gossipstart");
  }

  const auto start = std::chrono::steady_clock::now();
  sim.RunSharded(cfg.span, threads);
  const auto end = std::chrono::steady_clock::now();

  FleetResult r;
  r.executed = sim.ExecutedEvents();
  r.fingerprint = sim.ScheduleFingerprint();
  r.stats = sim.engine_stats();
  r.wall_seconds = std::chrono::duration<double>(end - start).count();
  if (r.wall_seconds <= 0) r.wall_seconds = 1e-9;
  for (uint64_t c : st.commits) r.commits += c;
  return r;
}

}  // namespace
}  // namespace aurora

int main(int argc, char** argv) {
  using aurora::bench::BenchJson;
  using aurora::bench::Num;
  using aurora::bench::Table;

  bool quick = false;
  int threads_arg = 0;  // 0 = sweep 1/2/4/8
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads_arg = std::atoi(argv[i] + 10);
    }
  }

  const std::vector<int> thread_counts =
      threads_arg > 0 ? std::vector<int>{threads_arg}
                      : std::vector<int>{1, 2, 4, 8};

  // The grid. Quick keeps the acceptance cell only: 10 tenants x 100 PGs.
  std::vector<std::pair<size_t, size_t>> cells;  // (tenants, pgs/tenant)
  if (quick) {
    cells = {{10, 10}};
  } else {
    // Headline cell first — it feeds the JSON either way.
    cells = {{10, 10}, {4, 10}, {10, 50}, {25, 10}};
  }

  Table table("C13: fleet-granularity engine scaling");
  table.Columns({"cell", "threads", "executed", "windows", "events/window",
                 "msgs/batch", "events/sec"});

  BenchJson json("c13_fleet_scaling");
  json.SetString("mode", quick ? "quick" : "full");

  double best_rate = 0;
  int best_threads = 0;
  bool headline_done = false;

  for (const auto& [tenants, pgs] : cells) {
    aurora::FleetConfig az_cfg;
    az_cfg.tenants = tenants;
    az_cfg.pgs_per_tenant = pgs;
    az_cfg.per_node = false;
    aurora::FleetConfig node_cfg = az_cfg;
    node_cfg.per_node = true;

    // Per-AZ reference arm at threads = 1.
    const aurora::FleetResult az = aurora::RunFleet(az_cfg, 1);
    table.Row({az_cfg.Label(), "1", std::to_string(az.executed),
               std::to_string(az.stats.windows), Num(az.EventsPerWindow(), 1),
               Num(az.MsgsPerBatch(), 1), Num(az.EventsPerSec(), 0)});

    // Per-node arm across the thread sweep; fingerprints must agree.
    uint64_t node_fp = 0;
    aurora::FleetResult node_t1;
    for (int t : thread_counts) {
      const aurora::FleetResult node = aurora::RunFleet(node_cfg, t);
      if (node_fp == 0) node_fp = node.fingerprint;
      if (node.fingerprint != node_fp) {
        std::fprintf(stderr,
                     "C13: fingerprint diverged at %d threads (cell %s) — "
                     "determinism bug\n",
                     t, node_cfg.Label().c_str());
        return 1;
      }
      if (t == 1) node_t1 = node;
      table.Row({node_cfg.Label(), std::to_string(t),
                 std::to_string(node.executed),
                 std::to_string(node.stats.windows),
                 Num(node.EventsPerWindow(), 1), Num(node.MsgsPerBatch(), 1),
                 Num(node.EventsPerSec(), 0)});
      if (!headline_done && node.EventsPerSec() > best_rate) {
        best_rate = node.EventsPerSec();
        best_threads = t;
      }
    }

    // Controlled comparison: identical physical schedule in both arms.
    if (node_t1.executed != 0 && node_t1.executed != az.executed) {
      std::fprintf(stderr,
                   "C13: arms executed different schedules (%llu vs %llu, "
                   "cell %s) — the delay model leaked the mapping\n",
                   static_cast<unsigned long long>(node_t1.executed),
                   static_cast<unsigned long long>(az.executed),
                   az_cfg.Label().c_str());
      return 1;
    }

    if (!headline_done && node_t1.executed != 0) {
      // Headline cell (first in the grid — the acceptance cell): the
      // per-node + pairwise arm must cross strictly fewer
      // window barriers and pack strictly more events per window than
      // the shipped per-AZ configuration, at one worker.
      if (node_t1.stats.windows == 0 ||
          node_t1.stats.windows >= az.stats.windows) {
        std::fprintf(stderr,
                     "C13: FAILED — per-node windows %llu not strictly below "
                     "per-AZ windows %llu\n",
                     static_cast<unsigned long long>(node_t1.stats.windows),
                     static_cast<unsigned long long>(az.stats.windows));
        return 1;
      }
      if (node_t1.EventsPerWindow() <= az.EventsPerWindow()) {
        std::fprintf(stderr,
                     "C13: FAILED — per-node events/window %.1f not strictly "
                     "above per-AZ %.1f\n",
                     node_t1.EventsPerWindow(), az.EventsPerWindow());
        return 1;
      }
      json.Set("tenants", static_cast<uint64_t>(tenants))
          .Set("pgs_total", static_cast<uint64_t>(tenants * pgs))
          .Set("executed", az.executed)
          .Set("commits", node_t1.commits)
          .Set("windows_per_az", az.stats.windows)
          .Set("windows_per_node", node_t1.stats.windows)
          .Set("events_per_window_per_az", az.EventsPerWindow())
          .Set("events_per_window_per_node", node_t1.EventsPerWindow())
          .Set("mailbox_msgs", node_t1.stats.mailbox_msgs)
          .Set("mailbox_msgs_per_batch", node_t1.MsgsPerBatch());
      headline_done = true;
    }
  }

  json.Set("fleet_events_per_sec", best_rate)
      .Set("fleet_best_threads", best_threads);
  table.Print();
  std::printf(
      "\nC13: ok — per-node+pairwise beats per-AZ on windows and "
      "events/window; fleet rate %.0f events/s (threads=%d)\n",
      best_rate, best_threads);
  if (!json.WriteFile()) return 1;
  return 0;
}
