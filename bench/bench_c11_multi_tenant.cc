// Experiment C11 — the multi-tenant storage fleet.
//
// DESIGN.md §11: one segment-server fleet hosts many independent volumes,
// each with its own writer, LSN space, and epoch lineage; the placement
// service spreads every volume's protection groups across the shared
// servers under anti-affinity, and the per-server deficit-round-robin
// scheduler bounds how far a noisy tenant can push a quiet co-tenant's
// commit latency. This bench drives that whole stack at fleet shape:
// every tenant runs an open-loop writer against its own volume, all
// tenants contend for the same disks concurrently.
//
// Two sweeps:
//   * scale grid   — tenants {1,4,10,25} x PGs/volume {4,16}, fair
//                    scheduler on. Per cell: aggregate commits/sec
//                    (wall-clock — the gated floor), per-tenant commit
//                    p50/p99, and the fairness ratio min/max of
//                    per-tenant acked counts (1.0 = perfectly even).
//   * noisy neighbor — two tenants on one fleet, one saturating the
//                    disks, one quiet. The quiet tenant's p99 with the
//                    fair scheduler must stay within 2x of its solo p99
//                    (same fleet, noisy tenant silent); the same cell
//                    with the scheduler OFF is printed for contrast.
//                    The 2x bound is asserted — the bench exits nonzero
//                    if QoS fails — because the simulated latencies are
//                    deterministic in the seed.
//
// `--quick` runs one small grid cell plus the noisy-neighbor check as a
// CTest smoke + bench_gate input.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/histogram.h"
#include "src/common/metrics.h"
#include "src/core/placement.h"
#include "src/storage/storage_node.h"

namespace aurora {
namespace {

struct MultiTenantConfig {
  size_t tenants = 4;
  size_t pgs_per_volume = 4;
  /// Open-loop arrival rate per tenant (txn/s).
  double txn_per_sec = 1500;
  SimDuration window = 120 * kMillisecond;
  uint64_t seed = 8111;
  bool fair = true;

  std::string Label() const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "t%02zu_pg%02zu", tenants,
                  pgs_per_volume);
    return buf;
  }
};

struct TenantOutcome {
  uint64_t acked = 0;
  Histogram latency;
};

struct MultiTenantResult {
  MultiTenantConfig config;
  std::vector<TenantOutcome> tenants;
  uint64_t total_acked = 0;
  uint64_t throttled = 0;  // DRR fair-share deferrals, fleet-wide
  double wall_seconds = 0;
  std::string metrics_json;

  double CommitsPerSec() const { return total_acked / wall_seconds; }
  /// min/max of per-tenant acked counts: 1.0 = perfectly even service.
  double FairnessRatio() const {
    uint64_t lo = UINT64_MAX, hi = 0;
    for (const auto& t : tenants) {
      lo = std::min(lo, t.acked);
      hi = std::max(hi, t.acked);
    }
    return hi == 0 ? 0.0 : static_cast<double>(lo) / hi;
  }
};

core::AuroraOptions MakeOptions(const MultiTenantConfig& config) {
  core::AuroraOptions options;
  options.seed = config.seed;
  options.volumes = config.tenants;
  options.num_pgs = config.pgs_per_volume;
  options.blocks_per_pg = 1 << 16;
  // Big grids (25 tenants x 16 PGs = 400 PGs, 2400 segments) get a wider
  // fleet so the per-server segment count stays production-plausible.
  options.storage_nodes_per_az = config.tenants >= 10 ? 4 : 2;
  options.storage_node.fair_scheduler = config.fair;
  return options;
}

/// Per-tenant open-loop rates; rates[v] == 0 keeps tenant v silent.
MultiTenantResult RunCell(const MultiTenantConfig& config,
                          const std::vector<double>& rates) {
  MultiTenantResult result;
  result.config = config;
  result.tenants.resize(config.tenants);

  core::AuroraCluster cluster(MakeOptions(config));
  if (!cluster.StartBlocking().ok()) return result;

  auto& registry = metrics::Registry::Global();
  registry.Reset();
  metrics::Registry::SetEnabled(true);

  std::vector<std::shared_ptr<bench::OpenLoopState>> loops;
  for (size_t v = 0; v < config.tenants; ++v) {
    if (rates[v] <= 0) continue;
    loops.push_back(bench::StartOpenLoopWrites(
        cluster, cluster.writer(static_cast<VolumeId>(v)), rates[v],
        config.window, &result.tenants[v].latency));
  }

  const auto wall_start = std::chrono::steady_clock::now();
  cluster.RunFor(config.window + 2 * kSecond);
  const auto wall_end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (result.wall_seconds <= 0) result.wall_seconds = 1e-9;

  size_t loop_idx = 0;
  for (size_t v = 0; v < config.tenants; ++v) {
    if (rates[v] <= 0) continue;
    result.tenants[v].acked = loops[loop_idx]->acked;
    result.total_acked += loops[loop_idx]->acked;
    loops[loop_idx]->Finish();
    ++loop_idx;
  }
  for (const auto& node : cluster.storage_nodes()) {
    for (VolumeId v : node->TenantIds()) {
      result.throttled += node->tenant_stats(v).throttled;
    }
  }
  result.metrics_json = registry.ToJson();
  metrics::Registry::SetEnabled(false);
  registry.Reset();
  return result;
}

MultiTenantResult RunGridCell(const MultiTenantConfig& config) {
  return RunCell(config,
                 std::vector<double>(config.tenants, config.txn_per_sec));
}

struct NoisyNeighborResult {
  /// Quiet tenant alone on the two-volume fleet.
  Histogram solo;
  /// Quiet tenant sharing with a saturating noisy tenant, DRR on / off.
  Histogram shared_fair;
  Histogram shared_unfair;
  uint64_t noisy_acked = 0;
  uint64_t quiet_acked_fair = 0;
  uint64_t throttled_fair = 0;
  bool ran = false;
};

NoisyNeighborResult RunNoisyNeighbor() {
  // The noisy tenant's arrival rate is chosen to overrun the shared
  // disks (one ~40us-service-time device per server), so the quiet
  // tenant's writes genuinely queue behind the noisy tenant's backlog —
  // exactly the regime the DRR scheduler exists for.
  constexpr double kNoisyRate = 20000;
  constexpr double kQuietRate = 400;
  MultiTenantConfig config;
  config.tenants = 2;
  config.pgs_per_volume = 4;
  config.window = 100 * kMillisecond;
  config.seed = 8112;

  NoisyNeighborResult out;

  config.fair = true;
  MultiTenantResult solo = RunCell(config, {0.0, kQuietRate});
  if (solo.tenants.size() != 2 || solo.tenants[1].acked == 0) return out;
  out.solo = solo.tenants[1].latency;

  MultiTenantResult fair = RunCell(config, {kNoisyRate, kQuietRate});
  if (fair.tenants[1].acked == 0) return out;
  out.shared_fair = fair.tenants[1].latency;
  out.noisy_acked = fair.tenants[0].acked;
  out.quiet_acked_fair = fair.tenants[1].acked;
  out.throttled_fair = fair.throttled;

  config.fair = false;
  MultiTenantResult unfair = RunCell(config, {kNoisyRate, kQuietRate});
  out.shared_unfair = unfair.tenants[1].latency;

  out.ran = true;
  return out;
}

/// Microbench: one full PlacePg decision (six copies, three AZs, load
/// probe consulted per candidate) on a 12-server fleet. This is the unit
/// of work the control plane pays per protection group at bootstrap and
/// per replacement pick during repair.
void BM_PlacePg(benchmark::State& state) {
  core::PlacementService placement;
  std::map<NodeId, size_t> load;
  placement.SetLoadSource([&](NodeId id) { return load[id]; });
  NodeId next_node = 1;
  for (AzId az = 0; az < 3; ++az) {
    for (int i = 0; i < 4; ++i) placement.RegisterServer(next_node++, az);
  }
  SegmentId next_segment = 1;
  for (auto _ : state) {
    auto placed = placement.PlacePg(0, quorum::QuorumModel::kUniform46,
                                    [&] { return next_segment++; });
    if (!placed.ok()) {
      state.SkipWithError("PlacePg failed");
      break;
    }
    for (const auto& info : *placed) load[info.node]++;
    benchmark::DoNotOptimize(placed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PlacePg);

}  // namespace
}  // namespace aurora

int main(int argc, char** argv) {
  using aurora::bench::BenchJson;
  using aurora::bench::Num;
  using aurora::bench::Table;
  using aurora::bench::Us;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::vector<aurora::MultiTenantConfig> cells;
  if (quick) {
    // Still a real fleet: 10 tenants x 10 PGs = 100 protection groups
    // (600 segments) on 12 shared servers.
    aurora::MultiTenantConfig config;
    config.tenants = 10;
    config.pgs_per_volume = 10;
    config.window = 100 * aurora::kMillisecond;
    cells.push_back(config);
  } else {
    for (size_t tenants : {1u, 4u, 10u, 25u}) {
      for (size_t pgs : {4u, 16u}) {
        aurora::MultiTenantConfig config;
        config.tenants = tenants;
        config.pgs_per_volume = pgs;
        cells.push_back(config);
      }
    }
  }

  Table table(quick ? "C11: multi-tenant fleet (quick cell)"
                    : "C11: multi-tenant fleet — tenants x PGs sweep");
  table.Columns({"cell", "commits", "commits/s (wall)", "tenant p50",
                 "tenant p99", "fairness", "throttled"});

  BenchJson json("c11_multi_tenant");
  json.SetString("mode", quick ? "quick" : "full");

  std::vector<aurora::MultiTenantResult> results;
  for (const auto& config : cells) {
    aurora::MultiTenantResult r = aurora::RunGridCell(config);
    if (r.total_acked == 0) {
      std::fprintf(stderr, "C11: cell %s completed no commits\n",
                   config.Label().c_str());
      return 1;
    }
    // Worst per-tenant percentiles across the cell: the multi-tenant
    // claim is about every tenant's experience, not the aggregate.
    aurora::SimDuration p50 = 0, p99 = 0;
    for (const auto& t : r.tenants) {
      p50 = std::max(p50, t.latency.P50());
      p99 = std::max(p99, t.latency.P99());
    }
    table.Row({config.Label(), std::to_string(r.total_acked),
               Num(r.CommitsPerSec(), 0), Us(p50), Us(p99),
               Num(r.FairnessRatio(), 3), std::to_string(r.throttled)});
    results.push_back(std::move(r));
  }

  const aurora::MultiTenantResult& head = results.front();
  json.Set("commits_done", head.total_acked)
      .Set("commits_per_sec", head.CommitsPerSec())
      .Set("fairness_ratio", head.FairnessRatio())
      .Set("throttled", head.throttled)
      .Set("tenants", static_cast<uint64_t>(head.config.tenants))
      .Set("pgs_per_volume", static_cast<uint64_t>(head.config.pgs_per_volume))
      .Set("wall_seconds", head.wall_seconds);
  if (!quick) {
    for (const auto& r : results) {
      const std::string suffix = "_" + r.config.Label();
      aurora::SimDuration p99 = 0;
      for (const auto& t : r.tenants) p99 = std::max(p99, t.latency.P99());
      json.Set("commits_done" + suffix, r.total_acked)
          .Set("commits_per_sec" + suffix, r.CommitsPerSec())
          .Set("fairness_ratio" + suffix, r.FairnessRatio())
          .Set("tenant_p99_us" + suffix, static_cast<uint64_t>(p99));
    }
  }

  // Noisy neighbor: the QoS acceptance bound, asserted.
  aurora::NoisyNeighborResult noisy = aurora::RunNoisyNeighbor();
  if (!noisy.ran) {
    std::fprintf(stderr, "C11: noisy-neighbor cell failed to complete\n");
    return 1;
  }
  Table nn("C11: noisy neighbor — quiet tenant commit latency");
  nn.Columns({"cell", "quiet p50", "quiet p99", "noisy acked", "throttled"});
  nn.Row({"solo", Us(noisy.solo.P50()), Us(noisy.solo.P99()), "-", "-"});
  nn.Row({"shared (DRR on)", Us(noisy.shared_fair.P50()),
          Us(noisy.shared_fair.P99()), std::to_string(noisy.noisy_acked),
          std::to_string(noisy.throttled_fair)});
  nn.Row({"shared (DRR off)", Us(noisy.shared_unfair.P50()),
          Us(noisy.shared_unfair.P99()), "-", "-"});

  table.Print();
  nn.Print();

  json.Set("quiet_solo_p99_us", static_cast<uint64_t>(noisy.solo.P99()))
      .Set("quiet_shared_p99_us",
           static_cast<uint64_t>(noisy.shared_fair.P99()))
      .Set("quiet_unfair_p99_us",
           static_cast<uint64_t>(noisy.shared_unfair.P99()))
      .Set("noisy_acked", noisy.noisy_acked)
      .Set("quiet_acked", noisy.quiet_acked_fair)
      .SetRaw("metrics", head.metrics_json);
  if (!json.WriteFile()) return 1;

  // QoS bound (deterministic in the seed, so a hard gate): a saturating
  // co-tenant may not push the quiet tenant's p99 beyond 2x solo.
  const double solo_p99 = static_cast<double>(noisy.solo.P99());
  const double shared_p99 = static_cast<double>(noisy.shared_fair.P99());
  if (shared_p99 > 2.0 * solo_p99) {
    std::fprintf(stderr,
                 "C11: QoS FAILED — quiet tenant p99 %.0fus vs solo %.0fus "
                 "(> 2x) with the fair scheduler on\n",
                 shared_p99, solo_p99);
    return 1;
  }
  std::printf("\nC11: QoS ok — quiet p99 %s vs solo %s (<= 2x)\n",
              Us(noisy.shared_fair.P99()).c_str(),
              Us(noisy.solo.P99()).c_str());

  if (!quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
