// Experiment C12 — adversarial corruption campaign (DESIGN.md §6, §8).
//
// The paper's storage nodes continuously scrub stored records (§2.1,
// activity 8): a checksum mismatch quarantines the record — drops it from
// the hot log before any read can observe it — and peer gossip refills
// the hole from the 4/6 quorum. This bench measures that machinery under
// sustained adversarial schedules: randomized chaos runs whose fault mix
// includes record corruption (plus crashes, partitions, AZ blips), in two
// arms:
//
//   * baseline arm — `GenerateChaosSchedule` under the invariant auditor
//     and the end-of-run durability contract. Scrub quarantines corrupt
//     records; nobody replaces the damaged segment.
//   * campaign arm — `GenerateCampaignSchedule` with the self-healing
//     control plane running (health monitor + repair planner), so
//     quarantined state is additionally repaired by gossip refill and
//     segment replacement, and the volume must re-converge.
//
// Every run must end green: an audit violation, durability breach, or
// failed campaign convergence exits nonzero — this binary doubles as the
// adversarial smoke test under CTest.
//
// NOTE: this is a from-scratch recreation of the original C12 binary
// (only its JSON dump survived; it is committed as the gate baseline in
// bench/baselines/). Counter semantics, recreated:
//   corruptions_injected   corrupt-record ops across all schedules
//   corruptions_detected   scrub checksum mismatches (both arms; records
//                          lost to crashes/GC before a scrub pass are
//                          injected-but-never-detected)
//   scrub_quarantined      records scrub dropped in the baseline arm
//   scrub_repaired         gossip refills in the campaign arm
// The gate floors events_per_sec only — counts vary with seed set.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/metrics.h"
#include "src/core/chaos_harness.h"

namespace aurora {
namespace {

struct ArmTotals {
  uint64_t events = 0;
  uint64_t injected = 0;
  double wall_seconds = 0;

  double EventsPerSec() const {
    return wall_seconds <= 0 ? 0 : static_cast<double>(events) / wall_seconds;
  }
};

uint64_t CountCorruptOps(const core::ChaosSchedule& schedule) {
  uint64_t n = 0;
  for (const auto& op : schedule.ops) {
    if (op.kind == core::ChaosOpKind::kCorruptRecord) ++n;
  }
  return n;
}

uint64_t CounterValue(const char* name) {
  return metrics::Registry::Global().GetCounter(name)->Value();
}

// Runs one arm across the seed sweep; returns false (after printing the
// failure) if any run breaks its contracts.
bool RunArm(bool campaign, int seeds, int ops_per_seed, ArmTotals* totals) {
  for (int seed = 1; seed <= seeds; ++seed) {
    const core::ChaosSchedule schedule =
        campaign ? core::GenerateCampaignSchedule(seed, ops_per_seed)
                 : core::GenerateChaosSchedule(seed, ops_per_seed);
    totals->injected += CountCorruptOps(schedule);
    core::ChaosRunOptions options;
    options.campaign = campaign;
    // Adversarial cadence: a schedule lasts well under a second of
    // virtual time, so the default 30s scrub would never fire. 100ms
    // gives several scrub passes per run plus the end-of-run drain.
    options.storage_node.scrub_interval = 100 * kMillisecond;
    const auto start = std::chrono::steady_clock::now();
    const core::ChaosRunResult result =
        core::RunChaosSchedule(schedule, options);
    const auto end = std::chrono::steady_clock::now();
    totals->events += result.executed_events;
    totals->wall_seconds += std::chrono::duration<double>(end - start).count();
    if (!result.ok()) {
      std::fprintf(stderr, "C12: FAILED — %s arm, seed %d: %s\n",
                   campaign ? "campaign" : "baseline", seed,
                   !result.status.ok() ? result.status.ToString().c_str()
                   : !result.violations.empty()
                       ? result.violations.front().invariant.c_str()
                       : !result.errors.empty() ? result.errors.front().c_str()
                                                : "replay divergence");
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace aurora

int main(int argc, char** argv) {
  using aurora::bench::BenchJson;
  using aurora::bench::Num;
  using aurora::bench::Table;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int seeds = quick ? 4 : 10;
  const int ops_per_seed = 40;

  auto& registry = aurora::metrics::Registry::Global();
  registry.Reset();
  aurora::metrics::Registry::SetEnabled(true);

  // Baseline arm: scrub quarantines, nothing repairs.
  aurora::ArmTotals baseline;
  if (!aurora::RunArm(/*campaign=*/false, seeds, ops_per_seed, &baseline)) {
    return 1;
  }
  const uint64_t quarantined = aurora::CounterValue("storage.scrub_corruptions");
  const uint64_t baseline_refills =
      aurora::CounterValue("storage.gossip_filled_records");

  // Campaign arm: the control plane heals what the adversary breaks.
  aurora::ArmTotals campaign;
  if (!aurora::RunArm(/*campaign=*/true, seeds, ops_per_seed, &campaign)) {
    return 1;
  }
  const uint64_t detected = aurora::CounterValue("storage.scrub_corruptions");
  const uint64_t repaired =
      aurora::CounterValue("storage.gossip_filled_records") - baseline_refills;
  aurora::metrics::Registry::SetEnabled(false);

  Table table("C12: adversarial corruption campaign");
  table.Columns({"arm", "seeds", "events", "wall", "events/sec"});
  table.Row({"baseline", std::to_string(seeds),
             std::to_string(baseline.events), Num(baseline.wall_seconds, 3),
             Num(baseline.EventsPerSec(), 0)});
  table.Row({"campaign", std::to_string(seeds),
             std::to_string(campaign.events), Num(campaign.wall_seconds, 3),
             Num(campaign.EventsPerSec(), 0)});
  table.Print();
  std::printf(
      "\nC12: ok — %llu corruptions injected, %llu detected by scrub, "
      "%llu quarantined (baseline), %llu gossip-repaired (campaign)\n",
      static_cast<unsigned long long>(baseline.injected + campaign.injected),
      static_cast<unsigned long long>(detected),
      static_cast<unsigned long long>(quarantined),
      static_cast<unsigned long long>(repaired));

  BenchJson json("c12_adversarial");
  json.SetString("mode", quick ? "quick" : "full")
      .Set("seeds", static_cast<uint64_t>(seeds))
      .Set("ops_per_seed", static_cast<uint64_t>(ops_per_seed))
      .Set("events_total", baseline.events)
      .Set("wall_seconds", baseline.wall_seconds)
      .Set("events_per_sec", baseline.EventsPerSec())
      .Set("control_events_per_sec", campaign.EventsPerSec())
      .Set("corruptions_injected", baseline.injected + campaign.injected)
      .Set("corruptions_detected", detected)
      .Set("scrub_quarantined", quarantined)
      .Set("scrub_repaired", repaired);
  if (!json.WriteFile()) return 1;
  return 0;
}
