// Shared helpers for the experiment harness.
//
// Every bench binary reproduces one figure or prose claim from the paper
// (see DESIGN.md's experiment index): it runs the deterministic simulation
// experiment, prints the paper-style table to stdout, and registers
// google-benchmark microbenchmarks for the primitives it exercises.

#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/core/cluster.h"

namespace aurora::bench {

/// Prints a titled, pipe-separated table (markdown-ish, stable to diff).
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& Columns(std::vector<std::string> names) {
    columns_ = std::move(names);
    return *this;
  }

  Table& Row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void Print() const {
    std::printf("\n== %s ==\n", title_.c_str());
    auto print_row = [](const std::vector<std::string>& cells) {
      std::printf("|");
      for (const auto& cell : cells) std::printf(" %-22s |", cell.c_str());
      std::printf("\n");
    };
    print_row(columns_);
    std::vector<std::string> rule;
    for (size_t i = 0; i < columns_.size(); ++i) rule.push_back("---");
    print_row(rule);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Us(SimDuration us) {
  char buf[32];
  if (us >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", us / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}

inline std::string Num(double v, int precision = 2) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string LatencySummary(const Histogram& h) {
  return "p50=" + Us(h.P50()) + " p99=" + Us(h.P99()) +
         " p999=" + Us(h.P999());
}

/// Machine-readable companion to the printf tables: collects flat
/// key→value metrics and writes them as `BENCH_<name>.json` so the perf
/// trajectory can be tracked across PRs (diffable, parseable, append-only
/// per run). Output goes to $AURORA_BENCH_JSON_DIR if set, else the
/// current directory. Keys keep insertion order.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  BenchJson& Set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    entries_.emplace_back(key, buf);
    return *this;
  }
  BenchJson& Set(const std::string& key, uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
    return *this;
  }
  BenchJson& Set(const std::string& key, int64_t value) {
    entries_.emplace_back(key, std::to_string(value));
    return *this;
  }
  BenchJson& Set(const std::string& key, int value) {
    return Set(key, static_cast<int64_t>(value));
  }
  /// Embeds an already-rendered JSON value (object/array) verbatim.
  BenchJson& SetRaw(const std::string& key, std::string json_value) {
    entries_.emplace_back(key, std::move(json_value));
    return *this;
  }
  BenchJson& SetString(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted.push_back('\\');
      quoted.push_back(c);
    }
    quoted.push_back('"');
    entries_.emplace_back(key, std::move(quoted));
    return *this;
  }

  std::string Render() const {
    std::string out = "{\n  \"bench\": \"" + name_ + "\"";
    // Host thread count rides in every emitted file: scaling numbers
    // (--threads sweeps) are meaningless without knowing how many cores
    // the run actually had, and gate baselines are host-specific.
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    out += ",\n  \"host_threads\": " + std::to_string(hw);
    for (const auto& [key, value] : entries_) {
      out += ",\n  \"" + key + "\": " + value;
    }
    out += "\n}\n";
    return out;
  }

  std::string FilePath() const {
    const char* dir = std::getenv("AURORA_BENCH_JSON_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/"
                           : std::string();
    return path + "BENCH_" + name_ + ".json";
  }

  /// Writes the JSON file; prints the destination so runs are traceable.
  bool WriteFile() const {
    const std::string path = FilePath();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot open %s\n", path.c_str());
      return false;
    }
    const std::string body = Render();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("[bench-json] wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Issues `n` autocommit single-key transactions back-to-back (closed
/// loop), recording commit latency into the writer's histogram.
inline Status RunClosedLoopWrites(core::AuroraCluster& cluster, int n,
                                  const std::string& prefix = "key") {
  for (int i = 0; i < n; ++i) {
    Status st = cluster.PutBlocking(prefix + std::to_string(i), "value");
    if (!st.ok()) return st;
  }
  return Status::OK();
}

/// One open-loop write arrival process against one writer instance. On a
/// multi-tenant cluster each volume's writer gets its own loop (see
/// StartOpenLoopWrites); the classic single-writer entry point
/// RunOpenLoopWrites drives exactly one.
struct OpenLoopState {
  core::AuroraCluster* cluster = nullptr;
  engine::DbInstance* writer = nullptr;
  Histogram* latencies = nullptr;
  SimDuration interval = 0;
  SimTime end = 0;
  uint64_t acked = 0;
  std::function<void(int)> issue;

  /// Breaks the shared_ptr self-reference cycle; call once the simulator
  /// has run past `end` and `acked` has been read.
  void Finish() { issue = nullptr; }
};

/// Schedules an open-loop write arrival process (fixed rate, `duration`
/// long) against `writer`, recording per-commit latency into `latencies`.
/// Does NOT advance the simulator: start one loop per tenant, then RunFor
/// once so all tenants contend for the same fleet concurrently. Call
/// Finish() on the returned state after the run.
inline std::shared_ptr<OpenLoopState> StartOpenLoopWrites(
    core::AuroraCluster& cluster, engine::DbInstance* writer,
    double txn_per_sec, SimDuration duration, Histogram* latencies) {
  auto state = std::make_shared<OpenLoopState>();
  state->cluster = &cluster;
  state->writer = writer;
  state->latencies = latencies;
  state->interval = static_cast<SimDuration>(1e6 / txn_per_sec);
  state->end = cluster.sim().Now() + duration;
  state->issue = [state](int i) {
    auto& sim = state->cluster->sim();
    if (sim.Now() >= state->end) return;
    engine::DbInstance* writer = state->writer;
    const TxnId txn = writer->Begin();
    const SimTime start = sim.Now();
    writer->Put(txn, "k" + std::to_string(i % 512), "v",
                [state, writer, txn, start](Status st) {
                  if (!st.ok()) return;
                  writer->Commit(txn, [state, start](Status commit_st) {
                    if (!commit_st.ok()) return;
                    state->acked++;
                    if (state->latencies != nullptr) {
                      state->latencies->Record(
                          state->cluster->sim().Now() - start);
                    }
                  });
                });
    sim.Schedule(state->interval, [state, i]() { state->issue(i + 1); });
  };
  state->issue(0);
  return state;
}

/// Issues writes at a fixed arrival rate (open loop) for `duration`,
/// collecting per-commit latency into `latencies`. Returns commits acked.
inline uint64_t RunOpenLoopWrites(core::AuroraCluster& cluster,
                                  double txn_per_sec, SimDuration duration,
                                  Histogram* latencies) {
  auto state = StartOpenLoopWrites(cluster, cluster.writer(), txn_per_sec,
                                   duration, latencies);
  cluster.RunFor(duration + 2 * kSecond);
  const uint64_t acked = state->acked;
  state->Finish();
  return acked;
}

}  // namespace aurora::bench
