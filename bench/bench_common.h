// Shared helpers for the experiment harness.
//
// Every bench binary reproduces one figure or prose claim from the paper
// (see DESIGN.md's experiment index): it runs the deterministic simulation
// experiment, prints the paper-style table to stdout, and registers
// google-benchmark microbenchmarks for the primitives it exercises.

#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/core/cluster.h"

namespace aurora::bench {

/// Prints a titled, pipe-separated table (markdown-ish, stable to diff).
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& Columns(std::vector<std::string> names) {
    columns_ = std::move(names);
    return *this;
  }

  Table& Row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void Print() const {
    std::printf("\n== %s ==\n", title_.c_str());
    auto print_row = [](const std::vector<std::string>& cells) {
      std::printf("|");
      for (const auto& cell : cells) std::printf(" %-22s |", cell.c_str());
      std::printf("\n");
    };
    print_row(columns_);
    std::vector<std::string> rule;
    for (size_t i = 0; i < columns_.size(); ++i) rule.push_back("---");
    print_row(rule);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Us(SimDuration us) {
  char buf[32];
  if (us >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", us / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}

inline std::string Num(double v, int precision = 2) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string LatencySummary(const Histogram& h) {
  return "p50=" + Us(h.P50()) + " p99=" + Us(h.P99()) +
         " p999=" + Us(h.P999());
}

/// Issues `n` autocommit single-key transactions back-to-back (closed
/// loop), recording commit latency into the writer's histogram.
inline Status RunClosedLoopWrites(core::AuroraCluster& cluster, int n,
                                  const std::string& prefix = "key") {
  for (int i = 0; i < n; ++i) {
    Status st = cluster.PutBlocking(prefix + std::to_string(i), "value");
    if (!st.ok()) return st;
  }
  return Status::OK();
}

/// Issues writes at a fixed arrival rate (open loop) for `duration`,
/// collecting per-commit latency into `latencies`. Returns commits acked.
inline uint64_t RunOpenLoopWrites(core::AuroraCluster& cluster,
                                  double txn_per_sec, SimDuration duration,
                                  Histogram* latencies) {
  struct LoopState {
    core::AuroraCluster* cluster;
    engine::DbInstance* writer;
    Histogram* latencies;
    SimDuration interval;
    SimTime end;
    uint64_t acked = 0;
    std::function<void(int)> issue;
  };
  auto state = std::make_shared<LoopState>();
  state->cluster = &cluster;
  state->writer = cluster.writer();
  state->latencies = latencies;
  state->interval = static_cast<SimDuration>(1e6 / txn_per_sec);
  state->end = cluster.sim().Now() + duration;
  state->issue = [state](int i) {
    auto& sim = state->cluster->sim();
    if (sim.Now() >= state->end) return;
    engine::DbInstance* writer = state->writer;
    const TxnId txn = writer->Begin();
    const SimTime start = sim.Now();
    writer->Put(txn, "k" + std::to_string(i % 512), "v",
                [state, writer, txn, start](Status st) {
                  if (!st.ok()) return;
                  writer->Commit(txn, [state, start](Status commit_st) {
                    if (!commit_st.ok()) return;
                    state->acked++;
                    if (state->latencies != nullptr) {
                      state->latencies->Record(
                          state->cluster->sim().Now() - start);
                    }
                  });
                });
    sim.Schedule(state->interval, [state, i]() { state->issue(i + 1); });
  };
  state->issue(0);
  cluster.RunFor(duration + 2 * kSecond);
  const uint64_t acked = state->acked;
  state->issue = nullptr;  // break the shared_ptr self-reference cycle
  return acked;
}

}  // namespace aurora::bench
