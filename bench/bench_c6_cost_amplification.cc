// Experiment C6 — §4.2 claim: quorum sets of unlike members cut cost.
//
// "A protection group is composed of three full segments, which store both
// redo log records and materialized data blocks, and three tail segments,
// which contain redo log records alone. Since most databases use much more
// space for data blocks than for redo logs, this yields a cost
// amplification closer to three copies of the data rather than a full six
// while satisfying our requirement to support AZ+1 failures."
//
// Reproduction: run identical workloads on a uniform-6 volume and a
// full/tail volume; measure actual bytes resident per segment class, the
// amplification relative to one logical copy, and prove both layouts'
// quorums still overlap.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace aurora {
namespace {

struct CostRow {
  const char* name;
  uint64_t block_bytes = 0;
  uint64_t log_bytes = 0;
  uint64_t logical_bytes = 0;  // one copy of materialized state
  bool quorums_sound = false;
};

CostRow RunModel(quorum::QuorumModel model, const char* name) {
  core::AuroraOptions options;
  options.seed = 808;
  options.quorum_model = model;
  options.blocks_per_pg = 1 << 16;
  core::AuroraCluster cluster(options);
  CostRow row;
  row.name = name;
  if (!cluster.StartBlocking().ok()) return row;
  // A data-heavy workload: many distinct keys with 256B values.
  for (int i = 0; i < 1200; ++i) {
    (void)cluster.PutBlocking("row" + std::to_string(i),
                              std::string(256, 'd'));
  }
  cluster.RunFor(2 * kSecond);  // coalesce + backup settle
  // Advance PGMRPL so MVCC version GC can run, then GC.
  (void)cluster.GetBlocking("row0");
  cluster.RunFor(2 * kSecond);

  uint64_t logical = 0;
  for (const auto& node : cluster.storage_nodes()) {
    for (const auto& [id, segment] : node->segments()) {
      row.block_bytes += segment->TotalVersionBytes();
      row.log_bytes += segment->HotLogBytes();
      if (segment->is_full()) {
        logical = std::max(logical, segment->TotalVersionBytes());
      }
    }
  }
  row.logical_bytes = logical;
  const auto& pg = cluster.geometry().Pg(0);
  row.quorums_sound =
      quorum::QuorumSet::AlwaysOverlaps(pg.ReadSet(), pg.WriteSet()) &&
      quorum::QuorumSet::AlwaysOverlaps(pg.WriteSet(), pg.WriteSet());
  return row;
}

}  // namespace
}  // namespace aurora

namespace {

void BM_FullTailQuorumConstruction(benchmark::State& state) {
  std::vector<aurora::quorum::SegmentInfo> members;
  for (aurora::SegmentId id = 0; id < 6; ++id) {
    members.push_back({id, static_cast<aurora::NodeId>(100 + id),
                       static_cast<aurora::AzId>(id / 2), id % 2 == 0});
  }
  auto config = aurora::quorum::PgConfig::Create(
      0, aurora::quorum::QuorumModel::kFullTail, members);
  for (auto _ : state) {
    benchmark::DoNotOptimize(config.WriteSet());
    benchmark::DoNotOptimize(config.ReadSet());
  }
}
BENCHMARK(BM_FullTailQuorumConstruction);

}  // namespace

int main(int argc, char** argv) {
  using aurora::bench::Num;
  using aurora::bench::Table;

  auto uniform = aurora::RunModel(aurora::quorum::QuorumModel::kUniform46,
                                  "6 full segments (uniform 4/6)");
  auto fulltail = aurora::RunModel(aurora::quorum::QuorumModel::kFullTail,
                                   "3 full + 3 tail (4/6 or 3/3F)");

  Table table("C6: storage cost amplification, same 1200-row workload");
  table.Columns({"layout", "block bytes (fleet)", "log bytes (fleet)",
                 "amplification vs 1 copy", "quorum rules hold"});
  auto row = [&](const aurora::CostRow& r) {
    const double amp =
        r.logical_bytes == 0
            ? 0
            : static_cast<double>(r.block_bytes) / r.logical_bytes;
    table.Row({r.name, std::to_string(r.block_bytes),
               std::to_string(r.log_bytes), Num(amp, 2) + "x",
               r.quorums_sound ? "yes" : "NO (BUG)"});
  };
  row(uniform);
  row(fulltail);
  table.Print();
  std::printf(
      "(Block state dominates log state, so dropping materialization on\n"
      " three of six segments takes amplification from ~6x toward ~3x —\n"
      " §4.2's 'cost amplification closer to three copies' — while the\n"
      " exhaustive prover confirms the asymmetric quorums still overlap.)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
