// Experiments F4 + C7 — Figure 4: log truncation at crash recovery, and
// the §2.4 claim that Aurora needs NO redo replay.
//
// Aurora's recovery cost is a handful of quorum round-trips (probe SCLs,
// fetch tail shapes, install the new epoch + truncation) — independent of
// how much redo was written since any "checkpoint", because segments
// materialize blocks on their own. A traditional ARIES engine replays the
// log since the last checkpoint before opening.
//
// The table sweeps the amount of redo written before the crash and
// reports: measured Aurora recovery time (live cluster), ARIES expected
// replay time (same disk model), and verifies the ragged edge was snipped
// (in-flight un-acked writes annulled).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/baseline/aries.h"

namespace aurora {
namespace {

struct RecoveryRow {
  int txns_before_crash;
  SimDuration aurora_recovery;
  SimDuration aries_recovery;
  bool acked_survived;
  bool unacked_annulled;
  VolumeEpoch epoch_after;
};

RecoveryRow RunOnce(int txns) {
  core::AuroraOptions options;
  options.seed = 777;
  options.num_pgs = 2;
  options.blocks_per_pg = 1 << 16;
  core::AuroraCluster cluster(options);
  RecoveryRow row;
  row.txns_before_crash = txns;
  if (!cluster.StartBlocking().ok()) return row;
  for (int i = 0; i < txns; ++i) {
    (void)cluster.PutBlocking("k" + std::to_string(i % 300), "v" +
                              std::to_string(i));
  }
  // An in-flight transaction whose writes are issued but whose commit is
  // NOT acknowledged — the "ragged edge" of Figure 4.
  auto* writer = cluster.writer();
  const TxnId loser = writer->Begin();
  bool loser_acked = false;
  writer->Put(loser, "ragged-edge", "in-flight", [&](Status st) {
    if (st.ok()) {
      writer->Commit(loser, [&](Status cs) { loser_acked = cs.ok(); });
    }
  });
  // Crash immediately: the loser's records are in flight, unacked.
  cluster.CrashWriter();
  const SimTime crash_at = cluster.sim().Now();
  cluster.RunFor(10 * kMillisecond);

  const SimTime recovery_start = cluster.sim().Now();
  Status st = cluster.RecoverWriterBlocking();
  row.aurora_recovery = cluster.sim().Now() - recovery_start;
  if (!st.ok()) return row;
  row.epoch_after = cluster.writer()->volume_epoch();
  (void)crash_at;

  // Verify durability of the last acked write and annulment of the edge.
  auto last = cluster.GetBlocking("k" + std::to_string((txns - 1) % 300));
  row.acked_survived =
      last.ok() && !loser_acked;
  auto edge = cluster.GetBlocking("ragged-edge");
  row.unacked_annulled = edge.status().IsNotFound();

  // ARIES comparator: same number of redo records (≈4 records per txn:
  // undo + row + commit + occasional splits), no checkpoint since start.
  sim::Simulator aries_sim;
  baseline::AriesEngine aries(&aries_sim);
  aries.AppendRecords(static_cast<uint64_t>(txns) * 4);
  row.aries_recovery = aries.ExpectedRecoveryTime();
  return row;
}

}  // namespace
}  // namespace aurora

namespace {

void BM_AuroraRecovery(benchmark::State& state) {
  // Wall-clock cost of a full simulated crash recovery cycle.
  for (auto _ : state) {
    aurora::core::AuroraOptions options;
    options.blocks_per_pg = 1 << 16;
    aurora::core::AuroraCluster cluster(options);
    if (!cluster.StartBlocking().ok()) {
      state.SkipWithError("bootstrap failed");
      return;
    }
    for (int i = 0; i < 20; ++i) {
      (void)cluster.PutBlocking("k" + std::to_string(i), "v");
    }
    cluster.CrashWriter();
    cluster.RunFor(10 * aurora::kMillisecond);
    benchmark::DoNotOptimize(cluster.RecoverWriterBlocking());
  }
}
BENCHMARK(BM_AuroraRecovery)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using aurora::bench::Table;
  using aurora::bench::Us;

  Table table(
      "Figure 4 / C7: time-to-open after crash vs redo since checkpoint");
  table.Columns({"txns before crash", "Aurora recovery", "ARIES replay",
                 "acked survived", "ragged edge annulled", "epoch"});
  for (int txns : {100, 1000, 5000, 20000}) {
    auto row = aurora::RunOnce(txns);
    table.Row({std::to_string(row.txns_before_crash),
               Us(row.aurora_recovery), Us(row.aries_recovery),
               row.acked_survived ? "yes" : "NO (BUG)",
               row.unacked_annulled ? "yes" : "NO (BUG)",
               std::to_string(row.epoch_after)});
  }
  table.Print();
  std::printf(
      "(Aurora recovery is a constant few hundred ms of quorum RTTs and\n"
      " epoch installation, independent of log depth; ARIES replay grows\n"
      " linearly with redo since the last checkpoint. Undo of in-flight\n"
      " transactions happens lazily AFTER opening, in both designs'\n"
      " favor here.)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
