// Experiment C10 — the production-scale read path.
//
// §3.1: Aurora reads avoid quorums entirely — the instance tracks
// segment-level SCL bookkeeping, routes each block read to one up-to-date
// segment, and hedges slow requests. §3.4 adds up to 15 read replicas on
// the shared volume, each applying the writer's redo stream to cached
// blocks only. This bench drives that whole stack at production shape:
// client sessions issue Zipf-skewed read/update mixes against replica
// fleets of 1/3/7/15, with replica caches sized well below the working
// set so misses become real SegmentStore reads (eviction-driven, not
// synthetic).
//
// Per cell (replicas x zipf-theta x update-ratio) the run reports:
//   * read p50/p99      — session-observed simulated latency;
//   * cache hit rate    — replica BufferCache hits/(hits+misses);
//   * hedge rate        — driver hedged reads / reads issued (§3.1);
//   * replica lag       — sampled (writer VDL - replica VDL) percentiles;
//   * reads/sec         — wall-clock session read completions (the gated
//                         floor in scripts/bench_gate.sh).
//
// `--quick` runs one small cell as a CTest smoke + bench_gate input; the
// full run sweeps replicas {1,3,7,15} x theta {0, 0.99, 1.2} x update
// ratios {0, 0.2}. Everything is driven on the serial engine and is
// deterministic in the seed (the read-heavy parallel-engine equivalence
// is covered by parallel_determinism_test).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/histogram.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/core/session.h"

namespace aurora {
namespace {

struct ReadPathConfig {
  size_t replicas = 3;
  double theta = 0.99;
  double update_ratio = 0.0;
  /// Fraction of read ops issued as ClientSession::Scan (16-key ranges
  /// starting at the Zipf key) instead of point Gets — the "session Scan"
  /// ablation. Scans take the same anchored-replica route as Gets.
  double scan_ratio = 0.0;
  int keys = 1200;
  int sessions = 4;
  SimDuration window = 150 * kMillisecond;
  uint64_t seed = 7101;

  std::string Label() const {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "r%02zu_t%03d_u%02d", replicas,
                  static_cast<int>(theta * 100 + 0.5),
                  static_cast<int>(update_ratio * 100 + 0.5));
    return buf;
  }
};

struct ReadPathResult {
  ReadPathConfig config;
  uint64_t gets_done = 0;
  uint64_t puts_done = 0;
  uint64_t scans_done = 0;
  uint64_t anchor_waits = 0;  // replica reads parked for a VDL advance
  uint64_t replica_reads = 0;
  uint64_t writer_fallbacks = 0;
  uint64_t storage_reads_issued = 0;  // replica drivers -> SegmentStore
  uint64_t hedged_reads = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  Histogram read_latency;  // session-observed, simulated us
  Histogram scan_latency;  // session-observed Scan completions
  Histogram replica_lag;   // sampled writer VDL - replica VDL, in LSNs
  double wall_seconds = 0;
  std::string metrics_json;

  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 1.0 : static_cast<double>(cache_hits) / total;
  }
  double HedgeRate() const {
    return storage_reads_issued == 0
               ? 0.0
               : static_cast<double>(hedged_reads) / storage_reads_issued;
  }
  double ReadsPerSec() const { return gets_done / wall_seconds; }
};

// One closed-loop session: at most one operation in flight, Zipf key
// choice, a small think time so sessions interleave rather than lockstep.
struct SessionLoop {
  std::unique_ptr<core::ClientSession> session;
  Rng rng{0};
  ZipfianGenerator zipf{1, 0.99};
  double update_ratio = 0.0;
  double scan_ratio = 0.0;
  int keys = 0;
  SimTime deadline = 0;
  uint64_t gets_done = 0;
  uint64_t puts_done = 0;
  uint64_t scans_done = 0;
  Histogram* latency = nullptr;
  Histogram* scan_latency = nullptr;
  core::AuroraCluster* cluster = nullptr;

  void Pump() {
    auto& sim = cluster->sim();
    if (sim.Now() >= deadline) return;
    const int k = static_cast<int>(zipf.Next(rng)) % keys;
    char key[16];
    std::snprintf(key, sizeof(key), "c10-%05d", k);
    auto next = [this] {
      cluster->sim().Schedule(50 + rng.Next() % 100, [this] { Pump(); });
    };
    if (update_ratio > 0 && rng.NextDouble() < update_ratio) {
      session->Put(key, "u" + std::to_string(puts_done),
                   [this, next](Status st) {
                     if (st.ok()) puts_done++;
                     next();
                   });
    } else if (scan_ratio > 0 && rng.NextDouble() < scan_ratio) {
      // Range scan: 16 keys starting at the Zipf pick. Scans ride the
      // same anchored-replica route as Gets, so a scan landing right
      // after this session's own update parks on the anchor-wait path.
      char hi[16];
      std::snprintf(hi, sizeof(hi), "c10-%05d", k + 16);
      const SimTime start = sim.Now();
      session->Scan(
          key, hi, 16,
          [this, next, start](
              Result<std::vector<std::pair<std::string, std::string>>> r) {
            if (r.ok()) {
              scans_done++;
              scan_latency->Record(cluster->sim().Now() - start);
            }
            next();
          });
    } else {
      const SimTime start = sim.Now();
      session->Get(key, [this, next, start](Result<std::string> r) {
        if (r.ok()) {
          gets_done++;
          latency->Record(cluster->sim().Now() - start);
        }
        next();
      });
    }
  }
};

ReadPathResult RunReadPathCell(const ReadPathConfig& config) {
  ReadPathResult result;
  result.config = config;

  core::AuroraOptions options;
  options.seed = config.seed;
  options.blocks_per_pg = 1 << 16;
  // The working set (keys/64 leaves and the internal pages above them)
  // must dwarf the replica cache so Zipf tails evict and refetch.
  options.replica.cache_pages = 24;
  core::AuroraCluster cluster(options);
  if (!cluster.StartBlocking().ok()) return result;

  for (int i = 0; i < config.keys; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "c10-%05d", i);
    if (!cluster.PutBlocking(key, "seed").ok()) return result;
  }
  std::vector<replica::ReadReplica*> reps;
  for (size_t i = 0; i < config.replicas; ++i) {
    replica::ReadReplica* rep = cluster.AddReplica();
    if (rep == nullptr) break;  // kMaxReplicas
    reps.push_back(rep);
  }
  cluster.RunFor(100 * kMillisecond);  // replicas prime their VDL

  auto& registry = metrics::Registry::Global();
  registry.Reset();
  metrics::Registry::SetEnabled(true);

  std::vector<std::unique_ptr<SessionLoop>> loops;
  const SimTime deadline = cluster.sim().Now() + config.window;
  for (int s = 0; s < config.sessions; ++s) {
    auto loop = std::make_unique<SessionLoop>();
    core::SessionOptions session_options;
    session_options.replica_offset = static_cast<size_t>(s);
    loop->session = std::make_unique<core::ClientSession>(
        &cluster, static_cast<AzId>(s % 3), session_options);
    loop->rng = Rng(config.seed * 100 + s);
    loop->zipf = ZipfianGenerator(config.keys, config.theta);
    loop->update_ratio = config.update_ratio;
    loop->scan_ratio = config.scan_ratio;
    loop->keys = config.keys;
    loop->deadline = deadline;
    loop->latency = &result.read_latency;
    loop->scan_latency = &result.scan_latency;
    loop->cluster = &cluster;
    SessionLoop* raw = loop.get();
    cluster.sim().Schedule(1 + s * 17, [raw] { raw->Pump(); });
    loops.push_back(std::move(loop));
  }

  // Lag sampler: every 2ms record each replica's VDL distance behind the
  // writer (in LSNs — the natural unit of the redo stream).
  struct LagSampler {
    core::AuroraCluster* cluster;
    std::vector<replica::ReadReplica*>* reps;
    Histogram* lag;
    SimTime deadline;
    void Tick() {
      if (cluster->sim().Now() >= deadline) return;
      const Lsn writer_vdl = cluster->writer()->vdl();
      for (replica::ReadReplica* rep : *reps) {
        const Lsn rep_vdl = rep->vdl();
        if (writer_vdl == kInvalidLsn || rep_vdl == kInvalidLsn) continue;
        lag->Record(writer_vdl >= rep_vdl
                        ? static_cast<SimDuration>(writer_vdl - rep_vdl)
                        : 0);
      }
      cluster->sim().Schedule(2 * kMillisecond, [this] { Tick(); });
    }
  };
  LagSampler sampler{&cluster, &reps, &result.replica_lag, deadline};
  sampler.Tick();

  const auto wall_start = std::chrono::steady_clock::now();
  cluster.RunFor(config.window + 50 * kMillisecond);
  const auto wall_end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (result.wall_seconds <= 0) result.wall_seconds = 1e-9;

  for (const auto& loop : loops) {
    result.gets_done += loop->gets_done;
    result.puts_done += loop->puts_done;
    result.scans_done += loop->scans_done;
    result.replica_reads += loop->session->stats().replica_reads;
    result.writer_fallbacks += loop->session->stats().writer_fallbacks;
  }
  for (replica::ReadReplica* rep : reps) {
    result.anchor_waits += rep->stats().anchor_waits;
    result.storage_reads_issued += rep->driver()->stats().reads_issued;
    result.hedged_reads += rep->driver()->router().hedged_reads();
    const auto& cache_stats = rep->cache().stats();
    result.cache_hits += cache_stats.hits;
    result.cache_misses += cache_stats.misses;
    result.cache_evictions += cache_stats.evictions;
  }
  result.metrics_json = registry.ToJson();
  metrics::Registry::SetEnabled(false);
  registry.Reset();
  return result;
}

}  // namespace
}  // namespace aurora

namespace {

// ------------------------------------------------------------------- //
// Microbenchmark: the Zipf generator itself (it sits on every simulated
// read issue path in this bench).

void BM_ZipfNext(benchmark::State& state) {
  aurora::ZipfianGenerator zipf(100000, 0.99);
  aurora::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfNext);

}  // namespace

int main(int argc, char** argv) {
  using aurora::bench::BenchJson;
  using aurora::bench::Num;
  using aurora::bench::Table;

  bool quick = false;
  double scan_ratio = -1;  // <0: per-mode default (quick 0.15, full 0)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--scan-ratio=", 13) == 0) {
      scan_ratio = std::atof(argv[i] + 13);
    }
  }

  std::vector<aurora::ReadPathConfig> cells;
  if (quick) {
    aurora::ReadPathConfig config;
    config.replicas = 3;
    config.theta = 0.99;
    config.update_ratio = 0.1;
    // Scans on by default in the smoke cell so the anchor-wait assertion
    // below exercises the Scan route on every CTest run.
    config.scan_ratio = scan_ratio < 0 ? 0.15 : scan_ratio;
    config.keys = 600;
    config.window = 100 * aurora::kMillisecond;
    cells.push_back(config);
  } else {
    for (size_t replicas : {1u, 3u, 7u, 15u}) {
      for (double theta : {0.0, 0.99, 1.2}) {
        for (double update_ratio : {0.0, 0.2}) {
          aurora::ReadPathConfig config;
          config.replicas = replicas;
          config.theta = theta;
          config.update_ratio = update_ratio;
          config.scan_ratio = scan_ratio < 0 ? 0.0 : scan_ratio;
          cells.push_back(config);
        }
      }
    }
  }

  Table table(quick ? "C10: read path (quick cell)"
                    : "C10: read path — replicas x zipf x update sweep");
  table.Columns({"cell", "reads", "scans", "p50", "p99", "hit rate",
                 "hedge rate", "lag p50/p99 (lsns)", "fallbacks"});

  BenchJson json("c10_read_path");
  json.SetString("mode", quick ? "quick" : "full");

  std::vector<aurora::ReadPathResult> results;
  for (const auto& config : cells) {
    aurora::ReadPathResult r = aurora::RunReadPathCell(config);
    if (r.gets_done == 0) {
      std::fprintf(stderr, "C10: cell %s completed no reads\n",
                   config.Label().c_str());
      return 1;
    }
    if (r.CacheHitRate() >= 1.0) {
      std::fprintf(stderr,
                   "C10: cell %s never missed cache — the working set no "
                   "longer exercises eviction-driven storage reads\n",
                   config.Label().c_str());
      return 1;
    }
    if (config.scan_ratio > 0 && quick) {
      // Smoke contract for the Scan ablation: scans must actually run
      // AND at least one anchored replica read must have parked for a
      // VDL advance — proof the session-consistency wait path is being
      // exercised, not just the fast path.
      if (r.scans_done == 0) {
        std::fprintf(stderr, "C10: cell %s issued no scans at scan_ratio "
                     "%.2f\n", config.Label().c_str(), config.scan_ratio);
        return 1;
      }
      if (r.anchor_waits == 0) {
        std::fprintf(stderr,
                     "C10: cell %s never hit the anchor-wait path — "
                     "session reads are no longer parking on VDL\n",
                     config.Label().c_str());
        return 1;
      }
    }
    table.Row({config.Label(), std::to_string(r.gets_done),
               std::to_string(r.scans_done),
               aurora::bench::Us(r.read_latency.P50()),
               aurora::bench::Us(r.read_latency.P99()),
               Num(r.CacheHitRate(), 3), Num(r.HedgeRate(), 4),
               std::to_string(r.replica_lag.P50()) + " / " +
                   std::to_string(r.replica_lag.P99()),
               std::to_string(r.writer_fallbacks)});
    results.push_back(std::move(r));
  }
  table.Print();

  // Headline keys (the quick cell / first cell) feed the bench gate; the
  // full sweep lands per-cell under a label suffix.
  const aurora::ReadPathResult& head = results.front();
  json.Set("reads_done", head.gets_done)
      .Set("updates_done", head.puts_done)
      .Set("scans_done", head.scans_done)
      .Set("scan_p50_us", static_cast<uint64_t>(head.scan_latency.P50()))
      .Set("scan_p99_us", static_cast<uint64_t>(head.scan_latency.P99()))
      .Set("anchor_waits", head.anchor_waits)
      .Set("reads_per_sec", head.ReadsPerSec())
      .Set("read_p50_us", static_cast<uint64_t>(head.read_latency.P50()))
      .Set("read_p99_us", static_cast<uint64_t>(head.read_latency.P99()))
      .Set("cache_hit_rate", head.CacheHitRate())
      .Set("cache_evictions", head.cache_evictions)
      .Set("storage_reads_issued", head.storage_reads_issued)
      .Set("hedged_reads", head.hedged_reads)
      .Set("hedge_rate", head.HedgeRate())
      .Set("replica_reads", head.replica_reads)
      .Set("writer_fallbacks", head.writer_fallbacks)
      .Set("lag_p50_lsns", static_cast<uint64_t>(head.replica_lag.P50()))
      .Set("lag_p99_lsns", static_cast<uint64_t>(head.replica_lag.P99()))
      .Set("wall_seconds", head.wall_seconds);
  if (!quick) {
    for (const auto& r : results) {
      const std::string suffix = "_" + r.config.Label();
      json.Set("reads_done" + suffix, r.gets_done)
          .Set("read_p50_us" + suffix,
               static_cast<uint64_t>(r.read_latency.P50()))
          .Set("read_p99_us" + suffix,
               static_cast<uint64_t>(r.read_latency.P99()))
          .Set("cache_hit_rate" + suffix, r.CacheHitRate())
          .Set("hedge_rate" + suffix, r.HedgeRate())
          .Set("lag_p99_lsns" + suffix,
               static_cast<uint64_t>(r.replica_lag.P99()));
    }
  }
  json.SetRaw("metrics", head.metrics_json);
  if (!json.WriteFile()) return 1;

  if (!quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
