// Experiment C3 — §3.1 claim: avoiding the read-quorum amplification.
//
// "A buffer cache miss in Aurora's quorum model would seem to require a
// minimum of three read I/Os, and likely five, to mask outlier latency...
// Aurora does not do quorum reads. The database instance knows which
// segments have the last durable version of a data block and can request
// it directly... The database instance will usually issue a request to the
// segment with the lowest measured latency... If a request is taking
// longer than expected, it will issue a read to another storage node and
// accept whichever one returns first."
//
// The table compares, for a point-read workload with cold cache:
//   (a) Aurora routed read (+hedging),
//   (b) a Vr=3 quorum read (wait for 3 of 6 responses),
// under a healthy fleet and with one slow storage node.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace aurora {
namespace {

struct ReadResult {
  Histogram latency;
  uint64_t ios = 0;
  uint64_t reads = 0;
  uint64_t hedges = 0;
};

core::AuroraCluster* MakeLoadedCluster(uint64_t seed, bool slow_node) {
  core::AuroraOptions options;
  options.seed = seed;
  options.blocks_per_pg = 1 << 16;
  options.db.cache_pages = 64;  // small cache: reads go to storage
  auto* cluster = new core::AuroraCluster(options);
  if (!cluster->StartBlocking().ok()) return cluster;
  for (int i = 0; i < 400; ++i) {
    (void)cluster->PutBlocking("key" + std::to_string(i), "v");
  }
  cluster->RunFor(kSecond);  // coalesce everywhere
  if (slow_node) {
    cluster->network().SetNodeSlowdown(
        cluster->StorageNodeIds()[0], 15.0);
  }
  return cluster;
}

// (a) Aurora routed reads: the driver's normal block-read path (latency
// tracking + hedging), reading the same block the quorum baseline reads.
ReadResult AuroraReads(core::AuroraCluster& cluster, int n) {
  ReadResult result;
  auto* driver = cluster.writer()->driver();
  const uint64_t ios_before = driver->stats().reads_issued;
  const BlockId block = engine::kFirstAllocatableBlock;
  const Lsn read_lsn = cluster.writer()->vdl();
  for (int i = 0; i < n; ++i) {
    const SimTime start = cluster.sim().Now();
    bool done = false;
    driver->ReadBlock(block, read_lsn, read_lsn,
                      [&](Result<storage::Page> page) {
                        if (page.ok()) {
                          result.latency.Record(cluster.sim().Now() - start);
                          result.reads++;
                        }
                        done = true;
                      });
    cluster.RunUntil([&]() { return done; }, 5 * kSecond);
  }
  result.ios = driver->stats().reads_issued - ios_before;
  result.hedges = driver->router().hedged_reads();
  return result;
}

// (b) Quorum read baseline: for each read, issue the block read to THREE
// random full segments and wait for all three (take the newest version).
ReadResult QuorumReads(core::AuroraCluster& cluster, int n) {
  ReadResult result;
  Rng rng(6);
  auto* writer = cluster.writer();
  const auto& pg = cluster.geometry().Pg(0);
  std::vector<quorum::SegmentInfo> fulls;
  for (const auto& m : pg.AllMembers()) {
    if (m.is_full) fulls.push_back(m);
  }
  const Lsn read_lsn = writer->vdl();
  for (int i = 0; i < n; ++i) {
    // Read a random known leaf block via three segments.
    const BlockId block = engine::kFirstAllocatableBlock;
    auto pending = std::make_shared<int>(3);
    auto done = std::make_shared<bool>(false);
    const SimTime start = cluster.sim().Now();
    // Choose 3 distinct segments.
    std::vector<size_t> order(fulls.size());
    for (size_t j = 0; j < order.size(); ++j) order[j] = j;
    for (size_t j = order.size(); j > 1; --j) {
      std::swap(order[j - 1], order[rng.NextBounded(j)]);
    }
    for (int j = 0; j < 3; ++j) {
      const auto& target = fulls[order[j]];
      storage::ReadPageRequest request;
      request.segment = target.id;
      request.epochs = EpochVector{writer->volume_epoch(), pg.epoch()};
      request.block = block;
      request.read_lsn = read_lsn;
      result.ios++;
      auto* node = cluster.node(target.node);
      sim::UnaryCall<storage::ReadPageResponse>(
          &cluster.network(), writer->id(), target.node,
          request.SerializedSize(),
          [node, request](sim::ReplyFn<storage::ReadPageResponse> reply) {
            if (node == nullptr) {
              reply(storage::ReadPageResponse{
                  Status::Unavailable("no node"), {}});
              return;
            }
            node->HandleReadPage(request, std::move(reply));
          },
          [](const storage::ReadPageResponse& r) {
            return r.SerializedSize();
          },
          [pending, done, start, &result,
           &cluster](storage::ReadPageResponse) {
            if (--*pending == 0 && !*done) {
              *done = true;
              result.latency.Record(cluster.sim().Now() - start);
              result.reads++;
            }
          });
    }
    cluster.RunUntil([&]() { return *done; }, 5 * kSecond);
  }
  return result;
}

}  // namespace
}  // namespace aurora

namespace {

void BM_ReadRouterRank(benchmark::State& state) {
  aurora::engine::ReadRouter router;
  aurora::Rng rng(1);
  for (aurora::SegmentId s = 0; s < 6; ++s) {
    router.ObserveLatency(s, 200 + s * 100);
  }
  std::vector<aurora::SegmentId> eligible = {0, 1, 2, 3, 4, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.Rank(eligible, rng));
  }
}
BENCHMARK(BM_ReadRouterRank);

}  // namespace

int main(int argc, char** argv) {
  using aurora::bench::Num;
  using aurora::bench::Table;
  using aurora::bench::Us;

  Table table("C3: cold-cache point reads — routed single read vs 3/6 "
              "quorum read (300 reads per cell)");
  table.Columns({"fleet", "strategy", "p50", "p99", "I/Os per read",
                 "hedges"});
  for (bool slow : {false, true}) {
    {
      auto* cluster = aurora::MakeLoadedCluster(21, slow);
      auto r = aurora::AuroraReads(*cluster, 300);
      table.Row({slow ? "one 15x-slow node" : "healthy",
                 "Aurora routed + hedged", Us(r.latency.P50()),
                 Us(r.latency.P99()),
                 Num(r.reads ? static_cast<double>(r.ios) / r.reads : 0, 2),
                 std::to_string(r.hedges)});
      delete cluster;
    }
    {
      auto* cluster = aurora::MakeLoadedCluster(22, slow);
      auto r = aurora::QuorumReads(*cluster, 300);
      table.Row({slow ? "one 15x-slow node" : "healthy",
                 "quorum read (wait for 3/6)", Us(r.latency.P50()),
                 Us(r.latency.P99()),
                 Num(r.reads ? static_cast<double>(r.ios) / r.reads : 0, 2),
                 "-"});
      delete cluster;
    }
  }
  table.Print();
  std::printf(
      "(The quorum read pays 3x the I/O on every read and its latency is\n"
      " the MAX of three responses; the routed read pays ~1 I/O and hedges\n"
      " only when the chosen segment is slow, capping the p99.)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
