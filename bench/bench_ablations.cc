// Ablation studies for the design choices DESIGN.md calls out.
//
// A1 — hedged reads: §3.1 says tracked-latency routing is "subject to
//      latency when storage nodes are down or jitter when they are busy"
//      unless a second request caps the tail. Toggle hedging under a slow
//      node and measure the read tail.
// A2 — gossip: §2.3 uses peer gossip to fill segment holes. Disable it
//      and watch lagging segments rely solely on the driver's
//      retransmission sweep (slower convergence after an outage).
// A3 — boxcar dispatch window: sweep the Aurora submit-on-first dispatch
//      delay to show the latency/packing trade-off the paper describes.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/log/boxcar.h"

namespace aurora {
namespace {

// ---------------------------------------------------------------------- //
// A1: hedging on/off under a slow node.

struct HedgePoint {
  Histogram latencies;
  uint64_t hedges_fired = 0;
};

/// One A1 cell: read tail under a 30x-slow node with the given hedge
/// tuning. multiplier <= 0 disables hedging entirely (the "off" arm).
HedgePoint ReadTail(double multiplier, SimDuration max_hedge_delay) {
  core::AuroraOptions options;
  options.seed = 1401;
  options.blocks_per_pg = 1 << 16;
  if (multiplier <= 0) {
    // Effectively never hedge.
    options.db.driver.router.hedge_multiplier = 1e9;
    options.db.driver.router.max_hedge_delay = 3600LL * kSecond;
    options.db.driver.read_deadline = 3600LL * kSecond;
  } else {
    options.db.driver.router.hedge_multiplier = multiplier;
    options.db.driver.router.max_hedge_delay = max_hedge_delay;
  }
  core::AuroraCluster cluster(options);
  if (!cluster.StartBlocking().ok()) return {};
  for (int i = 0; i < 200; ++i) {
    (void)cluster.PutBlocking("key" + std::to_string(i), "v");
  }
  cluster.RunFor(kSecond);
  // Make one node 30x slow AFTER the router has learned it is fast (it
  // hosts the lowest-latency segment from the writer's AZ).
  cluster.network().SetNodeSlowdown(cluster.StorageNodeIds()[0], 30.0);

  HedgePoint point;
  auto* driver = cluster.writer()->driver();
  const BlockId block = engine::kFirstAllocatableBlock;
  const Lsn read_lsn = cluster.writer()->pgcl(0);
  for (int i = 0; i < 300; ++i) {
    bool done = false;
    const SimTime start = cluster.sim().Now();
    driver->ReadBlock(block, read_lsn, kInvalidLsn,
                      [&](Result<storage::Page> page) {
                        if (page.ok()) {
                          point.latencies.Record(cluster.sim().Now() - start);
                        }
                        done = true;
                      });
    cluster.RunUntil([&]() { return done; }, 10 * kSecond);
  }
  point.hedges_fired = driver->router().hedged_reads();
  return point;
}

// ---------------------------------------------------------------------- //
// A2: gossip on/off — convergence after a node outage.

struct GossipResult {
  SimDuration convergence_time = -1;
  uint64_t gossip_filled = 0;
  uint64_t retransmissions = 0;
};

GossipResult OutageConvergence(bool gossip_enabled) {
  core::AuroraOptions options;
  options.seed = 1402;
  options.blocks_per_pg = 1 << 16;
  if (!gossip_enabled) {
    options.storage_node.gossip_interval = 3600LL * kSecond;
  }
  // Slow the retransmission safety net so the mechanisms are separable.
  options.db.driver.retry_interval = 500 * kMillisecond;
  core::AuroraCluster cluster(options);
  GossipResult result;
  if (!cluster.StartBlocking().ok()) return result;
  (void)bench::RunClosedLoopWrites(cluster, 20, "warm");

  // One storage node misses a burst of writes.
  const NodeId victim = cluster.StorageNodeIds()[0];
  cluster.network().Crash(victim);
  for (int i = 0; i < 50; ++i) {
    (void)cluster.PutBlocking("burst" + std::to_string(i), "v");
  }
  cluster.network().Restart(victim);
  const SimTime restart_at = cluster.sim().Now();

  // Converged when every segment's SCL matches the fleet max.
  auto converged = [&]() {
    Lsn lo = UINT64_MAX, hi = 0;
    for (const auto& node : cluster.storage_nodes()) {
      for (const auto& [id, segment] : node->segments()) {
        lo = std::min(lo, segment->scl());
        hi = std::max(hi, segment->scl());
      }
    }
    return lo == hi;
  };
  if (cluster.RunUntil(converged, 30 * kSecond)) {
    result.convergence_time = cluster.sim().Now() - restart_at;
  }
  for (const auto& node : cluster.storage_nodes()) {
    for (const auto& [id, segment] : node->segments()) {
      result.gossip_filled += segment->stats().records_gossip_filled;
    }
  }
  result.retransmissions = cluster.writer()->driver()->stats().retransmissions;
  return result;
}

// ---------------------------------------------------------------------- //
// A3: boxcar dispatch-window sweep.

struct BoxcarPoint {
  SimDuration delay_p99 = 0;
  double fill = 0;
};

BoxcarPoint DispatchWindow(SimDuration window, double records_per_sec) {
  sim::Simulator sim(1403);
  log::BoxcarOptions options;
  options.policy = log::BoxcarPolicy::kSubmitOnFirst;
  options.dispatch_delay = window;
  BoxcarPoint point;
  Histogram delays;
  std::map<Lsn, SimTime> arrival;
  log::BoxcarBatcher boxcar(&sim, options,
                            [&](std::vector<log::RedoRecord> batch) {
                              for (const auto& rec : batch) {
                                delays.Record(sim.Now() - arrival[rec.lsn]);
                              }
                            });
  Rng rng(3);
  Lsn next = 1;
  std::function<void()> arrive = [&]() {
    if (sim.Now() >= 3 * kSecond) return;
    log::RedoRecord rec;
    rec.lsn = next++;
    rec.payload = std::string(200, 'x');
    arrival[rec.lsn] = sim.Now();
    boxcar.Add(std::move(rec));
    sim.Schedule(static_cast<SimDuration>(
                     rng.NextExponential(1e6 / records_per_sec)),
                 arrive);
  };
  arrive();
  sim.Run();
  boxcar.Flush();
  point.delay_p99 = delays.P99();
  point.fill = boxcar.MeanBatchFill();
  return point;
}

}  // namespace
}  // namespace aurora

namespace {

void BM_RouterHedgeDelay(benchmark::State& state) {
  aurora::engine::ReadRouter router;
  router.ObserveLatency(1, 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.HedgeDelay(1));
  }
}
BENCHMARK(BM_RouterHedgeDelay);

}  // namespace

int main(int argc, char** argv) {
  using aurora::bench::Num;
  using aurora::bench::Table;
  using aurora::bench::Us;

  {
    // Hedge-tuning sweep (EXPERIMENTS.md "hedged-read tuning" ablation):
    // trigger multiplier x delay ceiling under the same 30x-slow node.
    Table table("A1: hedged reads under one 30x-slow node (300 reads)");
    table.Columns({"hedging", "p50", "p99", "max", "hedges fired"});
    auto off = aurora::ReadTail(0, 0);
    table.Row({"off", Us(off.latencies.P50()), Us(off.latencies.P99()),
               Us(off.latencies.max()), std::to_string(off.hedges_fired)});
    for (double multiplier : {1.5, 2.0, 3.0}) {
      for (aurora::SimDuration delay :
           {5 * aurora::kMillisecond, 20 * aurora::kMillisecond}) {
        auto point = aurora::ReadTail(multiplier, delay);
        char label[48];
        std::snprintf(label, sizeof(label), "%.1fx trigger, %lldms cap",
                      multiplier,
                      static_cast<long long>(delay / aurora::kMillisecond));
        table.Row({label, Us(point.latencies.P50()),
                   Us(point.latencies.P99()), Us(point.latencies.max()),
                   std::to_string(point.hedges_fired)});
      }
    }
    table.Print();
    std::printf(
        "(Without hedging, reads routed to the newly-slow segment ride out "
        "its full latency.\n Tighter triggers cap the tail sooner but fire "
        "spurious hedges on healthy jitter —\n the shipped default stays "
        "3.0x / 20ms: same steady-state tail as the aggressive\n settings "
        "once the router's EWMA has re-learned the slow node, at the lowest "
        "hedge\n rate. See EXPERIMENTS.md, ablations.)\n");
  }
  {
    Table table("A2: catching a lagging segment up after a 50-write outage");
    table.Columns({"gossip", "fleet SCL convergence", "gossip-filled",
                   "driver retransmissions"});
    auto on = aurora::OutageConvergence(true);
    auto off = aurora::OutageConvergence(false);
    table.Row({"on (100ms interval)",
               on.convergence_time < 0 ? "never" : Us(on.convergence_time),
               std::to_string(on.gossip_filled),
               std::to_string(on.retransmissions)});
    table.Row({"off",
               off.convergence_time < 0 ? "never" : Us(off.convergence_time),
               std::to_string(off.gossip_filled),
               std::to_string(off.retransmissions)});
    table.Print();
    std::printf(
        "(Gossip is THE catch-up mechanism: the writer only retransmits\n"
        " records not yet globally durable, so once a write reaches quorum\n"
        " elsewhere, a lagging segment can ONLY be healed peer-to-peer —\n"
        " disable gossip and its SCL never converges. This is §2.1's\n"
        " 'heals without database involvement'.)\n");
  }
  {
    Table table("A3: submit-on-first dispatch window sweep @2000 rec/s");
    table.Columns({"window", "added delay p99", "records/batch"});
    for (aurora::SimDuration window : {0, 20, 100, 500, 2000}) {
      auto point = aurora::DispatchWindow(window, 2000.0);
      table.Row({Us(window), Us(point.delay_p99), Num(point.fill, 2)});
    }
    table.Print();
    std::printf("(A wider dispatch window buys packing at the price of "
                "latency — Aurora picks a\n tiny window because segmented "
                "logs get little boxcarring benefit anyway, §2.2.)\n");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
