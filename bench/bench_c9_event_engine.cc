// Experiment C9 — event-engine hot-loop throughput.
//
// Every protocol action in this reproduction — quorum writes, gossip,
// boxcar dispatch, retry timers, replica catch-up — is a simulator event,
// so the engine's schedule/cancel/fire loop is the floor under every other
// wall-clock number (C7 in particular). This bench measures the engine in
// isolation across the mixes the protocol actually generates:
//
//   * fire        — schedule bursts at jittered future times, drain.
//                   Pure slab-alloc + heap + dispatch cost.
//   * cancel_mix  — the retry-timer pattern: most events are armed and
//                   disarmed without firing (90% cancel rate). Exercises
//                   O(1) Cancel, tombstone pruning, and heap compaction.
//   * ladder      — K self-rescheduling chains (tick pattern): steady
//                   small heap, maximal schedule/fire alternation.
//   * spill       — large captures (past the inline SBO budget) taking
//                   the closure-pool path.
//   * parallel    — the sharded windowed engine (DESIGN.md §9): four
//                   shards of self-rescheduling tick chains with periodic
//                   cross-shard sends, driven by RunSharded at each
//                   --threads count. The schedule fingerprint must be
//                   identical across thread counts (checked here), so the
//                   scaling table measures pure engine overhead/speedup.
//
// Results go to BENCH_c9_event_engine.json; scripts/bench_gate.sh compares
// events_per_sec and parallel_events_per_sec against the committed
// baseline. `--quick` shrinks the workloads for the CTest smoke run;
// `--threads=N` restricts the parallel sweep to one worker count.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/random.h"
#include "src/sim/simulator.h"

namespace aurora {
namespace {

struct MixResult {
  uint64_t scheduled = 0;
  uint64_t cancelled = 0;
  uint64_t executed = 0;
  double wall_seconds = 0;

  // Scheduler operations (Schedule + Cancel + fire) per wall second — the
  // engine-facing rate, robust to the cancel share of the mix.
  double OpsPerSec() const {
    return static_cast<double>(scheduled + cancelled + executed) /
           wall_seconds;
  }
  double EventsPerSec() const {
    return static_cast<double>(executed) / wall_seconds;
  }
};

template <typename Body>
MixResult Timed(Body body) {
  MixResult result;
  const auto start = std::chrono::steady_clock::now();
  body(result);
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  if (result.wall_seconds <= 0) result.wall_seconds = 1e-9;
  return result;
}

/// Bursts of events at jittered future offsets, drained to empty.
MixResult RunFireMix(uint64_t total_events) {
  return Timed([&](MixResult& r) {
    sim::Simulator sim(7);
    Rng rng(11);
    volatile uint64_t sink = 0;
    const uint64_t burst = 4096;
    uint64_t remaining = total_events;
    while (remaining > 0) {
      const uint64_t n = remaining < burst ? remaining : burst;
      for (uint64_t i = 0; i < n; ++i) {
        const SimDuration delay = rng.NextInRange(1, 5000);
        sim.Schedule(delay, [&sink]() { sink = sink + 1; }, "bench.fire");
      }
      r.scheduled += n;
      sim.Run();
      remaining -= n;
    }
    r.executed = sim.ExecutedEvents();
  });
}

/// The retry-timer pattern: arm ten, fire one, disarm nine.
MixResult RunCancelMix(uint64_t total_events) {
  return Timed([&](MixResult& r) {
    sim::Simulator sim(7);
    Rng rng(13);
    volatile uint64_t sink = 0;
    std::vector<sim::EventId> armed;
    const uint64_t rounds = total_events / 10;
    for (uint64_t round = 0; round < rounds; ++round) {
      armed.clear();
      for (int i = 0; i < 10; ++i) {
        const SimDuration delay = rng.NextInRange(1, 2000);
        armed.push_back(
            sim.Schedule(delay, [&sink]() { sink = sink + 1; },
                         "bench.timer"));
      }
      r.scheduled += 10;
      // Keep one live (the "timeout that actually fires"), disarm the
      // rest — the overwhelmingly common fate of protocol timers.
      for (size_t i = 1; i < armed.size(); ++i) sim.Cancel(armed[i]);
      r.cancelled += armed.size() - 1;
      if (round % 64 == 63) sim.Run();  // periodic drain keeps heap honest
    }
    sim.Run();
    r.executed = sim.ExecutedEvents();
  });
}

/// K self-rescheduling tick chains, T ticks each: minimal heap, maximal
/// schedule/fire alternation (the steady-state shape of a healthy fleet).
MixResult RunLadderMix(uint64_t chains, uint64_t ticks) {
  return Timed([&](MixResult& r) {
    sim::Simulator sim(7);
    uint64_t live = 0;
    struct Chain {
      sim::Simulator* sim;
      uint64_t left;
      SimDuration period;
      uint64_t* counter;
      void Tick() {
        ++*counter;
        if (--left == 0) return;
        sim->Schedule(period, [this]() { Tick(); }, "bench.tick");
      }
    };
    std::vector<Chain> state(chains);
    for (uint64_t c = 0; c < chains; ++c) {
      state[c] = Chain{&sim, ticks, static_cast<SimDuration>(10 + c % 17),
                       &live};
      Chain* chain = &state[c];
      sim.Schedule(chain->period, [chain]() { chain->Tick(); },
                   "bench.tick");
    }
    sim.Run();
    r.scheduled = chains * ticks;
    r.executed = sim.ExecutedEvents();
  });
}

/// Large captures spill to the closure pool; measures alloc/free reuse.
MixResult RunSpillMix(uint64_t total_events) {
  return Timed([&](MixResult& r) {
    sim::Simulator sim(7);
    Rng rng(17);
    volatile uint64_t sink = 0;
    struct BigCapture {
      uint64_t payload[40];  // 320 bytes — past the inline SBO budget
    };
    const uint64_t burst = 2048;
    uint64_t remaining = total_events;
    while (remaining > 0) {
      const uint64_t n = remaining < burst ? remaining : burst;
      for (uint64_t i = 0; i < n; ++i) {
        BigCapture big;
        for (uint64_t& v : big.payload) v = i;
        const SimDuration delay = rng.NextInRange(1, 3000);
        sim.Schedule(delay,
                     [big, &sink]() { sink = sink + big.payload[0]; },
                     "bench.spill");
      }
      r.scheduled += n;
      sim.Run();
      remaining -= n;
    }
    r.executed = sim.ExecutedEvents();
  });
}

/// Sharded windowed engine: per-shard tick chains plus cross-shard sends
/// at the lookahead bound, executed by RunSharded(`threads`). The workload
/// is identical for every thread count (same canonical schedule), so
/// events/sec across the sweep is a pure engine-scaling measurement.
MixResult RunParallelMix(uint64_t total_events, int threads,
                         uint64_t* fingerprint_out) {
  constexpr uint32_t kShards = 4;
  constexpr SimDuration kLookahead = 500;
  constexpr uint64_t kChainsPerShard = 16;
  return Timed([&](MixResult& r) {
    sim::Simulator sim(7);
    sim.ConfigureShards(kShards);
    sim.SetLookahead(kLookahead);
    struct Chain {
      sim::Simulator* sim;
      uint32_t shard;
      uint64_t left;
      SimDuration period;
      uint64_t tick = 0;
      uint64_t cross_sent = 0;
      uint64_t fired = 0;
      void Tick() {
        ++fired;
        if (--left == 0) return;
        ++tick;
        if (tick % 16 == 0) {
          // Cross-shard traffic keeps the mailboxes honest; the delay
          // respects the conservative lookahead bound.
          sim->ScheduleOn(
              (shard + 1) % kShards, kLookahead + tick % 37, []() {},
              "bench.xshard");
          ++cross_sent;
        }
        sim->Schedule(period, [this]() { Tick(); }, "bench.ptick");
      }
    };
    const uint64_t ticks = total_events / (kShards * kChainsPerShard);
    std::vector<Chain> chains(kShards * kChainsPerShard);
    for (uint32_t s = 0; s < kShards; ++s) {
      sim::Simulator::ShardScope scope(&sim, s);
      for (uint64_t c = 0; c < kChainsPerShard; ++c) {
        Chain& chain = chains[s * kChainsPerShard + c];
        chain = Chain{&sim, s, ticks,
                      static_cast<SimDuration>(10 + (s * 31 + c) % 17)};
        sim.Schedule(chain.period, [&chain]() { chain.Tick(); },
                     "bench.ptick");
      }
    }
    // Drain to empty: RunSharded stops when no work remains.
    sim.RunSharded(std::numeric_limits<SimTime>::max() - 1, threads);
    for (const Chain& chain : chains) {
      r.scheduled += chain.fired + chain.cross_sent;
    }
    r.executed = sim.ExecutedEvents();
    if (fingerprint_out != nullptr) {
      *fingerprint_out = sim.ScheduleFingerprint();
    }
  });
}

}  // namespace
}  // namespace aurora

int main(int argc, char** argv) {
  using aurora::bench::BenchJson;
  using aurora::bench::Num;
  using aurora::bench::Table;

  bool quick = false;
  int threads_arg = 0;  // 0 = sweep 1/2/4/8
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads_arg = std::atoi(argv[i] + 10);
    }
  }

  const uint64_t n = quick ? 200000 : 2000000;
  const auto fire = aurora::RunFireMix(n);
  const auto cancel = aurora::RunCancelMix(n);
  const auto ladder = aurora::RunLadderMix(64, n / 64);
  const auto spill = aurora::RunSpillMix(n / 4);

  if (fire.executed != fire.scheduled ||
      cancel.executed != cancel.scheduled - cancel.cancelled ||
      ladder.executed != ladder.scheduled ||
      spill.executed != spill.scheduled) {
    std::fprintf(stderr, "C9: executed/scheduled mismatch — engine bug\n");
    return 1;
  }

  // Parallel scaling sweep: same workload, same canonical schedule, more
  // workers. Fingerprints must agree or the windowed engine is broken.
  std::vector<int> thread_counts =
      threads_arg > 0 ? std::vector<int>{threads_arg}
                      : std::vector<int>{1, 2, 4, 8};
  std::vector<std::pair<int, aurora::MixResult>> parallel;
  uint64_t parallel_fp = 0;
  for (int t : thread_counts) {
    uint64_t fp = 0;
    const auto res = aurora::RunParallelMix(n, t, &fp);
    if (res.executed != res.scheduled) {
      std::fprintf(stderr,
                   "C9: parallel executed/scheduled mismatch at %d threads "
                   "(%llu vs %llu)\n",
                   t, static_cast<unsigned long long>(res.executed),
                   static_cast<unsigned long long>(res.scheduled));
      return 1;
    }
    if (parallel_fp == 0) parallel_fp = fp;
    if (fp != parallel_fp) {
      std::fprintf(stderr,
                   "C9: parallel schedule fingerprint diverged at %d "
                   "threads — determinism bug\n",
                   t);
      return 1;
    }
    parallel.emplace_back(t, res);
  }

  Table table("C9: event-engine schedule/cancel/fire throughput");
  table.Columns({"mix", "scheduled", "cancelled", "executed", "ops/sec"});
  auto row = [&](const char* name, const aurora::MixResult& r) {
    table.Row({name, std::to_string(r.scheduled),
               std::to_string(r.cancelled), std::to_string(r.executed),
               Num(r.OpsPerSec(), 0)});
  };
  row("fire", fire);
  row("cancel_mix", cancel);
  row("ladder", ladder);
  row("spill", spill);
  table.Print();

  Table scaling("C9: sharded windowed engine scaling (RunSharded)");
  scaling.Columns({"threads", "executed", "events/sec", "vs 1 thread"});
  const double base_rate = parallel.front().second.EventsPerSec();
  for (const auto& [t, res] : parallel) {
    scaling.Row({std::to_string(t), std::to_string(res.executed),
                 Num(res.EventsPerSec(), 0),
                 Num(res.EventsPerSec() / base_rate, 2) + "x"});
  }
  scaling.Print();

  BenchJson json("c9_event_engine");
  json.SetString("mode", quick ? "quick" : "full")
      .Set("fire_events", fire.executed)
      .Set("fire_events_per_sec", fire.EventsPerSec())
      .Set("cancel_mix_ops", cancel.scheduled + cancel.cancelled)
      .Set("cancel_mix_ops_per_sec", cancel.OpsPerSec())
      .Set("ladder_events", ladder.executed)
      .Set("ladder_events_per_sec", ladder.EventsPerSec())
      .Set("spill_events", spill.executed)
      .Set("spill_events_per_sec", spill.EventsPerSec())
      // Headline gate metric: the pure schedule+fire rate.
      .Set("events_per_sec", fire.EventsPerSec());
  double best_parallel = 0;
  int best_threads = 0;
  for (const auto& [t, res] : parallel) {
    json.Set("parallel_events_t" + std::to_string(t), res.executed)
        .Set("parallel_events_per_sec_t" + std::to_string(t),
             res.EventsPerSec());
    if (res.EventsPerSec() > best_parallel) {
      best_parallel = res.EventsPerSec();
      best_threads = t;
    }
  }
  // Headline parallel gate metric: the best windowed rate on this host
  // (thread count recorded alongside; host_threads is in every file).
  json.Set("parallel_events_per_sec", best_parallel)
      .Set("parallel_best_threads", best_threads)
      .Set("parallel_fingerprint", parallel_fp);
  if (!json.WriteFile()) return 1;
  return 0;
}
