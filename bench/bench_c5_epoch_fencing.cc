// Experiment C5 — §4.1 claim: epochs instead of leases.
//
// "Some systems use leases to establish short term entitlements to access
// the system, but leases introduce latency when one needs to wait for
// expiry. Aurora, rather than waiting for a lease to expire, just changes
// the locks on the door."
//
// Table 1: failover time — Aurora (measured end-to-end: crash detection
// excluded, recovery + epoch bump measured) vs a lease holder that died
// right after renewing, across lease TTLs.
// Table 2: fencing correctness — a resurrected stale instance's requests
// are rejected by storage with kStaleEpoch.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/baseline/lease.h"

namespace aurora {
namespace {

SimDuration MeasureAuroraFailover() {
  core::AuroraOptions options;
  options.seed = 606;
  options.blocks_per_pg = 1 << 16;
  core::AuroraCluster cluster(options);
  if (!cluster.StartBlocking().ok()) return 0;
  (void)bench::RunClosedLoopWrites(cluster, 100, "pre");
  cluster.CrashWriter();
  const SimTime start = cluster.sim().Now();
  auto promoted = cluster.FailoverBlocking();
  if (!promoted.ok()) return 0;
  return cluster.sim().Now() - start;
}

SimDuration MeasureLeaseFailover(SimDuration ttl) {
  sim::Simulator sim;
  baseline::LeaseOptions options;
  options.ttl = ttl;
  options.skew_margin = 500 * kMillisecond;
  baseline::LeaseManager lease(&sim, options);
  lease.Acquire(1);  // holder renews, then dies immediately
  SimDuration waited = 0;
  lease.AcquireWhenFree(2, [&](SimDuration w) { waited = w; });
  sim.Run();
  return waited;
}

void PrintFencingDemo() {
  core::AuroraOptions options;
  options.seed = 607;
  options.blocks_per_pg = 1 << 16;
  core::AuroraCluster cluster(options);
  if (!cluster.StartBlocking().ok()) return;
  (void)bench::RunClosedLoopWrites(cluster, 20, "pre");
  const VolumeEpoch old_epoch = cluster.writer()->volume_epoch();

  auto promoted = cluster.FailoverBlocking();
  if (!promoted.ok()) return;
  const VolumeEpoch new_epoch = cluster.writer()->volume_epoch();

  // Hand-craft a write carrying the OLD volume epoch — what a zombie
  // instance with open connections would issue — and observe rejection.
  const auto& pg = cluster.geometry().Pg(0);
  const quorum::SegmentInfo member = pg.AllMembers().front();
  auto* node = cluster.node(member.node);
  auto* segment = node->FindSegment(member.id);
  Status stale = segment->CheckEpochs(EpochVector{old_epoch, pg.epoch()});
  Status fresh = segment->CheckEpochs(EpochVector{new_epoch, pg.epoch()});

  bench::Table table("C5b: fencing a zombie writer");
  table.Columns({"request epoch", "storage response"});
  table.Row({"old (" + std::to_string(old_epoch) + ")", stale.ToString()});
  table.Row({"new (" + std::to_string(new_epoch) + ")", fresh.ToString()});
  table.Print();
}

}  // namespace
}  // namespace aurora

namespace {

void BM_EpochCheck(benchmark::State& state) {
  // The fencing check sits on every request; it must be ~free.
  std::vector<aurora::quorum::SegmentInfo> members;
  for (aurora::SegmentId id = 0; id < 6; ++id) {
    members.push_back({id, static_cast<aurora::NodeId>(100 + id),
                       static_cast<aurora::AzId>(id / 2), true});
  }
  auto config = aurora::quorum::PgConfig::Create(
      0, aurora::quorum::QuorumModel::kUniform46, members);
  aurora::storage::SegmentStore store({0, 100, 0, true}, 0, config, 5);
  aurora::EpochVector epochs{5, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.CheckEpochs(epochs));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochCheck);

}  // namespace

int main(int argc, char** argv) {
  using aurora::bench::Table;
  using aurora::bench::Us;
  using aurora::kSecond;

  const aurora::SimDuration aurora_time = aurora::MeasureAuroraFailover();
  Table table("C5a: writer failover time — epoch fencing vs lease expiry "
              "(holder died right after renewal)");
  table.Columns({"mechanism", "time until new writer safe"});
  table.Row({"Aurora: recovery + volume-epoch bump", Us(aurora_time)});
  for (aurora::SimDuration ttl :
       {2 * kSecond, 10 * kSecond, 30 * kSecond}) {
    table.Row({"lease TTL " + Us(ttl) + " + skew margin",
               Us(aurora::MeasureLeaseFailover(ttl))});
  }
  table.Print();
  std::printf(
      "(The lease wait is pure dead time — the old holder is already gone.\n"
      " Aurora's epoch write costs one write-quorum round and immediately\n"
      " 'changes the locks on the door'.)\n");

  aurora::PrintFencingDemo();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
