// Experiment C4 — §3.2 claims: read scaling with shared-storage replicas.
//
// "Aurora read replicas attach to the same storage volume as the writer
// instance... There is little latency added to the write path on the
// writer instance since replication is asynchronous. Since we only update
// cached data blocks on the replicas, most resources on the replica remain
// available for read requests."
//
// Table: for N replicas, run a mixed workload (writer commits + replica
// point reads); report aggregate replica read throughput, replica VDL lag,
// and writer commit latency (which must NOT degrade with N).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace aurora {
namespace {

struct ScalingRow {
  int replicas;
  uint64_t writer_commits = 0;
  Histogram commit_latency;
  uint64_t replica_reads = 0;
  Histogram read_latency;
  Lsn mean_lag = 0;
};

ScalingRow RunWithReplicas(int n_replicas) {
  core::AuroraOptions options;
  options.seed = 1300 + n_replicas;
  options.blocks_per_pg = 1 << 16;
  core::AuroraCluster cluster(options);
  ScalingRow row;
  row.replicas = n_replicas;
  if (!cluster.StartBlocking().ok()) return row;
  for (int i = 0; i < 256; ++i) {
    (void)cluster.PutBlocking("key" + std::to_string(i), "v");
  }
  std::vector<replica::ReadReplica*> reps;
  for (int i = 0; i < n_replicas; ++i) reps.push_back(cluster.AddReplica());
  cluster.RunFor(500 * kMillisecond);  // replicas warm their caches

  // Replica read loops: each replica issues a read every 2ms.
  struct ReadLoop {
    core::AuroraCluster* cluster;
    replica::ReadReplica* rep;
    ScalingRow* row;
    Rng rng;
    SimTime end;
    std::function<void()> issue;
  };
  std::vector<std::shared_ptr<ReadLoop>> loops;
  const SimTime end = cluster.sim().Now() + 5 * kSecond;
  for (auto* rep : reps) {
    auto loop = std::make_shared<ReadLoop>(
        ReadLoop{&cluster, rep, &row, Rng(rep->id()), end, {}});
    loop->issue = [loop]() {
      if (loop->cluster->sim().Now() >= loop->end) return;
      const std::string key =
          "key" + std::to_string(loop->rng.NextBounded(256));
      const SimTime start = loop->cluster->sim().Now();
      loop->rep->Get(key, [loop, start](Result<std::string> r) {
        if (r.ok()) {
          loop->row->replica_reads++;
          loop->row->read_latency.Record(loop->cluster->sim().Now() -
                                         start);
        }
      });
      loop->cluster->sim().Schedule(2000, loop->issue);
    };
    loop->issue();
    loops.push_back(loop);
  }
  // Writer load in parallel.
  row.writer_commits = bench::RunOpenLoopWrites(cluster, 300.0, 5 * kSecond,
                                                &row.commit_latency);
  // Lag snapshot.
  Lsn total_lag = 0;
  for (auto* rep : reps) {
    total_lag += cluster.writer()->vdl() - rep->vdl();
  }
  row.mean_lag = reps.empty() ? 0 : total_lag / reps.size();
  for (auto& loop : loops) loop->issue = nullptr;  // break cycles
  return row;
}

}  // namespace
}  // namespace aurora

namespace {

void BM_ReplicaMtrApply(benchmark::State& state) {
  // Cost of applying one shipped MTR record to a cached page.
  aurora::storage::Page page;
  page.id = 1;
  aurora::storage::PageOp op;
  op.type = aurora::storage::PageOpType::kInsert;
  op.key = "k";
  op.value = std::string(64, 'v');
  const std::string payload = EncodePageOp(op);
  aurora::Lsn lsn = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        aurora::storage::ApplyRedoPayload(&page, payload, lsn++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReplicaMtrApply);

}  // namespace

int main(int argc, char** argv) {
  using aurora::bench::Num;
  using aurora::bench::Table;
  using aurora::bench::Us;

  Table table("C4: shared-storage read replicas (5 simulated seconds)");
  table.Columns({"replicas", "writer commits", "commit p50", "commit p99",
                 "replica reads", "read p50", "mean VDL lag (LSNs)"});
  for (int n : {0, 1, 2, 4}) {
    auto row = aurora::RunWithReplicas(n);
    table.Row({std::to_string(n), std::to_string(row.writer_commits),
               Us(row.commit_latency.P50()), Us(row.commit_latency.P99()),
               std::to_string(row.replica_reads),
               n == 0 ? "-" : Us(row.read_latency.P50()),
               std::to_string(row.mean_lag)});
  }
  table.Print();
  std::printf(
      "(Replica read throughput scales ~linearly with N; writer commit\n"
      " latency is flat because replication is asynchronous and replicas\n"
      " never write to storage — durable state is shared, not copied.)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
