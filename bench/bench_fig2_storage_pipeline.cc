// Experiment F2 — Figure 2: activity in Aurora storage nodes.
//
// Foreground: (1) receive records, (2) durable update-queue append + ACK.
// Background: (3) sort/group, (4) gossip, (5) coalesce, (6) archive to the
// object store, (7) GC, (8) scrub. The paper's design point: only steps
// 1-2 are on the ack path, so foreground write latency stays flat while
// background work (coalescing, backup, GC) proceeds at its own pace.
//
// Reproduction: drive the cluster at increasing write rates and report,
// per rate: ack latency percentiles, per-stage activity counters summed
// over the fleet, hot-log/version residency, and archive volume.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace aurora {
namespace {

struct PipelineResult {
  double rate;
  uint64_t commits;
  Histogram commit_latency;
  storage::SegmentStats fleet;  // summed
  uint64_t hot_log_records = 0;
  uint64_t versions_bytes = 0;
  uint64_t archive_bytes = 0;
  double mean_disk_queue = 0;
};

PipelineResult RunAtRate(double txn_per_sec) {
  core::AuroraOptions options;
  options.seed = 4242;
  options.blocks_per_pg = 1 << 16;
  core::AuroraCluster cluster(options);
  PipelineResult result;
  result.rate = txn_per_sec;
  if (!cluster.StartBlocking().ok()) return result;
  (void)bench::RunClosedLoopWrites(cluster, 64, "warm");

  result.commits = bench::RunOpenLoopWrites(cluster, txn_per_sec,
                                            10 * kSecond,
                                            &result.commit_latency);
  // Let background stages catch up, then snapshot counters.
  cluster.RunFor(2 * kSecond);
  for (const auto& node : cluster.storage_nodes()) {
    for (const auto& [id, segment] : node->segments()) {
      const auto& s = segment->stats();
      result.fleet.records_received += s.records_received;
      result.fleet.records_coalesced += s.records_coalesced;
      result.fleet.records_gossip_filled += s.records_gossip_filled;
      result.fleet.records_gced += s.records_gced;
      result.fleet.scrub_corruptions_found += s.scrub_corruptions_found;
      result.hot_log_records += segment->hot_log().RecordCount();
      result.versions_bytes += segment->TotalVersionBytes();
    }
  }
  result.archive_bytes = cluster.object_store().bytes_stored();
  return result;
}

}  // namespace
}  // namespace aurora

namespace {

// Microbenchmarks of individual pipeline stages.
void BM_HotLogAppend(benchmark::State& state) {
  aurora::log::SegmentHotLog log;
  aurora::Lsn lsn = 1;
  aurora::log::RedoRecord rec;
  rec.pg = 0;
  rec.block = 1;
  rec.payload = std::string(100, 'x');
  for (auto _ : state) {
    rec.lsn = lsn;
    rec.prev_lsn_segment = lsn - 1;
    benchmark::DoNotOptimize(log.Append(rec));
    ++lsn;
    if (lsn % 100000 == 0) log.EvictBelow(lsn - 1000);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotLogAppend);

void BM_CoalesceApply(benchmark::State& state) {
  aurora::storage::Page page;
  page.id = 1;
  aurora::storage::PageOp op;
  op.type = aurora::storage::PageOpType::kInsert;
  op.value = std::string(64, 'v');
  const std::string payload_base = "key";
  aurora::Lsn lsn = 1;
  for (auto _ : state) {
    op.key = payload_base + std::to_string(lsn % 64);
    const std::string payload = EncodePageOp(op);
    benchmark::DoNotOptimize(
        aurora::storage::ApplyRedoPayload(&page, payload, lsn++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoalesceApply);

void BM_RecordEncodeDecode(benchmark::State& state) {
  aurora::log::RedoRecord rec;
  rec.lsn = 42;
  rec.prev_lsn_segment = 41;
  rec.payload = std::string(100, 'p');
  for (auto _ : state) {
    const std::string encoded = aurora::log::EncodeRecord(rec);
    benchmark::DoNotOptimize(aurora::log::DecodeRecord(encoded));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordEncodeDecode);

}  // namespace

int main(int argc, char** argv) {
  using aurora::bench::Num;
  using aurora::bench::Table;
  using aurora::bench::Us;

  Table table("Figure 2: storage-node pipeline under increasing write rate "
              "(10 simulated seconds per row)");
  table.Columns({"txn/s", "commits", "ack p50", "ack p99", "received",
                 "coalesced", "gossip-fill", "gc'd", "hotlog now",
                 "archive KB"});
  for (double rate : {100.0, 500.0, 2000.0, 5000.0}) {
    auto r = aurora::RunAtRate(rate);
    table.Row({Num(rate, 0), std::to_string(r.commits),
               Us(r.commit_latency.P50()), Us(r.commit_latency.P99()),
               std::to_string(r.fleet.records_received),
               std::to_string(r.fleet.records_coalesced),
               std::to_string(r.fleet.records_gossip_filled),
               std::to_string(r.fleet.records_gced),
               std::to_string(r.hot_log_records),
               Num(r.archive_bytes / 1024.0, 0)});
  }
  table.Print();
  std::printf(
      "(Only the durable update-queue append is on the ack path: commit\n"
      " latency stays flat as background coalesce/backup/GC volume grows\n"
      " with the rate. Gossip-fill counts holes repaired peer-to-peer.)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
