// Experiment C8 — §2.2 claim: "the only writes that cross the network from
// the database instance to the storage node are redo log records. No data
// blocks are written from the database instance, not for background
// writes, not for checkpointing, and not for cache eviction."
//
// Table: bytes on the wire per committed transaction for (a) Aurora
// (log-only to six segments) and (b) a traditional primary shipping full
// dirty pages to standbys (2x and 4x), on identical workloads.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/baseline/sync_replication.h"

namespace aurora {
namespace {

struct TrafficRow {
  std::string name;
  uint64_t txns = 0;
  uint64_t bytes = 0;
  uint64_t messages = 0;
};

TrafficRow AuroraTraffic(int txns) {
  core::AuroraOptions options;
  options.seed = 909;
  options.blocks_per_pg = 1 << 16;
  core::AuroraCluster cluster(options);
  TrafficRow row;
  row.name = "Aurora (redo to 6 segments)";
  if (!cluster.StartBlocking().ok()) return row;
  (void)bench::RunClosedLoopWrites(cluster, 64, "warm");
  cluster.RunFor(kSecond);
  cluster.network().ResetStats();
  for (int i = 0; i < txns; ++i) {
    (void)cluster.PutBlocking("k" + std::to_string(i % 256),
                              std::string(200, 'v'));
  }
  row.txns = txns;
  row.bytes = cluster.network().stats().bytes_sent;
  row.messages = cluster.network().stats().messages_sent;
  return row;
}

TrafficRow PageShippingTraffic(int txns, int standbys) {
  sim::Simulator sim(910);
  sim::Network net(&sim);
  std::vector<std::unique_ptr<baseline::Standby>> standby_objs;
  std::vector<baseline::Standby*> raw;
  for (int i = 0; i < standbys; ++i) {
    standby_objs.push_back(std::make_unique<baseline::Standby>(
        &sim, &net, 10 + i, static_cast<AzId>(i % 3)));
    raw.push_back(standby_objs.back().get());
  }
  baseline::PageShippingOptions options;
  options.synchronous = true;
  baseline::PageShippingPrimary primary(&sim, &net, 1, 0, raw, options);
  TrafficRow row;
  row.name = "page shipping to " + std::to_string(standbys) + " standbys";
  for (int i = 0; i < txns; ++i) {
    // Each txn dirties ~3 pages (row page, undo page, index page).
    sim.Schedule(i * 1000, [&]() { primary.CommitTxn(3, []() {}); });
  }
  sim.Run();
  row.txns = txns;
  row.bytes = net.stats().bytes_sent;
  row.messages = net.stats().messages_sent;
  return row;
}

}  // namespace
}  // namespace aurora

namespace {

void BM_NetworkSend(benchmark::State& state) {
  aurora::sim::Simulator sim;
  aurora::sim::Network net(&sim);
  net.RegisterNode(1, 0);
  net.RegisterNode(2, 1);
  for (auto _ : state) {
    net.Send(1, 2, 256, []() {});
    if (state.iterations() % 1024 == 0) sim.Run();
  }
  sim.Run();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSend);

}  // namespace

int main(int argc, char** argv) {
  using aurora::bench::Num;
  using aurora::bench::Table;

  constexpr int kTxns = 500;
  Table table("C8: network bytes per committed transaction "
              "(200B values, ~3 dirtied pages/txn)");
  table.Columns({"system", "txns", "total MB", "KB per txn",
                 "msgs per txn"});
  auto print = [&](const aurora::TrafficRow& r) {
    table.Row({r.name, std::to_string(r.txns),
               Num(r.bytes / 1048576.0, 2),
               Num(r.txns ? r.bytes / 1024.0 / r.txns : 0, 2),
               Num(r.txns ? static_cast<double>(r.messages) / r.txns : 0,
                   1)});
  };
  print(aurora::AuroraTraffic(kTxns));
  print(aurora::PageShippingTraffic(kTxns, 2));
  print(aurora::PageShippingTraffic(kTxns, 4));
  table.Print();
  std::printf(
      "(Aurora ships ~three small redo records to six segments per txn;\n"
      " the page-shipping primary moves whole 8KB pages per standby, so\n"
      " bytes/txn grows with both page count and replica count — the\n"
      " amplification §2.2 eliminates.)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
