# Empty compiler generated dependencies file for aurora_engine.
# This may be replaced when dependencies are built.
