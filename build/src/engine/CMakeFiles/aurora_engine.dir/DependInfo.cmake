
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/btree.cc" "src/engine/CMakeFiles/aurora_engine.dir/btree.cc.o" "gcc" "src/engine/CMakeFiles/aurora_engine.dir/btree.cc.o.d"
  "/root/repo/src/engine/buffer_cache.cc" "src/engine/CMakeFiles/aurora_engine.dir/buffer_cache.cc.o" "gcc" "src/engine/CMakeFiles/aurora_engine.dir/buffer_cache.cc.o.d"
  "/root/repo/src/engine/consistency_tracker.cc" "src/engine/CMakeFiles/aurora_engine.dir/consistency_tracker.cc.o" "gcc" "src/engine/CMakeFiles/aurora_engine.dir/consistency_tracker.cc.o.d"
  "/root/repo/src/engine/db_instance.cc" "src/engine/CMakeFiles/aurora_engine.dir/db_instance.cc.o" "gcc" "src/engine/CMakeFiles/aurora_engine.dir/db_instance.cc.o.d"
  "/root/repo/src/engine/read_router.cc" "src/engine/CMakeFiles/aurora_engine.dir/read_router.cc.o" "gcc" "src/engine/CMakeFiles/aurora_engine.dir/read_router.cc.o.d"
  "/root/repo/src/engine/storage_driver.cc" "src/engine/CMakeFiles/aurora_engine.dir/storage_driver.cc.o" "gcc" "src/engine/CMakeFiles/aurora_engine.dir/storage_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aurora_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aurora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/aurora_log.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/aurora_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aurora_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/aurora_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
