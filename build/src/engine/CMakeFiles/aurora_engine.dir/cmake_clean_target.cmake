file(REMOVE_RECURSE
  "libaurora_engine.a"
)
