file(REMOVE_RECURSE
  "CMakeFiles/aurora_engine.dir/btree.cc.o"
  "CMakeFiles/aurora_engine.dir/btree.cc.o.d"
  "CMakeFiles/aurora_engine.dir/buffer_cache.cc.o"
  "CMakeFiles/aurora_engine.dir/buffer_cache.cc.o.d"
  "CMakeFiles/aurora_engine.dir/consistency_tracker.cc.o"
  "CMakeFiles/aurora_engine.dir/consistency_tracker.cc.o.d"
  "CMakeFiles/aurora_engine.dir/db_instance.cc.o"
  "CMakeFiles/aurora_engine.dir/db_instance.cc.o.d"
  "CMakeFiles/aurora_engine.dir/read_router.cc.o"
  "CMakeFiles/aurora_engine.dir/read_router.cc.o.d"
  "CMakeFiles/aurora_engine.dir/storage_driver.cc.o"
  "CMakeFiles/aurora_engine.dir/storage_driver.cc.o.d"
  "libaurora_engine.a"
  "libaurora_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
