file(REMOVE_RECURSE
  "CMakeFiles/aurora_sim.dir/failure_injector.cc.o"
  "CMakeFiles/aurora_sim.dir/failure_injector.cc.o.d"
  "CMakeFiles/aurora_sim.dir/network.cc.o"
  "CMakeFiles/aurora_sim.dir/network.cc.o.d"
  "CMakeFiles/aurora_sim.dir/simulator.cc.o"
  "CMakeFiles/aurora_sim.dir/simulator.cc.o.d"
  "libaurora_sim.a"
  "libaurora_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
