# Empty compiler generated dependencies file for aurora_sim.
# This may be replaced when dependencies are built.
