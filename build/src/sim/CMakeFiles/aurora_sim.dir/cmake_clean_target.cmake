file(REMOVE_RECURSE
  "libaurora_sim.a"
)
