# Empty compiler generated dependencies file for aurora_storage.
# This may be replaced when dependencies are built.
