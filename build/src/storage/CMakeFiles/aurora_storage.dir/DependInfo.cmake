
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk.cc" "src/storage/CMakeFiles/aurora_storage.dir/disk.cc.o" "gcc" "src/storage/CMakeFiles/aurora_storage.dir/disk.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/storage/CMakeFiles/aurora_storage.dir/object_store.cc.o" "gcc" "src/storage/CMakeFiles/aurora_storage.dir/object_store.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/storage/CMakeFiles/aurora_storage.dir/page.cc.o" "gcc" "src/storage/CMakeFiles/aurora_storage.dir/page.cc.o.d"
  "/root/repo/src/storage/segment_store.cc" "src/storage/CMakeFiles/aurora_storage.dir/segment_store.cc.o" "gcc" "src/storage/CMakeFiles/aurora_storage.dir/segment_store.cc.o.d"
  "/root/repo/src/storage/storage_node.cc" "src/storage/CMakeFiles/aurora_storage.dir/storage_node.cc.o" "gcc" "src/storage/CMakeFiles/aurora_storage.dir/storage_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aurora_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aurora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/aurora_log.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/aurora_quorum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
