file(REMOVE_RECURSE
  "libaurora_storage.a"
)
