file(REMOVE_RECURSE
  "CMakeFiles/aurora_storage.dir/disk.cc.o"
  "CMakeFiles/aurora_storage.dir/disk.cc.o.d"
  "CMakeFiles/aurora_storage.dir/object_store.cc.o"
  "CMakeFiles/aurora_storage.dir/object_store.cc.o.d"
  "CMakeFiles/aurora_storage.dir/page.cc.o"
  "CMakeFiles/aurora_storage.dir/page.cc.o.d"
  "CMakeFiles/aurora_storage.dir/segment_store.cc.o"
  "CMakeFiles/aurora_storage.dir/segment_store.cc.o.d"
  "CMakeFiles/aurora_storage.dir/storage_node.cc.o"
  "CMakeFiles/aurora_storage.dir/storage_node.cc.o.d"
  "libaurora_storage.a"
  "libaurora_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
