# Empty dependencies file for aurora_txn.
# This may be replaced when dependencies are built.
