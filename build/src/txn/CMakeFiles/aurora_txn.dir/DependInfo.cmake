
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/read_view.cc" "src/txn/CMakeFiles/aurora_txn.dir/read_view.cc.o" "gcc" "src/txn/CMakeFiles/aurora_txn.dir/read_view.cc.o.d"
  "/root/repo/src/txn/row_version.cc" "src/txn/CMakeFiles/aurora_txn.dir/row_version.cc.o" "gcc" "src/txn/CMakeFiles/aurora_txn.dir/row_version.cc.o.d"
  "/root/repo/src/txn/txn_manager.cc" "src/txn/CMakeFiles/aurora_txn.dir/txn_manager.cc.o" "gcc" "src/txn/CMakeFiles/aurora_txn.dir/txn_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aurora_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
