file(REMOVE_RECURSE
  "CMakeFiles/aurora_txn.dir/read_view.cc.o"
  "CMakeFiles/aurora_txn.dir/read_view.cc.o.d"
  "CMakeFiles/aurora_txn.dir/row_version.cc.o"
  "CMakeFiles/aurora_txn.dir/row_version.cc.o.d"
  "CMakeFiles/aurora_txn.dir/txn_manager.cc.o"
  "CMakeFiles/aurora_txn.dir/txn_manager.cc.o.d"
  "libaurora_txn.a"
  "libaurora_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
