file(REMOVE_RECURSE
  "libaurora_txn.a"
)
