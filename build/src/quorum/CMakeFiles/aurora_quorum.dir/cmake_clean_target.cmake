file(REMOVE_RECURSE
  "libaurora_quorum.a"
)
