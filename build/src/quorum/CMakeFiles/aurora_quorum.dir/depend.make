# Empty dependencies file for aurora_quorum.
# This may be replaced when dependencies are built.
