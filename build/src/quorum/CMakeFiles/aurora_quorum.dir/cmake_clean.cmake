file(REMOVE_RECURSE
  "CMakeFiles/aurora_quorum.dir/geometry.cc.o"
  "CMakeFiles/aurora_quorum.dir/geometry.cc.o.d"
  "CMakeFiles/aurora_quorum.dir/membership.cc.o"
  "CMakeFiles/aurora_quorum.dir/membership.cc.o.d"
  "CMakeFiles/aurora_quorum.dir/quorum_set.cc.o"
  "CMakeFiles/aurora_quorum.dir/quorum_set.cc.o.d"
  "libaurora_quorum.a"
  "libaurora_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
