
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quorum/geometry.cc" "src/quorum/CMakeFiles/aurora_quorum.dir/geometry.cc.o" "gcc" "src/quorum/CMakeFiles/aurora_quorum.dir/geometry.cc.o.d"
  "/root/repo/src/quorum/membership.cc" "src/quorum/CMakeFiles/aurora_quorum.dir/membership.cc.o" "gcc" "src/quorum/CMakeFiles/aurora_quorum.dir/membership.cc.o.d"
  "/root/repo/src/quorum/quorum_set.cc" "src/quorum/CMakeFiles/aurora_quorum.dir/quorum_set.cc.o" "gcc" "src/quorum/CMakeFiles/aurora_quorum.dir/quorum_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aurora_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
