file(REMOVE_RECURSE
  "CMakeFiles/aurora_common.dir/crc32.cc.o"
  "CMakeFiles/aurora_common.dir/crc32.cc.o.d"
  "CMakeFiles/aurora_common.dir/histogram.cc.o"
  "CMakeFiles/aurora_common.dir/histogram.cc.o.d"
  "CMakeFiles/aurora_common.dir/interval_set.cc.o"
  "CMakeFiles/aurora_common.dir/interval_set.cc.o.d"
  "CMakeFiles/aurora_common.dir/logging.cc.o"
  "CMakeFiles/aurora_common.dir/logging.cc.o.d"
  "CMakeFiles/aurora_common.dir/random.cc.o"
  "CMakeFiles/aurora_common.dir/random.cc.o.d"
  "CMakeFiles/aurora_common.dir/status.cc.o"
  "CMakeFiles/aurora_common.dir/status.cc.o.d"
  "CMakeFiles/aurora_common.dir/types.cc.o"
  "CMakeFiles/aurora_common.dir/types.cc.o.d"
  "libaurora_common.a"
  "libaurora_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
