file(REMOVE_RECURSE
  "libaurora_common.a"
)
