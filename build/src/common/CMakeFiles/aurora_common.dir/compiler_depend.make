# Empty compiler generated dependencies file for aurora_common.
# This may be replaced when dependencies are built.
