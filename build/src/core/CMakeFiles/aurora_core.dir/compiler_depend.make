# Empty compiler generated dependencies file for aurora_core.
# This may be replaced when dependencies are built.
