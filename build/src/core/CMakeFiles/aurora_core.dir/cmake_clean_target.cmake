file(REMOVE_RECURSE
  "libaurora_core.a"
)
