file(REMOVE_RECURSE
  "CMakeFiles/aurora_core.dir/cluster.cc.o"
  "CMakeFiles/aurora_core.dir/cluster.cc.o.d"
  "libaurora_core.a"
  "libaurora_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
