
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/aries.cc" "src/baseline/CMakeFiles/aurora_baseline.dir/aries.cc.o" "gcc" "src/baseline/CMakeFiles/aurora_baseline.dir/aries.cc.o.d"
  "/root/repo/src/baseline/lease.cc" "src/baseline/CMakeFiles/aurora_baseline.dir/lease.cc.o" "gcc" "src/baseline/CMakeFiles/aurora_baseline.dir/lease.cc.o.d"
  "/root/repo/src/baseline/paxos.cc" "src/baseline/CMakeFiles/aurora_baseline.dir/paxos.cc.o" "gcc" "src/baseline/CMakeFiles/aurora_baseline.dir/paxos.cc.o.d"
  "/root/repo/src/baseline/sync_replication.cc" "src/baseline/CMakeFiles/aurora_baseline.dir/sync_replication.cc.o" "gcc" "src/baseline/CMakeFiles/aurora_baseline.dir/sync_replication.cc.o.d"
  "/root/repo/src/baseline/two_phase_commit.cc" "src/baseline/CMakeFiles/aurora_baseline.dir/two_phase_commit.cc.o" "gcc" "src/baseline/CMakeFiles/aurora_baseline.dir/two_phase_commit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aurora_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aurora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aurora_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/aurora_log.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/aurora_quorum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
