file(REMOVE_RECURSE
  "CMakeFiles/aurora_baseline.dir/aries.cc.o"
  "CMakeFiles/aurora_baseline.dir/aries.cc.o.d"
  "CMakeFiles/aurora_baseline.dir/lease.cc.o"
  "CMakeFiles/aurora_baseline.dir/lease.cc.o.d"
  "CMakeFiles/aurora_baseline.dir/paxos.cc.o"
  "CMakeFiles/aurora_baseline.dir/paxos.cc.o.d"
  "CMakeFiles/aurora_baseline.dir/sync_replication.cc.o"
  "CMakeFiles/aurora_baseline.dir/sync_replication.cc.o.d"
  "CMakeFiles/aurora_baseline.dir/two_phase_commit.cc.o"
  "CMakeFiles/aurora_baseline.dir/two_phase_commit.cc.o.d"
  "libaurora_baseline.a"
  "libaurora_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
