# Empty compiler generated dependencies file for aurora_baseline.
# This may be replaced when dependencies are built.
