file(REMOVE_RECURSE
  "libaurora_baseline.a"
)
