# Empty compiler generated dependencies file for aurora_replica.
# This may be replaced when dependencies are built.
