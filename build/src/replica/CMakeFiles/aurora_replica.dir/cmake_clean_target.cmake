file(REMOVE_RECURSE
  "libaurora_replica.a"
)
