file(REMOVE_RECURSE
  "CMakeFiles/aurora_replica.dir/read_replica.cc.o"
  "CMakeFiles/aurora_replica.dir/read_replica.cc.o.d"
  "libaurora_replica.a"
  "libaurora_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
