# Empty dependencies file for aurora_log.
# This may be replaced when dependencies are built.
