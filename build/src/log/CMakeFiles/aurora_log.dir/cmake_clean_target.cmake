file(REMOVE_RECURSE
  "libaurora_log.a"
)
