file(REMOVE_RECURSE
  "CMakeFiles/aurora_log.dir/boxcar.cc.o"
  "CMakeFiles/aurora_log.dir/boxcar.cc.o.d"
  "CMakeFiles/aurora_log.dir/hot_log.cc.o"
  "CMakeFiles/aurora_log.dir/hot_log.cc.o.d"
  "CMakeFiles/aurora_log.dir/record.cc.o"
  "CMakeFiles/aurora_log.dir/record.cc.o.d"
  "libaurora_log.a"
  "libaurora_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
