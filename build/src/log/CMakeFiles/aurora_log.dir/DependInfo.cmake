
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/boxcar.cc" "src/log/CMakeFiles/aurora_log.dir/boxcar.cc.o" "gcc" "src/log/CMakeFiles/aurora_log.dir/boxcar.cc.o.d"
  "/root/repo/src/log/hot_log.cc" "src/log/CMakeFiles/aurora_log.dir/hot_log.cc.o" "gcc" "src/log/CMakeFiles/aurora_log.dir/hot_log.cc.o.d"
  "/root/repo/src/log/record.cc" "src/log/CMakeFiles/aurora_log.dir/record.cc.o" "gcc" "src/log/CMakeFiles/aurora_log.dir/record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aurora_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aurora_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
