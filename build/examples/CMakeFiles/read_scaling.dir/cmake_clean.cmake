file(REMOVE_RECURSE
  "CMakeFiles/read_scaling.dir/read_scaling.cpp.o"
  "CMakeFiles/read_scaling.dir/read_scaling.cpp.o.d"
  "read_scaling"
  "read_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
