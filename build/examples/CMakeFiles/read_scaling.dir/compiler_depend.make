# Empty compiler generated dependencies file for read_scaling.
# This may be replaced when dependencies are built.
