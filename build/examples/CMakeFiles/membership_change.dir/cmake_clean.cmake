file(REMOVE_RECURSE
  "CMakeFiles/membership_change.dir/membership_change.cpp.o"
  "CMakeFiles/membership_change.dir/membership_change.cpp.o.d"
  "membership_change"
  "membership_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
