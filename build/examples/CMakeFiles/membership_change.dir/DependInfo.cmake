
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/membership_change.cpp" "examples/CMakeFiles/membership_change.dir/membership_change.cpp.o" "gcc" "examples/CMakeFiles/membership_change.dir/membership_change.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aurora_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/aurora_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/replica/CMakeFiles/aurora_replica.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/aurora_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/aurora_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aurora_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/aurora_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/aurora_log.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aurora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aurora_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
