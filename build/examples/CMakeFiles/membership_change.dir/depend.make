# Empty dependencies file for membership_change.
# This may be replaced when dependencies are built.
