file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_cost_amplification.dir/bench_c6_cost_amplification.cc.o"
  "CMakeFiles/bench_c6_cost_amplification.dir/bench_c6_cost_amplification.cc.o.d"
  "bench_c6_cost_amplification"
  "bench_c6_cost_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_cost_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
