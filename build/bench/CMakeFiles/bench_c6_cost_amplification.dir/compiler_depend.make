# Empty compiler generated dependencies file for bench_c6_cost_amplification.
# This may be replaced when dependencies are built.
