# Empty dependencies file for bench_fig4_crash_recovery.
# This may be replaced when dependencies are built.
