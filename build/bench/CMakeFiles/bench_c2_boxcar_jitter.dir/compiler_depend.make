# Empty compiler generated dependencies file for bench_c2_boxcar_jitter.
# This may be replaced when dependencies are built.
