file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_boxcar_jitter.dir/bench_c2_boxcar_jitter.cc.o"
  "CMakeFiles/bench_c2_boxcar_jitter.dir/bench_c2_boxcar_jitter.cc.o.d"
  "bench_c2_boxcar_jitter"
  "bench_c2_boxcar_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_boxcar_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
