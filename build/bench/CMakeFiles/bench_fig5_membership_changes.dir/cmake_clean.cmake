file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_membership_changes.dir/bench_fig5_membership_changes.cc.o"
  "CMakeFiles/bench_fig5_membership_changes.dir/bench_fig5_membership_changes.cc.o.d"
  "bench_fig5_membership_changes"
  "bench_fig5_membership_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_membership_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
