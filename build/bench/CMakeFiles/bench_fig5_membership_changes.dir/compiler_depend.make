# Empty compiler generated dependencies file for bench_fig5_membership_changes.
# This may be replaced when dependencies are built.
