# Empty dependencies file for bench_c4_replica_scaling.
# This may be replaced when dependencies are built.
