file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_replica_scaling.dir/bench_c4_replica_scaling.cc.o"
  "CMakeFiles/bench_c4_replica_scaling.dir/bench_c4_replica_scaling.cc.o.d"
  "bench_c4_replica_scaling"
  "bench_c4_replica_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_replica_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
