# Empty dependencies file for bench_c8_network_traffic.
# This may be replaced when dependencies are built.
