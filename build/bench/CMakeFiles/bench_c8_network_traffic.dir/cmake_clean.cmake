file(REMOVE_RECURSE
  "CMakeFiles/bench_c8_network_traffic.dir/bench_c8_network_traffic.cc.o"
  "CMakeFiles/bench_c8_network_traffic.dir/bench_c8_network_traffic.cc.o.d"
  "bench_c8_network_traffic"
  "bench_c8_network_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c8_network_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
