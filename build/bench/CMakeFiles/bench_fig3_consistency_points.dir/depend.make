# Empty dependencies file for bench_fig3_consistency_points.
# This may be replaced when dependencies are built.
