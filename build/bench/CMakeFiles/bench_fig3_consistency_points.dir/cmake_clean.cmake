file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_consistency_points.dir/bench_fig3_consistency_points.cc.o"
  "CMakeFiles/bench_fig3_consistency_points.dir/bench_fig3_consistency_points.cc.o.d"
  "bench_fig3_consistency_points"
  "bench_fig3_consistency_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_consistency_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
