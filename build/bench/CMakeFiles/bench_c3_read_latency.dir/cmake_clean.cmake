file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_read_latency.dir/bench_c3_read_latency.cc.o"
  "CMakeFiles/bench_c3_read_latency.dir/bench_c3_read_latency.cc.o.d"
  "bench_c3_read_latency"
  "bench_c3_read_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_read_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
