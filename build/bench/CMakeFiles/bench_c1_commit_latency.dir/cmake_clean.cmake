file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_commit_latency.dir/bench_c1_commit_latency.cc.o"
  "CMakeFiles/bench_c1_commit_latency.dir/bench_c1_commit_latency.cc.o.d"
  "bench_c1_commit_latency"
  "bench_c1_commit_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_commit_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
