file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_epoch_fencing.dir/bench_c5_epoch_fencing.cc.o"
  "CMakeFiles/bench_c5_epoch_fencing.dir/bench_c5_epoch_fencing.cc.o.d"
  "bench_c5_epoch_fencing"
  "bench_c5_epoch_fencing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_epoch_fencing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
