# Empty compiler generated dependencies file for bench_c5_epoch_fencing.
# This may be replaced when dependencies are built.
