# Empty compiler generated dependencies file for bench_fig1_quorum_availability.
# This may be replaced when dependencies are built.
