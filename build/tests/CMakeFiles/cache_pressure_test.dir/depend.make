# Empty dependencies file for cache_pressure_test.
# This may be replaced when dependencies are built.
