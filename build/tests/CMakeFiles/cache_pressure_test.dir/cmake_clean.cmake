file(REMOVE_RECURSE
  "CMakeFiles/cache_pressure_test.dir/cache_pressure_test.cc.o"
  "CMakeFiles/cache_pressure_test.dir/cache_pressure_test.cc.o.d"
  "cache_pressure_test"
  "cache_pressure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_pressure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
