# Empty compiler generated dependencies file for volume_ops_test.
# This may be replaced when dependencies are built.
