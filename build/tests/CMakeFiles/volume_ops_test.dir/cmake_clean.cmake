file(REMOVE_RECURSE
  "CMakeFiles/volume_ops_test.dir/volume_ops_test.cc.o"
  "CMakeFiles/volume_ops_test.dir/volume_ops_test.cc.o.d"
  "volume_ops_test"
  "volume_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
