file(REMOVE_RECURSE
  "CMakeFiles/pitr_test.dir/pitr_test.cc.o"
  "CMakeFiles/pitr_test.dir/pitr_test.cc.o.d"
  "pitr_test"
  "pitr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pitr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
