# Empty dependencies file for pitr_test.
# This may be replaced when dependencies are built.
