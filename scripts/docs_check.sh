#!/usr/bin/env bash
# Docs/code lockstep gate: fails when the documentation drifts from the
# tree in either direction.
#
#   1. Every metric name registered in src/ (GetCounter/GetGauge/
#      GetHistogram call sites) must appear in the DESIGN.md §5b
#      catalogue, and every catalogue row must still exist in src/.
#      Dynamic per-subject suffixes (`read.segment_us.<segment>`) are
#      compared by their static prefix.
#   2. Every bench/bench_*.cc binary must be mentioned in EXPERIMENTS.md
#      (the bench index + its section), and every `bench_*` name
#      EXPERIMENTS.md mentions must exist in bench/.
#   3. Every src/*/ module directory must have a row in the DESIGN.md §3
#      system inventory, and every inventory row's directory must still
#      exist in the tree.
#
# Run from anywhere; registered as a ctest so every suite run enforces it.

set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

# ---- 1. metric catalogue ------------------------------------------------

# Registered names: -z lets the match span the line break in multiline
# Get*( calls; a trailing dot marks a dynamic-suffix family.
src_metrics="$(
  grep -rhozPo 'Get(?:Counter|Gauge|Histogram)\(\s*"[^"]*"' src/ |
    tr '\0' '\n' | grep -o '"[^"]*"' | tr -d '"' |
    sed 's/\.$//' | sort -u
)"

# Catalogue rows: first backticked column of the table between the
# "Metrics registry" and "Invariant auditor" headings; `.<subject>`
# suffixes reduce to the same static prefix the code registers.
doc_metrics="$(
  awk '/^### Metrics registry/,/^### Invariant auditor/' DESIGN.md |
    grep -oP '^\| `\K[^`]+' | sed 's/\.<[^>]*>$//' | sort -u
)"

undocumented="$(comm -23 <(echo "${src_metrics}") <(echo "${doc_metrics}"))"
stale="$(comm -13 <(echo "${src_metrics}") <(echo "${doc_metrics}"))"

if [[ -n "${undocumented}" ]]; then
  echo "docs_check: metrics registered in src/ but missing from DESIGN.md §5b:" >&2
  echo "${undocumented}" | sed 's/^/  /' >&2
  fail=1
fi
if [[ -n "${stale}" ]]; then
  echo "docs_check: metrics in the DESIGN.md §5b catalogue but not registered in src/:" >&2
  echo "${stale}" | sed 's/^/  /' >&2
  fail=1
fi

# ---- 2. bench index -----------------------------------------------------

tree_benches="$(
  for f in bench/bench_*.cc; do
    basename "${f}" .cc
  done | sort -u
)"

# `scripts/bench_*.sh` helpers (e.g. the perf gate) are not bench
# binaries; the lookbehind keeps them out of the cross-check.
doc_benches="$(
  grep -oP '(?<!scripts/)bench_[a-z0-9_]+' EXPERIMENTS.md | sort -u
)"

missing_doc="$(comm -23 <(echo "${tree_benches}") <(echo "${doc_benches}"))"
ghost_doc="$(comm -13 <(echo "${tree_benches}") <(echo "${doc_benches}"))"

if [[ -n "${missing_doc}" ]]; then
  echo "docs_check: bench binaries with no EXPERIMENTS.md entry:" >&2
  echo "${missing_doc}" | sed 's/^/  /' >&2
  fail=1
fi
if [[ -n "${ghost_doc}" ]]; then
  echo "docs_check: EXPERIMENTS.md mentions bench binaries not in bench/:" >&2
  echo "${ghost_doc}" | sed 's/^/  /' >&2
  fail=1
fi

# ---- 3. module inventory ------------------------------------------------

tree_modules="$(
  for d in src/*/; do
    echo "${d%/}"
  done | sort -u
)"

# Inventory rows: the backticked `src/...` Directory column of the §3
# table ("## 3. System inventory" up to the next "## " heading).
doc_modules="$(
  awk '/^## 3\. System inventory/{flag=1; next} /^## /{flag=0} flag' DESIGN.md |
    grep -oP '^\|[^|]*\| `\Ksrc/[^`]+' | sort -u
)"

missing_inv="$(comm -23 <(echo "${tree_modules}") <(echo "${doc_modules}"))"
stale_inv="$(comm -13 <(echo "${tree_modules}") <(echo "${doc_modules}"))"

if [[ -n "${missing_inv}" ]]; then
  echo "docs_check: src/ modules with no DESIGN.md §3 inventory row:" >&2
  echo "${missing_inv}" | sed 's/^/  /' >&2
  fail=1
fi
if [[ -n "${stale_inv}" ]]; then
  echo "docs_check: DESIGN.md §3 inventory rows whose directory is gone:" >&2
  echo "${stale_inv}" | sed 's/^/  /' >&2
  fail=1
fi

if [[ "${fail}" -ne 0 ]]; then
  echo "docs_check: FAILED — update DESIGN.md §3/§5b / EXPERIMENTS.md (or the code) so they agree" >&2
  exit 1
fi

n_metrics="$(echo "${src_metrics}" | wc -l)"
n_benches="$(echo "${tree_benches}" | wc -l)"
n_modules="$(echo "${tree_modules}" | wc -l)"
echo "docs_check: OK (${n_metrics} metrics, ${n_benches} bench binaries, ${n_modules} modules in lockstep)"
