#!/usr/bin/env bash
# Perf regression gate: re-runs the wall-clock benches in --quick mode
# and compares their headline rates against the committed per-machine
# reference numbers in bench/baselines/BENCH_*.json.
#
# The gate is a FLOOR, not a band: a fresh run must reach
# AURORA_BENCH_TOLERANCE (default 0.30) of the baseline rate. That is
# deliberately loose — absolute rates vary several-fold across hosts —
# while still catching a lost integer factor (e.g. regressing the slab
# event engine or the COW page store back to deep copies).
#
# Knobs for noisy machines (documented in EXPERIMENTS.md, C9 section):
#   AURORA_BENCH_TOLERANCE=0.1  scripts/bench_gate.sh   # looser floor
#   AURORA_BENCH_GATE=off       scripts/bench_gate.sh   # skip entirely
#
# Usage: scripts/bench_gate.sh [build-dir]   (default: ./build)

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${AURORA_BENCH_GATE:-on}" == "off" ]]; then
  echo "bench_gate: skipped (AURORA_BENCH_GATE=off)"
  exit 0
fi

TOLERANCE="${AURORA_BENCH_TOLERANCE:-0.30}"
BUILD_DIR="${1:-build}"
BASELINE_DIR="bench/baselines"

# Run artifacts belong in AURORA_BENCH_JSON_DIR (or a scratch cwd), never
# at the repo root: a stray root-level BENCH_*.json is an uncommitted
# baseline candidate that silently drifts from the gated numbers. Fail
# loudly so it gets moved into bench/baselines/ (or deleted).
shopt -s nullglob
ROOT_ORPHANS=(BENCH_*.json)
shopt -u nullglob
if [[ ${#ROOT_ORPHANS[@]} -gt 0 ]]; then
  echo "bench_gate: FAIL stray bench dump(s) at repo root: ${ROOT_ORPHANS[*]}"
  echo "  Commit as a baseline (bench/baselines/) or delete."
  exit 1
fi

if [[ ! -x "${BUILD_DIR}/bench/bench_c7_write_throughput" ||
      ! -x "${BUILD_DIR}/bench/bench_c9_event_engine" ||
      ! -x "${BUILD_DIR}/bench/bench_c10_read_path" ||
      ! -x "${BUILD_DIR}/bench/bench_c11_multi_tenant" ||
      ! -x "${BUILD_DIR}/bench/bench_c12_adversarial" ||
      ! -x "${BUILD_DIR}/bench/bench_c13_fleet_scaling" ]]; then
  echo "bench_gate: building benches in ${BUILD_DIR}"
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    >/dev/null
  cmake --build "${BUILD_DIR}" -j "$(nproc 2>/dev/null || echo 4)" \
    --target bench_c7_write_throughput bench_c9_event_engine \
    bench_c10_read_path bench_c11_multi_tenant \
    bench_c12_adversarial bench_c13_fleet_scaling >/dev/null
fi

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

echo "bench_gate: running bench_c7_write_throughput --quick"
AURORA_BENCH_JSON_DIR="${TMP}" \
  "${BUILD_DIR}/bench/bench_c7_write_throughput" --quick >/dev/null
echo "bench_gate: running bench_c9_event_engine --quick"
AURORA_BENCH_JSON_DIR="${TMP}" \
  "${BUILD_DIR}/bench/bench_c9_event_engine" --quick >/dev/null
echo "bench_gate: running bench_c10_read_path --quick"
AURORA_BENCH_JSON_DIR="${TMP}" \
  "${BUILD_DIR}/bench/bench_c10_read_path" --quick >/dev/null
echo "bench_gate: running bench_c11_multi_tenant --quick"
AURORA_BENCH_JSON_DIR="${TMP}" \
  "${BUILD_DIR}/bench/bench_c11_multi_tenant" --quick >/dev/null
echo "bench_gate: running bench_c12_adversarial --quick"
AURORA_BENCH_JSON_DIR="${TMP}" \
  "${BUILD_DIR}/bench/bench_c12_adversarial" --quick >/dev/null
echo "bench_gate: running bench_c13_fleet_scaling --quick"
AURORA_BENCH_JSON_DIR="${TMP}" \
  "${BUILD_DIR}/bench/bench_c13_fleet_scaling" --quick >/dev/null

# Extracts a numeric field from a flat BENCH_*.json.
json_value() {
  local file="$1" key="$2"
  sed -n "s/^  \"${key}\": \([0-9.eE+-]*\),\{0,1\}$/\1/p" "${file}" | head -1
}

# A usable baseline is a real file that parses as one of our BENCH JSON
# dumps (has the "bench" name field). Anything else — empty file, merge
# damage, truncated write — must fail LOUDLY, not read as zero and
# vacuously pass the floor.
validate_baseline() {
  local file="$1"
  if [[ ! -s "${file}" ]]; then
    echo "bench_gate: FAIL baseline ${file} is missing or empty"
    return 1
  fi
  if ! grep -q '"bench"[[:space:]]*:' "${file}"; then
    echo "bench_gate: FAIL baseline ${file} is malformed (no \"bench\" field)"
    return 1
  fi
  return 0
}

is_number() {
  [[ -n "$1" ]] && awk -v v="$1" 'BEGIN { exit !(v + 0 == v) }'
}

FAILED=0
check_metric() {
  local label="$1" fresh_file="$2" base_file="$3" key="$4"
  local fresh base
  fresh="$(json_value "${fresh_file}" "${key}")"
  base="$(json_value "${base_file}" "${key}")"
  if ! is_number "${base}"; then
    echo "bench_gate: FAIL ${label}.${key}: baseline value missing or" \
         "non-numeric in ${base_file} (got '${base}') — refresh and commit" \
         "the baseline"
    FAILED=1
    return
  fi
  if ! is_number "${fresh}"; then
    echo "bench_gate: FAIL ${label}.${key}: fresh run did not emit a" \
         "numeric value (got '${fresh}')"
    FAILED=1
    return
  fi
  if awk -v f="${fresh}" -v b="${base}" -v t="${TOLERANCE}" \
       'BEGIN { exit !(f + 0 >= (b + 0) * (t + 0)) }'; then
    echo "bench_gate: ok   ${label}.${key}: ${fresh} >= ${TOLERANCE} * ${base}"
  else
    echo "bench_gate: FAIL ${label}.${key}: ${fresh} < ${TOLERANCE} * ${base}" \
         "(floor $(awk -v b="${base}" -v t="${TOLERANCE}" 'BEGIN{printf "%.0f", b*t}'))"
    FAILED=1
  fi
}

for spec in \
  "c7:BENCH_c7_write_throughput.json:records_per_sec" \
  "c7:BENCH_c7_write_throughput.json:events_per_sec" \
  "c9:BENCH_c9_event_engine.json:events_per_sec" \
  "c9:BENCH_c9_event_engine.json:cancel_mix_ops_per_sec" \
  "c9:BENCH_c9_event_engine.json:parallel_events_per_sec" \
  "c10:BENCH_c10_read_path.json:reads_per_sec" \
  "c11:BENCH_c11_multi_tenant.json:commits_per_sec" \
  "c12:BENCH_c12_adversarial.json:events_per_sec" \
  "c12:BENCH_c12_adversarial.json:control_events_per_sec" \
  "c13:BENCH_c13_fleet_scaling.json:fleet_events_per_sec"; do
  IFS=: read -r label file key <<<"${spec}"
  if ! validate_baseline "${BASELINE_DIR}/${file}"; then
    FAILED=1
    continue
  fi
  check_metric "${label}" "${TMP}/${file}" "${BASELINE_DIR}/${file}" "${key}"
done

if [[ ${FAILED} -ne 0 ]]; then
  echo "bench_gate: FAILED — perf floor breached (or baselines missing)."
  echo "  On a slow/noisy host: AURORA_BENCH_TOLERANCE=0.1 or AURORA_BENCH_GATE=off."
  echo "  After a deliberate perf change: refresh bench/baselines/ via"
  echo "  AURORA_BENCH_JSON_DIR=bench/baselines <bench> --quick and commit."
  exit 1
fi
echo "bench_gate: green (tolerance ${TOLERANCE})"
