#!/usr/bin/env bash
# Full verification sweep: the plain RelWithDebInfo build plus one
# sanitized build per sanitizer (AURORA_SANITIZE=address, =undefined,
# =thread), each running the ctest suite. This is the pre-merge gate; the
# sanitized configs catch the lifetime and UB mistakes the callback-heavy
# simulator makes easy, and the tsan config races the sharded parallel
# engine's worker pool (DESIGN.md §9) over the concurrency-heavy tests.
#
# Usage:
#   scripts/check.sh              # all four configs
#   scripts/check.sh address      # just the asan config
#   scripts/check.sh thread       # just the tsan config
#   scripts/check.sh plain        # just the unsanitized config
#   scripts/check.sh --campaign   # sustained-chaos campaign sweep under asan
#
# --campaign builds the address config and runs the self-healing campaign
# suite (fixed seeds; see tests/chaos_campaign_test.cc) instead of the full
# ctest matrix. Combine with configs to widen it: `--campaign undefined`.
#
# Build trees live under build-check/<config> so they never disturb an
# existing ./build directory.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

CAMPAIGN=0
ARGS=()
for arg in "$@"; do
  case "${arg}" in
    --campaign) CAMPAIGN=1 ;;
    *) ARGS+=("${arg}") ;;
  esac
done

if [[ ${CAMPAIGN} -eq 1 ]]; then
  # Sustained chaos wants the sanitizer that catches lifetime bugs in the
  # repair/hydration callback chains; asan is the default campaign config.
  CONFIGS=("${ARGS[@]:-address}")
else
  CONFIGS=("${ARGS[@]:-plain address undefined thread}")
fi
# Word-split the default string when no args were given.
if [[ ${#CONFIGS[@]} -eq 1 && ${CONFIGS[0]} == *" "* ]]; then
  read -r -a CONFIGS <<<"${CONFIGS[0]}"
fi

run_config() {
  local config="$1"
  local dir="build-check/${config}"
  local -a cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo)
  case "${config}" in
    plain) ;;
    address|undefined|thread) cmake_args+=("-DAURORA_SANITIZE=${config}") ;;
    *)
      echo "unknown config '${config}' (want plain, address, undefined," \
           "thread)" >&2
      exit 2
      ;;
  esac
  echo "=== [${config}] configure + build (${dir}) ==="
  cmake -B "${dir}" -S . "${cmake_args[@]}" >"${dir}.configure.log" 2>&1 ||
    { cat "${dir}.configure.log"; exit 1; }
  cmake --build "${dir}" -j "${JOBS}"
  if [[ ${CAMPAIGN} -eq 1 ]]; then
    echo "=== [${config}] campaign sweep (sustained chaos, repair loop on) ==="
    (cd "${dir}" && ctest --output-on-failure -R 'chaos_campaign_test')
    echo "campaign report: ${dir}/tests/campaign_report.json"
  elif [[ ${config} == thread ]]; then
    # TSan is 5-15x; run the tests that actually exercise cross-thread
    # engine state (worker pool, mailboxes, atomics in metrics) rather
    # than the whole protocol matrix the other configs already cover.
    echo "=== [${config}] ctest (parallel-engine subset) ==="
    (cd "${dir}" && ctest --output-on-failure \
       -R 'parallel_engine_test|parallel_determinism_test|common_test|chaos_campaign_smoke')
  else
    echo "=== [${config}] ctest ==="
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
  fi
}

echo "=== docs_check ==="
scripts/docs_check.sh

mkdir -p build-check
for config in "${CONFIGS[@]}"; do
  run_config "${config}"
done
if [[ ${CAMPAIGN} -eq 1 ]]; then
  echo "=== campaign green: ${CONFIGS[*]} ==="
else
  # Perf floor vs committed bench/baselines (skippable: AURORA_BENCH_GATE=off,
  # tunable: AURORA_BENCH_TOLERANCE; see scripts/bench_gate.sh). Runs on the
  # plain build only — sanitized binaries measure the sanitizer, not the code.
  for config in "${CONFIGS[@]}"; do
    if [[ ${config} == plain ]]; then
      echo "=== bench_gate (plain) ==="
      scripts/bench_gate.sh build-check/plain
    fi
  done
  echo "=== all configs green: ${CONFIGS[*]} ==="
fi
