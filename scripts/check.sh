#!/usr/bin/env bash
# Full verification sweep: the plain RelWithDebInfo build plus one
# sanitized build per sanitizer (AURORA_SANITIZE=address, =undefined),
# each running the entire ctest suite. This is the pre-merge gate; the
# sanitized configs catch the lifetime and UB mistakes the callback-heavy
# simulator makes easy.
#
# Usage:
#   scripts/check.sh              # all three configs
#   scripts/check.sh address      # just the asan config
#   scripts/check.sh plain        # just the unsanitized config
#
# Build trees live under build-check/<config> so they never disturb an
# existing ./build directory.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
CONFIGS=("${@:-plain address undefined}")
# Word-split the default string when no args were given.
if [[ ${#CONFIGS[@]} -eq 1 && ${CONFIGS[0]} == *" "* ]]; then
  read -r -a CONFIGS <<<"${CONFIGS[0]}"
fi

run_config() {
  local config="$1"
  local dir="build-check/${config}"
  local -a cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo)
  case "${config}" in
    plain) ;;
    address|undefined) cmake_args+=("-DAURORA_SANITIZE=${config}") ;;
    *)
      echo "unknown config '${config}' (want plain, address, undefined)" >&2
      exit 2
      ;;
  esac
  echo "=== [${config}] configure + build (${dir}) ==="
  cmake -B "${dir}" -S . "${cmake_args[@]}" >"${dir}.configure.log" 2>&1 ||
    { cat "${dir}.configure.log"; exit 1; }
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${config}] ctest ==="
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

echo "=== docs_check ==="
scripts/docs_check.sh

mkdir -p build-check
for config in "${CONFIGS[@]}"; do
  run_config "${config}"
done
echo "=== all configs green: ${CONFIGS[*]} ==="
