// Tenant isolation on the shared storage fleet (DESIGN.md §11).
//
// The multi-tenant claim is an ISOLATION property, not just a fairness
// number: a fault confined to tenant A — its writer crashing, its queues
// backing up — must never stall tenant B's commits, and no schedule of
// shared-fleet faults may drive any tenant's volume into a
// protocol-illegal state. Three angles:
//
//  1. Writer-crash confinement: tenant A's writer dies mid-stream;
//     tenant B's commit pipeline keeps acking throughout the outage
//     (checked DURING the outage, not after recovery).
//  2. Noisy-neighbor confinement under the fair scheduler: tenant A
//     floods the shared disks; tenant B's blocking commits all land.
//  3. A 20-seed chaos sweep over multi-tenant clusters — random storage
//     node crash/restart cycles under concurrent per-tenant load with
//     the invariant auditor attached at event granularity. Every seed
//     must end with zero violations and every tenant making progress.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/cluster.h"
#include "src/core/invariant_auditor.h"
#include "src/engine/db_instance.h"

namespace aurora {
namespace {

core::AuroraOptions MultiTenantOptions(uint64_t seed, size_t volumes) {
  core::AuroraOptions options;
  options.seed = seed;
  options.volumes = volumes;
  options.num_pgs = 2;
  options.blocks_per_pg = 1 << 16;
  options.storage_nodes_per_az = 3;
  options.storage_node.fair_scheduler = true;
  return options;
}

/// Closed-loop async writer against one volume: one autocommit Put in
/// flight at a time, counting acked commits. Keeps issuing until stopped;
/// a failed or timed-out Put just re-issues (the writer may be down).
struct TenantLoad {
  core::AuroraCluster* cluster = nullptr;
  VolumeId volume = 0;
  uint64_t acked = 0;
  uint64_t issued = 0;
  bool stopped = false;

  void Pump() {
    if (stopped) return;
    engine::DbInstance* writer = cluster->writer(volume);
    if (writer == nullptr || !cluster->network().IsUp(writer->id())) {
      // Writer down: retry later rather than crashing into a dead actor.
      cluster->sim().Schedule(1 * kMillisecond, [this] { Pump(); });
      return;
    }
    const TxnId txn = writer->Begin();
    const std::string key =
        "t" + std::to_string(volume) + "-k" + std::to_string(issued % 128);
    ++issued;
    writer->Put(txn, key, "v", [this, writer, txn](Status st) {
      if (!st.ok()) {
        cluster->sim().Schedule(1 * kMillisecond, [this] { Pump(); });
        return;
      }
      writer->Commit(txn, [this](Status commit_st) {
        if (commit_st.ok()) ++acked;
        cluster->sim().Schedule(200, [this] { Pump(); });
      });
    });
  }
};

TEST(TenantIsolation, WriterCrashInTenantANeverStallsTenantB) {
  core::AuroraCluster cluster(MultiTenantOptions(6001, /*volumes=*/2));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  core::InvariantAuditor auditor(&cluster);
  auditor.Attach(/*every_n_events=*/16);

  TenantLoad load_a{&cluster, 0};
  TenantLoad load_b{&cluster, 1};
  load_a.Pump();
  load_b.Pump();
  cluster.RunFor(200 * kMillisecond);
  const uint64_t a_before = load_a.acked;
  const uint64_t b_before = load_b.acked;
  ASSERT_GT(a_before, 0u);
  ASSERT_GT(b_before, 0u);

  // Tenant A's writer crashes and STAYS down. The fault is confined to
  // volume 0: same fleet, same disks, same metadata service — tenant B
  // must keep committing at full clip during the outage.
  cluster.network().Crash(cluster.writer(0)->id());
  cluster.RunFor(500 * kMillisecond);

  EXPECT_EQ(load_a.acked, a_before) << "tenant A acked through a crash?";
  const uint64_t b_during = load_b.acked - b_before;
  EXPECT_GT(b_during, 100u)
      << "tenant B stalled while tenant A's writer was down";
  EXPECT_TRUE(auditor.ok()) << auditor.Report();

  load_a.stopped = true;
  load_b.stopped = true;
  cluster.RunFor(10 * kMillisecond);
  auditor.Detach();
}

TEST(TenantIsolation, NoisyTenantNeverBlocksQuietCommits) {
  core::AuroraCluster cluster(MultiTenantOptions(6002, /*volumes=*/2));
  ASSERT_TRUE(cluster.StartBlocking().ok());

  // Tenant 0 floods: sixteen concurrent closed loops with zero think
  // time. Tenant 1 issues 50 blocking commits; every one must land
  // despite the backlog (DRR guarantees bounded wait, not just
  // eventual service — the bench asserts the latency bound, this test
  // asserts liveness through the blocking path's timeout).
  std::vector<std::unique_ptr<TenantLoad>> noisy;
  for (int i = 0; i < 16; ++i) {
    auto load = std::make_unique<TenantLoad>();
    load->cluster = &cluster;
    load->volume = 0;
    load->Pump();
    noisy.push_back(std::move(load));
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        cluster.PutBlocking(1, "quiet" + std::to_string(i), "v").ok())
        << "quiet tenant commit " << i << " failed under noisy load";
  }
  for (auto& load : noisy) load->stopped = true;
  cluster.RunFor(10 * kMillisecond);
  EXPECT_GT(noisy.front()->acked, 0u);
}

TEST(TenantIsolation, ChaosSweepTwentySeedsAuditorGreen) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    core::AuroraCluster cluster(MultiTenantOptions(7000 + seed,
                                                   /*volumes=*/3));
    ASSERT_TRUE(cluster.StartBlocking().ok()) << "seed " << seed;
    core::InvariantAuditor auditor(&cluster);
    auditor.Attach(/*every_n_events=*/8);

    std::vector<std::unique_ptr<TenantLoad>> loads;
    for (VolumeId volume = 0; volume < 3; ++volume) {
      auto load = std::make_unique<TenantLoad>();
      load->cluster = &cluster;
      load->volume = volume;
      load->Pump();
      loads.push_back(std::move(load));
    }

    // Random crash/restart churn on the shared servers: up to two nodes
    // down at once (a 4/6 write quorum survives two member losses), each
    // outage 20-80ms, for ~1.2s of simulated time.
    Rng rng(seed * 977);
    const std::vector<NodeId> servers = cluster.StorageNodeIds();
    for (int round = 0; round < 12; ++round) {
      const NodeId victim_a = servers[rng.Next() % servers.size()];
      NodeId victim_b = servers[rng.Next() % servers.size()];
      if (rng.Next() % 2 == 0) victim_b = victim_a;  // single-fault rounds
      cluster.network().Crash(victim_a);
      if (victim_b != victim_a) cluster.network().Crash(victim_b);
      cluster.RunFor(20 * kMillisecond + rng.Next() % (60 * kMillisecond));
      cluster.network().Restart(victim_a);
      if (victim_b != victim_a) cluster.network().Restart(victim_b);
      cluster.RunFor(20 * kMillisecond);
    }
    cluster.RunFor(200 * kMillisecond);  // settle: queues drain, gossip heals

    EXPECT_TRUE(auditor.ok()) << "seed " << seed << "\n" << auditor.Report();
    for (VolumeId volume = 0; volume < 3; ++volume) {
      EXPECT_GT(loads[volume]->acked, 0u)
          << "seed " << seed << ": tenant " << volume << " made no progress";
    }
    for (auto& load : loads) load->stopped = true;
    cluster.RunFor(10 * kMillisecond);
    auditor.Detach();
  }
}

}  // namespace
}  // namespace aurora
