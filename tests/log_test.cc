// Unit tests for the redo log: record codec, segment hot log (SCL / gaps /
// gossip chains / truncation / GC / scrub removal), and the boxcar
// batching policies.

#include <gtest/gtest.h>

#include "src/log/boxcar.h"
#include "src/log/hot_log.h"
#include "src/log/record.h"
#include "src/sim/simulator.h"

namespace aurora::log {
namespace {

RedoRecord MakeRecord(Lsn lsn, Lsn prev_seg, ProtectionGroupId pg = 0,
                      BlockId block = 7, std::string payload = "op") {
  RedoRecord rec;
  rec.lsn = lsn;
  rec.prev_lsn_volume = lsn - 1;
  rec.prev_lsn_segment = prev_seg;
  rec.prev_lsn_block = 0;
  rec.pg = pg;
  rec.block = block;
  rec.txn = 1;
  rec.payload = std::move(payload);
  return rec;
}

// ---------------------------------------------------------------------- //
// Codec

TEST(RecordCodec, RoundTrip) {
  RedoRecord rec = MakeRecord(42, 41);
  rec.type = RecordType::kCommit;
  rec.mtr = MtrBoundary::kEnd;
  rec.payload = std::string("\x00\x01\x02 binary \xff", 12);
  const std::string encoded = EncodeRecord(rec);
  EXPECT_EQ(encoded.size(), rec.SerializedSize());
  auto decoded = DecodeRecord(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, rec);
}

TEST(RecordCodec, EmptyPayload) {
  RedoRecord rec = MakeRecord(1, 0, 0, kInvalidBlock, "");
  auto decoded = DecodeRecord(EncodeRecord(rec));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rec);
}

TEST(RecordCodec, DetectsCorruption) {
  std::string encoded = EncodeRecord(MakeRecord(5, 4));
  encoded[10] ^= 0x40;
  EXPECT_TRUE(DecodeRecord(encoded).status().IsCorruption());
}

TEST(RecordCodec, DetectsTruncation) {
  std::string encoded = EncodeRecord(MakeRecord(5, 4));
  encoded.resize(encoded.size() - 3);
  EXPECT_TRUE(DecodeRecord(encoded).status().IsCorruption());
}

TEST(RecordCodec, RejectsBadEnums) {
  std::string encoded = EncodeRecord(MakeRecord(5, 4));
  encoded[52] = 9;  // type byte out of range
  EXPECT_TRUE(DecodeRecord(encoded).status().IsCorruption());
}

// ---------------------------------------------------------------------- //
// SegmentHotLog

TEST(HotLog, SclAdvancesAlongChain) {
  SegmentHotLog log;
  EXPECT_EQ(log.scl(), kInvalidLsn);
  ASSERT_TRUE(log.Append(MakeRecord(1, 0)).ok());
  EXPECT_EQ(log.scl(), 1u);
  ASSERT_TRUE(log.Append(MakeRecord(2, 1)).ok());
  EXPECT_EQ(log.scl(), 2u);
}

TEST(HotLog, GapHoldsSclThenFills) {
  SegmentHotLog log;
  ASSERT_TRUE(log.Append(MakeRecord(1, 0)).ok());
  ASSERT_TRUE(log.Append(MakeRecord(3, 2)).ok());  // 2 missing
  EXPECT_EQ(log.scl(), 1u);
  ASSERT_TRUE(log.Append(MakeRecord(4, 3)).ok());
  EXPECT_EQ(log.scl(), 1u);
  ASSERT_TRUE(log.Append(MakeRecord(2, 1)).ok());  // hole filled
  EXPECT_EQ(log.scl(), 4u) << "SCL jumps across the filled hole";
}

TEST(HotLog, AppendIsIdempotent) {
  SegmentHotLog log;
  ASSERT_TRUE(log.Append(MakeRecord(1, 0)).ok());
  ASSERT_TRUE(log.Append(MakeRecord(1, 0)).ok());
  EXPECT_EQ(log.RecordCount(), 1u);
}

TEST(HotLog, OutOfOrderDeliveryConverges) {
  // Property: any delivery permutation yields the same SCL.
  std::vector<RedoRecord> records;
  for (Lsn l = 1; l <= 8; ++l) records.push_back(MakeRecord(l, l - 1));
  std::vector<size_t> perm = {7, 2, 0, 5, 1, 6, 3, 4};
  SegmentHotLog log;
  for (size_t i : perm) ASSERT_TRUE(log.Append(records[i]).ok());
  EXPECT_EQ(log.scl(), 8u);
}

TEST(HotLog, ChainAfterReturnsMissingSuffix) {
  SegmentHotLog log;
  for (Lsn l = 1; l <= 5; ++l) ASSERT_TRUE(log.Append(MakeRecord(l, l - 1)).ok());
  auto chain = log.ChainAfter(2, 10);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].lsn, 3u);
  EXPECT_EQ(chain[2].lsn, 5u);
  EXPECT_TRUE(log.ChainAfter(5, 10).empty());
}

TEST(HotLog, GossipFillsPeerGap) {
  SegmentHotLog complete, lagging;
  for (Lsn l = 1; l <= 6; ++l) {
    ASSERT_TRUE(complete.Append(MakeRecord(l, l - 1)).ok());
  }
  ASSERT_TRUE(lagging.Append(MakeRecord(1, 0)).ok());
  ASSERT_TRUE(lagging.Append(MakeRecord(5, 4)).ok());
  ASSERT_TRUE(lagging.Append(MakeRecord(6, 5)).ok());
  EXPECT_EQ(lagging.scl(), 1u);
  // Gossip exchange: lagging advertises SCL=1; peer responds with chain.
  for (const auto& rec : complete.ChainAfter(lagging.scl(), 100)) {
    ASSERT_TRUE(lagging.Append(rec).ok());
  }
  EXPECT_EQ(lagging.scl(), 6u);
}

TEST(HotLog, TruncationAnnulsRangeAndLateArrivals) {
  SegmentHotLog log;
  for (Lsn l = 1; l <= 10; ++l) ASSERT_TRUE(log.Append(MakeRecord(l, l - 1)).ok());
  log.Truncate(TruncationRange{6, 1000});
  EXPECT_EQ(log.scl(), 5u);
  EXPECT_FALSE(log.Contains(7));
  // A late in-flight write inside the annulled range is ignored (§2.4).
  ASSERT_TRUE(log.Append(MakeRecord(8, 7)).ok());
  EXPECT_FALSE(log.Contains(8));
  // Post-recovery records above the range chain onto the kept tail.
  ASSERT_TRUE(log.Append(MakeRecord(1001, 5)).ok());
  EXPECT_EQ(log.scl(), 1001u);
}

TEST(HotLog, MultipleTruncationsAccumulate) {
  SegmentHotLog log;
  for (Lsn l = 1; l <= 4; ++l) ASSERT_TRUE(log.Append(MakeRecord(l, l - 1)).ok());
  log.Truncate(TruncationRange{3, 100});
  ASSERT_TRUE(log.Append(MakeRecord(101, 2)).ok());
  log.Truncate(TruncationRange{101, 200});
  EXPECT_EQ(log.scl(), 2u);
  EXPECT_EQ(log.truncations().size(), 2u);
  ASSERT_TRUE(log.Append(MakeRecord(50, 2)).ok());   // annulled by first
  ASSERT_TRUE(log.Append(MakeRecord(150, 2)).ok());  // annulled by second
  EXPECT_FALSE(log.Contains(50));
  EXPECT_FALSE(log.Contains(150));
}

TEST(HotLog, EvictBelowKeepsLogicalChain) {
  SegmentHotLog log;
  for (Lsn l = 1; l <= 10; ++l) ASSERT_TRUE(log.Append(MakeRecord(l, l - 1)).ok());
  log.EvictBelow(5);
  EXPECT_EQ(log.RecordCount(), 5u);
  EXPECT_EQ(log.gc_floor(), 5u);
  EXPECT_EQ(log.scl(), 10u) << "GC must not regress SCL";
  // New appends continue the chain.
  ASSERT_TRUE(log.Append(MakeRecord(11, 10)).ok());
  EXPECT_EQ(log.scl(), 11u);
}

TEST(HotLog, RemoveRewindsScl) {
  SegmentHotLog log;
  for (Lsn l = 1; l <= 5; ++l) ASSERT_TRUE(log.Append(MakeRecord(l, l - 1)).ok());
  EXPECT_TRUE(log.Remove(3));
  EXPECT_EQ(log.scl(), 2u) << "scrubbed-out record breaks the chain";
  // Re-delivery (gossip) heals it.
  ASSERT_TRUE(log.Append(MakeRecord(3, 2)).ok());
  EXPECT_EQ(log.scl(), 5u);
}

TEST(HotLog, RangeQueriesOnOutOfOrderContents) {
  SegmentHotLog log;
  // Arrival order scrambled; the flat store must still answer range
  // queries in ascending LSN order.
  for (Lsn l : {4u, 1u, 7u, 2u, 6u, 3u, 5u}) {
    ASSERT_TRUE(log.Append(MakeRecord(l, l - 1)).ok());
  }
  auto in_range = log.RecordsInRange(2, 5);
  ASSERT_EQ(in_range.size(), 4u);
  for (size_t i = 0; i < in_range.size(); ++i) {
    EXPECT_EQ(in_range[i].lsn, 2u + i);
  }
  auto above = log.RecordsAbove(5, 10);
  ASSERT_EQ(above.size(), 2u);
  EXPECT_EQ(above[0].lsn, 6u);
  EXPECT_EQ(above[1].lsn, 7u);
  EXPECT_EQ(log.RecordsAbove(7, 10).size(), 0u);
  EXPECT_EQ(log.RecordsInRange(8, 100).size(), 0u);
}

TEST(HotLog, TruncateEvictRemoveRoundTrip) {
  // One log pushed through the full lifecycle: out-of-order fill,
  // truncation, re-append above the gap, GC, scrub removal, gossip heal.
  SegmentHotLog log;
  for (Lsn l : {2u, 1u, 4u, 3u, 6u, 5u, 8u, 7u, 10u, 9u}) {
    ASSERT_TRUE(log.Append(MakeRecord(l, l - 1)).ok());
  }
  EXPECT_EQ(log.scl(), 10u);
  log.Truncate(TruncationRange{6, 1000});
  EXPECT_EQ(log.scl(), 5u);
  EXPECT_EQ(log.RecordCount(), 5u);
  ASSERT_TRUE(log.Append(MakeRecord(1001, 5)).ok());
  ASSERT_TRUE(log.Append(MakeRecord(1002, 1001)).ok());
  EXPECT_EQ(log.scl(), 1002u);
  log.EvictBelow(3);
  EXPECT_EQ(log.gc_floor(), 3u);
  EXPECT_EQ(log.RecordCount(), 4u);  // 4, 5, 1001, 1002
  EXPECT_EQ(log.scl(), 1002u) << "GC must not regress SCL";
  // Scrub out a record sitting mid-chain above the GC floor.
  EXPECT_TRUE(log.Remove(5));
  EXPECT_EQ(log.scl(), 4u) << "rewind lands on the last intact link";
  // Gossip re-delivers the scrubbed record; SCL heals across the
  // truncation gap to the tail.
  ASSERT_TRUE(log.Append(MakeRecord(5, 4)).ok());
  EXPECT_EQ(log.scl(), 1002u);
  // Everything below or inside the annulled range stays out.
  ASSERT_TRUE(log.Append(MakeRecord(2, 1)).ok());   // below GC floor
  ASSERT_TRUE(log.Append(MakeRecord(500, 5)).ok());  // annulled
  EXPECT_FALSE(log.Contains(2));
  EXPECT_FALSE(log.Contains(500));
  EXPECT_EQ(log.RecordCount(), 4u);  // 4, 5, 1001, 1002
}

TEST(HotLog, RemoveBelowEverythingRewindsToFloor) {
  SegmentHotLog log;
  for (Lsn l = 1; l <= 6; ++l) ASSERT_TRUE(log.Append(MakeRecord(l, l - 1)).ok());
  log.EvictBelow(2);
  // Remove the first record still stored; the rewind anchors at the GC
  // floor (records at or below it were chain-complete when evicted).
  EXPECT_TRUE(log.Remove(3));
  EXPECT_EQ(log.scl(), 2u);
  ASSERT_TRUE(log.Append(MakeRecord(3, 2)).ok());
  EXPECT_EQ(log.scl(), 6u);
}

TEST(HotLog, CorruptPayloadIsCopyOnWrite) {
  // The payload buffer of a record is shared by every holder (peers,
  // retransmission buffers). A test-injected corruption must only hit the
  // copy in the corrupted log.
  const RedoRecord original = MakeRecord(1, 0, 0, 7, "shared-bytes");
  SegmentHotLog healthy, corrupted;
  ASSERT_TRUE(healthy.Append(original).ok());
  ASSERT_TRUE(corrupted.Append(original).ok());
  // All three records share one buffer.
  EXPECT_EQ(healthy.Find(1)->payload.data(), original.payload.data());
  EXPECT_EQ(corrupted.Find(1)->payload.data(), original.payload.data());
  ASSERT_TRUE(corrupted.CorruptPayloadForTest(1));
  EXPECT_NE(corrupted.Find(1)->payload.view(), original.payload.view());
  EXPECT_EQ(healthy.Find(1)->payload.view(), original.payload.view());
  EXPECT_EQ(original.payload.view(), "shared-bytes");
  EXPECT_FALSE(corrupted.CorruptPayloadForTest(99));  // absent LSN
}

TEST(RecordPayload, CopiesShareOneBuffer) {
  RedoRecord rec = MakeRecord(9, 8, 0, 7, std::string(1024, 'x'));
  RedoRecord fanout_copy = rec;  // what SendBatch/gossip used to deep-copy
  EXPECT_EQ(fanout_copy.payload.data(), rec.payload.data())
      << "record copies must alias the payload, not duplicate it";
  EXPECT_EQ(fanout_copy, rec);
}

TEST(HotLog, TotalBytesTracksContents) {
  SegmentHotLog log;
  const RedoRecord rec = MakeRecord(1, 0);
  ASSERT_TRUE(log.Append(rec).ok());
  EXPECT_EQ(log.TotalBytes(), rec.SerializedSize());
  log.EvictBelow(1);
  EXPECT_EQ(log.TotalBytes(), 0u);
}

// ---------------------------------------------------------------------- //
// Boxcar

TEST(Boxcar, SubmitOnFirstDispatchesQuickly) {
  sim::Simulator sim;
  std::vector<size_t> batch_sizes;
  BoxcarOptions options;
  options.policy = BoxcarPolicy::kSubmitOnFirst;
  options.dispatch_delay = 20;
  BoxcarBatcher boxcar(&sim, options, [&](std::vector<RedoRecord> batch) {
    batch_sizes.push_back(batch.size());
  });
  boxcar.Add(MakeRecord(1, 0));
  sim.Schedule(5, [&]() { boxcar.Add(MakeRecord(2, 1)); });
  sim.Run();
  // Both records ride the single dispatch scheduled by the first.
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes[0], 2u);
  EXPECT_EQ(sim.Now(), 20);
}

TEST(Boxcar, FillOrTimeoutWaitsFullTimeout) {
  sim::Simulator sim;
  SimTime dispatched_at = -1;
  BoxcarOptions options;
  options.policy = BoxcarPolicy::kFillOrTimeout;
  options.fill_timeout = 4000;
  BoxcarBatcher boxcar(&sim, options, [&](std::vector<RedoRecord>) {
    dispatched_at = sim.Now();
  });
  boxcar.Add(MakeRecord(1, 0));
  sim.Run();
  EXPECT_EQ(dispatched_at, 4000) << "low-load boxcar pays the full timeout";
}

TEST(Boxcar, SizeTriggerBeatsTimer) {
  sim::Simulator sim;
  size_t dispatches = 0;
  BoxcarOptions options;
  options.policy = BoxcarPolicy::kFillOrTimeout;
  options.fill_timeout = 4000;
  options.max_batch_bytes = 3 * MakeRecord(1, 0).SerializedSize();
  BoxcarBatcher boxcar(&sim, options,
                       [&](std::vector<RedoRecord>) { dispatches++; });
  for (Lsn l = 1; l <= 3; ++l) boxcar.Add(MakeRecord(l, l - 1));
  EXPECT_EQ(dispatches, 1u);
  EXPECT_EQ(sim.Now(), 0);
}

TEST(Boxcar, FlushForcesDispatch) {
  sim::Simulator sim;
  size_t dispatches = 0;
  BoxcarBatcher boxcar(&sim, BoxcarOptions{},
                       [&](std::vector<RedoRecord>) { dispatches++; });
  boxcar.Add(MakeRecord(1, 0));
  boxcar.Flush();
  EXPECT_EQ(dispatches, 1u);
  sim.Run();
  EXPECT_EQ(dispatches, 1u) << "cancelled timer must not double-dispatch";
}

TEST(Boxcar, AdaptiveMatchesSubmitOnFirstAtLowLoad) {
  sim::Simulator sim;
  SimTime dispatched_at = -1;
  BoxcarOptions options;
  options.policy = BoxcarPolicy::kAdaptive;
  options.dispatch_delay = 20;
  BoxcarBatcher boxcar(&sim, options, [&](std::vector<RedoRecord>) {
    dispatched_at = sim.Now();
  });
  boxcar.Add(MakeRecord(1, 0));
  sim.Run();
  // A quiet tenant sees exactly the submit-on-first latency.
  EXPECT_EQ(dispatched_at, 20);
  EXPECT_EQ(boxcar.CurrentDelay(), 20);
}

TEST(Boxcar, AdaptiveWidensUnderLoadAndShrinksWhenSparse) {
  sim::Simulator sim;
  BoxcarOptions options;
  options.policy = BoxcarPolicy::kAdaptive;
  options.dispatch_delay = 20;
  options.adaptive_max_delay = 160;
  options.max_batch_bytes = 4 * MakeRecord(1, 0).SerializedSize();
  size_t dispatches = 0;
  BoxcarBatcher boxcar(&sim, options,
                       [&](std::vector<RedoRecord>) { dispatches++; });
  // Size-triggered (full) departures double the window up to the cap.
  Lsn lsn = 1;
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 4; ++i, ++lsn) boxcar.Add(MakeRecord(lsn, lsn - 1));
  }
  EXPECT_EQ(dispatches, 4u);
  EXPECT_EQ(boxcar.CurrentDelay(), 160) << "widened to the cap, not past it";
  // Sparse timer departures halve it back down to the base delay.
  for (int i = 0; i < 4; ++i, ++lsn) {
    boxcar.Add(MakeRecord(lsn, lsn - 1));
    sim.Run();  // let the pending dispatch fire with a 1-record batch
  }
  EXPECT_EQ(dispatches, 8u);
  EXPECT_EQ(boxcar.CurrentDelay(), 20) << "idle load restores base latency";
}

TEST(Boxcar, MeanBatchFillAccounting) {
  sim::Simulator sim;
  BoxcarBatcher boxcar(&sim, BoxcarOptions{}, [](std::vector<RedoRecord>) {});
  for (Lsn l = 1; l <= 4; ++l) boxcar.Add(MakeRecord(l, l - 1));
  sim.Run();
  EXPECT_EQ(boxcar.batches_sent(), 1u);
  EXPECT_EQ(boxcar.records_sent(), 4u);
  EXPECT_DOUBLE_EQ(boxcar.MeanBatchFill(), 4.0);
}

}  // namespace
}  // namespace aurora::log
