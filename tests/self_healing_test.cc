// Self-healing control plane: health monitoring, autonomous Figure-5
// repair, degraded-mode commit parking, and hydration read exclusion.
//
// Covers the four behaviors the sustained chaos campaign relies on, each
// in isolation so a campaign failure localizes quickly:
//  1. The health monitor suspects a crashed member from probe timeouts and
//     clears the suspicion when the node returns (in-band ack evidence and
//     adaptive timeouts are exercised implicitly by the live traffic).
//  2. The repair planner drives a Figure-5 replacement end-to-end without
//     any test choreography — and fencing holds at the COMMIT exit: a
//     writer still holding the pre-change membership epoch cannot
//     assemble a write quorum afterwards.
//  3. The planner takes the REVERT exit when the suspect comes back
//     mid-hydration, and fencing holds there too (the revert mints a
//     fresh epoch; it never reinstates the old one).
//  4. Degraded mode: losing write quorum parks commits with bounded
//     memory (put backpressure), keeps reads available, and drains every
//     parked commit in SCN order once the quorum heals.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/health_monitor.h"
#include "src/core/invariant_auditor.h"
#include "src/core/repair_planner.h"
#include "src/storage/messages.h"

namespace aurora {
namespace {

core::AuroraOptions SmallVolume(uint64_t seed) {
  core::AuroraOptions options;
  options.seed = seed;
  options.num_pgs = 1;
  options.blocks_per_pg = 1 << 16;
  // Three nodes per AZ so the planner always has a replacement host.
  options.storage_nodes_per_az = 3;
  return options;
}

// Sends an empty (epoch-check-only) WriteRequest to every member of the
// PG's current config carrying `membership_epoch`, and returns the set of
// members that acked OK. Empty record batches exercise exactly the
// fencing path without perturbing any log state.
quorum::SegmentSet ProbeWriteQuorum(core::AuroraCluster& cluster,
                                    MembershipEpoch membership_epoch) {
  const auto& pg = cluster.geometry().pgs().front();
  auto acked = std::make_shared<quorum::SegmentSet>();
  for (const auto& member : pg.AllMembers()) {
    storage::StorageNode* node = cluster.NodeForSegment(member.id);
    if (node == nullptr) continue;
    storage::WriteRequest request;
    request.segment = member.id;
    request.epochs = EpochVector{cluster.metadata().volume_epoch(),
                                 membership_epoch};
    const SegmentId id = member.id;
    node->HandleWrite(request, [acked, id](const storage::WriteAck& ack) {
      if (ack.status.ok()) acked->insert(id);
    });
  }
  cluster.RunFor(100 * kMillisecond);  // drain the disk-ack callbacks
  return *acked;
}

TEST(SelfHealing, MonitorSuspectsCrashedNodeAndClearsOnReturn) {
  core::AuroraCluster cluster(SmallVolume(9001));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  core::HealthMonitor monitor(&cluster);
  monitor.Start();

  cluster.RunFor(500 * kMillisecond);
  EXPECT_TRUE(monitor.Suspects().empty());
  EXPECT_GT(monitor.probes_sent(), 0u);

  const auto member = cluster.geometry().pgs().front().AllMembers().front();
  cluster.network().Crash(member.node);
  ASSERT_TRUE(cluster.RunUntil(
      [&]() { return monitor.IsSuspect(member.id); }, 5 * kSecond));
  EXPECT_GT(monitor.suspicions_declared(), 0u);
  EXPECT_GT(monitor.suspected_since(member.id), 0);

  cluster.network().Restart(member.node);
  ASSERT_TRUE(cluster.RunUntil(
      [&]() { return !monitor.IsSuspect(member.id); }, 5 * kSecond));
  // The sticky evidence marker survives recovery (the auditor keys off it).
  EXPECT_GT(monitor.last_suspected_at(member.id), 0);
  monitor.Stop();
}

TEST(SelfHealing, PlannerRepairsCrashedSegmentAndCommitFences) {
  core::AuroraCluster cluster(SmallVolume(9002));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("k" + std::to_string(i),
                                    "v" + std::to_string(i)).ok());
  }

  core::HealthMonitor monitor(&cluster);
  core::RepairPlanner planner(&cluster, &monitor);
  core::InvariantAuditor auditor(&cluster);
  auditor.Attach(/*every_n_events=*/16);
  auditor.ObserveControlPlane(&monitor, &planner);
  monitor.Start();
  planner.Start();

  const auto& pg = cluster.geometry().pgs().front();
  const MembershipEpoch pre_change_epoch = pg.epoch();
  const auto victim = pg.AllMembers().front();
  cluster.network().Crash(victim.node);

  ASSERT_TRUE(cluster.RunUntil(
      [&]() { return planner.stats().committed >= 1; }, 30 * kSecond))
      << "planner never committed a repair";
  EXPECT_EQ(planner.mttr().count(), planner.stats().committed);
  EXPECT_GT(planner.mttr().max(), 0);

  // The volume re-converges: six hydrated members on live nodes, the
  // victim segment gone from the config.
  ASSERT_TRUE(cluster.RunUntil(
      [&]() {
        const auto& cfg = cluster.geometry().pgs().front();
        if (cfg.HasPendingChange()) return false;
        for (const auto& m : cfg.AllMembers()) {
          if (m.id == victim.id) return false;
          if (!cluster.network().IsUp(m.node)) return false;
          auto* node = cluster.NodeForSegment(m.id);
          auto* store = node ? node->FindSegment(m.id) : nullptr;
          if (store == nullptr || !store->hydrated()) return false;
        }
        return true;
      },
      30 * kSecond));
  const MembershipEpoch post_epoch = cluster.geometry().pgs().front().epoch();
  EXPECT_GE(post_epoch, pre_change_epoch + 2);  // begin + commit

  // Figure-5 COMMIT exit fencing: the pre-change membership epoch can no
  // longer assemble a write quorum...
  const auto stale_acks = ProbeWriteQuorum(cluster, pre_change_epoch);
  EXPECT_FALSE(
      cluster.geometry().pgs().front().WriteSet().SatisfiedBy(stale_acks))
      << stale_acks.size() << " members still accept the pre-change epoch";
  // ...while the current epoch can (the probe fails on fencing, not
  // liveness).
  const auto fresh_acks = ProbeWriteQuorum(cluster, post_epoch);
  EXPECT_TRUE(
      cluster.geometry().pgs().front().WriteSet().SatisfiedBy(fresh_acks));

  // Data written before the failure survives the autonomous repair.
  for (int i = 0; i < 40; ++i) {
    auto value = cluster.GetBlocking("k" + std::to_string(i));
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_EQ(*value, "v" + std::to_string(i));
  }

  auditor.CheckNow();
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
  auditor.Detach();
  planner.Stop();
  monitor.Stop();
}

TEST(SelfHealing, PlannerRevertsWhenSuspectReturnsAndRevertFences) {
  core::AuroraCluster cluster(SmallVolume(9003));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("r" + std::to_string(i), "v").ok());
  }

  core::HealthMonitor monitor(&cluster);
  core::RepairPlanner planner(&cluster, &monitor);
  core::InvariantAuditor auditor(&cluster);
  auditor.Attach(/*every_n_events=*/16);
  auditor.ObserveControlPlane(&monitor, &planner);
  monitor.Start();
  planner.Start();

  const auto& pg = cluster.geometry().pgs().front();
  const MembershipEpoch pre_change_epoch = pg.epoch();
  const auto victim = pg.AllMembers().front();
  cluster.network().Crash(victim.node);

  // Wait for the planner to pass the point of no return for BeginChange:
  // the dual-quorum config is installed and the replacement is hydrating.
  ASSERT_TRUE(cluster.RunUntil(
      [&]() {
        auto it = planner.jobs().find(victim.id);
        return it != planner.jobs().end() &&
               it->second.state == core::RepairPlanner::JobState::kHydrating;
      },
      30 * kSecond))
      << "planner never reached kHydrating";
  const NodeId host = planner.jobs().at(victim.id).host_node;
  ASSERT_NE(host, kInvalidNode);

  // Freeze hydration (crash the replacement host), then bring the suspect
  // back: the only legal exit left is RevertChange.
  cluster.network().Crash(host);
  cluster.network().Restart(victim.node);
  ASSERT_TRUE(cluster.RunUntil(
      [&]() { return planner.stats().reverted >= 1; }, 30 * kSecond))
      << "planner never reverted";
  EXPECT_EQ(planner.stats().committed, 0u);
  cluster.network().Restart(host);

  // After the revert the original membership is back — at a NEW epoch.
  ASSERT_TRUE(cluster.RunUntil(
      [&]() {
        const auto& cfg = cluster.geometry().pgs().front();
        return !cfg.HasPendingChange() && monitor.Suspects().empty() &&
               planner.ActiveCount() == 0;
      },
      30 * kSecond));
  const auto& cfg = cluster.geometry().pgs().front();
  bool victim_back = false;
  for (const auto& m : cfg.AllMembers()) victim_back |= (m.id == victim.id);
  EXPECT_TRUE(victim_back);
  const MembershipEpoch post_epoch = cfg.epoch();
  EXPECT_GE(post_epoch, pre_change_epoch + 2);  // begin + revert

  // Figure-5 REVERT exit fencing: reverting restores the membership but
  // NEVER the epoch — a writer still at the pre-change epoch stays boxed
  // out even though the member set looks identical again.
  const auto stale_acks = ProbeWriteQuorum(cluster, pre_change_epoch);
  EXPECT_FALSE(cfg.WriteSet().SatisfiedBy(stale_acks))
      << stale_acks.size() << " members still accept the pre-change epoch";
  const auto fresh_acks = ProbeWriteQuorum(cluster, post_epoch);
  EXPECT_TRUE(cluster.geometry().pgs().front().WriteSet().SatisfiedBy(
      fresh_acks));

  auditor.CheckNow();
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
  auditor.Detach();
  planner.Stop();
  monitor.Stop();
}

TEST(SelfHealing, AckObserverOutlivesDestroyedMonitor) {
  // Regression: the DbInstance persists the monitor's ack observer and
  // re-applies it to every rebuilt driver, so the lambda can fire after
  // the monitor is gone. Destroying the monitor WITHOUT Stop() and then
  // driving acked writes must be a no-op, not a use-after-free (asan
  // config catches the dangling capture).
  core::AuroraCluster cluster(SmallVolume(9007));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  {
    core::HealthMonitor monitor(&cluster);
    monitor.Start();
    cluster.RunFor(200 * kMillisecond);  // a sweep installs the observer
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("a" + std::to_string(i), "v").ok());
  }
}

TEST(SelfHealing, SclProbeQuorumRequiresDistinctResponders) {
  // Regression: re-probe rounds must not let the SAME hydrated member
  // satisfy the SCL probe quorum by replying repeatedly. With only two
  // distinct members reachable, the planner has no read quorum to compute
  // a safe hydration target from, and must stay in kProbing — beginning
  // the change would install a replacement whose hydration target can sit
  // below the durable point.
  core::AuroraCluster cluster(SmallVolume(9006));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("q" + std::to_string(i), "v").ok());
  }

  core::HealthMonitor monitor(&cluster);
  core::RepairPlanner planner(&cluster, &monitor);
  monitor.Start();
  planner.Start();

  // Leave only two member-hosting nodes up: every probe round yields the
  // same two hydrated responders.
  const auto members = cluster.geometry().pgs().front().AllMembers();
  ASSERT_EQ(members.size(), 6u);
  for (int i = 0; i < 4; ++i) cluster.network().Crash(members[i].node);

  // Long enough for many re-probe windows (probe_window=500ms): the buggy
  // accumulator crossed the quorum gate on the second round.
  cluster.RunFor(3 * kSecond);
  ASSERT_GE(planner.stats().jobs_started, 1u) << "planner never reacted";
  EXPECT_EQ(planner.stats().begun, 0u)
      << "change begun without a read quorum of distinct SCL responders";
  for (const auto& [id, job] : planner.jobs()) {
    EXPECT_EQ(job.state, core::RepairPlanner::JobState::kProbing)
        << "job for seg=" << id << " left kProbing";
    EXPECT_LT(job.probe_responders.size(), 3u);
  }

  // Restore all but one crashed member: three-plus distinct responders
  // are reachable again and the write quorum is back, so the gate opens
  // and the remaining suspect gets repaired.
  for (int i = 1; i < 4; ++i) cluster.network().Restart(members[i].node);
  ASSERT_TRUE(cluster.RunUntil(
      [&]() { return planner.stats().begun >= 1; }, 30 * kSecond))
      << "planner never began once a probe quorum was reachable";

  planner.Stop();
  monitor.Stop();
}

TEST(SelfHealing, DegradedModeParksCommitsBoundedAndDrainsInScnOrder) {
  core::AuroraOptions options;
  options.seed = 9004;
  options.num_pgs = 1;
  options.blocks_per_pg = 1 << 16;
  options.db.driver.max_parked_records = 24;
  core::AuroraCluster cluster(options);
  ASSERT_TRUE(cluster.StartBlocking().ok());
  ASSERT_TRUE(cluster.PutBlocking("base", "v0").ok());

  // Stage values in open transactions while the quorum is healthy...
  constexpr int kParked = 12;
  std::vector<TxnId> txns;
  for (int i = 0; i < kParked; ++i) {
    const TxnId txn = cluster.writer()->Begin();
    auto put_ok = std::make_shared<bool>(false);
    cluster.writer()->Put(txn, "p" + std::to_string(i), "v",
                          [put_ok](Status st) { *put_ok = st.ok(); });
    ASSERT_TRUE(cluster.RunUntil([&]() { return *put_ok; }, 5 * kSecond));
    txns.push_back(txn);
  }

  // ...then take down half the PG: Vw=4 becomes unreachable, Vr=3 remains.
  const auto members = cluster.geometry().pgs().front().AllMembers();
  ASSERT_EQ(members.size(), 6u);
  for (int i = 0; i < 3; ++i) cluster.network().Crash(members[i].node);

  // Commits issued now park: their SCN records cannot reach write quorum,
  // so the commit queue holds them without blocking anything.
  std::vector<int> ack_order;
  std::vector<Status> ack_status(kParked, Status::OK());
  for (int i = 0; i < kParked; ++i) {
    cluster.writer()->Commit(txns[i], [&ack_order, &ack_status, i](Status st) {
      ack_order.push_back(i);
      ack_status[i] = st;
    });
  }
  cluster.RunFor(600 * kMillisecond);
  EXPECT_TRUE(ack_order.empty()) << "commits acked without write quorum";
  EXPECT_EQ(cluster.writer()->CommitQueueDepth(), static_cast<size_t>(kParked));

  // The driver has noticed the stall...
  ASSERT_NE(cluster.writer()->driver(), nullptr);
  auto* driver = cluster.writer()->driver();
  EXPECT_GE(driver->DegradedPgCount(), 1u);
  EXPECT_GE(driver->stats().degraded_entries, 1u);

  // ...and bounds parked memory: once the retained-record budget fills,
  // new writes fast-fail instead of queueing unboundedly. Reads stay
  // available at Vr=3 throughout.
  int rejected = 0;
  for (int i = 0; i < 64 && rejected == 0; ++i) {
    const TxnId txn = cluster.writer()->Begin();
    auto done = std::make_shared<int>(0);
    auto status = std::make_shared<Status>(Status::OK());
    cluster.writer()->Put(txn, "x" + std::to_string(i), "v",
                          [done, status](Status st) {
                            *done = 1;
                            *status = std::move(st);
                          });
    cluster.RunFor(20 * kMillisecond);
    if (*done == 1 && status->code() == StatusCode::kUnavailable) ++rejected;
    cluster.writer()->Rollback(txn, [](Status) {});
    cluster.RunFor(5 * kMillisecond);
  }
  EXPECT_GE(rejected, 1) << "degraded backpressure never engaged";
  EXPECT_FALSE(driver->AcceptingWrites());
  // The gate refuses user Puts; txn-control records (commit markers,
  // rollbacks for cleanup) intentionally bypass it so sessions can
  // terminate, so the bound is budget + O(in-flight transactions).
  EXPECT_LE(driver->ParkedRecords(),
            options.db.driver.max_parked_records + 2 * kParked)
      << "parked memory not bounded";
  auto read = cluster.GetBlocking("base");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, "v0");

  // Heal the quorum: every parked commit drains, acked in SCN order
  // (commit i was assigned its SCN at Commit() call time, so ack order
  // must equal issue order).
  for (int i = 0; i < 3; ++i) cluster.network().Restart(members[i].node);
  ASSERT_TRUE(cluster.RunUntil(
      [&]() {
        return ack_order.size() == static_cast<size_t>(kParked) &&
               cluster.writer()->CommitQueueDepth() == 0;
      },
      20 * kSecond))
      << "parked commits did not drain (acked " << ack_order.size() << "/"
      << kParked << ")";
  for (int i = 0; i < kParked; ++i) {
    EXPECT_TRUE(ack_status[i].ok()) << "commit " << i << ": "
                                    << ack_status[i].ToString();
    EXPECT_EQ(ack_order[i], i) << "SCN order broken at drain position " << i;
  }
  EXPECT_EQ(driver->DegradedPgCount(), 0u);
  EXPECT_TRUE(driver->AcceptingWrites());

  core::InvariantAuditor auditor(&cluster);
  auditor.CheckNow();
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
}

TEST(SelfHealing, MidHydrationSegmentExcludedFromReads) {
  core::AuroraCluster cluster(SmallVolume(9005));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("h" + std::to_string(i), "v").ok());
  }

  // Freeze hydration before it can start: partition every storage<->storage
  // link so the replacement's pull watchdog spins against dead air. The
  // writer reaches every node directly, so writes and the membership
  // install are unaffected; only peer transfer (hydration, gossip) stops.
  const auto storage_ids = cluster.StorageNodeIds();
  for (size_t a = 0; a < storage_ids.size(); ++a) {
    for (size_t b = a + 1; b < storage_ids.size(); ++b) {
      cluster.network().Partition(storage_ids[a], storage_ids[b], true);
    }
  }

  const auto victim = cluster.geometry().pgs().front().AllMembers().front();
  auto begin = cluster.BeginReplaceBlocking(victim.id);
  ASSERT_TRUE(begin.ok()) << begin.status().ToString();
  const SegmentId replacement = begin->new_segment;

  storage::StorageNode* host = cluster.NodeForSegment(replacement);
  ASSERT_NE(host, nullptr);
  storage::SegmentStore* store = host->FindSegment(replacement);
  ASSERT_NE(store, nullptr);
  ASSERT_FALSE(store->hydrated()) << "replacement hydrated before the test "
                                     "could observe the mid-hydration state";

  // The storage node is the authoritative gate: a mid-hydration segment
  // refuses page reads outright...
  storage::ReadPageRequest request;
  request.segment = replacement;
  request.epochs = EpochVector{cluster.metadata().volume_epoch(),
                               cluster.geometry().pgs().front().epoch()};
  request.block = 0;
  request.read_lsn = cluster.writer()->vdl();
  auto rejected = std::make_shared<Status>(Status::OK());
  host->HandleReadPage(request,
                       [rejected](const storage::ReadPageResponse& response) {
                         *rejected = response.status;
                       });
  cluster.RunFor(50 * kMillisecond);
  EXPECT_EQ(rejected->code(), StatusCode::kUnavailable)
      << rejected->ToString();

  // ...and the writer's driver never routes to it nor counts it toward
  // read-quorum completeness (hedged reads go elsewhere).
  EXPECT_FALSE(cluster.writer()->driver()->SegmentKnownHydrated(replacement));
  ASSERT_TRUE(cluster.PutBlocking("during", "v").ok());
  EXPECT_FALSE(cluster.writer()->driver()->SegmentKnownHydrated(replacement))
      << "a mid-hydration ack must not mark the channel read-eligible";
  auto value = cluster.GetBlocking("h0");
  ASSERT_TRUE(value.ok()) << value.status().ToString();

  core::InvariantAuditor auditor(&cluster);
  auditor.CheckNow();
  EXPECT_TRUE(auditor.ok()) << auditor.Report();

  // Once the partitions heal, hydration completes, the change commits,
  // and the channel becomes read-eligible via the next hydrated ack.
  for (size_t a = 0; a < storage_ids.size(); ++a) {
    for (size_t b = a + 1; b < storage_ids.size(); ++b) {
      cluster.network().Partition(storage_ids[a], storage_ids[b], false);
    }
  }
  ASSERT_TRUE(cluster.RunUntil([&]() { return store->hydrated(); },
                               30 * kSecond));
  ASSERT_TRUE(cluster.CommitReplaceBlocking(victim.id).ok());
  ASSERT_TRUE(cluster.PutBlocking("after", "v").ok());
  EXPECT_TRUE(cluster.writer()->driver()->SegmentKnownHydrated(replacement));
  auditor.CheckNow();
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
}

}  // namespace
}  // namespace aurora
