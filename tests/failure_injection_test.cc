// Failure-injection stress tests: sustained workloads under random storage
// node churn, AZ outages, slow nodes, scrub-corruption storms, and
// combined chaos — verifying the durability and availability claims hold
// under fire.

#include <gtest/gtest.h>

#include <map>

#include "src/core/cluster.h"

namespace aurora {
namespace {

core::AuroraOptions Options(uint64_t seed) {
  core::AuroraOptions options;
  options.seed = seed;
  options.num_pgs = 1;
  options.blocks_per_pg = 1 << 16;
  options.storage_nodes_per_az = 3;
  return options;
}

TEST(FailureInjection, WorkloadSurvivesStorageNodeChurn) {
  core::AuroraCluster cluster(Options(42));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  // Background Poisson failures: one storage node down at a time, often.
  sim::FailureModel model;
  model.node_mttf = 5 * kSecond;
  model.node_mttr = 500 * kMillisecond;
  sim::FailureInjector churn(&cluster.sim(), &cluster.network(), model);
  churn.Start(cluster.StorageNodeIds());

  std::map<std::string, std::string> acked;
  for (int i = 0; i < 120; ++i) {
    const std::string key = "k" + std::to_string(i % 30);
    const std::string value = "v" + std::to_string(i);
    Status st = cluster.PutBlocking(key, value);
    // With Vw=4/6 and at most a couple nodes down, writes should succeed.
    ASSERT_TRUE(st.ok()) << "iteration " << i << ": " << st.ToString();
    acked[key] = value;
    cluster.RunFor(50 * kMillisecond);
  }
  churn.Stop();
  EXPECT_GT(churn.node_failures(), 0u) << "churn actually happened";
  for (NodeId id : cluster.StorageNodeIds()) cluster.network().Restart(id);
  cluster.RunFor(500 * kMillisecond);
  for (const auto& [key, value] : acked) {
    auto v = cluster.GetBlocking(key);
    ASSERT_TRUE(v.ok()) << key << ": " << v.status().ToString();
    EXPECT_EQ(*v, value);
  }
}

TEST(FailureInjection, AzOutageDuringWorkload) {
  core::AuroraCluster cluster(Options(43));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  std::map<std::string, std::string> acked;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("pre" + std::to_string(i), "v").ok());
    acked["pre" + std::to_string(i)] = "v";
  }
  cluster.network().FailAz(1);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("mid" + std::to_string(i), "v").ok())
        << "writes must continue through an AZ outage (Figure 1)";
    acked["mid" + std::to_string(i)] = "v";
  }
  cluster.network().RestoreAz(1);
  cluster.RunFor(1 * kSecond);  // gossip heals the returned AZ
  for (const auto& [key, value] : acked) {
    ASSERT_TRUE(cluster.GetBlocking(key).ok()) << key;
  }
  // The healed AZ's segments caught up via gossip: their SCLs converge.
  Lsn max_scl = 0, min_scl = UINT64_MAX;
  for (const auto& node : cluster.storage_nodes()) {
    for (const auto& [id, segment] : node->segments()) {
      max_scl = std::max(max_scl, segment->scl());
      min_scl = std::min(min_scl, segment->scl());
    }
  }
  EXPECT_EQ(min_scl, max_scl) << "gossip converges all six copies";
}

TEST(FailureInjection, SlowNodeDoesNotStallCommits) {
  core::AuroraCluster cluster(Options(44));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  // Warm up and measure baseline commit latency.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("w" + std::to_string(i), "v").ok());
  }
  cluster.writer()->commit_latency().Reset();
  // Make one storage node pathologically slow (x50).
  cluster.network().SetNodeSlowdown(cluster.StorageNodeIds()[0], 50.0);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("s" + std::to_string(i), "v").ok());
  }
  // 4/6 quorum never waits for the slow copy: p50 stays in the normal
  // cross-AZ commit range rather than 50x of it.
  EXPECT_LT(cluster.writer()->commit_latency().P50(), 20 * kMillisecond);
}

TEST(FailureInjection, ScrubCorruptionStormHealsViaGossip) {
  core::AuroraCluster cluster(Options(45));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("c" + std::to_string(i), "v").ok());
  }
  // Corrupt a handful of records on one segment, run scrub, let gossip
  // re-fill, and verify convergence.
  auto* node = cluster.storage_nodes()[0].get();
  auto& [seg_id, segment] = *node->segments().begin();
  const Lsn scl_before = segment->scl();
  int corrupted = 0;
  for (Lsn lsn = scl_before / 2; lsn < scl_before / 2 + 20 && lsn > 0;
       ++lsn) {
    if (segment->CorruptRecordForTest(lsn)) corrupted++;
  }
  ASSERT_GT(corrupted, 0);
  EXPECT_EQ(segment->Scrub(), static_cast<size_t>(corrupted));
  EXPECT_LT(segment->scl(), scl_before);
  cluster.RunFor(2 * kSecond);  // gossip interval is 100ms
  EXPECT_GE(segment->scl(), scl_before) << "gossip healed the scrubbed gap";
  EXPECT_GT(segment->stats().records_gossip_filled, 0u);
}

TEST(FailureInjection, WriterCrashDuringAzOutage) {
  core::AuroraCluster cluster(Options(46));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  std::map<std::string, std::string> acked;
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("k" + std::to_string(i), "v").ok());
    acked["k" + std::to_string(i)] = "v";
  }
  // AZ down AND the writer crashes: recovery must still find read quorums
  // (4 of 6 segments reachable > Vr=3).
  cluster.network().FailAz(2);
  cluster.CrashWriter();
  cluster.RunFor(100 * kMillisecond);
  ASSERT_TRUE(cluster.RecoverWriterBlocking().ok());
  for (const auto& [key, value] : acked) {
    auto v = cluster.GetBlocking(key);
    ASSERT_TRUE(v.ok()) << key;
  }
  ASSERT_TRUE(cluster.PutBlocking("during-outage", "ok").ok());
  cluster.network().RestoreAz(2);
}

TEST(FailureInjection, RepeatedFailoverStorm) {
  core::AuroraCluster cluster(Options(47));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  std::map<std::string, std::string> acked;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      const std::string key =
          "r" + std::to_string(round) + "-" + std::to_string(i);
      ASSERT_TRUE(cluster.PutBlocking(key, "v").ok());
      acked[key] = "v";
    }
    auto promoted = cluster.FailoverBlocking();
    ASSERT_TRUE(promoted.ok()) << "round " << round;
  }
  for (const auto& [key, value] : acked) {
    ASSERT_TRUE(cluster.GetBlocking(key).ok()) << key;
  }
}

TEST(FailureInjection, CombinedChaos) {
  core::AuroraCluster cluster(Options(48));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* rep = cluster.AddReplica();
  (void)rep;
  sim::FailureModel model;
  model.node_mttf = 8 * kSecond;
  model.node_mttr = 1 * kSecond;
  sim::FailureInjector churn(&cluster.sim(), &cluster.network(), model);
  churn.Start(cluster.StorageNodeIds());
  cluster.failures().SlowNodeAt(cluster.sim().Now() + 2 * kSecond,
                                cluster.StorageNodeIds()[2], 20.0,
                                3 * kSecond);

  std::map<std::string, std::string> acked;
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    const std::string key = "x" + std::to_string(rng.NextBounded(25));
    const std::string value = "v" + std::to_string(i);
    if (cluster.PutBlocking(key, value).ok()) acked[key] = value;
    cluster.RunFor(100 * kMillisecond);
    if (i == 30) {
      cluster.CrashWriter();
      cluster.RunFor(50 * kMillisecond);
      ASSERT_TRUE(cluster.RecoverWriterBlocking().ok());
    }
  }
  churn.Stop();
  for (NodeId id : cluster.StorageNodeIds()) cluster.network().Restart(id);
  cluster.RunFor(1 * kSecond);
  for (const auto& [key, value] : acked) {
    auto v = cluster.GetBlocking(key);
    ASSERT_TRUE(v.ok()) << key << ": " << v.status().ToString();
    EXPECT_EQ(*v, value);
  }
}

}  // namespace
}  // namespace aurora
