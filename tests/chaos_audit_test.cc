// Chaos testing under the invariant auditor.
//
// Each seed generates a deterministic failure schedule (storage-node
// crashes, writer-storage partitions, scrub corruption, AZ failure, writer
// crash + recovery, and membership replacements, interleaved with
// transactional writes) and executes it through the chaos harness
// (src/core/chaos_harness.h) with the auditor attached at EVERY simulator
// event and the run captured as a trace. At the end the schedule heals,
// the cluster drains, and the harness checks (a) zero invariant violations
// across the whole run and (b) the durability contract: no key ever reads
// back OLDER state than its last acknowledged commit (§2.3/§2.4 — recovery
// never loses an acked commit).
//
// When a run DOES trip an invariant, the test does not just fail: it
// writes the captured trace next to the binary, delta-debugs the schedule
// down to a minimal reproducer (src/sim/shrink.h), and prints the
// minimized human-readable timeline — the artifact to debug, instead of a
// 30-op haystack. `tools/aurora_shrink <trace>` re-runs the same
// minimization offline.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/chaos_harness.h"
#include "src/core/cluster.h"
#include "src/core/invariant_auditor.h"
#include "src/sim/trace.h"

namespace aurora {
namespace {

core::AuroraOptions ChaosOptions(uint64_t seed) {
  core::AuroraOptions options;
  options.seed = seed;
  options.num_pgs = 2;
  options.blocks_per_pg = 1 << 16;
  // Three nodes per AZ so segment replacement always has a free host.
  options.storage_nodes_per_az = 3;
  return options;
}

TEST(ChaosAudit, RandomizedFailureSchedules) {
  constexpr uint64_t kSeeds = 50;
  constexpr int kOpsPerSeed = 30;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed) +
                 " (re-run with this seed to reproduce)");
    const core::ChaosSchedule schedule =
        core::GenerateChaosSchedule(seed, kOpsPerSeed);

    sim::Trace trace;
    core::ChaosRunOptions options;
    options.record = &trace;
    const core::ChaosRunResult result =
        core::RunChaosSchedule(schedule, options);

    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    for (const std::string& error : result.errors) {
      ADD_FAILURE() << "durability contract: " << error;
    }
    if (result.violations.empty()) continue;

    // Violation: auto-capture the trace, shrink the schedule, and print
    // the minimized timeline as the failure artifact.
    const std::string trace_path =
        "chaos_seed_" + std::to_string(seed) + ".trace.jsonl";
    const Status write_status = trace.WriteFile(trace_path);
    const std::string invariant = result.violations.front().invariant;
    std::string report = "invariant \"" + invariant + "\" violated: " +
                         result.violations.front().detail;
    if (write_status.ok()) {
      report += "\ntrace captured to " + trace_path +
                " (replay/minimize with tools/aurora_shrink)";
    }
    auto shrunk = core::ShrinkChaosViolation(schedule, invariant);
    if (shrunk.ok()) {
      report += "\nminimized " + std::to_string(shrunk->original_ops) +
                " ops -> " + std::to_string(shrunk->minimized.ops.size()) +
                " in " + std::to_string(shrunk->replays) + " replays:\n" +
                shrunk->timeline;
    } else {
      report += "\n(shrink failed: " + shrunk.status().ToString() + ")";
    }
    ADD_FAILURE() << report;
    return;
  }
}

// The captured trace of a chaos run replays bit-identically: same event
// schedule fingerprint, same consistency points. This is the same check
// the determinism test makes for the plain workload, extended to the full
// fault vocabulary via the trace subsystem.
TEST(ChaosAudit, CapturedRunReplaysBitIdentically) {
  const core::ChaosSchedule schedule = core::GenerateChaosSchedule(17, 30);
  sim::Trace trace;
  core::ChaosRunOptions record;
  record.record = &trace;
  const core::ChaosRunResult original = core::RunChaosSchedule(schedule, record);
  ASSERT_TRUE(original.status.ok()) << original.status.ToString();
  ASSERT_TRUE(trace.summary.present);

  core::ChaosRunOptions replay;
  replay.replay = &trace;
  const core::ChaosRunResult replayed = core::RunChaosSchedule(schedule, replay);
  EXPECT_FALSE(replayed.replay_diverged) << replayed.replay_divergence;
  EXPECT_EQ(replayed.fingerprint, trace.summary.fingerprint);
  EXPECT_EQ(replayed.vcl, trace.summary.vcl);
  EXPECT_EQ(replayed.vdl, trace.summary.vdl);
  EXPECT_EQ(replayed.executed_events, trace.summary.executed_events);
  EXPECT_EQ(replayed.end_time, trace.summary.end_time);
}

// A deliberately broken invariant must be caught, with a seed-bearing
// snapshot for reproduction. This proves the auditor has teeth — a chaos
// suite whose oracle cannot fail detects nothing.
TEST(ChaosAudit, BrokenInvariantIsCaughtWithSnapshot) {
  core::AuroraCluster cluster(ChaosOptions(4242));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        cluster.PutBlocking("k" + std::to_string(i), "v").ok());
  }
  core::InvariantAuditor auditor(&cluster);
  auditor.CheckNow();
  ASSERT_TRUE(auditor.ok()) << auditor.Report();

  // Force VDL past VCL through the test-only hook.
  cluster.writer()->driver()->tracker().CorruptVdlForTest(
      cluster.writer()->vcl() + 1000);
  auditor.CheckNow();
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations().front().invariant, "vdl-le-vcl");
  const std::string& snapshot = auditor.violations().front().snapshot;
  EXPECT_NE(snapshot.find("\"seed\": 4242"), std::string::npos) << snapshot;
  EXPECT_NE(snapshot.find("\"writer\""), std::string::npos);
  EXPECT_NE(auditor.Report().find("vdl-le-vcl"), std::string::npos);
}

// The attached auditor observes the simulation without perturbing it:
// the same seed with and without an auditor executes identically.
TEST(ChaosAudit, AuditorDoesNotPerturbExecution) {
  auto fingerprint = [](bool with_auditor) {
    core::AuroraCluster cluster(ChaosOptions(77));
    EXPECT_TRUE(cluster.StartBlocking().ok());
    std::unique_ptr<core::InvariantAuditor> auditor;
    if (with_auditor) {
      auditor = std::make_unique<core::InvariantAuditor>(&cluster);
      auditor->Attach(1);
    }
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(
          cluster.PutBlocking("k" + std::to_string(i % 7), "v").ok());
    }
    cluster.RunFor(200 * kMillisecond);
    return std::make_pair(cluster.sim().Now(),
                          cluster.sim().ScheduleFingerprint());
  };
  EXPECT_EQ(fingerprint(false), fingerprint(true));
}

// Metrics smoke: with recording enabled, the chaos layers actually feed
// the registry (audit checks, fan-out, gossip, commit waits).
TEST(ChaosAudit, MetricsRegistryPopulatedWhenEnabled) {
  auto& registry = metrics::Registry::Global();
  registry.Reset();
  metrics::Registry::SetEnabled(true);
  {
    core::AuroraCluster cluster(ChaosOptions(99));
    ASSERT_TRUE(cluster.StartBlocking().ok());
    core::InvariantAuditor auditor(&cluster);
    auditor.Attach(64);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(cluster.PutBlocking("m" + std::to_string(i), "v").ok());
    }
    cluster.RunFor(500 * kMillisecond);
    auditor.CheckNow();
    EXPECT_TRUE(auditor.ok()) << auditor.Report();
    auditor.Detach();
  }
  metrics::Registry::SetEnabled(false);
  EXPECT_GT(registry.CounterValue("audit.checks"), 0u);
  EXPECT_EQ(registry.CounterValue("audit.violations"), 0u);
  EXPECT_GT(registry.CounterValue("driver.fanout_records"), 0u);
  EXPECT_GT(registry.CounterValue("engine.commits_acked"), 0u);
  EXPECT_GT(registry.CounterValue("net.messages_sent"), 0u);
  const Histogram* commit_wait =
      registry.FindHistogram("engine.commit_wait_us");
  ASSERT_NE(commit_wait, nullptr);
  EXPECT_GT(commit_wait->count(), 0u);
  // The JSON dump carries every registered series.
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"driver.fanout_records\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.commit_wait_us\""), std::string::npos);
  registry.Reset();
}

}  // namespace
}  // namespace aurora
