// Chaos testing under the invariant auditor.
//
// Each seed builds a fresh cluster, attaches the auditor at EVERY simulator
// event, and runs a randomized failure schedule — storage-node crashes,
// writer-storage partitions, scrub corruption, AZ failure, writer crash +
// recovery, and membership replacements — interleaved with transactional
// writes. At the end the schedule heals, the cluster drains, and the test
// asserts (a) zero invariant violations across the whole run and (b) the
// durability contract: no key ever reads back OLDER state than its last
// acknowledged commit (§2.3/§2.4 — recovery never loses an acked commit).
//
// On failure the seed is printed via SCOPED_TRACE and the auditor report
// embeds a cluster snapshot; re-running the same seed reproduces the exact
// execution (the simulation is deterministic).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/cluster.h"
#include "src/core/invariant_auditor.h"

namespace aurora {
namespace {

core::AuroraOptions ChaosOptions(uint64_t seed) {
  core::AuroraOptions options;
  options.seed = seed;
  options.num_pgs = 2;
  options.blocks_per_pg = 1 << 16;
  // Three nodes per AZ so segment replacement always has a free host.
  options.storage_nodes_per_az = 3;
  return options;
}

// Extracts the global write sequence from a value "v<seq>".
uint64_t SeqOf(const std::string& value) {
  return std::stoull(value.substr(1));
}

class ChaosRun {
 public:
  explicit ChaosRun(uint64_t seed)
      : seed_(seed), rng_(seed * 7919 + 13), cluster_(ChaosOptions(seed)) {}

  void Run(int ops) {
    ASSERT_TRUE(cluster_.StartBlocking().ok());
    auditor_ = std::make_unique<core::InvariantAuditor>(&cluster_);
    auditor_->Attach(/*every_n_events=*/1);

    for (int i = 0; i < ops; ++i) {
      const uint64_t dice = rng_.NextBounded(100);
      if (dice < 50) {
        DoPut();
      } else if (dice < 62) {
        DoCrashOrRestartStorageNode();
      } else if (dice < 72) {
        DoTogglePartition();
      } else if (dice < 80) {
        DoCorruptRecord();
      } else if (dice < 88) {
        DoWriterCrashRecover();
      } else if (dice < 94) {
        DoReplaceSegment();
      } else {
        DoAzBlip();
      }
      cluster_.RunFor(rng_.NextBounded(20) * kMillisecond);
    }

    HealEverything();
    if (writer() != nullptr && !writer()->IsOpen()) {
      ASSERT_TRUE(cluster_.RecoverWriterBlocking().ok());
    }
    cluster_.RunFor(2 * kSecond);  // drain gossip, scrub, retransmissions

    // Durability contract: every key reads back at or after its last
    // acknowledged write, and with a value actually written to it.
    for (const auto& [key, acked_seq] : last_acked_) {
      auto value = cluster_.GetBlocking(key);
      ASSERT_TRUE(value.ok()) << "acked key " << key << " unreadable: "
                              << value.status().ToString();
      const uint64_t seq = SeqOf(*value);
      EXPECT_TRUE(written_[key].contains(seq))
          << key << " holds " << *value << ", never written to it";
      EXPECT_GE(seq, acked_seq)
          << key << " regressed below its last acked write";
    }

    auditor_->CheckNow();
    EXPECT_TRUE(auditor_->ok()) << auditor_->Report();
    auditor_->Detach();
  }

 private:
  engine::DbInstance* writer() { return cluster_.writer(); }

  void DoPut() {
    if (writer() == nullptr || !writer()->IsOpen()) return;
    const std::string key = "k" + std::to_string(rng_.NextBounded(48));
    const uint64_t seq = ++next_seq_;
    const std::string value = "v" + std::to_string(seq);
    written_[key].insert(seq);

    const TxnId txn = writer()->Begin();
    auto put_state = std::make_shared<int>(0);  // 0 pending, 1 ok, -1 fail
    writer()->Put(txn, key, value, [put_state](Status st) {
      *put_state = st.ok() ? 1 : -1;
    });
    cluster_.RunUntil([&]() { return *put_state != 0; }, 500 * kMillisecond);
    if (*put_state != 1) {
      // Timed out (quorum down) or aborted: fire-and-forget rollback so
      // the locks drain; the txn was never acknowledged.
      if (writer() != nullptr && writer()->IsOpen()) {
        writer()->Rollback(txn, [](Status) {});
      }
      return;
    }
    auto commit_state = std::make_shared<int>(0);
    // The commit callback may fire long after this op returns (e.g. once
    // a partition heals); record the ack whenever it lands.
    writer()->Commit(txn, [this, key, seq, commit_state](Status st) {
      *commit_state = st.ok() ? 1 : -1;
      if (st.ok() && seq > last_acked_[key]) last_acked_[key] = seq;
    });
    cluster_.RunUntil([&]() { return *commit_state != 0; },
                      500 * kMillisecond);
  }

  void DoCrashOrRestartStorageNode() {
    const auto ids = cluster_.StorageNodeIds();
    if (!crashed_.empty() && rng_.Bernoulli(0.5)) {
      const NodeId id = *crashed_.begin();
      cluster_.network().Restart(id);
      crashed_.erase(id);
      return;
    }
    if (crashed_.size() >= 2) return;  // keep quorums winnable
    const NodeId id = ids[rng_.NextBounded(ids.size())];
    if (crashed_.contains(id)) return;
    cluster_.network().Crash(id);
    crashed_.insert(id);
  }

  void DoTogglePartition() {
    if (writer() == nullptr) return;
    const auto ids = cluster_.StorageNodeIds();
    const NodeId node = ids[rng_.NextBounded(ids.size())];
    const auto pair = std::make_pair(writer()->id(), node);
    const bool blocked = !partitions_.contains(pair);
    cluster_.network().Partition(pair.first, pair.second, blocked);
    if (blocked) {
      partitions_.insert(pair);
    } else {
      partitions_.erase(pair);
    }
  }

  void DoCorruptRecord() {
    // Corrupt one stored record on one segment; the periodic scrub will
    // drop it and gossip will re-fill it from peers (§2.1 activity 8).
    std::vector<storage::SegmentStore*> stores;
    cluster_.ForEachSegment(
        [&stores](storage::StorageNode*, storage::SegmentStore* segment) {
          stores.push_back(segment);
        });
    if (stores.empty()) return;
    storage::SegmentStore* victim = stores[rng_.NextBounded(stores.size())];
    const auto records = victim->hot_log().ChainAfter(kInvalidLsn, 16);
    if (records.empty()) return;
    victim->CorruptRecordForTest(
        records[rng_.NextBounded(records.size())].lsn);
  }

  void DoWriterCrashRecover() {
    if (writer() == nullptr || !writer()->IsOpen()) return;
    cluster_.CrashWriter();
    cluster_.RunFor(10 * kMillisecond);
    // Recovery needs read quorums everywhere: heal the fleet first.
    HealEverything();
    ASSERT_TRUE(cluster_.RecoverWriterBlocking().ok());
  }

  void DoReplaceSegment() {
    // Membership changes only from a calm fleet; racing them against
    // partitions is exercised by membership_test with tighter control.
    if (!crashed_.empty() || !partitions_.empty()) return;
    if (writer() == nullptr || !writer()->IsOpen()) return;
    const auto& pgs = cluster_.geometry().pgs();
    const auto& pg = pgs[rng_.NextBounded(pgs.size())];
    if (pg.HasPendingChange()) return;
    const auto members = pg.AllMembers();
    const SegmentId victim = members[rng_.NextBounded(members.size())].id;
    // May legitimately fail (e.g. hydration still catching up); invariants
    // must hold either way.
    (void)cluster_.ReplaceSegmentBlocking(victim);
  }

  void DoAzBlip() {
    const auto azs = cluster_.AzIds();
    const AzId az = azs[rng_.NextBounded(azs.size())];
    cluster_.network().FailAz(az);
    cluster_.RunFor((1 + rng_.NextBounded(50)) * kMillisecond);
    cluster_.network().RestoreAz(az);
    // RestoreAz restarts every node in the AZ, including ones we crashed
    // individually.
    for (auto it = crashed_.begin(); it != crashed_.end();) {
      if (cluster_.network().AzOf(*it) == az) {
        it = crashed_.erase(it);
      } else {
        ++it;
      }
    }
    // The writer lives in an AZ too; if the blip took it down, bring it
    // back through crash recovery (its ephemeral state is gone).
    if (writer() != nullptr && !writer()->IsOpen()) {
      HealEverything();
      ASSERT_TRUE(cluster_.RecoverWriterBlocking().ok());
    }
  }

  void HealEverything() {
    for (const auto& [a, b] : partitions_) {
      cluster_.network().Partition(a, b, false);
    }
    partitions_.clear();
    for (NodeId id : crashed_) cluster_.network().Restart(id);
    crashed_.clear();
  }

  uint64_t seed_;
  Rng rng_;
  core::AuroraCluster cluster_;
  std::unique_ptr<core::InvariantAuditor> auditor_;

  uint64_t next_seq_ = 0;
  std::map<std::string, std::set<uint64_t>> written_;
  std::map<std::string, uint64_t> last_acked_;
  std::set<NodeId> crashed_;
  std::set<std::pair<NodeId, NodeId>> partitions_;
};

TEST(ChaosAudit, RandomizedFailureSchedules) {
  constexpr uint64_t kSeeds = 50;
  constexpr int kOpsPerSeed = 30;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed) +
                 " (re-run with this seed to reproduce)");
    ChaosRun run(seed);
    run.Run(kOpsPerSeed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// A deliberately broken invariant must be caught, with a seed-bearing
// snapshot for reproduction. This proves the auditor has teeth — a chaos
// suite whose oracle cannot fail detects nothing.
TEST(ChaosAudit, BrokenInvariantIsCaughtWithSnapshot) {
  core::AuroraCluster cluster(ChaosOptions(4242));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        cluster.PutBlocking("k" + std::to_string(i), "v").ok());
  }
  core::InvariantAuditor auditor(&cluster);
  auditor.CheckNow();
  ASSERT_TRUE(auditor.ok()) << auditor.Report();

  // Force VDL past VCL through the test-only hook.
  cluster.writer()->driver()->tracker().CorruptVdlForTest(
      cluster.writer()->vcl() + 1000);
  auditor.CheckNow();
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations().front().invariant, "vdl-le-vcl");
  const std::string& snapshot = auditor.violations().front().snapshot;
  EXPECT_NE(snapshot.find("\"seed\": 4242"), std::string::npos) << snapshot;
  EXPECT_NE(snapshot.find("\"writer\""), std::string::npos);
  EXPECT_NE(auditor.Report().find("vdl-le-vcl"), std::string::npos);
}

// The attached auditor observes the simulation without perturbing it:
// the same seed with and without an auditor executes identically.
TEST(ChaosAudit, AuditorDoesNotPerturbExecution) {
  auto fingerprint = [](bool with_auditor) {
    core::AuroraCluster cluster(ChaosOptions(77));
    EXPECT_TRUE(cluster.StartBlocking().ok());
    std::unique_ptr<core::InvariantAuditor> auditor;
    if (with_auditor) {
      auditor = std::make_unique<core::InvariantAuditor>(&cluster);
      auditor->Attach(1);
    }
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(
          cluster.PutBlocking("k" + std::to_string(i % 7), "v").ok());
    }
    cluster.RunFor(200 * kMillisecond);
    return std::make_pair(cluster.sim().Now(),
                          cluster.sim().ExecutedEvents());
  };
  EXPECT_EQ(fingerprint(false), fingerprint(true));
}

// Metrics smoke: with recording enabled, the chaos layers actually feed
// the registry (audit checks, fan-out, gossip, commit waits).
TEST(ChaosAudit, MetricsRegistryPopulatedWhenEnabled) {
  auto& registry = metrics::Registry::Global();
  registry.Reset();
  metrics::Registry::SetEnabled(true);
  {
    core::AuroraCluster cluster(ChaosOptions(99));
    ASSERT_TRUE(cluster.StartBlocking().ok());
    core::InvariantAuditor auditor(&cluster);
    auditor.Attach(64);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(cluster.PutBlocking("m" + std::to_string(i), "v").ok());
    }
    cluster.RunFor(500 * kMillisecond);
    auditor.CheckNow();
    EXPECT_TRUE(auditor.ok()) << auditor.Report();
    auditor.Detach();
  }
  metrics::Registry::SetEnabled(false);
  EXPECT_GT(registry.CounterValue("audit.checks"), 0u);
  EXPECT_EQ(registry.CounterValue("audit.violations"), 0u);
  EXPECT_GT(registry.CounterValue("driver.fanout_records"), 0u);
  EXPECT_GT(registry.CounterValue("engine.commits_acked"), 0u);
  EXPECT_GT(registry.CounterValue("net.messages_sent"), 0u);
  const Histogram* commit_wait =
      registry.FindHistogram("engine.commit_wait_us");
  ASSERT_NE(commit_wait, nullptr);
  EXPECT_GT(commit_wait->count(), 0u);
  // The JSON dump carries every registered series.
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"driver.fanout_records\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.commit_wait_us\""), std::string::npos);
  registry.Reset();
}

}  // namespace
}  // namespace aurora
