// Parallel-vs-serial determinism sweeps (DESIGN.md §9).
//
// Three layers of evidence that the windowed parallel engine executes the
// exact canonical schedule:
//   1. a 25-seed synthetic actor-mesh sweep comparing serial execution
//      against 2-, 4-, and 8-worker windowed runs on the same shard count;
//   2. a full-cluster sweep (writer + storage fleet + failure-injector
//      chaos, event_shards = 3) comparing serial RunUntil against
//      RunSharded at 1/2/4/8 workers on fingerprint, VCL, VDL, commit and
//      event counts;
//   3. bit-identity of the sharded oracle (event_shards = 1) with the
//      classic engine on the chaos harness, including replaying the
//      committed pre-sharding golden trace fixture on the oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/chaos_harness.h"
#include "src/core/cluster.h"
#include "src/core/session.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace aurora {
namespace {

// ---------------------------------------------------------------------------
// Layer 1: synthetic mesh, 25 seeds.

uint64_t Mix(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t h = a * 0x9e3779b97f4a7c15ULL ^ (b + 0xff51afd7ed558ccdULL) * 33 ^
               (c + 0xc4ceb9fe1a85ec53ULL) * 101;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  return h;
}

struct MeshOutcome {
  uint64_t fingerprint = 0;
  uint64_t executed = 0;
  SimTime end = 0;
  uint64_t state_hash = 0;
};

void MeshTick(sim::Simulator* simulator, std::vector<uint64_t>* cells,
              uint64_t seed, uint32_t shard, uint32_t nshards, uint64_t tick,
              SimTime deadline) {
  (*cells)[shard] = (*cells)[shard] * 6364136223846793005ULL + tick + 1;
  if (simulator->Now() >= deadline - 150) return;
  if (tick % 4 == 1) {
    const uint32_t dst = (shard + 1 + tick / 4) % nshards;
    if (dst != shard) {
      simulator->ScheduleOn(
          dst, simulator->Lookahead() + Mix(seed, shard, tick) % 30,
          [cells, dst] { (*cells)[dst] ^= 0x5bd1e995; }, "sweep.remote");
    }
  }
  simulator->Schedule(
      1 + Mix(seed, shard, tick * 2) % 29,
      [simulator, cells, seed, shard, nshards, tick, deadline] {
        MeshTick(simulator, cells, seed, shard, nshards, tick + 1, deadline);
      },
      "sweep.tick");
}

MeshOutcome RunMesh(uint64_t seed, uint32_t nshards, int threads) {
  constexpr SimTime kDeadline = 8000;
  sim::Simulator simulator(seed);
  simulator.ConfigureShards(nshards);
  simulator.SetLookahead(20);
  std::vector<uint64_t> cells(nshards, seed);
  for (uint32_t s = 0; s < nshards; ++s) {
    sim::Simulator::ShardScope scope(&simulator, s);
    simulator.Schedule(
        1 + s % 3,
        [&simulator, &cells, seed, s, nshards] {
          MeshTick(&simulator, &cells, seed, s, nshards, 0, kDeadline);
        },
        "sweep.start");
  }
  // A global-event chain interleaved with the mesh: barrier traffic is
  // part of the schedule under test.
  simulator.ScheduleGlobal(
      50,
      [&simulator, &cells] {
        for (auto& c : cells) c += 1;
        simulator.ScheduleGlobal(
            173, [&cells] { cells[0] ^= cells[cells.size() - 1]; },
            "sweep.global2");
      },
      "sweep.global1");

  if (threads == 0) {
    simulator.RunUntil(kDeadline);
  } else {
    simulator.RunSharded(kDeadline, threads);
  }

  MeshOutcome out;
  out.fingerprint = simulator.ScheduleFingerprint();
  out.executed = simulator.ExecutedEvents();
  out.end = simulator.Now();
  for (uint64_t c : cells) out.state_hash = out.state_hash * 31 + c;
  return out;
}

TEST(ParallelDeterminism, MeshSweep25Seeds) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const uint32_t nshards = 2 + seed % 3;  // 2, 3, 4
    const MeshOutcome serial = RunMesh(seed, nshards, 0);
    ASSERT_GT(serial.executed, 200u) << "seed " << seed;
    for (int threads : {2, 4, 8}) {
      const MeshOutcome parallel = RunMesh(seed, nshards, threads);
      EXPECT_EQ(parallel.fingerprint, serial.fingerprint)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.executed, serial.executed)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.end, serial.end)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.state_hash, serial.state_hash)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 2: full cluster under chaos, serial vs parallel.

struct ClusterOutcome {
  uint64_t fingerprint = 0;
  Lsn vcl = 0;
  Lsn vdl = 0;
  uint64_t commits = 0;
  uint64_t executed = 0;
  SimTime end = 0;
  uint64_t node_failures = 0;

  bool operator==(const ClusterOutcome&) const = default;
};

// Builds a sharded cluster (per-AZ 3-shard by default; per-node when
// `granularity` says so, optionally folded through `max_event_shards`),
// runs a blocking warm-up, arms scripted + flapping failure-injector
// chaos, then drives one long run phase either serially (threads == 0)
// or through the windowed engine.
ClusterOutcome RunClusterScenario(
    uint64_t seed, int threads,
    core::ShardGranularity granularity = core::ShardGranularity::kPerAz,
    uint32_t max_event_shards = 64) {
  core::AuroraOptions options;
  options.seed = seed;
  options.blocks_per_pg = 1 << 16;
  options.storage_nodes_per_az = 2;
  options.event_shards = 3;
  options.shard_granularity = granularity;
  options.max_event_shards = max_event_shards;
  // Widen the latency floor so the lookahead window holds useful work
  // (default 1us windows would still be correct, just barrier-bound).
  options.network.min_latency_us = 40;
  // Distinct class floors in per-node mode: the pairwise matrix then has
  // genuinely different entries for intra-AZ and cross-AZ shard pairs,
  // so the sweep exercises the asymmetric-bound window math, not a
  // uniform matrix that degenerates to the scalar.
  if (granularity == core::ShardGranularity::kPerNode) {
    options.network.intra_az_floor_us = 60;
    options.network.cross_az_floor_us = 240;
  }
  core::AuroraCluster cluster(options);
  EXPECT_TRUE(cluster.StartBlocking().ok());
  if (granularity == core::ShardGranularity::kPerNode) {
    // 6-node fleet: one shard per node plus control shard 0, folded when
    // the cap bites.
    const uint32_t fleet = 6;
    EXPECT_EQ(cluster.sim().ShardCount(),
              1 + std::min(fleet, max_event_shards - 1));
    EXPECT_TRUE(cluster.PerNodeSharding());
  } else {
    EXPECT_EQ(cluster.sim().Lookahead(), 40);
  }

  for (int i = 0; i < 10; ++i) {
    (void)cluster.PutBlocking("warm" + std::to_string(i % 7),
                              "v" + std::to_string(i));
  }

  // Chaos armed before the run phase: scripted crash/restart, an AZ blip,
  // and a flapping node (stochastic dwell draws happen inside global
  // events, so they are barrier-serialized and deterministic).
  const std::vector<NodeId> nodes = cluster.StorageNodeIds();
  sim::FailureInjector& injector = cluster.failures();
  const SimTime t0 = cluster.sim().Now();
  const NodeId victim = nodes[seed % nodes.size()];
  const NodeId flapper = nodes[(seed + 2) % nodes.size()];
  injector.CrashNodeAt(t0 + 5 * kMillisecond, victim);
  injector.RestartNodeAt(t0 + 45 * kMillisecond, victim);
  injector.FailAzAt(t0 + 60 * kMillisecond, 1, 25 * kMillisecond);
  if (flapper != victim) {
    injector.Flap(flapper, 8 * kMillisecond, 3);
  }

  if (threads == 0) {
    cluster.RunFor(400 * kMillisecond);
  } else {
    cluster.sim().RunShardedFor(400 * kMillisecond, threads);
  }

  ClusterOutcome out;
  out.fingerprint = cluster.sim().ScheduleFingerprint();
  out.vcl = cluster.writer()->vcl();
  out.vdl = cluster.writer()->vdl();
  out.commits = cluster.writer()->stats().commits_acked;
  out.executed = cluster.sim().ExecutedEvents();
  out.end = cluster.sim().Now();
  out.node_failures = injector.node_failures();
  return out;
}

TEST(ParallelDeterminism, ClusterChaosSweepSerialVsParallel) {
  for (uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u, 17u, 18u}) {
    const ClusterOutcome serial = RunClusterScenario(seed, 0);
    ASSERT_GT(serial.commits, 0u) << "seed " << seed;
    ASSERT_GT(serial.node_failures, 0u) << "seed " << seed;
    for (int threads : {1, 2, 4}) {
      const ClusterOutcome parallel = RunClusterScenario(seed, threads);
      EXPECT_EQ(parallel, serial)
          << "seed " << seed << " threads " << threads;
    }
    if (seed % 4 == 3) {
      const ClusterOutcome wide = RunClusterScenario(seed, 8);
      EXPECT_EQ(wide, serial) << "seed " << seed << " threads 8";
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 2c: fine-grained per-storage-node sharding under the same chaos.
//
// ShardGranularity::kPerNode gives each of the 6 storage nodes its own
// shard (7 shards total with the control plane on shard 0) and switches
// the engine to the pairwise lookahead matrix — distinct intra-AZ vs
// cross-AZ floors make the matrix genuinely asymmetric. The windowed
// engine must still execute the exact serial canonical schedule at every
// worker count, crash/restart/AZ-blip chaos included.

TEST(ParallelDeterminism, PerNodeShardingChaosSweep) {
  for (uint64_t seed : {11u, 14u, 17u}) {
    const ClusterOutcome serial =
        RunClusterScenario(seed, 0, core::ShardGranularity::kPerNode);
    ASSERT_GT(serial.commits, 0u) << "seed " << seed;
    ASSERT_GT(serial.node_failures, 0u) << "seed " << seed;
    for (int threads : {1, 2, 4, 8}) {
      const ClusterOutcome parallel =
          RunClusterScenario(seed, threads, core::ShardGranularity::kPerNode);
      EXPECT_EQ(parallel, serial)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ParallelDeterminism, PerNodeFoldedShardsChaosSweep) {
  // max_event_shards = 4 < fleet + 1: the 6 storage nodes round-robin
  // fold onto 3 storage shards (nodes i and i + 3 share shard 1 + i % 3,
  // mixing AZs on a shard — the matrix must take the tightest class).
  for (uint64_t seed : {12u, 15u}) {
    const ClusterOutcome serial =
        RunClusterScenario(seed, 0, core::ShardGranularity::kPerNode, 4);
    ASSERT_GT(serial.commits, 0u) << "seed " << seed;
    for (int threads : {2, 8}) {
      const ClusterOutcome parallel = RunClusterScenario(
          seed, threads, core::ShardGranularity::kPerNode, 4);
      EXPECT_EQ(parallel, serial)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 2b: read-heavy mix through client sessions — hedged reads,
// exactly-once completion, and late-response cancellation under the
// windowed engine.
//
// Replicas run with tiny caches so Zipf-skewed session reads miss and go
// to storage; one slowed storage node plus a scripted crash/restart force
// the driver's hedge timers and failure-retry path to fire. Every
// outcome — schedule fingerprint, per-op completion counts, hedge
// counters, and a hash of every returned value — must be bit-identical
// between the serial engine and 1/2/4/8-worker windowed runs.

struct ReadHeavyOutcome {
  uint64_t fingerprint = 0;
  uint64_t executed = 0;
  SimTime end = 0;
  uint64_t gets_done = 0;
  uint64_t puts_done = 0;
  uint64_t replica_reads = 0;
  uint64_t fallbacks = 0;
  uint64_t hedges = 0;
  uint64_t double_fires = 0;
  uint64_t value_hash = 0;

  bool operator==(const ReadHeavyOutcome&) const = default;
};

// One callback-chained client workload: at most one operation in flight,
// so its Rng/Zipf draws are totally ordered by the schedule and every
// event it creates runs on its session's shard.
struct ReadHeavyClient {
  std::unique_ptr<core::ClientSession> session;
  Rng rng{0};
  ZipfianGenerator zipf{1, 0.99};
  uint64_t ops_started = 0;
  uint64_t gets_done = 0;
  uint64_t puts_done = 0;
  uint64_t double_fires = 0;
  uint64_t value_hash = 0;
  std::vector<uint8_t> fired;  // per-op completion count (exactly-once)

  void Pump(sim::Simulator* simulator, SimTime deadline, int keys) {
    if (simulator->Now() >= deadline - kMillisecond) return;
    const uint64_t op = ops_started++;
    if (op >= fired.size()) fired.resize(op + 1, 0);
    char key[16];
    std::snprintf(key, sizeof(key), "z%04d",
                  static_cast<int>(zipf.Next(rng)) % keys);
    auto next = [this, simulator, deadline, keys, op](uint64_t h) {
      if (fired[op]++ > 0) {  // a cancelled hedge leaked a second callback
        double_fires++;
        return;
      }
      value_hash = value_hash * 1099511628211ULL ^ h;
      simulator->Schedule(200 + rng.Next() % 300, [this, simulator, deadline,
                                                   keys] {
        Pump(simulator, deadline, keys);
      });
    };
    if (rng.Next() % 5 == 0) {  // 20% updates
      session->Put(key, "u" + std::to_string(op), [this, next](Status st) {
        if (st.ok()) puts_done++;
        next(st.ok() ? 1 : 2);
      });
    } else {
      session->Get(key, [this, next](Result<std::string> r) {
        if (r.ok()) gets_done++;
        next(r.ok() ? std::hash<std::string>{}(*r) : 3);
      });
    }
  }
};

ReadHeavyOutcome RunReadHeavyScenario(uint64_t seed, int threads) {
  constexpr int kKeys = 240;
  core::AuroraOptions options;
  options.seed = seed;
  options.blocks_per_pg = 1 << 16;
  options.event_shards = 3;
  options.network.min_latency_us = 40;
  options.replica.cache_pages = 24;  // working set >> cache: storage reads
  core::AuroraCluster cluster(options);
  EXPECT_TRUE(cluster.StartBlocking().ok());

  for (int i = 0; i < kKeys; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "z%04d", i);
    EXPECT_TRUE(cluster.PutBlocking(key, "seed").ok());
  }
  std::vector<replica::ReadReplica*> reps;
  for (int i = 0; i < 3; ++i) reps.push_back(cluster.AddReplica());
  cluster.RunFor(100 * kMillisecond);  // replicas prime their VDL

  // One slow storage node (hedge timers fire against it) and a scripted
  // crash/restart (explicit-failure retry + late-response cancellation).
  const std::vector<NodeId> nodes = cluster.StorageNodeIds();
  cluster.network().SetNodeSlowdown(nodes[seed % nodes.size()], 25.0);
  const NodeId victim = nodes[(seed + 3) % nodes.size()];
  const SimTime t0 = cluster.sim().Now();
  cluster.failures().CrashNodeAt(t0 + 40 * kMillisecond, victim);
  cluster.failures().RestartNodeAt(t0 + 120 * kMillisecond, victim);

  constexpr SimDuration kRunFor = 300 * kMillisecond;
  const SimTime deadline = cluster.sim().Now() + kRunFor;
  std::vector<std::unique_ptr<ReadHeavyClient>> clients;
  for (int c = 0; c < 3; ++c) {
    auto client = std::make_unique<ReadHeavyClient>();
    const AzId az = static_cast<AzId>(c % 3);
    core::SessionOptions session_options;
    session_options.replica_offset = c;
    client->session = std::make_unique<core::ClientSession>(
        &cluster, az, session_options);
    client->rng = Rng(seed * 1000 + c);
    client->zipf = ZipfianGenerator(kKeys, 0.99);
    ReadHeavyClient* raw = client.get();
    sim::Simulator::ShardScope scope(&cluster.sim(), cluster.ShardForAz(az));
    cluster.sim().Schedule(
        kMillisecond + c * 37,
        [raw, &cluster, deadline] {
          raw->Pump(&cluster.sim(), deadline, kKeys);
        },
        "readheavy.start");
    clients.push_back(std::move(client));
  }

  if (threads == 0) {
    cluster.RunFor(kRunFor);
  } else {
    cluster.sim().RunShardedFor(kRunFor, threads);
  }

  ReadHeavyOutcome out;
  out.fingerprint = cluster.sim().ScheduleFingerprint();
  out.executed = cluster.sim().ExecutedEvents();
  out.end = cluster.sim().Now();
  out.hedges = cluster.writer()->driver()->router().hedged_reads();
  for (auto* rep : reps) {
    out.hedges += rep->driver()->router().hedged_reads();
  }
  for (const auto& client : clients) {
    out.gets_done += client->gets_done;
    out.puts_done += client->puts_done;
    out.double_fires += client->double_fires;
    out.replica_reads += client->session->stats().replica_reads;
    out.fallbacks += client->session->stats().writer_fallbacks;
    out.value_hash = out.value_hash * 31 ^ client->value_hash;
    for (uint64_t op = 0; op + 1 < client->ops_started; ++op) {
      // Every op except possibly the last (in flight at the deadline)
      // completed exactly once.
      EXPECT_EQ(client->fired[op], 1u) << "op " << op << " of session "
                                       << client->session->node();
    }
  }
  return out;
}

TEST(ParallelDeterminism, ReadHeavyHedgedSweep) {
  for (uint64_t seed : {31u, 32u}) {
    const ReadHeavyOutcome serial = RunReadHeavyScenario(seed, 0);
    ASSERT_GT(serial.gets_done, 50u) << "seed " << seed;
    ASSERT_GT(serial.puts_done, 5u) << "seed " << seed;
    ASSERT_GT(serial.replica_reads, 0u) << "seed " << seed;
    ASSERT_GT(serial.hedges, 0u)
        << "seed " << seed << ": the slow node must trigger hedges";
    ASSERT_EQ(serial.double_fires, 0u)
        << "seed " << seed << ": a hedge pair must resolve exactly once";
    for (int threads : {1, 2, 4, 8}) {
      const ReadHeavyOutcome parallel = RunReadHeavyScenario(seed, threads);
      EXPECT_EQ(parallel, serial)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 3: sharded oracle (event_shards = 1) bit-identity on the chaos
// harness, including the committed golden fixture.

TEST(ParallelDeterminism, ChaosHarnessOracleBitIdentity) {
  for (uint64_t seed : {3u, 21u, 77u}) {
    const core::ChaosSchedule schedule =
        core::GenerateChaosSchedule(seed, 25);
    core::ChaosRunOptions classic_options;
    const core::ChaosRunResult classic =
        core::RunChaosSchedule(schedule, classic_options);
    ASSERT_TRUE(classic.status.ok()) << classic.status.ToString();

    core::ChaosRunOptions oracle_options;
    oracle_options.event_shards = 1;
    const core::ChaosRunResult oracle =
        core::RunChaosSchedule(schedule, oracle_options);
    ASSERT_TRUE(oracle.status.ok()) << oracle.status.ToString();

    EXPECT_EQ(oracle.fingerprint, classic.fingerprint) << "seed " << seed;
    EXPECT_EQ(oracle.vcl, classic.vcl) << "seed " << seed;
    EXPECT_EQ(oracle.vdl, classic.vdl) << "seed " << seed;
    EXPECT_EQ(oracle.executed_events, classic.executed_events)
        << "seed " << seed;
    EXPECT_EQ(oracle.end_time, classic.end_time) << "seed " << seed;
  }
}

TEST(ParallelDeterminism, GoldenTraceReplaysOnShardedOracle) {
  // The pre-sharding golden capture must verify event-by-event against a
  // run on the sharded oracle — the strongest single piece of evidence
  // that ConfigureShards(1) changed nothing.
  const std::string path =
      std::string(AURORA_TEST_DATA_DIR) + "/golden_trace_seed12345.jsonl";
  auto stored = sim::Trace::ReadFile(path);
  ASSERT_TRUE(stored.ok())
      << "missing golden fixture (trace_replay_test self-primes it): "
      << stored.status().ToString();
  ASSERT_TRUE(stored->summary.present);

  core::ChaosRunOptions replay_options;
  replay_options.replay = &*stored;
  replay_options.event_shards = 1;
  const core::ChaosRunResult replayed = core::RunChaosSchedule(
      core::GenerateChaosSchedule(12345, 20), replay_options);
  ASSERT_TRUE(replayed.status.ok()) << replayed.status.ToString();
  EXPECT_FALSE(replayed.replay_diverged) << replayed.replay_divergence;
  EXPECT_EQ(replayed.fingerprint, stored->summary.fingerprint);
  EXPECT_EQ(replayed.vcl, stored->summary.vcl);
  EXPECT_EQ(replayed.vdl, stored->summary.vdl);
  EXPECT_EQ(replayed.executed_events, stored->summary.executed_events);
}

}  // namespace
}  // namespace aurora
