// Parallel-vs-serial determinism sweeps (DESIGN.md §9).
//
// Three layers of evidence that the windowed parallel engine executes the
// exact canonical schedule:
//   1. a 25-seed synthetic actor-mesh sweep comparing serial execution
//      against 2-, 4-, and 8-worker windowed runs on the same shard count;
//   2. a full-cluster sweep (writer + storage fleet + failure-injector
//      chaos, event_shards = 3) comparing serial RunUntil against
//      RunSharded at 1/2/4/8 workers on fingerprint, VCL, VDL, commit and
//      event counts;
//   3. bit-identity of the sharded oracle (event_shards = 1) with the
//      classic engine on the chaos harness, including replaying the
//      committed pre-sharding golden trace fixture on the oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/chaos_harness.h"
#include "src/core/cluster.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace aurora {
namespace {

// ---------------------------------------------------------------------------
// Layer 1: synthetic mesh, 25 seeds.

uint64_t Mix(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t h = a * 0x9e3779b97f4a7c15ULL ^ (b + 0xff51afd7ed558ccdULL) * 33 ^
               (c + 0xc4ceb9fe1a85ec53ULL) * 101;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  return h;
}

struct MeshOutcome {
  uint64_t fingerprint = 0;
  uint64_t executed = 0;
  SimTime end = 0;
  uint64_t state_hash = 0;
};

void MeshTick(sim::Simulator* simulator, std::vector<uint64_t>* cells,
              uint64_t seed, uint32_t shard, uint32_t nshards, uint64_t tick,
              SimTime deadline) {
  (*cells)[shard] = (*cells)[shard] * 6364136223846793005ULL + tick + 1;
  if (simulator->Now() >= deadline - 150) return;
  if (tick % 4 == 1) {
    const uint32_t dst = (shard + 1 + tick / 4) % nshards;
    if (dst != shard) {
      simulator->ScheduleOn(
          dst, simulator->Lookahead() + Mix(seed, shard, tick) % 30,
          [cells, dst] { (*cells)[dst] ^= 0x5bd1e995; }, "sweep.remote");
    }
  }
  simulator->Schedule(
      1 + Mix(seed, shard, tick * 2) % 29,
      [simulator, cells, seed, shard, nshards, tick, deadline] {
        MeshTick(simulator, cells, seed, shard, nshards, tick + 1, deadline);
      },
      "sweep.tick");
}

MeshOutcome RunMesh(uint64_t seed, uint32_t nshards, int threads) {
  constexpr SimTime kDeadline = 8000;
  sim::Simulator simulator(seed);
  simulator.ConfigureShards(nshards);
  simulator.SetLookahead(20);
  std::vector<uint64_t> cells(nshards, seed);
  for (uint32_t s = 0; s < nshards; ++s) {
    sim::Simulator::ShardScope scope(&simulator, s);
    simulator.Schedule(
        1 + s % 3,
        [&simulator, &cells, seed, s, nshards] {
          MeshTick(&simulator, &cells, seed, s, nshards, 0, kDeadline);
        },
        "sweep.start");
  }
  // A global-event chain interleaved with the mesh: barrier traffic is
  // part of the schedule under test.
  simulator.ScheduleGlobal(
      50,
      [&simulator, &cells] {
        for (auto& c : cells) c += 1;
        simulator.ScheduleGlobal(
            173, [&cells] { cells[0] ^= cells[cells.size() - 1]; },
            "sweep.global2");
      },
      "sweep.global1");

  if (threads == 0) {
    simulator.RunUntil(kDeadline);
  } else {
    simulator.RunSharded(kDeadline, threads);
  }

  MeshOutcome out;
  out.fingerprint = simulator.ScheduleFingerprint();
  out.executed = simulator.ExecutedEvents();
  out.end = simulator.Now();
  for (uint64_t c : cells) out.state_hash = out.state_hash * 31 + c;
  return out;
}

TEST(ParallelDeterminism, MeshSweep25Seeds) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const uint32_t nshards = 2 + seed % 3;  // 2, 3, 4
    const MeshOutcome serial = RunMesh(seed, nshards, 0);
    ASSERT_GT(serial.executed, 200u) << "seed " << seed;
    for (int threads : {2, 4, 8}) {
      const MeshOutcome parallel = RunMesh(seed, nshards, threads);
      EXPECT_EQ(parallel.fingerprint, serial.fingerprint)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.executed, serial.executed)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.end, serial.end)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.state_hash, serial.state_hash)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 2: full cluster under chaos, serial vs parallel.

struct ClusterOutcome {
  uint64_t fingerprint = 0;
  Lsn vcl = 0;
  Lsn vdl = 0;
  uint64_t commits = 0;
  uint64_t executed = 0;
  SimTime end = 0;
  uint64_t node_failures = 0;

  bool operator==(const ClusterOutcome&) const = default;
};

// Builds a 3-shard cluster, runs a blocking warm-up, arms scripted +
// flapping failure-injector chaos, then drives one long run phase either
// serially (threads == 0) or through the windowed engine.
ClusterOutcome RunClusterScenario(uint64_t seed, int threads) {
  core::AuroraOptions options;
  options.seed = seed;
  options.blocks_per_pg = 1 << 16;
  options.storage_nodes_per_az = 2;
  options.event_shards = 3;
  // Widen the latency floor so the lookahead window holds useful work
  // (default 1us windows would still be correct, just barrier-bound).
  options.network.min_latency_us = 40;
  core::AuroraCluster cluster(options);
  EXPECT_TRUE(cluster.StartBlocking().ok());
  EXPECT_EQ(cluster.sim().Lookahead(), 40);

  for (int i = 0; i < 10; ++i) {
    (void)cluster.PutBlocking("warm" + std::to_string(i % 7),
                              "v" + std::to_string(i));
  }

  // Chaos armed before the run phase: scripted crash/restart, an AZ blip,
  // and a flapping node (stochastic dwell draws happen inside global
  // events, so they are barrier-serialized and deterministic).
  const std::vector<NodeId> nodes = cluster.StorageNodeIds();
  sim::FailureInjector& injector = cluster.failures();
  const SimTime t0 = cluster.sim().Now();
  const NodeId victim = nodes[seed % nodes.size()];
  const NodeId flapper = nodes[(seed + 2) % nodes.size()];
  injector.CrashNodeAt(t0 + 5 * kMillisecond, victim);
  injector.RestartNodeAt(t0 + 45 * kMillisecond, victim);
  injector.FailAzAt(t0 + 60 * kMillisecond, 1, 25 * kMillisecond);
  if (flapper != victim) {
    injector.Flap(flapper, 8 * kMillisecond, 3);
  }

  if (threads == 0) {
    cluster.RunFor(400 * kMillisecond);
  } else {
    cluster.sim().RunShardedFor(400 * kMillisecond, threads);
  }

  ClusterOutcome out;
  out.fingerprint = cluster.sim().ScheduleFingerprint();
  out.vcl = cluster.writer()->vcl();
  out.vdl = cluster.writer()->vdl();
  out.commits = cluster.writer()->stats().commits_acked;
  out.executed = cluster.sim().ExecutedEvents();
  out.end = cluster.sim().Now();
  out.node_failures = injector.node_failures();
  return out;
}

TEST(ParallelDeterminism, ClusterChaosSweepSerialVsParallel) {
  for (uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u, 17u, 18u}) {
    const ClusterOutcome serial = RunClusterScenario(seed, 0);
    ASSERT_GT(serial.commits, 0u) << "seed " << seed;
    ASSERT_GT(serial.node_failures, 0u) << "seed " << seed;
    for (int threads : {1, 2, 4}) {
      const ClusterOutcome parallel = RunClusterScenario(seed, threads);
      EXPECT_EQ(parallel, serial)
          << "seed " << seed << " threads " << threads;
    }
    if (seed % 4 == 3) {
      const ClusterOutcome wide = RunClusterScenario(seed, 8);
      EXPECT_EQ(wide, serial) << "seed " << seed << " threads 8";
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 3: sharded oracle (event_shards = 1) bit-identity on the chaos
// harness, including the committed golden fixture.

TEST(ParallelDeterminism, ChaosHarnessOracleBitIdentity) {
  for (uint64_t seed : {3u, 21u, 77u}) {
    const core::ChaosSchedule schedule =
        core::GenerateChaosSchedule(seed, 25);
    core::ChaosRunOptions classic_options;
    const core::ChaosRunResult classic =
        core::RunChaosSchedule(schedule, classic_options);
    ASSERT_TRUE(classic.status.ok()) << classic.status.ToString();

    core::ChaosRunOptions oracle_options;
    oracle_options.event_shards = 1;
    const core::ChaosRunResult oracle =
        core::RunChaosSchedule(schedule, oracle_options);
    ASSERT_TRUE(oracle.status.ok()) << oracle.status.ToString();

    EXPECT_EQ(oracle.fingerprint, classic.fingerprint) << "seed " << seed;
    EXPECT_EQ(oracle.vcl, classic.vcl) << "seed " << seed;
    EXPECT_EQ(oracle.vdl, classic.vdl) << "seed " << seed;
    EXPECT_EQ(oracle.executed_events, classic.executed_events)
        << "seed " << seed;
    EXPECT_EQ(oracle.end_time, classic.end_time) << "seed " << seed;
  }
}

TEST(ParallelDeterminism, GoldenTraceReplaysOnShardedOracle) {
  // The pre-sharding golden capture must verify event-by-event against a
  // run on the sharded oracle — the strongest single piece of evidence
  // that ConfigureShards(1) changed nothing.
  const std::string path =
      std::string(AURORA_TEST_DATA_DIR) + "/golden_trace_seed12345.jsonl";
  auto stored = sim::Trace::ReadFile(path);
  ASSERT_TRUE(stored.ok())
      << "missing golden fixture (trace_replay_test self-primes it): "
      << stored.status().ToString();
  ASSERT_TRUE(stored->summary.present);

  core::ChaosRunOptions replay_options;
  replay_options.replay = &*stored;
  replay_options.event_shards = 1;
  const core::ChaosRunResult replayed = core::RunChaosSchedule(
      core::GenerateChaosSchedule(12345, 20), replay_options);
  ASSERT_TRUE(replayed.status.ok()) << replayed.status.ToString();
  EXPECT_FALSE(replayed.replay_diverged) << replayed.replay_divergence;
  EXPECT_EQ(replayed.fingerprint, stored->summary.fingerprint);
  EXPECT_EQ(replayed.vcl, stored->summary.vcl);
  EXPECT_EQ(replayed.vdl, stored->summary.vdl);
  EXPECT_EQ(replayed.executed_events, stored->summary.executed_events);
}

}  // namespace
}  // namespace aurora
