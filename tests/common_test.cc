// Unit tests for src/common: Status/Result, RNG and distributions,
// Histogram percentiles, CRC32C vectors, IntervalSet (including a
// randomized model check against std::set), and thread-safety of the
// metrics registry under concurrent recording.

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/histogram.h"
#include "src/common/interval_set.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/common/status.h"

namespace aurora {
namespace {

// ---------------------------------------------------------------------- //
// Status / Result

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, CodesAndMessages) {
  Status st = Status::StaleEpoch("epoch 3 < 5");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsStaleEpoch());
  EXPECT_EQ(st.code(), StatusCode::kStaleEpoch);
  EXPECT_EQ(st.ToString(), "StaleEpoch: epoch 3 < 5");
}

TEST(Status, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::QuorumUnavailable("x").IsQuorumUnavailable());
  EXPECT_TRUE(Status::Fenced("x").IsFenced());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> ok_result = 42;
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  EXPECT_TRUE(ok_result.status().ok());

  Result<int> err_result = Status::NotFound("gone");
  EXPECT_FALSE(err_result.ok());
  EXPECT_TRUE(err_result.status().IsNotFound());
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// ---------------------------------------------------------------------- //
// Rng & distributions

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) heads++;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(LatencyDistribution, ConstantAndUniform) {
  Rng rng(1);
  auto constant = LatencyDistribution::Constant(250);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(constant.Sample(rng), 250);
  auto uniform = LatencyDistribution::Uniform(10, 20);
  for (int i = 0; i < 100; ++i) {
    const SimDuration v = uniform.Sample(rng);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(LatencyDistribution, LogNormalMedianApproximate) {
  Rng rng(5);
  auto dist = LatencyDistribution::LogNormal(500, 0.3);
  std::vector<SimDuration> samples;
  for (int i = 0; i < 10001; ++i) samples.push_back(dist.Sample(rng));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(static_cast<double>(samples[5000]), 500.0, 50.0);
}

TEST(Zipfian, SkewsTowardLowRanks) {
  Rng rng(3);
  ZipfianGenerator zipf(1000, 0.99);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next(rng) < 100) low++;
  }
  // With theta=0.99 the head is heavily favored.
  EXPECT_GT(low, n / 2);
}

// ---------------------------------------------------------------------- //
// Histogram

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.P50(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(Histogram, ExactSmallValues) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 10);
  EXPECT_NEAR(h.Mean(), 5.5, 0.01);
  EXPECT_LE(h.P50(), 6);
  EXPECT_GE(h.P50(), 5);
}

TEST(Histogram, PercentileAccuracyWithin2Percent) {
  Histogram h;
  Rng rng(17);
  std::vector<SimDuration> values;
  for (int i = 0; i < 100000; ++i) {
    const SimDuration v = rng.NextInRange(1, 1000000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact =
        static_cast<double>(values[static_cast<size_t>(q * values.size())]);
    const double approx = static_cast<double>(h.Percentile(q));
    EXPECT_NEAR(approx / exact, 1.0, 0.08) << "q=" << q;
  }
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, BucketBoundariesArePinned) {
  // The bucket layout (64 log2 majors x 16 linear sub-buckets) is part of
  // the percentile-accuracy contract. Pin exact edges so any change to the
  // O(1) index computation that shifts a boundary fails loudly rather than
  // silently skewing every reported latency.
  for (SimDuration v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::BucketIndexForTest(v), static_cast<int>(v));
  }
  EXPECT_EQ(Histogram::BucketIndexForTest(-7), 0);  // clamped
  EXPECT_EQ(Histogram::BucketIndexForTest(16), 16);
  EXPECT_EQ(Histogram::BucketIndexForTest(31), 31);
  EXPECT_EQ(Histogram::BucketIndexForTest(32), 32);   // major 2 starts
  EXPECT_EQ(Histogram::BucketIndexForTest(33), 32);   // 2-wide sub-buckets
  EXPECT_EQ(Histogram::BucketIndexForTest(34), 33);
  EXPECT_EQ(Histogram::BucketIndexForTest(63), 47);
  EXPECT_EQ(Histogram::BucketIndexForTest(64), 48);
  EXPECT_EQ(Histogram::BucketIndexForTest(1LL << 40), (40 - 4 + 1) * 16);
  // Monotone non-decreasing, never skipping more than one bucket.
  int prev = 0;
  for (SimDuration v = 1; v < 4096; ++v) {
    const int b = Histogram::BucketIndexForTest(v);
    EXPECT_GE(b, prev) << "v=" << v;
    EXPECT_LE(b, prev + 1) << "v=" << v;
    prev = b;
  }
}

// ---------------------------------------------------------------------- //
// CRC32C

TEST(Crc32c, KnownVectors) {
  // Standard CRC-32C test vector: "123456789" -> 0xE3069283.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32c, DetectsBitFlip) {
  std::string data = "the quick brown fox";
  const uint32_t before = Crc32c(data);
  data[3] ^= 0x01;
  EXPECT_NE(Crc32c(data), before);
}

TEST(Crc32c, SeedChaining) {
  const std::string full = "hello world";
  const uint32_t whole = Crc32c(full);
  const uint32_t chained = Crc32c(std::string_view("world"),
                                  Crc32c(std::string_view("hello ")));
  // CRC-32C chaining via seed-as-previous-CRC is how the codec uses it.
  EXPECT_EQ(whole, chained);
}

// ---------------------------------------------------------------------- //
// IntervalSet

TEST(IntervalSet, AddAndContains) {
  IntervalSet s;
  s.AddRange(5, 10);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_TRUE(s.Contains(10));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_FALSE(s.Contains(11));
  EXPECT_TRUE(s.ContainsRange(6, 9));
  EXPECT_FALSE(s.ContainsRange(6, 11));
}

TEST(IntervalSet, MergesAdjacentAndOverlapping) {
  IntervalSet s;
  s.AddRange(1, 3);
  s.AddRange(4, 6);  // adjacent: merge
  EXPECT_EQ(s.IntervalCount(), 1u);
  s.AddRange(10, 20);
  s.AddRange(15, 25);  // overlapping: merge
  EXPECT_EQ(s.IntervalCount(), 2u);
  s.AddRange(7, 9);  // bridges [1,6] and [10,25]
  EXPECT_EQ(s.IntervalCount(), 1u);
  EXPECT_TRUE(s.ContainsRange(1, 25));
}

TEST(IntervalSet, ContiguousUpperBound) {
  IntervalSet s;
  EXPECT_EQ(s.ContiguousUpperBound(1), 0u);  // nothing: floor-1
  s.AddRange(1, 100);
  s.AddRange(105, 110);
  EXPECT_EQ(s.ContiguousUpperBound(1), 100u);
  s.AddRange(101, 104);
  EXPECT_EQ(s.ContiguousUpperBound(1), 110u);
}

TEST(IntervalSet, GapsIn) {
  IntervalSet s;
  s.AddRange(1, 3);
  s.AddRange(7, 8);
  auto gaps = s.GapsIn(1, 10);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], (Interval{4, 6}));
  EXPECT_EQ(gaps[1], (Interval{9, 10}));
}

TEST(IntervalSet, TruncateAbove) {
  IntervalSet s;
  s.AddRange(1, 10);
  s.AddRange(20, 30);
  s.TruncateAbove(25);
  EXPECT_TRUE(s.Contains(25));
  EXPECT_FALSE(s.Contains(26));
  s.TruncateAbove(5);
  EXPECT_EQ(s.IntervalCount(), 1u);
  EXPECT_EQ(s.ContiguousUpperBound(1), 5u);
}

TEST(IntervalSet, RandomizedModelCheck) {
  Rng rng(99);
  IntervalSet s;
  std::set<uint64_t> model;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t lo = rng.NextBounded(500);
    const uint64_t hi = lo + rng.NextBounded(20);
    s.AddRange(lo, hi);
    for (uint64_t v = lo; v <= hi; ++v) model.insert(v);
  }
  for (uint64_t v = 0; v < 600; ++v) {
    EXPECT_EQ(s.Contains(v), model.contains(v)) << v;
  }
  EXPECT_EQ(s.ValueCount(), model.size());
}

// ---------------------------------------------------------------------- //
// Metrics registry under concurrent recording (parallel simulator shards
// share handles; counters must not drop increments).

TEST(Metrics, ConcurrentRecordingLosesNothing) {
  auto& registry = metrics::Registry::Global();
  registry.Reset();
  metrics::Registry::SetEnabled(true);
  metrics::Counter* counter = registry.GetCounter("test.concurrent.counter");
  metrics::Gauge* gauge = registry.GetGauge("test.concurrent.gauge");
  metrics::Gauge* peak = registry.GetGauge("test.concurrent.peak");
  Histogram* histogram = registry.GetHistogram("test.concurrent.hist");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        AURORA_COUNT(counter, 1);
        AURORA_GAUGE_SET(gauge, t * kPerThread + i);
        AURORA_OBSERVE(histogram, (i % 100) + 1);
        if (i % 1000 == 0) {
          // Registration is the cold path but must also be safe to race
          // with recording (workers lazily resolve per-entity series).
          registry.GetCounter("test.concurrent.lazy" + std::to_string(t));
        }
      }
      peak->Max(1000000 + t);
    });
  }
  for (auto& th : threads) th.join();
  metrics::Registry::SetEnabled(false);

  // Counters are exact under contention (atomic increments, no lost
  // updates); the histogram's total count likewise.
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.CounterValue("test.concurrent.counter"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->max(), 100);
  // Set is last-write-wins: the survivor is SOME thread's final write.
  EXPECT_GE(gauge->Value(), kPerThread - 1);
  EXPECT_LT(gauge->Value(), kThreads * kPerThread);
  // Max is a CAS loop: the largest contender always wins.
  EXPECT_EQ(peak->Value(), 1000000 + kThreads - 1);
  registry.Reset();
}

TEST(Metrics, DisabledRecordingIsInertAndCheap) {
  auto& registry = metrics::Registry::Global();
  registry.Reset();
  metrics::Registry::SetEnabled(false);
  metrics::Counter* counter = registry.GetCounter("test.disabled.counter");
  AURORA_COUNT(counter, 5);
  EXPECT_EQ(counter->Value(), 0u);
  // Null handles are tolerated by the macros (never-materialized series).
  metrics::Counter* null_counter = nullptr;
  AURORA_COUNT(null_counter, 1);
}

}  // namespace
}  // namespace aurora
