// End-to-end smoke tests: bootstrap, write/commit/read, consistency-point
// advancement, crash recovery, and replica basics on a full cluster.

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace aurora {
namespace {

core::AuroraOptions SmallOptions() {
  core::AuroraOptions options;
  options.seed = 7;
  options.num_pgs = 2;
  options.blocks_per_pg = 1 << 16;
  options.db.cache_pages = 1024;
  return options;
}

TEST(ClusterSmoke, BootstrapAndPutGet) {
  core::AuroraCluster cluster(SmallOptions());
  ASSERT_TRUE(cluster.StartBlocking().ok());

  ASSERT_TRUE(cluster.PutBlocking("alpha", "1").ok());
  ASSERT_TRUE(cluster.PutBlocking("beta", "2").ok());

  auto alpha = cluster.GetBlocking("alpha");
  ASSERT_TRUE(alpha.ok()) << alpha.status().ToString();
  EXPECT_EQ(*alpha, "1");
  auto beta = cluster.GetBlocking("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(*beta, "2");

  auto missing = cluster.GetBlocking("gamma");
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(ClusterSmoke, ConsistencyPointsAdvance) {
  core::AuroraCluster cluster(SmallOptions());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  const Lsn vcl_before = cluster.writer()->vcl();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        cluster.PutBlocking("key" + std::to_string(i), "v").ok());
  }
  EXPECT_GT(cluster.writer()->vcl(), vcl_before);
  EXPECT_LE(cluster.writer()->vdl(), cluster.writer()->vcl());
  EXPECT_GT(cluster.writer()->vdl(), vcl_before);
}

TEST(ClusterSmoke, OverwriteAndDelete) {
  core::AuroraCluster cluster(SmallOptions());
  ASSERT_TRUE(cluster.StartBlocking().ok());

  ASSERT_TRUE(cluster.PutBlocking("k", "v1").ok());
  ASSERT_TRUE(cluster.PutBlocking("k", "v2").ok());
  auto v = cluster.GetBlocking("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v2");

  ASSERT_TRUE(cluster.DeleteBlocking("k").ok());
  EXPECT_TRUE(cluster.GetBlocking("k").status().IsNotFound());
}

TEST(ClusterSmoke, ManyKeysForceSplits) {
  core::AuroraCluster cluster(SmallOptions());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  // Enough keys to force several leaf and internal splits.
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    ASSERT_TRUE(cluster.PutBlocking(key, std::to_string(i)).ok()) << i;
  }
  EXPECT_GT(cluster.writer()->btree()->splits(), 0u);
  for (int i = 0; i < n; i += 37) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    auto v = cluster.GetBlocking(key);
    ASSERT_TRUE(v.ok()) << key << ": " << v.status().ToString();
    EXPECT_EQ(*v, std::to_string(i));
  }
}

TEST(ClusterSmoke, MultiKeyTransactionCommit) {
  core::AuroraCluster cluster(SmallOptions());
  ASSERT_TRUE(cluster.StartBlocking().ok());

  auto* writer = cluster.writer();
  const TxnId txn = writer->Begin();
  int pending = 2;
  writer->Put(txn, "x", "10", [&](Status st) {
    ASSERT_TRUE(st.ok());
    pending--;
  });
  writer->Put(txn, "y", "20", [&](Status st) {
    ASSERT_TRUE(st.ok());
    pending--;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return pending == 0; }));
  ASSERT_TRUE(cluster.CommitBlocking(txn).ok());

  EXPECT_EQ(*cluster.GetBlocking("x"), "10");
  EXPECT_EQ(*cluster.GetBlocking("y"), "20");
}

TEST(ClusterSmoke, RollbackRestoresPreviousVersions) {
  core::AuroraCluster cluster(SmallOptions());
  ASSERT_TRUE(cluster.StartBlocking().ok());

  ASSERT_TRUE(cluster.PutBlocking("a", "old").ok());
  auto* writer = cluster.writer();
  const TxnId txn = writer->Begin();
  bool put_done = false;
  writer->Put(txn, "a", "new", [&](Status st) {
    ASSERT_TRUE(st.ok());
    put_done = true;
  });
  bool put2_done = false;
  writer->Put(txn, "b", "created", [&](Status st) {
    ASSERT_TRUE(st.ok());
    put2_done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return put_done && put2_done; }));
  ASSERT_TRUE(cluster.RollbackBlocking(txn).ok());

  auto a = cluster.GetBlocking("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "old");
  EXPECT_TRUE(cluster.GetBlocking("b").status().IsNotFound());
}

TEST(ClusterSmoke, UncommittedInvisibleToOtherReaders) {
  core::AuroraCluster cluster(SmallOptions());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  ASSERT_TRUE(cluster.PutBlocking("k", "committed").ok());

  auto* writer = cluster.writer();
  const TxnId txn = writer->Begin();
  bool put_done = false;
  writer->Put(txn, "k", "dirty", [&](Status st) {
    ASSERT_TRUE(st.ok());
    put_done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return put_done; }));

  // Autocommit reader must not see the uncommitted value.
  auto v = cluster.GetBlocking("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "committed");

  // But the writing transaction sees its own write.
  bool got = false;
  writer->Get(txn, "k", [&](Result<std::string> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "dirty");
    got = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return got; }));
  ASSERT_TRUE(cluster.CommitBlocking(txn).ok());
}

TEST(ClusterSmoke, CrashRecoveryPreservesAckedCommits) {
  core::AuroraCluster cluster(SmallOptions());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("p" + std::to_string(i), "v").ok());
  }
  const VolumeEpoch epoch_before = cluster.writer()->volume_epoch();
  cluster.CrashWriter();
  cluster.RunFor(50 * kMillisecond);
  ASSERT_TRUE(cluster.RecoverWriterBlocking().ok());
  EXPECT_GT(cluster.writer()->volume_epoch(), epoch_before);
  for (int i = 0; i < 30; ++i) {
    auto v = cluster.GetBlocking("p" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status().ToString();
    EXPECT_EQ(*v, "v");
  }
  // And the database accepts new work after recovery.
  ASSERT_TRUE(cluster.PutBlocking("after", "recovery").ok());
  EXPECT_EQ(*cluster.GetBlocking("after"), "recovery");
}

TEST(ClusterSmoke, ScanReturnsVisibleRows) {
  core::AuroraCluster cluster(SmallOptions());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 20; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "s%03d", i);
    ASSERT_TRUE(cluster.PutBlocking(key, std::to_string(i)).ok());
  }
  bool done = false;
  std::vector<std::pair<std::string, std::string>> rows;
  cluster.writer()->Scan(
      kInvalidTxn, "s000", "s999", 100,
      [&](Result<std::vector<std::pair<std::string, std::string>>> r) {
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        rows = std::move(*r);
        done = true;
      });
  ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  EXPECT_EQ(rows.size(), 20u);
  EXPECT_EQ(rows.front().first, "s000");
}

}  // namespace
}  // namespace aurora
