// Storage-driver integration tests against a real mini storage fleet:
// quorum ack bookkeeping, retransmission of lost writes, fencing
// callbacks, routed reads with hedging under slow nodes, and epoch
// attachment.

#include <gtest/gtest.h>

#include "src/engine/storage_driver.h"
#include "src/storage/storage_node.h"

namespace aurora::engine {
namespace {

struct Fixture {
  sim::Simulator sim{17};
  sim::NetworkOptions net_options;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<storage::ObjectStore> object_store;
  std::vector<std::unique_ptr<storage::StorageNode>> nodes;
  quorum::PgConfig config;
  std::unique_ptr<StorageDriver> driver;
  static constexpr NodeId kDriverNode = 1;

  explicit Fixture(storage::StorageNodeOptions node_options = {},
                   DriverOptions driver_options = {}) {
    net_options.intra_az = LatencyDistribution::Constant(100);
    net_options.cross_az = LatencyDistribution::Constant(500);
    net_options.bytes_per_us = 0;
    network = std::make_unique<sim::Network>(&sim, net_options);
    object_store = std::make_unique<storage::ObjectStore>(&sim);
    network->RegisterNode(kDriverNode, 0);

    std::vector<quorum::SegmentInfo> members;
    for (SegmentId id = 0; id < 6; ++id) {
      members.push_back({id, static_cast<NodeId>(100 + id),
                         static_cast<AzId>(id / 2), true});
    }
    config = quorum::PgConfig::Create(0, quorum::QuorumModel::kUniform46,
                                      members);
    node_options.background_enabled = false;  // manual stage control
    for (const auto& m : members) {
      nodes.push_back(std::make_unique<storage::StorageNode>(
          &sim, network.get(), m.node, m.az, object_store.get(),
          node_options));
      nodes.back()->AddSegment(m, 0, config, /*volume_epoch=*/1);
    }
    auto resolver = [this](NodeId id) -> storage::StorageNode* {
      for (auto& n : nodes) {
        if (n->id() == id) return n.get();
      }
      return nullptr;
    };
    for (auto& n : nodes) n->SetResolver(resolver);
    driver_options.retry_interval = 20 * kMillisecond;
    driver = std::make_unique<StorageDriver>(
        &sim, network.get(), kDriverNode, resolver, driver_options);
    driver->SetGeometry(quorum::VolumeGeometry(1 << 16, {config}), 1);
    driver->Start();
  }

  log::RedoRecord Record(Lsn lsn, BlockId block = 5) {
    log::RedoRecord rec;
    rec.lsn = lsn;
    rec.prev_lsn_volume = lsn - 1;
    rec.prev_lsn_segment = lsn - 1;
    rec.prev_lsn_block = 0;
    rec.pg = 0;
    rec.block = block;
    storage::PageOp op;
    op.type = storage::PageOpType::kFormat;
    op.page_type = storage::PageType::kLeaf;
    rec.payload = EncodePageOp(op);
    return rec;
  }
};

TEST(StorageDriver, VclAdvancesOnQuorumAcks) {
  Fixture f;
  f.driver->SubmitRecords({f.Record(1)});
  f.sim.RunFor(50 * kMillisecond);
  EXPECT_EQ(f.driver->tracker().vcl(), 1u);
  EXPECT_EQ(f.driver->tracker().pgcl(0), 1u);
  EXPECT_GE(f.driver->stats().acks_received, 4u);
  // Coalescing is off by default: every successful ack runs its own
  // consistency-point pass (pins the legacy schedule).
  EXPECT_EQ(f.driver->stats().advance_passes,
            f.driver->stats().acks_received);
}

TEST(StorageDriver, AckCoalescingBatchesAdvancePasses) {
  DriverOptions driver_options;
  driver_options.ack_coalesce_window = 500;
  Fixture f({}, driver_options);
  // Pace the submissions so each record dispatches as its own 6-way
  // fan-out (one batch per boxcar window); the resulting ack bursts then
  // land inside coalescing windows.
  for (Lsn l = 1; l <= 20; ++l) {
    f.sim.Schedule(l * 50, [&f, l]() {
      f.driver->SubmitRecords({f.Record(l)});
    });
  }
  f.sim.RunFor(100 * kMillisecond);
  // Consistency is unaffected — only the evaluation cadence changes.
  EXPECT_EQ(f.driver->tracker().vcl(), 20u);
  EXPECT_GE(f.driver->stats().acks_received, 100u);
  EXPECT_LT(f.driver->stats().advance_passes,
            f.driver->stats().acks_received / 2)
      << "one pass should absorb a burst of fan-out acks";
}

TEST(StorageDriver, NoQuorumNoVcl) {
  Fixture f;
  // Only 3 of 6 segments up: write quorum unreachable.
  for (int i = 3; i < 6; ++i) f.network->Crash(100 + i);
  f.driver->SubmitRecords({f.Record(1)});
  f.sim.RunFor(200 * kMillisecond);
  EXPECT_EQ(f.driver->tracker().vcl(), kInvalidLsn);
  // Bring one back: the retransmission sweep completes the quorum.
  f.network->Restart(103);
  f.sim.RunFor(500 * kMillisecond);
  EXPECT_EQ(f.driver->tracker().vcl(), 1u);
  EXPECT_GT(f.driver->stats().retransmissions, 0u);
}

TEST(StorageDriver, AdvanceCallbackFires) {
  Fixture f;
  int advances = 0;
  f.driver->SetAdvanceCallback([&]() { advances++; });
  f.driver->SubmitRecords({f.Record(1)});
  f.driver->SubmitRecords({f.Record(2)});
  f.sim.RunFor(100 * kMillisecond);
  EXPECT_GT(advances, 0);
  EXPECT_EQ(f.driver->tracker().vcl(), 2u);
}

TEST(StorageDriver, FencedCallbackOnStaleEpoch) {
  Fixture f;
  // A newer incarnation bumped the volume epoch at the storage fleet.
  for (auto& node : f.nodes) {
    storage::VolumeEpochUpdateRequest request;
    request.segment = node->segments().begin()->first;
    request.new_epoch = 9;
    node->FindSegment(request.segment)->UpdateVolumeEpoch(request);
  }
  bool fenced = false;
  f.driver->SetFencedCallback([&]() { fenced = true; });
  f.driver->SubmitRecords({f.Record(1)});
  f.sim.RunFor(100 * kMillisecond);
  EXPECT_TRUE(fenced) << "stale-epoch acks must box the writer out";
}

TEST(StorageDriver, RoutedReadServesMaterializedBlock) {
  Fixture f;
  f.driver->SubmitRecords({f.Record(1, /*block=*/7)});
  f.sim.RunFor(50 * kMillisecond);
  bool done = false;
  f.driver->ReadBlock(7, 1, kInvalidLsn, [&](Result<storage::Page> page) {
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    EXPECT_EQ(page->id, 7u);
    EXPECT_EQ(page->page_lsn, 1u);
    done = true;
  });
  f.sim.RunFor(100 * kMillisecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(f.driver->stats().reads_issued, 1u) << "single read, no quorum";
}

TEST(StorageDriver, HedgedReadCapsSlowSegmentLatency) {
  Fixture f;
  f.driver->SubmitRecords({f.Record(1, 7)});
  f.sim.RunFor(50 * kMillisecond);
  // Teach the router that segment 0's node is fastest, then make it slow:
  // the hedge must rescue the read.
  for (int i = 0; i < 10; ++i) {
    f.driver->router().ObserveLatency(0, 100);
    for (SegmentId s = 1; s < 6; ++s) {
      f.driver->router().ObserveLatency(s, 5000);
    }
  }
  f.network->SetNodeSlowdown(100, 200.0);  // 100us -> 20ms
  bool done = false;
  SimTime start = f.sim.Now();
  SimDuration elapsed = 0;
  f.driver->ReadBlock(7, 1, kInvalidLsn, [&](Result<storage::Page> page) {
    ASSERT_TRUE(page.ok());
    elapsed = f.sim.Now() - start;
    done = true;
  });
  f.sim.RunFor(200 * kMillisecond);
  ASSERT_TRUE(done);
  EXPECT_GT(f.driver->router().hedged_reads(), 0u);
  EXPECT_LT(elapsed, 15 * kMillisecond)
      << "hedge must beat the 20ms slow segment";
}

TEST(StorageDriver, HedgeFiresExactlyOnceAndMetricsAgree) {
  auto& registry = metrics::Registry::Global();
  registry.Reset();
  metrics::Registry::SetEnabled(true);
  Fixture f;
  f.driver->SubmitRecords({f.Record(1, 7)});
  f.sim.RunFor(50 * kMillisecond);
  // Segment 0 is believed fastest; every other estimate is far above the
  // max hedge delay so only ONE hedge can beat the 5s read deadline.
  for (int i = 0; i < 10; ++i) {
    f.driver->router().ObserveLatency(0, 100);
    for (SegmentId s = 1; s < 6; ++s) {
      f.driver->router().ObserveLatency(s, 5000);
    }
  }
  // Slow segment 0's node past hedge_multiplier * expected (3 * 100us):
  // 100us * 400 = 40ms, far beyond the 20ms max_hedge_delay cap.
  f.network->SetNodeSlowdown(100, 400.0);
  const uint64_t hedges_before = f.driver->router().hedged_reads();
  bool done = false;
  f.driver->ReadBlock(7, 1, kInvalidLsn, [&](Result<storage::Page> page) {
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    done = true;
  });
  // Run past the slow reply too, so any over-eager second hedge would
  // have fired by now.
  f.sim.RunFor(300 * kMillisecond);
  metrics::Registry::SetEnabled(false);
  ASSERT_TRUE(done);
  EXPECT_EQ(f.driver->router().hedged_reads() - hedges_before, 1u)
      << "exactly one hedge for one slow primary";
  // The fast (hedged) reply won: total latency is bounded by hedge delay
  // plus the healthy segment's round trip, nowhere near the 40ms primary.
  EXPECT_EQ(registry.CounterValue("read.hedges"),
            f.driver->router().hedged_reads() - hedges_before)
      << "hedge-rate metric must match the router's own count";
  EXPECT_EQ(registry.CounterValue("read.issued"),
            f.driver->stats().reads_issued);
  registry.Reset();
}

TEST(StorageDriver, ReadFailsCleanlyWhenAllSegmentsDown) {
  Fixture f;
  f.driver->SubmitRecords({f.Record(1, 7)});
  f.sim.RunFor(50 * kMillisecond);
  for (int i = 0; i < 6; ++i) f.network->Crash(100 + i);
  bool done = false;
  f.driver->ReadBlock(7, 1, kInvalidLsn, [&](Result<storage::Page> page) {
    EXPECT_FALSE(page.ok());
    done = true;
  });
  f.sim.RunFor(30 * kSecond);
  EXPECT_TRUE(done) << "exhaustion must be reported, not hung";
}

TEST(StorageDriver, DualQuorumNeedsBothCandidateSets) {
  Fixture f;
  // Install the dual-quorum config (F suspected, G added) at the driver.
  quorum::SegmentInfo g{6, 110, 2, true};
  auto mid = f.config.BeginReplace(5, g);
  ASSERT_TRUE(mid.ok());
  // Host G.
  f.nodes.push_back(std::make_unique<storage::StorageNode>(
      &f.sim, f.network.get(), 110, 2, f.object_store.get(),
      storage::StorageNodeOptions{.background_enabled = false}));
  f.nodes.back()->AddSegment(g, 0, *mid, 1, /*hydrated=*/false);
  f.driver->UpdatePgConfig(*mid);
  // Crash E and F: survivors are ABCD + G. ABCD alone satisfies BOTH
  // 4/6 clauses (§4.1), so VCL still advances.
  f.network->Crash(104);
  f.network->Crash(105);
  f.driver->SubmitRecords({f.Record(1)});
  f.sim.RunFor(100 * kMillisecond);
  EXPECT_EQ(f.driver->tracker().vcl(), 1u);
}

}  // namespace
}  // namespace aurora::engine
