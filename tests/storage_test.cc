// Unit tests for the storage service: page ops, segment stores (SCL,
// coalescing, on-demand materialization, MVCC version retention/GC,
// truncation, scrub, hydration), the disk model, and the object store.

#include <gtest/gtest.h>

#include "src/log/record.h"
#include "src/quorum/membership.h"
#include "src/storage/disk.h"
#include "src/storage/object_store.h"
#include "src/storage/page.h"
#include "src/storage/segment_store.h"

namespace aurora::storage {
namespace {

quorum::PgConfig TestConfig() {
  std::vector<quorum::SegmentInfo> members;
  for (SegmentId id = 0; id < 6; ++id) {
    members.push_back({id, static_cast<NodeId>(100 + id),
                       static_cast<AzId>(id / 2), true});
  }
  return quorum::PgConfig::Create(0, quorum::QuorumModel::kUniform46,
                                  members);
}

SegmentStore MakeStore(bool is_full = true, bool hydrated = true) {
  quorum::SegmentInfo info{0, 100, 0, is_full};
  return SegmentStore(info, 0, TestConfig(), /*volume_epoch=*/1, hydrated);
}

log::RedoRecord DataRecord(Lsn lsn, Lsn prev_seg, BlockId block,
                           Lsn prev_block, const PageOp& op) {
  log::RedoRecord rec;
  rec.lsn = lsn;
  rec.prev_lsn_volume = lsn - 1;
  rec.prev_lsn_segment = prev_seg;
  rec.prev_lsn_block = prev_block;
  rec.pg = 0;
  rec.block = block;
  rec.txn = 1;
  rec.payload = EncodePageOp(op);
  return rec;
}

PageOp FormatOp(PageType type = PageType::kLeaf) {
  PageOp op;
  op.type = PageOpType::kFormat;
  op.page_type = type;
  return op;
}

PageOp InsertOp(std::string key, std::string value) {
  PageOp op;
  op.type = PageOpType::kInsert;
  op.key = std::move(key);
  op.value = std::move(value);
  return op;
}

// ---------------------------------------------------------------------- //
// Page ops

TEST(PageOps, CodecRoundTrip) {
  PageOp op;
  op.type = PageOpType::kSetLinks;
  op.page_type = PageType::kInternal;
  op.level = 3;
  op.key = "piv";
  op.value = std::string("\x00\x01", 2);
  op.next = 42;
  op.prev = 41;
  auto decoded = DecodePageOp(EncodePageOp(op));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, op);
}

TEST(PageOps, DecodeRejectsGarbage) {
  EXPECT_TRUE(DecodePageOp("").status().IsCorruption());
  EXPECT_TRUE(DecodePageOp("zz").status().IsCorruption());
  std::string bad = EncodePageOp(InsertOp("k", "v"));
  bad.resize(bad.size() - 1);
  EXPECT_TRUE(DecodePageOp(bad).status().IsCorruption());
}

TEST(PageOps, ApplySequence) {
  Page page;
  page.id = 9;
  ASSERT_TRUE(ApplyPageOp(&page, FormatOp(), 1).ok());
  EXPECT_EQ(page.type, PageType::kLeaf);
  ASSERT_TRUE(ApplyPageOp(&page, InsertOp("b", "2"), 2).ok());
  ASSERT_TRUE(ApplyPageOp(&page, InsertOp("a", "1"), 3).ok());
  EXPECT_EQ(page.entries.size(), 2u);
  EXPECT_EQ(page.page_lsn, 3u);

  PageOp erase;
  erase.type = PageOpType::kErase;
  erase.key = "a";
  ASSERT_TRUE(ApplyPageOp(&page, erase, 4).ok());
  EXPECT_FALSE(page.entries.contains("a"));

  PageOp truncate;
  truncate.type = PageOpType::kTruncateFrom;
  truncate.key = "b";
  ASSERT_TRUE(ApplyPageOp(&page, truncate, 5).ok());
  EXPECT_TRUE(page.entries.empty());
}

TEST(PageOps, CopiedVersionsShareUntouchedEntries) {
  // Coalescing materializes one page version per applied record; the COW
  // entry store must make that copy O(entries) pointer work, with every
  // unmodified entry physically shared between adjacent versions.
  Page v1;
  ASSERT_TRUE(ApplyPageOp(&v1, FormatOp(), 1).ok());
  ASSERT_TRUE(ApplyPageOp(&v1, InsertOp("a", "1"), 2).ok());
  ASSERT_TRUE(ApplyPageOp(&v1, InsertOp("b", "2"), 3).ok());
  ASSERT_TRUE(ApplyPageOp(&v1, InsertOp("c", "3"), 4).ok());

  Page v2 = v1;
  ASSERT_TRUE(ApplyPageOp(&v2, InsertOp("b", "new"), 5).ok());

  // Same Entry objects for untouched keys (address equality), a fresh one
  // for the overwritten key, and the old version is unperturbed.
  EXPECT_EQ(&*v1.entries.find("a"), &*v2.entries.find("a"));
  EXPECT_EQ(&*v1.entries.find("c"), &*v2.entries.find("c"));
  EXPECT_NE(&*v1.entries.find("b"), &*v2.entries.find("b"));
  EXPECT_EQ(v1.entries.at("b"), "2");
  EXPECT_EQ(v2.entries.at("b"), "new");

  // Content equality still behaves like a value type.
  Page v3 = v2;
  EXPECT_TRUE(v3 == v2);
  EXPECT_FALSE(v1 == v2);
  ASSERT_TRUE(ApplyPageOp(&v3, InsertOp("d", "4"), 6).ok());
  EXPECT_FALSE(v3 == v2);
  EXPECT_EQ(v2.entries.size(), 3u);
}

// ---------------------------------------------------------------------- //
// SegmentStore: write path + SCL

TEST(SegmentStore, AppendAdvancesScl) {
  auto store = MakeStore();
  ASSERT_TRUE(store.Append({DataRecord(1, 0, 7, 0, FormatOp())}).ok());
  ASSERT_TRUE(store.Append({DataRecord(2, 1, 7, 1, InsertOp("k", "v"))}).ok());
  EXPECT_EQ(store.scl(), 2u);
  EXPECT_EQ(store.stats().records_received, 2u);
}

TEST(SegmentStore, DuplicateAppendCounted) {
  auto store = MakeStore();
  auto rec = DataRecord(1, 0, 7, 0, FormatOp());
  ASSERT_TRUE(store.Append({rec}).ok());
  ASSERT_TRUE(store.Append({rec}).ok());
  EXPECT_EQ(store.stats().records_duplicate, 1u);
}

TEST(SegmentStore, WrongPgRejected) {
  auto store = MakeStore();
  auto rec = DataRecord(1, 0, 7, 0, FormatOp());
  rec.pg = 3;
  EXPECT_FALSE(store.Append({rec}).ok());
}

TEST(SegmentStore, EpochChecks) {
  auto store = MakeStore();
  EXPECT_TRUE(store.CheckEpochs({1, 1}).ok());
  EXPECT_TRUE(store.CheckEpochs({0, 1}).IsStaleEpoch());
  // Newer volume epoch teaches the node.
  EXPECT_TRUE(store.CheckEpochs({5, 1}).ok());
  EXPECT_EQ(store.volume_epoch(), 5u);
  EXPECT_TRUE(store.CheckEpochs({4, 1}).IsStaleEpoch());
  EXPECT_TRUE(store.CheckEpochs({5, 0}).IsStaleEpoch());
}

// ---------------------------------------------------------------------- //
// SegmentStore: coalesce + reads

TEST(SegmentStore, CoalesceMaterializesVersions) {
  auto store = MakeStore();
  ASSERT_TRUE(store.Append({DataRecord(1, 0, 7, 0, FormatOp()),
                            DataRecord(2, 1, 7, 1, InsertOp("a", "1")),
                            DataRecord(3, 2, 7, 2, InsertOp("b", "2"))})
                  .ok());
  EXPECT_EQ(store.CoalesceStep(100), 3u);
  EXPECT_EQ(store.VersionCount(7), 3u);  // out-of-place: one per record
  auto page = store.ReadPage(7, 3);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->entries.size(), 2u);
}

TEST(SegmentStore, OnDemandMaterializationWithoutCoalesce) {
  auto store = MakeStore();
  ASSERT_TRUE(store.Append({DataRecord(1, 0, 7, 0, FormatOp()),
                            DataRecord(2, 1, 7, 1, InsertOp("a", "1"))})
                  .ok());
  // No CoalesceStep: the read materializes on demand (§2.2).
  auto page = store.ReadPage(7, 2);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->page_lsn, 2u);
  EXPECT_EQ(page->entries.at("a"), "1");
}

TEST(SegmentStore, ReadsAtOlderLsnSeeOlderVersion) {
  auto store = MakeStore();
  ASSERT_TRUE(store.Append({DataRecord(1, 0, 7, 0, FormatOp()),
                            DataRecord(2, 1, 7, 1, InsertOp("k", "v1")),
                            DataRecord(3, 2, 7, 2, InsertOp("k", "v2"))})
                  .ok());
  store.CoalesceStep(100);
  auto old_page = store.ReadPage(7, 2);
  ASSERT_TRUE(old_page.ok());
  EXPECT_EQ(old_page->entries.at("k"), "v1");
  auto new_page = store.ReadPage(7, 3);
  ASSERT_TRUE(new_page.ok());
  EXPECT_EQ(new_page->entries.at("k"), "v2");
}

TEST(SegmentStore, ReadAboveSclRejected) {
  auto store = MakeStore();
  ASSERT_TRUE(store.Append({DataRecord(1, 0, 7, 0, FormatOp())}).ok());
  EXPECT_EQ(store.ReadPage(7, 5).status().code(), StatusCode::kUnavailable);
}

TEST(SegmentStore, ReadBelowPgmrplRejected) {
  auto store = MakeStore();
  ASSERT_TRUE(store.Append({DataRecord(1, 0, 7, 0, FormatOp()),
                            DataRecord(2, 1, 7, 1, InsertOp("a", "1"))})
                  .ok());
  store.ObservePgmrpl(2);
  EXPECT_EQ(store.ReadPage(7, 1).status().code(), StatusCode::kOutOfRange);
}

TEST(SegmentStore, TailSegmentServesNoPages) {
  auto store = MakeStore(/*is_full=*/false);
  ASSERT_TRUE(store.Append({DataRecord(1, 0, 7, 0, FormatOp())}).ok());
  EXPECT_EQ(store.CoalesceStep(100), 0u);
  EXPECT_EQ(store.ReadPage(7, 1).status().code(), StatusCode::kNotSupported);
  EXPECT_EQ(store.scl(), 1u) << "tail still tracks the log chain";
}

// ---------------------------------------------------------------------- //
// SegmentStore: GC, backup, scrub

TEST(SegmentStore, GcRequiresBackupAndCoalesce) {
  auto store = MakeStore();
  ASSERT_TRUE(store.Append({DataRecord(1, 0, 7, 0, FormatOp()),
                            DataRecord(2, 1, 7, 1, InsertOp("a", "1"))})
                  .ok());
  EXPECT_EQ(store.GarbageCollect(), 0u) << "nothing backed up yet";
  store.CoalesceStep(100);
  store.MarkBackedUp(2);
  EXPECT_GT(store.GarbageCollect(), 0u);
  EXPECT_EQ(store.hot_log().RecordCount(), 0u);
  // Reads still work from materialized versions.
  EXPECT_TRUE(store.ReadPage(7, 2).ok());
}

TEST(SegmentStore, VersionGcKeepsNewestAtOrBelowPgmrpl) {
  auto store = MakeStore();
  ASSERT_TRUE(store.Append({DataRecord(1, 0, 7, 0, FormatOp()),
                            DataRecord(2, 1, 7, 1, InsertOp("k", "v1")),
                            DataRecord(3, 2, 7, 2, InsertOp("k", "v2")),
                            DataRecord(4, 3, 7, 3, InsertOp("k", "v3"))})
                  .ok());
  store.CoalesceStep(100);
  EXPECT_EQ(store.VersionCount(7), 4u);
  store.ObservePgmrpl(3);
  store.GarbageCollect();
  // Versions 1,2 collected; version 3 (newest <= PGMRPL) and 4 retained.
  EXPECT_EQ(store.VersionCount(7), 2u);
  auto page = store.ReadPage(7, 3);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->entries.at("k"), "v2");
}

TEST(SegmentStore, PendingBackupOnlyChainComplete) {
  auto store = MakeStore();
  ASSERT_TRUE(store.Append({DataRecord(1, 0, 7, 0, FormatOp()),
                            DataRecord(3, 2, 7, 2, InsertOp("b", "2"))})
                  .ok());
  auto pending = store.PendingBackup(100);
  ASSERT_EQ(pending.size(), 1u) << "record 3 is beyond SCL (gap at 2)";
  EXPECT_EQ(pending[0].lsn, 1u);
}

TEST(SegmentStore, ScrubDetectsAndDropsCorruption) {
  auto store = MakeStore();
  ASSERT_TRUE(store.Append({DataRecord(1, 0, 7, 0, FormatOp()),
                            DataRecord(2, 1, 7, 1, InsertOp("a", "1"))})
                  .ok());
  EXPECT_EQ(store.Scrub(), 0u);
  ASSERT_TRUE(store.CorruptRecordForTest(2));
  EXPECT_EQ(store.Scrub(), 1u);
  EXPECT_EQ(store.scl(), 1u) << "corrupt record dropped; SCL rewound";
  // Gossip redelivery heals.
  ASSERT_TRUE(
      store.AbsorbGossip({DataRecord(2, 1, 7, 1, InsertOp("a", "1"))}).ok());
  EXPECT_EQ(store.scl(), 2u);
}

// ---------------------------------------------------------------------- //
// SegmentStore: truncation & hydration

TEST(SegmentStore, TruncationDropsAnnulledVersions) {
  auto store = MakeStore();
  ASSERT_TRUE(store.Append({DataRecord(1, 0, 7, 0, FormatOp()),
                            DataRecord(2, 1, 7, 1, InsertOp("k", "v1")),
                            DataRecord(3, 2, 7, 2, InsertOp("k", "dead"))})
                  .ok());
  store.CoalesceStep(100);
  VolumeEpochUpdateRequest request;
  request.segment = 0;
  request.new_epoch = 2;
  request.truncation = log::TruncationRange{3, 1000};
  ASSERT_TRUE(store.UpdateVolumeEpoch(request).ok());
  EXPECT_EQ(store.scl(), 2u);
  auto page = store.ReadPage(7, 2);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->entries.at("k"), "v1") << "annulled version dropped";
  // Stale epoch update rejected.
  EXPECT_TRUE(store.UpdateVolumeEpoch(request).IsStaleEpoch());
}

TEST(SegmentStore, HydrationViaGossipRecords) {
  auto donor = MakeStore();
  ASSERT_TRUE(donor.Append({DataRecord(1, 0, 7, 0, FormatOp()),
                            DataRecord(2, 1, 7, 1, InsertOp("a", "1")),
                            DataRecord(3, 2, 7, 2, InsertOp("b", "2"))})
                  .ok());
  donor.CoalesceStep(100);

  quorum::SegmentInfo fresh_info{6, 110, 2, true};
  SegmentStore fresh(fresh_info, 0, TestConfig(), 1, /*hydrated=*/false);
  fresh.BeginHydration(/*target_scl=*/3);
  EXPECT_FALSE(fresh.hydrated());

  HydrationRequest request{0, 6, fresh.scl(), true};
  auto response = donor.BuildHydration(request);
  ASSERT_TRUE(fresh.AbsorbHydration(response).ok());
  EXPECT_TRUE(fresh.hydrated());
  EXPECT_EQ(fresh.scl(), 3u);
  auto page = fresh.ReadPage(7, 3);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->entries.size(), 2u);
}

TEST(SegmentStore, MembershipInstallMonotone) {
  auto store = MakeStore();
  auto next = TestConfig().BeginReplace(5, quorum::SegmentInfo{6, 110, 2, true});
  MembershipUpdateRequest request;
  request.segment = 0;
  request.expected_epoch = 1;
  request.config = *next;
  ASSERT_TRUE(store.UpdateMembership(request).ok());
  EXPECT_EQ(store.config().epoch(), 2u);
  EXPECT_TRUE(store.UpdateMembership(request).IsStaleEpoch());
}

// ---------------------------------------------------------------------- //
// SimDisk & ObjectStore

TEST(SimDisk, FifoQueueing) {
  sim::Simulator sim;
  DiskOptions options;
  options.write_latency = LatencyDistribution::Constant(100);
  options.bytes_per_us = 0;
  SimDisk disk(&sim, options);
  std::vector<int> order;
  disk.SubmitWrite(10, [&]() { order.push_back(1); });
  disk.SubmitWrite(10, [&]() { order.push_back(2); });
  EXPECT_EQ(disk.QueueDepth(), 2u);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.Now(), 200) << "serial service";
  EXPECT_EQ(disk.ops_completed(), 2u);
}

TEST(ObjectStore, PutThenGetVisibleAfterLatency) {
  sim::Simulator sim;
  ObjectStore store(&sim);
  std::vector<log::RedoRecord> records = {
      DataRecord(1, 0, 7, 0, FormatOp()),
      DataRecord(2, 1, 7, 1, InsertOp("a", "1"))};
  Lsn archived = kInvalidLsn;
  store.Put(0, records, [&](Lsn max_lsn) { archived = max_lsn; });
  sim.Run();
  EXPECT_EQ(archived, 2u);
  EXPECT_EQ(store.MaxArchivedLsn(0), 2u);

  std::vector<log::RedoRecord> fetched;
  store.Get(0, 1, 10, [&](std::vector<log::RedoRecord> r) {
    fetched = std::move(r);
  });
  sim.Run();
  EXPECT_EQ(fetched.size(), 2u);
  EXPECT_GT(store.bytes_stored(), 0u);
}

TEST(ObjectStore, DeduplicatesRecords) {
  sim::Simulator sim;
  ObjectStore store(&sim);
  auto rec = DataRecord(1, 0, 7, 0, FormatOp());
  store.Put(0, {rec}, [](Lsn) {});
  store.Put(0, {rec}, [](Lsn) {});
  sim.Run();
  EXPECT_EQ(store.bytes_stored(), rec.SerializedSize());
}

}  // namespace
}  // namespace aurora::storage

// Regression tests for truncation-history propagation (annulled timelines
// must never be resurrected) and archive-reset semantics.
namespace aurora::storage {
namespace {

quorum::PgConfig RegressionConfig() {
  std::vector<quorum::SegmentInfo> members;
  for (SegmentId id = 0; id < 6; ++id) {
    members.push_back({id, static_cast<NodeId>(100 + id),
                       static_cast<AzId>(id / 2), true});
  }
  return quorum::PgConfig::Create(0, quorum::QuorumModel::kUniform46,
                                  members);
}

log::RedoRecord ChainRecord(Lsn lsn, Lsn prev) {
  log::RedoRecord rec;
  rec.lsn = lsn;
  rec.prev_lsn_segment = prev;
  rec.prev_lsn_block = 0;
  rec.pg = 0;
  rec.block = 3;
  PageOp op;
  op.type = PageOpType::kFormat;
  op.page_type = PageType::kLeaf;
  rec.payload = EncodePageOp(op);
  return rec;
}

TEST(SegmentStore, HydrationCarriesTruncationHistory) {
  // Donor lived through a recovery that annulled [3, 100].
  SegmentStore donor({0, 100, 0, true}, 0, RegressionConfig(), 1);
  ASSERT_TRUE(donor.Append({ChainRecord(1, 0), ChainRecord(2, 1),
                            ChainRecord(3, 2)}).ok());
  VolumeEpochUpdateRequest epoch_update;
  epoch_update.segment = 0;
  epoch_update.new_epoch = 2;
  epoch_update.truncation = log::TruncationRange{3, 100};
  ASSERT_TRUE(donor.UpdateVolumeEpoch(epoch_update).ok());
  ASSERT_TRUE(donor.Append({ChainRecord(101, 2)}).ok());
  ASSERT_EQ(donor.scl(), 101u);

  // A fresh segment hydrates from the donor, then is offered the annulled
  // record (e.g. from a stale archive): it must refuse it.
  SegmentStore fresh({9, 109, 2, true}, 0, RegressionConfig(), 2,
                     /*hydrated=*/false);
  fresh.BeginHydration(101);
  HydrationRequest request{0, 9, kInvalidLsn, true};
  ASSERT_TRUE(fresh.AbsorbHydration(donor.BuildHydration(request)).ok());
  EXPECT_TRUE(fresh.hydrated());
  EXPECT_EQ(fresh.scl(), 101u);
  ASSERT_TRUE(fresh.AbsorbGossip({ChainRecord(3, 2)}).ok());
  EXPECT_FALSE(fresh.hot_log().Contains(3))
      << "annulled record resurrected through hydration";
}

TEST(SegmentStore, ResetToArchivePreservesTruncations) {
  SegmentStore store({0, 100, 0, true}, 0, RegressionConfig(), 1);
  ASSERT_TRUE(store.Append({ChainRecord(1, 0), ChainRecord(2, 1)}).ok());
  VolumeEpochUpdateRequest epoch_update;
  epoch_update.segment = 0;
  epoch_update.new_epoch = 2;
  epoch_update.truncation = log::TruncationRange{2, 50};
  ASSERT_TRUE(store.UpdateVolumeEpoch(epoch_update).ok());

  // Restore from an archive that (legitimately) still contains the
  // annulled record 2: it must stay annulled.
  store.ResetToArchive({ChainRecord(1, 0), ChainRecord(2, 1)},
                       /*restore_point=*/60, /*new_epoch=*/3);
  EXPECT_EQ(store.scl(), 1u);
  EXPECT_FALSE(store.hot_log().Contains(2));
  // And the reset installed its own range above the restore point.
  ASSERT_TRUE(store.Append({ChainRecord(61, 1)}).ok());
  EXPECT_FALSE(store.hot_log().Contains(61))
      << "old-timeline record above the restore point must be annulled";
}

}  // namespace
}  // namespace aurora::storage
