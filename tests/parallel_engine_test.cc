// Sharded parallel event engine (DESIGN.md §9) — engine-level contract.
//
// The tentpole guarantee: for a fixed sharded simulator, the serial
// canonical executor (Run/RunUntil/Step) and the windowed parallel
// executor (RunSharded) produce the SAME execution — same schedule
// fingerprint, same executed-event count, same actor state — for every
// worker-thread count. And with a single shard, the sharded engine is
// bit-identical to the classic unsharded engine.
//
// The mesh below is a worst-case synthetic actor graph: per-shard tickers
// with coprime periods (constant same-time collisions across shards),
// cross-shard sends at exactly the lookahead bound, and a chain of global
// events that read cross-shard state at barriers.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/simulator.h"

namespace aurora::sim {
namespace {

// Deterministic parameter hash (no RNG: draws must not depend on execution
// interleaving, so every delay is a pure function of (seed, shard, tick)).
uint64_t Mix(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t h = a * 0x9e3779b97f4a7c15ULL ^ (b + 0xbf58476d1ce4e5b9ULL) * 31 ^
               (c + 0x94d049bb133111ebULL) * 127;
  h ^= h >> 31;
  h *= 0x2545f4914f6cdd1dULL;
  h ^= h >> 29;
  return h;
}

constexpr SimDuration kLookahead = 25;
constexpr SimTime kDeadline = 20000;

struct MeshState {
  std::vector<uint64_t> local_ticks;
  std::vector<uint64_t> remote_hits;
  std::vector<uint64_t> global_snapshots;
  // Per sending shard: EventId returned by its last cross-shard ScheduleOn
  // (mailbox sends are uncancellable and return kInvalidEvent; serial
  // direct inserts return a real id). Indexed by sender so concurrent
  // workers never touch the same slot.
  std::vector<EventId> last_cross_id;
  std::vector<uint8_t> saw_cross_send;
};

void Tick(Simulator* sim, MeshState* st, uint64_t seed, uint32_t shard,
          uint32_t nshards, uint64_t tick) {
  st->local_ticks[shard]++;
  if (sim->Now() >= kDeadline - 200) return;
  if (nshards > 1 && tick % 3 == 0) {
    const uint32_t dst = (shard + 1 + tick / 3) % nshards;
    if (dst != shard) {
      st->saw_cross_send[shard] = 1;
      st->last_cross_id[shard] = sim->ScheduleOn(
          dst, kLookahead + Mix(seed, shard, tick) % 40,
          [st, dst] { st->remote_hits[dst]++; }, "mesh.remote");
    }
  }
  sim->Schedule(
      1 + Mix(seed, shard, tick * 2 + 1) % 37,
      [sim, st, seed, shard, nshards, tick] {
        Tick(sim, st, seed, shard, nshards, tick + 1);
      },
      "mesh.tick");
}

void GlobalPulse(Simulator* sim, MeshState* st, uint64_t seed, int remaining) {
  // Reads cross-shard state: only legal because global events execute at
  // exact-key barriers with every shard quiesced.
  uint64_t sum = 0;
  for (uint64_t v : st->local_ticks) sum = sum * 31 + v;
  for (uint64_t v : st->remote_hits) sum = sum * 31 + v;
  st->global_snapshots.push_back(sum);
  if (remaining > 0) {
    sim->ScheduleGlobal(
        211 + Mix(seed, 0xA0, remaining) % 97,
        [sim, st, seed, remaining] {
          GlobalPulse(sim, st, seed, remaining - 1);
        },
        "mesh.global");
  }
}

struct MeshResult {
  uint64_t fingerprint = 0;
  uint64_t executed = 0;
  SimTime end = 0;
  size_t pending = 0;
  MeshState state;
};

// threads == 0: serial canonical RunUntil. threads >= 1: RunSharded.
// nshards == 0: classic unsharded engine (no ConfigureShards call).
MeshResult RunMesh(uint64_t seed, uint32_t nshards, int threads) {
  Simulator sim(seed + 1);
  const uint32_t effective = nshards == 0 ? 1 : nshards;
  if (nshards > 0) {
    sim.ConfigureShards(nshards);
    sim.SetLookahead(kLookahead);
  }
  auto st = std::make_unique<MeshState>();
  st->local_ticks.assign(effective, 0);
  st->remote_hits.assign(effective, 0);
  st->last_cross_id.assign(effective, kInvalidEvent);
  st->saw_cross_send.assign(effective, 0);
  for (uint32_t s = 0; s < effective; ++s) {
    Simulator::ShardScope scope(&sim, nshards > 0 ? s : 0);
    sim.Schedule(
        1 + s,
        [sim_p = &sim, st_p = st.get(), seed, s, effective] {
          Tick(sim_p, st_p, seed, s, effective, 0);
        },
        "mesh.start");
  }
  sim.ScheduleGlobal(
      97, [sim_p = &sim, st_p = st.get(), seed] { GlobalPulse(sim_p, st_p, seed, 50); },
      "mesh.global");

  if (threads == 0) {
    sim.RunUntil(kDeadline);
  } else {
    sim.RunSharded(kDeadline, threads);
  }

  MeshResult r;
  r.fingerprint = sim.ScheduleFingerprint();
  r.executed = sim.ExecutedEvents();
  r.end = sim.Now();
  r.pending = sim.PendingEvents();
  r.state = *st;
  return r;
}

bool AnyCrossSend(const MeshState& st) {
  for (uint8_t v : st.saw_cross_send) {
    if (v) return true;
  }
  return false;
}

void ExpectSameExecution(const MeshResult& a, const MeshResult& b,
                         const char* what) {
  EXPECT_EQ(a.fingerprint, b.fingerprint) << what;
  EXPECT_EQ(a.executed, b.executed) << what;
  EXPECT_EQ(a.end, b.end) << what;
  EXPECT_EQ(a.state.local_ticks, b.state.local_ticks) << what;
  EXPECT_EQ(a.state.remote_hits, b.state.remote_hits) << what;
  EXPECT_EQ(a.state.global_snapshots, b.state.global_snapshots) << what;
}

TEST(ParallelEngine, SingleShardIsBitIdenticalToUnsharded) {
  // ConfigureShards(1) is the determinism oracle: same stamps, same
  // order, same fingerprint as the classic engine — and RunSharded(1)
  // on it must change nothing either.
  const MeshResult classic = RunMesh(42, 0, 0);
  const MeshResult oracle_serial = RunMesh(42, 1, 0);
  const MeshResult oracle_windowed = RunMesh(42, 1, 1);
  EXPECT_GT(classic.executed, 1000u);
  ExpectSameExecution(classic, oracle_serial, "sharded(1) serial vs classic");
  ExpectSameExecution(classic, oracle_windowed,
                      "sharded(1) windowed vs classic");
}

TEST(ParallelEngine, ParallelMatchesSerialForEveryThreadCount) {
  for (uint32_t nshards : {2u, 3u, 4u}) {
    const MeshResult serial = RunMesh(7, nshards, 0);
    ASSERT_GT(serial.executed, 1000u);
    ASSERT_TRUE(AnyCrossSend(serial.state));
    ASSERT_GT(serial.state.global_snapshots.size(), 10u);
    for (int threads : {1, 2, 4, 8}) {
      const MeshResult parallel = RunMesh(7, nshards, threads);
      ExpectSameExecution(serial, parallel,
                          ("shards=" + std::to_string(nshards) +
                           " threads=" + std::to_string(threads))
                              .c_str());
      EXPECT_EQ(parallel.pending, 0u);
    }
  }
}

TEST(ParallelEngine, CrossShardMailboxSendsAreUncancellable) {
  // Serial canonical execution inserts cross-shard events directly (real
  // EventId); during windowed execution they travel by mailbox and the
  // send returns kInvalidEvent. Both produce the same schedule.
  const MeshResult serial = RunMesh(9, 2, 0);
  const MeshResult windowed = RunMesh(9, 2, 2);
  ASSERT_TRUE(AnyCrossSend(serial.state));
  ASSERT_TRUE(AnyCrossSend(windowed.state));
  for (uint32_t s = 0; s < 2; ++s) {
    if (serial.state.saw_cross_send[s]) {
      EXPECT_NE(serial.state.last_cross_id[s], kInvalidEvent) << s;
    }
    if (windowed.state.saw_cross_send[s]) {
      EXPECT_EQ(windowed.state.last_cross_id[s], kInvalidEvent) << s;
    }
  }
  EXPECT_EQ(serial.fingerprint, windowed.fingerprint);
}

TEST(ParallelEngine, CancelAcrossShards) {
  Simulator sim(3);
  sim.ConfigureShards(3);
  sim.SetLookahead(10);

  std::vector<int> fired(6, 0);
  std::vector<EventId> ids;
  for (uint32_t s = 0; s < 3; ++s) {
    Simulator::ShardScope scope(&sim, s);
    for (int k = 0; k < 2; ++k) {
      const size_t slot = s * 2 + k;
      ids.push_back(sim.Schedule(
          100 + 10 * static_cast<SimDuration>(slot),
          [&fired, slot] { fired[slot]++; }, "cancel.probe"));
    }
  }
  EXPECT_EQ(sim.PendingEvents(), 6u);

  // Cancel one event per shard; tombstones linger until reclaimed.
  sim.Cancel(ids[1]);
  sim.Cancel(ids[2]);
  sim.Cancel(ids[5]);
  EXPECT_EQ(sim.PendingEvents(), 3u);
  EXPECT_EQ(sim.DeadHeapEntriesForTest(), 3u);

  // Double-cancel and stale ids are harmless no-ops.
  sim.Cancel(ids[1]);
  sim.Cancel(kInvalidEvent);
  EXPECT_EQ(sim.PendingEvents(), 3u);

  sim.RunSharded(1000, 2);
  EXPECT_EQ(fired, (std::vector<int>{1, 0, 0, 1, 1, 0}));
  EXPECT_EQ(sim.ExecutedEvents(), 3u);
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.DeadHeapEntriesForTest(), 0u);

  // An id from a long-fired event is stale by generation: cancelling it
  // must not disturb anything scheduled afterwards.
  sim.Cancel(ids[0]);
  bool late = false;
  {
    Simulator::ShardScope scope(&sim, 0);
    sim.Schedule(5, [&late] { late = true; }, "cancel.late");
  }
  sim.Cancel(ids[3]);
  sim.RunSharded(sim.Now() + 100, 1);
  EXPECT_TRUE(late);
}

TEST(ParallelEngine, PendingAndExecutedAggregateAllQueues) {
  Simulator sim(5);
  sim.ConfigureShards(2);
  sim.SetLookahead(5);
  int hits = 0;
  for (uint32_t s = 0; s < 2; ++s) {
    Simulator::ShardScope scope(&sim, s);
    sim.Schedule(10, [&hits] { hits++; }, "agg.shard");
  }
  sim.ScheduleGlobal(20, [&hits] { hits++; }, "agg.global");
  EXPECT_EQ(sim.PendingEvents(), 3u);
  sim.RunSharded(100, 2);
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(sim.ExecutedEvents(), 3u);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(ParallelEngine, RunShardedLandsClockOnDeadline) {
  Simulator sim(8);
  sim.ConfigureShards(2);
  sim.SetLookahead(5);
  {
    Simulator::ShardScope scope(&sim, 1);
    sim.Schedule(10, [] {}, "clock.one");
  }
  sim.RunSharded(500, 2);
  EXPECT_EQ(sim.Now(), 500);
  // And a second leg continues from there.
  sim.RunShardedFor(250, 2);
  EXPECT_EQ(sim.Now(), 750);
}

// ---------------------------------------------------------------------------
// Pairwise lookahead matrix + batched-mailbox engine stats.
//
// A second mesh whose cross-shard delays size themselves with
// Simulator::LookaheadTo — the contract every non-network cross-shard
// hop must follow once the matrix replaces the scalar bound.

struct PairMesh {
  std::vector<uint64_t> cells;
  std::vector<uint64_t> cross_sends;
};

void PairTick(Simulator* sim, PairMesh* st, uint64_t seed, uint32_t shard,
              uint32_t nshards, uint64_t tick) {
  st->cells[shard] = st->cells[shard] * 0x9e3779b97f4a7c15ULL + tick + 1;
  if (sim->Now() >= kDeadline - 300) return;
  if (tick % 2 == 0) {
    const uint32_t dst = (shard + 1 + tick / 2) % nshards;
    if (dst != shard) {
      st->cross_sends[shard]++;
      sim->ScheduleOn(
          dst, sim->LookaheadTo(dst) + Mix(seed, shard, tick) % 23,
          [st, dst] { st->cells[dst] ^= 0x5bd1e995; }, "pair.remote");
    }
  }
  sim->Schedule(
      1 + Mix(seed, shard, tick * 2 + 1) % 13,
      [sim, st, seed, shard, nshards, tick] {
        PairTick(sim, st, seed, shard, nshards, tick + 1);
      },
      "pair.tick");
}

struct PairResult {
  uint64_t fingerprint = 0;
  uint64_t executed = 0;
  uint64_t state_hash = 0;
  uint64_t cross_sends = 0;
  Simulator::EngineStats stats;
};

// matrix_bonus < 0: scalar lookahead only. Otherwise entry (s, d) is
// kLookahead + matrix_bonus + ((s * 3 + d) % 3) * 20 — asymmetric, and
// with matrix_bonus == 0 the (s, d) = (0, 1)-class entries equal the
// scalar bound exactly.
PairResult RunPairMesh(uint64_t seed, int threads, int matrix_bonus) {
  constexpr uint32_t kShards = 3;
  Simulator sim(seed);
  sim.ConfigureShards(kShards);
  sim.SetLookahead(kLookahead);
  if (matrix_bonus >= 0) {
    for (uint32_t s = 0; s < kShards; ++s) {
      for (uint32_t d = 0; d < kShards; ++d) {
        if (s == d) continue;
        sim.SetPairwiseLookahead(
            s, d, kLookahead + matrix_bonus + ((s * 3 + d) % 3) * 20);
      }
    }
  }
  auto st = std::make_unique<PairMesh>();
  st->cells.assign(kShards, seed);
  st->cross_sends.assign(kShards, 0);
  for (uint32_t s = 0; s < kShards; ++s) {
    Simulator::ShardScope scope(&sim, s);
    sim.Schedule(
        1 + s,
        [sim_p = &sim, st_p = st.get(), seed, s] {
          PairTick(sim_p, st_p, seed, s, kShards, 0);
        },
        "pair.start");
  }
  if (threads == 0) {
    sim.RunUntil(kDeadline);
  } else {
    sim.RunSharded(kDeadline, threads);
  }
  PairResult r;
  r.fingerprint = sim.ScheduleFingerprint();
  r.executed = sim.ExecutedEvents();
  for (uint64_t c : st->cells) r.state_hash = r.state_hash * 31 + c;
  for (uint64_t c : st->cross_sends) r.cross_sends += c;
  r.stats = sim.engine_stats();
  return r;
}

TEST(ParallelEngine, PairwiseLookaheadMatchesSerial) {
  // Asymmetric matrix (entries 45/65/85 vs scalar 25): the windowed
  // engine must still execute the exact serial canonical schedule.
  const PairResult serial = RunPairMesh(13, 0, 20);
  ASSERT_GT(serial.executed, 1000u);
  ASSERT_GT(serial.cross_sends, 100u);
  for (int threads : {1, 2, 4, 8}) {
    const PairResult parallel = RunPairMesh(13, threads, 20);
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint) << threads;
    EXPECT_EQ(parallel.executed, serial.executed) << threads;
    EXPECT_EQ(parallel.state_hash, serial.state_hash) << threads;
  }
}

TEST(ParallelEngine, WiderMatrixEntriesMeanFewerWindows) {
  // Raising every pairwise entry above the scalar bound must widen the
  // conservative windows — strictly fewer barrier crossings for the
  // same wall of simulated time.
  const PairResult scalar = RunPairMesh(13, 2, -1);
  const PairResult wide = RunPairMesh(13, 2, 20);
  ASSERT_GT(scalar.stats.windows, 0u);
  EXPECT_LT(wide.stats.windows, scalar.stats.windows);
}

TEST(ParallelEngine, PairwiseGettersAndContextFallback) {
  Simulator sim(1);
  sim.ConfigureShards(3);
  sim.SetLookahead(25);
  EXPECT_EQ(sim.PairwiseLookahead(0, 1), 25);  // unset matrix: scalar
  sim.SetPairwiseLookahead(0, 1, 70);
  sim.SetPairwiseLookahead(1, 0, 40);
  EXPECT_EQ(sim.PairwiseLookahead(0, 1), 70);
  EXPECT_EQ(sim.PairwiseLookahead(1, 0), 40);
  EXPECT_EQ(sim.PairwiseLookahead(0, 2), 25);  // untouched pair: scalar
  // Outside any shard context LookaheadTo degrades to the scalar bound.
  EXPECT_EQ(sim.LookaheadTo(1), 25);
  // SetLookahead resets the matrix.
  sim.SetLookahead(30);
  EXPECT_EQ(sim.PairwiseLookahead(0, 1), 30);
}

TEST(ParallelEngine, EngineStatsCountWindowsAndMailboxTraffic) {
  // Windowed execution batches every cross-shard send into the source
  // shard's outbox: total mailed messages must equal the cross sends the
  // mesh made, batches can't exceed messages, and the serial path (direct
  // heap inserts, no windows) must report zeros.
  const PairResult serial = RunPairMesh(21, 0, 0);
  EXPECT_EQ(serial.stats.windows, 0u);
  EXPECT_EQ(serial.stats.mailbox_batches, 0u);
  EXPECT_EQ(serial.stats.mailbox_msgs, 0u);
  ASSERT_GT(serial.cross_sends, 100u);

  const PairResult windowed = RunPairMesh(21, 4, 0);
  EXPECT_EQ(windowed.fingerprint, serial.fingerprint);
  EXPECT_GT(windowed.stats.windows, 0u);
  EXPECT_EQ(windowed.stats.mailbox_msgs, windowed.cross_sends);
  EXPECT_GE(windowed.stats.mailbox_batches, 1u);
  EXPECT_LE(windowed.stats.mailbox_batches, windowed.stats.mailbox_msgs);
}

// ---------------------------------------------------------------------------
// Worker-pool round-handoff stress: 8 shards with a 2us lookahead gives
// thousands of tiny claim rounds per leg, and back-to-back RunShardedFor
// legs re-broadcast the round counter constantly. A stale claim from a
// previous round shows up as a TSan race or a divergence from the serial
// reference schedule. (This binary is part of the TSan sweep.)

void TinyTick(Simulator* sim, std::vector<uint64_t>* cells, uint32_t shard,
              uint64_t tick, SimTime deadline) {
  (*cells)[shard] += tick * 0x9e3779b97f4a7c15ULL + 1;
  if (sim->Now() >= deadline - 10) return;
  if (tick % 5 == 0) {
    const uint32_t dst =
        (shard + 1 + tick / 5) % static_cast<uint32_t>(cells->size());
    if (dst != shard) {
      sim->ScheduleOn(
          dst, sim->LookaheadTo(dst) + tick % 7,
          [cells, dst] { (*cells)[dst] ^= 0x2545f4914f6cdd1dULL; },
          "tiny.remote");
    }
  }
  sim->Schedule(
      1 + tick % 3,
      [sim, cells, shard, tick, deadline] {
        TinyTick(sim, cells, shard, tick + 1, deadline);
      },
      "tiny.tick");
}

TEST(ParallelEngine, RepeatedTinyWindowRoundHandoff) {
  constexpr SimTime kEnd = 4000;
  auto run = [](int threads) {
    Simulator sim(77);
    sim.ConfigureShards(8);
    sim.SetLookahead(2);
    std::vector<uint64_t> cells(8, 1);
    for (uint32_t s = 0; s < 8; ++s) {
      Simulator::ShardScope scope(&sim, s);
      sim.Schedule(
          1 + s % 2,
          [sim_p = &sim, cells_p = &cells, s] {
            TinyTick(sim_p, cells_p, s, 0, kEnd);
          },
          "tiny.start");
    }
    if (threads == 0) {
      sim.RunUntil(kEnd);
    } else {
      for (int leg = 0; leg < 40; ++leg) sim.RunShardedFor(100, threads);
    }
    uint64_t hash = sim.ScheduleFingerprint();
    for (uint64_t c : cells) hash = hash * 31 + c;
    return std::pair<uint64_t, uint64_t>(hash, sim.ExecutedEvents());
  };
  const auto serial = run(0);
  ASSERT_GT(serial.second, 5000u);
  for (int threads : {2, 8}) {
    const auto parallel = run(threads);
    EXPECT_EQ(parallel.first, serial.first) << "threads " << threads;
    EXPECT_EQ(parallel.second, serial.second) << "threads " << threads;
  }
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(ParallelEngineDeath, CrossShardSendBelowLookaheadAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Simulator sim(1);
        sim.ConfigureShards(2);
        sim.SetLookahead(50);
        {
          Simulator::ShardScope scope(&sim, 0);
          sim.Schedule(
              10,
              [&sim] {
                // Worker-context cross-shard send under the lookahead
                // bound violates the conservative-synchronization
                // contract; the engine must refuse loudly, not corrupt
                // the canonical order.
                sim.ScheduleOn(1, 5, [] {}, "bad.send");
              },
              "bad.parent");
        }
        sim.RunUntil(100);
      },
      "lookahead");
}
#endif  // GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace aurora::sim
