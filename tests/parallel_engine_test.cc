// Sharded parallel event engine (DESIGN.md §9) — engine-level contract.
//
// The tentpole guarantee: for a fixed sharded simulator, the serial
// canonical executor (Run/RunUntil/Step) and the windowed parallel
// executor (RunSharded) produce the SAME execution — same schedule
// fingerprint, same executed-event count, same actor state — for every
// worker-thread count. And with a single shard, the sharded engine is
// bit-identical to the classic unsharded engine.
//
// The mesh below is a worst-case synthetic actor graph: per-shard tickers
// with coprime periods (constant same-time collisions across shards),
// cross-shard sends at exactly the lookahead bound, and a chain of global
// events that read cross-shard state at barriers.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/simulator.h"

namespace aurora::sim {
namespace {

// Deterministic parameter hash (no RNG: draws must not depend on execution
// interleaving, so every delay is a pure function of (seed, shard, tick)).
uint64_t Mix(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t h = a * 0x9e3779b97f4a7c15ULL ^ (b + 0xbf58476d1ce4e5b9ULL) * 31 ^
               (c + 0x94d049bb133111ebULL) * 127;
  h ^= h >> 31;
  h *= 0x2545f4914f6cdd1dULL;
  h ^= h >> 29;
  return h;
}

constexpr SimDuration kLookahead = 25;
constexpr SimTime kDeadline = 20000;

struct MeshState {
  std::vector<uint64_t> local_ticks;
  std::vector<uint64_t> remote_hits;
  std::vector<uint64_t> global_snapshots;
  // Per sending shard: EventId returned by its last cross-shard ScheduleOn
  // (mailbox sends are uncancellable and return kInvalidEvent; serial
  // direct inserts return a real id). Indexed by sender so concurrent
  // workers never touch the same slot.
  std::vector<EventId> last_cross_id;
  std::vector<uint8_t> saw_cross_send;
};

void Tick(Simulator* sim, MeshState* st, uint64_t seed, uint32_t shard,
          uint32_t nshards, uint64_t tick) {
  st->local_ticks[shard]++;
  if (sim->Now() >= kDeadline - 200) return;
  if (nshards > 1 && tick % 3 == 0) {
    const uint32_t dst = (shard + 1 + tick / 3) % nshards;
    if (dst != shard) {
      st->saw_cross_send[shard] = 1;
      st->last_cross_id[shard] = sim->ScheduleOn(
          dst, kLookahead + Mix(seed, shard, tick) % 40,
          [st, dst] { st->remote_hits[dst]++; }, "mesh.remote");
    }
  }
  sim->Schedule(
      1 + Mix(seed, shard, tick * 2 + 1) % 37,
      [sim, st, seed, shard, nshards, tick] {
        Tick(sim, st, seed, shard, nshards, tick + 1);
      },
      "mesh.tick");
}

void GlobalPulse(Simulator* sim, MeshState* st, uint64_t seed, int remaining) {
  // Reads cross-shard state: only legal because global events execute at
  // exact-key barriers with every shard quiesced.
  uint64_t sum = 0;
  for (uint64_t v : st->local_ticks) sum = sum * 31 + v;
  for (uint64_t v : st->remote_hits) sum = sum * 31 + v;
  st->global_snapshots.push_back(sum);
  if (remaining > 0) {
    sim->ScheduleGlobal(
        211 + Mix(seed, 0xA0, remaining) % 97,
        [sim, st, seed, remaining] {
          GlobalPulse(sim, st, seed, remaining - 1);
        },
        "mesh.global");
  }
}

struct MeshResult {
  uint64_t fingerprint = 0;
  uint64_t executed = 0;
  SimTime end = 0;
  size_t pending = 0;
  MeshState state;
};

// threads == 0: serial canonical RunUntil. threads >= 1: RunSharded.
// nshards == 0: classic unsharded engine (no ConfigureShards call).
MeshResult RunMesh(uint64_t seed, uint32_t nshards, int threads) {
  Simulator sim(seed + 1);
  const uint32_t effective = nshards == 0 ? 1 : nshards;
  if (nshards > 0) {
    sim.ConfigureShards(nshards);
    sim.SetLookahead(kLookahead);
  }
  auto st = std::make_unique<MeshState>();
  st->local_ticks.assign(effective, 0);
  st->remote_hits.assign(effective, 0);
  st->last_cross_id.assign(effective, kInvalidEvent);
  st->saw_cross_send.assign(effective, 0);
  for (uint32_t s = 0; s < effective; ++s) {
    Simulator::ShardScope scope(&sim, nshards > 0 ? s : 0);
    sim.Schedule(
        1 + s,
        [sim_p = &sim, st_p = st.get(), seed, s, effective] {
          Tick(sim_p, st_p, seed, s, effective, 0);
        },
        "mesh.start");
  }
  sim.ScheduleGlobal(
      97, [sim_p = &sim, st_p = st.get(), seed] { GlobalPulse(sim_p, st_p, seed, 50); },
      "mesh.global");

  if (threads == 0) {
    sim.RunUntil(kDeadline);
  } else {
    sim.RunSharded(kDeadline, threads);
  }

  MeshResult r;
  r.fingerprint = sim.ScheduleFingerprint();
  r.executed = sim.ExecutedEvents();
  r.end = sim.Now();
  r.pending = sim.PendingEvents();
  r.state = *st;
  return r;
}

bool AnyCrossSend(const MeshState& st) {
  for (uint8_t v : st.saw_cross_send) {
    if (v) return true;
  }
  return false;
}

void ExpectSameExecution(const MeshResult& a, const MeshResult& b,
                         const char* what) {
  EXPECT_EQ(a.fingerprint, b.fingerprint) << what;
  EXPECT_EQ(a.executed, b.executed) << what;
  EXPECT_EQ(a.end, b.end) << what;
  EXPECT_EQ(a.state.local_ticks, b.state.local_ticks) << what;
  EXPECT_EQ(a.state.remote_hits, b.state.remote_hits) << what;
  EXPECT_EQ(a.state.global_snapshots, b.state.global_snapshots) << what;
}

TEST(ParallelEngine, SingleShardIsBitIdenticalToUnsharded) {
  // ConfigureShards(1) is the determinism oracle: same stamps, same
  // order, same fingerprint as the classic engine — and RunSharded(1)
  // on it must change nothing either.
  const MeshResult classic = RunMesh(42, 0, 0);
  const MeshResult oracle_serial = RunMesh(42, 1, 0);
  const MeshResult oracle_windowed = RunMesh(42, 1, 1);
  EXPECT_GT(classic.executed, 1000u);
  ExpectSameExecution(classic, oracle_serial, "sharded(1) serial vs classic");
  ExpectSameExecution(classic, oracle_windowed,
                      "sharded(1) windowed vs classic");
}

TEST(ParallelEngine, ParallelMatchesSerialForEveryThreadCount) {
  for (uint32_t nshards : {2u, 3u, 4u}) {
    const MeshResult serial = RunMesh(7, nshards, 0);
    ASSERT_GT(serial.executed, 1000u);
    ASSERT_TRUE(AnyCrossSend(serial.state));
    ASSERT_GT(serial.state.global_snapshots.size(), 10u);
    for (int threads : {1, 2, 4, 8}) {
      const MeshResult parallel = RunMesh(7, nshards, threads);
      ExpectSameExecution(serial, parallel,
                          ("shards=" + std::to_string(nshards) +
                           " threads=" + std::to_string(threads))
                              .c_str());
      EXPECT_EQ(parallel.pending, 0u);
    }
  }
}

TEST(ParallelEngine, CrossShardMailboxSendsAreUncancellable) {
  // Serial canonical execution inserts cross-shard events directly (real
  // EventId); during windowed execution they travel by mailbox and the
  // send returns kInvalidEvent. Both produce the same schedule.
  const MeshResult serial = RunMesh(9, 2, 0);
  const MeshResult windowed = RunMesh(9, 2, 2);
  ASSERT_TRUE(AnyCrossSend(serial.state));
  ASSERT_TRUE(AnyCrossSend(windowed.state));
  for (uint32_t s = 0; s < 2; ++s) {
    if (serial.state.saw_cross_send[s]) {
      EXPECT_NE(serial.state.last_cross_id[s], kInvalidEvent) << s;
    }
    if (windowed.state.saw_cross_send[s]) {
      EXPECT_EQ(windowed.state.last_cross_id[s], kInvalidEvent) << s;
    }
  }
  EXPECT_EQ(serial.fingerprint, windowed.fingerprint);
}

TEST(ParallelEngine, CancelAcrossShards) {
  Simulator sim(3);
  sim.ConfigureShards(3);
  sim.SetLookahead(10);

  std::vector<int> fired(6, 0);
  std::vector<EventId> ids;
  for (uint32_t s = 0; s < 3; ++s) {
    Simulator::ShardScope scope(&sim, s);
    for (int k = 0; k < 2; ++k) {
      const size_t slot = s * 2 + k;
      ids.push_back(sim.Schedule(
          100 + 10 * static_cast<SimDuration>(slot),
          [&fired, slot] { fired[slot]++; }, "cancel.probe"));
    }
  }
  EXPECT_EQ(sim.PendingEvents(), 6u);

  // Cancel one event per shard; tombstones linger until reclaimed.
  sim.Cancel(ids[1]);
  sim.Cancel(ids[2]);
  sim.Cancel(ids[5]);
  EXPECT_EQ(sim.PendingEvents(), 3u);
  EXPECT_EQ(sim.DeadHeapEntriesForTest(), 3u);

  // Double-cancel and stale ids are harmless no-ops.
  sim.Cancel(ids[1]);
  sim.Cancel(kInvalidEvent);
  EXPECT_EQ(sim.PendingEvents(), 3u);

  sim.RunSharded(1000, 2);
  EXPECT_EQ(fired, (std::vector<int>{1, 0, 0, 1, 1, 0}));
  EXPECT_EQ(sim.ExecutedEvents(), 3u);
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.DeadHeapEntriesForTest(), 0u);

  // An id from a long-fired event is stale by generation: cancelling it
  // must not disturb anything scheduled afterwards.
  sim.Cancel(ids[0]);
  bool late = false;
  {
    Simulator::ShardScope scope(&sim, 0);
    sim.Schedule(5, [&late] { late = true; }, "cancel.late");
  }
  sim.Cancel(ids[3]);
  sim.RunSharded(sim.Now() + 100, 1);
  EXPECT_TRUE(late);
}

TEST(ParallelEngine, PendingAndExecutedAggregateAllQueues) {
  Simulator sim(5);
  sim.ConfigureShards(2);
  sim.SetLookahead(5);
  int hits = 0;
  for (uint32_t s = 0; s < 2; ++s) {
    Simulator::ShardScope scope(&sim, s);
    sim.Schedule(10, [&hits] { hits++; }, "agg.shard");
  }
  sim.ScheduleGlobal(20, [&hits] { hits++; }, "agg.global");
  EXPECT_EQ(sim.PendingEvents(), 3u);
  sim.RunSharded(100, 2);
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(sim.ExecutedEvents(), 3u);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(ParallelEngine, RunShardedLandsClockOnDeadline) {
  Simulator sim(8);
  sim.ConfigureShards(2);
  sim.SetLookahead(5);
  {
    Simulator::ShardScope scope(&sim, 1);
    sim.Schedule(10, [] {}, "clock.one");
  }
  sim.RunSharded(500, 2);
  EXPECT_EQ(sim.Now(), 500);
  // And a second leg continues from there.
  sim.RunShardedFor(250, 2);
  EXPECT_EQ(sim.Now(), 750);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(ParallelEngineDeath, CrossShardSendBelowLookaheadAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Simulator sim(1);
        sim.ConfigureShards(2);
        sim.SetLookahead(50);
        {
          Simulator::ShardScope scope(&sim, 0);
          sim.Schedule(
              10,
              [&sim] {
                // Worker-context cross-shard send under the lookahead
                // bound violates the conservative-synchronization
                // contract; the engine must refuse loudly, not corrupt
                // the canonical order.
                sim.ScheduleOn(1, 5, [] {}, "bad.send");
              },
              "bad.parent");
        }
        sim.RunUntil(100);
      },
      "lookahead");
}
#endif  // GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace aurora::sim
