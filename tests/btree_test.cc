// Direct B+-tree unit tests over a synchronous fake page source: splits,
// root growth, descent correctness, scans across leaves, MTR op-plan
// shapes, and the volume-full path.

#include <gtest/gtest.h>

#include <map>

#include "src/engine/btree.h"

namespace aurora::engine {
namespace {

/// A synchronous in-memory "cache + storage": every page always present.
class FakePages {
 public:
  explicit FakePages(size_t max_entries) : options_{max_entries} {
    // Bootstrap: meta + root leaf, one PG with a huge cursor space.
    for (const auto& staged :
         BTree::BootstrapOps(kFirstAllocatableBlock, {2})) {
      Apply(staged);
    }
  }

  BTree MakeTree() {
    return BTree(
        options_,
        [this](BlockId block, std::function<void(Result<storage::Page*>)> cb) {
          auto it = pages_.find(block);
          if (it == pages_.end()) {
            cb(Status::NotFound("no such page"));
          } else {
            cb(&it->second);
          }
        },
        [this](BlockId block) -> storage::Page* {
          auto it = pages_.find(block);
          return it == pages_.end() ? nullptr : &it->second;
        });
  }

  /// Applies a staged op directly (stands in for AppendMtr).
  void Apply(const StagedOp& staged) {
    storage::Page& page = pages_[staged.block];
    page.id = staged.block;
    ASSERT_TRUE(ApplyPageOp(&page, staged.op, ++lsn_).ok());
  }

  void ApplyAll(const std::vector<StagedOp>& ops) {
    for (const auto& op : ops) Apply(op);
  }

  /// Allocator over one PG of `capacity` blocks.
  BTree::BlockAllocator Allocator(uint64_t capacity = 1 << 20) {
    return [this, capacity](std::vector<StagedOp>* ops) -> BlockId {
      auto it = pages_[kMetaBlock].entries.find(AllocCursorKey(0));
      uint64_t cursor = *DecodeU64Value(it->second);
      // Staged bumps in this MTR win.
      for (auto staged = ops->rbegin(); staged != ops->rend(); ++staged) {
        if (staged->block == kMetaBlock &&
            staged->op.key == AllocCursorKey(0)) {
          cursor = *DecodeU64Value(staged->op.value);
          break;
        }
      }
      if (cursor >= capacity) return kInvalidBlock;
      storage::PageOp bump;
      bump.type = storage::PageOpType::kInsert;
      bump.key = AllocCursorKey(0);
      bump.value = EncodeU64Value(cursor + 1);
      ops->push_back({kMetaBlock, bump});
      return cursor;
    };
  }

  size_t PageCount() const { return pages_.size(); }
  const storage::Page& page(BlockId id) const { return pages_.at(id); }

 private:
  BTreeOptions options_;
  std::map<BlockId, storage::Page> pages_;
  Lsn lsn_ = 0;
};

Status Insert(BTree& tree, FakePages& pages, const std::string& key,
              const std::string& value) {
  auto path = tree.FindPathSync(key);
  if (!path.ok()) return path.status();
  auto plan = tree.PlanInsert(*path, key, value, pages.Allocator());
  if (!plan.ok()) return plan.status();
  pages.ApplyAll(*plan);
  return Status::OK();
}

Result<std::string> Lookup(BTree& tree, const std::string& key) {
  Result<std::string> out = Status::Internal("no callback");
  tree.GetEntry(key, [&](Result<std::string> r) { out = std::move(r); });
  return out;
}

TEST(BTree, InsertAndLookupNoSplit) {
  FakePages pages(8);
  BTree tree = pages.MakeTree();
  ASSERT_TRUE(Insert(tree, pages, "b", "2").ok());
  ASSERT_TRUE(Insert(tree, pages, "a", "1").ok());
  EXPECT_EQ(*Lookup(tree, "a"), "1");
  EXPECT_EQ(*Lookup(tree, "b"), "2");
  EXPECT_TRUE(Lookup(tree, "c").status().IsNotFound());
  EXPECT_EQ(tree.splits(), 0u);
}

TEST(BTree, UpdateInPlace) {
  FakePages pages(8);
  BTree tree = pages.MakeTree();
  ASSERT_TRUE(Insert(tree, pages, "k", "v1").ok());
  ASSERT_TRUE(Insert(tree, pages, "k", "v2").ok());
  EXPECT_EQ(*Lookup(tree, "k"), "v2");
}

TEST(BTree, LeafSplitAndRootGrowth) {
  FakePages pages(4);
  BTree tree = pages.MakeTree();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(Insert(tree, pages, "k" + std::to_string(i), "v").ok()) << i;
  }
  EXPECT_GE(tree.splits(), 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(*Lookup(tree, "k" + std::to_string(i)), "v") << i;
  }
  // The root pointer moved to an internal page.
  auto root_ptr = pages.page(kMetaBlock).entries.at(kMetaRootKey);
  const storage::Page& root = pages.page(*DecodeU64Value(root_ptr));
  EXPECT_EQ(root.type, storage::PageType::kInternal);
}

TEST(BTree, DeepTreeManyKeys) {
  FakePages pages(4);  // tiny pages force a deep tree
  BTree tree = pages.MakeTree();
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i * 7919 % 100000);
    ASSERT_TRUE(Insert(tree, pages, key, std::to_string(i)).ok()) << i;
  }
  for (int i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i * 7919 % 100000);
    ASSERT_EQ(*Lookup(tree, key), std::to_string(i)) << key;
  }
  EXPECT_GT(tree.splits(), 50u);
}

TEST(BTree, ScanFollowsLeafLinks) {
  FakePages pages(4);
  BTree tree = pages.MakeTree();
  for (int i = 0; i < 40; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(Insert(tree, pages, key, std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> rows;
  tree.ScanEntries("k005", "k025", 100, [&](auto r) {
    ASSERT_TRUE(r.ok());
    rows = std::move(*r);
  });
  ASSERT_EQ(rows.size(), 21u);
  EXPECT_EQ(rows.front().first, "k005");
  EXPECT_EQ(rows.back().first, "k025");
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].first, rows[i].first) << "scan must be ordered";
  }
}

TEST(BTree, ScanHonorsLimit) {
  FakePages pages(4);
  BTree tree = pages.MakeTree();
  for (int i = 0; i < 30; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(Insert(tree, pages, key, "v").ok());
  }
  std::vector<std::pair<std::string, std::string>> rows;
  tree.ScanEntries("k000", "k999", 7, [&](auto r) {
    ASSERT_TRUE(r.ok());
    rows = std::move(*r);
  });
  EXPECT_EQ(rows.size(), 7u);
}

TEST(BTree, PlanKeepsSplitInOneMtr) {
  FakePages pages(4);
  BTree tree = pages.MakeTree();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(Insert(tree, pages, "k" + std::to_string(i), "v").ok());
  }
  // The 5th insert must split: its plan touches the leaf, the new right
  // sibling, the meta allocation cursor, and the (new) root — all staged
  // ops of ONE MTR, which is the §3.2 atomicity requirement.
  auto path = tree.FindPathSync("k4");
  ASSERT_TRUE(path.ok());
  auto plan = tree.PlanInsert(*path, "k4", "v", pages.Allocator());
  ASSERT_TRUE(plan.ok());
  std::set<BlockId> touched;
  for (const auto& staged : *plan) touched.insert(staged.block);
  EXPECT_GE(touched.size(), 3u) << "split spans multiple blocks";
  pages.ApplyAll(*plan);
  EXPECT_EQ(*Lookup(tree, "k4"), "v");
}

TEST(BTree, VolumeFullSurfacesOutOfRange) {
  FakePages pages(4);
  BTree tree = pages.MakeTree();
  // Capacity 3: bootstrap consumed block 1; the first split needs a new
  // block and one more for root growth — cap below that.
  Status last = Status::OK();
  for (int i = 0; i < 10 && last.ok(); ++i) {
    auto path = tree.FindPathSync("k" + std::to_string(i));
    ASSERT_TRUE(path.ok());
    auto plan = tree.PlanInsert(*path, "k" + std::to_string(i), "v",
                                pages.Allocator(/*capacity=*/2));
    if (!plan.ok()) {
      last = plan.status();
      break;
    }
    pages.ApplyAll(*plan);
  }
  EXPECT_EQ(last.code(), StatusCode::kOutOfRange);
}

TEST(BTree, StatusAndDataNamespacesDoNotCollide) {
  FakePages pages(8);
  BTree tree = pages.MakeTree();
  ASSERT_TRUE(Insert(tree, pages, DataKey("42"), "user-value").ok());
  ASSERT_TRUE(Insert(tree, pages, StatusKey(42), EncodeU64Value(7)).ok());
  EXPECT_EQ(*Lookup(tree, DataKey("42")), "user-value");
  EXPECT_EQ(*DecodeU64Value(*Lookup(tree, StatusKey(42))), 7u);
}

TEST(BTree, FindPathSyncAbortsOnMiss) {
  FakePages pages(8);
  BTree tree = pages.MakeTree();
  // A tree whose cache lookup always misses must abort, not crash.
  BTree blind(
      BTreeOptions{}, [](BlockId, std::function<void(Result<storage::Page*>)> cb) {
        cb(Status::NotFound("x"));
      },
      [](BlockId) -> storage::Page* { return nullptr; });
  EXPECT_TRUE(blind.FindPathSync("k").status().IsAborted());
}

}  // namespace
}  // namespace aurora::engine
