// Tests for volume-level operations: multi-PG striping, volume growth
// (geometry epoch), heat-management segment moves, and the §4.1 extended-
// AZ-loss shrink to a 3/4 quorum (and expansion back to 4/6).

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace aurora {
namespace {

core::AuroraOptions Options(uint64_t seed, size_t num_pgs = 2) {
  core::AuroraOptions options;
  options.seed = seed;
  options.num_pgs = num_pgs;
  options.blocks_per_pg = 1 << 16;
  options.storage_nodes_per_az = 4;
  return options;
}

TEST(VolumeOps, DataStripesAcrossProtectionGroups) {
  core::AuroraCluster cluster(Options(71));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 300; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "s%05d", i);
    ASSERT_TRUE(cluster.PutBlocking(key, "v").ok());
  }
  // Both PGs must have received records (block allocation stripes).
  EXPECT_GT(cluster.writer()->pgcl(0), 0u);
  EXPECT_GT(cluster.writer()->pgcl(1), 0u);
  // And everything reads back.
  for (int i = 0; i < 300; i += 29) {
    char key[16];
    std::snprintf(key, sizeof(key), "s%05d", i);
    ASSERT_TRUE(cluster.GetBlocking(key).ok()) << key;
  }
}

TEST(VolumeOps, GrowVolumeAddsUsableCapacity) {
  core::AuroraCluster cluster(Options(72, /*num_pgs=*/1));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  ASSERT_TRUE(cluster.PutBlocking("before", "v").ok());
  const GeometryEpoch epoch_before = cluster.geometry().geometry_epoch();

  ASSERT_TRUE(cluster.GrowVolumeBlocking().ok());
  EXPECT_EQ(cluster.geometry().geometry_epoch(), epoch_before + 1);
  EXPECT_EQ(cluster.geometry().PgCount(), 2u);

  // New writes spread into the new PG (its cursor starts fresh) and all
  // data stays readable.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("g" + std::to_string(i), "v").ok()) << i;
  }
  EXPECT_GT(cluster.writer()->pgcl(1), 0u) << "new PG received writes";
  EXPECT_EQ(*cluster.GetBlocking("before"), "v");
  for (int i = 0; i < 200; i += 37) {
    ASSERT_TRUE(cluster.GetBlocking("g" + std::to_string(i)).ok());
  }
}

TEST(VolumeOps, GrowthSurvivesCrashRecovery) {
  core::AuroraCluster cluster(Options(73, 1));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  ASSERT_TRUE(cluster.GrowVolumeBlocking().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("c" + std::to_string(i), "v").ok());
  }
  cluster.CrashWriter();
  cluster.RunFor(10 * kMillisecond);
  ASSERT_TRUE(cluster.RecoverWriterBlocking().ok());
  for (int i = 0; i < 100; i += 13) {
    ASSERT_TRUE(cluster.GetBlocking("c" + std::to_string(i)).ok()) << i;
  }
  ASSERT_TRUE(cluster.PutBlocking("post", "v").ok());
}

TEST(VolumeOps, HeatManagementMoveKeepsDataAndService) {
  core::AuroraCluster cluster(Options(74, 1));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("h" + std::to_string(i), "v").ok());
  }
  // Move a HEALTHY segment (its node stays up — heat management, not
  // repair). The live source is itself a hydration donor.
  auto* old_host = cluster.NodeForSegment(2);
  ASSERT_NE(old_host, nullptr);
  auto report = cluster.MoveSegmentBlocking(2);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(old_host->FindSegment(2), nullptr) << "old copy dropped";
  const auto& pg = cluster.geometry().Pg(0);
  EXPECT_TRUE(pg.ContainsSegment(report->new_segment));
  EXPECT_FALSE(pg.ContainsSegment(2));
  for (int i = 0; i < 50; i += 7) {
    ASSERT_TRUE(cluster.GetBlocking("h" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(cluster.PutBlocking("after-move", "v").ok());
}

TEST(VolumeOps, ShrinkToThreeOfFourAfterExtendedAzLoss) {
  core::AuroraCluster cluster(Options(75, 1));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("z" + std::to_string(i), "v").ok());
  }
  cluster.network().FailAz(2);
  // With the AZ down, a single additional failure would block 4/6 writes.
  // Shrink to 3/4 over the survivors.
  ASSERT_TRUE(cluster.ShrinkAfterAzLossBlocking(2).ok());
  const auto& pg = cluster.geometry().Pg(0);
  EXPECT_EQ(pg.slots().size(), 4u);
  EXPECT_EQ(pg.model(), quorum::QuorumModel::kUniform34);

  // Now one MORE node can fail and writes still flow (3/4 of survivors).
  const auto members = pg.AllMembers();
  cluster.network().Crash(members[0].node);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("d" + std::to_string(i), "v").ok())
        << "3/4 quorum must tolerate one more failure";
  }
  cluster.network().Restart(members[0].node);
  for (int i = 0; i < 30; i += 5) {
    ASSERT_TRUE(cluster.GetBlocking("z" + std::to_string(i)).ok());
  }
}

TEST(VolumeOps, ExpandBackToSixAfterAzRecovers) {
  core::AuroraCluster cluster(Options(76, 1));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("e" + std::to_string(i), "v").ok());
  }
  cluster.network().FailAz(1);
  ASSERT_TRUE(cluster.ShrinkAfterAzLossBlocking(1).ok());
  ASSERT_TRUE(cluster.PutBlocking("while-shrunk", "v").ok());

  cluster.network().RestoreAz(1);
  cluster.RunFor(100 * kMillisecond);
  ASSERT_TRUE(cluster.ExpandToSixBlocking(1).ok());
  const auto& pg = cluster.geometry().Pg(0);
  EXPECT_EQ(pg.slots().size(), 6u);
  EXPECT_EQ(pg.model(), quorum::QuorumModel::kUniform46);

  // The fresh members hydrated the full history.
  for (int i = 0; i < 30; i += 4) {
    ASSERT_TRUE(cluster.GetBlocking("e" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(cluster.PutBlocking("after-expand", "v").ok());
  // AZ tolerance is back: fail a different AZ (not the writer's AZ 0).
  cluster.network().FailAz(2);
  ASSERT_TRUE(cluster.GetBlocking("after-expand").ok());
  ASSERT_TRUE(cluster.PutBlocking("during-az2-loss", "v").ok());
}

TEST(VolumeOps, ShrinkTransitionIsProvablySafe) {
  // Unit-level check of the quorum algebra for the 4/6 -> 3/4 shrink.
  std::vector<quorum::SegmentInfo> members;
  for (SegmentId id = 0; id < 6; ++id) {
    members.push_back({id, static_cast<NodeId>(100 + id),
                       static_cast<AzId>(id / 2), true});
  }
  auto config =
      quorum::PgConfig::Create(0, quorum::QuorumModel::kUniform46, members);
  auto shrunk = config.ShrinkAfterAzLoss(2);
  ASSERT_TRUE(shrunk.ok());
  EXPECT_TRUE(quorum::TransitionIsSafe(config, *shrunk));
  EXPECT_TRUE(shrunk->WriteSet().SatisfiedBy({0, 1, 2}));
  EXPECT_FALSE(shrunk->WriteSet().SatisfiedBy({0, 1}));
  // Expand back.
  auto expanded = shrunk->ExpandToSix(
      {{10, 200, 2, true}, {11, 201, 2, true}});
  ASSERT_TRUE(expanded.ok());
  EXPECT_TRUE(quorum::TransitionIsSafe(*shrunk, *expanded));
  // Degenerate inputs rejected.
  EXPECT_FALSE(config.ShrinkAfterAzLoss(9).ok());
  EXPECT_FALSE(shrunk->ShrinkAfterAzLoss(0).ok()) << "would drop below 3";
}

}  // namespace
}  // namespace aurora
