// Placement service: anti-affinity, deterministic least-loaded choice,
// replacement candidates, and rebalance planning after a server loss.
//
// The placement service (DESIGN.md §11) is the only component that
// decides WHERE segments live on a multi-tenant fleet. It is stateless
// and deterministic — fleet load and liveness are injected probes, ties
// break on node id — so these tests construct fleets directly and assert
// on exact layouts, then cross-check the integrated path through a
// multi-volume AuroraCluster bootstrap.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/placement.h"
#include "src/quorum/membership.h"

namespace aurora {
namespace {

/// A 3-AZ fleet with `per_az` servers per AZ, node ids 1..3*per_az
/// (AZ-major: AZ 0 gets the lowest ids).
core::PlacementService MakeFleet(size_t per_az,
                                 core::PlacementOptions options = {}) {
  core::PlacementService placement(options);
  NodeId next = 1;
  for (AzId az = 0; az < 3; ++az) {
    for (size_t i = 0; i < per_az; ++i) {
      placement.RegisterServer(next++, az);
    }
  }
  return placement;
}

quorum::PgConfig PlaceOne(const core::PlacementService& placement,
                          VolumeId volume, ProtectionGroupId pg,
                          SegmentId* next_segment) {
  auto placed = placement.PlacePg(volume, quorum::QuorumModel::kUniform46,
                                  [&]() { return (*next_segment)++; });
  EXPECT_TRUE(placed.ok()) << placed.status().ToString();
  return quorum::PgConfig::Create(pg, quorum::QuorumModel::kUniform46,
                                  *placed);
}

TEST(Placement, SpreadsTwoCopiesPerAzOnDistinctServers) {
  core::PlacementService placement = MakeFleet(/*per_az=*/3);
  SegmentId next_segment = 100;
  auto placed = placement.PlacePg(/*volume=*/7,
                                  quorum::QuorumModel::kUniform46,
                                  [&]() { return next_segment++; });
  ASSERT_TRUE(placed.ok()) << placed.status().ToString();
  ASSERT_EQ(placed->size(), 6u);

  std::map<AzId, std::set<NodeId>> hosts_by_az;
  for (const auto& info : *placed) {
    EXPECT_EQ(info.volume, 7u);  // tenant tag rides on every copy
    hosts_by_az[info.az].insert(info.node);
  }
  // AZ anti-affinity: exactly two copies in each of the three AZs, and
  // server anti-affinity: the two copies in one AZ on distinct servers.
  ASSERT_EQ(hosts_by_az.size(), 3u);
  for (const auto& [az, hosts] : hosts_by_az) {
    EXPECT_EQ(hosts.size(), 2u) << "az " << az;
  }
}

TEST(Placement, LeastLoadedFirstWithNodeIdTieBreak) {
  core::PlacementService placement = MakeFleet(/*per_az=*/3);
  std::map<NodeId, size_t> load;
  placement.SetLoadSource([&](NodeId id) { return load[id]; });

  // AZ 0 is servers {1,2,3}. Load server 1 heavily: the two AZ-0 copies
  // must land on 2 and 3 (ties elsewhere break toward the lower id).
  load[1] = 10;
  SegmentId next_segment = 1;
  auto placed = placement.PlacePg(0, quorum::QuorumModel::kUniform46,
                                  [&]() { return next_segment++; });
  ASSERT_TRUE(placed.ok());
  std::set<NodeId> az0_hosts;
  for (const auto& info : *placed) {
    if (info.az == 0) az0_hosts.insert(info.node);
  }
  EXPECT_EQ(az0_hosts, (std::set<NodeId>{2, 3}));
}

TEST(Placement, RefusesAzWithoutDistinctLiveServers) {
  // Two servers per AZ but one AZ-0 server is down: a 2-copies-per-AZ
  // placement cannot satisfy server anti-affinity there and must fail
  // loudly rather than stack both copies on one host.
  core::PlacementService placement = MakeFleet(/*per_az=*/2);
  placement.SetLiveness([](NodeId id) { return id != 1; });
  SegmentId next_segment = 1;
  auto placed = placement.PlacePg(0, quorum::QuorumModel::kUniform46,
                                  [&]() { return next_segment++; });
  EXPECT_FALSE(placed.ok());
}

TEST(Placement, ReplacementExcludesCurrentMembersAndPrefersIdleServers) {
  core::PlacementService placement = MakeFleet(/*per_az=*/3);
  SegmentId next_segment = 1;
  quorum::PgConfig config = PlaceOne(placement, 0, 0, &next_segment);

  // AZ 0 = servers {1,2,3}; the PG occupies two of them. A replacement
  // in AZ 0 must land on the one server the PG does not already use.
  std::set<NodeId> used;
  for (const auto& member : config.AllMembers()) {
    if (member.az == 0) used.insert(member.node);
  }
  ASSERT_EQ(used.size(), 2u);
  auto replacement = placement.PickReplacement(config, /*az=*/0);
  ASSERT_TRUE(replacement.ok()) << replacement.status().ToString();
  EXPECT_FALSE(used.contains(*replacement));
  EXPECT_LE(*replacement, 3u);  // still an AZ-0 server
}

TEST(Placement, PlanRebalanceMovesEveryDisplacedSegmentOffLostServer) {
  core::PlacementService placement = MakeFleet(/*per_az=*/3);
  std::map<NodeId, size_t> load;
  placement.SetLoadSource([&](NodeId id) { return load[id]; });

  // Lay out four PGs across the fleet (two volumes, two PGs each), with
  // the load probe tracking placements so they spread.
  SegmentId next_segment = 1;
  std::vector<quorum::PgConfig> configs;
  for (VolumeId volume = 0; volume < 2; ++volume) {
    for (ProtectionGroupId pg = 0; pg < 2; ++pg) {
      quorum::PgConfig config =
          PlaceOne(placement, volume, pg, &next_segment);
      for (const auto& member : config.AllMembers()) load[member.node]++;
      configs.push_back(std::move(config));
    }
  }

  // Server 2 (AZ 0) dies. Every segment it hosted must be planned onto a
  // live AZ-0 server that is not already a member of the same PG.
  const NodeId lost = 2;
  placement.SetLiveness([&](NodeId id) { return id != lost; });
  auto plan = placement.PlanRebalance(lost, configs);

  size_t hosted = 0;
  for (const auto& config : configs) {
    for (const auto& member : config.AllMembers()) {
      if (member.node == lost) ++hosted;
    }
  }
  ASSERT_GT(hosted, 0u) << "test fleet never used the lost server";
  ASSERT_EQ(plan.size(), hosted);

  for (const auto& move : plan) {
    EXPECT_EQ(move.az, 0u);
    EXPECT_NE(move.suggested_host, lost);
    EXPECT_NE(move.suggested_host, kInvalidNode);
    // The suggested host must not collide with a surviving member of the
    // displaced segment's own PG (server anti-affinity after repair).
    const quorum::PgConfig* owner = nullptr;
    for (const auto& config : configs) {
      if (config.pg() == move.pg && config.ContainsSegment(move.segment)) {
        bool volume_match = false;
        for (const auto& member : config.AllMembers()) {
          if (member.id == move.segment && member.volume == move.volume) {
            volume_match = true;
          }
        }
        if (volume_match) owner = &config;
      }
    }
    ASSERT_NE(owner, nullptr);
    for (const auto& member : owner->AllMembers()) {
      if (member.id != move.segment) {
        EXPECT_NE(member.node, move.suggested_host)
            << "pg " << move.pg << " segment " << move.segment;
      }
    }
  }
}

TEST(Placement, MultiVolumeClusterBootstrapsUnderAntiAffinity) {
  core::AuroraOptions options;
  options.seed = 4242;
  options.volumes = 3;
  options.num_pgs = 2;
  options.blocks_per_pg = 1 << 16;
  options.storage_nodes_per_az = 3;
  core::AuroraCluster cluster(options);
  ASSERT_TRUE(cluster.StartBlocking().ok());
  ASSERT_EQ(cluster.VolumeCount(), 3u);

  // Every volume's every PG: six members, 2 per AZ, distinct servers
  // within an AZ, and the volume tag on each member.
  size_t pgs_seen = 0;
  std::map<NodeId, size_t> segments_per_server;
  cluster.ForEachPgConfig([&](VolumeId volume, const quorum::PgConfig& pg) {
    ++pgs_seen;
    std::map<AzId, std::set<NodeId>> hosts_by_az;
    for (const auto& member : pg.AllMembers()) {
      EXPECT_EQ(member.volume, volume);
      hosts_by_az[member.az].insert(member.node);
      segments_per_server[member.node]++;
    }
    ASSERT_EQ(hosts_by_az.size(), 3u);
    for (const auto& [az, hosts] : hosts_by_az) {
      EXPECT_EQ(hosts.size(), 2u)
          << "volume " << volume << " pg " << pg.pg() << " az " << az;
    }
  });
  EXPECT_EQ(pgs_seen, 6u);  // 3 volumes x 2 PGs

  // Least-loaded placement spreads the 36 segments across the 9 servers
  // evenly: every server hosts exactly 4.
  ASSERT_EQ(segments_per_server.size(), 9u);
  for (const auto& [node, count] : segments_per_server) {
    EXPECT_EQ(count, 4u) << "server " << node;
  }

  // Each tenant writes through its own volume without interference.
  for (VolumeId volume = 0; volume < 3; ++volume) {
    const std::string key = "t" + std::to_string(volume);
    ASSERT_TRUE(cluster.PutBlocking(volume, key, "v").ok());
    auto got = cluster.GetBlocking(volume, key);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "v");
  }
  // Tenant keyspaces are disjoint: volume 1 never sees volume 0's key.
  EXPECT_FALSE(cluster.GetBlocking(1, "t0").ok());
}

}  // namespace
}  // namespace aurora
