// Session consistency (read-your-writes) regression tests.
//
// A ClientSession anchors at the SCN of its last acked commit; reads
// routed to replicas first wait for the replica's VDL to reach the
// anchor (§3.3's "read views anchor at points equivalent to writer-side
// points", extended to a client-visible guarantee). These tests drive
// the guarantee through the hard cases: a badly lagging replica, a
// replication-stream gap where cached replica pages are silently stale,
// a writer failover, and a randomized chaos mix — the session must
// never observe a state older than its own last write. Also covers the
// PGMRPL side: long-running pinned replica views must hold version GC
// back fleet-wide until released.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/cluster.h"
#include "src/core/session.h"

namespace aurora {
namespace {

core::AuroraOptions Options() {
  core::AuroraOptions options;
  options.seed = 77;
  options.num_pgs = 1;
  options.blocks_per_pg = 1 << 16;
  // The whole point of these tests: replica caches small enough that
  // storage reads (and stale-page hazards) actually happen.
  options.replica.cache_pages = 64;
  options.replica.strict_stream_continuity = true;
  return options;
}

Status SessionPut(core::AuroraCluster& cluster, core::ClientSession& session,
                  const std::string& key, const std::string& value) {
  Status result = Status::Internal("unset");
  bool done = false;
  session.Put(key, value, [&](Status st) {
    result = std::move(st);
    done = true;
  });
  if (!cluster.RunUntil([&]() { return done; })) {
    return Status::TimedOut("session put stuck");
  }
  return result;
}

Result<std::string> SessionGet(core::AuroraCluster& cluster,
                               core::ClientSession& session,
                               const std::string& key) {
  Result<std::string> result = Status::Internal("unset");
  bool done = false;
  session.Get(key, [&](Result<std::string> r) {
    result = std::move(r);
    done = true;
  });
  if (!cluster.RunUntil([&]() { return done; })) {
    return Status::TimedOut("session get stuck");
  }
  return result;
}

TEST(SessionConsistency, ReadYourWritesImmediately) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* rep = cluster.AddReplica();
  ASSERT_NE(rep, nullptr);
  cluster.RunFor(100 * kMillisecond);

  core::ClientSession session(&cluster, /*az=*/0);
  for (int g = 0; g < 20; ++g) {
    const std::string value = "v" + std::to_string(g);
    ASSERT_TRUE(SessionPut(cluster, session, "ryw", value).ok());
    EXPECT_GT(session.anchor(), 0u);
    // No settle time: the immediate read-back must already see the write.
    auto v = SessionGet(cluster, session, "ryw");
    ASSERT_TRUE(v.ok()) << g << ": " << v.status().ToString();
    EXPECT_EQ(*v, value) << "stale read at generation " << g;
  }
  // The fleet actually served session traffic.
  EXPECT_GT(session.stats().replica_reads + session.stats().writer_fallbacks,
            0u);
}

TEST(SessionConsistency, LaggingReplicaWaitsOrFallsBack) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* rep = cluster.AddReplica();
  cluster.RunFor(100 * kMillisecond);

  // Make the replica's inbound stream crawl: VDL updates arrive ~50x
  // late, so every post-write read faces a genuinely lagging replica.
  cluster.network().SetNodeSlowdown(rep->id(), 50.0);

  core::ClientSession session(&cluster, /*az=*/0);
  for (int g = 0; g < 10; ++g) {
    const std::string value = "g" + std::to_string(g);
    ASSERT_TRUE(SessionPut(cluster, session, "lag", value).ok());
    auto v = SessionGet(cluster, session, "lag");
    ASSERT_TRUE(v.ok()) << g << ": " << v.status().ToString();
    EXPECT_EQ(*v, value) << "lagging replica served stale data at " << g;
  }
  // The guarantee must have been earned, not free: either anchored reads
  // parked for VDL advances or the session fell back to the writer.
  EXPECT_GT(rep->stats().anchor_waits + session.stats().writer_fallbacks, 0u)
      << "test did not exercise the lag path";
}

// The stream-gap hazard: a partition drops MTRs for a block the replica
// has cached; the cached page is then silently stale (nothing arrives to
// expose the chain mismatch) while later VDL updates let anchored reads
// through. strict_stream_continuity closes the hole by dropping the
// cache on the observed seq gap.
TEST(SessionConsistency, StreamGapNeverServesStalePage) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* rep = cluster.AddReplica();
  cluster.RunFor(100 * kMillisecond);

  // Spread keys across many leaves so the post-heal write lands on a
  // DIFFERENT block than the stale one — otherwise the replica would be
  // saved by the chain-mismatch check instead of gap detection.
  for (int i = 0; i < 300; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "a%03d", i);
    ASSERT_TRUE(cluster.PutBlocking(key, "seed").ok());
  }
  core::ClientSession session(&cluster, /*az=*/0);
  ASSERT_TRUE(SessionPut(cluster, session, "a050", "old").ok());
  cluster.RunFor(200 * kMillisecond);
  // Warm the replica's cache with the block that is about to go stale.
  auto warm = SessionGet(cluster, session, "a050");
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(*warm, "old");
  ASSERT_GT(session.stats().replica_reads, 0u)
      << "warm read did not go through the replica; test is vacuous";

  // Drop the replication stream and update the key behind its back.
  cluster.network().Partition(cluster.writer()->id(), rep->id(), true);
  ASSERT_TRUE(SessionPut(cluster, session, "a050", "new").ok());
  cluster.network().Partition(cluster.writer()->id(), rep->id(), false);
  // Post-heal traffic (far key, different leaf) advances the replica's
  // VDL past the lost MTR.
  ASSERT_TRUE(SessionPut(cluster, session, "a250", "x").ok());
  cluster.RunFor(300 * kMillisecond);

  auto v = SessionGet(cluster, session, "a050");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "new") << "stale cached page served across a stream gap";
  EXPECT_GT(rep->stats().stream_gaps, 0u)
      << "the partition did not produce a stream gap; test is vacuous";
}

TEST(SessionConsistency, AnchorSurvivesPromote) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* rep = cluster.AddReplica();
  cluster.RunFor(100 * kMillisecond);

  core::ClientSession session(&cluster, /*az=*/0);
  ASSERT_TRUE(SessionPut(cluster, session, "p", "before").ok());
  const Lsn anchor_before = session.anchor();

  auto promoted = cluster.FailoverBlocking();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();

  // Recovery re-establishes VDL at or above every acked SCN, so the old
  // anchor is servable by the new writer AND (eventually) every replica.
  auto v = SessionGet(cluster, session, "p");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "before") << "acked write lost across promote";

  ASSERT_TRUE(SessionPut(cluster, session, "p", "after").ok());
  EXPECT_GE(session.anchor(), anchor_before);
  auto v2 = SessionGet(cluster, session, "p");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, "after");
  // The rewired stream restarts its sequence numbers: the replica must
  // have observed the writer switch as a continuity break.
  cluster.RunFor(300 * kMillisecond);
  EXPECT_GT(rep->stats().stream_gaps, 0u);
}

// Randomized chaos: partitions around the replica, replica crashes, and
// a writer failover, interleaved with session traffic. Reads may time
// out under heavy faults, but a successful read must NEVER return a
// value older than the session's last acked write.
TEST(SessionConsistency, ReadYourWritesUnderChaos) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* rep = cluster.AddReplica();
  cluster.RunFor(100 * kMillisecond);

  core::ClientSession session(&cluster, /*az=*/0);
  Rng chaos(0xc4a05u);
  int last_acked = -1;
  int successful_reads = 0;
  for (int round = 0; round < 30; ++round) {
    // Fault phase.
    const uint64_t dice = chaos.NextBounded(10);
    if (dice < 3) {
      cluster.network().Partition(cluster.writer()->id(), rep->id(), true);
    } else if (dice < 5) {
      cluster.network().Partition(cluster.writer()->id(), rep->id(), false);
    } else if (dice == 5) {
      cluster.network().Crash(rep->id());
    } else if (dice == 6) {
      cluster.network().Restart(rep->id());
      rep->Start();
    } else if (dice == 7 && round > 0 && round % 10 == 0) {
      cluster.network().Partition(cluster.writer()->id(), rep->id(), false);
      auto promoted = cluster.FailoverBlocking();
      ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
    }

    // Traffic phase.
    const std::string value = std::to_string(round);
    if (SessionPut(cluster, session, "chaos", value).ok()) {
      last_acked = round;
    }
    auto v = SessionGet(cluster, session, "chaos");
    if (v.ok() && last_acked >= 0) {
      successful_reads++;
      EXPECT_GE(std::stoi(*v), last_acked)
          << "round " << round << ": session observed a state older than "
          << "its own acked write";
    }
    cluster.RunFor(50 * kMillisecond);
  }
  // Sanity: the run must not have been all-timeouts.
  EXPECT_GT(successful_reads, 5);
}

// PGMRPL pressure (§3.4): a long-running pinned replica view holds the
// fleet-wide minimum read point — and with it version GC at the
// segments — until unpinned.
TEST(SessionConsistency, PinnedViewStallsVersionGc) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* rep = cluster.AddReplica();
  cluster.RunFor(200 * kMillisecond);
  ASSERT_TRUE(cluster.PutBlocking("hot", "v0").ok());
  cluster.RunFor(300 * kMillisecond);

  const uint64_t pin = rep->PinView();
  ASSERT_NE(pin, 0u);
  const Lsn pin_anchor = rep->MinReadPoint();
  EXPECT_EQ(rep->pinned_view_count(), 1u);

  // Generate version churn well past the pin.
  for (int i = 1; i <= 30; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("hot", "v" + std::to_string(i)).ok());
  }
  cluster.RunFor(500 * kMillisecond);  // several read-point reports

  // The pinned view caps the fleet PGMRPL at the pin anchor.
  EXPECT_LE(cluster.writer()->ComputePgmrpl(), pin_anchor);
  // And no segment may have learned a PGMRPL above it.
  cluster.ForEachSegment([&](storage::StorageNode*,
                             storage::SegmentStore* segment) {
    if (segment->pgmrpl() != kInvalidLsn) {
      EXPECT_LE(segment->pgmrpl(), pin_anchor);
    }
  });

  rep->UnpinView(pin);
  EXPECT_EQ(rep->pinned_view_count(), 0u);
  // More churn + report cycles: PGMRPL must now advance past the pin.
  for (int i = 31; i <= 40; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("hot", "v" + std::to_string(i)).ok());
  }
  cluster.RunFor(500 * kMillisecond);
  EXPECT_GT(cluster.writer()->ComputePgmrpl(), pin_anchor);

  // Drive reads so storage learns the released read point, then GC.
  for (int i = 0; i < 5; ++i) {
    auto v = cluster.GetBlocking("hot");
    ASSERT_TRUE(v.ok());
  }
  bool done = false;
  rep->Get("hot", [&](Result<std::string> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  uint64_t gced = 0;
  for (auto& node : cluster.storage_nodes()) {
    node->RunGcOnce();
  }
  cluster.ForEachSegment([&](storage::StorageNode*,
                             storage::SegmentStore* segment) {
    gced += segment->stats().versions_gced;
  });
  EXPECT_GT(gced, 0u) << "version churn above the released read point "
                         "should be collectable";
}

}  // namespace
}  // namespace aurora
