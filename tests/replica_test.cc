// Read-replica integration tests (§3.2–§3.4): stream application, VDL
// anchoring, commit visibility, snapshot isolation, PGMRPL feedback, and
// lossless failover.

#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/core/cluster.h"

namespace aurora {
namespace {

core::AuroraOptions Options() {
  core::AuroraOptions options;
  options.seed = 11;
  options.num_pgs = 1;
  options.blocks_per_pg = 1 << 16;
  return options;
}

Result<std::string> ReplicaGet(core::AuroraCluster& cluster,
                               replica::ReadReplica* rep,
                               const std::string& key) {
  Result<std::string> result = Status::Internal("unset");
  bool done = false;
  rep->Get(key, [&](Result<std::string> r) {
    result = std::move(r);
    done = true;
  });
  if (!cluster.RunUntil([&]() { return done; })) {
    return Status::TimedOut("replica get");
  }
  return result;
}

TEST(Replica, SeesCommittedWritesAfterLag) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* rep = cluster.AddReplica();
  cluster.RunFor(50 * kMillisecond);

  ASSERT_TRUE(cluster.PutBlocking("r1", "hello").ok());
  // Allow the stream (MTRs + VDL control records) to arrive.
  cluster.RunFor(20 * kMillisecond);

  auto v = ReplicaGet(cluster, rep, "r1");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "hello");
}

TEST(Replica, VdlLagsWriterButAdvances) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* rep = cluster.AddReplica();
  cluster.RunFor(50 * kMillisecond);

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("k" + std::to_string(i), "v").ok());
  }
  cluster.RunFor(50 * kMillisecond);
  EXPECT_GT(rep->vdl(), 0u);
  EXPECT_LE(rep->vdl(), cluster.writer()->vdl());
  // After quiescing, the replica catches up fully.
  EXPECT_EQ(rep->vdl(), cluster.writer()->vdl());
}

TEST(Replica, UncommittedWritesInvisible) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  ASSERT_TRUE(cluster.PutBlocking("k", "old").ok());
  auto* rep = cluster.AddReplica();
  cluster.RunFor(50 * kMillisecond);

  auto* writer = cluster.writer();
  const TxnId txn = writer->Begin();
  bool put_done = false;
  writer->Put(txn, "k", "dirty", [&](Status st) {
    ASSERT_TRUE(st.ok());
    put_done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return put_done; }));
  cluster.RunFor(20 * kMillisecond);  // stream ships the MTR

  auto v = ReplicaGet(cluster, rep, "k");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "old") << "replica must revert uncommitted txn via undo";

  ASSERT_TRUE(cluster.CommitBlocking(txn).ok());
  cluster.RunFor(20 * kMillisecond);
  auto v2 = ReplicaGet(cluster, rep, "k");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, "dirty");
}

TEST(Replica, ColdCacheReadsFromSharedStorage) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("c" + std::to_string(i), "v").ok());
  }
  // Replica attaches AFTER the writes: its cache is empty and every read
  // must come from shared storage (§3.2: no volume copy needed).
  auto* rep = cluster.AddReplica();
  cluster.RunFor(200 * kMillisecond);
  auto v = ReplicaGet(cluster, rep, "c25");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "v");
  EXPECT_GT(rep->cache().stats().misses, 0u);
}

TEST(Replica, ScanSeesConsistentSnapshot) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 10; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "s%02d", i);
    ASSERT_TRUE(cluster.PutBlocking(key, "x").ok());
  }
  auto* rep = cluster.AddReplica();
  cluster.RunFor(100 * kMillisecond);

  bool done = false;
  std::vector<std::pair<std::string, std::string>> rows;
  rep->Scan("s00", "s99", 100, [&](auto r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    rows = std::move(*r);
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  EXPECT_EQ(rows.size(), 10u);
}

TEST(Replica, FailoverLosesNoAckedCommit) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  cluster.AddReplica();
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("f" + std::to_string(i), "v").ok());
  }
  auto promoted = cluster.FailoverBlocking();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  // "If a commit has been marked durable and acknowledged to the client,
  // there is no data loss" (§3.2).
  for (int i = 0; i < 25; ++i) {
    auto v = cluster.GetBlocking("f" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status().ToString();
  }
  ASSERT_TRUE(cluster.PutBlocking("post", "failover").ok());
  EXPECT_EQ(*cluster.GetBlocking("post"), "failover");
}

TEST(Replica, OldWriterIsFencedAfterFailover) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  ASSERT_TRUE(cluster.PutBlocking("x", "1").ok());
  auto* old_writer = cluster.writer();
  const NodeId old_id = old_writer->id();

  auto promoted = cluster.FailoverBlocking();
  ASSERT_TRUE(promoted.ok());

  // Resurrect the old instance's process WITHOUT recovery: its requests
  // carry the stale volume epoch and storage must reject them (§2.4:
  // "boxes out old instances with previously open connections").
  cluster.network().Restart(old_id);
  // The old instance's state was cleared by OnCrash, so it cannot issue
  // anything — which is exactly the point; verify the epoch moved on.
  EXPECT_GT(cluster.writer()->volume_epoch(), 1u);
  EXPECT_FALSE(old_writer->IsOpen());
}

// §3.3: the replica consumes the redo stream asynchronously but applies
// it only in whole-MTR chunks anchored at shipped VDL points — a lagging
// replica may serve OLD data, never TORN data. Two keys always updated in
// the same transaction must never diverge in a single snapshot scan, no
// matter where within the backlog the replica's anchor currently sits.
// Once the stream drains, the replica converges and its reported lag
// gauge returns to zero.
TEST(Replica, StreamAppliesMtrAtomicallyAndLagDrains) {
  auto& registry = metrics::Registry::Global();
  registry.Reset();
  metrics::Registry::SetEnabled(true);
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* rep = cluster.AddReplica();
  ASSERT_TRUE(cluster.PutBlocking("pair0", "g0").ok());
  ASSERT_TRUE(cluster.PutBlocking("pair1", "g0").ok());
  cluster.RunFor(200 * kMillisecond);
  // Warm the replica cache so stream records actually apply to its pages.
  ASSERT_TRUE(ReplicaGet(cluster, rep, "pair0").ok());
  ASSERT_TRUE(ReplicaGet(cluster, rep, "pair1").ok());

  // Slow every delivery to the replica: the stream backlog drains while
  // generations of paired updates keep committing on the writer.
  cluster.network().SetNodeSlowdown(rep->id(), 50.0);
  auto* writer = cluster.writer();
  for (int g = 1; g <= 10; ++g) {
    const TxnId txn = writer->Begin();
    const std::string value = "g" + std::to_string(g);
    int puts_done = 0;
    for (const char* key : {"pair0", "pair1"}) {
      writer->Put(txn, key, value, [&](Status st) {
        ASSERT_TRUE(st.ok());
        puts_done++;
      });
    }
    ASSERT_TRUE(cluster.RunUntil([&]() { return puts_done == 2; }));
    ASSERT_TRUE(cluster.CommitBlocking(txn).ok());
  }

  // Scan while the backlog is mid-drain: each scan anchors once, so a
  // non-MTR-atomic application would surface as a torn pair.
  for (int round = 0; round < 8; ++round) {
    bool done = false;
    std::vector<std::pair<std::string, std::string>> rows;
    rep->Scan("pair0", "pair2", 10, [&](auto r) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      rows = std::move(*r);
      done = true;
    });
    ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].second, rows[1].second)
        << "torn pair at round " << round << ": " << rows[0].second
        << " vs " << rows[1].second;
    cluster.RunFor(20 * kMillisecond);
  }

  // Drain: the replica converges on the writer's VDL and the latest pair.
  cluster.network().SetNodeSlowdown(rep->id(), 1.0);
  cluster.RunFor(2 * kSecond);
  EXPECT_EQ(rep->vdl(), cluster.writer()->vdl());
  auto v0 = ReplicaGet(cluster, rep, "pair0");
  auto v1 = ReplicaGet(cluster, rep, "pair1");
  ASSERT_TRUE(v0.ok() && v1.ok());
  EXPECT_EQ(*v0, "g10");
  EXPECT_EQ(*v1, "g10");
  EXPECT_GT(rep->stats().mtrs_applied, 0u);
  EXPECT_GT(rep->replica_lag().count(), 0u)
      << "ship-to-apply lag must have been observed";
  // The writer-side lag gauge (fed by read-point reports) returns to 0
  // once the stream has drained and reports have cycled.
  EXPECT_EQ(registry.GaugeValue("replica.lag_lsns." +
                                std::to_string(rep->id())),
            0);
  metrics::Registry::SetEnabled(false);
  registry.Reset();
}

TEST(Replica, ReadPointFeedsPgmrpl) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* rep = cluster.AddReplica();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("g" + std::to_string(i), "v").ok());
  }
  cluster.RunFor(500 * kMillisecond);  // several report intervals
  // The writer's PGMRPL must not exceed the replica's read point.
  EXPECT_LE(cluster.writer()->ComputePgmrpl(), rep->MinReadPoint());
  EXPECT_GT(cluster.writer()->ComputePgmrpl(), 0u);
}

}  // namespace
}  // namespace aurora
