// Unit + property tests for the quorum layer: quorum-set algebra, the
// exhaustive overlap prover, the 4/6 and full/tail constructions, the
// two-step membership state machine (Figure 5), and volume geometry.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/quorum/geometry.h"
#include "src/quorum/membership.h"
#include "src/quorum/quorum_set.h"

namespace aurora::quorum {
namespace {

std::vector<SegmentInfo> SixSegments(bool full_tail = false) {
  std::vector<SegmentInfo> members;
  for (SegmentId id = 0; id < 6; ++id) {
    SegmentInfo info;
    info.id = id;
    info.node = 100 + id;
    info.az = id / 2;
    info.is_full = full_tail ? (id % 2 == 0) : true;
    members.push_back(info);
  }
  return members;
}

// ---------------------------------------------------------------------- //
// QuorumSet algebra

TEST(QuorumSet, KofNSatisfaction) {
  auto q = QuorumSet::KofN(2, {1, 2, 3});
  EXPECT_FALSE(q.SatisfiedBy({}));
  EXPECT_FALSE(q.SatisfiedBy({1}));
  EXPECT_TRUE(q.SatisfiedBy({1, 3}));
  EXPECT_TRUE(q.SatisfiedBy({1, 2, 3}));
  EXPECT_FALSE(q.SatisfiedBy({4, 5}));
}

TEST(QuorumSet, AndOrComposition) {
  auto a = QuorumSet::KofN(1, {1, 2});
  auto b = QuorumSet::KofN(1, {3, 4});
  auto both = QuorumSet::And({a, b});
  auto either = QuorumSet::Or({a, b});
  EXPECT_TRUE(both.SatisfiedBy({1, 3}));
  EXPECT_FALSE(both.SatisfiedBy({1, 2}));
  EXPECT_TRUE(either.SatisfiedBy({1}));
  EXPECT_TRUE(either.SatisfiedBy({4}));
  EXPECT_FALSE(either.SatisfiedBy({5}));
}

TEST(QuorumSet, UniverseCollectsAllMembers) {
  auto q = QuorumSet::And(
      {QuorumSet::KofN(1, {1, 2}), QuorumSet::KofN(1, {2, 3})});
  EXPECT_EQ(q.Universe(), (SegmentSet{1, 2, 3}));
}

TEST(QuorumSet, PaperRule1ReadWriteOverlap) {
  // Vr + Vw > V: 3/6 reads always intersect 4/6 writes.
  std::vector<SegmentId> all = {0, 1, 2, 3, 4, 5};
  EXPECT_TRUE(QuorumSet::AlwaysOverlaps(QuorumSet::KofN(3, all),
                                        QuorumSet::KofN(4, all)));
  // 2/6 reads do NOT.
  EXPECT_FALSE(QuorumSet::AlwaysOverlaps(QuorumSet::KofN(2, all),
                                         QuorumSet::KofN(4, all)));
}

TEST(QuorumSet, PaperRule2WriteWriteOverlap) {
  std::vector<SegmentId> all = {0, 1, 2, 3, 4, 5};
  // Vw > V/2: 4/6 writes always intersect each other; 3/6 do not.
  EXPECT_TRUE(QuorumSet::AlwaysOverlaps(QuorumSet::KofN(4, all),
                                        QuorumSet::KofN(4, all)));
  EXPECT_FALSE(QuorumSet::AlwaysOverlaps(QuorumSet::KofN(3, all),
                                         QuorumSet::KofN(3, all)));
}

TEST(QuorumSet, FullTailOverlap) {
  // §4.2: write = 4/6 ∨ 3/3 full; read = 3/6 ∧ 1/3 full. These must obey
  // both quorum rules.
  std::vector<SegmentId> all = {0, 1, 2, 3, 4, 5};
  std::vector<SegmentId> fulls = {0, 2, 4};
  auto write = QuorumSet::Or(
      {QuorumSet::KofN(4, all), QuorumSet::KofN(3, fulls)});
  auto read = QuorumSet::And(
      {QuorumSet::KofN(3, all), QuorumSet::KofN(1, fulls)});
  EXPECT_TRUE(QuorumSet::AlwaysOverlaps(read, write));
  EXPECT_TRUE(QuorumSet::AlwaysOverlaps(write, write));
  // Plain 3/6 reads would NOT suffice against the 3/3-full write branch.
  EXPECT_FALSE(QuorumSet::AlwaysOverlaps(QuorumSet::KofN(3, all), write));
}

TEST(QuorumSet, Figure5DualQuorumOverlap) {
  // Mid-change: write = 4/6 ABCDEF ∧ 4/6 ABCDEG; read = 3/6 ∨ 3/6.
  std::vector<SegmentId> abcdef = {0, 1, 2, 3, 4, 5};
  std::vector<SegmentId> abcdeg = {0, 1, 2, 3, 4, 6};
  auto write = QuorumSet::And(
      {QuorumSet::KofN(4, abcdef), QuorumSet::KofN(4, abcdeg)});
  auto read = QuorumSet::Or(
      {QuorumSet::KofN(3, abcdef), QuorumSet::KofN(3, abcdeg)});
  EXPECT_TRUE(QuorumSet::AlwaysOverlaps(read, write));
  // Writing to just ABCD meets the dual quorum (§4.1).
  EXPECT_TRUE(write.SatisfiedBy({0, 1, 2, 3}));
  // New write set overlaps the OLD write set (rule 2 across transition).
  EXPECT_TRUE(QuorumSet::AlwaysOverlaps(write, QuorumSet::KofN(4, abcdef)));
}

TEST(QuorumSet, ImpliesDetectsStrictness) {
  std::vector<SegmentId> all = {0, 1, 2, 3, 4, 5};
  EXPECT_TRUE(QuorumSet::Implies(QuorumSet::KofN(5, all),
                                 QuorumSet::KofN(4, all)));
  EXPECT_FALSE(QuorumSet::Implies(QuorumSet::KofN(4, all),
                                  QuorumSet::KofN(5, all)));
}

TEST(QuorumSet, ToStringIsReadable) {
  auto q = QuorumSet::And({QuorumSet::KofN(4, {0, 1, 2, 3, 4, 5}),
                           QuorumSet::KofN(4, {0, 1, 2, 3, 4, 6})});
  EXPECT_EQ(q.ToString(), "(4/{0,1,2,3,4,5} AND 4/{0,1,2,3,4,6})");
}

// ---------------------------------------------------------------------- //
// PgConfig & membership transitions

TEST(PgConfig, StandardQuorums) {
  auto config = PgConfig::Create(0, QuorumModel::kUniform46, SixSegments());
  EXPECT_EQ(config.epoch(), 1u);
  EXPECT_FALSE(config.HasPendingChange());
  EXPECT_TRUE(config.WriteSet().SatisfiedBy({0, 1, 2, 3}));
  EXPECT_FALSE(config.WriteSet().SatisfiedBy({0, 1, 2}));
  EXPECT_TRUE(config.ReadSet().SatisfiedBy({3, 4, 5}));
  EXPECT_FALSE(config.ReadSet().SatisfiedBy({4, 5}));
}

TEST(PgConfig, AzPlusOneFailureSurvives) {
  // Figure 1: lose one AZ (2 segments) plus one more node; reads survive,
  // writes survive AZ-only loss.
  auto config = PgConfig::Create(0, QuorumModel::kUniform46, SixSegments());
  SegmentSet after_az_loss = {2, 3, 4, 5};  // AZ0 (segments 0,1) down
  EXPECT_TRUE(config.WriteSet().SatisfiedBy(after_az_loss));
  SegmentSet az_plus_one = {3, 4, 5};
  EXPECT_FALSE(config.WriteSet().SatisfiedBy(az_plus_one))
      << "AZ+1 breaks write quorum";
  EXPECT_TRUE(config.ReadSet().SatisfiedBy(az_plus_one))
      << "AZ+1 preserves read quorum (repair possible)";
}

TEST(PgConfig, BeginReplaceCreatesDualSlot) {
  auto config = PgConfig::Create(0, QuorumModel::kUniform46, SixSegments());
  SegmentInfo g{6, 110, 2, true};
  auto next = config.BeginReplace(5, g);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->epoch(), 2u);
  EXPECT_TRUE(next->HasPendingChange());
  EXPECT_EQ(next->CandidateMemberships().size(), 2u);
  EXPECT_TRUE(TransitionIsSafe(config, *next));
}

TEST(PgConfig, CommitAndRevertBothReachable) {
  auto config = PgConfig::Create(0, QuorumModel::kUniform46, SixSegments());
  SegmentInfo g{6, 110, 2, true};
  auto mid = config.BeginReplace(5, g);
  ASSERT_TRUE(mid.ok());

  auto committed = mid->CommitReplace(5);
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed->epoch(), 3u);
  EXPECT_FALSE(committed->ContainsSegment(5));
  EXPECT_TRUE(committed->ContainsSegment(6));
  EXPECT_TRUE(TransitionIsSafe(*mid, *committed));

  auto reverted = mid->RevertReplace(5);
  ASSERT_TRUE(reverted.ok());
  EXPECT_EQ(reverted->epoch(), 3u);
  EXPECT_TRUE(reverted->ContainsSegment(5));
  EXPECT_FALSE(reverted->ContainsSegment(6));
  EXPECT_TRUE(TransitionIsSafe(*mid, *reverted));
}

TEST(PgConfig, DoubleFailureFourCandidates) {
  auto config = PgConfig::Create(0, QuorumModel::kUniform46, SixSegments());
  auto with_g = config.BeginReplace(5, SegmentInfo{6, 110, 2, true});
  ASSERT_TRUE(with_g.ok());
  auto with_h = with_g->BeginReplace(4, SegmentInfo{7, 111, 2, true});
  ASSERT_TRUE(with_h.ok());
  EXPECT_EQ(with_h->CandidateMemberships().size(), 4u);
  EXPECT_TRUE(TransitionIsSafe(*with_g, *with_h));
  // "Simply writing to the four members ABCD meets quorum" (§4.1).
  EXPECT_TRUE(with_h->WriteSet().SatisfiedBy({0, 1, 2, 3}));
}

TEST(PgConfig, InvalidTransitionsRejected) {
  auto config = PgConfig::Create(0, QuorumModel::kUniform46, SixSegments());
  EXPECT_TRUE(config.BeginReplace(99, SegmentInfo{6, 110, 2, true})
                  .status().IsNotFound());
  EXPECT_TRUE(config.BeginReplace(5, SegmentInfo{0, 110, 2, true})
                  .status()
                  .code() == StatusCode::kAlreadyExists);
  EXPECT_TRUE(config.CommitReplace(5).status().IsNotFound());
  auto mid = config.BeginReplace(5, SegmentInfo{6, 110, 2, true});
  EXPECT_TRUE(mid->BeginReplace(5, SegmentInfo{7, 111, 2, true})
                  .status().IsConflict());
}

TEST(PgConfig, ReplacementInheritsDurabilityClass) {
  auto config = PgConfig::Create(0, QuorumModel::kFullTail,
                                 SixSegments(/*full_tail=*/true));
  // Segment 1 is a tail; the replacement is forced to tail as well so
  // the full/tail quorum math survives the change.
  SegmentInfo g{6, 110, 0, /*is_full=*/true};
  auto next = config.BeginReplace(1, g);
  ASSERT_TRUE(next.ok());
  const SegmentInfo* installed = next->FindSegment(6);
  ASSERT_NE(installed, nullptr);
  EXPECT_FALSE(installed->is_full);
  EXPECT_TRUE(TransitionIsSafe(config, *next));
}

TEST(PgConfig, FullTailTransitionsSafe) {
  auto config = PgConfig::Create(0, QuorumModel::kFullTail,
                                 SixSegments(/*full_tail=*/true));
  auto next = config.BeginReplace(0, SegmentInfo{6, 110, 0, true});
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(TransitionIsSafe(config, *next));
  auto committed = next->CommitReplace(0);
  ASSERT_TRUE(committed.ok());
  EXPECT_TRUE(TransitionIsSafe(*next, *committed));
}

TEST(PgConfig, QuorumModelSwitch34) {
  auto config = PgConfig::Create(0, QuorumModel::kUniform46, SixSegments());
  auto degraded = config.WithModel(QuorumModel::kUniform34);
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded->epoch(), 2u);
  EXPECT_TRUE(degraded->WriteSet().SatisfiedBy({0, 1, 2}));
  EXPECT_TRUE(
      QuorumSet::AlwaysOverlaps(degraded->ReadSet(), degraded->WriteSet()));
}

// Property: random sequences of begin/commit/revert transitions always
// preserve both quorum rules at every step.
class MembershipPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MembershipPropertyTest, RandomTransitionSequencesStaySafe) {
  Rng rng(GetParam());
  auto config = PgConfig::Create(0, QuorumModel::kUniform46, SixSegments());
  SegmentId next_id = 6;
  NodeId next_node = 110;
  for (int step = 0; step < 40; ++step) {
    const auto members = config.AllMembers();
    PgConfig next_config = config;
    const int action = static_cast<int>(rng.NextBounded(3));
    if (action == 0) {
      // Begin a replacement of a random single-alternative slot member.
      const auto& victim = members[rng.NextBounded(members.size())];
      SegmentInfo fresh{next_id, next_node, victim.az, victim.is_full};
      auto r = config.BeginReplace(victim.id, fresh);
      if (!r.ok()) continue;
      next_id++;
      next_node++;
      next_config = *r;
    } else {
      // Commit or revert a random pending slot, if any.
      std::vector<SegmentId> pending;
      for (const auto& slot : config.slots()) {
        if (slot.size() == 2) pending.push_back(slot[0].id);
      }
      if (pending.empty()) continue;
      const SegmentId target = pending[rng.NextBounded(pending.size())];
      auto r = action == 1 ? config.CommitReplace(target)
                           : config.RevertReplace(target);
      if (!r.ok()) continue;
      next_config = *r;
    }
    ASSERT_TRUE(TransitionIsSafe(config, next_config))
        << "step " << step << ": " << config.ToString() << " -> "
        << next_config.ToString();
    ASSERT_EQ(next_config.epoch(), config.epoch() + 1);
    config = next_config;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MembershipPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------- //
// VolumeGeometry

TEST(VolumeGeometry, BlockMapping) {
  std::vector<PgConfig> pgs;
  pgs.push_back(PgConfig::Create(0, QuorumModel::kUniform46, SixSegments()));
  auto members2 = SixSegments();
  for (auto& m : members2) m.id += 6;
  pgs.push_back(PgConfig::Create(1, QuorumModel::kUniform46, members2));
  VolumeGeometry geometry(1000, pgs);
  EXPECT_EQ(*geometry.PgForBlock(0), 0u);
  EXPECT_EQ(*geometry.PgForBlock(999), 0u);
  EXPECT_EQ(*geometry.PgForBlock(1000), 1u);
  EXPECT_TRUE(geometry.PgForBlock(2000).status().code() ==
              StatusCode::kOutOfRange);
  EXPECT_EQ(geometry.Capacity(), 2000u);
}

TEST(VolumeGeometry, GrowthBumpsGeometryEpoch) {
  VolumeGeometry geometry(
      1000, {PgConfig::Create(0, QuorumModel::kUniform46, SixSegments())});
  EXPECT_EQ(geometry.geometry_epoch(), 1u);
  auto members2 = SixSegments();
  for (auto& m : members2) m.id += 6;
  geometry.AddPg(PgConfig::Create(1, QuorumModel::kUniform46, members2));
  EXPECT_EQ(geometry.geometry_epoch(), 2u);
  EXPECT_EQ(geometry.PgCount(), 2u);
}

TEST(VolumeGeometry, UpdateRejectsEpochRegression) {
  auto config = PgConfig::Create(0, QuorumModel::kUniform46, SixSegments());
  VolumeGeometry geometry(1000, {config});
  auto next = config.BeginReplace(5, SegmentInfo{6, 110, 2, true});
  ASSERT_TRUE(geometry.UpdatePg(*next).ok());
  EXPECT_TRUE(geometry.UpdatePg(config).IsStaleEpoch());
}

}  // namespace
}  // namespace aurora::quorum
