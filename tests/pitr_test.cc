// Point-in-time restore tests (§2.1 activity 6 / Figure 2's "point in
// time snapshot"): restore discards the post-point timeline, the archive
// horizon bounds valid points, and the restored volume is fully usable
// (new writes, new crash recoveries, replicas).

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace aurora {
namespace {

core::AuroraOptions Options(uint64_t seed) {
  core::AuroraOptions options;
  options.seed = seed;
  options.blocks_per_pg = 1 << 16;
  // Fast archive so tests don't wait long for coverage.
  options.storage_node.backup_interval = 20 * kMillisecond;
  return options;
}

// Writes n rows and waits until the archive covers them.
void WritePhaseAndArchive(core::AuroraCluster& cluster,
                          const std::string& prefix, int n) {
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(cluster.PutBlocking(prefix + std::to_string(i), prefix).ok());
  }
  const Lsn vdl = cluster.writer()->vdl();
  ASSERT_TRUE(cluster.RunUntil(
      [&]() { return cluster.ArchiveHorizon() >= vdl; }, 10 * kSecond))
      << "archive did not catch up";
}

TEST(Pitr, RestoreDiscardsLaterTimeline) {
  core::AuroraCluster cluster(Options(61));
  ASSERT_TRUE(cluster.StartBlocking().ok());

  WritePhaseAndArchive(cluster, "phase1-", 20);
  const Lsn point = cluster.writer()->vdl();

  WritePhaseAndArchive(cluster, "phase2-", 20);
  ASSERT_TRUE(cluster.PutBlocking("phase1-3", "overwritten").ok());

  ASSERT_TRUE(cluster.RestoreToPointBlocking(point).ok());

  // Phase 1 data at its pre-overwrite values; phase 2 gone.
  for (int i = 0; i < 20; ++i) {
    auto v = cluster.GetBlocking("phase1-" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status().ToString();
    EXPECT_EQ(*v, "phase1-") << i;
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(cluster.GetBlocking("phase2-" + std::to_string(i))
                    .status().IsNotFound())
        << i;
  }
}

TEST(Pitr, RestoredVolumeAcceptsNewWork) {
  core::AuroraCluster cluster(Options(62));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  WritePhaseAndArchive(cluster, "base-", 15);
  const Lsn point = cluster.writer()->vdl();
  WritePhaseAndArchive(cluster, "discard-", 10);

  ASSERT_TRUE(cluster.RestoreToPointBlocking(point).ok());
  // The new timeline accepts writes; they persist across ANOTHER crash.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("new-" + std::to_string(i), "v").ok())
        << i;
  }
  cluster.CrashWriter();
  cluster.RunFor(10 * kMillisecond);
  ASSERT_TRUE(cluster.RecoverWriterBlocking().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.GetBlocking("new-" + std::to_string(i)).ok()) << i;
  }
  ASSERT_TRUE(cluster.GetBlocking("base-0").ok());
  EXPECT_TRUE(cluster.GetBlocking("discard-0").status().IsNotFound());
}

TEST(Pitr, RejectsPointBeyondArchiveHorizon) {
  core::AuroraCluster cluster(Options(63));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  WritePhaseAndArchive(cluster, "a-", 5);
  const Lsn horizon = cluster.ArchiveHorizon();
  EXPECT_FALSE(cluster.RestoreToPointBlocking(horizon + 1000).ok());
  EXPECT_FALSE(cluster.RestoreToPointBlocking(kInvalidLsn).ok());
}

TEST(Pitr, ReplicasServeTheRestoredTimeline) {
  core::AuroraCluster cluster(Options(64));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* rep = cluster.AddReplica();
  WritePhaseAndArchive(cluster, "keep-", 10);
  const Lsn point = cluster.writer()->vdl();
  WritePhaseAndArchive(cluster, "drop-", 10);
  cluster.RunFor(100 * kMillisecond);  // replica applies the drop- phase

  ASSERT_TRUE(cluster.RestoreToPointBlocking(point).ok());
  cluster.RunFor(300 * kMillisecond);  // replica re-seeds and catches up

  bool done = false;
  Result<std::string> kept = Status::Internal("unset");
  rep->Get("keep-3", [&](Result<std::string> r) {
    kept = std::move(r);
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  EXPECT_EQ(*kept, "keep-");

  done = false;
  Result<std::string> dropped = Status::Internal("unset");
  rep->Get("drop-3", [&](Result<std::string> r) {
    dropped = std::move(r);
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  EXPECT_TRUE(dropped.status().IsNotFound())
      << "replica must not see the abandoned timeline";
}

TEST(Pitr, RepeatedRestores) {
  core::AuroraCluster cluster(Options(65));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  WritePhaseAndArchive(cluster, "p1-", 8);
  const Lsn point1 = cluster.writer()->vdl();
  WritePhaseAndArchive(cluster, "p2-", 8);

  ASSERT_TRUE(cluster.RestoreToPointBlocking(point1).ok());
  WritePhaseAndArchive(cluster, "p3-", 8);
  const Lsn point2 = cluster.writer()->vdl();
  WritePhaseAndArchive(cluster, "p4-", 8);

  ASSERT_TRUE(cluster.RestoreToPointBlocking(point2).ok());
  ASSERT_TRUE(cluster.GetBlocking("p1-0").ok());
  ASSERT_TRUE(cluster.GetBlocking("p3-0").ok());
  EXPECT_TRUE(cluster.GetBlocking("p2-0").status().IsNotFound());
  EXPECT_TRUE(cluster.GetBlocking("p4-0").status().IsNotFound());
}

}  // namespace
}  // namespace aurora
