// Sustained chaos campaigns: the self-healing control plane under
// continuous fire.
//
// A campaign run executes a long randomized fault schedule — crashes,
// restarts, partitions, FLAPPING nodes, scrub corruption, writer crashes,
// AZ blips — with the health monitor and repair planner running the whole
// time and the invariant auditor attached at every simulator event. The
// pass condition is strict (chaos_harness campaign mode): the volume must
// re-converge to six healthy, hydrated segments per PG on its own, with
// zero auditor violations and zero parked commits left undrained. Any
// breach auto-captures the trace and delta-debugs the schedule to a
// minimal reproducer, exactly like the plain chaos sweep.
//
// The sweep also aggregates the campaign JSON artifact: per-seed repair
// outcomes plus the suspicion→repair-commit MTTR histogram.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/common/histogram.h"
#include "src/core/chaos_harness.h"
#include "src/sim/trace.h"

namespace aurora {
namespace {

// Runs one campaign seed; on breach, captures + shrinks and reports via
// ADD_FAILURE. Returns the run result either way.
core::ChaosRunResult RunCampaignSeed(uint64_t seed, int num_ops) {
  SCOPED_TRACE("campaign seed " + std::to_string(seed));
  const core::ChaosSchedule schedule =
      core::GenerateCampaignSchedule(seed, num_ops);

  sim::Trace trace;
  core::ChaosRunOptions options;
  options.campaign = true;
  options.record = &trace;
  core::ChaosRunResult result = core::RunChaosSchedule(schedule, options);

  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  for (const std::string& error : result.errors) {
    ADD_FAILURE() << "durability contract: " << error;
  }
  if (result.violations.empty()) return result;

  const std::string trace_path =
      "campaign_seed_" + std::to_string(seed) + ".trace.jsonl";
  const Status write_status = trace.WriteFile(trace_path);
  const std::string invariant = result.violations.front().invariant;
  std::string report = "invariant \"" + invariant + "\" violated: " +
                       result.violations.front().detail;
  if (write_status.ok()) {
    report += "\ntrace captured to " + trace_path;
  }
  auto shrunk =
      core::ShrinkChaosViolation(schedule, invariant, /*campaign=*/true);
  if (shrunk.ok()) {
    report += "\nminimized " + std::to_string(shrunk->original_ops) +
              " ops -> " + std::to_string(shrunk->minimized.ops.size()) +
              " in " + std::to_string(shrunk->replays) + " replays:\n" +
              shrunk->timeline;
  } else {
    report += "\n(shrink failed: " + shrunk.status().ToString() + ")";
  }
  ADD_FAILURE() << report;
  return result;
}

// Quick smoke for tier-1: a handful of short campaigns so every CI run
// exercises suspicion, repair, revert, and degraded-mode parking.
TEST(ChaosCampaign, Smoke) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const core::ChaosRunResult result = RunCampaignSeed(seed, 12);
    if (!result.violations.empty()) return;  // artifact already reported
  }
}

// The acceptance sweep: >= 25 seeds of sustained faults (including
// flapping nodes) with the repair loop on. Every run must end
// re-converged with nothing parked and nothing violated. Emits the
// campaign JSON with per-seed repair counts and the MTTR histogram.
TEST(ChaosCampaign, SustainedSweepReconvergesEverySeed) {
  constexpr uint64_t kSeeds = 25;
  constexpr int kOpsPerSeed = 40;

  Histogram mttr;
  uint64_t total_committed = 0;
  uint64_t total_reverted = 0;
  std::string per_seed_json;
  bool failed = false;

  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const core::ChaosRunResult result = RunCampaignSeed(seed, kOpsPerSeed);
    mttr.Merge(result.repair_mttr);
    total_committed += result.repairs_committed;
    total_reverted += result.repairs_reverted;
    if (!per_seed_json.empty()) per_seed_json += ",";
    per_seed_json += "\n    {\"seed\": " + std::to_string(seed) +
                     ", \"repairs_committed\": " +
                     std::to_string(result.repairs_committed) +
                     ", \"repairs_reverted\": " +
                     std::to_string(result.repairs_reverted) +
                     ", \"violations\": " +
                     std::to_string(result.violations.size()) + "}";
    if (!result.violations.empty() || !result.errors.empty() ||
        !result.status.ok()) {
      failed = true;
      break;  // the failing seed already produced its shrunk artifact
    }
  }

  // The campaign must actually exercise the repair loop, not just survive
  // a calm run: across 25 seeds of crashes and flaps, repairs happen.
  EXPECT_GT(total_committed + total_reverted, 0u)
      << "no repair was ever attempted — the control plane slept through "
         "the campaign";

  std::string json = "{\n  \"seeds\": " + std::to_string(kSeeds) +
                     ",\n  \"ops_per_seed\": " + std::to_string(kOpsPerSeed) +
                     ",\n  \"passed\": " + (failed ? "false" : "true") +
                     ",\n  \"repairs_committed\": " +
                     std::to_string(total_committed) +
                     ",\n  \"repairs_reverted\": " +
                     std::to_string(total_reverted) +
                     ",\n  \"mttr_us\": {\"count\": " +
                     std::to_string(mttr.count()) +
                     ", \"mean\": " + std::to_string(mttr.Mean()) +
                     ", \"p50\": " + std::to_string(mttr.P50()) +
                     ", \"p90\": " + std::to_string(mttr.P90()) +
                     ", \"p99\": " + std::to_string(mttr.P99()) +
                     ", \"max\": " + std::to_string(mttr.max()) + "}" +
                     ",\n  \"runs\": [" + per_seed_json + "\n  ]\n}\n";
  FILE* f = std::fopen("campaign_report.json", "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  if (mttr.count() > 0) {
    std::printf("campaign MTTR (suspicion -> repair commit): %s\n",
                mttr.Summary().c_str());
  }
}

// A captured campaign run (including the injector's flap dwell draws)
// replays bit-identically — the property shrinking depends on.
TEST(ChaosCampaign, CapturedCampaignReplaysBitIdentically) {
  const core::ChaosSchedule schedule = core::GenerateCampaignSchedule(11, 20);
  sim::Trace trace;
  core::ChaosRunOptions record;
  record.campaign = true;
  record.record = &trace;
  const core::ChaosRunResult original =
      core::RunChaosSchedule(schedule, record);
  ASSERT_TRUE(original.status.ok()) << original.status.ToString();
  ASSERT_TRUE(trace.summary.present);

  core::ChaosRunOptions replay;
  replay.campaign = true;
  replay.replay = &trace;
  const core::ChaosRunResult replayed =
      core::RunChaosSchedule(schedule, replay);
  EXPECT_FALSE(replayed.replay_diverged) << replayed.replay_divergence;
  EXPECT_EQ(replayed.fingerprint, trace.summary.fingerprint);
  EXPECT_EQ(replayed.vcl, trace.summary.vcl);
  EXPECT_EQ(replayed.vdl, trace.summary.vdl);
  EXPECT_EQ(replayed.executed_events, trace.summary.executed_events);
  EXPECT_EQ(replayed.end_time, trace.summary.end_time);
}

}  // namespace
}  // namespace aurora
