// Unit tests for the simulation substrate: event loop ordering and
// cancellation, network latency/liveness/partitions, and the failure
// injector's stochastic processes.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/failure_injector.h"
#include "src/sim/network.h"
#include "src/sim/rpc.h"
#include "src/sim/simulator.h"

namespace aurora::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&]() { order.push_back(3); });
  sim.Schedule(10, [&]() { order.push_back(1); });
  sim.Schedule(20, [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(Simulator, FifoForEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(10, [&order, i]() { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.Schedule(10, [&]() { ran = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.ExecutedEvents(), 0u);
}

TEST(Simulator, PendingEventsExcludesCancelled) {
  Simulator sim;
  EventId a = sim.Schedule(10, []() {});
  sim.Schedule(20, []() {});
  sim.Schedule(30, []() {});
  EXPECT_EQ(sim.PendingEvents(), 3u);
  sim.Cancel(a);
  EXPECT_EQ(sim.PendingEvents(), 2u);
  sim.Run();
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.ExecutedEvents(), 2u);
}

TEST(Simulator, CancelAfterFireLeavesNoResidue) {
  Simulator sim;
  EventId id = sim.Schedule(10, []() {});
  sim.Run();
  EXPECT_EQ(sim.ExecutedEvents(), 1u);
  // Cancelling an already-fired event must be a no-op, not a tombstone
  // that permanently skews PendingEvents().
  sim.Cancel(id);
  EXPECT_EQ(sim.PendingEvents(), 0u);
  bool ran = false;
  sim.Schedule(10, [&]() { ran = true; });
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(Simulator, CancelUnknownOrRepeatedIdIsHarmless) {
  Simulator sim;
  sim.Cancel(kInvalidEvent);
  sim.Cancel(999999);  // never scheduled
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EventId id = sim.Schedule(10, []() {});
  sim.Cancel(id);
  sim.Cancel(id);  // double cancel
  EXPECT_EQ(sim.PendingEvents(), 0u);
  sim.Run();
  EXPECT_EQ(sim.ExecutedEvents(), 0u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&]() {
    count++;
    sim.Schedule(10, tick);
  };
  sim.Schedule(10, tick);
  sim.RunUntil(55);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.Now(), 55);
}

TEST(Simulator, NestedSchedulingFromEvents) {
  Simulator sim;
  SimTime inner_time = 0;
  sim.Schedule(10, [&]() {
    sim.Schedule(5, [&]() { inner_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_time, 15);
}

TEST(Simulator, CancelReleasesClosureStateImmediately) {
  // Cancelling must destroy the captured closure at Cancel() time, not
  // when the tombstoned heap entry eventually pops: a retained shared_ptr
  // would otherwise pin arbitrary object graphs (pages, sockets) for the
  // remaining simulated lifetime of the dead event.
  Simulator sim;
  auto payload = std::make_shared<int>(42);
  std::weak_ptr<int> observer = payload;
  EventId id = sim.Schedule(1000000, [payload]() { (void)*payload; });
  payload.reset();
  EXPECT_FALSE(observer.expired()) << "closure should hold the last ref";
  sim.Cancel(id);
  EXPECT_TRUE(observer.expired())
      << "cancel must release the captured state promptly";
  sim.Run();
  EXPECT_EQ(sim.ExecutedEvents(), 0u);
}

TEST(Simulator, StaleIdAfterSlotReuseIsHarmless) {
  Simulator sim;
  EventId old_id = sim.Schedule(10, []() {});
  sim.Cancel(old_id);
  // The freed slot is recycled for the next event; the stale id carries
  // the old generation and must not be able to cancel the new tenant.
  bool ran = false;
  sim.Schedule(20, [&]() { ran = true; });
  sim.Cancel(old_id);
  sim.Cancel(old_id);
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.ExecutedEvents(), 1u);
}

TEST(Simulator, TombstoneCompactionReclaimsHeapEntries) {
  Simulator sim;
  std::vector<EventId> ids;
  const size_t n = 256;
  for (size_t i = 0; i < n; ++i) {
    ids.push_back(sim.Schedule(static_cast<SimDuration>(10 + i), []() {}));
  }
  EXPECT_EQ(sim.HeapEntriesForTest(), n);
  // Cancel most events: once tombstones exceed half the heap, compaction
  // must rebuild it instead of letting dead entries accumulate.
  for (size_t i = 0; i < n - 8; ++i) sim.Cancel(ids[i]);
  EXPECT_EQ(sim.PendingEvents(), 8u);
  EXPECT_LT(sim.HeapEntriesForTest(), n / 2)
      << "compaction should have shed the tombstones";
  EXPECT_LE(sim.DeadHeapEntriesForTest(), sim.HeapEntriesForTest());
  sim.Run();
  EXPECT_EQ(sim.ExecutedEvents(), 8u);
  EXPECT_EQ(sim.HeapEntriesForTest(), 0u);
  EXPECT_EQ(sim.DeadHeapEntriesForTest(), 0u);
}

TEST(Simulator, CancelHeavyInterleavedOrdering) {
  // Interleave schedules and cancels (the retry-timer pattern: most
  // timers are armed and disarmed without firing) and verify survivors
  // run in exact (time, seq) order.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> cancellable;
  for (int round = 0; round < 50; ++round) {
    // Two keepers and two victims per round, at colliding timestamps.
    const SimDuration when = 10 + (round % 7);
    sim.Schedule(when, [&order, round]() { order.push_back(round * 2); });
    cancellable.push_back(sim.Schedule(when, [&order]() {
      order.push_back(-1);  // must never run
    }));
    sim.Schedule(when + 3, [&order, round]() {
      order.push_back(round * 2 + 1);
    });
    cancellable.push_back(sim.Schedule(when + 3, [&order]() {
      order.push_back(-1);
    }));
    if (round % 2 == 0) {
      // Cancel this round's victims immediately...
      sim.Cancel(cancellable[cancellable.size() - 2]);
      sim.Cancel(cancellable.back());
      cancellable.resize(cancellable.size() - 2);
    }
  }
  // ...and the accumulated odd-round victims before running.
  for (EventId id : cancellable) sim.Cancel(id);
  sim.Run();
  ASSERT_EQ(order.size(), 100u);
  // Survivors must be sorted by (time, seq): reconstruct expected order.
  std::vector<std::pair<SimTime, int>> expected;
  for (int round = 0; round < 50; ++round) {
    expected.push_back({10 + (round % 7), round * 2});
    expected.push_back({10 + (round % 7) + 3, round * 2 + 1});
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(order[i], expected[i].second) << "position " << i;
  }
}

TEST(Simulator, RunUntilDeadlineBoundary) {
  Simulator sim;
  bool at_deadline = false;
  bool after_deadline = false;
  sim.Schedule(50, [&]() { at_deadline = true; });
  sim.Schedule(51, [&]() { after_deadline = true; });
  sim.RunUntil(50);
  // An event exactly AT the deadline runs; one past it stays pending.
  EXPECT_TRUE(at_deadline);
  EXPECT_FALSE(after_deadline);
  EXPECT_EQ(sim.Now(), 50);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_TRUE(after_deadline);
}

TEST(Simulator, RunUntilIgnoresCancelledTopBeyondDeadline) {
  // A cancelled event at the top of the heap with time <= deadline must
  // not trick RunUntil into executing the next LIVE event beyond the
  // deadline: dead entries are pruned before the deadline check.
  Simulator sim;
  EventId dead = sim.Schedule(40, []() {});
  bool beyond_ran = false;
  sim.Schedule(60, [&]() { beyond_ran = true; });
  sim.Cancel(dead);
  sim.RunUntil(50);
  EXPECT_FALSE(beyond_ran);
  EXPECT_EQ(sim.Now(), 50);
  EXPECT_EQ(sim.ExecutedEvents(), 0u);
  sim.RunUntil(60);
  EXPECT_TRUE(beyond_ran);
}

TEST(Simulator, LargeClosureSpillsToPoolAndRuns) {
  // Captures beyond the inline small-buffer budget take the closure-pool
  // path; behaviour (ordering, cancel, destruction) must be identical.
  Simulator sim;
  std::array<uint64_t, 40> big{};  // 320 bytes, well past the inline cap
  for (size_t i = 0; i < big.size(); ++i) big[i] = i;
  uint64_t sum = 0;
  sim.Schedule(10, [big, &sum]() {
    for (uint64_t v : big) sum += v;
  });
  auto payload = std::make_shared<int>(7);
  std::weak_ptr<int> observer = payload;
  EventId spill = sim.Schedule(20, [big, payload]() { (void)*payload; });
  payload.reset();
  sim.Cancel(spill);
  EXPECT_TRUE(observer.expired())
      << "pooled closure must also release state at cancel";
  sim.Run();
  EXPECT_EQ(sum, (big.size() - 1) * big.size() / 2);
}

TEST(Network, DeliversWithLatency) {
  Simulator sim;
  NetworkOptions options;
  options.intra_az = LatencyDistribution::Constant(100);
  options.cross_az = LatencyDistribution::Constant(700);
  options.bytes_per_us = 0;
  Network net(&sim, options);
  net.RegisterNode(1, 0);
  net.RegisterNode(2, 0);
  net.RegisterNode(3, 1);

  SimTime intra = 0, cross = 0;
  net.Send(1, 2, 10, [&]() { intra = sim.Now(); });
  net.Send(1, 3, 10, [&]() { cross = sim.Now(); });
  sim.Run();
  EXPECT_EQ(intra, 100);
  EXPECT_EQ(cross, 700);
}

TEST(Network, CrashDropsInFlightAndFutureMessages) {
  Simulator sim;
  NetworkOptions options;
  options.intra_az = LatencyDistribution::Constant(100);
  Network net(&sim, options);
  net.RegisterNode(1, 0);
  net.RegisterNode(2, 0);

  bool delivered = false;
  net.Send(1, 2, 10, [&]() { delivered = true; });
  sim.Schedule(50, [&]() { net.Crash(2); });  // mid-flight
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.stats().messages_dropped, 1u);

  // Down destination: dropped at send.
  net.Send(1, 2, 10, [&]() { delivered = true; });
  sim.Run();
  EXPECT_FALSE(delivered);
}

TEST(Network, RestartDoesNotResurrectOldDeliveries) {
  Simulator sim;
  NetworkOptions options;
  options.intra_az = LatencyDistribution::Constant(100);
  Network net(&sim, options);
  net.RegisterNode(1, 0);
  net.RegisterNode(2, 0);
  bool delivered = false;
  net.Send(1, 2, 10, [&]() { delivered = true; });
  sim.Schedule(10, [&]() { net.Crash(2); });
  sim.Schedule(20, [&]() { net.Restart(2); });  // back up before delivery
  sim.Run();
  // Incarnation changed: the old message must not be delivered.
  EXPECT_FALSE(delivered);
}

TEST(Network, PartitionBlocksBothWays) {
  Simulator sim;
  Network net(&sim);
  net.RegisterNode(1, 0);
  net.RegisterNode(2, 1);
  net.Partition(1, 2, true);
  bool delivered = false;
  net.Send(1, 2, 10, [&]() { delivered = true; });
  net.Send(2, 1, 10, [&]() { delivered = true; });
  sim.Run();
  EXPECT_FALSE(delivered);
  net.Partition(1, 2, false);
  net.Send(1, 2, 10, [&]() { delivered = true; });
  sim.Run();
  EXPECT_TRUE(delivered);
}

TEST(Network, AzFailureCrashesAllNodesInAz) {
  Simulator sim;
  Network net(&sim);
  net.RegisterNode(1, 0);
  net.RegisterNode(2, 0);
  net.RegisterNode(3, 1);
  net.FailAz(0);
  EXPECT_FALSE(net.IsUp(1));
  EXPECT_FALSE(net.IsUp(2));
  EXPECT_TRUE(net.IsUp(3));
  // A node inside a failed AZ cannot restart individually.
  net.Restart(1);
  EXPECT_FALSE(net.IsUp(1));
  net.RestoreAz(0);
  EXPECT_TRUE(net.IsUp(1));
  EXPECT_TRUE(net.IsUp(2));
}

TEST(Network, LifecycleListenerNotified) {
  struct Listener : NodeLifecycleListener {
    int crashes = 0;
    int restarts = 0;
    void OnCrash() override { crashes++; }
    void OnRestart() override { restarts++; }
  };
  Simulator sim;
  Network net(&sim);
  Listener listener;
  net.RegisterNode(1, 0, &listener);
  net.Crash(1);
  net.Crash(1);  // idempotent
  net.Restart(1);
  EXPECT_EQ(listener.crashes, 1);
  EXPECT_EQ(listener.restarts, 1);
}

TEST(Network, SlowdownInflatesLatency) {
  Simulator sim;
  NetworkOptions options;
  options.intra_az = LatencyDistribution::Constant(100);
  options.bytes_per_us = 0;
  Network net(&sim, options);
  net.RegisterNode(1, 0);
  net.RegisterNode(2, 0);
  net.SetNodeSlowdown(2, 5.0);
  SimTime at = 0;
  net.Send(1, 2, 10, [&]() { at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(at, 500);
}

TEST(Network, BandwidthTermScalesWithBytes) {
  Simulator sim;
  NetworkOptions options;
  options.intra_az = LatencyDistribution::Constant(100);
  options.bytes_per_us = 10.0;
  Network net(&sim, options);
  net.RegisterNode(1, 0);
  net.RegisterNode(2, 0);
  SimTime at = 0;
  net.Send(1, 2, 5000, [&]() { at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(at, 600);  // 100 base + 5000/10
}

TEST(Network, StatsAccounting) {
  Simulator sim;
  Network net(&sim);
  net.RegisterNode(1, 0);
  net.RegisterNode(2, 0);
  net.Send(1, 2, 100, []() {});
  net.Send(1, 2, 200, []() {});
  sim.Run();
  EXPECT_EQ(net.stats().messages_sent, 2u);
  EXPECT_EQ(net.stats().messages_delivered, 2u);
  EXPECT_EQ(net.stats().bytes_sent, 300u);
}

TEST(Rpc, UnaryCallRoundTrips) {
  Simulator sim;
  NetworkOptions options;
  options.intra_az = LatencyDistribution::Constant(50);
  options.bytes_per_us = 0;
  Network net(&sim, options);
  net.RegisterNode(1, 0);
  net.RegisterNode(2, 0);
  int response = 0;
  SimTime at = 0;
  UnaryCall<int>(
      &net, 1, 2, 100, [](ReplyFn<int> reply) { reply(42); },
      [](const int&) { return uint64_t{10}; },
      [&](int v) {
        response = v;
        at = sim.Now();
      });
  sim.Run();
  EXPECT_EQ(response, 42);
  EXPECT_EQ(at, 100);  // 50 each way
}

TEST(Rpc, ServerCrashSwallowsCall) {
  Simulator sim;
  Network net(&sim);
  net.RegisterNode(1, 0);
  net.RegisterNode(2, 0);
  net.Crash(2);
  bool responded = false;
  UnaryCall<int>(
      &net, 1, 2, 100, [](ReplyFn<int> reply) { reply(1); },
      [](const int&) { return uint64_t{10}; },
      [&](int) { responded = true; });
  sim.Run();
  EXPECT_FALSE(responded);
}

TEST(FailureInjector, ScriptedFaultsFire) {
  Simulator sim;
  Network net(&sim);
  net.RegisterNode(1, 0);
  FailureInjector injector(&sim, &net);
  injector.CrashNodeAt(100, 1);
  injector.RestartNodeAt(200, 1);
  sim.RunUntil(150);
  EXPECT_FALSE(net.IsUp(1));
  sim.RunUntil(250);
  EXPECT_TRUE(net.IsUp(1));
}

TEST(FailureInjector, BackgroundProcessProducesFailures) {
  Simulator sim(77);
  Network net(&sim);
  for (NodeId n = 1; n <= 10; ++n) net.RegisterNode(n, n % 3);
  FailureModel model;
  model.node_mttf = 10 * kSecond;
  model.node_mttr = 1 * kSecond;
  FailureInjector injector(&sim, &net, model);
  injector.Start({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  sim.RunUntil(60 * kSecond);
  injector.Stop();
  // Expectation ~ 10 nodes * 60s / 10s MTTF = ~60 failures; loose bounds.
  EXPECT_GT(injector.node_failures(), 20u);
  EXPECT_LT(injector.node_failures(), 200u);
}

TEST(FailureInjector, AzOutageProcess) {
  Simulator sim(5);
  Network net(&sim);
  net.RegisterNode(1, 0);
  FailureModel model;
  model.node_mttf = 0x7fffffffffff;  // effectively never
  model.az_mttf = 5 * kSecond;
  model.az_mttr = 1 * kSecond;
  FailureInjector injector(&sim, &net, model);
  injector.Start({}, {0});
  sim.RunUntil(60 * kSecond);
  EXPECT_GT(injector.az_failures(), 3u);
}

TEST(FailureInjector, SlowNodeRestores) {
  Simulator sim;
  Network net(&sim);
  net.RegisterNode(1, 0);
  FailureInjector injector(&sim, &net);
  injector.SlowNodeAt(10, 1, 8.0, 100);
  sim.RunUntil(50);
  EXPECT_EQ(net.NodeSlowdown(1), 8.0);
  sim.RunUntil(200);
  EXPECT_EQ(net.NodeSlowdown(1), 1.0);
}

}  // namespace
}  // namespace aurora::sim
