// Crash-recovery edge cases (§2.4): truncation-range semantics against
// late writes, recovery with degraded fleets, recovery racing another
// instance (epoch arbitration, no consensus), immediate re-crash, and
// recovery with no committed work at all.

#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/core/invariant_auditor.h"

namespace aurora {
namespace {

core::AuroraOptions Options(uint64_t seed) {
  core::AuroraOptions options;
  options.seed = seed;
  options.blocks_per_pg = 1 << 16;
  return options;
}

TEST(Recovery, FreshVolumeCrashBeforeAnyUserWrite) {
  core::AuroraCluster cluster(Options(81));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  cluster.CrashWriter();
  cluster.RunFor(10 * kMillisecond);
  ASSERT_TRUE(cluster.RecoverWriterBlocking().ok());
  ASSERT_TRUE(cluster.PutBlocking("first", "v").ok());
  EXPECT_EQ(*cluster.GetBlocking("first"), "v");
}

TEST(Recovery, ImmediateRecrashDuringFirstRecovery) {
  core::AuroraCluster cluster(Options(82));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("k" + std::to_string(i), "v").ok());
  }
  cluster.CrashWriter();
  cluster.RunFor(5 * kMillisecond);
  // Start recovery but crash again before it can finish.
  cluster.network().Restart(cluster.writer()->id());
  bool first_done = false;
  Status first_status = Status::OK();
  cluster.writer()->Open([&](Status st) {
    first_status = std::move(st);
    first_done = true;
  });
  cluster.RunFor(20 * kMillisecond);  // recovery mid-flight
  cluster.CrashWriter();
  cluster.RunFor(10 * kMillisecond);
  // Second recovery attempt must converge regardless of the first.
  ASSERT_TRUE(cluster.RecoverWriterBlocking().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.GetBlocking("k" + std::to_string(i)).ok()) << i;
  }
  ASSERT_TRUE(cluster.PutBlocking("post", "v").ok());
}

TEST(Recovery, TwoInstancesRaceEpochArbitrates) {
  core::AuroraCluster cluster(Options(83));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("k" + std::to_string(i), "v").ok());
  }
  cluster.CrashWriter();
  cluster.RunFor(5 * kMillisecond);

  // Two fresh instances race to open the same volume — no coordination
  // beyond the metadata service's epoch counter and storage rejections.
  auto a = cluster.CreateDetachedInstance();
  auto b = cluster.CreateDetachedInstance();
  Status status_a = Status::Internal("pending");
  Status status_b = Status::Internal("pending");
  bool done_a = false, done_b = false;
  a->Open([&](Status st) {
    status_a = std::move(st);
    done_a = true;
  });
  b->Open([&](Status st) {
    status_b = std::move(st);
    done_b = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return done_a && done_b; }));

  // Both may "open", but the one with the lower volume epoch is fenced
  // the moment it writes. Exactly one writer survives a write workload.
  int writers_alive = 0;
  for (auto* instance : {a.get(), b.get()}) {
    if (!instance->IsOpen()) continue;
    bool put_done = false;
    Status put_status = Status::OK();
    const TxnId txn = instance->Begin();
    instance->Put(txn, "race", "w" + std::to_string(instance->id()),
                  [&](Status st) {
                    put_status = std::move(st);
                    put_done = true;
                  });
    cluster.RunUntil([&]() { return put_done; }, 5 * kSecond);
    bool commit_done = false;
    Status commit_status = Status::Unavailable("not attempted");
    if (put_status.ok()) {
      instance->Commit(txn, [&](Status st) {
        commit_status = std::move(st);
        commit_done = true;
      });
      cluster.RunUntil([&]() { return commit_done || instance->IsFenced(); },
                       5 * kSecond);
    }
    cluster.RunFor(100 * kMillisecond);
    if (commit_done && commit_status.ok() && !instance->IsFenced()) {
      writers_alive++;
    }
  }
  EXPECT_EQ(writers_alive, 1) << "volume epochs must arbitrate the race";
}

TEST(Recovery, LateInFlightWritesAreAnnulled) {
  core::AuroraCluster cluster(Options(84));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  ASSERT_TRUE(cluster.PutBlocking("stable", "v").ok());

  // Issue a write and crash while its records may still be in flight to
  // some segments; partition two segments first so their copies arrive
  // LATE (after recovery), exercising the §2.4 requirement that completed
  // in-flight operations are ignored.
  auto* writer = cluster.writer();
  const auto members = cluster.geometry().Pg(0).AllMembers();
  cluster.network().SetNodeSlowdown(members[4].node, 500.0);
  cluster.network().SetNodeSlowdown(members[5].node, 500.0);
  const TxnId loser = writer->Begin();
  writer->Put(loser, "late", "in-flight", [](Status) {});
  cluster.RunFor(100);  // records dispatched, slow copies in flight
  cluster.CrashWriter();
  cluster.RunFor(5 * kMillisecond);
  ASSERT_TRUE(cluster.RecoverWriterBlocking().ok());
  cluster.network().SetNodeSlowdown(members[4].node, 1.0);
  cluster.network().SetNodeSlowdown(members[5].node, 1.0);
  // Let the slow deliveries land AFTER recovery installed truncation.
  cluster.RunFor(2 * kSecond);

  EXPECT_TRUE(cluster.GetBlocking("late").status().IsNotFound())
      << "annulled write must stay annulled even after late delivery";
  EXPECT_EQ(*cluster.GetBlocking("stable"), "v");
  // New writes chain cleanly above the truncation gap.
  ASSERT_TRUE(cluster.PutBlocking("late", "second-life").ok());
  EXPECT_EQ(*cluster.GetBlocking("late"), "second-life");
}

TEST(Recovery, WorksFromBareReadQuorum) {
  core::AuroraCluster cluster(Options(85));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("k" + std::to_string(i), "v").ok());
  }
  cluster.CrashWriter();
  // Take down three of six segments: exactly a read quorum (3/6) remains,
  // below the write quorum. Recovery must still compute points and then
  // wait for a write quorum to install the epoch... so restore ONE node
  // shortly after to let the install complete.
  const auto members = cluster.geometry().Pg(0).AllMembers();
  for (int i = 0; i < 3; ++i) cluster.network().Crash(members[i].node);
  cluster.RunFor(5 * kMillisecond);
  cluster.failures().RestartNodeAt(cluster.sim().Now() + 300 * kMillisecond,
                                   members[0].node);
  ASSERT_TRUE(cluster.RecoverWriterBlocking().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.GetBlocking("k" + std::to_string(i)).ok()) << i;
  }
}

// §2.4 end to end, under the invariant auditor: crash the writer with an
// MTR only partially delivered (a ragged edge below the write quorum),
// then assert that recovery (a) snips the edge with a truncation range on
// every segment, (b) increments the volume epoch, and (c) leaves every
// surviving segment rejecting I/O stamped with the old epoch.
TEST(Recovery, MidMtrCrashTruncatesRaggedEdgeAndFencesOldEpoch) {
  core::AuroraCluster cluster(Options(87));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("base" + std::to_string(i), "v").ok());
  }
  const VolumeEpoch old_epoch = cluster.writer()->volume_epoch();

  core::InvariantAuditor auditor(&cluster);
  auditor.Attach(1);

  // Slow four of six members so the next MTR's records land on at most
  // two segments — durable nowhere near a write quorum.
  const auto members = cluster.geometry().Pg(0).AllMembers();
  for (size_t i = 2; i < members.size(); ++i) {
    cluster.network().SetNodeSlowdown(members[i].node, 1000.0);
  }
  auto* writer = cluster.writer();
  const TxnId txn = writer->Begin();
  writer->Put(txn, "ragged", "partial", [](Status) {});
  cluster.RunFor(2 * kMillisecond);  // fast copies delivered, rest in flight
  cluster.CrashWriter();
  for (size_t i = 2; i < members.size(); ++i) {
    cluster.network().SetNodeSlowdown(members[i].node, 1.0);
  }
  cluster.RunFor(5 * kMillisecond);
  ASSERT_TRUE(cluster.RecoverWriterBlocking().ok());
  const Lsn recovered_vdl = cluster.writer()->vdl();
  // Recovery returns at a write quorum; let the slower members (whose
  // links may still be draining 1000x-delayed deliveries) receive the
  // epoch + truncation install too before asserting on all six.
  cluster.RunFor(2 * kSecond);

  // (b) the volume epoch advanced exactly once.
  EXPECT_EQ(cluster.writer()->volume_epoch(), old_epoch + 1);
  EXPECT_EQ(cluster.metadata().volume_epoch(), old_epoch + 1);

  for (const auto& member : members) {
    auto* segment = cluster.NodeForSegment(member.id)->FindSegment(member.id);
    ASSERT_NE(segment, nullptr);
    // (a) every segment installed the truncation range and no segment's
    // chain extends into it: the ragged edge is snipped.
    ASSERT_FALSE(segment->hot_log().truncations().empty())
        << "segment " << member.id << " missing truncation range";
    const auto& range = segment->hot_log().truncations().back();
    EXPECT_EQ(range.start, recovered_vdl + 1);
    EXPECT_LE(segment->scl(), recovered_vdl) << "segment " << member.id;
    // (c) I/O stamped with the pre-crash volume epoch is rejected.
    const Status stale = segment->CheckEpochs(
        EpochVector{old_epoch, segment->config().epoch()});
    EXPECT_TRUE(stale.IsStaleEpoch())
        << "segment " << member.id << ": " << stale.ToString();
  }

  // The annulled write is gone and stays gone; the volume keeps working.
  EXPECT_TRUE(cluster.GetBlocking("ragged").status().IsNotFound());
  ASSERT_TRUE(cluster.PutBlocking("after", "v").ok());
  EXPECT_EQ(*cluster.GetBlocking("after"), "v");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(*cluster.GetBlocking("base" + std::to_string(i)), "v");
  }
  auditor.CheckNow();
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
  auditor.Detach();
}

TEST(Recovery, EpochStrictlyIncreasesAcrossRecoveries) {
  core::AuroraCluster cluster(Options(86));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  VolumeEpoch last = cluster.writer()->volume_epoch();
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(cluster.PutBlocking("r" + std::to_string(round), "v").ok());
    cluster.CrashWriter();
    cluster.RunFor(5 * kMillisecond);
    ASSERT_TRUE(cluster.RecoverWriterBlocking().ok());
    EXPECT_EQ(cluster.writer()->volume_epoch(), last + 1);
    last = cluster.writer()->volume_epoch();
  }
  // Storage agrees on the final epoch at a write quorum.
  size_t at_final_epoch = 0;
  for (const auto& node : cluster.storage_nodes()) {
    for (const auto& [id, segment] : node->segments()) {
      if (segment->volume_epoch() == last) at_final_epoch++;
    }
  }
  EXPECT_GE(at_final_epoch, 4u);
}

}  // namespace
}  // namespace aurora
