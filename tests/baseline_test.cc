// Unit tests for the comparison baselines: 2PC, Paxos/Multi-Paxos, lease
// fencing, ARIES recovery pricing, and page-shipping replication.

#include <gtest/gtest.h>

#include "src/baseline/aries.h"
#include "src/baseline/lease.h"
#include "src/baseline/paxos.h"
#include "src/baseline/sync_replication.h"
#include "src/baseline/two_phase_commit.h"

namespace aurora::baseline {
namespace {

sim::NetworkOptions FlatNetwork() {
  sim::NetworkOptions options;
  options.intra_az = LatencyDistribution::Constant(100);
  options.cross_az = LatencyDistribution::Constant(600);
  options.bytes_per_us = 0;
  return options;
}

storage::DiskOptions FlatDisk() {
  storage::DiskOptions options;
  options.write_latency = LatencyDistribution::Constant(50);
  options.read_latency = LatencyDistribution::Constant(50);
  options.bytes_per_us = 0;
  return options;
}

// ---------------------------------------------------------------------- //
// 2PC

TEST(TwoPhaseCommit, CommitsWhenAllVoteYes) {
  sim::Simulator sim;
  sim::Network net(&sim, FlatNetwork());
  std::vector<std::unique_ptr<TpcParticipant>> participants;
  std::vector<TpcParticipant*> raw;
  for (NodeId id = 10; id < 13; ++id) {
    participants.push_back(
        std::make_unique<TpcParticipant>(&sim, &net, id, id % 3, FlatDisk()));
    raw.push_back(participants.back().get());
  }
  TpcCoordinator coordinator(&sim, &net, 1, 0, raw, 1 * kSecond, FlatDisk());
  bool committed = false;
  coordinator.Commit([&](bool ok) { committed = ok; });
  sim.Run();
  EXPECT_TRUE(committed);
  EXPECT_EQ(coordinator.stats().commits, 1u);
  // Latency: slowest participant RTT (cross-AZ 600*2) + 2 disk writes +
  // coordinator force-write — well above a single one-way hop.
  EXPECT_GT(coordinator.latency().max(), 1200);
}

TEST(TwoPhaseCommit, AnyNoVoteAborts) {
  sim::Simulator sim;
  sim::Network net(&sim, FlatNetwork());
  TpcParticipant p1(&sim, &net, 10, 0, FlatDisk());
  TpcParticipant p2(&sim, &net, 11, 1, FlatDisk());
  p2.SetVoteNo(true);
  TpcCoordinator coordinator(&sim, &net, 1, 0, {&p1, &p2}, 1 * kSecond,
                             FlatDisk());
  bool committed = true;
  coordinator.Commit([&](bool ok) { committed = ok; });
  sim.Run();
  EXPECT_FALSE(committed);
  EXPECT_EQ(coordinator.stats().aborts, 1u);
}

TEST(TwoPhaseCommit, DeadParticipantStallsUntilTimeout) {
  sim::Simulator sim;
  sim::Network net(&sim, FlatNetwork());
  TpcParticipant p1(&sim, &net, 10, 0, FlatDisk());
  TpcParticipant p2(&sim, &net, 11, 1, FlatDisk());
  net.Crash(11);
  TpcCoordinator coordinator(&sim, &net, 1, 0, {&p1, &p2},
                             /*timeout=*/500 * kMillisecond, FlatDisk());
  bool done = false;
  bool committed = true;
  coordinator.Commit([&](bool ok) {
    committed = ok;
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(committed);
  EXPECT_GE(sim.Now(), 500 * kMillisecond)
      << "2PC blocks on the failed participant — the availability problem "
         "Aurora's quorum writes avoid";
}

// ---------------------------------------------------------------------- //
// Paxos

std::vector<std::unique_ptr<PaxosAcceptor>> MakeAcceptors(
    sim::Simulator& sim, sim::Network& net, int n) {
  std::vector<std::unique_ptr<PaxosAcceptor>> acceptors;
  for (int i = 0; i < n; ++i) {
    acceptors.push_back(std::make_unique<PaxosAcceptor>(
        &sim, &net, 20 + i, i % 3, FlatDisk()));
  }
  return acceptors;
}

TEST(Paxos, ChoosesValueWithMajority) {
  sim::Simulator sim;
  sim::Network net(&sim, FlatNetwork());
  auto acceptors = MakeAcceptors(sim, net, 3);
  MultiPaxosLog log(&sim, &net, 1, 0,
                    {acceptors[0].get(), acceptors[1].get(),
                     acceptors[2].get()});
  uint64_t chosen_slot = 99;
  log.Append("value-a", [&](uint64_t slot) { chosen_slot = slot; });
  sim.Run();
  EXPECT_EQ(chosen_slot, 0u);
  EXPECT_EQ(log.stats().committed, 1u);
  // First append pays the prepare round; later ones skip it.
  EXPECT_EQ(log.stats().prepare_rounds, 1u);
  log.Append("value-b", [](uint64_t) {});
  sim.Run();
  EXPECT_EQ(log.stats().prepare_rounds, 1u);
}

TEST(Paxos, SurvivesMinorityAcceptorFailure) {
  sim::Simulator sim;
  sim::Network net(&sim, FlatNetwork());
  auto acceptors = MakeAcceptors(sim, net, 5);
  std::vector<PaxosAcceptor*> raw;
  for (auto& a : acceptors) raw.push_back(a.get());
  MultiPaxosLog log(&sim, &net, 1, 0, raw);
  net.Crash(20);
  net.Crash(21);
  bool committed = false;
  log.Append("v", [&](uint64_t) { committed = true; });
  sim.Run();
  EXPECT_TRUE(committed) << "majority (3/5) still reachable";
}

TEST(Paxos, StallsWithoutMajority) {
  sim::Simulator sim;
  sim::Network net(&sim, FlatNetwork());
  auto acceptors = MakeAcceptors(sim, net, 3);
  std::vector<PaxosAcceptor*> raw;
  for (auto& a : acceptors) raw.push_back(a.get());
  MultiPaxosLog log(&sim, &net, 1, 0, raw);
  net.Crash(20);
  net.Crash(21);
  bool committed = false;
  log.Append("v", [&](uint64_t) { committed = true; });
  sim.RunUntil(10 * kSecond);
  EXPECT_FALSE(committed);
}

TEST(Paxos, LeadershipLossForcesPrepare) {
  sim::Simulator sim;
  sim::Network net(&sim, FlatNetwork());
  auto acceptors = MakeAcceptors(sim, net, 3);
  MultiPaxosLog log(&sim, &net, 1, 0,
                    {acceptors[0].get(), acceptors[1].get(),
                     acceptors[2].get()});
  log.Append("a", [](uint64_t) {});
  sim.Run();
  log.LoseLeadership();
  log.Append("b", [](uint64_t) {});
  sim.Run();
  EXPECT_EQ(log.stats().prepare_rounds, 2u);
}

// ---------------------------------------------------------------------- //
// Lease fencing

TEST(Lease, HolderBlocksOthersUntilExpiry) {
  sim::Simulator sim;
  LeaseOptions options;
  options.ttl = 10 * kSecond;
  LeaseManager lease(&sim, options);
  EXPECT_TRUE(lease.Acquire(1));
  EXPECT_FALSE(lease.Acquire(2));
  EXPECT_TRUE(lease.Acquire(1)) << "renewal";
  sim.RunUntil(11 * kSecond);
  EXPECT_EQ(lease.Holder(), kInvalidNode);
  EXPECT_TRUE(lease.Acquire(2));
}

TEST(Lease, FailoverWaitsForExpiryPlusSkew) {
  sim::Simulator sim;
  LeaseOptions options;
  options.ttl = 10 * kSecond;
  options.skew_margin = 500 * kMillisecond;
  LeaseManager lease(&sim, options);
  ASSERT_TRUE(lease.Acquire(1));
  // Holder dies immediately; a new writer must still wait out the TTL.
  SimDuration waited = -1;
  lease.AcquireWhenFree(2, [&](SimDuration wait) { waited = wait; });
  sim.Run();
  EXPECT_EQ(waited, 10 * kSecond + 500 * kMillisecond);
  EXPECT_EQ(lease.Holder(), 2u);
}

TEST(Lease, NoWaitWhenFree) {
  sim::Simulator sim;
  LeaseManager lease(&sim);
  SimDuration waited = -1;
  lease.AcquireWhenFree(2, [&](SimDuration wait) { waited = wait; });
  sim.Run();
  EXPECT_EQ(waited, 0);
}

// ---------------------------------------------------------------------- //
// ARIES recovery pricing

TEST(Aries, RecoveryTimeScalesWithLogDepth) {
  sim::Simulator sim;
  AriesEngine small(&sim);
  AriesEngine large(&sim);
  small.AppendRecords(1000);
  large.AppendRecords(80000);
  EXPECT_GT(large.ExpectedRecoveryTime(), 10 * small.ExpectedRecoveryTime());
}

TEST(Aries, CheckpointResetsReplayWindow) {
  sim::Simulator sim;
  AriesEngine engine(&sim);
  engine.AppendRecords(50000);
  const SimDuration before = engine.ExpectedRecoveryTime();
  engine.Checkpoint();
  EXPECT_LT(engine.ExpectedRecoveryTime(), before);
  EXPECT_EQ(engine.records_since_checkpoint(), 0u);
}

TEST(Aries, RecoverTakesSimulatedTime) {
  sim::Simulator sim;
  AriesEngine engine(&sim);
  engine.AppendRecords(10000);
  SimDuration elapsed = 0;
  engine.Recover([&](SimDuration t) { elapsed = t; });
  sim.Run();
  EXPECT_EQ(elapsed, engine.ExpectedRecoveryTime());
  EXPECT_GT(elapsed, 0);
}

// ---------------------------------------------------------------------- //
// Page-shipping replication

TEST(PageShipping, SynchronousWaitsForAllStandbys) {
  sim::Simulator sim;
  sim::Network net(&sim, FlatNetwork());
  Standby s1(&sim, &net, 10, 1, FlatDisk());
  Standby s2(&sim, &net, 11, 2, FlatDisk());
  PageShippingOptions options;
  options.synchronous = true;
  options.disk = FlatDisk();
  PageShippingPrimary primary(&sim, &net, 1, 0, {&s1, &s2}, options);
  bool done = false;
  primary.CommitTxn(3, [&]() { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  // 3 pages + log record to each of 2 standbys.
  EXPECT_EQ(primary.bytes_shipped(), 2 * (3 * 8192 + 256));
  EXPECT_GT(primary.latency().max(), 1200) << "cross-AZ RTT + standby disk";
}

TEST(PageShipping, AsynchronousReturnsAfterLocalWrite) {
  sim::Simulator sim;
  sim::Network net(&sim, FlatNetwork());
  Standby s1(&sim, &net, 10, 1, FlatDisk());
  PageShippingOptions options;
  options.synchronous = false;
  options.disk = FlatDisk();
  PageShippingPrimary primary(&sim, &net, 1, 0, {&s1}, options);
  SimTime done_at = -1;
  primary.CommitTxn(1, [&]() { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, 50) << "just the local log force-write";
}

}  // namespace
}  // namespace aurora::baseline
