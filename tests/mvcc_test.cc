// MVCC edge cases on the live engine: long version chains, undo-page
// rollover, write-write conflicts, delete visibility, leftover cleanup
// after crashes, scans under concurrent writers, and history purge.

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace aurora {
namespace {

core::AuroraOptions Options(uint64_t seed) {
  core::AuroraOptions options;
  options.seed = seed;
  options.blocks_per_pg = 1 << 16;
  return options;
}

TEST(Mvcc, LongVersionChainResolvesAtEveryAnchor) {
  core::AuroraCluster cluster(Options(91));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  // Open a view, then bury the key under many committed versions.
  auto* writer = cluster.writer();
  ASSERT_TRUE(cluster.PutBlocking("deep", "v0").ok());
  const TxnId old_reader = writer->Begin();
  bool pinned = false;
  writer->Get(old_reader, "deep", [&](Result<std::string> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "v0");
    pinned = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return pinned; }));
  for (int i = 1; i <= 30; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("deep", "v" + std::to_string(i)).ok());
  }
  // The pinned reader still resolves v0 through 30 undo hops.
  bool read_done = false;
  writer->Get(old_reader, "deep", [&](Result<std::string> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, "v0");
    read_done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return read_done; }));
  EXPECT_GT(writer->stats().undo_chain_walks, 25u);
  ASSERT_TRUE(cluster.CommitBlocking(old_reader).ok());
  EXPECT_EQ(*cluster.GetBlocking("deep"), "v30");
}

TEST(Mvcc, UndoPageRolloverWithinOneTransaction) {
  core::AuroraOptions options = Options(92);
  options.db.undo_entries_per_page = 8;  // force several undo pages
  core::AuroraCluster cluster(options);
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* writer = cluster.writer();
  const TxnId txn = writer->Begin();
  int pending = 30;
  for (int i = 0; i < 30; ++i) {
    writer->Put(txn, "u" + std::to_string(i), "v", [&](Status st) {
      ASSERT_TRUE(st.ok());
      pending--;
    });
  }
  ASSERT_TRUE(cluster.RunUntil([&]() { return pending == 0; }));
  // Rollback walks the chain across all undo pages.
  ASSERT_TRUE(cluster.RollbackBlocking(txn).ok());
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(
        cluster.GetBlocking("u" + std::to_string(i)).status().IsNotFound())
        << i;
  }
}

TEST(Mvcc, WriteWriteConflictSurfacesImmediately) {
  core::AuroraCluster cluster(Options(93));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  auto* writer = cluster.writer();
  const TxnId t1 = writer->Begin();
  const TxnId t2 = writer->Begin();
  bool t1_done = false;
  writer->Put(t1, "contested", "t1", [&](Status st) {
    ASSERT_TRUE(st.ok());
    t1_done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return t1_done; }));
  bool t2_done = false;
  Status t2_status = Status::OK();
  writer->Put(t2, "contested", "t2", [&](Status st) {
    t2_status = std::move(st);
    t2_done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return t2_done; }));
  EXPECT_TRUE(t2_status.IsConflict()) << "no waits => immediate conflict";
  // After t1 commits (releasing locks), t2's retry succeeds.
  ASSERT_TRUE(cluster.CommitBlocking(t1).ok());
  t2_done = false;
  writer->Put(t2, "contested", "t2", [&](Status st) {
    t2_status = std::move(st);
    t2_done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return t2_done; }));
  EXPECT_TRUE(t2_status.ok());
  ASSERT_TRUE(cluster.CommitBlocking(t2).ok());
  EXPECT_EQ(*cluster.GetBlocking("contested"), "t2");
}

TEST(Mvcc, DeleteVisibleOnlyAfterCommit) {
  core::AuroraCluster cluster(Options(94));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  ASSERT_TRUE(cluster.PutBlocking("doomed", "alive").ok());
  auto* writer = cluster.writer();
  const TxnId txn = writer->Begin();
  bool del_done = false;
  writer->Delete(txn, "doomed", [&](Status st) {
    ASSERT_TRUE(st.ok());
    del_done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return del_done; }));
  // Uncommitted delete: other readers still see the row.
  EXPECT_EQ(*cluster.GetBlocking("doomed"), "alive");
  // The deleter's own view sees the tombstone.
  bool own_done = false;
  writer->Get(txn, "doomed", [&](Result<std::string> r) {
    EXPECT_TRUE(r.status().IsNotFound());
    own_done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return own_done; }));
  ASSERT_TRUE(cluster.CommitBlocking(txn).ok());
  EXPECT_TRUE(cluster.GetBlocking("doomed").status().IsNotFound());
}

TEST(Mvcc, LeftoverFromCrashedWriterCleanedOnTouch) {
  core::AuroraCluster cluster(Options(95));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  ASSERT_TRUE(cluster.PutBlocking("touched", "committed").ok());
  auto* writer = cluster.writer();
  const TxnId loser = writer->Begin();
  bool put_done = false;
  writer->Put(loser, "touched", "dirty", [&](Status st) {
    ASSERT_TRUE(st.ok());
    put_done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return put_done; }));
  cluster.RunFor(50 * kMillisecond);  // leftover becomes durable
  cluster.CrashWriter();
  cluster.RunFor(10 * kMillisecond);
  ASSERT_TRUE(cluster.RecoverWriterBlocking().ok());

  // A new WRITE to the key must first roll the leftover back (§2.4 undo
  // "in parallel with user activity"), then apply.
  ASSERT_TRUE(cluster.PutBlocking("touched", "fresh").ok());
  EXPECT_EQ(*cluster.GetBlocking("touched"), "fresh");
  EXPECT_GE(cluster.writer()->stats().leftover_rollbacks, 1u);
}

TEST(Mvcc, ScanIsSnapshotConsistentUnderConcurrentCommits) {
  core::AuroraCluster cluster(Options(96));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 10; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "s%02d", i);
    ASSERT_TRUE(cluster.PutBlocking(key, "old").ok());
  }
  auto* writer = cluster.writer();
  const TxnId reader = writer->Begin();
  // Pin the snapshot with a first statement.
  bool pinned = false;
  writer->Get(reader, "s00", [&](Result<std::string> r) {
    ASSERT_TRUE(r.ok());
    pinned = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return pinned; }));
  // Concurrent overwrites + a new row.
  for (int i = 0; i < 5; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "s%02d", i);
    ASSERT_TRUE(cluster.PutBlocking(key, "new").ok());
  }
  ASSERT_TRUE(cluster.PutBlocking("s99", "phantom").ok());

  bool scanned = false;
  writer->Scan(reader, "s00", "s99", 100, [&](auto rows) {
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->size(), 10u) << "phantom must not appear";
    for (const auto& [k, v] : *rows) {
      EXPECT_EQ(v, "old") << k << " must show the snapshot version";
    }
    scanned = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return scanned; }));
  ASSERT_TRUE(cluster.CommitBlocking(reader).ok());
}

TEST(Mvcc, HistoryPurgeKeepsVisibleOutcomes) {
  core::AuroraCluster cluster(Options(97));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("p" + std::to_string(i), "v").ok());
  }
  auto& txns = cluster.writer()->txns();
  const size_t purged = txns.PurgeHistoryBelow(cluster.writer()->vdl() + 1);
  EXPECT_GT(purged, 0u);
  // Reads re-resolve outcomes from the durable status index.
  for (int i = 0; i < 20; i += 3) {
    auto v = cluster.GetBlocking("p" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status().ToString();
  }
}

}  // namespace
}  // namespace aurora
