// Statistical tests for ZipfianGenerator (the YCSB-style workload skew
// used by the read benches).
//
// The C10 read bench derives cache-miss and hedge behavior from the
// generator's skew at theta in {0, 0.99, 1.2}; these tests pin the
// properties those workloads rely on: deterministic-seed frequency
// ranking matches key order (key 0 is the hottest), theta=0 degenerates
// to uniform within tolerance, and hot-key mass grows monotonically
// with theta — including the super-unit theta=1.2 regime where the
// Gray et al. formula's alpha = 1/(1-theta) goes negative.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/random.h"

namespace aurora {
namespace {

constexpr uint64_t kKeys = 1000;
constexpr int kSamples = 200000;

std::vector<uint64_t> SampleFrequencies(double theta, uint64_t seed) {
  ZipfianGenerator zipf(kKeys, theta);
  Rng rng(seed);
  std::vector<uint64_t> freq(kKeys, 0);
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t k = zipf.Next(rng);
    EXPECT_LT(k, kKeys);
    freq[k]++;
  }
  return freq;
}

/// Fraction of all samples that landed on the `hot_keys` lowest key ids.
double HotMass(const std::vector<uint64_t>& freq, size_t hot_keys) {
  uint64_t hot = 0;
  for (size_t i = 0; i < hot_keys && i < freq.size(); ++i) hot += freq[i];
  return static_cast<double>(hot) / kSamples;
}

TEST(Zipf, FrequencyRankingMatchesKeyOrder) {
  const auto freq = SampleFrequencies(0.99, 0xbeef);
  // Exact ranking for the head, where expected gaps dwarf sampling noise:
  // freq(0) > freq(1) > ... > freq(7).
  for (size_t i = 1; i < 8; ++i) {
    EXPECT_GT(freq[i - 1], freq[i]) << "head keys out of rank order at " << i;
  }
  // Beyond the head individual adjacent pairs are noisy, so require the
  // century-aggregated mass (keys [c*100, (c+1)*100)) to be strictly
  // decreasing in c instead.
  uint64_t prev = UINT64_MAX;
  for (size_t century = 0; century < 10; ++century) {
    uint64_t mass = 0;
    for (size_t k = century * 100; k < (century + 1) * 100; ++k) {
      mass += freq[k];
    }
    EXPECT_LT(mass, prev) << "century " << century << " hotter than "
                          << century - 1;
    prev = mass;
  }
}

TEST(Zipf, DeterministicAcrossRuns) {
  const auto a = SampleFrequencies(0.99, 42);
  const auto b = SampleFrequencies(0.99, 42);
  EXPECT_EQ(a, b) << "same seed must give the identical key stream";
  const auto c = SampleFrequencies(0.99, 43);
  EXPECT_NE(a, c) << "different seeds should not collide";
}

TEST(Zipf, ThetaZeroIsUniform) {
  const auto freq = SampleFrequencies(0.0, 0x5eed);
  const double expected = static_cast<double>(kSamples) / kKeys;  // 200
  // Chi-squared against the uniform: with 999 degrees of freedom a
  // healthy sample lands near 999 with sigma ~= sqrt(2*999) ~= 45, so
  // 1200 is beyond +4 sigma and still far from any real skew.
  double chi2 = 0.0;
  for (uint64_t k = 0; k < kKeys; ++k) {
    const double d = static_cast<double>(freq[k]) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 1200.0) << "theta=0 is not uniform (chi2=" << chi2 << ")";
  // And no residual head bias: the 10 lowest key ids hold ~1% of mass.
  EXPECT_LT(HotMass(freq, 10), 0.02);
}

TEST(Zipf, HotKeyMassGrowsMonotonicallyWithTheta) {
  const double thetas[] = {0.0, 0.5, 0.8, 0.99, 1.1, 1.2};
  double prev_top1 = -1.0, prev_top10 = -1.0, prev_top100 = -1.0;
  for (double theta : thetas) {
    const auto freq = SampleFrequencies(theta, 0xabcd);
    const double top1 = HotMass(freq, 1);
    const double top10 = HotMass(freq, 10);
    const double top100 = HotMass(freq, 100);
    EXPECT_GT(top1, prev_top1) << "top-1 mass fell at theta=" << theta;
    EXPECT_GT(top10, prev_top10) << "top-10 mass fell at theta=" << theta;
    EXPECT_GT(top100, prev_top100) << "top-100 mass fell at theta=" << theta;
    prev_top1 = top1;
    prev_top10 = top10;
    prev_top100 = top100;
  }
  // Anchor the endpoints so "monotone" cannot be satisfied by a flat or
  // saturated implementation: YCSB theta=0.99 over 1000 keys concentrates
  // ~13% of draws on the hottest key; theta=1.2 ~23% with the top 10
  // absorbing over half the workload.
  const auto ycsb = SampleFrequencies(0.99, 0xabcd);
  EXPECT_GT(HotMass(ycsb, 1), 0.10);
  EXPECT_LT(HotMass(ycsb, 1), 0.16);
  const auto hot = SampleFrequencies(1.2, 0xabcd);
  EXPECT_GT(HotMass(hot, 1), 0.19);
  EXPECT_GT(HotMass(hot, 10), 0.5);
}

}  // namespace
}  // namespace aurora
