// Determinism tests: identical seeds must yield identical executions —
// the property the whole simulation substrate (and every reproducible
// benchmark number in EXPERIMENTS.md) rests on.

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace aurora {
namespace {

struct RunFingerprint {
  Lsn vcl = 0;
  Lsn vdl = 0;
  VolumeEpoch epoch = 0;
  uint64_t commits = 0;
  SimTime end_time = 0;
  uint64_t net_bytes = 0;
  uint64_t fleet_received = 0;
  uint64_t executed_events = 0;
  uint64_t schedule_fingerprint = 0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint RunScenario(uint64_t seed, uint32_t event_shards = 0) {
  core::AuroraOptions options;
  options.seed = seed;
  options.blocks_per_pg = 1 << 16;
  options.storage_nodes_per_az = 3;
  options.event_shards = event_shards;
  core::AuroraCluster cluster(options);
  EXPECT_TRUE(cluster.StartBlocking().ok());
  // A scenario touching most subsystems: writes, a node crash, a
  // membership change, a writer crash + recovery, more writes.
  for (int i = 0; i < 40; ++i) {
    (void)cluster.PutBlocking("k" + std::to_string(i % 13),
                              "v" + std::to_string(i));
  }
  cluster.network().Crash(cluster.NodeForSegment(5)->id());
  (void)cluster.ReplaceSegmentBlocking(5);
  cluster.CrashWriter();
  cluster.RunFor(10 * kMillisecond);
  (void)cluster.RecoverWriterBlocking();
  for (int i = 0; i < 20; ++i) {
    (void)cluster.PutBlocking("post" + std::to_string(i), "v");
  }
  cluster.RunFor(500 * kMillisecond);

  RunFingerprint fp;
  fp.vcl = cluster.writer()->vcl();
  fp.vdl = cluster.writer()->vdl();
  fp.epoch = cluster.writer()->volume_epoch();
  fp.commits = cluster.writer()->stats().commits_acked;
  fp.end_time = cluster.sim().Now();
  fp.net_bytes = cluster.network().stats().bytes_delivered;
  fp.executed_events = cluster.sim().ExecutedEvents();
  fp.schedule_fingerprint = cluster.sim().ScheduleFingerprint();
  for (const auto& node : cluster.storage_nodes()) {
    for (const auto& [id, segment] : node->segments()) {
      fp.fleet_received += segment->stats().records_received;
    }
  }
  return fp;
}

TEST(Determinism, IdenticalSeedsIdenticalExecutions) {
  const RunFingerprint a = RunScenario(12345);
  const RunFingerprint b = RunScenario(12345);
  EXPECT_EQ(a, b) << "same seed must replay bit-identically";
  EXPECT_GT(a.commits, 0u);
  EXPECT_GT(a.net_bytes, 0u);
}

TEST(Determinism, MatchesPreZeroCopyGoldenFingerprint) {
  // Golden values captured from the tree BEFORE the zero-copy hot-path
  // rework (shared payloads, flat hot log / tracker / retained buffer,
  // move-based event loop), same scenario, seed 12345. The rework is a
  // pure representation change: consistency points, commit counts, event
  // schedule, and wire traffic must be bit-identical. If an intentional
  // protocol change shifts these, re-capture the constants and say so in
  // the commit message.
  const RunFingerprint fp = RunScenario(12345);
  EXPECT_EQ(fp.vcl, 1073742055u);
  EXPECT_EQ(fp.vdl, 1073742055u);
  EXPECT_EQ(fp.epoch, 2u);
  EXPECT_EQ(fp.commits, 60u);
  EXPECT_EQ(fp.end_time, 692849);
  EXPECT_EQ(fp.net_bytes, 282281u);
  EXPECT_EQ(fp.executed_events, 3015u);
  // Schedule fingerprint over every executed (time, label) pair, captured
  // from the tree BEFORE the slab event-engine rewrite (PR 5). The engine
  // overhaul must not reorder, add, or drop a single event.
  EXPECT_EQ(fp.schedule_fingerprint, 7622140960106289882ULL);
}

TEST(Determinism, ShardedOracleMatchesGoldenFingerprint) {
  // The sharded engine with ONE shard (event_shards = 1) is the
  // determinism oracle for parallel mode (DESIGN.md §9): same stamps,
  // same canonical order, same EventIds — so it must reproduce the exact
  // golden constants of the classic engine, fingerprint included.
  const RunFingerprint fp = RunScenario(12345, /*event_shards=*/1);
  EXPECT_EQ(fp.vcl, 1073742055u);
  EXPECT_EQ(fp.vdl, 1073742055u);
  EXPECT_EQ(fp.epoch, 2u);
  EXPECT_EQ(fp.commits, 60u);
  EXPECT_EQ(fp.end_time, 692849);
  EXPECT_EQ(fp.net_bytes, 282281u);
  EXPECT_EQ(fp.executed_events, 3015u);
  EXPECT_EQ(fp.schedule_fingerprint, 7622140960106289882ULL);
}

TEST(Determinism, DifferentSeedsDivergeInTiming) {
  const RunFingerprint a = RunScenario(111);
  const RunFingerprint b = RunScenario(222);
  // Logical outcomes match (same workload) but timing/traffic differ.
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_NE(a.end_time, b.end_time);
}

}  // namespace
}  // namespace aurora
