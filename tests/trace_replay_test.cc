// Trace capture / replay round-trip.
//
// The tentpole guarantee of the trace subsystem (DESIGN.md §6): a captured
// chaos run, serialized to the JSON-lines format, parsed back, and
// re-executed, reproduces the original execution bit-identically — same
// event schedule fingerprint, same VCL/VDL, same event count and end time.
// Also covered: injector decision replay (recorded stochastic draws are
// consumed instead of the RNG), tamper detection (per-event digests), and
// divergence detection (replaying a different schedule is flagged with
// both sides of the first mismatch).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/core/chaos_harness.h"
#include "src/sim/failure_injector.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace aurora {
namespace {

TEST(TraceReplay, ChaosRunRoundTripsBitIdentically) {
  const core::ChaosSchedule schedule = core::GenerateChaosSchedule(7, 30);

  // Capture.
  sim::Trace captured;
  core::ChaosRunOptions record_options;
  record_options.record = &captured;
  const core::ChaosRunResult original =
      core::RunChaosSchedule(schedule, record_options);
  ASSERT_TRUE(original.status.ok()) << original.status.ToString();
  ASSERT_TRUE(captured.summary.present);
  EXPECT_EQ(captured.summary.fingerprint, original.fingerprint);
  EXPECT_GT(captured.events.size(), 0u);
  EXPECT_EQ(captured.ops.size(), schedule.ops.size());

  // Serialize -> parse: structurally identical.
  const std::string text = captured.Serialize();
  auto parsed = sim::Trace::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seed, captured.seed);
  EXPECT_EQ(parsed->scenario, "chaos");
  EXPECT_EQ(parsed->ops, captured.ops);
  EXPECT_EQ(parsed->decisions, captured.decisions);
  EXPECT_EQ(parsed->events, captured.events);
  EXPECT_EQ(parsed->summary.fingerprint, captured.summary.fingerprint);
  EXPECT_EQ(parsed->summary.vcl, captured.summary.vcl);
  EXPECT_EQ(parsed->summary.vdl, captured.summary.vdl);

  // Rebuild the schedule from the parsed trace and replay under the
  // event-by-event check: bit-identical.
  auto rebuilt = core::ScheduleFromTrace(*parsed);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  ASSERT_EQ(rebuilt->ops.size(), schedule.ops.size());
  EXPECT_EQ(rebuilt->ops, schedule.ops);

  core::ChaosRunOptions replay_options;
  replay_options.replay = &*parsed;
  const core::ChaosRunResult replayed =
      core::RunChaosSchedule(*rebuilt, replay_options);
  EXPECT_FALSE(replayed.replay_diverged) << replayed.replay_divergence;
  EXPECT_EQ(replayed.fingerprint, original.fingerprint);
  EXPECT_EQ(replayed.vcl, original.vcl);
  EXPECT_EQ(replayed.vdl, original.vdl);
  EXPECT_EQ(replayed.executed_events, original.executed_events);
  EXPECT_EQ(replayed.end_time, original.end_time);
}

TEST(TraceReplay, PreRefactorGoldenTraceReplays) {
  // A trace captured BEFORE the slab event-engine rewrite (PR 5) and
  // committed as a fixture. The engine overhaul is a pure representation
  // change: re-running the same seeded scenario on the new engine must
  // verify bit-identically against the old capture — same event stream,
  // same per-event digests, same summary fingerprint. If the fixture is
  // missing (fresh scenario change), the test self-primes: it captures the
  // run, writes the file, and fails so the regenerated fixture gets
  // reviewed and committed deliberately.
  const std::string path =
      std::string(AURORA_TEST_DATA_DIR) + "/golden_trace_seed12345.jsonl";
  const core::ChaosSchedule schedule = core::GenerateChaosSchedule(12345, 20);

  auto stored = sim::Trace::ReadFile(path);
  if (!stored.ok()) {
    sim::Trace captured;
    core::ChaosRunOptions record_options;
    record_options.record = &captured;
    const core::ChaosRunResult original =
        core::RunChaosSchedule(schedule, record_options);
    ASSERT_TRUE(original.status.ok()) << original.status.ToString();
    ASSERT_TRUE(captured.WriteFile(path).ok());
    FAIL() << "golden trace fixture was missing; captured a fresh one at "
           << path << " — review and commit it";
  }

  ASSERT_TRUE(stored->summary.present);
  core::ChaosRunOptions replay_options;
  replay_options.replay = &*stored;
  const core::ChaosRunResult replayed =
      core::RunChaosSchedule(schedule, replay_options);
  ASSERT_TRUE(replayed.status.ok()) << replayed.status.ToString();
  EXPECT_FALSE(replayed.replay_diverged) << replayed.replay_divergence;
  EXPECT_EQ(replayed.fingerprint, stored->summary.fingerprint);
  EXPECT_EQ(replayed.vcl, stored->summary.vcl);
  EXPECT_EQ(replayed.vdl, stored->summary.vdl);
  EXPECT_EQ(replayed.executed_events, stored->summary.executed_events);
  EXPECT_EQ(replayed.end_time, stored->summary.end_time);
}

TEST(TraceReplay, TamperedEventIsRejectedAtParse) {
  sim::Trace captured;
  core::ChaosRunOptions record_options;
  record_options.record = &captured;
  (void)core::RunChaosSchedule(core::GenerateChaosSchedule(11, 10),
                               record_options);
  ASSERT_GT(captured.events.size(), 2u);

  // Flip one event's timestamp in the serialized form; the per-line digest
  // no longer matches and Parse must refuse the trace.
  std::string text = captured.Serialize();
  const std::string needle =
      "\"at_us\":" + std::to_string(captured.events[1].at);
  const size_t pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(),
               "\"at_us\":" + std::to_string(captured.events[1].at + 1));
  auto parsed = sim::Trace::Parse(text);
  EXPECT_FALSE(parsed.ok());
}

TEST(TraceReplay, DivergentScheduleIsDetected) {
  sim::Trace captured;
  core::ChaosRunOptions record_options;
  record_options.record = &captured;
  (void)core::RunChaosSchedule(core::GenerateChaosSchedule(7, 20),
                               record_options);

  // Replaying a *different* schedule against the capture must flag the
  // first mismatching event (and the fingerprints must differ).
  core::ChaosRunOptions replay_options;
  replay_options.replay = &captured;
  const core::ChaosRunResult other = core::RunChaosSchedule(
      core::GenerateChaosSchedule(8, 20), replay_options);
  EXPECT_TRUE(other.replay_diverged);
  EXPECT_FALSE(other.replay_divergence.empty());
  EXPECT_NE(other.fingerprint, captured.summary.fingerprint);
}

TEST(TraceReplay, InjectorReplaysRecordedDecisions) {
  // Standalone injector process: record every stochastic draw, then replay
  // it into a fresh simulator and require the identical event schedule.
  auto run = [](sim::Trace* record, const sim::Trace* replay) {
    sim::Simulator sim(99);
    sim::NetworkOptions net_options;
    sim::Network network(&sim, net_options);
    for (NodeId id = 1; id <= 6; ++id) network.RegisterNode(id, (id - 1) % 3);
    sim::FailureModel model;
    model.node_mttf = 2 * kSecond;
    model.node_mttr = 200 * kMillisecond;
    model.az_mttf = 5 * kSecond;
    sim::FailureInjector injector(&sim, &network, model);
    if (record != nullptr) injector.RecordDecisionsTo(record);
    if (replay != nullptr) injector.ReplayDecisionsFrom(replay);
    injector.Start({1, 2, 3, 4, 5, 6}, {0, 1, 2});
    sim.RunFor(30 * kSecond);
    injector.Stop();
    struct Outcome {
      uint64_t fingerprint;
      uint64_t node_failures;
      uint64_t az_failures;
      uint64_t mismatches;
    };
    return Outcome{sim.ScheduleFingerprint(), injector.node_failures(),
                   injector.az_failures(), injector.replay_mismatches()};
  };

  sim::Trace trace;
  const auto recorded = run(&trace, nullptr);
  ASSERT_GT(trace.decisions.size(), 0u);
  ASSERT_GT(recorded.node_failures, 0u);

  // Round-trip the decisions through the serialized form too.
  auto parsed = sim::Trace::Parse(trace.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->decisions, trace.decisions);

  const auto replayed = run(nullptr, &*parsed);
  EXPECT_EQ(replayed.fingerprint, recorded.fingerprint);
  EXPECT_EQ(replayed.node_failures, recorded.node_failures);
  EXPECT_EQ(replayed.az_failures, recorded.az_failures);
  EXPECT_EQ(replayed.mismatches, 0u);
}

TEST(TraceReplay, ParseRejectsVersionAndGarbage) {
  EXPECT_FALSE(sim::Trace::Parse("").ok());
  EXPECT_FALSE(sim::Trace::Parse("not json\n").ok());
  EXPECT_FALSE(sim::Trace::Parse(
                   "{\"kind\":\"header\",\"version\":999,\"seed\":1,"
                   "\"scenario\":\"x\",\"ops\":0,\"decisions\":0,"
                   "\"events\":0}\n")
                   .ok());
  // An event line before the header is malformed.
  EXPECT_FALSE(sim::Trace::Parse(
                   "{\"kind\":\"event\",\"i\":0,\"at_us\":1,"
                   "\"label\":\"x\",\"digest\":0}\n")
                   .ok());
}

}  // namespace
}  // namespace aurora
