// Schedule shrinking: ddmin unit behavior and end-to-end convergence.
//
// The convergence test plants a known 2-op minimal violation (the poison
// arm/fire pair, which forces VDL above VCL only when both execute) inside
// a 30-op random chaos schedule and requires the shrinker to find a
// reproducer of at most 4 ops that trips the same invariant — well under
// the ≤25%-of-original bound the tooling promises (DESIGN.md §6).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/chaos_harness.h"
#include "src/sim/shrink.h"

namespace aurora {
namespace {

bool Contains(const std::vector<size_t>& v, size_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(DdMin, FindsTwoElementMinimalSubset) {
  // Failure needs exactly {3, 17} out of 30.
  sim::ShrinkStats stats;
  const auto result = sim::DdMin(
      30,
      [](const std::vector<size_t>& subset) {
        return Contains(subset, 3) && Contains(subset, 17);
      },
      &stats);
  EXPECT_EQ(result, (std::vector<size_t>{3, 17}));
  EXPECT_GT(stats.attempts, 0u);
  EXPECT_GT(stats.reproduced, 0u);
}

TEST(DdMin, FindsSingleElement) {
  const auto result = sim::DdMin(64, [](const std::vector<size_t>& subset) {
    return Contains(subset, 41);
  });
  EXPECT_EQ(result, (std::vector<size_t>{41}));
}

TEST(DdMin, KeepsEverythingWhenAllOpsMatter) {
  // Reproduces only with the full set: nothing can be dropped.
  const auto result = sim::DdMin(8, [](const std::vector<size_t>& subset) {
    return subset.size() == 8;
  });
  ASSERT_EQ(result.size(), 8u);
}

TEST(DdMin, ResultIsOneMinimal) {
  // Failure: at least 3 even indices present. The result must be 1-minimal
  // (dropping any single element stops reproducing), i.e. exactly 3 evens.
  auto reproduces = [](const std::vector<size_t>& subset) {
    size_t evens = 0;
    for (size_t i : subset) evens += (i % 2 == 0) ? 1 : 0;
    return evens >= 3;
  };
  const auto result = sim::DdMin(20, reproduces);
  EXPECT_EQ(result.size(), 3u);
  for (size_t kept : result) EXPECT_EQ(kept % 2, 0u);
}

TEST(TightenValues, ShrinksSlackGreedily) {
  // Reproduces while v[1] >= 10; v[0] is pure slack.
  const auto result = sim::TightenValues(
      {10, 20},
      [](const std::vector<int64_t>& v) { return v[1] >= 10; });
  EXPECT_EQ(result, (std::vector<int64_t>{0, 10}));
}

TEST(TightenValues, LeavesTightValuesAlone) {
  const auto result = sim::TightenValues(
      {4, 6}, [](const std::vector<int64_t>& v) { return v[0] >= 4 && v[1] >= 6; });
  EXPECT_EQ(result, (std::vector<int64_t>{4, 6}));
}

// End-to-end: a 2-op bug hidden in a 30-op schedule converges to a tiny
// reproducer preserving the same invariant.
TEST(ShrinkChaos, ConvergesOnPlantedMinimalViolation) {
  core::ChaosSchedule schedule = core::GenerateChaosSchedule(5, 30);
  ASSERT_EQ(schedule.ops.size(), 30u);
  // Plant the pair: arm early, fire late, with the 26 other random ops
  // (and both halves of the split) as noise around and between them.
  schedule.ops[6].kind = core::ChaosOpKind::kPoisonVdlArm;
  schedule.ops[22].kind = core::ChaosOpKind::kPoisonVdlFire;

  // The planted pair actually trips the auditor.
  core::ChaosRunOptions options;
  options.check_durability = false;
  const core::ChaosRunResult full = core::RunChaosSchedule(schedule, options);
  ASSERT_FALSE(full.violations.empty());
  const std::string invariant = full.violations.front().invariant;
  EXPECT_EQ(invariant, "vdl-le-vcl");

  auto shrunk = core::ShrinkChaosViolation(schedule, invariant);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_EQ(shrunk->original_ops, 30u);
  EXPECT_LE(shrunk->minimized.ops.size(), 4u);
  EXPECT_GT(shrunk->replays, 1u);
  EXPECT_FALSE(shrunk->timeline.empty());

  // The minimized schedule still trips the SAME invariant, and contains
  // the planted pair in order.
  const core::ChaosRunResult minimal =
      core::RunChaosSchedule(shrunk->minimized, options);
  ASSERT_FALSE(minimal.violations.empty());
  EXPECT_EQ(minimal.violations.front().invariant, invariant);
  size_t arm_at = SIZE_MAX, fire_at = SIZE_MAX;
  for (size_t i = 0; i < shrunk->minimized.ops.size(); ++i) {
    if (shrunk->minimized.ops[i].kind == core::ChaosOpKind::kPoisonVdlArm) {
      arm_at = i;
    }
    if (shrunk->minimized.ops[i].kind == core::ChaosOpKind::kPoisonVdlFire) {
      fire_at = i;
    }
  }
  ASSERT_NE(arm_at, SIZE_MAX);
  ASSERT_NE(fire_at, SIZE_MAX);
  EXPECT_LT(arm_at, fire_at);
}

// Shrinking a healthy schedule is an error, not a zero-op "reproducer".
TEST(ShrinkChaos, RefusesNonReproducingSchedule) {
  const core::ChaosSchedule schedule = core::GenerateChaosSchedule(3, 10);
  auto shrunk = core::ShrinkChaosViolation(schedule, "vdl-le-vcl");
  EXPECT_FALSE(shrunk.ok());
}

}  // namespace
}  // namespace aurora
