// Property-based tests (parameterized over seeds) for the invariants
// enumerated in DESIGN.md §5: LSN/consistency-point monotonicity, SCL
// chain semantics under arbitrary delivery orders, gossip convergence,
// quorum overlap under random full/tail shapes, commit safety across
// repeated crashes, and snapshot isolation under a concurrent workload.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/core/cluster.h"
#include "src/log/hot_log.h"
#include "src/quorum/membership.h"

namespace aurora {
namespace {

// ---------------------------------------------------------------------- //
// SCL correctness: for ANY delivery permutation and ANY subset of lost
// records, SCL equals the longest gap-free chain prefix.

class SclPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SclPropertyTest, SclEqualsContiguousPrefixUnderRandomDelivery) {
  Rng rng(GetParam());
  const Lsn n = 60;
  std::vector<log::RedoRecord> records;
  for (Lsn l = 1; l <= n; ++l) {
    log::RedoRecord rec;
    rec.lsn = l;
    rec.prev_lsn_segment = l - 1;
    rec.pg = 0;
    rec.block = 1;
    records.push_back(rec);
  }
  // Drop a random subset, shuffle the rest.
  std::vector<log::RedoRecord> delivered;
  std::set<Lsn> kept;
  for (const auto& rec : records) {
    if (rng.Bernoulli(0.8)) {
      delivered.push_back(rec);
      kept.insert(rec.lsn);
    }
  }
  for (size_t i = delivered.size(); i > 1; --i) {
    std::swap(delivered[i - 1], delivered[rng.NextBounded(i)]);
  }
  log::SegmentHotLog log;
  Lsn prev_scl = kInvalidLsn;
  for (const auto& rec : delivered) {
    ASSERT_TRUE(log.Append(rec).ok());
    ASSERT_GE(log.scl(), prev_scl) << "SCL must be monotone";
    prev_scl = log.scl();
  }
  // Model: longest prefix 1..k fully contained in kept.
  Lsn expected = 0;
  while (kept.contains(expected + 1)) expected++;
  EXPECT_EQ(log.scl(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SclPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------- //
// Gossip convergence: segments receiving random disjoint subsets converge
// to identical SCLs after pairwise gossip rounds.

class GossipPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GossipPropertyTest, PairwiseGossipConverges) {
  Rng rng(GetParam());
  const Lsn n = 40;
  const int num_segments = 6;
  std::vector<log::SegmentHotLog> logs(num_segments);
  for (Lsn l = 1; l <= n; ++l) {
    log::RedoRecord rec;
    rec.lsn = l;
    rec.prev_lsn_segment = l - 1;
    rec.pg = 0;
    rec.block = 1;
    // Each record lands on a random 4/6 write quorum.
    std::set<int> targets;
    while (targets.size() < 4) {
      targets.insert(static_cast<int>(rng.NextBounded(num_segments)));
    }
    for (int t : targets) ASSERT_TRUE(logs[t].Append(rec).ok());
  }
  // Gossip rounds: each segment pulls from a random peer.
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < num_segments; ++i) {
      const int peer = static_cast<int>(rng.NextBounded(num_segments));
      if (peer == i) continue;
      for (const auto& rec : logs[peer].ChainAfter(logs[i].scl(), 100)) {
        ASSERT_TRUE(logs[i].Append(rec).ok());
      }
    }
  }
  for (const auto& log : logs) {
    EXPECT_EQ(log.scl(), n) << "all segments converge to the full chain";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GossipPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------- //
// Quorum overlap for randomized full/tail layouts and AZ placements.

class FullTailPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FullTailPropertyTest, RandomLayoutsPreserveQuorumRules) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<quorum::SegmentInfo> members;
    int fulls = 0;
    for (SegmentId id = 0; id < 6; ++id) {
      quorum::SegmentInfo info;
      info.id = id;
      info.node = 100 + id;
      info.az = static_cast<AzId>(rng.NextBounded(3));
      info.is_full = rng.Bernoulli(0.5);
      if (info.is_full) fulls++;
      members.push_back(info);
    }
    if (fulls == 0) members[0].is_full = true;
    auto config = quorum::PgConfig::Create(0, quorum::QuorumModel::kFullTail,
                                           members);
    EXPECT_TRUE(quorum::QuorumSet::AlwaysOverlaps(config.ReadSet(),
                                                  config.WriteSet()))
        << config.ToString();
    EXPECT_TRUE(quorum::QuorumSet::AlwaysOverlaps(config.WriteSet(),
                                                  config.WriteSet()))
        << config.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullTailPropertyTest,
                         ::testing::Range<uint64_t>(1, 7));

// ---------------------------------------------------------------------- //
// Commit safety across repeated crashes: every acknowledged commit
// survives every subsequent crash/recovery; consistency points and the
// volume epoch never regress.

class CrashPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashPropertyTest, AckedCommitsSurviveRepeatedCrashes) {
  core::AuroraOptions options;
  options.seed = GetParam();
  options.num_pgs = 2;
  options.blocks_per_pg = 1 << 16;
  core::AuroraCluster cluster(options);
  ASSERT_TRUE(cluster.StartBlocking().ok());

  std::map<std::string, std::string> acked;  // ground truth
  Rng rng(GetParam() * 31 + 7);
  VolumeEpoch last_epoch = cluster.writer()->volume_epoch();
  int key_counter = 0;
  for (int round = 0; round < 4; ++round) {
    // A burst of committed writes.
    const int burst = 5 + static_cast<int>(rng.NextBounded(10));
    for (int i = 0; i < burst; ++i) {
      std::string key = "k" + std::to_string(key_counter % 20);
      std::string value =
          "r" + std::to_string(round) + "-" + std::to_string(key_counter);
      key_counter++;
      ASSERT_TRUE(cluster.PutBlocking(key, value).ok());
      acked[key] = value;
    }
    // Some in-flight, never-committed work right before the crash.
    const TxnId loser = cluster.writer()->Begin();
    cluster.writer()->Put(loser, "loser-key", "round" + std::to_string(round),
                          [](Status) {});
    cluster.RunFor(rng.NextBounded(2) == 0 ? 0 : 200);

    cluster.CrashWriter();
    cluster.RunFor(10 * kMillisecond);
    ASSERT_TRUE(cluster.RecoverWriterBlocking().ok()) << "round " << round;
    ASSERT_GT(cluster.writer()->volume_epoch(), last_epoch)
        << "volume epoch must strictly advance per recovery";
    last_epoch = cluster.writer()->volume_epoch();

    for (const auto& [key, value] : acked) {
      auto v = cluster.GetBlocking(key);
      ASSERT_TRUE(v.ok()) << "round " << round << " lost " << key << ": "
                          << v.status().ToString();
      ASSERT_EQ(*v, value) << "round " << round;
    }
    // The loser transaction's write must not be visible.
    auto loser_read = cluster.GetBlocking("loser-key");
    ASSERT_TRUE(loser_read.status().IsNotFound())
        << "uncommitted write visible after recovery";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------- //
// Consistency-point monotonicity under a live workload with node churn.

class MonotonicityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MonotonicityPropertyTest, PointsNeverRegressUnderChurn) {
  core::AuroraOptions options;
  options.seed = GetParam();
  options.num_pgs = 1;
  options.blocks_per_pg = 1 << 16;
  options.storage_nodes_per_az = 3;
  core::AuroraCluster cluster(options);
  ASSERT_TRUE(cluster.StartBlocking().ok());
  Rng rng(GetParam());

  Lsn max_vcl = 0, max_vdl = 0;
  auto check = [&]() {
    ASSERT_GE(cluster.writer()->vcl(), max_vcl);
    ASSERT_GE(cluster.writer()->vdl(), max_vdl);
    ASSERT_LE(cluster.writer()->vdl(), cluster.writer()->vcl());
    max_vcl = cluster.writer()->vcl();
    max_vdl = cluster.writer()->vdl();
  };
  auto ids = cluster.StorageNodeIds();
  for (int step = 0; step < 60; ++step) {
    ASSERT_TRUE(
        cluster.PutBlocking("key" + std::to_string(step % 10), "v").ok());
    check();
    if (step % 10 == 3) {
      const NodeId victim = ids[rng.NextBounded(ids.size())];
      cluster.network().Crash(victim);
    }
    if (step % 10 == 7) {
      for (NodeId id : ids) cluster.network().Restart(id);
      cluster.RunFor(50 * kMillisecond);
    }
    check();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------- //
// Snapshot isolation: a reader's view is stable while concurrent writers
// commit around it.

class SnapshotPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotPropertyTest, RepeatableReadsWithinTransaction) {
  core::AuroraOptions options;
  options.seed = GetParam();
  options.blocks_per_pg = 1 << 16;
  core::AuroraCluster cluster(options);
  ASSERT_TRUE(cluster.StartBlocking().ok());
  ASSERT_TRUE(cluster.PutBlocking("shared", "v0").ok());

  auto* writer = cluster.writer();
  const TxnId reader = writer->Begin();
  // First read inside the transaction pins its snapshot.
  std::string first_read;
  bool done = false;
  writer->Get(reader, "shared", [&](Result<std::string> r) {
    ASSERT_TRUE(r.ok());
    first_read = *r;
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  EXPECT_EQ(first_read, "v0");

  // Other transactions overwrite and commit repeatedly.
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("shared", "v" + std::to_string(i)).ok());
  }
  // The reader still sees its snapshot.
  done = false;
  writer->Get(reader, "shared", [&](Result<std::string> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, "v0") << "snapshot isolation violated";
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  ASSERT_TRUE(cluster.CommitBlocking(reader).ok());
  // A fresh reader sees the latest committed value.
  EXPECT_EQ(*cluster.GetBlocking("shared"), "v5");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotPropertyTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace aurora
