// Buffer-cache pressure integration tests: a cache far smaller than the
// working set forces constant eviction + refetch-from-storage, which
// exercises the §3.1 WAL rule ("redo for dirty blocks durable before
// discarding"), the no-write-back invariant, and correctness of pages
// rebuilt purely from storage-side redo application.

#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/engine/buffer_cache.h"

namespace aurora {
namespace {

core::AuroraOptions TinyCacheOptions(uint64_t seed, size_t pages) {
  core::AuroraOptions options;
  options.seed = seed;
  options.blocks_per_pg = 1 << 16;
  options.db.cache_pages = pages;
  return options;
}

TEST(CachePressure, CorrectnessWithTinyCache) {
  core::AuroraCluster cluster(TinyCacheOptions(51, 8));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  const int n = 600;  // tree working set far exceeds 8 pages
  for (int i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    ASSERT_TRUE(cluster.PutBlocking(key, std::to_string(i)).ok()) << i;
  }
  for (int i = 0; i < n; i += 11) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    auto v = cluster.GetBlocking(key);
    ASSERT_TRUE(v.ok()) << key << ": " << v.status().ToString();
    EXPECT_EQ(*v, std::to_string(i));
  }
  const auto& stats = cluster.writer()->cache().stats();
  EXPECT_GT(stats.evictions, 20u) << "pressure must actually evict";
  EXPECT_GT(stats.misses, 5u) << "reads must refetch evicted leaves";
  EXPECT_LE(cluster.writer()->cache().Size(),
            cluster.writer()->cache().capacity());
}

TEST(CachePressure, NoDataBlockEverShippedToStorage) {
  core::AuroraCluster cluster(TinyCacheOptions(52, 12));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("w" + std::to_string(i), "v").ok());
  }
  // §2.2: "No data blocks are written from the database instance, not for
  // background writes, not for checkpointing, and not for cache
  // eviction." Evictions happened (tiny cache), yet the only writer →
  // storage traffic is redo batches: verify via the fleet's receive
  // counters matching driver-sent records, with zero page-sized writes.
  EXPECT_GT(cluster.writer()->cache().stats().evictions, 0u);
  uint64_t fleet_received = 0;
  for (const auto& node : cluster.storage_nodes()) {
    for (const auto& [id, segment] : node->segments()) {
      fleet_received += segment->stats().records_received;
    }
  }
  EXPECT_GT(fleet_received, 0u);
  // Every received item is a redo record (the WriteRequest only carries
  // records); there is no page-upload path in the protocol at all — this
  // test documents that structurally.
  SUCCEED();
}

TEST(CachePressure, WalRuleHoldsUnderQuorumStall) {
  // Stall durability (quorum unreachable) while writing: dirty pages
  // cannot be evicted, so the cache grows past capacity instead of losing
  // undurable state; after the quorum heals, it trims back.
  core::AuroraCluster cluster(TinyCacheOptions(53, 8));
  ASSERT_TRUE(cluster.StartBlocking().ok());
  // Pre-grow the tree across many leaves so the stall phase can dirty
  // more pages than the cache holds.
  for (int i = 0; i < 1500; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "w%04d", i);
    ASSERT_TRUE(cluster.PutBlocking(key, "v").ok());
  }

  const auto members = cluster.geometry().Pg(0).AllMembers();
  for (int i = 0; i < 3; ++i) cluster.network().Crash(members[i].node);

  auto* writer = cluster.writer();
  const Lsn vdl_before = writer->vdl();
  int issued = 0;
  int committed = 0;
  for (int i = 0; i < 1500; i += 60) {
    char key[16];
    std::snprintf(key, sizeof(key), "w%04d", i);
    const TxnId txn = writer->Begin();
    writer->Put(txn, key, "dirty", [&, txn](Status st) {
      if (!st.ok()) return;
      issued++;
      writer->Commit(txn, [&](Status cs) {
        if (cs.ok()) committed++;
      });
    });
    cluster.RunFor(10 * kMillisecond);
  }
  cluster.RunFor(500 * kMillisecond);
  EXPECT_EQ(writer->vdl(), vdl_before) << "durability must be stalled";
  EXPECT_GT(issued, 0);
  EXPECT_EQ(committed, 0) << "no commit may ack while the quorum is down";

  for (int i = 0; i < 3; ++i) cluster.network().Restart(members[i].node);
  cluster.RunFor(2 * kSecond);
  EXPECT_GT(writer->vdl(), vdl_before) << "durability resumes after heal";
  EXPECT_LE(writer->cache().Size(), writer->cache().capacity())
      << "cache trims once redo is durable";
  // Every write issued during the stall survived: the WAL rule never let
  // an undurable dirty page be dropped (the unit-level pinning mechanics
  // are covered in engine_test's BufferCache suite).
  EXPECT_EQ(committed, issued)
      << "stalled commits must drain once the quorum heals";
  int verified = 0;
  for (int i = 0; i < 1500; i += 60) {
    char key[16];
    std::snprintf(key, sizeof(key), "w%04d", i);
    auto v = cluster.GetBlocking(key);
    ASSERT_TRUE(v.ok()) << key;
    if (*v == "dirty") verified++;
  }
  EXPECT_GE(verified, committed)
      << "every acked stall-phase commit must be visible";
}

// -- WAL eviction rule, unit-level properties --------------------------------
//
// The integration tests above show the rule's end-to-end effects; these pin
// the mechanism itself on a bare BufferCache: pages above VDL and pinned
// pages are never evicted, refused attempts are counted, and the cache
// shrinks back to capacity once VDL advances.

storage::Page MakePage(BlockId id, Lsn page_lsn) {
  storage::Page page;
  page.id = id;
  page.page_lsn = page_lsn;
  page.type = storage::PageType::kLeaf;
  return page;
}

TEST(WalEvictionRule, PagesAboveVdlAreNeverEvicted) {
  engine::BufferCache cache(4);
  // All 8 pages carry page_lsn > vdl=10: nothing is evictable, so the
  // cache must balloon past capacity rather than lose undurable state.
  for (BlockId b = 0; b < 8; ++b) cache.Insert(MakePage(b, 100 + b), 10);
  EXPECT_EQ(cache.Size(), 8u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_GT(cache.stats().wal_blocked_evictions, 0u)
      << "refused eviction attempts must be counted";
  for (BlockId b = 0; b < 8; ++b) {
    EXPECT_NE(cache.Peek(b), nullptr) << "page " << b << " lost above VDL";
  }
}

TEST(WalEvictionRule, ShrinksBackOnceVdlAdvances) {
  engine::BufferCache cache(4);
  for (BlockId b = 0; b < 8; ++b) cache.Insert(MakePage(b, 100 + b), 10);
  ASSERT_EQ(cache.Size(), 8u);
  // VDL catches up past some pages but not others: only the durable ones
  // (page_lsn <= vdl) may go, and eviction is LRU-ordered among those.
  cache.TrimToCapacity(/*vdl=*/103);  // pages 0..3 durable, 4..7 not
  EXPECT_EQ(cache.Size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 4u);
  for (BlockId b = 0; b < 4; ++b) EXPECT_EQ(cache.Peek(b), nullptr);
  for (BlockId b = 4; b < 8; ++b) EXPECT_NE(cache.Peek(b), nullptr);
  // Full durability: trims to capacity exactly, never below.
  cache.Insert(MakePage(8, 108), 200);
  cache.TrimToCapacity(/*vdl=*/200);
  EXPECT_EQ(cache.Size(), cache.capacity());
}

TEST(WalEvictionRule, PinnedPagesSurviveAnyVdl) {
  engine::BufferCache cache(2);
  cache.Insert(MakePage(0, 5), 100);
  cache.Insert(MakePage(1, 6), 100);
  cache.Pin(0);  // an open MTR holds page 0 latched
  // Everything is durable (vdl=100 > all page_lsns), so only the pin can
  // protect page 0. Insert enough pages to cycle the LRU several times.
  for (BlockId b = 2; b < 10; ++b) cache.Insert(MakePage(b, 6 + b), 100);
  EXPECT_NE(cache.Peek(0), nullptr) << "pinned page evicted";
  cache.Unpin(0);
  cache.Insert(MakePage(10, 50), 100);
  cache.TrimToCapacity(100);
  EXPECT_EQ(cache.Peek(0), nullptr) << "unpinned page must become evictable";
  EXPECT_LE(cache.Size(), cache.capacity());
}

TEST(WalEvictionRule, LruOrderRespectedAmongDurablePages) {
  engine::BufferCache cache(3);
  cache.Insert(MakePage(0, 1), 100);
  cache.Insert(MakePage(1, 2), 100);
  cache.Insert(MakePage(2, 3), 100);
  // Touch page 0 so page 1 becomes the LRU victim.
  ASSERT_NE(cache.Find(0), nullptr);
  cache.Insert(MakePage(3, 4), 100);
  EXPECT_EQ(cache.Peek(1), nullptr) << "LRU victim should be page 1";
  EXPECT_NE(cache.Peek(0), nullptr);
  EXPECT_NE(cache.Peek(2), nullptr);
  EXPECT_NE(cache.Peek(3), nullptr);
}

TEST(CachePressure, ReplicaWithTinyCacheStaysCorrect) {
  core::AuroraOptions options = TinyCacheOptions(54, 256);
  options.replica.cache_pages = 6;
  core::AuroraCluster cluster(options);
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 150; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "r%04d", i);
    ASSERT_TRUE(cluster.PutBlocking(key, std::to_string(i)).ok());
  }
  auto* rep = cluster.AddReplica();
  cluster.RunFor(300 * kMillisecond);
  for (int i = 0; i < 150; i += 13) {
    char key[16];
    std::snprintf(key, sizeof(key), "r%04d", i);
    bool done = false;
    Result<std::string> v = Status::Internal("unset");
    rep->Get(key, [&](Result<std::string> r) {
      v = std::move(r);
      done = true;
    });
    ASSERT_TRUE(cluster.RunUntil([&]() { return done; })) << key;
    ASSERT_TRUE(v.ok()) << key << ": " << v.status().ToString();
    EXPECT_EQ(*v, std::to_string(i));
  }
  EXPECT_GT(rep->cache().stats().evictions, 0u);
}

}  // namespace
}  // namespace aurora
