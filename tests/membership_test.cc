// Membership-change integration tests (§4.1, Figure 5): two-step
// reversible transitions, epochs, hydration, non-blocking I/O, and the
// double-failure case.

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace aurora {
namespace {

core::AuroraOptions Options() {
  core::AuroraOptions options;
  options.seed = 23;
  options.num_pgs = 1;
  options.blocks_per_pg = 1 << 16;
  options.storage_nodes_per_az = 3;  // room to place replacements
  return options;
}

TEST(Membership, ReplaceFailedSegmentEndToEnd) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("m" + std::to_string(i), "v").ok());
  }
  // Fail the node hosting segment 5, then replace the segment.
  auto* host = cluster.NodeForSegment(5);
  ASSERT_NE(host, nullptr);
  cluster.network().Crash(host->id());

  const MembershipEpoch epoch_before = cluster.geometry().Pg(0).epoch();
  auto report = cluster.ReplaceSegmentBlocking(5);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->reverted);
  EXPECT_EQ(report->begin_epoch, epoch_before + 1);
  EXPECT_EQ(report->final_epoch, epoch_before + 2) << "two-step transition";

  const auto& pg = cluster.geometry().Pg(0);
  EXPECT_FALSE(pg.ContainsSegment(5));
  EXPECT_TRUE(pg.ContainsSegment(report->new_segment));
  EXPECT_FALSE(pg.HasPendingChange());

  // All data still readable; new writes work.
  for (int i = 0; i < 40; ++i) {
    auto v = cluster.GetBlocking("m" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status().ToString();
  }
  ASSERT_TRUE(cluster.PutBlocking("post-change", "ok").ok());
}

TEST(Membership, WritesProceedDuringChange) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  ASSERT_TRUE(cluster.PutBlocking("seed", "1").ok());

  auto* host = cluster.NodeForSegment(3);
  cluster.network().Crash(host->id());
  auto report = cluster.BeginReplaceBlocking(3);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(cluster.geometry().Pg(0).HasPendingChange());

  // "Membership changes do not block either reads or writes" (§4.1):
  // commit latency during the dual-quorum phase stays bounded.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("dq" + std::to_string(i), "v").ok()) << i;
  }
  ASSERT_TRUE(cluster.CommitReplaceBlocking(3).ok());
  for (int i = 0; i < 20; ++i) {
    auto v = cluster.GetBlocking("dq" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
  }
}

TEST(Membership, RevertWhenSuspectComesBack) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("r" + std::to_string(i), "v").ok());
  }
  auto* host = cluster.NodeForSegment(2);
  cluster.network().Crash(host->id());
  auto report = cluster.BeginReplaceBlocking(2);
  ASSERT_TRUE(report.ok());
  const SegmentId new_segment = report->new_segment;

  // F comes back: revert to the original membership (Figure 5, epoch 2 ->
  // back to ABCDEF at epoch 3).
  cluster.network().Restart(host->id());
  cluster.RunFor(50 * kMillisecond);
  ASSERT_TRUE(cluster.RevertReplaceBlocking(2).ok());

  const auto& pg = cluster.geometry().Pg(0);
  EXPECT_TRUE(pg.ContainsSegment(2));
  EXPECT_FALSE(pg.ContainsSegment(new_segment));
  EXPECT_FALSE(pg.HasPendingChange());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.GetBlocking("r" + std::to_string(i)).ok()) << i;
  }
  ASSERT_TRUE(cluster.PutBlocking("after-revert", "ok").ok());
}

TEST(Membership, DoubleFailureDuringChange) {
  core::AuroraOptions options = Options();
  options.storage_nodes_per_az = 4;
  core::AuroraCluster cluster(options);
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("d" + std::to_string(i), "v").ok());
  }
  // Fail F (segment 5), begin replacing with G; then fail E (segment 4)
  // mid-change and replace it with H (§4.1's quadruple-quorum state).
  cluster.network().Crash(cluster.NodeForSegment(5)->id());
  auto report_g = cluster.BeginReplaceBlocking(5);
  ASSERT_TRUE(report_g.ok()) << report_g.status().ToString();

  cluster.network().Crash(cluster.NodeForSegment(4)->id());
  auto report_h = cluster.BeginReplaceBlocking(4);
  ASSERT_TRUE(report_h.ok()) << report_h.status().ToString();

  // Writing to the four stable members still meets quorum: I/O proceeds.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("dd" + std::to_string(i), "v").ok()) << i;
  }
  ASSERT_TRUE(cluster.CommitReplaceBlocking(5).ok());
  ASSERT_TRUE(cluster.CommitReplaceBlocking(4).ok());
  EXPECT_FALSE(cluster.geometry().Pg(0).HasPendingChange());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.GetBlocking("d" + std::to_string(i)).ok());
    ASSERT_TRUE(cluster.GetBlocking("dd" + std::to_string(i)).ok());
  }
}

TEST(Membership, StaleEpochRequestsRejected) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  ASSERT_TRUE(cluster.PutBlocking("k", "v").ok());

  // Install a membership change directly; then hand-craft a write with
  // the OLD membership epoch and verify the segment rejects it.
  auto* host = cluster.NodeForSegment(1);
  auto* segment = host->FindSegment(1);
  const MembershipEpoch old_epoch = segment->config().epoch();

  auto report = cluster.ReplaceSegmentBlocking(0);  // bump epochs
  ASSERT_TRUE(report.ok());
  ASSERT_GT(segment->config().epoch(), old_epoch);

  EpochVector stale{cluster.writer()->volume_epoch(), old_epoch};
  EXPECT_TRUE(segment->CheckEpochs(stale).IsStaleEpoch());
  // "Updates of stale state are simply... one additional request past the
  // one rejected": the current epoch succeeds.
  EpochVector fresh{cluster.writer()->volume_epoch(),
                    segment->config().epoch()};
  EXPECT_TRUE(segment->CheckEpochs(fresh).ok());
}

TEST(Membership, AzFailureQuorumSurvives) {
  core::AuroraCluster cluster(Options());
  ASSERT_TRUE(cluster.StartBlocking().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("az" + std::to_string(i), "v").ok());
  }
  // Fail a whole AZ: 2 of 6 segments gone; 4/6 writes and reads continue
  // (Figure 1's right side).
  cluster.network().FailAz(2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.PutBlocking("during" + std::to_string(i), "v").ok())
        << i;
    ASSERT_TRUE(cluster.GetBlocking("az" + std::to_string(i)).ok()) << i;
  }
  cluster.network().RestoreAz(2);
  cluster.RunFor(500 * kMillisecond);  // gossip refills the returned AZ
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.GetBlocking("during" + std::to_string(i)).ok());
  }
}

}  // namespace
}  // namespace aurora
