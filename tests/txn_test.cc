// Unit tests for the transaction layer: row-version / undo codecs, read
// views and visibility, the transaction manager lifecycle and commit
// history, the commit queue, and the lock table.

#include <gtest/gtest.h>

#include "src/txn/commit_queue.h"
#include "src/txn/lock_table.h"
#include "src/txn/read_view.h"
#include "src/txn/row_version.h"
#include "src/txn/txn_manager.h"

namespace aurora::txn {
namespace {

// ---------------------------------------------------------------------- //
// Codecs

TEST(RowVersion, CodecRoundTrip) {
  RowVersion v;
  v.txn = 42;
  v.deleted = true;
  v.value = std::string("bin\x00ary", 7);
  v.undo = UndoPtr{17, "u42-3"};
  auto decoded = DecodeRowVersion(EncodeRowVersion(v));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, v);
}

TEST(RowVersion, NullUndoPtr) {
  RowVersion v;
  v.txn = 1;
  v.value = "x";
  EXPECT_TRUE(v.undo.IsNull());
  auto decoded = DecodeRowVersion(EncodeRowVersion(v));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->undo.IsNull());
}

TEST(RowVersion, DecodeRejectsGarbage) {
  EXPECT_TRUE(DecodeRowVersion("").status().IsCorruption());
  EXPECT_TRUE(DecodeRowVersion("short").status().IsCorruption());
  std::string good = EncodeRowVersion(RowVersion{1, false, "v", {}});
  good += "trailing";
  EXPECT_TRUE(DecodeRowVersion(good).status().IsCorruption());
}

TEST(UndoEntry, CodecRoundTrip) {
  UndoEntry entry;
  entry.row_key = "the-row";
  entry.prev_exists = true;
  entry.prev = RowVersion{7, false, "old", UndoPtr{3, "u7-0"}};
  entry.next = UndoPtr{9, "u42-1"};
  auto decoded = DecodeUndoEntry(EncodeUndoEntry(entry));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, entry);
}

TEST(UndoEntry, NonExistentPrev) {
  UndoEntry entry;
  entry.row_key = "k";
  entry.prev_exists = false;
  auto decoded = DecodeUndoEntry(EncodeUndoEntry(entry));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->prev_exists);
}

// ---------------------------------------------------------------------- //
// ReadView visibility

TEST(ReadView, SeesCommittedAtOrBelowAnchor) {
  ReadView view(100, {});
  EXPECT_TRUE(view.Sees(5, 50));
  EXPECT_TRUE(view.Sees(5, 100));
  EXPECT_FALSE(view.Sees(5, 101)) << "committed after the anchor";
  EXPECT_FALSE(view.Sees(5, kInvalidLsn)) << "uncommitted";
}

TEST(ReadView, ActiveTransactionsInvisible) {
  ReadView view(100, {7});
  // Even if a commit SCN is known (it committed after the view opened),
  // a transaction active at view creation stays invisible.
  EXPECT_FALSE(view.Sees(7, 90));
}

TEST(ReadView, OwnWritesAlwaysVisible) {
  ReadView view(100, {7}, /*own=*/7);
  EXPECT_TRUE(view.Sees(7, kInvalidLsn));
}

// ---------------------------------------------------------------------- //
// TxnManager

TEST(TxnManager, LifecycleAndActiveSet) {
  TxnManager manager;
  Transaction* t1 = manager.Begin(0);
  Transaction* t2 = manager.Begin(0);
  EXPECT_EQ(manager.ActiveSet(), (std::set<TxnId>{t1->id, t2->id}));

  manager.MarkCommitting(t1->id, 55);
  EXPECT_EQ(manager.ActiveSet(), (std::set<TxnId>{t2->id}));
  EXPECT_EQ(t1->state, TxnState::kCommitting);
  manager.MarkCommitted(t1->id);
  EXPECT_EQ(t1->state, TxnState::kCommitted);
  EXPECT_EQ(manager.committed(), 1u);

  manager.MarkAborted(t2->id);
  EXPECT_TRUE(manager.ActiveSet().empty());
  EXPECT_EQ(manager.aborted(), 1u);
}

TEST(TxnManager, CommitHistoryQueries) {
  TxnManager manager;
  Transaction* t = manager.Begin(0);
  EXPECT_FALSE(manager.CommitScnOf(t->id).has_value());
  manager.MarkCommitting(t->id, 77);
  ASSERT_TRUE(manager.CommitScnOf(t->id).has_value());
  EXPECT_EQ(*manager.CommitScnOf(t->id), 77u);
  auto commits = manager.CommitsUpTo(100);
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_TRUE(manager.CommitsUpTo(50).empty());
}

TEST(TxnManager, ReadViewRegistryDrivesMinReadLsn) {
  TxnManager manager;
  EXPECT_EQ(manager.MinOpenReadLsn(), kInvalidLsn);
  ReadView v1 = manager.OpenReadView(100);
  ReadView v2 = manager.OpenReadView(200);
  EXPECT_EQ(manager.MinOpenReadLsn(), 100u);
  manager.CloseReadView(v1);
  EXPECT_EQ(manager.MinOpenReadLsn(), 200u);
  manager.CloseReadView(v2);
  EXPECT_EQ(manager.MinOpenReadLsn(), kInvalidLsn);
}

TEST(TxnManager, PurgeHistory) {
  TxnManager manager;
  for (int i = 0; i < 5; ++i) {
    Transaction* t = manager.Begin(0);
    manager.MarkCommitting(t->id, 10 * (i + 1));
  }
  EXPECT_EQ(manager.PurgeHistoryBelow(35), 3u);
  EXPECT_FALSE(manager.CommitScnOf(1).has_value());
  EXPECT_TRUE(manager.CommitScnOf(4).has_value());
}

TEST(TxnManager, TxnIdFloorPreventsReuse) {
  TxnManager manager;
  manager.SetTxnIdFloor(1000);
  EXPECT_GE(manager.Begin(0)->id, 1000u);
}

TEST(TxnManager, ReplicaCommitNotifications) {
  TxnManager manager;
  manager.InstallActive(5);
  EXPECT_TRUE(manager.ActiveSet().contains(5));
  manager.InstallCommitNotification(5, 88);
  EXPECT_FALSE(manager.ActiveSet().contains(5));
  EXPECT_EQ(*manager.CommitScnOf(5), 88u);
  // A late "active" install for an already-committed txn is ignored.
  manager.InstallActive(5);
  EXPECT_FALSE(manager.ActiveSet().contains(5));
}

// ---------------------------------------------------------------------- //
// CommitQueue

TEST(CommitQueue, DrainsInScnOrderUpToVcl) {
  CommitQueue queue;
  std::vector<Scn> acked;
  for (Scn scn : {30, 10, 20, 40}) {
    queue.Enqueue(PendingCommit{1, static_cast<Scn>(scn), 0,
                                [&acked, scn]() { acked.push_back(scn); }});
  }
  for (auto& p : queue.DrainUpTo(25)) p.ack();
  EXPECT_EQ(acked, (std::vector<Scn>{10, 20}));
  EXPECT_EQ(queue.Size(), 2u);
  EXPECT_EQ(queue.MinPendingScn(), 30u);
  for (auto& p : queue.DrainUpTo(100)) p.ack();
  EXPECT_EQ(acked, (std::vector<Scn>{10, 20, 30, 40}));
  EXPECT_TRUE(queue.Empty());
}

TEST(CommitQueue, ClearDropsPending) {
  CommitQueue queue;
  bool acked = false;
  queue.Enqueue(PendingCommit{1, 10, 0, [&]() { acked = true; }});
  queue.Clear();
  EXPECT_TRUE(queue.DrainUpTo(100).empty());
  EXPECT_FALSE(acked);
}

TEST(CommitQueue, DuplicateScnsAllowed) {
  CommitQueue queue;
  int acks = 0;
  queue.Enqueue(PendingCommit{1, 10, 0, [&]() { acks++; }});
  queue.Enqueue(PendingCommit{2, 10, 0, [&]() { acks++; }});
  for (auto& p : queue.DrainUpTo(10)) p.ack();
  EXPECT_EQ(acks, 2);
}

// ---------------------------------------------------------------------- //
// LockTable

TEST(LockTable, ExclusiveConflicts) {
  LockTable locks;
  EXPECT_TRUE(locks.Acquire(1, "k").ok());
  EXPECT_TRUE(locks.Acquire(1, "k").ok()) << "re-entrant for holder";
  EXPECT_TRUE(locks.Acquire(2, "k").IsConflict());
  EXPECT_EQ(locks.conflicts(), 1u);
  locks.ReleaseAll(1);
  EXPECT_TRUE(locks.Acquire(2, "k").ok());
}

TEST(LockTable, ReleaseAllOnlyDropsOwn) {
  LockTable locks;
  ASSERT_TRUE(locks.Acquire(1, "a").ok());
  ASSERT_TRUE(locks.Acquire(2, "b").ok());
  locks.ReleaseAll(1);
  EXPECT_FALSE(locks.IsLocked("a"));
  EXPECT_TRUE(locks.IsLocked("b"));
}

TEST(LockTable, ClearIsEphemeralCrashSemantics) {
  LockTable locks;
  ASSERT_TRUE(locks.Acquire(1, "a").ok());
  locks.Clear();
  EXPECT_EQ(locks.LockCount(), 0u);
  EXPECT_TRUE(locks.Acquire(2, "a").ok());
}

}  // namespace
}  // namespace aurora::txn
