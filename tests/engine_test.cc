// Unit tests for the engine: the consistency tracker (including the exact
// Figure-3 scenario), the buffer cache WAL rule, and the read router.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/engine/buffer_cache.h"
#include "src/engine/consistency_tracker.h"
#include "src/engine/read_router.h"

namespace aurora::engine {
namespace {

quorum::QuorumSet FourOfSix(SegmentId base) {
  return quorum::QuorumSet::KofN(
      4, {base, base + 1, base + 2, base + 3, base + 4, base + 5});
}

std::vector<SegmentId> Members(SegmentId base) {
  return {base, base + 1, base + 2, base + 3, base + 4, base + 5};
}

// ---------------------------------------------------------------------- //
// ConsistencyTracker

TEST(ConsistencyTracker, PgclNeedsWriteQuorum) {
  ConsistencyTracker tracker;
  tracker.ConfigurePg(0, FourOfSix(0), Members(0));
  tracker.RecordIssued(0, 1);
  tracker.SetMaxAllocated(1);
  for (SegmentId s = 0; s < 3; ++s) tracker.ObserveScl(0, s, 1);
  tracker.Advance();
  EXPECT_EQ(tracker.pgcl(0), kInvalidLsn) << "3 of 6 is not a write quorum";
  tracker.ObserveScl(0, 3, 1);
  tracker.Advance();
  EXPECT_EQ(tracker.pgcl(0), 1u);
  EXPECT_EQ(tracker.vcl(), 1u);
}

TEST(ConsistencyTracker, Figure3Scenario) {
  // Figure 3: odd LSNs -> PG1, even LSNs -> PG2. 105 and 106 have not met
  // quorum. Expected: PGCL(PG1)=103, PGCL(PG2)=104, VCL=104.
  ConsistencyTracker tracker;
  tracker.ConfigurePg(1, FourOfSix(0), Members(0));
  tracker.ConfigurePg(2, FourOfSix(6), Members(6));
  for (Lsn lsn : {101, 103, 105}) tracker.RecordIssued(1, lsn);
  for (Lsn lsn : {102, 104, 106}) tracker.RecordIssued(2, lsn);
  tracker.SetMaxAllocated(106);
  // PG1: quorum (4 segments) has SCL 103; the other two have 105.
  for (SegmentId s = 0; s < 4; ++s) tracker.ObserveScl(1, s, 103);
  for (SegmentId s = 4; s < 6; ++s) tracker.ObserveScl(1, s, 105);
  // PG2: quorum has SCL 104; one has 106.
  for (SegmentId s = 6; s < 10; ++s) tracker.ObserveScl(2, s, 104);
  tracker.ObserveScl(2, 10, 106);
  tracker.Advance();
  EXPECT_EQ(tracker.pgcl(1), 103u);
  EXPECT_EQ(tracker.pgcl(2), 104u);
  EXPECT_EQ(tracker.vcl(), 104u)
      << "highest point at which all previous records met quorum";
}

TEST(ConsistencyTracker, VclWaitsForGapsAcrossPgs) {
  ConsistencyTracker tracker;
  tracker.ConfigurePg(0, FourOfSix(0), Members(0));
  tracker.ConfigurePg(1, FourOfSix(6), Members(6));
  tracker.RecordIssued(0, 1);
  tracker.RecordIssued(1, 2);
  tracker.RecordIssued(0, 3);
  tracker.SetMaxAllocated(3);
  // PG1 record (lsn 2) durable everywhere, PG0 has nothing yet.
  for (SegmentId s = 6; s < 12; ++s) tracker.ObserveScl(1, s, 2);
  tracker.Advance();
  EXPECT_EQ(tracker.vcl(), kInvalidLsn) << "lsn 1 (PG0) still outstanding";
  for (SegmentId s = 0; s < 4; ++s) tracker.ObserveScl(0, s, 1);
  tracker.Advance();
  EXPECT_EQ(tracker.vcl(), 2u) << "lsn 3 still outstanding";
  for (SegmentId s = 0; s < 4; ++s) tracker.ObserveScl(0, s, 3);
  tracker.Advance();
  EXPECT_EQ(tracker.vcl(), 3u);
}

TEST(ConsistencyTracker, VdlTracksMtrBoundaries) {
  ConsistencyTracker tracker;
  tracker.ConfigurePg(0, FourOfSix(0), Members(0));
  // MTR spanning LSNs 1-3 (complete at 3) and 4-5 (complete at 5).
  for (Lsn lsn = 1; lsn <= 5; ++lsn) tracker.RecordIssued(0, lsn);
  tracker.SetMaxAllocated(5);
  tracker.RecordMtrComplete(3);
  tracker.RecordMtrComplete(5);
  for (SegmentId s = 0; s < 4; ++s) tracker.ObserveScl(0, s, 4);
  tracker.Advance();
  EXPECT_EQ(tracker.vcl(), 4u);
  EXPECT_EQ(tracker.vdl(), 3u) << "VDL is the last MTR completion <= VCL";
  for (SegmentId s = 0; s < 4; ++s) tracker.ObserveScl(0, s, 5);
  tracker.Advance();
  EXPECT_EQ(tracker.vdl(), 5u);
}

TEST(ConsistencyTracker, MonotoneUnderStaleAcks) {
  ConsistencyTracker tracker;
  tracker.ConfigurePg(0, FourOfSix(0), Members(0));
  tracker.RecordIssued(0, 1);
  tracker.SetMaxAllocated(1);
  for (SegmentId s = 0; s < 6; ++s) tracker.ObserveScl(0, s, 1);
  tracker.Advance();
  EXPECT_EQ(tracker.vcl(), 1u);
  // A stale (lower) SCL observation must not regress anything.
  tracker.ObserveScl(0, 0, 0);
  tracker.Advance();
  EXPECT_EQ(tracker.vcl(), 1u);
  EXPECT_EQ(tracker.pgcl(0), 1u);
}

TEST(ConsistencyTracker, MembershipChangeReconfigures) {
  ConsistencyTracker tracker;
  tracker.ConfigurePg(0, FourOfSix(0), Members(0));
  tracker.RecordIssued(0, 1);
  tracker.SetMaxAllocated(1);
  for (SegmentId s = 0; s < 6; ++s) tracker.ObserveScl(0, s, 1);
  tracker.Advance();
  // Dual-quorum phase: write set requires 4/6 of BOTH candidate sets.
  auto dual = quorum::QuorumSet::And(
      {quorum::QuorumSet::KofN(4, {0, 1, 2, 3, 4, 5}),
       quorum::QuorumSet::KofN(4, {0, 1, 2, 3, 4, 6})});
  tracker.ConfigurePg(0, dual, {0, 1, 2, 3, 4, 5, 6});
  tracker.RecordIssued(0, 2);
  tracker.SetMaxAllocated(2);
  for (SegmentId s = 0; s < 4; ++s) tracker.ObserveScl(0, s, 2);
  tracker.Advance();
  EXPECT_EQ(tracker.vcl(), 2u) << "ABCD satisfies both 4/6 clauses";
}

TEST(ConsistencyTracker, ResetInstallsRecoveredPoints) {
  ConsistencyTracker tracker;
  tracker.ConfigurePg(0, FourOfSix(0), Members(0));
  tracker.Reset(500, 480, 500);
  EXPECT_EQ(tracker.vcl(), 500u);
  EXPECT_EQ(tracker.vdl(), 480u);
  // New work above the recovered points advances normally.
  tracker.RecordIssued(0, 1000);
  tracker.SetMaxAllocated(1000);
  tracker.RecordMtrComplete(1000);
  for (SegmentId s = 0; s < 4; ++s) tracker.ObserveScl(0, s, 1000);
  tracker.Advance();
  EXPECT_EQ(tracker.vcl(), 1000u);
  EXPECT_EQ(tracker.vdl(), 1000u);
}

// ---------------------------------------------------------------------- //
// BufferCache (WAL rule)

storage::Page MakePage(BlockId id, Lsn lsn) {
  storage::Page page;
  page.id = id;
  page.page_lsn = lsn;
  page.type = storage::PageType::kLeaf;
  return page;
}

TEST(BufferCache, HitMissAccounting) {
  BufferCache cache(4);
  cache.Insert(MakePage(1, 10), /*vdl=*/100);
  EXPECT_NE(cache.Find(1), nullptr);
  EXPECT_EQ(cache.Find(2), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(BufferCache, EvictsLruCleanPages) {
  BufferCache cache(2);
  cache.Insert(MakePage(1, 10), 100);
  cache.Insert(MakePage(2, 20), 100);
  cache.Find(1);  // promote 1; LRU order: 2, 1
  cache.Insert(MakePage(3, 30), 100);
  EXPECT_EQ(cache.Size(), 2u);
  EXPECT_EQ(cache.Peek(2), nullptr) << "page 2 was LRU";
  EXPECT_NE(cache.Peek(1), nullptr);
}

TEST(BufferCache, WalRulePinsDirtyPages) {
  BufferCache cache(2);
  // Pages 1 and 2 have redo above VDL=15: they may NOT be evicted.
  cache.Insert(MakePage(1, 20), /*vdl=*/15);
  cache.Insert(MakePage(2, 30), 15);
  cache.Insert(MakePage(3, 10), 15);
  EXPECT_EQ(cache.Size(), 3u) << "over capacity but nothing evictable";
  EXPECT_GT(cache.stats().wal_blocked_evictions, 0u);
  // VDL advances past their LSNs: now they can go.
  cache.TrimToCapacity(/*vdl=*/40);
  EXPECT_EQ(cache.Size(), 2u);
}

TEST(BufferCache, InsertReplacesInPlace) {
  BufferCache cache(4);
  cache.Insert(MakePage(1, 10), 100);
  cache.Insert(MakePage(1, 20), 100);
  EXPECT_EQ(cache.Size(), 1u);
  EXPECT_EQ(cache.Peek(1)->page_lsn, 20u);
}

TEST(BufferCache, EraseAndClear) {
  BufferCache cache(4);
  cache.Insert(MakePage(1, 10), 100);
  cache.Erase(1);
  EXPECT_EQ(cache.Size(), 0u);
  cache.Insert(MakePage(2, 10), 100);
  cache.Clear();
  EXPECT_EQ(cache.Size(), 0u);
}

// ---------------------------------------------------------------------- //
// ReadRouter

TEST(ReadRouter, RanksByObservedLatency) {
  ReadRouterOptions options;
  options.explore_probability = 0.0;
  ReadRouter router(options);
  Rng rng(1);
  router.ObserveLatency(1, 1000);
  router.ObserveLatency(2, 200);
  router.ObserveLatency(3, 500);
  auto ranked = router.Rank({1, 2, 3}, rng);
  EXPECT_EQ(ranked, (std::vector<SegmentId>{2, 3, 1}));
}

TEST(ReadRouter, EwmaSmoothsObservations) {
  ReadRouter router;
  router.ObserveLatency(1, 100);
  router.ObserveLatency(1, 200);
  const SimDuration expected = router.ExpectedLatency(1);
  EXPECT_GT(expected, 100);
  EXPECT_LT(expected, 200);
}

TEST(ReadRouter, PenaltyDeprioritizes) {
  ReadRouterOptions options;
  options.explore_probability = 0.0;
  ReadRouter router(options);
  Rng rng(1);
  router.ObserveLatency(1, 100);
  router.ObserveLatency(2, 150);
  router.Penalize(1);
  auto ranked = router.Rank({1, 2}, rng);
  EXPECT_EQ(ranked[0], 2u);
  // A fresh success rehabilitates.
  router.ObserveLatency(1, 100);
  // EWMA pulls back down over a few observations.
  router.ObserveLatency(1, 100);
  router.ObserveLatency(1, 100);
  router.ObserveLatency(1, 100);
  router.ObserveLatency(1, 100);
  router.ObserveLatency(1, 100);
  router.ObserveLatency(1, 100);
  router.ObserveLatency(1, 100);
  ranked = router.Rank({1, 2}, rng);
  EXPECT_EQ(ranked[0], 1u);
}

TEST(ReadRouter, HedgeDelayClamped) {
  ReadRouterOptions options;
  options.min_hedge_delay = 500;
  options.max_hedge_delay = 10000;
  options.hedge_multiplier = 3.0;
  ReadRouter router(options);
  router.ObserveLatency(1, 10);  // 3x = 30 -> clamped up
  EXPECT_EQ(router.HedgeDelay(1), 500);
  router.ObserveLatency(2, 100000);  // 3x = 300000 -> clamped down
  EXPECT_EQ(router.HedgeDelay(2), 10000);
}

TEST(ReadRouter, ExplorationOccasionallySwapsSecond) {
  ReadRouterOptions options;
  options.explore_probability = 1.0;  // force it
  ReadRouter router(options);
  Rng rng(1);
  router.ObserveLatency(1, 100);
  router.ObserveLatency(2, 200);
  auto ranked = router.Rank({1, 2}, rng);
  EXPECT_EQ(ranked[0], 2u) << "explore swaps the second-best to the front";
}

}  // namespace
}  // namespace aurora::engine
