// aurora_shrink: minimize a captured chaos trace to the smallest failure
// schedule that still trips the same invariant.
//
// Usage:
//   aurora_shrink <trace.jsonl> [--invariant NAME] [--out FILE]
//   aurora_shrink --seed N [--ops M] [--out FILE]
//
// The first form loads a trace captured by the chaos harness (see
// DESIGN.md §6), re-executes its schedule under the invariant auditor, and
// — if it reproduces a violation — delta-debugs the op list down to a
// 1-minimal reproducer, tightens the virtual-time window, and writes the
// minimized trace (with its own captured event stream and summary) next to
// the input. The second form generates the schedule from a seed instead,
// for reproducing a failed `chaos_audit_test` seed without a trace file.
//
// Exit codes: 0 = shrunk and written, 1 = usage / I/O error,
// 2 = the schedule does not reproduce any violation (nothing to shrink).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/chaos_harness.h"
#include "src/sim/trace.h"

namespace {

using aurora::core::ChaosRunOptions;
using aurora::core::ChaosRunResult;
using aurora::core::ChaosSchedule;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.jsonl> [--invariant NAME] [--out FILE]\n"
               "       %s --seed N [--ops M] [--out FILE]\n",
               argv0, argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string out_path;
  std::string invariant;
  uint64_t seed = 0;
  bool have_seed = false;
  int num_ops = 30;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--invariant" && i + 1 < argc) {
      invariant = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
      have_seed = true;
    } else if (arg == "--ops" && i + 1 < argc) {
      num_ops = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-' && trace_path.empty()) {
      trace_path = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (trace_path.empty() == !have_seed) return Usage(argv[0]);  // exactly one

  // -- Load or generate the schedule ---------------------------------------
  ChaosSchedule schedule;
  if (have_seed) {
    schedule = aurora::core::GenerateChaosSchedule(seed, num_ops);
    std::printf("generated %zu-op schedule from seed %llu\n",
                schedule.ops.size(), static_cast<unsigned long long>(seed));
  } else {
    auto trace = aurora::sim::Trace::ReadFile(trace_path);
    if (!trace.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", trace_path.c_str(),
                   trace.status().ToString().c_str());
      return 1;
    }
    auto loaded = aurora::core::ScheduleFromTrace(*trace);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s is not a chaos trace: %s\n", trace_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    schedule = *loaded;
    std::printf("loaded %zu-op schedule (seed %llu) from %s\n",
                schedule.ops.size(),
                static_cast<unsigned long long>(schedule.seed),
                trace_path.c_str());
    // If the capture recorded its event stream, verify this binary still
    // replays it bit-identically before trusting subset replays.
    if (!trace->events.empty()) {
      ChaosRunOptions replay_options;
      replay_options.replay = &*trace;
      replay_options.check_durability = false;
      replay_options.stop_at_first_violation = false;
      const ChaosRunResult check =
          aurora::core::RunChaosSchedule(schedule, replay_options);
      if (check.replay_diverged) {
        std::fprintf(stderr, "warning: replay diverged from capture: %s\n",
                     check.replay_divergence.c_str());
      } else if (trace->summary.present &&
                 check.fingerprint != trace->summary.fingerprint) {
        std::fprintf(stderr,
                     "warning: schedule fingerprint %llx != captured %llx\n",
                     static_cast<unsigned long long>(check.fingerprint),
                     static_cast<unsigned long long>(
                         trace->summary.fingerprint));
      } else {
        std::printf("replay check: bit-identical to capture (fingerprint "
                    "%llx)\n",
                    static_cast<unsigned long long>(check.fingerprint));
      }
    }
  }

  // -- Find the violation to preserve --------------------------------------
  if (invariant.empty()) {
    ChaosRunOptions probe;
    probe.check_durability = false;
    const ChaosRunResult probe_result =
        aurora::core::RunChaosSchedule(schedule, probe);
    if (probe_result.violations.empty()) {
      std::printf("schedule reproduces no invariant violation; nothing to "
                  "shrink\n");
      return 2;
    }
    invariant = probe_result.violations.front().invariant;
  }
  std::printf("shrinking for invariant \"%s\"...\n", invariant.c_str());

  // -- Shrink ---------------------------------------------------------------
  auto shrunk = aurora::core::ShrinkChaosViolation(schedule, invariant);
  if (!shrunk.ok()) {
    std::fprintf(stderr, "shrink failed: %s\n",
                 shrunk.status().ToString().c_str());
    return 2;
  }
  std::printf("minimized %zu ops -> %zu ops in %zu replays\n",
              shrunk->original_ops, shrunk->minimized.ops.size(),
              shrunk->replays);
  std::printf("%s", shrunk->timeline.c_str());

  // -- Write the minimized reproducer trace ---------------------------------
  if (out_path.empty()) {
    out_path = (trace_path.empty() ? "seed_" + std::to_string(seed)
                                   : trace_path) +
               ".min.jsonl";
  }
  aurora::sim::Trace minimized;
  ChaosRunOptions record_options;
  record_options.record = &minimized;
  record_options.check_durability = false;
  (void)aurora::core::RunChaosSchedule(shrunk->minimized, record_options);
  const aurora::Status write_status = minimized.WriteFile(out_path);
  if (!write_status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 write_status.ToString().c_str());
    return 1;
  }
  std::printf("minimized trace written to %s\n", out_path.c_str());
  return 0;
}
