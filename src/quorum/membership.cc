#include "src/quorum/membership.h"

#include <algorithm>
#include <cassert>

namespace aurora::quorum {

PgConfig PgConfig::Create(ProtectionGroupId pg, QuorumModel model,
                          std::vector<SegmentInfo> members) {
  assert(!members.empty());
  PgConfig config;
  config.pg_ = pg;
  config.epoch_ = 1;
  config.model_ = model;
  config.slots_.reserve(members.size());
  for (auto& m : members) {
    config.slots_.push_back({m});
  }
  return config;
}

std::vector<SegmentInfo> PgConfig::AllMembers() const {
  std::vector<SegmentInfo> out;
  for (const auto& slot : slots_) {
    for (const auto& alt : slot) out.push_back(alt);
  }
  return out;
}

bool PgConfig::ContainsSegment(SegmentId id) const {
  return FindSegment(id) != nullptr;
}

const SegmentInfo* PgConfig::FindSegment(SegmentId id) const {
  for (const auto& slot : slots_) {
    for (const auto& alt : slot) {
      if (alt.id == id) return &alt;
    }
  }
  return nullptr;
}

bool PgConfig::HasPendingChange() const {
  return std::any_of(slots_.begin(), slots_.end(),
                     [](const auto& slot) { return slot.size() > 1; });
}

std::vector<std::vector<SegmentInfo>> PgConfig::CandidateMemberships() const {
  std::vector<std::vector<SegmentInfo>> candidates = {{}};
  for (const auto& slot : slots_) {
    std::vector<std::vector<SegmentInfo>> next;
    next.reserve(candidates.size() * slot.size());
    for (const auto& partial : candidates) {
      for (const auto& alt : slot) {
        auto extended = partial;
        extended.push_back(alt);
        next.push_back(std::move(extended));
      }
    }
    candidates = std::move(next);
  }
  return candidates;
}

QuorumSet PgConfig::QuorumForCandidate(
    const std::vector<SegmentInfo>& candidate, bool write) const {
  std::vector<SegmentId> all;
  std::vector<SegmentId> fulls;
  for (const auto& s : candidate) {
    all.push_back(s.id);
    if (s.is_full) fulls.push_back(s.id);
  }
  const auto n = static_cast<uint32_t>(all.size());
  switch (model_) {
    case QuorumModel::kUniform46: {
      // General rule for V members: Vw = floor(V/2)+1 generalized to the
      // paper's 4/6; Vr = V+1-Vw = 3/6.
      const uint32_t vw = std::min<uint32_t>(n, n / 2 + 1);
      const uint32_t vr = n + 1 - vw;
      return QuorumSet::KofN(write ? vw : vr, all);
    }
    case QuorumModel::kUniform34: {
      const uint32_t vw = std::min<uint32_t>(n, 3);
      const uint32_t vr = n + 1 - vw;
      return QuorumSet::KofN(write ? vw : vr, all);
    }
    case QuorumModel::kFullTail: {
      const uint32_t vw = std::min<uint32_t>(n, n / 2 + 1);
      const uint32_t vr = n + 1 - vw;
      const auto nf = static_cast<uint32_t>(fulls.size());
      // Soundness: the all-fulls write clause must intersect every
      // vw-of-all write, which requires nf > n - vw (true for the paper's
      // 3 fulls of 6 with vw=4). Otherwise fall back to uniform quorums.
      if (nf == 0 || nf + vw <= n) {
        return QuorumSet::KofN(write ? vw : vr, all);
      }
      if (write) {
        // 4/6 of any OR 3/3 of full segments (§4.2).
        return QuorumSet::Or(
            {QuorumSet::KofN(vw, all), QuorumSet::KofN(nf, fulls)});
      }
      // 3/6 of any AND 1/3 of full segments.
      return QuorumSet::And(
          {QuorumSet::KofN(vr, all), QuorumSet::KofN(1, fulls)});
    }
  }
  return QuorumSet();
}

QuorumSet PgConfig::WriteSet() const {
  std::vector<QuorumSet> parts;
  for (const auto& candidate : CandidateMemberships()) {
    parts.push_back(QuorumForCandidate(candidate, /*write=*/true));
  }
  return QuorumSet::And(std::move(parts));
}

QuorumSet PgConfig::ReadSet() const {
  std::vector<QuorumSet> parts;
  for (const auto& candidate : CandidateMemberships()) {
    parts.push_back(QuorumForCandidate(candidate, /*write=*/false));
  }
  return QuorumSet::Or(std::move(parts));
}

Result<PgConfig> PgConfig::BeginReplace(SegmentId old_id,
                                        SegmentInfo replacement) const {
  if (ContainsSegment(replacement.id)) {
    return Status::AlreadyExists("replacement segment already a member");
  }
  PgConfig next = *this;
  for (auto& slot : next.slots_) {
    for (const auto& alt : slot) {
      if (alt.id != old_id) continue;
      if (slot.size() > 1) {
        return Status::Conflict("slot already has a pending change");
      }
      // Replacement must match the slot's durability class so full/tail
      // quorum math is preserved across the change.
      replacement.is_full = alt.is_full;
      slot.push_back(replacement);
      next.epoch_ = epoch_ + 1;
      return next;
    }
  }
  return Status::NotFound("segment not a member of this protection group");
}

Result<PgConfig> PgConfig::CommitReplace(SegmentId old_id) const {
  PgConfig next = *this;
  for (auto& slot : next.slots_) {
    if (slot.size() != 2) continue;
    if (slot[0].id == old_id || slot[1].id == old_id) {
      const SegmentInfo keep = slot[0].id == old_id ? slot[1] : slot[0];
      slot = {keep};
      next.epoch_ = epoch_ + 1;
      return next;
    }
  }
  return Status::NotFound("no pending change involving segment");
}

Result<PgConfig> PgConfig::RevertReplace(SegmentId old_id) const {
  PgConfig next = *this;
  for (auto& slot : next.slots_) {
    if (slot.size() != 2) continue;
    if (slot[0].id == old_id || slot[1].id == old_id) {
      const SegmentInfo keep = slot[0].id == old_id ? slot[0] : slot[1];
      slot = {keep};
      next.epoch_ = epoch_ + 1;
      return next;
    }
  }
  return Status::NotFound("no pending change involving segment");
}

Result<PgConfig> PgConfig::ShrinkAfterAzLoss(AzId lost_az) const {
  if (HasPendingChange()) {
    return Status::Conflict("cannot shrink mid-membership-change");
  }
  PgConfig next = *this;
  next.slots_.clear();
  for (const auto& slot : slots_) {
    if (slot[0].az != lost_az) next.slots_.push_back(slot);
  }
  if (next.slots_.size() == slots_.size()) {
    return Status::NotFound("no members in the lost AZ");
  }
  if (next.slots_.size() < 3) {
    return Status::InvalidArgument("shrink would leave fewer than 3 members");
  }
  next.model_ = QuorumModel::kUniform34;
  next.epoch_ = epoch_ + 1;
  return next;
}

Result<PgConfig> PgConfig::ExpandToSix(
    const std::vector<SegmentInfo>& fresh) const {
  if (HasPendingChange()) {
    return Status::Conflict("cannot expand mid-membership-change");
  }
  PgConfig next = *this;
  for (const auto& info : fresh) {
    if (ContainsSegment(info.id)) {
      return Status::AlreadyExists("fresh segment already a member");
    }
    next.slots_.push_back({info});
  }
  if (next.slots_.size() != 6) {
    return Status::InvalidArgument("expand must restore exactly 6 members");
  }
  next.model_ = QuorumModel::kUniform46;
  next.epoch_ = epoch_ + 1;
  return next;
}

Result<PgConfig> PgConfig::WithModel(QuorumModel model) const {
  if (HasPendingChange()) {
    return Status::Conflict("cannot change quorum model mid-membership-change");
  }
  PgConfig next = *this;
  next.model_ = model;
  next.epoch_ = epoch_ + 1;
  return next;
}

std::string PgConfig::ToString() const {
  std::string out = "PG" + std::to_string(pg_) + "@e" + std::to_string(epoch_);
  out += " slots=[";
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (i > 0) out += " ";
    if (slots_[i].size() == 1) {
      out += std::to_string(slots_[i][0].id);
      if (!slots_[i][0].is_full) out += "t";
    } else {
      out += "{";
      for (size_t j = 0; j < slots_[i].size(); ++j) {
        if (j > 0) out += "|";
        out += std::to_string(slots_[i][j].id);
      }
      out += "}";
    }
  }
  out += "] write=" + WriteSet().ToString();
  out += " read=" + ReadSet().ToString();
  return out;
}

bool TransitionIsSafe(const PgConfig& old_config,
                      const PgConfig& next_config) {
  // Rule 1: new read and write sets must overlap.
  if (!QuorumSet::AlwaysOverlaps(next_config.ReadSet(),
                                 next_config.WriteSet())) {
    return false;
  }
  // Rule 2: the new write set must overlap prior write sets.
  if (!QuorumSet::AlwaysOverlaps(next_config.WriteSet(),
                                 old_config.WriteSet())) {
    return false;
  }
  // Note: the new READ set need not combinatorially overlap *prior* write
  // sets — a candidate branch containing a freshly added (empty) segment
  // cannot witness old data. Safety there is operational: an un-hydrated
  // segment never counts toward a read quorum (recovery masks it out), and
  // CommitReplace is gated on hydration completing. Tests verify that the
  // read set restricted to previously-present members does overlap the old
  // write set.
  return true;
}

}  // namespace aurora::quorum
