// Protection-group membership: configuration, epochs, and the two-step
// reversible membership-change state machine of §4.1 / Figure 5.
//
// A protection group has six member slots. During a membership change a
// slot temporarily holds TWO alternatives (the suspect old segment and its
// replacement); the effective write set is the AND over all candidate
// memberships (cross product of slot alternatives) and the effective read
// set is the OR. Every transition increments the membership epoch and is
// itself installed via a quorum write, so changes have the same failure
// tolerance as ordinary I/O and never block reads or writes.
//
// Transition states (Figure 5, epochs from the paper's example):
//
//   stable(e=1)      one alternative per slot; quorums per QuorumModel.
//     │ BeginReplace(F, G)
//   pending(e=2)     suspect slot holds {F, G}; write = 4/6{ABCDEF} ∧
//     │              4/6{ABCDEG}, read = 3/6{ABCDEF} ∨ 3/6{ABCDEG}.
//     │              Writing to ABCD alone satisfies BOTH conjuncts, so a
//     │              healthy majority keeps full I/O availability. A
//     │              second failure mid-change (say E) nests another
//     │              Begin: 4 candidate memberships, still non-blocking.
//     ├─ CommitReplace(F) → stable(e=3) on ABCDEG (G finished hydrating)
//     └─ RevertReplace(F) → stable(e=3) on ABCDEF (F came back; the
//                           replacement is discarded)
//
// Both exits are always one further epoch away — that is the
// "reversible" in §4.1, and DESIGN.md §5 invariant 7 (membership
// reversibility): from any intermediate state, roll-forward and roll-back
// both preserve the overlap rules and all data acknowledged under any
// epoch. `TransitionIsSafe` proves each hop; the hydration gate on commit
// is operational, not combinatorial (see EXPERIMENTS.md "Mid-change read
// quorums" note).
//
// Epoch fencing (§2.4 + §4.1; DESIGN.md §5 invariant 6): every I/O
// carries the issuer's epoch vector (volume epoch, membership epoch,
// geometry epoch — EpochVector in common/types.h). A storage node
// rejects any request whose membership epoch is stale for the target
// segment, and the driver discards acks from stale-epoch segments
// (`driver.stale_epoch_acks` in DESIGN.md §5b). Because the new config is
// itself installed at a write quorum before use, and any future write
// quorum overlaps that install (rule 2), a writer still on epoch e can
// never assemble a quorum once e+1 exists — membership changes fence
// exactly like crash-recovery volume epochs, with no lease to wait out.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/quorum/quorum_set.h"

namespace aurora::quorum {

/// A segment replica: where it lives and whether it stores materialized
/// data blocks (full) or redo log only (tail, §4.2).
struct SegmentInfo {
  SegmentId id = kInvalidSegment;
  NodeId node = kInvalidNode;
  AzId az = 0;
  bool is_full = true;
  /// Owning volume (tenant). Segment servers host segments from many
  /// volumes, keyed by (volume, pg, segment); the volume rides in the
  /// config so every layer that sees a membership sees its tenant.
  /// Defaults to 0, the single-volume legacy shape.
  VolumeId volume = 0;

  bool operator==(const SegmentInfo&) const = default;
};

/// Which quorum construction a protection group uses.
enum class QuorumModel {
  /// V=6, Vw=4, Vr=3 over identical members (§2.1).
  kUniform46,
  /// 3 full + 3 tail segments (§4.2): write = 4/6 ∨ 3/3 full,
  /// read = 3/6 ∧ 1/3 full.
  kFullTail,
  /// Degraded 3/4 mode for extended AZ loss (§4.1 volume geometry note).
  kUniform34,
};

/// Immutable snapshot of one protection group's membership at one epoch.
/// Transitions produce new configs with epoch+1.
class PgConfig {
 public:
  PgConfig() = default;

  /// Creates an epoch-1 config with one segment per slot.
  static PgConfig Create(ProtectionGroupId pg, QuorumModel model,
                         std::vector<SegmentInfo> members);

  ProtectionGroupId pg() const { return pg_; }
  MembershipEpoch epoch() const { return epoch_; }
  QuorumModel model() const { return model_; }

  /// Slot alternatives; inner vector has 1 entry normally, 2 mid-change.
  const std::vector<std::vector<SegmentInfo>>& slots() const {
    return slots_;
  }

  /// Union of all alternatives in all slots (where writes are sent).
  std::vector<SegmentInfo> AllMembers() const;

  bool ContainsSegment(SegmentId id) const;
  const SegmentInfo* FindSegment(SegmentId id) const;

  /// True while any slot holds two alternatives.
  bool HasPendingChange() const;

  /// The cross product of slot alternatives: each candidate is a possible
  /// final membership (Figure 5 shows 2 candidates after one failure,
  /// §4.1 shows 4 after a second failure mid-change).
  std::vector<std::vector<SegmentInfo>> CandidateMemberships() const;

  /// Effective write quorum: AND over candidates.
  QuorumSet WriteSet() const;
  /// Effective read quorum: OR over candidates.
  QuorumSet ReadSet() const;

  /// Starts replacing `old_id` with `replacement`: the slot gains an
  /// alternative, epoch+1. Fails if old_id is unknown, already mid-change
  /// in its slot, or replacement id already present.
  Result<PgConfig> BeginReplace(SegmentId old_id,
                                SegmentInfo replacement) const;

  /// Completes the change: drops `old_id`, keeps its alternative, epoch+1.
  Result<PgConfig> CommitReplace(SegmentId old_id) const;

  /// Reverses the change: keeps `old_id`, drops its alternative, epoch+1
  /// (the suspect member came back; §4.1 "If F comes back, we can make a
  /// second membership change back to ABCDEF").
  Result<PgConfig> RevertReplace(SegmentId old_id) const;

  /// Switches the quorum model (e.g. 4/6 -> 3/4 for extended AZ loss),
  /// epoch+1. Requires no pending change.
  Result<PgConfig> WithModel(QuorumModel model) const;

  /// §4.1: "moving from a 4/6 write quorum to 3/4 to handle the extended
  /// loss of an AZ" — removes the lost AZ's members and switches to the
  /// 3/4 model, epoch+1. Safe: any 3 of the surviving 4 overlaps any
  /// prior 4-of-6 write (3 + 4 > 6 on the 6-member universe). Requires no
  /// pending change.
  Result<PgConfig> ShrinkAfterAzLoss(AzId lost_az) const;

  /// Re-expands to the 4/6 model with two fresh members in `restored_az`
  /// (the AZ recovered or capacity moved elsewhere), epoch+1. The new
  /// members must hydrate before any subsequent shrink abandons old state.
  Result<PgConfig> ExpandToSix(const std::vector<SegmentInfo>& fresh) const;

  std::string ToString() const;

  bool operator==(const PgConfig&) const = default;

 private:
  QuorumSet QuorumForCandidate(const std::vector<SegmentInfo>& candidate,
                               bool write) const;

  ProtectionGroupId pg_ = 0;
  MembershipEpoch epoch_ = 0;
  QuorumModel model_ = QuorumModel::kUniform46;
  std::vector<std::vector<SegmentInfo>> slots_;
};

/// Debug-mode proof that a transition old→next preserves the §2.1 quorum
/// rules: next's read overlaps next's write, and next's write overlaps
/// old's write (so no two writers across the transition can both succeed
/// without a common witness). Exhaustive; call from tests and from the
/// membership driver in debug builds.
bool TransitionIsSafe(const PgConfig& old_config, const PgConfig& next_config);

}  // namespace aurora::quorum
