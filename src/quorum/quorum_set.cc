#include "src/quorum/quorum_set.h"

#include <algorithm>
#include <cassert>

namespace aurora::quorum {

QuorumSet QuorumSet::KofN(uint32_t k, std::vector<SegmentId> members) {
  assert(k <= members.size());
  auto node = std::make_shared<Node>();
  node->op = Op::kThreshold;
  node->k = k;
  node->members = std::move(members);
  std::sort(node->members.begin(), node->members.end());
  return QuorumSet(std::move(node));
}

QuorumSet QuorumSet::And(std::vector<QuorumSet> children) {
  if (children.size() == 1) return children[0];
  auto node = std::make_shared<Node>();
  node->op = Op::kAnd;
  for (auto& c : children) {
    if (c.root_ != nullptr) node->children.push_back(c.root_);
  }
  return QuorumSet(std::move(node));
}

QuorumSet QuorumSet::Or(std::vector<QuorumSet> children) {
  if (children.size() == 1) return children[0];
  auto node = std::make_shared<Node>();
  node->op = Op::kOr;
  for (auto& c : children) {
    if (c.root_ != nullptr) node->children.push_back(c.root_);
  }
  return QuorumSet(std::move(node));
}

bool QuorumSet::SatisfiedBy(const SegmentSet& acked) const {
  if (root_ == nullptr) return true;
  return Eval(*root_, acked);
}

bool QuorumSet::Eval(const Node& node, const SegmentSet& acked) {
  switch (node.op) {
    case Op::kThreshold: {
      uint32_t count = 0;
      for (SegmentId m : node.members) {
        if (acked.contains(m) && ++count >= node.k) return true;
      }
      return node.k == 0;
    }
    case Op::kAnd:
      for (const auto& c : node.children) {
        if (!Eval(*c, acked)) return false;
      }
      return true;
    case Op::kOr:
      for (const auto& c : node.children) {
        if (Eval(*c, acked)) return true;
      }
      return node.children.empty();
  }
  return false;
}

SegmentSet QuorumSet::Universe() const {
  SegmentSet out;
  if (root_ != nullptr) CollectUniverse(*root_, &out);
  return out;
}

void QuorumSet::CollectUniverse(const Node& node, SegmentSet* out) {
  if (node.op == Op::kThreshold) {
    out->insert(node.members.begin(), node.members.end());
    return;
  }
  for (const auto& c : node.children) CollectUniverse(*c, out);
}

bool QuorumSet::AlwaysOverlaps(const QuorumSet& a, const QuorumSet& b) {
  SegmentSet universe = a.Universe();
  const SegmentSet ub = b.Universe();
  universe.insert(ub.begin(), ub.end());
  std::vector<SegmentId> ids(universe.begin(), universe.end());
  const size_t n = ids.size();
  assert(n <= 24 && "AlwaysOverlaps is exhaustive; universe too large");
  const uint64_t limit = 1ULL << n;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    SegmentSet s, complement;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) {
        s.insert(ids[i]);
      } else {
        complement.insert(ids[i]);
      }
    }
    if (a.SatisfiedBy(s) && b.SatisfiedBy(complement)) return false;
  }
  return true;
}

bool QuorumSet::Implies(const QuorumSet& a, const QuorumSet& b) {
  SegmentSet universe = a.Universe();
  const SegmentSet ub = b.Universe();
  universe.insert(ub.begin(), ub.end());
  std::vector<SegmentId> ids(universe.begin(), universe.end());
  const size_t n = ids.size();
  assert(n <= 24 && "Implies is exhaustive; universe too large");
  const uint64_t limit = 1ULL << n;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    SegmentSet s;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) s.insert(ids[i]);
    }
    if (a.SatisfiedBy(s) && !b.SatisfiedBy(s)) return false;
  }
  return true;
}

std::string QuorumSet::ToString() const {
  if (root_ == nullptr) return "(true)";
  return NodeToString(*root_);
}

std::string QuorumSet::NodeToString(const Node& node) {
  switch (node.op) {
    case Op::kThreshold: {
      std::string out = std::to_string(node.k) + "/{";
      for (size_t i = 0; i < node.members.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(node.members[i]);
      }
      out += "}";
      return out;
    }
    case Op::kAnd:
    case Op::kOr: {
      const char* sep = node.op == Op::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += sep;
        out += NodeToString(*node.children[i]);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace aurora::quorum
