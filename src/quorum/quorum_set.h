// Quorum sets as monotone Boolean formulas over segment ids.
//
// §4.1: "Aurora uses the abstraction of quorum sets to quickly transition
// membership changes, using Boolean logic to ensure more sophisticated read
// quorums and write quorums that are guaranteed to overlap... Using Boolean
// logic, we can prove that each transition is correct, safe, and
// reversible." This module provides that algebra plus the exhaustive
// overlap prover used by tests and by the membership state machine's
// debug-mode self-checks.
//
// The formulas matter because membership changes are expressed entirely
// through them (no consensus round): a group mid-change has a write set
// that is the AND of the old and new candidate memberships (e.g.
// 4/6{ABCDEF} ∧ 4/6{ABCDEG}) and a read set that is their OR. The two §2.1
// rules every configuration — stable or mid-change — must satisfy:
//
//   rule 1:  each read set intersects each write set (Vr + Vw > V), so a
//            reader always meets at least one node that saw the last write;
//   rule 2:  each write set intersects each prior write set (2·Vw > V), so
//            two writers across an epoch boundary share a witness and a
//            stale writer's acks can never form a quorum unseen.
//
// `AlwaysOverlaps` proves rule 1, `Implies` proves rule 2 across a
// transition, and `TransitionIsSafe` (membership.h) packages both. These
// are DESIGN.md §5 invariants 2 and 7, checked exhaustively in
// tests/quorum_test.cc and property_test.cc for every transition shape the
// state machine can produce (replace, revert, 4/6↔3/4, full/tail).

#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace aurora::quorum {

/// A set of segments that acknowledged (or can serve) a request.
using SegmentSet = std::set<SegmentId>;

/// Monotone Boolean formula: leaves are "k of {members}" threshold clauses,
/// internal nodes are AND / OR. Monotonicity (a superset of a satisfying
/// set also satisfies) is what makes quorum-overlap checkable with a single
/// subset enumeration.
class QuorumSet {
 public:
  /// Threshold clause: at least `k` of `members` must be present.
  static QuorumSet KofN(uint32_t k, std::vector<SegmentId> members);
  /// All children must be satisfied.
  static QuorumSet And(std::vector<QuorumSet> children);
  /// At least one child must be satisfied.
  static QuorumSet Or(std::vector<QuorumSet> children);

  QuorumSet() = default;  // empty formula; satisfied by anything

  bool IsEmpty() const { return root_ == nullptr; }

  /// True iff `acked` satisfies the formula.
  bool SatisfiedBy(const SegmentSet& acked) const;

  /// Union of all member ids mentioned anywhere in the formula.
  SegmentSet Universe() const;

  /// True iff every satisfying set of `a` intersects every satisfying set
  /// of `b`. Exhaustive over the joint universe; intended for universes of
  /// up to ~20 segments (tests, debug checks, membership transitions).
  ///
  /// By monotonicity, a disjoint satisfying pair exists iff some subset S
  /// of the universe satisfies `a` while its complement satisfies `b` — a
  /// single 2^|U| scan.
  static bool AlwaysOverlaps(const QuorumSet& a, const QuorumSet& b);

  /// True iff every set satisfying `a` also satisfies `b` (a is at least
  /// as strict). Used to prove membership transitions preserve prior
  /// write-set overlap (§2.1 rule 2 / §4.1 reversibility).
  static bool Implies(const QuorumSet& a, const QuorumSet& b);

  std::string ToString() const;

 private:
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

  enum class Op { kThreshold, kAnd, kOr };

  struct Node {
    Op op;
    uint32_t k = 0;
    std::vector<SegmentId> members;  // kThreshold
    std::vector<NodePtr> children;   // kAnd / kOr
  };

  static bool Eval(const Node& node, const SegmentSet& acked);
  static void CollectUniverse(const Node& node, SegmentSet* out);
  static std::string NodeToString(const Node& node);

  explicit QuorumSet(NodePtr root) : root_(std::move(root)) {}

  NodePtr root_;
};

}  // namespace aurora::quorum
