#include "src/quorum/geometry.h"

namespace aurora::quorum {

VolumeGeometry::VolumeGeometry(uint64_t blocks_per_pg,
                               std::vector<PgConfig> pgs)
    : blocks_per_pg_(blocks_per_pg),
      geometry_epoch_(1),
      pgs_(std::move(pgs)) {}

Status VolumeGeometry::UpdatePg(PgConfig config) {
  const ProtectionGroupId id = config.pg();
  if (id >= pgs_.size()) {
    return Status::NotFound("unknown protection group");
  }
  if (config.epoch() < pgs_[id].epoch()) {
    return Status::StaleEpoch("membership epoch regression");
  }
  pgs_[id] = std::move(config);
  return Status::OK();
}

void VolumeGeometry::AddPg(PgConfig config) {
  pgs_.push_back(std::move(config));
  ++geometry_epoch_;
}

Result<ProtectionGroupId> VolumeGeometry::PgForBlock(BlockId block) const {
  if (blocks_per_pg_ == 0) {
    return Status::Internal("geometry not initialized");
  }
  const uint64_t pg = block / blocks_per_pg_;
  if (pg >= pgs_.size()) {
    return Status::OutOfRange("block beyond volume geometry");
  }
  return static_cast<ProtectionGroupId>(pg);
}

std::string VolumeGeometry::ToString() const {
  std::string out =
      "VolumeGeometry{ge=" + std::to_string(geometry_epoch_) +
      " blocks_per_pg=" + std::to_string(blocks_per_pg_) + "\n";
  for (const auto& pg : pgs_) {
    out += "  " + pg.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace aurora::quorum
