// Volume geometry: the ordered list of protection groups that concatenate
// into a storage volume (§2.1), plus the geometry epoch that tracks volume
// growth and quorum-model changes (§4.1).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/quorum/membership.h"

namespace aurora::quorum {

/// The full shape of one volume: protection groups, block mapping, epochs.
///
/// Protection groups own contiguous block ranges (`blocks_per_pg` each);
/// every data block maps to exactly one PG. The geometry epoch increments
/// when a PG is appended (volume growth) or a PG's quorum model changes;
/// the membership epoch of each PG evolves independently.
class VolumeGeometry {
 public:
  VolumeGeometry() = default;
  VolumeGeometry(uint64_t blocks_per_pg, std::vector<PgConfig> pgs);

  GeometryEpoch geometry_epoch() const { return geometry_epoch_; }
  uint64_t blocks_per_pg() const { return blocks_per_pg_; }

  size_t PgCount() const { return pgs_.size(); }
  const std::vector<PgConfig>& pgs() const { return pgs_; }

  const PgConfig& Pg(ProtectionGroupId pg) const { return pgs_.at(pg); }
  Status UpdatePg(PgConfig config);

  /// Appends a protection group (volume growth); geometry epoch +1.
  void AddPg(PgConfig config);

  /// Which PG stores `block`. Blocks beyond the current geometry are an
  /// error (the engine grows the volume first).
  Result<ProtectionGroupId> PgForBlock(BlockId block) const;

  /// Total addressable blocks at the current geometry.
  uint64_t Capacity() const { return blocks_per_pg_ * pgs_.size(); }

  std::string ToString() const;

 private:
  uint64_t blocks_per_pg_ = 0;
  GeometryEpoch geometry_epoch_ = 0;
  std::vector<PgConfig> pgs_;
};

}  // namespace aurora::quorum
