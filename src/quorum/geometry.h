// Volume geometry: the ordered list of protection groups that concatenate
// into a storage volume (§2.1), plus the geometry epoch that tracks volume
// growth and quorum-model changes (§4.1).
//
// Three independent epochs fence three kinds of staleness (DESIGN.md §5
// invariant 6; all three travel in the EpochVector on every I/O):
//
//   volume epoch      bumped by crash recovery (§2.4) — fences a dead
//                     writer's in-flight requests ("change the locks");
//   membership epoch  per-PG, bumped by each membership transition
//                     (membership.h) — fences I/O addressed under a
//                     superseded member list;
//   geometry epoch    bumped here when a PG is appended (volume growth)
//                     or a PG's quorum model changes (4/6 ↔ 3/4 for
//                     extended AZ loss, §4.1) — fences block→PG mapping:
//                     a writer with a stale geometry could route a block
//                     to the wrong group or apply the wrong quorum rule.
//
// Growth is consensus-free for the same reason membership changes are:
// the new geometry is installed at a write quorum of every affected PG
// before the writer uses it, and quorum-overlap rule 2 (quorum_set.h)
// guarantees a stale-geometry writer can no longer complete quorums. Per-
// PG allocation cursors (DESIGN.md §4b) keep readers independent of the
// cursors — block→PG mapping stays range-based via PgForBlock.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/quorum/membership.h"

namespace aurora::quorum {

/// The full shape of one volume: protection groups, block mapping, epochs.
///
/// Protection groups own contiguous block ranges (`blocks_per_pg` each);
/// every data block maps to exactly one PG. The geometry epoch increments
/// when a PG is appended (volume growth) or a PG's quorum model changes;
/// the membership epoch of each PG evolves independently.
class VolumeGeometry {
 public:
  VolumeGeometry() = default;
  VolumeGeometry(uint64_t blocks_per_pg, std::vector<PgConfig> pgs);

  GeometryEpoch geometry_epoch() const { return geometry_epoch_; }
  uint64_t blocks_per_pg() const { return blocks_per_pg_; }

  size_t PgCount() const { return pgs_.size(); }
  const std::vector<PgConfig>& pgs() const { return pgs_; }

  const PgConfig& Pg(ProtectionGroupId pg) const { return pgs_.at(pg); }
  Status UpdatePg(PgConfig config);

  /// Appends a protection group (volume growth); geometry epoch +1.
  void AddPg(PgConfig config);

  /// Which PG stores `block`. Blocks beyond the current geometry are an
  /// error (the engine grows the volume first).
  Result<ProtectionGroupId> PgForBlock(BlockId block) const;

  /// Total addressable blocks at the current geometry.
  uint64_t Capacity() const { return blocks_per_pg_ * pgs_.size(); }

  std::string ToString() const;

 private:
  uint64_t blocks_per_pg_ = 0;
  GeometryEpoch geometry_epoch_ = 0;
  std::vector<PgConfig> pgs_;
};

}  // namespace aurora::quorum
