// The commit queue of §2.3.
//
// "When a commit is received, the worker thread writes the commit record,
// puts the transaction on a commit queue, and returns to a common task
// queue... When a driver thread advances VCL, it wakes up a dedicated
// commit thread that scans the commit queue for SCNs below the new VCL and
// sends acknowledgements." In the simulation, "sending the ack" is the
// completion callback; worker threads never stall.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/common/types.h"

namespace aurora::txn {

/// A commit awaiting durability.
struct PendingCommit {
  TxnId txn = kInvalidTxn;
  Scn scn = kInvalidLsn;
  SimTime enqueued_at = 0;
  std::function<void()> ack;
};

/// SCN-ordered queue of unacknowledged commits.
class CommitQueue {
 public:
  void Enqueue(PendingCommit commit) {
    pending_.emplace(commit.scn, std::move(commit));
    if (pending_.size() > max_depth_) max_depth_ = pending_.size();
  }

  /// Removes and returns every pending commit with SCN <= vcl, in SCN
  /// order (the dedicated commit thread's scan).
  std::vector<PendingCommit> DrainUpTo(Lsn vcl) {
    std::vector<PendingCommit> out;
    auto end = pending_.upper_bound(vcl);
    for (auto it = pending_.begin(); it != end; ++it) {
      out.push_back(std::move(it->second));
    }
    pending_.erase(pending_.begin(), end);
    return out;
  }

  /// Drops everything (crash: un-acked commits simply vanish; recovery
  /// decides their fate by whether their SCN survived truncation).
  void Clear() { pending_.clear(); }

  size_t Size() const { return pending_.size(); }
  bool Empty() const { return pending_.empty(); }

  /// Smallest pending SCN (kInvalidLsn when empty).
  Scn MinPendingScn() const {
    return pending_.empty() ? kInvalidLsn : pending_.begin()->first;
  }

  /// High-water mark of simultaneously pending commits (a proxy for how
  /// far the group-commit effect batches acknowledgements).
  size_t MaxDepth() const { return max_depth_; }

 private:
  std::multimap<Scn, PendingCommit> pending_;
  size_t max_depth_ = 0;
};

}  // namespace aurora::txn
