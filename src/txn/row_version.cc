#include "src/txn/row_version.h"

#include <cstring>

namespace aurora::txn {

namespace {

void PutU64(std::string& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void PutString(std::string& out, const std::string& s) {
  PutU64(out, s.size());
  out.append(s);
}

struct Reader {
  std::string_view data;
  size_t pos = 0;

  bool ReadU64(uint64_t* v) {
    if (data.size() - pos < 8) return false;
    std::memcpy(v, data.data() + pos, 8);
    pos += 8;
    return true;
  }
  bool ReadString(std::string* s) {
    uint64_t len;
    if (!ReadU64(&len)) return false;
    if (data.size() - pos < len) return false;
    s->assign(data.data() + pos, len);
    pos += len;
    return true;
  }
  bool ReadBool(bool* b) {
    if (pos >= data.size()) return false;
    *b = data[pos++] != 0;
    return true;
  }
};

void EncodeRowVersionTo(std::string& out, const RowVersion& version) {
  PutU64(out, version.txn);
  out.push_back(version.deleted ? 1 : 0);
  PutString(out, version.value);
  PutU64(out, version.undo.block);
  PutString(out, version.undo.key);
}

bool DecodeRowVersionFrom(Reader& reader, RowVersion* version) {
  uint64_t txn, block;
  if (!reader.ReadU64(&txn) || !reader.ReadBool(&version->deleted) ||
      !reader.ReadString(&version->value) || !reader.ReadU64(&block) ||
      !reader.ReadString(&version->undo.key)) {
    return false;
  }
  version->txn = txn;
  version->undo.block = block;
  return true;
}

}  // namespace

std::string EncodeRowVersion(const RowVersion& version) {
  std::string out;
  EncodeRowVersionTo(out, version);
  return out;
}

Result<RowVersion> DecodeRowVersion(std::string_view encoded) {
  Reader reader{encoded};
  RowVersion version;
  if (!DecodeRowVersionFrom(reader, &version) ||
      reader.pos != encoded.size()) {
    return Status::Corruption("bad row version encoding");
  }
  return version;
}

std::string EncodeUndoEntry(const UndoEntry& entry) {
  std::string out;
  PutString(out, entry.row_key);
  out.push_back(entry.prev_exists ? 1 : 0);
  EncodeRowVersionTo(out, entry.prev);
  PutU64(out, entry.next.block);
  PutString(out, entry.next.key);
  return out;
}

Result<UndoEntry> DecodeUndoEntry(std::string_view encoded) {
  Reader reader{encoded};
  UndoEntry entry;
  uint64_t next_block;
  if (!reader.ReadString(&entry.row_key) ||
      !reader.ReadBool(&entry.prev_exists) ||
      !DecodeRowVersionFrom(reader, &entry.prev) ||
      !reader.ReadU64(&next_block) || !reader.ReadString(&entry.next.key) ||
      reader.pos != encoded.size()) {
    return Status::Corruption("bad undo entry encoding");
  }
  entry.next.block = next_block;
  return entry;
}

}  // namespace aurora::txn
