#include "src/txn/read_view.h"

namespace aurora::txn {

std::string ReadView::ToString() const {
  std::string out = "ReadView{lsn=" + std::to_string(read_lsn_) + " active={";
  bool first = true;
  for (TxnId t : active_) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(t);
  }
  out += "}";
  if (own_ != kInvalidTxn) out += " own=" + std::to_string(own_);
  out += "}";
  return out;
}

}  // namespace aurora::txn
