// MVCC read views (§3.1).
//
// "A read view establishes a logical point in time before which a SQL
// statement must see all changes and after which it may not see any
// changes other than its own." A view anchors at an LSN (the writer's VDL,
// or a VDL control point on a replica, §3.4) and carries the transactions
// active as of that point.

#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "src/common/types.h"

namespace aurora::txn {

/// An immutable snapshot descriptor.
class ReadView {
 public:
  ReadView() = default;
  ReadView(Lsn read_lsn, std::set<TxnId> active, TxnId own = kInvalidTxn)
      : read_lsn_(read_lsn), active_(std::move(active)), own_(own) {}

  /// The anchor: data block versions read must be at or below this LSN.
  Lsn read_lsn() const { return read_lsn_; }
  TxnId own_txn() const { return own_; }
  const std::set<TxnId>& active() const { return active_; }

  /// Visibility of a row version written by `writer`, which committed at
  /// `commit_scn` (kInvalidLsn if not committed as far as the caller
  /// knows). Own writes are always visible.
  bool Sees(TxnId writer, Scn commit_scn) const {
    if (writer == own_ && own_ != kInvalidTxn) return true;
    if (active_.contains(writer)) return false;
    if (commit_scn == kInvalidLsn) return false;  // uncommitted
    return commit_scn <= read_lsn_;
  }

  std::string ToString() const;

 private:
  Lsn read_lsn_ = kInvalidLsn;
  std::set<TxnId> active_;
  TxnId own_ = kInvalidTxn;
};

}  // namespace aurora::txn
