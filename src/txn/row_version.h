// Row version encoding for MVCC (§3.1).
//
// Leaf-page entry values are encoded row versions carrying the writing
// transaction id and a pointer to the undo entry holding the previous
// version. Aurora-style visibility: a reader with a read view either sees
// the version (its writer committed at or before the view's anchor LSN) or
// follows the undo chain to reconstruct an older version — "replicas revert
// active transactions for MVCC using undo, just as on the writer" (§3.4).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/common/types.h"

namespace aurora::txn {

/// Locates one undo entry: a key inside a dedicated undo page. Undo pages
/// are ordinary volume blocks materialized through the same redo path, so
/// replicas can read undo from shared storage.
struct UndoPtr {
  BlockId block = kInvalidBlock;
  std::string key;

  bool IsNull() const { return block == kInvalidBlock; }
  bool operator==(const UndoPtr&) const = default;
};

/// One visible row state.
struct RowVersion {
  TxnId txn = kInvalidTxn;
  bool deleted = false;
  std::string value;
  UndoPtr undo;  // previous version, or null at the chain end

  bool operator==(const RowVersion&) const = default;
};

/// Serializes a row version into a page-entry value.
std::string EncodeRowVersion(const RowVersion& version);

/// Decodes a page-entry value.
Result<RowVersion> DecodeRowVersion(std::string_view encoded);

/// The payload stored in an undo entry: the full previous RowVersion, or
/// "row did not exist" (insert rollback). `row_key` locates the row for
/// compensation; `next` chains the writing transaction's undo entries
/// (most recent first) for rollback.
struct UndoEntry {
  std::string row_key;
  bool prev_exists = false;
  RowVersion prev;
  UndoPtr next;

  bool operator==(const UndoEntry&) const = default;
};

std::string EncodeUndoEntry(const UndoEntry& entry);
Result<UndoEntry> DecodeUndoEntry(std::string_view encoded);

}  // namespace aurora::txn
