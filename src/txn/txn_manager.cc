#include "src/txn/txn_manager.h"

#include <cassert>

namespace aurora::txn {

Transaction* TxnManager::Begin(SimTime now) {
  const TxnId id = next_txn_++;
  Transaction txn;
  txn.id = id;
  txn.state = TxnState::kActive;
  txn.start_time = now;
  auto [it, inserted] = txns_.emplace(id, std::move(txn));
  assert(inserted);
  active_.insert(id);
  started_++;
  return &it->second;
}

Transaction* TxnManager::Find(TxnId id) {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : &it->second;
}

const Transaction* TxnManager::Find(TxnId id) const {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : &it->second;
}

std::set<TxnId> TxnManager::ActiveSet() const { return active_; }

void TxnManager::MarkCommitting(TxnId id, Scn scn) {
  Transaction* txn = Find(id);
  assert(txn != nullptr && txn->state == TxnState::kActive);
  txn->state = TxnState::kCommitting;
  txn->commit_scn = scn;
  active_.erase(id);
  commit_history_[id] = scn;
}

void TxnManager::MarkCommitted(TxnId id) {
  Transaction* txn = Find(id);
  assert(txn != nullptr);
  if (txn->state == TxnState::kCommitted) return;
  assert(txn->state == TxnState::kCommitting);
  txn->state = TxnState::kCommitted;
  committed_++;
}

void TxnManager::MarkAborted(TxnId id) {
  Transaction* txn = Find(id);
  assert(txn != nullptr);
  txn->state = TxnState::kAborted;
  active_.erase(id);
  aborted_++;
}

std::optional<Scn> TxnManager::CommitScnOf(TxnId id) const {
  auto it = commit_history_.find(id);
  if (it == commit_history_.end()) return std::nullopt;
  return it->second;
}

ReadView TxnManager::OpenReadView(Lsn read_lsn, TxnId own) {
  open_read_lsns_.insert(read_lsn);
  return ReadView(read_lsn, ActiveSet(), own);
}

void TxnManager::CloseReadView(const ReadView& view) {
  auto it = open_read_lsns_.find(view.read_lsn());
  if (it != open_read_lsns_.end()) open_read_lsns_.erase(it);
}

Lsn TxnManager::MinOpenReadLsn() const {
  return open_read_lsns_.empty() ? kInvalidLsn : *open_read_lsns_.begin();
}

std::vector<std::pair<TxnId, Scn>> TxnManager::CommitsUpTo(Scn scn) const {
  std::vector<std::pair<TxnId, Scn>> out;
  for (const auto& [id, commit_scn] : commit_history_) {
    if (commit_scn <= scn) out.emplace_back(id, commit_scn);
  }
  return out;
}

size_t TxnManager::PurgeHistoryBelow(Lsn lsn) {
  size_t purged = 0;
  for (auto it = commit_history_.begin(); it != commit_history_.end();) {
    if (it->second < lsn) {
      it = commit_history_.erase(it);
      purged++;
    } else {
      ++it;
    }
  }
  return purged;
}

size_t TxnManager::ActiveCount() const { return active_.size(); }

void TxnManager::InstallCommitNotification(TxnId id, Scn scn) {
  commit_history_[id] = scn;
  active_.erase(id);
}

void TxnManager::InstallActive(TxnId id) {
  if (!commit_history_.contains(id)) active_.insert(id);
}

}  // namespace aurora::txn
