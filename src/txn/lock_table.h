// Row-level write locks.
//
// §2.3: "Locking, transaction management, deadlocks, constraints, and other
// conditions that influence whether an operation may proceed are all
// resolved at the database tier" — storage nodes never vote on writes.
// This table provides exclusive row locks with immediate conflict
// signaling (no waits, hence no deadlocks); callers retry or abort.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace aurora::txn {

class LockTable {
 public:
  /// Acquires an exclusive lock on `key` for `txn`. Re-acquisition by the
  /// holder is a no-op. Returns kConflict if another transaction holds it.
  Status Acquire(TxnId txn, const std::string& key) {
    auto [it, inserted] = locks_.try_emplace(key, txn);
    if (!inserted && it->second != txn) {
      conflicts_++;
      return Status::Conflict("row locked by txn " +
                              std::to_string(it->second));
    }
    if (inserted) held_[txn].push_back(key);
    return Status::OK();
  }

  /// Releases every lock held by `txn` (commit or abort).
  void ReleaseAll(TxnId txn) {
    auto it = held_.find(txn);
    if (it == held_.end()) return;
    for (const auto& key : it->second) {
      auto lock = locks_.find(key);
      if (lock != locks_.end() && lock->second == txn) locks_.erase(lock);
    }
    held_.erase(it);
  }

  bool IsLocked(const std::string& key) const { return locks_.contains(key); }
  size_t LockCount() const { return locks_.size(); }
  uint64_t conflicts() const { return conflicts_; }

  /// Crash: all lock state is ephemeral.
  void Clear() {
    locks_.clear();
    held_.clear();
  }

 private:
  std::map<std::string, TxnId> locks_;
  std::map<TxnId, std::vector<std::string>> held_;
  uint64_t conflicts_ = 0;
};

}  // namespace aurora::txn
