// Transaction lifecycle, active-transaction table, commit history, and the
// read-point bookkeeping behind PGMRPL (§3.4).
//
// The commit protocol (§2.3): a worker writes the commit redo record (whose
// LSN is the transaction's SCN), enqueues the transaction on the commit
// queue, and moves on. A dedicated commit thread drains the queue whenever
// VCL advances past pending SCNs — no flush, no consensus, no group-commit
// stall. Visibility composes with this naturally: a read view anchored at
// VDL sees a committed transaction iff its SCN <= the anchor, so data only
// becomes visible once it is also durable.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/txn/read_view.h"
#include "src/txn/row_version.h"

namespace aurora::txn {

enum class TxnState {
  kActive,
  /// Commit record written; awaiting VCL >= SCN before acknowledgement.
  kCommitting,
  kCommitted,
  kAborted,
};

struct Transaction {
  TxnId id = kInvalidTxn;
  TxnState state = TxnState::kActive;
  Scn commit_scn = kInvalidLsn;
  SimTime start_time = 0;
  /// Head of this transaction's undo chain (most recent entry first);
  /// rollback walks it.
  UndoPtr undo_head;
  uint64_t undo_seq = 0;
  /// Keys written (for lock release and rollback bookkeeping).
  std::vector<std::pair<BlockId, std::string>> writes;
};

/// Tracks transactions at one database instance (writer). Replicas keep a
/// reduced mirror built from shipped commit notifications (§3.4).
class TxnManager {
 public:
  /// Starts a transaction.
  Transaction* Begin(SimTime now);

  Transaction* Find(TxnId id);
  const Transaction* Find(TxnId id) const;

  /// Ids of transactions in kActive state (the read-view active list).
  std::set<TxnId> ActiveSet() const;

  /// Transition to kCommitting with the commit record's LSN as SCN. The
  /// transaction leaves the active set now; visibility is still gated by
  /// read anchors (SCN <= view LSN implies durable AND committed).
  void MarkCommitting(TxnId id, Scn scn);

  /// VCL has passed the SCN: commit is acknowledgeable.
  void MarkCommitted(TxnId id);

  void MarkAborted(TxnId id);

  /// Commit SCN of `id`, if it ever committed (commit history).
  std::optional<Scn> CommitScnOf(TxnId id) const;

  /// Builds a read view anchored at `read_lsn` for `own` (may be
  /// kInvalidTxn for an autocommit read). The view is registered for
  /// PGMRPL purposes until CloseReadView.
  ReadView OpenReadView(Lsn read_lsn, TxnId own = kInvalidTxn);
  void CloseReadView(const ReadView& view);

  /// Lowest anchor among open read views, or kInvalidLsn if none — feeds
  /// PGMRPL: storage may not GC versions any open view might need.
  Lsn MinOpenReadLsn() const;

  /// Commit history entries with SCN <= `scn` (replica catch-up).
  std::vector<std::pair<TxnId, Scn>> CommitsUpTo(Scn scn) const;

  /// Drops commit-history entries no reader can need (below every open
  /// read view); returns entries purged.
  size_t PurgeHistoryBelow(Lsn lsn);

  size_t ActiveCount() const;
  uint64_t started() const { return started_; }
  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }

  /// Ensures future transaction ids start at or above `floor` — used after
  /// crash recovery so ids never collide with a previous incarnation's
  /// (they key the persistent status index).
  void SetTxnIdFloor(TxnId floor) { next_txn_ = std::max(next_txn_, floor); }

  /// Replica-side: install a commit notification received from the writer.
  void InstallCommitNotification(TxnId id, Scn scn);
  /// Replica-side: install knowledge that a transaction is active.
  void InstallActive(TxnId id);

 private:
  TxnId next_txn_ = 1;
  std::map<TxnId, Transaction> txns_;
  std::set<TxnId> active_;
  std::map<TxnId, Scn> commit_history_;
  std::multiset<Lsn> open_read_lsns_;
  uint64_t started_ = 0;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
};

}  // namespace aurora::txn
