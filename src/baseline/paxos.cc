#include "src/baseline/paxos.h"

namespace aurora::baseline {

PaxosAcceptor::PaxosAcceptor(sim::Simulator* sim, sim::Network* network,
                             NodeId id, AzId az, storage::DiskOptions disk)
    : sim_(sim), network_(network), id_(id), disk_(sim, disk) {
  network_->RegisterNode(id_, az);
}

void PaxosAcceptor::HandlePrepare(uint64_t slot, Ballot ballot,
                                  std::function<void(PromiseReply)> reply) {
  AcceptorSlot& state = slots_[slot];
  if (ballot < state.promised) {
    reply(PromiseReply{false, {}, {}});
    return;
  }
  state.promised = ballot;
  // Promises are durable.
  disk_.SubmitWrite(128, [this, slot, reply = std::move(reply)]() {
    if (!network_->IsUp(id_)) return;
    const AcceptorSlot& s = slots_[slot];
    reply(PromiseReply{true, s.accepted_ballot, s.accepted_value});
  });
}

void PaxosAcceptor::HandleAccept(uint64_t slot, Ballot ballot,
                                 std::string value,
                                 std::function<void(bool)> reply) {
  AcceptorSlot& state = slots_[slot];
  if (ballot < state.promised) {
    reply(false);
    return;
  }
  state.promised = ballot;
  state.accepted_ballot = ballot;
  state.accepted_value = std::move(value);
  disk_.SubmitWrite(256, [this, reply = std::move(reply)]() {
    if (!network_->IsUp(id_)) return;
    reply(true);
  });
}

MultiPaxosLog::MultiPaxosLog(sim::Simulator* sim, sim::Network* network,
                             NodeId id, AzId az,
                             std::vector<PaxosAcceptor*> acceptors)
    : sim_(sim),
      network_(network),
      id_(id),
      acceptors_(std::move(acceptors)) {
  network_->RegisterNode(id_, az);
}

void MultiPaxosLog::Append(std::string value,
                           std::function<void(uint64_t)> cb) {
  stats_.proposals++;
  const uint64_t slot = next_slot_++;
  const bool skip_prepare = have_leadership_;
  Propose(slot, std::move(value), skip_prepare, std::move(cb), sim_->Now());
}

void MultiPaxosLog::Propose(uint64_t slot, std::string value,
                            bool skip_prepare,
                            std::function<void(uint64_t)> cb,
                            SimTime started_at) {
  if (!skip_prepare) round_++;  // fresh ballot for the full round
  const Ballot ballot{round_, id_};
  const size_t majority = acceptors_.size() / 2 + 1;

  auto run_accept = [this, slot, ballot, majority, cb = std::move(cb),
                     started_at](std::string chosen_value) {
    auto accepts = std::make_shared<size_t>(0);
    auto done = std::make_shared<bool>(false);
    for (PaxosAcceptor* acceptor : acceptors_) {
      stats_.messages++;
      network_->Send(
          id_, acceptor->id(), 256 + chosen_value.size(),
          [this, acceptor, slot, ballot, chosen_value, accepts, done,
           majority, cb, started_at]() {
            acceptor->HandleAccept(
                slot, ballot, chosen_value,
                [this, acceptor, accepts, done, majority, cb, slot,
                 started_at](bool ok) {
                  stats_.messages++;
                  network_->Send(acceptor->id(), id_, 64,
                                 [this, accepts, done, majority, cb, slot,
                                  started_at, ok]() {
                                   if (*done || !ok) return;
                                   if (++*accepts >= majority) {
                                     *done = true;
                                     have_leadership_ = true;
                                     stats_.committed++;
                                     latency_.Record(sim_->Now() -
                                                     started_at);
                                     cb(slot);
                                   }
                                 });
                });
          });
    }
  };

  if (skip_prepare) {
    run_accept(std::move(value));
    return;
  }
  // Full round: prepare, adopt any previously accepted value, accept.
  stats_.prepare_rounds++;
  const Ballot new_ballot = ballot;
  auto promises = std::make_shared<size_t>(0);
  auto best = std::make_shared<std::pair<Ballot, std::string>>();
  auto launched = std::make_shared<bool>(false);
  for (PaxosAcceptor* acceptor : acceptors_) {
    stats_.messages++;
    network_->Send(
        id_, acceptor->id(), 128,
        [this, acceptor, slot, new_ballot, promises, best, launched,
         majority, value, run_accept]() {
          acceptor->HandlePrepare(
              slot, new_ballot,
              [this, acceptor, promises, best, launched, majority, value,
               run_accept](PaxosAcceptor::PromiseReply reply) {
                stats_.messages++;
                network_->Send(
                    acceptor->id(), id_, 128,
                    [promises, best, launched, majority, value, run_accept,
                     reply]() {
                      if (*launched || !reply.ok) return;
                      if (reply.accepted_ballot.has_value() &&
                          *reply.accepted_ballot > best->first) {
                        *best = {*reply.accepted_ballot,
                                 reply.accepted_value};
                      }
                      if (++*promises >= majority) {
                        *launched = true;
                        run_accept(best->second.empty() ? value
                                                        : best->second);
                      }
                    });
              });
        });
  }
}

}  // namespace aurora::baseline
