#include "src/baseline/lease.h"

#include <algorithm>

namespace aurora::baseline {

bool LeaseManager::Acquire(NodeId holder) {
  const SimTime now = sim_->Now();
  if (holder_ != kInvalidNode && holder_ != holder && expiry_ > now) {
    return false;
  }
  holder_ = holder;
  expiry_ = now + options_.ttl;
  return true;
}

NodeId LeaseManager::Holder() const {
  return expiry_ > sim_->Now() ? holder_ : kInvalidNode;
}

SimTime LeaseManager::EarliestTakeover() const {
  const SimTime now = sim_->Now();
  if (holder_ == kInvalidNode || expiry_ <= now) return now;
  return expiry_ + options_.skew_margin;
}

void LeaseManager::AcquireWhenFree(NodeId new_holder,
                                   std::function<void(SimDuration)> cb) {
  const SimTime now = sim_->Now();
  const SimTime when = std::max(EarliestTakeover(), now);
  const SimDuration wait = when - now;
  sim_->Schedule(wait, [this, new_holder, wait, cb = std::move(cb)]() {
    holder_ = new_holder;
    expiry_ = sim_->Now() + options_.ttl;
    cb(wait);
  });
}

}  // namespace aurora::baseline
