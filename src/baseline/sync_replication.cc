#include "src/baseline/sync_replication.h"

namespace aurora::baseline {

Standby::Standby(sim::Simulator* sim, sim::Network* network, NodeId id,
                 AzId az, storage::DiskOptions disk)
    : sim_(sim), network_(network), id_(id), disk_(sim, disk) {
  network_->RegisterNode(id_, az);
}

void Standby::HandlePage(uint64_t bytes, std::function<void()> ack) {
  disk_.SubmitWrite(bytes, [this, ack = std::move(ack)]() {
    if (!network_->IsUp(id_)) return;
    ack();
  });
}

PageShippingPrimary::PageShippingPrimary(sim::Simulator* sim,
                                         sim::Network* network, NodeId id,
                                         AzId az,
                                         std::vector<Standby*> standbys,
                                         PageShippingOptions options)
    : sim_(sim),
      network_(network),
      id_(id),
      standbys_(std::move(standbys)),
      options_(options),
      disk_(sim, options.disk) {
  network_->RegisterNode(id_, az);
}

void PageShippingPrimary::CommitTxn(size_t pages_dirtied,
                                    std::function<void()> cb) {
  const SimTime start = sim_->Now();
  const uint64_t ship_bytes =
      pages_dirtied * options_.page_bytes + options_.log_record_bytes;
  auto acks = std::make_shared<size_t>(0);
  auto local_done = std::make_shared<bool>(false);
  auto fired = std::make_shared<bool>(false);
  const size_t need_acks = options_.synchronous ? standbys_.size() : 0;
  auto maybe_finish = [this, acks, local_done, fired, need_acks, start,
                       cb = std::move(cb)]() {
    if (*fired || !*local_done || *acks < need_acks) return;
    *fired = true;
    latency_.Record(sim_->Now() - start);
    cb();
  };
  // Local group-commit force write of the log.
  disk_.SubmitWrite(options_.log_record_bytes,
                    [local_done, maybe_finish]() {
                      *local_done = true;
                      maybe_finish();
                    });
  for (Standby* standby : standbys_) {
    bytes_shipped_ += ship_bytes;
    network_->Send(id_, standby->id(), ship_bytes,
                   [this, standby, ship_bytes, acks, maybe_finish]() {
                     standby->HandlePage(
                         ship_bytes, [this, standby, acks, maybe_finish]() {
                           network_->Send(standby->id(), id_, 64,
                                          [acks, maybe_finish]() {
                                            (*acks)++;
                                            maybe_finish();
                                          });
                         });
                   });
  }
  if (need_acks == 0) {
    // Async mode: nothing further gates the commit.
  }
}

}  // namespace aurora::baseline
