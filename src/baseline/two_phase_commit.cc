#include "src/baseline/two_phase_commit.h"

namespace aurora::baseline {

TpcParticipant::TpcParticipant(sim::Simulator* sim, sim::Network* network,
                               NodeId id, AzId az,
                               storage::DiskOptions disk)
    : sim_(sim), network_(network), id_(id), disk_(sim, disk) {
  network_->RegisterNode(id_, az);
}

void TpcParticipant::HandlePrepare(uint64_t /*txn*/,
                                   std::function<void(bool)> vote) {
  disk_.SubmitWrite(256, [this, vote = std::move(vote)]() {
    if (!network_->IsUp(id_)) return;
    vote(!vote_no_);
  });
}

void TpcParticipant::HandleDecision(uint64_t /*txn*/, bool /*commit*/,
                                    std::function<void()> ack) {
  disk_.SubmitWrite(256, [this, ack = std::move(ack)]() {
    if (!network_->IsUp(id_)) return;
    ack();
  });
}

struct TpcCoordinator::Pending {
  uint64_t txn;
  size_t votes_yes = 0;
  size_t votes_total = 0;
  bool decided = false;
  SimTime started_at;
  std::function<void(bool)> cb;
};

TpcCoordinator::TpcCoordinator(sim::Simulator* sim, sim::Network* network,
                               NodeId id, AzId az,
                               std::vector<TpcParticipant*> participants,
                               SimDuration prepare_timeout,
                               storage::DiskOptions disk)
    : sim_(sim),
      network_(network),
      id_(id),
      participants_(std::move(participants)),
      prepare_timeout_(prepare_timeout),
      disk_(sim, disk) {
  network_->RegisterNode(id_, az);
}

void TpcCoordinator::Commit(std::function<void(bool)> cb) {
  auto pending = std::make_shared<Pending>();
  pending->txn = next_txn_++;
  pending->started_at = sim_->Now();
  pending->cb = std::move(cb);

  auto decide = [this, pending](bool commit) {
    if (pending->decided) return;
    pending->decided = true;
    // Force-log the decision, then broadcast phase 2. The client is
    // answered after the decision record is durable (presumed-nothing).
    disk_.SubmitWrite(256, [this, pending, commit]() {
      for (TpcParticipant* p : participants_) {
        stats_.messages++;
        network_->Send(id_, p->id(), 256, [this, p, pending, commit]() {
          p->HandleDecision(pending->txn, commit, [this, p]() {
            stats_.messages++;
            network_->Send(p->id(), id_, 64, []() {});
          });
        });
      }
      latency_.Record(sim_->Now() - pending->started_at);
      if (commit) {
        stats_.commits++;
      } else {
        stats_.aborts++;
      }
      pending->cb(commit);
    });
  };

  // Phase 1: prepare to every participant; ALL must vote yes.
  for (TpcParticipant* p : participants_) {
    stats_.messages++;
    network_->Send(id_, p->id(), 256, [this, p, pending, decide]() {
      p->HandlePrepare(pending->txn, [this, p, pending, decide](bool yes) {
        stats_.messages++;
        network_->Send(p->id(), id_, 64, [this, pending, decide, yes]() {
          if (pending->decided) return;
          pending->votes_total++;
          if (yes) pending->votes_yes++;
          if (!yes) {
            decide(false);
          } else if (pending->votes_yes == participants_.size()) {
            decide(true);
          }
        });
      });
    });
  }
  // Unresponsive participants stall the transaction until timeout, then
  // abort — the 2PC blocking problem the paper avoids.
  sim_->Schedule(prepare_timeout_, [decide]() { decide(false); });
}

}  // namespace aurora::baseline
