// ARIES-style checkpoint + redo-replay recovery baseline (§2.4, C7).
//
// A traditional engine must, at crash recovery, (1) read the log from the
// last checkpoint, (2) replay redo to rebuild page state, and (3) undo
// loser transactions — all BEFORE opening for business. Aurora's claim:
// "No redo replay is required as part of crash recovery since segments
// are able to generate data blocks on their own"; recovery cost is a few
// quorum round-trips, independent of log depth. This model prices the
// traditional path on the same simulated disk so the F4 benchmark can
// plot time-to-open vs. log-depth-since-checkpoint for both systems.

#pragma once

#include <cstdint>
#include <functional>

#include "src/common/types.h"
#include "src/sim/simulator.h"
#include "src/storage/disk.h"

namespace aurora::baseline {

struct AriesOptions {
  storage::DiskOptions disk;
  /// Log read bandwidth during analysis/redo (bytes/us).
  double log_scan_bytes_per_us = 500.0;
  /// CPU cost to apply one redo record.
  SimDuration apply_cost_per_record = 2;
  /// Average bytes per log record.
  uint64_t bytes_per_record = 256;
  /// Checkpoint every N records.
  uint64_t checkpoint_interval_records = 100000;
  /// Fraction of replayed records needing a random page read (cache cold).
  double page_read_fraction = 0.02;
  SimDuration page_read_cost = 80;
};

/// Tracks enough log/checkpoint state to price a recovery.
class AriesEngine {
 public:
  AriesEngine(sim::Simulator* sim, AriesOptions options = {})
      : sim_(sim), options_(options) {}

  /// Appends `n` records to the log (workload generation).
  void AppendRecords(uint64_t n);

  /// Takes a (fuzzy) checkpoint now.
  void Checkpoint() { records_since_checkpoint_ = 0; }

  uint64_t records_since_checkpoint() const {
    return records_since_checkpoint_;
  }

  /// Simulated crash recovery: cb(elapsed) after the redo pass completes
  /// (undo is modeled as deferrable, like Aurora's, for a fair floor).
  void Recover(std::function<void(SimDuration)> cb);

  /// Closed-form expected recovery time (for table generation).
  SimDuration ExpectedRecoveryTime() const;

 private:
  sim::Simulator* sim_;
  AriesOptions options_;
  uint64_t records_since_checkpoint_ = 0;
};

}  // namespace aurora::baseline
