// Two-phase commit baseline.
//
// The paper's motivation (§1, §2.3): traditional distributed databases use
// 2PC / Paxos commit to establish a consistency point across storage
// servers, which "is heavyweight and introduces stalls and jitter into the
// write path" — the coordinator must hear from EVERY participant, so the
// slowest (or a failed) participant gates the commit. This implementation
// runs on the same simulated network and disks as Aurora so the C1
// benchmark compares latency shapes apples-to-apples.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/storage/disk.h"

namespace aurora::baseline {

/// A participant: force-logs prepare and commit decisions to its disk.
class TpcParticipant {
 public:
  TpcParticipant(sim::Simulator* sim, sim::Network* network, NodeId id,
                 AzId az, storage::DiskOptions disk = {});

  NodeId id() const { return id_; }

  /// Phase 1: force-log the prepare record, then vote.
  void HandlePrepare(uint64_t txn, std::function<void(bool)> vote);
  /// Phase 2: force-log the decision, then ack.
  void HandleDecision(uint64_t txn, bool commit, std::function<void()> ack);

  /// Fault injection: participants vote no while true.
  void SetVoteNo(bool vote_no) { vote_no_ = vote_no; }

 private:
  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId id_;
  storage::SimDisk disk_;
  bool vote_no_ = false;
};

struct TpcStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t messages = 0;
};

/// The coordinator. Commit latency = prepare RTT to ALL participants (each
/// with a forced log write) + coordinator decision force-write + decision
/// RTT; an unresponsive participant stalls the transaction until timeout.
class TpcCoordinator {
 public:
  TpcCoordinator(sim::Simulator* sim, sim::Network* network, NodeId id,
                 AzId az, std::vector<TpcParticipant*> participants,
                 SimDuration prepare_timeout = 1 * kSecond,
                 storage::DiskOptions disk = {});

  /// Runs the full protocol; cb(true) on commit, cb(false) on abort.
  void Commit(std::function<void(bool)> cb);

  const TpcStats& stats() const { return stats_; }
  Histogram& latency() { return latency_; }

 private:
  struct Pending;

  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId id_;
  std::vector<TpcParticipant*> participants_;
  SimDuration prepare_timeout_;
  storage::SimDisk disk_;
  uint64_t next_txn_ = 1;
  TpcStats stats_;
  Histogram latency_;
};

}  // namespace aurora::baseline
