// Lease-based fencing baseline (§4.1).
//
// "Some systems use leases to establish short term entitlements to access
// the system, but leases introduce latency when one needs to wait for
// expiry. Aurora, rather than waiting for a lease to expire, just changes
// the locks on the door." This model quantifies the wait: a new writer
// cannot be safely admitted until the old holder's lease has provably
// expired, even if the old holder is already dead.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace aurora::baseline {

struct LeaseOptions {
  SimDuration ttl = 10 * kSecond;
  /// Holders renew this long before expiry.
  SimDuration renew_margin = 2 * kSecond;
  /// Clock-skew safety margin the grantor must add before re-granting.
  SimDuration skew_margin = 500 * kMillisecond;
};

/// A single-resource lease grantor.
class LeaseManager {
 public:
  LeaseManager(sim::Simulator* sim, LeaseOptions options = {})
      : sim_(sim), options_(options) {}

  /// Grants (or renews) the lease to `holder` if it is free or already
  /// theirs. Returns false if someone else holds an unexpired lease.
  bool Acquire(NodeId holder);

  /// The current holder, or kInvalidNode once expired.
  NodeId Holder() const;

  /// When a NEW holder could be admitted: expiry + skew margin. If the
  /// lease is free, that is now.
  SimTime EarliestTakeover() const;

  /// Blocks (in simulated time) until takeover is safe, then grants to
  /// `new_holder`. cb(wait) reports how long the failover stalled — the
  /// number the C5 benchmark contrasts with epoch fencing.
  void AcquireWhenFree(NodeId new_holder,
                       std::function<void(SimDuration)> cb);

  SimTime expiry() const { return expiry_; }

 private:
  sim::Simulator* sim_;
  LeaseOptions options_;
  NodeId holder_ = kInvalidNode;
  SimTime expiry_ = 0;
};

}  // namespace aurora::baseline
