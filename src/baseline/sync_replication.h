// Traditional replication baselines (§3.2, C8).
//
// 1. Page-shipping primary/backup: the primary sends FULL data pages to R
//    standbys; synchronous mode waits for all acks (jitter + failure
//    modality in the write path), asynchronous mode risks data loss. The
//    C8 benchmark contrasts bytes-on-wire with Aurora's log-only writes.
// 2. Write-all/read-one (WARO) quorum: writes go to every copy and must
//    all ack; reads hit one copy. Better read cost than Vr=3 quorums but
//    write availability collapses with a single slow/failed copy — the
//    trade §3 discusses.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/types.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/storage/disk.h"

namespace aurora::baseline {

struct PageShippingOptions {
  uint64_t page_bytes = 8192;
  uint64_t log_record_bytes = 256;
  bool synchronous = true;
  storage::DiskOptions disk;
};

/// A standby that receives and force-writes full pages.
class Standby {
 public:
  Standby(sim::Simulator* sim, sim::Network* network, NodeId id, AzId az,
          storage::DiskOptions disk = {});
  NodeId id() const { return id_; }
  void HandlePage(uint64_t bytes, std::function<void()> ack);

 private:
  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId id_;
  storage::SimDisk disk_;
};

/// Primary that ships whole dirty pages per transaction.
class PageShippingPrimary {
 public:
  PageShippingPrimary(sim::Simulator* sim, sim::Network* network, NodeId id,
                      AzId az, std::vector<Standby*> standbys,
                      PageShippingOptions options = {});

  /// One transaction touching `pages_dirtied` pages: local log write plus
  /// page shipment; cb after local durability (+ all acks if synchronous).
  void CommitTxn(size_t pages_dirtied, std::function<void()> cb);

  uint64_t bytes_shipped() const { return bytes_shipped_; }
  Histogram& latency() { return latency_; }

 private:
  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId id_;
  std::vector<Standby*> standbys_;
  PageShippingOptions options_;
  storage::SimDisk disk_;
  uint64_t bytes_shipped_ = 0;
  Histogram latency_;
};

}  // namespace aurora::baseline
