#include "src/baseline/aries.h"

namespace aurora::baseline {

void AriesEngine::AppendRecords(uint64_t n) {
  records_since_checkpoint_ += n;
  while (records_since_checkpoint_ >= options_.checkpoint_interval_records) {
    records_since_checkpoint_ -= options_.checkpoint_interval_records;
  }
}

SimDuration AriesEngine::ExpectedRecoveryTime() const {
  const double n = static_cast<double>(records_since_checkpoint_);
  double time = 0.0;
  // Sequential log scan (analysis + redo passes read the log once each in
  // our simplified model: 1.5x to charge analysis at half weight).
  time += 1.5 * n * static_cast<double>(options_.bytes_per_record) /
          options_.log_scan_bytes_per_us;
  // Apply cost.
  time += n * static_cast<double>(options_.apply_cost_per_record);
  // Random page reads for cold pages touched by redo.
  time += n * options_.page_read_fraction *
          static_cast<double>(options_.page_read_cost);
  return static_cast<SimDuration>(time);
}

void AriesEngine::Recover(std::function<void(SimDuration)> cb) {
  const SimTime start = sim_->Now();
  const SimDuration cost = ExpectedRecoveryTime();
  sim_->Schedule(cost, [this, start, cb = std::move(cb)]() {
    cb(sim_->Now() - start);
  });
}

}  // namespace aurora::baseline
