// Paxos baseline: single-decree acceptors plus a Multi-Paxos replicated
// log with a stable leader.
//
// This is the "Paxos commit / Paxos membership changes" comparator the
// paper argues against (§1, §5): every write (commit, membership change)
// is a consensus round — one leader→acceptor round trip plus a forced log
// write at a majority, and any leader change stalls the log. Aurora's
// claim is that a database already serializes writes at one instance, so
// the per-write consensus round buys nothing and costs latency; the C1 and
// F5 benchmarks quantify that on identical substrate.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/storage/disk.h"

namespace aurora::baseline {

/// Ballot number: (round, proposer id) with lexicographic order.
struct Ballot {
  uint64_t round = 0;
  NodeId proposer = kInvalidNode;

  auto operator<=>(const Ballot&) const = default;
};

/// One acceptor's durable state for one log slot.
struct AcceptorSlot {
  Ballot promised;
  std::optional<Ballot> accepted_ballot;
  std::string accepted_value;
};

/// A Paxos acceptor: durable promises/accepts (forced disk writes).
class PaxosAcceptor {
 public:
  PaxosAcceptor(sim::Simulator* sim, sim::Network* network, NodeId id,
                AzId az, storage::DiskOptions disk = {});

  NodeId id() const { return id_; }

  struct PromiseReply {
    bool ok = false;
    std::optional<Ballot> accepted_ballot;
    std::string accepted_value;
  };

  void HandlePrepare(uint64_t slot, Ballot ballot,
                     std::function<void(PromiseReply)> reply);
  void HandleAccept(uint64_t slot, Ballot ballot, std::string value,
                    std::function<void(bool)> reply);

  const std::map<uint64_t, AcceptorSlot>& slots() const { return slots_; }

 private:
  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId id_;
  storage::SimDisk disk_;
  std::map<uint64_t, AcceptorSlot> slots_;
};

struct PaxosStats {
  uint64_t proposals = 0;
  uint64_t committed = 0;
  uint64_t prepare_rounds = 0;
  uint64_t messages = 0;
};

/// Multi-Paxos leader over a set of acceptors. With a stable lease the
/// leader skips the prepare phase (one accept round per slot); losing the
/// lease forces a full prepare round for subsequent slots.
class MultiPaxosLog {
 public:
  MultiPaxosLog(sim::Simulator* sim, sim::Network* network, NodeId id,
                AzId az, std::vector<PaxosAcceptor*> acceptors);

  /// Appends `value` to the next slot; cb(slot) once chosen (majority
  /// accepted). Values submitted concurrently are serialized by slot.
  void Append(std::string value, std::function<void(uint64_t)> cb);

  /// Forces the next append to run a full prepare round (models leader
  /// change / lost lease).
  void LoseLeadership() { have_leadership_ = false; }

  const PaxosStats& stats() const { return stats_; }
  Histogram& latency() { return latency_; }
  uint64_t next_slot() const { return next_slot_; }

 private:
  void Propose(uint64_t slot, std::string value, bool skip_prepare,
               std::function<void(uint64_t)> cb, SimTime started_at);

  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId id_;
  std::vector<PaxosAcceptor*> acceptors_;
  uint64_t next_slot_ = 0;
  uint64_t round_ = 1;
  bool have_leadership_ = false;
  PaxosStats stats_;
  Histogram latency_;
};

}  // namespace aurora::baseline
