#include "src/common/random.h"

#include <algorithm>
#include <cassert>

namespace aurora {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias (matters for small bounds in
  // property tests).
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  // Box-Muller; one value per call keeps the generator stream simple and
  // reproducible across refactors.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa02b'dbf7'bb3c'0a7aULL); }

LatencyDistribution LatencyDistribution::LogNormal(SimDuration median_us,
                                                   double sigma,
                                                   double tail_probability,
                                                   double tail_factor) {
  LatencyDistribution d;
  d.kind_ = Kind::kLogNormal;
  d.median_ = median_us;
  d.mu_ = std::log(static_cast<double>(std::max<SimDuration>(median_us, 1)));
  d.sigma_ = sigma;
  d.tail_probability_ = tail_probability;
  d.tail_factor_ = tail_factor;
  return d;
}

LatencyDistribution LatencyDistribution::Constant(SimDuration value_us) {
  LatencyDistribution d;
  d.kind_ = Kind::kConstant;
  d.median_ = value_us;
  return d;
}

LatencyDistribution LatencyDistribution::Uniform(SimDuration lo_us,
                                                 SimDuration hi_us) {
  LatencyDistribution d;
  d.kind_ = Kind::kUniform;
  d.lo_ = lo_us;
  d.hi_ = hi_us;
  d.median_ = (lo_us + hi_us) / 2;
  return d;
}

SimDuration LatencyDistribution::Sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kZero:
      return 0;
    case Kind::kConstant:
      return median_;
    case Kind::kUniform:
      return rng.NextInRange(lo_, hi_);
    case Kind::kLogNormal: {
      double v = std::exp(mu_ + sigma_ * rng.NextGaussian());
      if (tail_probability_ > 0.0 && rng.Bernoulli(tail_probability_)) {
        v *= tail_factor_;
      }
      return static_cast<SimDuration>(std::max(1.0, v));
    }
  }
  return 0;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) const {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(v, n_ - 1);
}

}  // namespace aurora
