// Log-bucketed latency histogram with percentile queries.
//
// Benches report p50/p90/p99/p999 of simulated latencies; the paper's claims
// are about median-vs-tail shape (jitter), so percentile fidelity in the
// 1us..100s range at ~2% relative error is sufficient.
//
// Recording is thread-safe (relaxed atomics on fixed-layout cells) so
// actors running on parallel simulator shards can share a histogram handle
// from the metrics registry. Readers (percentiles, copies, Merge) take
// relaxed per-cell snapshots — coherent values, not a point-in-time cut —
// which is exact whenever the simulation is quiesced (barriers, run end),
// the only places the repo reads them.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace aurora {

/// Fixed-layout histogram: 64 log2 major buckets x 16 linear sub-buckets,
/// covering the full non-negative int64 range. O(1) record, O(buckets)
/// percentile.
class Histogram {
 public:
  Histogram();
  /// Snapshot copy (relaxed reads); histograms are returned by value from
  /// bench scenarios after their runs quiesce.
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Record(SimDuration value_us);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  SimDuration min() const {
    return count() ? min_.load(std::memory_order_relaxed) : 0;
  }
  SimDuration max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Value at quantile q in [0, 1]. Returns 0 for an empty histogram.
  SimDuration Percentile(double q) const;

  SimDuration P50() const { return Percentile(0.50); }
  SimDuration P90() const { return Percentile(0.90); }
  SimDuration P99() const { return Percentile(0.99); }
  SimDuration P999() const { return Percentile(0.999); }

  /// One-line summary: "n=... mean=... p50=... p99=... max=..." (all us).
  std::string Summary() const;

  /// Exposes the bucket index mapping so tests can pin the boundaries.
  /// Record() is O(1): index = msb via countl_zero + 4 linear sub-bucket
  /// bits — no linear scan over bucket edges.
  static int BucketIndexForTest(SimDuration value) {
    return BucketFor(value);
  }

 private:
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBucketCount = 64 * kSubBuckets;

  static int BucketFor(SimDuration value);
  void CopyFrom(const Histogram& other);

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// Sentinel int64 max while empty; min() masks it via the count.
  std::atomic<SimDuration> min_;
  std::atomic<SimDuration> max_{0};
};

}  // namespace aurora
