#include "src/common/types.h"

namespace aurora {

std::string LsnToString(Lsn lsn) {
  if (lsn == kInvalidLsn) return "-";
  return "lsn:" + std::to_string(lsn);
}

}  // namespace aurora
