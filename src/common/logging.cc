#include "src/common/logging.h"

#include <atomic>
#include <cstring>

namespace aurora {

namespace {
// Relaxed atomic: worker threads of the parallel simulator consult the
// level concurrently; the emit path below stays unsynchronized (stderr is
// line-buffered enough for diagnostics, and hot runs log at kWarn+).
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               message.c_str());
}

}  // namespace internal

}  // namespace aurora
