#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace aurora {

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

int Histogram::BucketFor(SimDuration value) {
  if (value < 0) value = 0;
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBucketBits;
  const int sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
  return (msb - kSubBucketBits + 1) * kSubBuckets + sub;
}

void Histogram::Record(SimDuration value_us) {
  if (value_us < 0) value_us = 0;
  const int b = BucketFor(value_us);
  buckets_[b]++;
  if (count_ == 0 || value_us < min_) min_ = value_us;
  if (value_us > max_) max_ = value_us;
  sum_ += static_cast<double>(value_us);
  count_++;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

SimDuration Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * count_ + 0.5));
  uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Reconstruct the upper edge of bucket i.
      const int major = i / kSubBuckets;
      const int sub = i % kSubBuckets;
      if (major == 0) return std::min<SimDuration>(sub, max_);
      const int msb = major + kSubBucketBits - 1;
      const int shift = msb - kSubBucketBits;
      const uint64_t base = 1ULL << msb;
      const uint64_t value =
          base + (static_cast<uint64_t>(sub) << shift) + (1ULL << shift) - 1;
      return std::min<SimDuration>(static_cast<SimDuration>(value), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1fus p50=%lldus p90=%lldus p99=%lldus "
                "p999=%lldus max=%lldus",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<long long>(P50()), static_cast<long long>(P90()),
                static_cast<long long>(P99()), static_cast<long long>(P999()),
                static_cast<long long>(max()));
  return std::string(buf);
}

}  // namespace aurora
