#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace aurora {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

void AtomicMin(std::atomic<SimDuration>& cell, SimDuration v) {
  SimDuration cur = cell.load(kRelaxed);
  while (v < cur && !cell.compare_exchange_weak(cur, v, kRelaxed)) {
  }
}

void AtomicMax(std::atomic<SimDuration>& cell, SimDuration v) {
  SimDuration cur = cell.load(kRelaxed);
  while (v > cur && !cell.compare_exchange_weak(cur, v, kRelaxed)) {
  }
}

void AtomicAdd(std::atomic<double>& cell, double v) {
  double cur = cell.load(kRelaxed);
  while (!cell.compare_exchange_weak(cur, cur + v, kRelaxed)) {
  }
}
}  // namespace

Histogram::Histogram()
    : buckets_(kBucketCount),
      min_(std::numeric_limits<SimDuration>::max()) {}

Histogram::Histogram(const Histogram& other) : buckets_(kBucketCount) {
  CopyFrom(other);
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

void Histogram::CopyFrom(const Histogram& other) {
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[i].store(other.buckets_[i].load(kRelaxed), kRelaxed);
  }
  count_.store(other.count_.load(kRelaxed), kRelaxed);
  sum_.store(other.sum_.load(kRelaxed), kRelaxed);
  min_.store(other.min_.load(kRelaxed), kRelaxed);
  max_.store(other.max_.load(kRelaxed), kRelaxed);
}

int Histogram::BucketFor(SimDuration value) {
  if (value < 0) value = 0;
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBucketBits;
  const int sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
  return (msb - kSubBucketBits + 1) * kSubBuckets + sub;
}

void Histogram::Record(SimDuration value_us) {
  if (value_us < 0) value_us = 0;
  const int b = BucketFor(value_us);
  buckets_[b].fetch_add(1, kRelaxed);
  AtomicMin(min_, value_us);
  AtomicMax(max_, value_us);
  AtomicAdd(sum_, static_cast<double>(value_us));
  count_.fetch_add(1, kRelaxed);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(kRelaxed), kRelaxed);
  }
  if (other.count() > 0) {
    AtomicMin(min_, other.min_.load(kRelaxed));
    AtomicMax(max_, other.max_.load(kRelaxed));
  }
  AtomicAdd(sum_, other.sum_.load(kRelaxed));
  count_.fetch_add(other.count_.load(kRelaxed), kRelaxed);
}

void Histogram::Reset() {
  for (int i = 0; i < kBucketCount; ++i) buckets_[i].store(0, kRelaxed);
  count_.store(0, kRelaxed);
  sum_.store(0.0, kRelaxed);
  min_.store(std::numeric_limits<SimDuration>::max(), kRelaxed);
  max_.store(0, kRelaxed);
}

double Histogram::Mean() const {
  const uint64_t n = count();
  return n ? sum_.load(kRelaxed) / static_cast<double>(n) : 0.0;
}

SimDuration Histogram::Percentile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * n + 0.5));
  const SimDuration observed_max = max();
  uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i].load(kRelaxed);
    if (seen >= target) {
      // Reconstruct the upper edge of bucket i.
      const int major = i / kSubBuckets;
      const int sub = i % kSubBuckets;
      if (major == 0) return std::min<SimDuration>(sub, observed_max);
      const int msb = major + kSubBucketBits - 1;
      const int shift = msb - kSubBucketBits;
      const uint64_t base = 1ULL << msb;
      const uint64_t value =
          base + (static_cast<uint64_t>(sub) << shift) + (1ULL << shift) - 1;
      return std::min<SimDuration>(static_cast<SimDuration>(value),
                                   observed_max);
    }
  }
  return observed_max;
}

std::string Histogram::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1fus p50=%lldus p90=%lldus p99=%lldus "
                "p999=%lldus max=%lldus",
                static_cast<unsigned long long>(count()), Mean(),
                static_cast<long long>(P50()), static_cast<long long>(P90()),
                static_cast<long long>(P99()), static_cast<long long>(P999()),
                static_cast<long long>(max()));
  return std::string(buf);
}

}  // namespace aurora
