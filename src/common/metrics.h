// Volume-wide metrics registry: named counters, gauges, and latency
// histograms shared by every layer of the stack.
//
// The paper's consistency points advance by purely local bookkeeping
// (§2.3); this registry makes that bookkeeping *observable* — fan-out and
// retransmission counts in the driver, VCL/VDL advance cadence, hedge
// fire rates, gossip fills, replica lag — without perturbing the hot path.
//
// Design constraints:
//  * Zero cost when disabled. Recording macros compile to a single
//    predictable branch on a process-global flag (and to nothing at all
//    under -DAURORA_METRICS_DISABLED). The default is DISABLED, so the
//    deterministic benchmarks and the golden-fingerprint test see the
//    exact same execution whether or not a test elsewhere used metrics.
//  * Handle-based hot paths. Components resolve names to stable pointers
//    once (construction or first use); recording is a pointer deref plus
//    an increment — never a string lookup.
//  * Machine readable. ToJson() renders the whole registry; benches merge
//    selected series into their BENCH_<name>.json via the snapshot
//    accessors (see bench/bench_common.h).
//
// The registry is a process-global singleton; names are namespaced
// ("driver.", "storage.", ...) so all actors of a cluster aggregate
// naturally. Tests that assert on absolute values call Reset() in their
// setup. Recording is thread-safe — counters/gauges are relaxed atomics
// and histogram cells likewise — so actors running on parallel simulator
// shards share handles without synchronization; registration and
// snapshot reads take the registry mutex (cold paths only).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/types.h"

namespace aurora::metrics {

/// Monotonic event count (resets only via Registry::Reset).
struct Counter {
  std::atomic<uint64_t> value{0};
  void Add(uint64_t delta = 1) {
    value.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value.load(std::memory_order_relaxed); }
};

/// Point-in-time level (queue depth, lag); last write wins.
struct Gauge {
  std::atomic<int64_t> value{0};
  void Set(int64_t v) { value.store(v, std::memory_order_relaxed); }
  void Max(int64_t v) {
    int64_t cur = value.load(std::memory_order_relaxed);
    while (v > cur &&
           !value.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value.load(std::memory_order_relaxed); }
};

class Registry {
 public:
  static Registry& Global();

  /// Process-global recording switch. Registration and lookups work either
  /// way; only the AURORA_* recording macros consult this. A relaxed
  /// atomic: the enabled-check stays a single predictable load+branch.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Resolve (registering on first use) a metric handle. Handles are
  /// stable for the life of the process — components cache them.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Read-side lookups for tests and dumps; absent names read as zero.
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  /// nullptr if never registered.
  const Histogram* FindHistogram(const std::string& name) const;

  /// Zeroes every value. Registrations — and therefore cached handles —
  /// survive, so a Reset between test cases never invalidates a pointer.
  void Reset();

  /// Snapshot accessors (sorted by name) for machine-readable export.
  std::vector<std::pair<std::string, uint64_t>> Counters() const;
  std::vector<std::pair<std::string, int64_t>> Gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const;

  /// Full registry as a JSON object: counters and gauges as numbers,
  /// histograms as {count, mean_us, p50_us, p99_us, max_us}.
  std::string ToJson() const;

 private:
  static inline std::atomic<bool> enabled_{false};

  // unique_ptr storage keeps handle addresses stable across rehashing;
  // mu_ guards the maps (registration/snapshots), never the hot
  // handle-deref path.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace aurora::metrics

// -- Recording macros --------------------------------------------------------
//
// `handle` is a Counter*/Gauge*/Histogram* (may be null — a lazily created
// per-entity series that never materialized records nowhere).

#if defined(AURORA_METRICS_DISABLED)
#define AURORA_METRICS_ON() false
#else
#define AURORA_METRICS_ON() (::aurora::metrics::Registry::enabled())
#endif

#define AURORA_COUNT(handle, delta)                            \
  do {                                                         \
    if (AURORA_METRICS_ON() && (handle) != nullptr) {          \
      (handle)->Add(static_cast<uint64_t>(delta));             \
    }                                                          \
  } while (0)

#define AURORA_GAUGE_SET(handle, v)                            \
  do {                                                         \
    if (AURORA_METRICS_ON() && (handle) != nullptr) {          \
      (handle)->Set(static_cast<int64_t>(v));                  \
    }                                                          \
  } while (0)

#define AURORA_OBSERVE(handle, value_us)                       \
  do {                                                         \
    if (AURORA_METRICS_ON() && (handle) != nullptr) {          \
      (handle)->Record(value_us);                              \
    }                                                          \
  } while (0)
