#include "src/common/metrics.h"

#include <cstdio>

namespace aurora::metrics {

Registry& Registry::Global() {
  static Registry* instance = new Registry();
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t Registry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

int64_t Registry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->Value();
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->value = 0;
  for (auto& [name, gauge] : gauges_) gauge->value = 0;
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::vector<std::pair<std::string, uint64_t>> Registry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> Registry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->Value());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::Histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  auto append = [&out, &first](const std::string& name,
                               const std::string& value) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + name + "\": " + value;
  };
  for (const auto& [name, counter] : counters_) {
    append(name, std::to_string(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    append(name, std::to_string(gauge->Value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %llu, \"mean_us\": %.1f, \"p50_us\": %lld, "
                  "\"p99_us\": %lld, \"max_us\": %lld}",
                  static_cast<unsigned long long>(histogram->count()),
                  histogram->Mean(),
                  static_cast<long long>(histogram->P50()),
                  static_cast<long long>(histogram->P99()),
                  static_cast<long long>(histogram->max()));
    append(name, buf);
  }
  out += "\n}\n";
  return out;
}

}  // namespace aurora::metrics
