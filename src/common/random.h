// Deterministic pseudo-random number generation and the latency
// distributions used by the network simulator.
//
// Everything in the simulation draws from an explicitly seeded generator so
// that every test and benchmark run is reproducible.

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace aurora {

/// splitmix64/xoshiro256** generator. Small, fast, and good enough for
/// workload generation and latency sampling; explicitly not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Uniform over the full 64-bit range.
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Exponential with the given mean.
  double NextExponential(double mean);

  /// Creates an independent child generator (for per-actor streams).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// A sampled latency distribution. The paper's protocols care about latency
/// *shape* (median vs tail, jitter) rather than absolute values, so we model
/// links and disks with lognormal bodies plus an optional Pareto-ish tail —
/// the standard shape for datacenter RPC latency.
class LatencyDistribution {
 public:
  /// All-zero distribution (useful for logical-time tests).
  LatencyDistribution() = default;

  /// Lognormal with given median and sigma (log-space std-dev), plus a
  /// `tail_probability` chance of multiplying the sample by `tail_factor`.
  static LatencyDistribution LogNormal(SimDuration median_us, double sigma,
                                       double tail_probability = 0.0,
                                       double tail_factor = 1.0);

  /// Degenerate distribution: always exactly `value_us`.
  static LatencyDistribution Constant(SimDuration value_us);

  /// Uniform in [lo_us, hi_us].
  static LatencyDistribution Uniform(SimDuration lo_us, SimDuration hi_us);

  SimDuration Sample(Rng& rng) const;

  SimDuration median() const { return median_; }

 private:
  enum class Kind { kZero, kConstant, kLogNormal, kUniform };

  Kind kind_ = Kind::kZero;
  SimDuration median_ = 0;
  SimDuration lo_ = 0;
  SimDuration hi_ = 0;
  double mu_ = 0.0;
  double sigma_ = 0.0;
  double tail_probability_ = 0.0;
  double tail_factor_ = 1.0;
};

/// Zipfian generator over [0, n) with parameter theta, used by the
/// YCSB-style workload generators in the benches.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace aurora
