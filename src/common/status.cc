#include "src/common/status.h"

namespace aurora {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kQuorumUnavailable:
      return "QuorumUnavailable";
    case StatusCode::kStaleEpoch:
      return "StaleEpoch";
    case StatusCode::kFenced:
      return "Fenced";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace aurora
