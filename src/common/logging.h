// Minimal leveled diagnostic logging.
//
// The level check is a relaxed atomic load (parallel simulator workers
// consult it concurrently); message emission itself is unsynchronized.
// Logging defaults to kWarn so tests and benches stay quiet; examples
// raise the level to narrate protocol activity.

#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace aurora {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define AURORA_LOG(level)                                      \
  if (::aurora::LogLevel::level < ::aurora::GetLogLevel()) {   \
  } else                                                       \
    ::aurora::internal::LogStream(::aurora::LogLevel::level,   \
                                  __FILE__, __LINE__)

#define AURORA_TRACE AURORA_LOG(kTrace)
#define AURORA_DEBUG AURORA_LOG(kDebug)
#define AURORA_INFO AURORA_LOG(kInfo)
#define AURORA_WARN AURORA_LOG(kWarn)
#define AURORA_ERROR AURORA_LOG(kError)

}  // namespace aurora
