// Core identifier and ordinal types shared across the library.
//
// The paper's central invariant is a single monotonically increasing Log
// Sequence Number (LSN) space allocated by the writer instance (§2.1). All
// consistency points (SCL, PGCL, VCL, VDL, PGMRPL) are plain LSNs, which is
// what makes them "compact and comparable" (§6). We keep LSNs as raw
// integers with named aliases, and use strong types only where confusing two
// identifiers would be a real bug (epochs vs LSNs vs node ids).

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace aurora {

/// Log Sequence Number. Allocated only by the writer instance,
/// monotonically increasing, shared across the whole volume.
using Lsn = uint64_t;

/// Sentinel: "no LSN" / "before the first record".
inline constexpr Lsn kInvalidLsn = 0;

/// System Commit Number: the LSN of a transaction's commit redo record
/// (§2.3). A commit may be acknowledged once SCN <= VCL.
using Scn = Lsn;

/// Simulated time in microseconds since simulation start.
using SimTime = int64_t;
using SimDuration = int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000;
inline constexpr SimDuration kSecond = 1000 * 1000;

/// Identifies an Availability Zone.
using AzId = uint32_t;

/// Identifies a simulated node (database instance, storage node, service).
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Identifies a volume (one tenant's database) on the shared storage
/// fleet. Volume 0 is the cluster's primary volume; additional volumes
/// exist only when `AuroraOptions::volumes > 1` (multi-tenant mode).
using VolumeId = uint32_t;

/// Identifies a protection group within a volume. Protection-group ids
/// are per-volume ordinals (VolumeGeometry indexes by them), so two
/// volumes on the shared fleet both have a pg 0 — fleet-wide keys must
/// pair the id with its VolumeId (see storage::ArchiveKey).
using ProtectionGroupId = uint32_t;

/// Identifies a segment (one replica of a protection group's data).
/// Unique FLEET-wide: the cluster allocates segment ids from one counter
/// across all volumes, so a segment id alone is an unambiguous key on a
/// shared multi-tenant segment server.
using SegmentId = uint32_t;
inline constexpr SegmentId kInvalidSegment =
    std::numeric_limits<SegmentId>::max();

/// Fleet-wide archive/namespace key for per-PG state shared across the
/// multi-tenant fleet: (volume << 32) | pg. Volume-0 keys are numerically
/// identical to the bare pg id (`ProtectionGroupId` converts implicitly),
/// which keeps every single-volume call site — and the golden schedules —
/// bit-identical to the pre-multi-tenant behavior.
using ArchiveKey = uint64_t;

inline constexpr ArchiveKey MakeArchiveKey(VolumeId volume,
                                           ProtectionGroupId pg) {
  return (static_cast<ArchiveKey>(volume) << 32) | pg;
}

/// Identifies a data block (page) in the volume's block address space.
using BlockId = uint64_t;
inline constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();

/// Identifies a database transaction.
using TxnId = uint64_t;
inline constexpr TxnId kInvalidTxn = 0;

/// Volume epoch (§2.4): incremented in the storage metadata service at crash
/// recovery and recorded at a write quorum of every protection group.
/// Storage nodes reject requests carrying a stale volume epoch, boxing out
/// old instances ("changing the locks on the door").
using VolumeEpoch = uint64_t;

/// Membership epoch (§4.1): per protection group, monotonically incremented
/// with each quorum membership change.
using MembershipEpoch = uint64_t;

/// Volume geometry epoch (§4.1): incremented when protection groups are
/// added to (or the quorum model of) the volume changes.
using GeometryEpoch = uint64_t;

/// The set of epochs attached to every storage request for fencing.
struct EpochVector {
  VolumeEpoch volume_epoch = 0;
  MembershipEpoch membership_epoch = 0;

  bool operator==(const EpochVector&) const = default;
};

/// Durable consistency points visible at a database instance, as defined in
/// §2.3/§3.2 of the paper. All are LSNs in the volume-wide space.
struct ConsistencyPoints {
  /// Volume Complete LSN: highest LSN such that every record at or below it
  /// has met write quorum in its protection group.
  Lsn vcl = kInvalidLsn;
  /// Volume Durable LSN: the last LSN <= VCL that completes an MTR.
  /// Read views and replica application are anchored here.
  Lsn vdl = kInvalidLsn;

  bool operator==(const ConsistencyPoints&) const = default;
};

/// Formats "lsn:<n>" / "-" for kInvalidLsn; used in traces and tests.
std::string LsnToString(Lsn lsn);

}  // namespace aurora
