// Status / Result error-handling primitives.
//
// The library does not use exceptions (matching the style of large C++
// database codebases such as RocksDB and Arrow). Every fallible operation
// returns a Status, or a Result<T> when it also produces a value.

#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace aurora {

/// Error taxonomy for the whole library.
///
/// The codes mirror the failure modalities the paper reasons about:
/// `kStaleEpoch` is the storage-node rejection used for fencing (§4.1),
/// `kQuorumUnavailable` is a failed read/write quorum, `kFenced` is a
/// boxed-out writer instance.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kIoError,
  kTimedOut,
  kUnavailable,
  kQuorumUnavailable,
  kStaleEpoch,
  kFenced,
  kAborted,
  kConflict,
  kNotSupported,
  kInternal,
};

/// Human-readable name of a StatusCode ("OK", "StaleEpoch", ...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value.
///
/// Cheap to copy in the success case (no allocation); carries a message in
/// the error case. Modeled after rocksdb::Status.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status QuorumUnavailable(std::string msg) {
    return Status(StatusCode::kQuorumUnavailable, std::move(msg));
  }
  static Status StaleEpoch(std::string msg) {
    return Status(StatusCode::kStaleEpoch, std::move(msg));
  }
  static Status Fenced(std::string msg) {
    return Status(StatusCode::kFenced, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsStaleEpoch() const { return code_ == StatusCode::kStaleEpoch; }
  bool IsFenced() const { return code_ == StatusCode::kFenced; }
  bool IsQuorumUnavailable() const {
    return code_ == StatusCode::kQuorumUnavailable;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value or an error Status. Minimal StatusOr-alike.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : value_(std::move(status)) {
    assert(!std::get<Status>(value_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(value_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> value_;
};

/// Propagate a non-OK status to the caller.
#define AURORA_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::aurora::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Assign the value of a Result-returning expression or propagate its error.
#define AURORA_ASSIGN_OR_RETURN(lhs, expr)      \
  auto AURORA_CONCAT_(_res, __LINE__) = (expr); \
  if (!AURORA_CONCAT_(_res, __LINE__).ok())     \
    return AURORA_CONCAT_(_res, __LINE__).status(); \
  lhs = std::move(AURORA_CONCAT_(_res, __LINE__)).value()

#define AURORA_CONCAT_IMPL_(a, b) a##b
#define AURORA_CONCAT_(a, b) AURORA_CONCAT_IMPL_(a, b)

}  // namespace aurora
