// CRC-32C (Castagnoli), software implementation.
//
// Used to checksum serialized redo records and materialized blocks; the
// storage-node scrubber (§2.1 activity 8) re-verifies these checksums
// against "disk" periodically.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace aurora {

/// Computes CRC-32C over `data`, continuing from `seed` (0 for a fresh CRC).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

/// Computes CRC-32C over a string view. NOTE: pass string literals through
/// std::string_view explicitly when also passing a seed — a bare `const
/// char*` with an integral second argument would select the (void*, size)
/// overload above.
inline uint32_t Crc32c(std::string_view s, uint32_t seed = 0) {
  return Crc32c(s.data(), s.size(), seed);
}

}  // namespace aurora
