#include "src/common/interval_set.h"

#include <cassert>

namespace aurora {

void IntervalSet::AddRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  // Find the first interval that could merge with [lo, hi]: any interval
  // whose upper bound >= lo-1 (adjacency merges too).
  auto it = intervals_.lower_bound(lo);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second + 1 >= lo && prev->second >= prev->first) {
      it = prev;
    }
  }
  uint64_t new_lo = lo;
  uint64_t new_hi = hi;
  while (it != intervals_.end() && it->first <= (hi == UINT64_MAX ? hi : hi + 1)) {
    if (it->second + 1 < lo && it->second != UINT64_MAX) {
      ++it;
      continue;
    }
    new_lo = std::min(new_lo, it->first);
    new_hi = std::max(new_hi, it->second);
    it = intervals_.erase(it);
  }
  intervals_[new_lo] = new_hi;
}

bool IntervalSet::Contains(uint64_t value) const {
  auto it = intervals_.upper_bound(value);
  if (it == intervals_.begin()) return false;
  --it;
  return it->second >= value;
}

bool IntervalSet::ContainsRange(uint64_t lo, uint64_t hi) const {
  auto it = intervals_.upper_bound(lo);
  if (it == intervals_.begin()) return false;
  --it;
  return it->first <= lo && it->second >= hi;
}

uint64_t IntervalSet::ValueCount() const {
  uint64_t n = 0;
  for (const auto& [lo, hi] : intervals_) n += hi - lo + 1;
  return n;
}

uint64_t IntervalSet::ContiguousUpperBound(uint64_t floor) const {
  auto it = intervals_.upper_bound(floor);
  if (it == intervals_.begin()) return floor - 1;
  --it;
  if (it->second < floor || it->first > floor) return floor - 1;
  return it->second;
}

std::vector<Interval> IntervalSet::GapsIn(uint64_t lo, uint64_t hi) const {
  std::vector<Interval> gaps;
  uint64_t cursor = lo;
  for (auto it = intervals_.begin(); it != intervals_.end() && cursor <= hi;
       ++it) {
    if (it->second < cursor) continue;
    if (it->first > hi) break;
    if (it->first > cursor) {
      gaps.push_back({cursor, std::min(hi, it->first - 1)});
    }
    if (it->second >= hi) {
      cursor = hi + 1;
      if (cursor == 0) return gaps;  // hi == UINT64_MAX wrapped
      break;
    }
    cursor = it->second + 1;
  }
  if (cursor <= hi) gaps.push_back({cursor, hi});
  return gaps;
}

void IntervalSet::TruncateAbove(uint64_t hi) {
  auto it = intervals_.upper_bound(hi);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > hi) prev->second = hi;
  }
  intervals_.erase(it, intervals_.end());
}

std::vector<Interval> IntervalSet::ToVector() const {
  std::vector<Interval> out;
  out.reserve(intervals_.size());
  for (const auto& [lo, hi] : intervals_) out.push_back({lo, hi});
  return out;
}

std::string IntervalSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [lo, hi] : intervals_) {
    if (!first) out += ", ";
    first = false;
    out += "[" + std::to_string(lo) + "," + std::to_string(hi) + "]";
  }
  out += "}";
  return out;
}

}  // namespace aurora
