// Ordered set of disjoint closed integer intervals.
//
// Two protocol uses:
//  * segment hot logs track the LSN ranges received so far; the gap list
//    drives gossip (§2.3) and SCL computation,
//  * crash recovery records a truncation range that annuls log records
//    beyond the recomputed VCL (§2.4, Figure 4).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aurora {

/// A closed interval [lo, hi] of uint64 values.
struct Interval {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool Contains(uint64_t v) const { return lo <= v && v <= hi; }
  bool operator==(const Interval&) const = default;
};

/// Maintains disjoint, coalesced intervals. Insertion merges adjacent and
/// overlapping ranges. All operations are O(log n) amortized.
class IntervalSet {
 public:
  void Add(uint64_t value) { AddRange(value, value); }
  void AddRange(uint64_t lo, uint64_t hi);

  bool Contains(uint64_t value) const;

  /// True iff [lo, hi] is fully covered.
  bool ContainsRange(uint64_t lo, uint64_t hi) const;

  bool Empty() const { return intervals_.empty(); }
  size_t IntervalCount() const { return intervals_.size(); }
  uint64_t ValueCount() const;

  /// Largest value V such that [floor, V] is fully contained, or floor-1
  /// if even `floor` is missing. This is exactly the SCL computation: the
  /// inclusive upper bound of the gap-free prefix starting at `floor`.
  uint64_t ContiguousUpperBound(uint64_t floor) const;

  /// Gaps between `lo` and `hi` (inclusive) not covered by the set.
  std::vector<Interval> GapsIn(uint64_t lo, uint64_t hi) const;

  /// Removes everything above `hi` (exclusive truncation keeps [.., hi]).
  void TruncateAbove(uint64_t hi);

  std::vector<Interval> ToVector() const;
  std::string ToString() const;

  bool operator==(const IntervalSet& other) const {
    return intervals_ == other.intervals_;
  }

 private:
  // Key: interval lower bound; value: upper bound.
  std::map<uint64_t, uint64_t> intervals_;
};

}  // namespace aurora
