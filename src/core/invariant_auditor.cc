#include "src/core/invariant_auditor.h"

#include <algorithm>
#include <set>

#include "src/common/logging.h"
#include "src/core/health_monitor.h"
#include "src/core/repair_planner.h"

namespace aurora::core {

InvariantAuditor::InvariantAuditor(AuroraCluster* cluster)
    : cluster_(cluster) {
  auto& registry = metrics::Registry::Global();
  m_checks_ = registry.GetCounter("audit.checks");
  m_violations_ = registry.GetCounter("audit.violations");
}

void InvariantAuditor::Attach(uint64_t every_n_events) {
  cluster_->sim().SetInspector(every_n_events, [this]() { RunChecks(); });
  attached_ = true;
}

void InvariantAuditor::Detach() {
  if (attached_) cluster_->sim().ClearInspector();
  attached_ = false;
}

void InvariantAuditor::CheckNow() { RunChecks(); }

void InvariantAuditor::ObserveControlPlane(const HealthMonitor* monitor,
                                           const RepairPlanner* planner) {
  monitor_ = monitor;
  planner_ = planner;
  repair_unsuspect_since_.clear();
}

void InvariantAuditor::ResetDurabilityFloor() { durability_floor_.clear(); }

void InvariantAuditor::RunChecks() {
  checks_run_++;
  AURORA_COUNT(m_checks_, 1);
  CheckSclMonotonic();
  CheckPgclDurable();
  CheckVdlVclOrder();
  CheckAckedScnDurable();
  CheckSingleEpochQuorum();
  CheckPgmrplBelowViews();
  CheckMembershipEpochMonotonic();
  CheckRepairQuietDecision();
  CheckHydratingReadExclusion();
}

void InvariantAuditor::AddViolation(const std::string& invariant,
                                    const std::string& detail) {
  AURORA_COUNT(m_violations_, 1);
  AuditViolation v;
  v.invariant = invariant;
  v.detail = detail;
  v.at = cluster_->sim().Now();
  v.event_index = cluster_->sim().ExecutedEvents();
  // Snapshot only the first violation: it is the repro anchor; later ones
  // are usually cascades of the same root cause.
  if (violations_.empty()) v.snapshot = SnapshotJson();
  AURORA_ERROR << "INVARIANT VIOLATION [" << invariant << "] " << detail
               << " at t=" << v.at << " event=" << v.event_index;
  violations_.push_back(std::move(v));
}

// -- 1: per-segment SCL monotonicity ----------------------------------------

void InvariantAuditor::CheckSclMonotonic() {
  cluster_->ForEachSegment([this](storage::StorageNode* node,
                                  storage::SegmentStore* segment) {
    const std::tuple<VolumeEpoch, size_t, uint64_t> key{
        segment->volume_epoch(), segment->hot_log().truncations().size(),
        segment->stats().scrub_corruptions_found};
    auto& baseline = scl_seen_[segment->id()];
    if (key != baseline.key) {
      // Truncation install, epoch change (recovery/restore), or a scrub
      // drop legitimately rewinds the chain; re-anchor.
      baseline.key = key;
      baseline.scl = segment->scl();
      return;
    }
    const Lsn scl = segment->scl();
    if (baseline.scl != kInvalidLsn && scl < baseline.scl) {
      AddViolation("scl-monotonic",
                   "segment " + std::to_string(segment->id()) + " on node " +
                       std::to_string(node->id()) + " SCL regressed " +
                       std::to_string(baseline.scl) + " -> " +
                       std::to_string(scl));
    }
    baseline.scl = std::max(baseline.scl, scl);
  });
}

// -- 2: PGCL covered by a write quorum of SCLs ------------------------------

void InvariantAuditor::CheckPgclDurable() {
  cluster_->ForEachPgConfig([this](VolumeId volume,
                                   const quorum::PgConfig& pg) {
    engine::DbInstance* writer = cluster_->writer(volume);
    if (writer == nullptr || !writer->IsOpen()) return;
    const Lsn pgcl = writer->pgcl(pg.pg());
    if (pgcl == kInvalidLsn) return;
    quorum::SegmentSet covered;
    size_t observed_at_or_above = 0;
    for (const auto& member : pg.AllMembers()) {
      storage::StorageNode* node = cluster_->NodeForSegment(member.id);
      storage::SegmentStore* store =
          node != nullptr ? node->FindSegment(member.id) : nullptr;
      if (store == nullptr) continue;
      if (store->scl() != kInvalidLsn && store->scl() >= pgcl) {
        covered.insert(member.id);
        observed_at_or_above++;
        continue;
      }
      // Members we cannot fault for being below PGCL still count as
      // potentially covering: a down node's disk state is durable but its
      // SCL is frozen at crash time; a scrub that dropped a corrupt record
      // legally rewinds SCL until gossip refills the hole (§3.2); a
      // hydrating replacement has not caught up yet by design (§4.1); a
      // member holding records ABOVE its SCL has a hole awaiting gossip —
      // PGCL is a per-record quorum property (§2.3), so a healthy member's
      // contiguous prefix may trail PGCL while holes are in repair.
      const bool node_down = !cluster_->network().IsUp(member.node);
      const bool scrub_rewound = store->stats().scrub_corruptions_found > 0;
      const bool hole_in_repair =
          !store->hot_log().RecordsAbove(store->scl(), 1).empty();
      if (node_down || scrub_rewound || hole_in_repair || !store->hydrated()) {
        covered.insert(member.id);
      }
    }
    const ArchiveKey key = MakeArchiveKey(volume, pg.pg());
    if (pg.WriteSet().SatisfiedBy(covered)) {
      pgcl_uncovered_since_.erase(key);
      return;
    }
    // Even with every excuse applied, under-coverage can appear for a
    // moment (e.g. a just-restored node that has not yet received any
    // record or gossip round). Only PERSISTENT under-coverage — well past
    // the 100ms gossip cadence — is a protocol violation.
    const SimTime now = cluster_->sim().Now();
    auto [it, first] = pgcl_uncovered_since_.try_emplace(key, now);
    if (now - it->second < kPgclRepairGrace) return;
    {
      AddViolation("pgcl-durable",
                   "volume " + std::to_string(volume) + " pg " +
                       std::to_string(pg.pg()) + " PGCL " +
                       std::to_string(pgcl) +
                       " not covered by a write quorum of member SCLs (" +
                       std::to_string(observed_at_or_above) +
                       " observed at/above, " + std::to_string(covered.size()) +
                       " potentially covering)");
    }
  });
}

// -- 3: VDL <= VCL <= max allocated -----------------------------------------

void InvariantAuditor::CheckVdlVclOrder() {
  for (VolumeId volume : cluster_->metadata().VolumeIds()) {
    engine::DbInstance* writer = cluster_->writer(volume);
    if (writer == nullptr || !writer->IsOpen() ||
        writer->driver() == nullptr) {
      continue;
    }
    const Lsn vcl = writer->vcl();
    const Lsn vdl = writer->vdl();
    const Lsn max_allocated = writer->driver()->tracker().max_allocated();
    if (vdl > vcl) {
      AddViolation("vdl-le-vcl", "volume " + std::to_string(volume) +
                                     " VDL " + std::to_string(vdl) +
                                     " > VCL " + std::to_string(vcl));
    }
    if (max_allocated != kInvalidLsn && vcl > max_allocated) {
      AddViolation("vdl-le-vcl", "volume " + std::to_string(volume) +
                                     " VCL " + std::to_string(vcl) +
                                     " > max allocated LSN " +
                                     std::to_string(max_allocated));
    }
  }
}

// -- 4: acked commits stay durable across incarnations ----------------------

void InvariantAuditor::CheckAckedScnDurable() {
  for (VolumeId volume : cluster_->metadata().VolumeIds()) {
    engine::DbInstance* writer = cluster_->writer(volume);
    if (writer == nullptr) continue;
    Scn& floor = durability_floor_[volume];
    if (writer->max_acked_scn() != kInvalidLsn &&
        (floor == kInvalidLsn || writer->max_acked_scn() > floor)) {
      floor = writer->max_acked_scn();
    }
    if (!writer->IsOpen() || floor == kInvalidLsn) continue;
    if (floor > writer->vdl()) {
      AddViolation("acked-scn-durable",
                   "volume " + std::to_string(volume) + " acked SCN " +
                       std::to_string(floor) + " above VDL " +
                       std::to_string(writer->vdl()) +
                       " (an acknowledged commit was lost)");
    }
  }
}

// -- 5: no write quorum at a stale volume epoch -----------------------------

void InvariantAuditor::CheckSingleEpochQuorum() {
  cluster_->ForEachPgConfig([this](VolumeId volume,
                                   const quorum::PgConfig& pg) {
    engine::DbInstance* writer = cluster_->writer(volume);
    if (writer == nullptr || !writer->IsOpen()) return;
    const VolumeEpoch writer_epoch = writer->volume_epoch();
    quorum::SegmentSet stale;
    for (const auto& member : pg.AllMembers()) {
      storage::StorageNode* node = cluster_->NodeForSegment(member.id);
      storage::SegmentStore* store =
          node != nullptr ? node->FindSegment(member.id) : nullptr;
      if (store != nullptr && store->volume_epoch() < writer_epoch) {
        stale.insert(member.id);
      }
    }
    if (!stale.empty() && pg.WriteSet().SatisfiedBy(stale)) {
      AddViolation(
          "single-epoch-quorum",
          "volume " + std::to_string(volume) + " pg " +
              std::to_string(pg.pg()) + " has a full write quorum (" +
              std::to_string(stale.size()) +
              " segments) still below the open writer's volume epoch " +
              std::to_string(writer_epoch) +
              " — a stale-epoch writer could commit I/Os");
    }
  });
}

// -- 6: PGMRPL never passes an active read view -----------------------------

void InvariantAuditor::CheckPgmrplBelowViews() {
  // Collect active read views PER VOLUME: read views and PGMRPLs are LSNs
  // in their volume's private space, so cross-tenant comparison would be
  // meaningless. Replicas attach to the primary volume only.
  std::map<VolumeId, std::vector<std::pair<std::string, Lsn>>> views;
  for (VolumeId volume : cluster_->metadata().VolumeIds()) {
    engine::DbInstance* writer = cluster_->writer(volume);
    if (writer == nullptr || !writer->IsOpen()) continue;
    auto& volume_views = views[volume];
    volume_views.emplace_back("writer VDL", writer->vdl());
    const Lsn open_min = writer->txns().MinOpenReadLsn();
    if (open_min != kInvalidLsn) {
      volume_views.emplace_back("writer oldest open view", open_min);
    }
  }
  for (const auto& replica : cluster_->replicas()) {
    // A replica that has not yet learned a VDL (fresh attach, mid-crash)
    // has no views to protect.
    if (replica->vdl() == kInvalidLsn) continue;
    views[0].emplace_back("replica min read point", replica->MinReadPoint());
  }
  if (views.empty()) return;
  cluster_->ForEachSegment([this, &views](storage::StorageNode* node,
                                          storage::SegmentStore* segment) {
    if (!segment->hydrated()) return;
    const Lsn pgmrpl = segment->pgmrpl();
    if (pgmrpl == kInvalidLsn) return;
    auto it = views.find(segment->volume());
    if (it == views.end()) return;
    for (const auto& [what, lsn] : it->second) {
      if (pgmrpl > lsn) {
        AddViolation("pgmrpl-le-views",
                     "segment " + std::to_string(segment->id()) +
                         " on node " + std::to_string(node->id()) +
                         " (volume " + std::to_string(segment->volume()) +
                         ") PGMRPL " + std::to_string(pgmrpl) + " above " +
                         what + " " + std::to_string(lsn));
      }
    }
  });
}

// -- 7: membership epochs only move forward ---------------------------------

void InvariantAuditor::CheckMembershipEpochMonotonic() {
  for (VolumeId volume : cluster_->metadata().VolumeIds()) {
    const VolumeEpoch vepoch = cluster_->metadata().volume_epoch(volume);
    VolumeEpoch& seen = volume_epoch_seen_[volume];
    if (vepoch < seen) {
      AddViolation("membership-epoch-monotonic",
                   "volume " + std::to_string(volume) +
                       " metadata volume epoch regressed " +
                       std::to_string(seen) + " -> " + std::to_string(vepoch));
    }
    seen = std::max(seen, vepoch);
  }
  cluster_->ForEachPgConfig([this](VolumeId volume,
                                   const quorum::PgConfig& pg) {
    const MembershipEpoch epoch = pg.epoch();
    auto [it, first] = membership_epoch_seen_.try_emplace(
        MakeArchiveKey(volume, pg.pg()), epoch);
    if (!first && epoch < it->second) {
      AddViolation("membership-epoch-monotonic",
                   "volume " + std::to_string(volume) + " pg " +
                       std::to_string(pg.pg()) +
                       " membership epoch regressed " +
                       std::to_string(it->second) + " -> " +
                       std::to_string(epoch));
    }
    it->second = std::max(it->second, epoch);
  });
}

// -- 8: repair jobs require suspicion evidence ------------------------------

void InvariantAuditor::CheckRepairQuietDecision() {
  if (monitor_ == nullptr || planner_ == nullptr) return;
  const SimTime now = cluster_->sim().Now();
  std::set<SegmentId> active;
  for (const auto& [old_id, job] : planner_->jobs()) {
    active.insert(old_id);
    if (monitor_->last_suspected_at(old_id) == 0) {
      AddViolation("repair-quiet-decision",
                   "repair job against segment " + std::to_string(old_id) +
                       " which the health monitor never suspected");
      continue;
    }
    // Once the planner has committed to an outcome (commit after full
    // hydration, or revert) the decision point has passed; only
    // still-revertible states are held to the freshness requirement.
    if (job.state == RepairPlanner::JobState::kCommitInstall ||
        job.state == RepairPlanner::JobState::kRevertInstall) {
      repair_unsuspect_since_.erase(old_id);
      continue;
    }
    // While an install RPC round is outstanding the planner cannot act
    // on new liveness evidence; the dwell clock starts once it is free.
    if (job.install_in_flight) {
      repair_unsuspect_since_.erase(old_id);
      continue;
    }
    if (monitor_->IsSuspect(old_id)) {
      repair_unsuspect_since_.erase(old_id);
      continue;
    }
    auto [it, first] = repair_unsuspect_since_.try_emplace(old_id, now);
    if (now - it->second >= kRepairRevertGrace) {
      AddViolation(
          "repair-quiet-decision",
          "repair job against segment " + std::to_string(old_id) +
              " still pending " + std::to_string(now - it->second) +
              "us after the suspect produced fresh liveness evidence, "
              "without reverting");
      it->second = now;  // re-arm instead of firing every event boundary
    }
  }
  std::erase_if(repair_unsuspect_since_,
                [&active](const auto& kv) { return !active.contains(kv.first); });
}

// -- 9: mid-hydration segments never look read-complete ---------------------

void InvariantAuditor::CheckHydratingReadExclusion() {
  // Each volume's writer only tracks its own segments, so resolve the
  // driver per segment via the segment's owning volume.
  std::map<VolumeId, engine::StorageDriver*> drivers;
  for (VolumeId volume : cluster_->metadata().VolumeIds()) {
    engine::DbInstance* writer = cluster_->writer(volume);
    if (writer == nullptr || !writer->IsOpen() ||
        writer->driver() == nullptr) {
      continue;
    }
    drivers[volume] = writer->driver();
  }
  if (drivers.empty()) return;
  cluster_->ForEachSegment([this, &drivers](storage::StorageNode* node,
                                            storage::SegmentStore* segment) {
    if (segment->hydrated()) return;
    auto it = drivers.find(segment->volume());
    if (it == drivers.end()) return;
    if (it->second->SegmentKnownHydrated(segment->id())) {
      AddViolation("hydrating-read-exclusion",
                   "segment " + std::to_string(segment->id()) + " on node " +
                       std::to_string(node->id()) +
                       " is mid-hydration but the open writer considers it "
                       "read-complete");
    }
  });
}

// -- Snapshot & report ------------------------------------------------------

std::string InvariantAuditor::SnapshotJson() const {
  std::string out = "{";
  out += "\n  \"seed\": " + std::to_string(cluster_->options().seed);
  out += ",\n  \"sim_time_us\": " + std::to_string(cluster_->sim().Now());
  out += ",\n  \"executed_events\": " +
         std::to_string(cluster_->sim().ExecutedEvents());
  out += ",\n  \"metadata_volume_epoch\": " +
         std::to_string(cluster_->metadata().volume_epoch());
  engine::DbInstance* writer = cluster_->writer();
  if (writer != nullptr) {
    out += ",\n  \"writer\": {";
    out += "\"open\": " + std::string(writer->IsOpen() ? "true" : "false");
    out += ", \"fenced\": " +
           std::string(writer->IsFenced() ? "true" : "false");
    out += ", \"volume_epoch\": " + std::to_string(writer->volume_epoch());
    out += ", \"vcl\": " + std::to_string(writer->vcl());
    out += ", \"vdl\": " + std::to_string(writer->vdl());
    out += ", \"max_acked_scn\": " + std::to_string(writer->max_acked_scn());
    out += ", \"pgmrpl\": " + std::to_string(writer->ComputePgmrpl());
    out += ", \"pgcl\": [";
    bool first = true;
    for (const auto& pg : cluster_->geometry().pgs()) {
      if (!first) out += ", ";
      first = false;
      out += std::to_string(writer->pgcl(pg.pg()));
    }
    out += "]}";
  }
  out += ",\n  \"segments\": [";
  bool first_seg = true;
  // ForEachSegment is non-const; the lambda only reads. const_cast is
  // confined to this serialization helper.
  auto* self = const_cast<InvariantAuditor*>(this);
  self->cluster_->ForEachSegment([&out, &first_seg](
                                     storage::StorageNode* node,
                                     storage::SegmentStore* segment) {
    if (!first_seg) out += ",";
    first_seg = false;
    out += "\n    {\"id\": " + std::to_string(segment->id());
    out += ", \"volume\": " + std::to_string(segment->volume());
    out += ", \"pg\": " + std::to_string(segment->pg());
    out += ", \"node\": " + std::to_string(node->id());
    out += ", \"volume_epoch\": " + std::to_string(segment->volume_epoch());
    out += ", \"membership_epoch\": " +
           std::to_string(segment->config().epoch());
    out += ", \"scl\": " + std::to_string(segment->scl());
    out += ", \"pgmrpl\": " + std::to_string(segment->pgmrpl());
    out += ", \"hydrated\": " +
           std::string(segment->hydrated() ? "true" : "false");
    out += ", \"truncations\": " +
           std::to_string(segment->hot_log().truncations().size());
    out += "}";
  });
  out += "\n  ]";
  out += ",\n  \"replicas\": [";
  bool first_rep = true;
  for (const auto& replica : cluster_->replicas()) {
    if (!first_rep) out += ",";
    first_rep = false;
    out += "\n    {\"vdl\": " + std::to_string(replica->vdl());
    out += ", \"min_read_point\": " + std::to_string(replica->MinReadPoint());
    out += "}";
  }
  out += "\n  ]";
  out += ",\n  \"checks_run\": " + std::to_string(checks_run_);
  out += ",\n  \"violations\": " + std::to_string(violations_.size());
  out += "\n}\n";
  return out;
}

std::string InvariantAuditor::Report() const {
  if (violations_.empty()) return "";
  std::string out = std::to_string(violations_.size()) +
                    " invariant violation(s); seed " +
                    std::to_string(cluster_->options().seed) + "\n";
  for (const auto& v : violations_) {
    out += "  [" + v.invariant + "] " + v.detail + " at t=" +
           std::to_string(v.at) + " event=" + std::to_string(v.event_index) +
           "\n";
  }
  out += "first-violation snapshot:\n" + violations_.front().snapshot;
  return out;
}

}  // namespace aurora::core
