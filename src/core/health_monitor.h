// Per-segment failure suspicion for the self-healing control plane.
//
// The paper's availability argument (§4.1) needs membership changes to be
// cheap enough to run *eagerly* on every suspected failure — "we do not
// need to wait to determine whether a failure is transient". This monitor
// produces those suspicions: it probes every segment of every protection
// group with SegmentState heartbeats from the metadata node, adapts each
// segment's probe timeout to its observed round-trip time (EWMA of RTT
// plus a jitter multiple), backs probes off exponentially while a segment
// is dark, and clears suspicion the moment contrary evidence arrives —
// either a late probe reply or an in-band write acknowledgement observed
// by the writer's storage driver.
//
// Everything runs on simulator time via scheduled events; the monitor
// never blocks and never drives the event loop itself, so it is safe to
// run underneath any workload (the *Blocking helpers pump the same loop).
// Suspicion is advisory: the repair planner (repair_planner.h) consumes
// Suspects() and decides; the quorum math stays the sole safety argument.
//
// Multi-tenant clusters (DESIGN.md §11): one monitor watches the whole
// fleet. It sweeps every volume's protection groups (ForEachPgConfig)
// and installs its in-band ack observer on EVERY tenant writer, so a
// suspicion raised by tenant A's probes can be cleared by tenant B's
// write acks to the same shared server — liveness evidence is about
// servers, not tenants.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/metrics.h"
#include "src/common/types.h"

namespace aurora::storage {
struct SegmentStateResponse;
}  // namespace aurora::storage

namespace aurora::core {

class AuroraCluster;

struct HealthMonitorOptions {
  /// Steady-state probe period per segment.
  SimDuration probe_interval = 50 * kMillisecond;
  /// Clamp for the adaptive probe timeout.
  SimDuration min_timeout = 5 * kMillisecond;
  SimDuration max_timeout = 500 * kMillisecond;
  /// RTT estimate seeded before the first sample.
  SimDuration initial_rtt = 2 * kMillisecond;
  /// timeout = ewma_rtt + jitter_mult * ewma_jitter, clamped.
  double jitter_mult = 4.0;
  /// EWMA smoothing factor for RTT and jitter.
  double ewma_alpha = 0.25;
  /// Consecutive probe failures before a segment is suspected. Two beats
  /// one: a single timeout is routinely a tail-latency artifact, and the
  /// flap hysteresis the campaign exercises starts here.
  int suspect_after = 2;
  /// Probe period doubles per consecutive failure, capped at
  /// probe_interval << max_backoff_shift.
  int max_backoff_shift = 3;
};

class HealthMonitor {
 public:
  struct SegmentHealth {
    double ewma_rtt_us = 0.0;
    double ewma_jitter_us = 0.0;
    int consecutive_failures = 0;
    int backoff_shift = 0;
    bool suspected = false;
    /// When the current suspicion was declared (0 while healthy).
    SimTime suspected_since = 0;
    /// When suspicion was MOST RECENTLY declared; sticky across recovery
    /// so the auditor can prove a repair decision had evidence behind it.
    SimTime last_suspected_at = 0;
    SimTime last_ok_at = 0;
    bool probe_in_flight = false;
    uint64_t probe_token = 0;
  };

  explicit HealthMonitor(AuroraCluster* cluster,
                         HealthMonitorOptions options = {});
  ~HealthMonitor();

  /// Begins probing (idempotent). Nothing probes until Start().
  void Start();
  /// Stops issuing probes; health_ is kept for inspection. Also detaches
  /// the ack observer from the current writer.
  void Stop();
  bool running() const { return running_; }

  bool IsSuspect(SegmentId id) const;
  std::vector<SegmentId> Suspects() const;

  /// 0 if the segment is unknown / was never in that state.
  SimTime suspected_since(SegmentId id) const;
  SimTime last_suspected_at(SegmentId id) const;
  SimTime last_ok_at(SegmentId id) const;

  /// Current adaptive timeout for one probe of `id`.
  SimDuration ProbeTimeoutFor(SegmentId id) const;

  /// In-band evidence from the data path: a successful write ack proves
  /// the segment alive and clears suspicion immediately (ok=false is
  /// ignored — absence of acks is what the probes measure).
  void ObserveAck(SegmentId id, bool ok);

  const std::map<SegmentId, SegmentHealth>& health() const { return health_; }
  const HealthMonitorOptions& options() const { return options_; }

  uint64_t probes_sent() const { return probes_sent_; }
  uint64_t probe_timeouts() const { return probe_timeouts_; }
  uint64_t suspicions_declared() const { return suspicions_declared_; }

 private:
  void Sweep();
  void ScheduleProbe(SegmentId id, SimDuration delay);
  void SendProbe(SegmentId id);
  void OnProbeReply(SegmentId id, uint64_t token, SimTime sent_at,
                    const storage::SegmentStateResponse& response);
  void OnProbeTimeout(SegmentId id, uint64_t token);
  void OnProbeFailure(SegmentHealth& h);
  void MarkHealthy(SegmentHealth& h);
  SimDuration BackoffInterval(const SegmentHealth& h) const;
  void UpdateSuspectGauge();

  AuroraCluster* cluster_;
  HealthMonitorOptions options_;
  bool running_ = false;
  /// Invalidates callbacks scheduled before the latest Start()/Stop().
  uint64_t generation_ = 0;
  /// Liveness anchor for the ack observer: DbInstance persists the
  /// observer lambda and re-applies it to every rebuilt driver, so it
  /// can outlive this monitor. The lambda holds a weak_ptr to this
  /// handle (reset on destruction), never a raw `this`.
  std::shared_ptr<HealthMonitor*> live_;

  std::map<SegmentId, SegmentHealth> health_;

  uint64_t probes_sent_ = 0;
  uint64_t probe_timeouts_ = 0;
  uint64_t suspicions_declared_ = 0;

  metrics::Counter* m_probes_;
  metrics::Counter* m_probe_timeouts_;
  metrics::Counter* m_suspected_;
  metrics::Gauge* m_suspects_;
  Histogram* m_probe_rtt_us_;
};

}  // namespace aurora::core
