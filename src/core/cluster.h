// AuroraCluster: the public entry point of the library.
//
// Assembles a complete simulated deployment — three Availability Zones,
// storage nodes hosting six-way protection groups, a metadata service, a
// writer database instance, optional read replicas, an object-store
// archive, and a failure injector — and exposes the paper's control
// operations: crash/recover the writer, fail AZs and storage nodes,
// replace segments with reversible two-step membership changes (Figure 5),
// grow the volume, and promote replicas.
//
// The simulation is single-threaded and deterministic; the *Blocking
// helpers drive the event loop until the corresponding asynchronous
// operation completes, which keeps examples and tests linear to read.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/placement.h"
#include "src/engine/db_instance.h"
#include "src/quorum/geometry.h"
#include "src/replica/read_replica.h"
#include "src/sim/failure_injector.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/storage/object_store.h"
#include "src/storage/storage_node.h"

namespace aurora::core {

/// Fleet limit on read replicas (the production Aurora shape: one writer
/// plus up to 15 read replicas on the shared volume).
inline constexpr size_t kMaxReplicas = 15;

/// Actor→shard mapping used when the event engine is sharded
/// (DESIGN.md §9).
enum class ShardGranularity {
  /// Classic mapping: shard = az % ShardCount(); the writer, metadata
  /// service, replicas, and clients ride their AZ's shard (AZ 0 for the
  /// control plane). Uses the scalar global-min lookahead.
  kPerAz,
  /// Fine-grained mapping: every storage node gets its own shard
  /// (round-robin folded once the fleet exceeds max_event_shards - 1)
  /// while the writer(s), metadata service, replicas, and clients all
  /// stay on shard 0 so the control plane keeps one serial stream.
  /// Activates the pairwise lookahead matrix: each (src, dst) shard
  /// pair's window bound derives from the tightest network link class
  /// actually connecting the pair instead of the global minimum hop.
  kPerNode,
};

struct AuroraOptions {
  uint64_t seed = 42;
  /// Protection groups in the volume (each owns blocks_per_pg blocks).
  size_t num_pgs = 1;
  uint64_t blocks_per_pg = 1 << 20;
  quorum::QuorumModel quorum_model = quorum::QuorumModel::kUniform46;
  size_t num_azs = 3;
  /// Storage nodes per AZ; segments round-robin across them.
  size_t storage_nodes_per_az = 2;
  sim::NetworkOptions network;
  storage::StorageNodeOptions storage_node;
  storage::ObjectStoreOptions object_store;
  engine::DbOptions db;
  replica::ReplicaOptions replica;
  /// Default timeout for the *Blocking helpers.
  SimDuration blocking_timeout = 60 * kSecond;
  /// Event-engine shards (DESIGN.md §9). 0 = classic unsharded engine.
  /// 1 = sharded engine, single shard — bit-identical to unsharded, the
  /// determinism oracle for parallel mode. n >= 2 partitions actors by
  /// AZ (shard = az % n, writer + metadata on shard 0) and enables
  /// sim().RunSharded(deadline, threads); lookahead derives from
  /// network.min_latency_us, so raise that floor (e.g. ~40us) to give
  /// the windows useful width.
  uint32_t event_shards = 0;
  /// Actor→shard mapping when event_shards >= 2; ignored otherwise.
  /// kPerNode derives its own shard count (see max_event_shards) — any
  /// event_shards value >= 2 just switches parallel mode on.
  ShardGranularity shard_granularity = ShardGranularity::kPerAz;
  /// Shard-count cap in kPerNode mode: the engine gets
  /// 1 + min(fleet_size, max_event_shards - 1) shards (shard 0 is the
  /// control plane; storage node `i` folds to 1 + i % (count - 1), a
  /// deterministic round-robin over the storage shards). Ignored in
  /// kPerAz mode, where event_shards is the shard count directly.
  uint32_t max_event_shards = 64;
  /// Independent volumes (tenants) sharing the storage fleet (DESIGN.md
  /// §11). 1 (default) is the classic single-tenant cluster — legacy
  /// round-robin placement, one writer, bit-identical schedules. With
  /// n >= 2 the placement service lays out every volume's PGs under
  /// anti-affinity rules, volume v gets its own writer instance (reached
  /// via `writer(v)`) with an independent LSN space, epoch lineage, and
  /// commit pipeline, and each volume creates `num_pgs` protection
  /// groups on the shared servers.
  size_t volumes = 1;
};

/// The metadata service (§2.4, §4.1): the authority for volume epochs,
/// membership epochs, and volume geometry. It is deliberately tiny — the
/// point of the paper is that the DATA path never consults it; it is only
/// touched at crash recovery and membership changes.
///
/// Multi-tenant (DESIGN.md §11): one service instance is the authority
/// for EVERY volume on the shared fleet, holding an independent
/// (epoch, geometry) pair per VolumeId. All accessors default to volume
/// 0 — the primary volume — so single-tenant call sites read unchanged;
/// tenant-aware callers pass the volume explicitly. Epoch lineages never
/// interact across volumes: fencing one tenant's crashed writer cannot
/// invalidate another tenant's in-flight I/O.
class MetadataService {
 public:
  MetadataService(sim::Simulator* sim, sim::Network* network, NodeId id,
                  AzId az);

  NodeId id() const { return id_; }
  VolumeEpoch volume_epoch(VolumeId volume = 0) const;
  const quorum::VolumeGeometry& geometry(VolumeId volume = 0) const;
  quorum::VolumeGeometry& mutable_geometry(VolumeId volume = 0);

  /// Installs (or replaces) `volume`'s geometry; creates the volume's
  /// epoch lineage at 1 on first sight.
  void SetGeometry(quorum::VolumeGeometry geometry, VolumeId volume = 0);

  /// Volumes with registered state, ascending (always includes 0).
  std::vector<VolumeId> VolumeIds() const;

  /// Network-mediated epoch increment (used by crash recovery). The
  /// request/reply byte counts are volume-independent, so adding tenants
  /// never changes another tenant's message timings.
  void IncrementVolumeEpoch(NodeId caller, VolumeId volume,
                            std::function<void(VolumeEpoch)> cb);
  void IncrementVolumeEpoch(NodeId caller,
                            std::function<void(VolumeEpoch)> cb) {
    IncrementVolumeEpoch(caller, 0, std::move(cb));
  }
  /// Network-mediated geometry fetch.
  void FetchGeometry(
      NodeId caller, VolumeId volume,
      std::function<void(quorum::VolumeGeometry, VolumeEpoch)> cb);
  void FetchGeometry(
      NodeId caller,
      std::function<void(quorum::VolumeGeometry, VolumeEpoch)> cb) {
    FetchGeometry(caller, 0, std::move(cb));
  }

 private:
  /// Per-volume authority state: epoch lineage + geometry, independent
  /// across tenants.
  struct VolumeState {
    VolumeEpoch epoch = 1;
    quorum::VolumeGeometry geometry;
  };
  VolumeState& StateFor(VolumeId volume);
  const VolumeState& StateFor(VolumeId volume) const;

  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId id_;
  std::map<VolumeId, VolumeState> volumes_;
};

/// Progress/outcome of a membership change (Figure 5).
struct MembershipChangeReport {
  Status status;
  SegmentId old_segment = kInvalidSegment;
  SegmentId new_segment = kInvalidSegment;
  MembershipEpoch begin_epoch = 0;   // epoch of the dual-quorum config
  MembershipEpoch final_epoch = 0;   // epoch after commit/revert
  bool reverted = false;
  SimTime started_at = 0;
  SimTime finished_at = 0;
};

class AuroraCluster {
 public:
  explicit AuroraCluster(AuroraOptions options = {});
  ~AuroraCluster();

  AuroraCluster(const AuroraCluster&) = delete;
  AuroraCluster& operator=(const AuroraCluster&) = delete;

  // -- Assembly -----------------------------------------------------------

  /// Creates storage nodes + segments + writer, bootstraps the volume.
  Status StartBlocking();

  sim::Simulator& sim() { return sim_; }
  sim::Network& network() { return network_; }

  /// Event-engine shard hosting AZ `az`'s actors (shard 0 when unsharded).
  sim::ShardKey ShardForAz(AzId az) const {
    return sim_.Sharded()
               ? static_cast<sim::ShardKey>(az % sim_.ShardCount())
               : 0;
  }
  /// True when the fine-grained per-storage-node mapping is active.
  bool PerNodeSharding() const {
    return sim_.Sharded() && sim_.ShardCount() >= 2 &&
           options_.shard_granularity == ShardGranularity::kPerNode;
  }
  /// Shard hosting control-plane actors (writers, the metadata service,
  /// replicas, client endpoints): shard 0 under per-node sharding, the
  /// AZ shard otherwise.
  sim::ShardKey ShardForControl(AzId az) const {
    return PerNodeSharding() ? 0 : ShardForAz(az);
  }
  /// Shard hosting storage node `index` (fleet creation order): its own
  /// storage shard under per-node sharding (round-robin folded into the
  /// max_event_shards cap), the AZ shard otherwise.
  sim::ShardKey ShardForStorageIndex(size_t index, AzId az) const {
    if (!PerNodeSharding()) return ShardForAz(az);
    return static_cast<sim::ShardKey>(1 + index % (sim_.ShardCount() - 1));
  }
  sim::FailureInjector& failures() { return *failure_injector_; }
  storage::ObjectStore& object_store() { return *object_store_; }
  MetadataService& metadata() { return *metadata_; }

  engine::DbInstance* writer() { return writer_.get(); }
  /// Volume `v`'s writer instance: the primary writer for v == 0, the
  /// tenant writer otherwise (nullptr for unknown volumes). Each tenant
  /// writer owns an independent LSN space, commit queue, and epoch
  /// lineage over its own protection groups.
  engine::DbInstance* writer(VolumeId volume);
  /// Volumes configured on this cluster (`AuroraOptions::volumes`).
  size_t VolumeCount() const { return options_.volumes; }
  /// Fleet placement authority; nullptr in single-tenant clusters (which
  /// keep the legacy round-robin layout for schedule compatibility).
  PlacementService* placement() { return placement_.get(); }
  storage::StorageNode* node(NodeId id);
  const std::vector<std::unique_ptr<storage::StorageNode>>& storage_nodes()
      const {
    return storage_nodes_;
  }
  std::vector<NodeId> StorageNodeIds() const;
  std::vector<AzId> AzIds() const;

  /// Storage node hosting `segment`, or nullptr.
  storage::StorageNode* NodeForSegment(SegmentId segment);

  // -- Control-plane building blocks (repair planner) ---------------------

  /// Installs `new_config` at a write quorum of `old_config`'s members
  /// without pumping the event loop; `done` fires with OK once the quorum
  /// acks (metadata geometry, the writer's driver, and replicas are
  /// updated first) or with QuorumUnavailable after `timeout`. A node
  /// that already holds an epoch >= new_config.epoch() counts as an ack:
  /// membership installs are monotone at the nodes (segment_store.cc), so
  /// retrying a timed-out install is always safe and eventually convergent.
  void InstallPgConfigAsync(const quorum::PgConfig& old_config,
                            const quorum::PgConfig& new_config,
                            std::function<void(Status)> done,
                            SimDuration timeout = 2 * kSecond);

  /// Reserves a volume-unique segment id for a replacement segment.
  SegmentId AllocateSegmentId() { return next_segment_id_++; }

  /// Least-loaded up node in `az` not already hosting a member of
  /// `config` (falls back to a down node only if the AZ has no live
  /// candidate).
  storage::StorageNode* PickNodeForNewSegment(AzId az,
                                              const quorum::PgConfig& config);

  /// Visits every live segment store in the fleet (crashed nodes included:
  /// their segment state is disk-durable). Used by the invariant auditor.
  void ForEachSegment(
      const std::function<void(storage::StorageNode*, storage::SegmentStore*)>&
          fn);

  /// Visits every protection-group config of every volume, in (volume,
  /// pg) order. The control plane (health monitor, repair planner,
  /// auditor) uses this instead of `geometry().pgs()` so it covers all
  /// tenants.
  void ForEachPgConfig(
      const std::function<void(VolumeId, const quorum::PgConfig&)>& fn) const;

  /// Volume owning `config` (read off its members; configs are always
  /// single-volume). 0 for legacy configs.
  static VolumeId VolumeOf(const quorum::PgConfig& config);

  // -- Replicas -----------------------------------------------------------

  /// Attaches one more read replica to the shared volume; nullptr once
  /// the fleet is at kMaxReplicas (15, the production Aurora limit).
  replica::ReadReplica* AddReplica();

  /// Registers a client endpoint node in `az` (used by ClientSession);
  /// client nodes carry no actors, only request/response traffic.
  NodeId RegisterClientNode(AzId az);
  const std::vector<std::unique_ptr<replica::ReadReplica>>& replicas() const {
    return replicas_;
  }

  /// Fails over: crashes the writer (if alive), promotes a fresh instance
  /// (recovery + fencing). Replicas keep running and re-attach to the new
  /// writer's stream.
  Result<engine::DbInstance*> FailoverBlocking();

  /// Creates an additional, unmanaged database instance attached to the
  /// same volume (it is NOT installed as the cluster's writer). Used to
  /// exercise split-brain scenarios: two instances racing to open must
  /// resolve via volume epochs, never via coordination.
  std::unique_ptr<engine::DbInstance> CreateDetachedInstance();

  // -- Simple data-path helpers (autocommit) -------------------------------

  Status PutBlocking(const std::string& key, const std::string& value);
  Result<std::string> GetBlocking(const std::string& key);
  /// Tenant-qualified autocommit helpers: same as above but through
  /// `volume`'s writer (tests and the multi-tenant bench).
  Status PutBlocking(VolumeId volume, const std::string& key,
                     const std::string& value);
  Result<std::string> GetBlocking(VolumeId volume, const std::string& key);
  Status DeleteBlocking(const std::string& key);
  Status CommitBlocking(TxnId txn);
  Status RollbackBlocking(TxnId txn);

  // -- Fault & membership operations ---------------------------------------

  void CrashWriter();
  Status RecoverWriterBlocking();

  /// Replaces `old_segment` with a fresh segment via the two-step quorum-
  /// set transition; commits once hydrated. I/O proceeds throughout.
  Result<MembershipChangeReport> ReplaceSegmentBlocking(SegmentId old_segment);

  /// Begins a replacement (dual-quorum epoch) without committing —
  /// exposes the intermediate Figure-5 state for tests/benches.
  Result<MembershipChangeReport> BeginReplaceBlocking(SegmentId old_segment);
  /// Completes a pending replacement (requires hydration).
  Status CommitReplaceBlocking(SegmentId old_segment);
  /// Reverses a pending replacement (the suspect member came back).
  Status RevertReplaceBlocking(SegmentId old_segment);

  /// Appends a protection group to `volume` (geometry epoch increment).
  /// Multi-tenant clusters place the new PG through the placement
  /// service; single-tenant clusters keep the legacy round-robin layout.
  Status GrowVolumeBlocking(VolumeId volume = 0);

  /// Heat management (§1, §4.1): migrates a healthy segment to another
  /// node in its AZ using the same two-step reversible transition as a
  /// failure repair — the live source makes hydration fast.
  Result<MembershipChangeReport> MoveSegmentBlocking(SegmentId segment) {
    return ReplaceSegmentBlocking(segment);
  }

  /// Point-in-time restore (§2.1 activity 6, Figure 2's "point in time
  /// snapshot"): crashes the writer, reloads every segment from the
  /// object-store archive at `restore_point` (which must be at or below
  /// the archive's coverage), and opens a fresh writer. All work after
  /// the restore point is gone — that is the point.
  Status RestoreToPointBlocking(Lsn restore_point);

  /// Highest restore point currently covered by the archive for every PG.
  Lsn ArchiveHorizon() const;

  /// §4.1 extended AZ loss: drops the lost AZ's members from every PG and
  /// switches to the 3/4 quorum model so a further single failure no
  /// longer blocks writes.
  Status ShrinkAfterAzLossBlocking(AzId lost_az);

  /// Restores the 4/6 model with two fresh (hydrated) members per PG in
  /// `restored_az`.
  Status ExpandToSixBlocking(AzId restored_az);

  // -- Event-loop helpers --------------------------------------------------

  /// Runs the simulation until `pred` holds or `timeout` elapses.
  bool RunUntil(const std::function<bool()>& pred,
                SimDuration timeout = 0 /* = options.blocking_timeout */);
  void RunFor(SimDuration duration) { sim_.RunFor(duration); }

  const AuroraOptions& options() const { return options_; }
  const quorum::VolumeGeometry& geometry() const {
    return metadata_->geometry();
  }
  /// Volume `v`'s geometry (volume 0 = the legacy accessor above).
  const quorum::VolumeGeometry& geometry(VolumeId volume) const {
    return metadata_->geometry(volume);
  }

 private:
  quorum::PgConfig BuildPgConfig(ProtectionGroupId pg);
  /// Placement-service layout of one PG (multi-tenant mode): anti-affine
  /// members with fresh fleet-unique segment ids, tagged with `volume`.
  Result<quorum::PgConfig> PlacePgConfig(VolumeId volume,
                                         ProtectionGroupId pg);
  storage::NodeResolver MakeResolver();
  engine::ControlPlane MakeControlPlane(NodeId caller, VolumeId volume = 0);
  void CreateSegmentStores(const quorum::PgConfig& config);
  std::unique_ptr<engine::DbInstance> MakeWriter(NodeId id, AzId az,
                                                 VolumeId volume = 0);
  void WireReplica(replica::ReadReplica* rep);
  Status InstallPgConfigBlocking(const quorum::PgConfig& old_config,
                                 const quorum::PgConfig& new_config);
  /// Locates the config containing `segment` across all volumes.
  const quorum::PgConfig* FindConfigForSegment(SegmentId segment,
                                               VolumeId* volume_out) const;
  Status BootstrapWriterBlocking(engine::DbInstance* writer);

  AuroraOptions options_;
  sim::Simulator sim_;
  sim::Network network_;
  std::unique_ptr<storage::ObjectStore> object_store_;
  std::unique_ptr<sim::FailureInjector> failure_injector_;
  std::unique_ptr<MetadataService> metadata_;
  std::unique_ptr<PlacementService> placement_;
  std::vector<std::unique_ptr<storage::StorageNode>> storage_nodes_;
  std::map<NodeId, storage::StorageNode*> node_index_;
  std::unique_ptr<engine::DbInstance> writer_;
  /// Writers for volumes 1..N-1 (index v-1); empty in single-tenant mode.
  std::vector<std::unique_ptr<engine::DbInstance>> tenant_writers_;
  std::vector<std::unique_ptr<engine::DbInstance>> retired_writers_;
  std::vector<std::unique_ptr<replica::ReadReplica>> replicas_;

  NodeId next_node_id_ = 1;
  SegmentId next_segment_id_ = 0;
};

}  // namespace aurora::core
