#include "src/core/health_monitor.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/common/logging.h"
#include "src/core/cluster.h"
#include "src/engine/db_instance.h"
#include "src/sim/network.h"
#include "src/sim/rpc.h"
#include "src/sim/simulator.h"
#include "src/storage/messages.h"
#include "src/storage/storage_node.h"

namespace aurora::core {

HealthMonitor::HealthMonitor(AuroraCluster* cluster,
                             HealthMonitorOptions options)
    : cluster_(cluster), options_(options),
      live_(std::make_shared<HealthMonitor*>(this)) {
  auto& reg = metrics::Registry::Global();
  m_probes_ = reg.GetCounter("aurora.health.probes");
  m_probe_timeouts_ = reg.GetCounter("aurora.health.probe_timeouts");
  m_suspected_ = reg.GetCounter("aurora.health.suspected");
  m_suspects_ = reg.GetGauge("aurora.health.suspects");
  m_probe_rtt_us_ = reg.GetHistogram("aurora.health.probe_rtt_us");
}

void HealthMonitor::Start() {
  if (running_) return;
  running_ = true;
  ++generation_;
  Sweep();
}

HealthMonitor::~HealthMonitor() = default;
// ^ live_ dies here, so every deferred callback — the ack observer a
//   DbInstance persists (and re-applies to every rebuilt driver) as well
//   as simulator-queued sweep/probe/timeout events — fails its weak lock
//   and goes inert instead of touching a destroyed monitor.

void HealthMonitor::Stop() {
  if (!running_) return;
  running_ = false;
  ++generation_;
  // Detach from every volume's writer so a stopped monitor stops
  // consuming ack evidence immediately (a failover after Stop() would
  // otherwise re-install the stale lambda on the rebuilt driver).
  for (size_t volume = 0; volume < cluster_->VolumeCount(); ++volume) {
    if (auto* writer = cluster_->writer(static_cast<VolumeId>(volume))) {
      writer->SetAckObserver(nullptr);
    }
  }
}

bool HealthMonitor::IsSuspect(SegmentId id) const {
  auto it = health_.find(id);
  return it != health_.end() && it->second.suspected;
}

std::vector<SegmentId> HealthMonitor::Suspects() const {
  std::vector<SegmentId> out;
  for (const auto& [id, h] : health_) {
    if (h.suspected) out.push_back(id);
  }
  return out;
}

SimTime HealthMonitor::suspected_since(SegmentId id) const {
  auto it = health_.find(id);
  return it == health_.end() ? 0 : it->second.suspected_since;
}

SimTime HealthMonitor::last_suspected_at(SegmentId id) const {
  auto it = health_.find(id);
  return it == health_.end() ? 0 : it->second.last_suspected_at;
}

SimTime HealthMonitor::last_ok_at(SegmentId id) const {
  auto it = health_.find(id);
  return it == health_.end() ? 0 : it->second.last_ok_at;
}

SimDuration HealthMonitor::ProbeTimeoutFor(SegmentId id) const {
  auto it = health_.find(id);
  if (it == health_.end()) return options_.max_timeout;
  const SegmentHealth& h = it->second;
  const double raw = h.ewma_rtt_us + options_.jitter_mult * h.ewma_jitter_us;
  return std::clamp(static_cast<SimDuration>(std::llround(raw)),
                    options_.min_timeout, options_.max_timeout);
}

void HealthMonitor::ObserveAck(SegmentId id, bool ok) {
  if (!ok) return;
  auto it = health_.find(id);
  if (it == health_.end()) return;
  MarkHealthy(it->second);
}

void HealthMonitor::Sweep() {
  if (!running_) return;
  const uint64_t gen = generation_;
  // Each writer's storage driver is the richest liveness source for its
  // volume: every acked boxcar proves its segment alive. Observers are
  // re-installed each sweep because failover builds a fresh driver.
  // Segment ids are fleet-unique, so all volumes share one health table.
  for (size_t v = 0; v < cluster_->VolumeCount(); ++v) {
    auto* writer = cluster_->writer(static_cast<VolumeId>(v));
    if (writer == nullptr) continue;
    // The observer must not capture a raw `this`: DbInstance persists it
    // and re-applies it to every rebuilt driver, so it can fire after
    // this monitor is stopped or destroyed. The weak handle makes any
    // such late call a no-op instead of a use-after-free.
    std::weak_ptr<HealthMonitor*> weak = live_;
    writer->SetAckObserver([weak, gen](SegmentId seg, bool ok) {
      auto live = weak.lock();
      if (!live) return;
      HealthMonitor* self = *live;
      if (!self->running_ || gen != self->generation_) return;
      self->ObserveAck(seg, ok);
    });
  }
  std::set<SegmentId> current;
  size_t idx = 0;
  cluster_->ForEachPgConfig([&](VolumeId, const quorum::PgConfig& pg) {
    for (const auto& member : pg.AllMembers()) {
      current.insert(member.id);
      auto [it, fresh] = health_.try_emplace(member.id);
      if (fresh) {
        it->second.ewma_rtt_us = static_cast<double>(options_.initial_rtt);
        // Stagger first probes deterministically so six segments do not
        // heartbeat in one burst.
        ScheduleProbe(member.id, (idx % 6) * (options_.probe_interval / 6));
      }
      ++idx;
    }
  });
  for (auto it = health_.begin(); it != health_.end();) {
    if (current.contains(it->first)) {
      ++it;
    } else {
      it = health_.erase(it);
    }
  }
  UpdateSuspectGauge();
  std::weak_ptr<HealthMonitor*> weak = live_;
  cluster_->sim().Schedule(
      options_.probe_interval,
      [weak, gen]() {
        auto live = weak.lock();
        if (!live) return;
        HealthMonitor* self = *live;
        if (!self->running_ || gen != self->generation_) return;
        self->Sweep();
      },
      "health.sweep");
}

void HealthMonitor::ScheduleProbe(SegmentId id, SimDuration delay) {
  const uint64_t gen = generation_;
  std::weak_ptr<HealthMonitor*> weak = live_;
  cluster_->sim().Schedule(
      delay,
      [weak, gen, id]() {
        auto live = weak.lock();
        if (!live) return;
        HealthMonitor* self = *live;
        if (!self->running_ || gen != self->generation_) return;
        self->SendProbe(id);
      },
      "health.probe");
}

void HealthMonitor::SendProbe(SegmentId id) {
  auto it = health_.find(id);
  if (it == health_.end()) return;  // departed; the sweep erased it
  const quorum::SegmentInfo* info = nullptr;
  cluster_->ForEachPgConfig([&](VolumeId, const quorum::PgConfig& pg) {
    if (info == nullptr) info = pg.FindSegment(id);
  });
  if (info == nullptr) return;
  SegmentHealth& h = it->second;
  const uint64_t token = ++h.probe_token;
  h.probe_in_flight = true;
  ++probes_sent_;
  AURORA_COUNT(m_probes_, 1);
  const SimTime sent_at = cluster_->sim().Now();
  const uint64_t gen = generation_;
  // Every deferred callback below goes through the weak handle, never a
  // raw `this`: probe replies and timeouts can fire from the simulator
  // queue after the monitor is stopped or destroyed.
  std::weak_ptr<HealthMonitor*> weak = live_;
  cluster_->sim().Schedule(
      ProbeTimeoutFor(id),
      [weak, gen, id, token]() {
        auto live = weak.lock();
        if (!live) return;
        HealthMonitor* self = *live;
        if (!self->running_ || gen != self->generation_) return;
        self->OnProbeTimeout(id, token);
      },
      "health.probe_timeout");
  const NodeId target = info->node;
  storage::SegmentStateRequest request{id};
  sim::UnaryCall<storage::SegmentStateResponse>(
      &cluster_->network(), cluster_->metadata().id(), target,
      request.SerializedSize(),
      [cluster = cluster_, target,
       request](sim::ReplyFn<storage::SegmentStateResponse> reply) {
        storage::StorageNode* node = cluster->node(target);
        if (node == nullptr) {
          storage::SegmentStateResponse response;
          response.status = Status::Unavailable("unresolved node");
          reply(std::move(response));
          return;
        }
        node->HandleSegmentState(request, std::move(reply));
      },
      [](const storage::SegmentStateResponse& response) {
        return response.SerializedSize();
      },
      [weak, gen, id, token,
       sent_at](storage::SegmentStateResponse response) {
        auto live = weak.lock();
        if (!live) return;
        HealthMonitor* self = *live;
        if (!self->running_ || gen != self->generation_) return;
        self->OnProbeReply(id, token, sent_at, response);
      });
}

void HealthMonitor::OnProbeReply(
    SegmentId id, uint64_t token, SimTime sent_at,
    const storage::SegmentStateResponse& response) {
  auto hit = health_.find(id);
  if (hit == health_.end()) return;
  SegmentHealth& sh = hit->second;
  const bool current = token == sh.probe_token && sh.probe_in_flight;
  if (!response.status.ok()) {
    // An explicit error reply (e.g. the segment was dropped) counts
    // as a failed probe, but only for the probe still in flight.
    if (current) {
      sh.probe_in_flight = false;
      OnProbeFailure(sh);
      ScheduleProbe(id, BackoffInterval(sh));
    }
    return;
  }
  if (current) {
    sh.probe_in_flight = false;
    const double rtt = static_cast<double>(cluster_->sim().Now() - sent_at);
    const double alpha = options_.ewma_alpha;
    sh.ewma_jitter_us = (1.0 - alpha) * sh.ewma_jitter_us +
                        alpha * std::abs(rtt - sh.ewma_rtt_us);
    sh.ewma_rtt_us = (1.0 - alpha) * sh.ewma_rtt_us + alpha * rtt;
    AURORA_OBSERVE(m_probe_rtt_us_,
                   static_cast<SimDuration>(std::llround(rtt)));
    MarkHealthy(sh);
    ScheduleProbe(id, options_.probe_interval);
  } else {
    // Late success after its timeout already fired: the node is
    // slow, not dead — clear suspicion, but the timeout path owns
    // the next probe.
    MarkHealthy(sh);
  }
}

void HealthMonitor::OnProbeTimeout(SegmentId id, uint64_t token) {
  auto it = health_.find(id);
  if (it == health_.end()) return;
  SegmentHealth& h = it->second;
  if (token != h.probe_token || !h.probe_in_flight) return;
  h.probe_in_flight = false;
  ++probe_timeouts_;
  AURORA_COUNT(m_probe_timeouts_, 1);
  OnProbeFailure(h);
  ScheduleProbe(id, BackoffInterval(h));
}

void HealthMonitor::OnProbeFailure(SegmentHealth& h) {
  ++h.consecutive_failures;
  h.backoff_shift = std::min(h.backoff_shift + 1, options_.max_backoff_shift);
  if (!h.suspected && h.consecutive_failures >= options_.suspect_after) {
    h.suspected = true;
    h.suspected_since = cluster_->sim().Now();
    h.last_suspected_at = h.suspected_since;
    ++suspicions_declared_;
    AURORA_COUNT(m_suspected_, 1);
    UpdateSuspectGauge();
  }
}

void HealthMonitor::MarkHealthy(SegmentHealth& h) {
  h.consecutive_failures = 0;
  h.backoff_shift = 0;
  h.last_ok_at = cluster_->sim().Now();
  if (h.suspected) {
    h.suspected = false;
    h.suspected_since = 0;
    UpdateSuspectGauge();
  }
}

SimDuration HealthMonitor::BackoffInterval(const SegmentHealth& h) const {
  return options_.probe_interval << h.backoff_shift;
}

void HealthMonitor::UpdateSuspectGauge() {
  int64_t suspects = 0;
  for (const auto& [id, h] : health_) {
    if (h.suspected) ++suspects;
  }
  AURORA_GAUGE_SET(m_suspects_, suspects);
}

}  // namespace aurora::core
