// Fleet placement service for the multi-tenant storage fleet
// (DESIGN.md §11).
//
// One segment fleet hosts protection groups from MANY volumes. The
// placement service decides which servers host which segments, under two
// anti-affinity rules:
//
//   1. AZ spread: each PG places an equal share of its members in every
//      registered AZ (2 per AZ for the 6-way quorum), so a whole-AZ loss
//      removes at most that share (§2.1's "AZ+1" tolerance).
//   2. Server spread: no two members of the same PG ever share a server —
//      a single server loss costs a PG at most one segment.
//
// Within those rules placement is least-loaded-first: candidates sort by
// (hosted segment count, node id). The node-id tie-break makes every
// decision a pure function of fleet state — no RNG, no clock — so
// placement can never perturb the deterministic event schedule, and
// re-running a seed re-derives the identical layout.
//
// The service deliberately holds NO load state of its own: the cluster
// injects a load probe (`SetLoadSource`) and a liveness probe
// (`SetLiveness`) that read fleet ground truth at decision time. That
// removes a whole class of double-bookkeeping bugs (repair adds a
// segment, placement forgets to hear about it) at the price of the
// probes being cheap, which they are in-simulation.
//
// The repair planner consumes `PickReplacement` for replacement
// candidates and `PlanRebalance` to enumerate the displaced segments of a
// lost server; both honor the same two rules.

#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/quorum/membership.h"

namespace aurora::core {

struct PlacementOptions {
  /// Segment copies of one PG placed in each registered AZ (6-way quorum
  /// over 3 AZs = 2 per AZ).
  size_t copies_per_az = 2;
};

class PlacementService {
 public:
  /// Returns hosted-segment count for a server (fleet ground truth).
  using LoadFn = std::function<size_t(NodeId)>;
  /// Returns whether a server is currently up.
  using LivenessFn = std::function<bool(NodeId)>;

  explicit PlacementService(PlacementOptions options = {});

  /// Adds a segment server to the placement universe.
  void RegisterServer(NodeId node, AzId az);

  /// Injects the fleet ground-truth probes. Until set, load defaults to 0
  /// for every server and every server counts as up.
  void SetLoadSource(LoadFn load);
  void SetLiveness(LivenessFn is_up);

  size_t ServerCount() const { return servers_.size(); }
  /// Registered AZs, ascending.
  std::vector<AzId> Azs() const;
  /// Registered servers in `az`, ascending by node id.
  const std::vector<NodeId>& ServersIn(AzId az) const;

  /// Places one protection group for `volume`: `copies_per_az` members in
  /// each registered AZ, each on a distinct least-loaded live server
  /// (rule 2 checked fleet-wide, not just per AZ). `alloc_id` must return
  /// fresh fleet-unique segment ids; it is called once per member, in
  /// slot order. Under kFullTail the first member per AZ is full and the
  /// second is a tail segment, mirroring the legacy 3-full/3-tail shape.
  /// Fails if any AZ lacks `copies_per_az` distinct live servers.
  Result<std::vector<quorum::SegmentInfo>> PlacePg(
      VolumeId volume, quorum::QuorumModel model,
      const std::function<SegmentId()>& alloc_id) const;

  /// Replacement host for a failed member of `config` living in `az`: the
  /// least-loaded live server in that AZ not hosting any member of the
  /// PG. Falls back to a down non-member server (repair can begin the
  /// membership change and hydrate when it returns); fails only if every
  /// server in the AZ already hosts a member.
  Result<NodeId> PickReplacement(const quorum::PgConfig& config,
                                 AzId az) const;

  /// One segment displaced by a server loss, with a replacement host
  /// suggestion (kInvalidNode if no host satisfies anti-affinity).
  struct Displaced {
    VolumeId volume = 0;
    ProtectionGroupId pg = 0;
    SegmentId segment = kInvalidSegment;
    AzId az = 0;
    NodeId suggested_host = kInvalidNode;
  };

  /// Rebalance plan after losing `lost`: for every member of `configs`
  /// hosted there, a replacement suggestion via PickReplacement. Pure
  /// planning — callers (tests, the repair path) execute the moves.
  std::vector<Displaced> PlanRebalance(
      NodeId lost, const std::vector<quorum::PgConfig>& configs) const;

 private:
  size_t LoadOf(NodeId node) const;
  bool IsUp(NodeId node) const;
  /// Least-loaded server in `az` excluding `exclude`; prefers live
  /// servers, falls back to down ones unless `require_up`.
  NodeId PickLeastLoaded(AzId az, const std::set<NodeId>& exclude,
                         bool require_up) const;

  PlacementOptions options_;
  LoadFn load_;
  LivenessFn is_up_;
  std::map<NodeId, AzId> servers_;
  std::map<AzId, std::vector<NodeId>> by_az_;
};

}  // namespace aurora::core
