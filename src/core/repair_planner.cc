#include "src/core/repair_planner.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/core/cluster.h"
#include "src/core/health_monitor.h"
#include "src/sim/network.h"
#include "src/sim/rpc.h"
#include "src/sim/simulator.h"
#include "src/storage/messages.h"
#include "src/storage/segment_store.h"
#include "src/storage/storage_node.h"

namespace aurora::core {

namespace {
/// SCL probes from this many hydrated members establish the hydration
/// target (a read quorum under V=6/Vr=3; §2.1).
constexpr size_t kSclProbeQuorum = 3;
}  // namespace

RepairPlanner::RepairPlanner(AuroraCluster* cluster, HealthMonitor* monitor,
                             RepairPlannerOptions options)
    : cluster_(cluster), monitor_(monitor), options_(options) {
  auto& reg = metrics::Registry::Global();
  m_begun_ = reg.GetCounter("aurora.repair.begun");
  m_committed_ = reg.GetCounter("aurora.repair.committed");
  m_reverted_ = reg.GetCounter("aurora.repair.reverted");
  m_failed_ = reg.GetCounter("aurora.repair.failed");
  m_active_ = reg.GetGauge("aurora.repair.active");
  m_mttr_us_ = reg.GetHistogram("aurora.repair.mttr_us");
}

void RepairPlanner::Start() {
  if (running_) return;
  running_ = true;
  ++generation_;
  Tick();
}

void RepairPlanner::Stop() {
  if (!running_) return;
  running_ = false;
  ++generation_;
}

const quorum::PgConfig* RepairPlanner::FindConfig(SegmentId segment,
                                                 VolumeId* volume) const {
  const quorum::PgConfig* found = nullptr;
  cluster_->ForEachPgConfig([&](VolumeId v, const quorum::PgConfig& pg) {
    if (found == nullptr && pg.ContainsSegment(segment)) {
      found = &pg;
      if (volume != nullptr) *volume = v;
    }
  });
  return found;
}

size_t RepairPlanner::JobsInAz(AzId az) const {
  size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.az == az) ++n;
  }
  return n;
}

size_t RepairPlanner::JobsOnServer(NodeId node) const {
  size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.host_node == node) ++n;
  }
  return n;
}

bool RepairPlanner::PgHasJob(VolumeId volume, ProtectionGroupId pg) const {
  for (const auto& [id, job] : jobs_) {
    if (job.volume == volume && job.pg == pg) return true;
  }
  return false;
}

void RepairPlanner::Tick() {
  if (!running_) return;
  AdvanceJobs();
  StartNewJobs();
  AURORA_GAUGE_SET(m_active_, jobs_.size());
  const uint64_t gen = generation_;
  cluster_->sim().Schedule(
      options_.tick_interval,
      [this, gen]() {
        if (gen != generation_) return;
        Tick();
      },
      "repair.tick");
}

void RepairPlanner::StartNewJobs() {
  const SimTime now = cluster_->sim().Now();
  // Suspects compete for bounded job slots, so rank candidates before
  // claiming any: most-degraded PG first (a group one failure from losing
  // write quorum outranks a single slow segment, whichever tenant it
  // belongs to), ties broken by (volume, pg, suspect id) so the order is
  // a pure function of cluster state.
  struct Candidate {
    SegmentId suspect = kInvalidSegment;
    const quorum::PgConfig* config = nullptr;
    VolumeId volume = 0;
    size_t degraded = 0;
  };
  std::vector<Candidate> candidates;
  for (SegmentId suspect : monitor_->Suspects()) {
    if (jobs_.contains(suspect)) continue;
    Candidate c;
    c.suspect = suspect;
    c.config = FindConfig(suspect, &c.volume);
    if (c.config == nullptr) continue;  // already replaced / departed
    for (const auto& member : c.config->AllMembers()) {
      if (monitor_->IsSuspect(member.id)) ++c.degraded;
    }
    candidates.push_back(c);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.degraded != b.degraded) return a.degraded > b.degraded;
              if (a.volume != b.volume) return a.volume < b.volume;
              if (a.config->pg() != b.config->pg()) {
                return a.config->pg() < b.config->pg();
              }
              return a.suspect < b.suspect;
            });
  for (const Candidate& c : candidates) {
    if (jobs_.size() >= options_.max_concurrent_total) break;
    const quorum::PgConfig* config = c.config;
    // One job per PG: the slot machinery supports nested changes, but
    // bounded eager repair keeps blast radius small, and a reverted or
    // committed job frees the group within a couple of ticks anyway.
    if (config->HasPendingChange() || PgHasJob(c.volume, config->pg())) {
      continue;
    }
    const quorum::SegmentInfo* info = config->FindSegment(c.suspect);
    if (info == nullptr) continue;
    if (JobsInAz(info->az) >= options_.max_concurrent_per_az) continue;
    RepairJob job;
    job.old_segment = c.suspect;
    job.volume = c.volume;
    job.pg = config->pg();
    job.az = info->az;
    job.state = JobState::kProbing;
    job.decided_at = now;
    job.suspected_since = monitor_->suspected_since(c.suspect);
    job.probe_deadline = now + options_.probe_window;
    job.deadline = now + options_.job_deadline;
    jobs_.emplace(c.suspect, std::move(job));
    ++stats_.jobs_started;
    ProbeScls(c.suspect);
  }
}

void RepairPlanner::ProbeScls(SegmentId old_segment) {
  const quorum::PgConfig* config = FindConfig(old_segment);
  if (config == nullptr) return;
  const uint64_t gen = generation_;
  for (const auto& member : config->AllMembers()) {
    storage::SegmentStateRequest request{member.id};
    const SegmentId responder = member.id;
    const NodeId target = member.node;
    sim::UnaryCall<storage::SegmentStateResponse>(
        &cluster_->network(), cluster_->metadata().id(), target,
        request.SerializedSize(),
        [cluster = cluster_, target,
         request](sim::ReplyFn<storage::SegmentStateResponse> reply) {
          storage::StorageNode* node = cluster->node(target);
          if (node == nullptr) {
            storage::SegmentStateResponse response;
            response.status = Status::Unavailable("unresolved node");
            reply(std::move(response));
            return;
          }
          node->HandleSegmentState(request, std::move(reply));
        },
        [](const storage::SegmentStateResponse& response) {
          return response.SerializedSize();
        },
        [this, gen, old_segment,
         responder](storage::SegmentStateResponse response) {
          if (gen != generation_) return;
          auto it = jobs_.find(old_segment);
          if (it == jobs_.end() ||
              it->second.state != JobState::kProbing) {
            return;
          }
          if (!response.status.ok() || !response.hydrated) return;
          // Deduplicate by responder: the quorum gate counts DISTINCT
          // hydrated members, so a repeat reply across re-probe rounds
          // (or a stale duplicate from an earlier round) only refreshes
          // the max, never the count.
          it->second.target_scl =
              std::max(it->second.target_scl, response.scl);
          it->second.probe_responders.insert(responder);
        });
  }
}

void RepairPlanner::AdvanceJobs() {
  const SimTime now = cluster_->sim().Now();
  std::vector<SegmentId> ids;
  ids.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) ids.push_back(id);
  for (SegmentId id : ids) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    RepairJob& job = it->second;
    switch (job.state) {
      case JobState::kProbing: {
        if (!monitor_->IsSuspect(id)) {
          // The suspect acked again before membership was touched.
          ++stats_.aborted_before_begin;
          jobs_.erase(it);
          break;
        }
        if (job.probe_responders.size() >= kSclProbeQuorum) {
          BeginChange(job);
          break;
        }
        if (now >= job.deadline) {
          // Never reached a read quorum of hydrated SCLs — the group is
          // unreachable; give up and let suspicion re-trigger later.
          ++stats_.failed;
          AURORA_COUNT(m_failed_, 1);
          jobs_.erase(it);
          break;
        }
        if (now >= job.probe_deadline) {
          job.probe_deadline = now + options_.probe_window;
          ProbeScls(id);
        }
        break;
      }
      case JobState::kBeginInstall: {
        if (job.install_in_flight) break;
        if (!monitor_->IsSuspect(id)) {
          // Figure-5 roll-back from the first step: the suspect acked
          // again while the begin install was still propagating. The
          // revert config is strictly newer than anything the begin
          // leaked, so installing it reconverges every node either way.
          auto revert = job.pending_config->RevertReplace(id);
          if (revert.ok()) {
            job.state = JobState::kRevertInstall;
            job.exit_config = std::move(*revert);
            StartInstall(job);
            break;
          }
        }
        if (now >= job.deadline) {
          // The epoch+1 install never reached quorum (some nodes may
          // still hold it). Roll back: the revert config is strictly
          // newer than anything the begin attempt leaked, so installing
          // it reconverges every node and the metadata service.
          auto revert = job.pending_config->RevertReplace(id);
          if (!revert.ok()) break;
          job.state = JobState::kRevertInstall;
          job.exit_config = std::move(*revert);
          StartInstall(job);
          break;
        }
        StartInstall(job);
        break;
      }
      case JobState::kHydrating: {
        if (job.install_in_flight) break;
        if (!monitor_->IsSuspect(id) || now >= job.deadline) {
          // Figure-5 roll-back: the suspect acked again (or placement is
          // going nowhere and a fresh job should pick a new host).
          auto revert = job.pending_config->RevertReplace(id);
          if (!revert.ok()) break;
          job.state = JobState::kRevertInstall;
          job.exit_config = std::move(*revert);
          StartInstall(job);
          break;
        }
        storage::StorageNode* host = cluster_->node(job.host_node);
        storage::SegmentStore* store =
            host != nullptr ? host->FindSegment(job.new_segment) : nullptr;
        if (store == nullptr) break;
        if (store->hydrated()) {
          // Figure-5 roll-forward.
          auto commit = job.pending_config->CommitReplace(id);
          if (!commit.ok()) break;
          job.state = JobState::kCommitInstall;
          job.exit_config = std::move(*commit);
          StartInstall(job);
          break;
        }
        if (now - job.last_pull_at >= options_.hydration_retry &&
            cluster_->network().IsUp(job.host_node)) {
          job.last_pull_at = now;
          host->StartHydrationPull(job.new_segment);
        }
        break;
      }
      case JobState::kCommitInstall:
      case JobState::kRevertInstall: {
        if (job.install_in_flight) break;
        // Exit installs retry until they land: once a transition has
        // leaked to any node, only driving the config forward keeps the
        // fleet and the metadata service convergent.
        StartInstall(job);
        break;
      }
    }
  }
}

void RepairPlanner::BeginChange(RepairJob& job) {
  VolumeId volume = 0;
  const quorum::PgConfig* config = FindConfig(job.old_segment, &volume);
  if (config == nullptr || config->HasPendingChange() ||
      config->FindSegment(job.old_segment) == nullptr) {
    ++stats_.aborted_before_begin;
    jobs_.erase(job.old_segment);
    return;
  }
  const quorum::SegmentInfo* old_info = config->FindSegment(job.old_segment);
  storage::StorageNode* host =
      cluster_->PickNodeForNewSegment(old_info->az, *config);
  if (host == nullptr || !cluster_->network().IsUp(host->id())) {
    // No live host in the AZ right now; keep probing and retry.
    job.probe_deadline = cluster_->sim().Now() + options_.probe_window;
    return;
  }
  if (JobsOnServer(host->id()) >= options_.max_concurrent_per_server) {
    // The best host already carries its fill of hydration pulls; defer
    // rather than pile another full-prefix pull onto it.
    job.probe_deadline = cluster_->sim().Now() + options_.probe_window;
    return;
  }
  quorum::SegmentInfo new_info;
  new_info.id = cluster_->AllocateSegmentId();
  new_info.node = host->id();
  new_info.az = old_info->az;
  new_info.is_full = old_info->is_full;
  new_info.volume = old_info->volume;
  auto next = config->BeginReplace(job.old_segment, new_info);
  if (!next.ok()) {
    ++stats_.failed;
    AURORA_COUNT(m_failed_, 1);
    jobs_.erase(job.old_segment);
    return;
  }
  host->AddSegment(new_info, config->pg(), *next,
                   cluster_->metadata().volume_epoch(volume),
                   /*hydrated=*/false);
  host->FindSegment(new_info.id)->BeginHydration(job.target_scl);
  job.new_segment = new_info.id;
  job.host_node = host->id();
  job.pending_config = std::move(*next);
  job.state = JobState::kBeginInstall;
  AURORA_DEBUG << "repair: begin replace seg=" << job.old_segment
               << " with seg=" << job.new_segment << " on node "
               << job.host_node << " (pg " << job.pg << ")";
  StartInstall(job);
}

void RepairPlanner::StartInstall(RepairJob& job) {
  const quorum::PgConfig* base = nullptr;
  const quorum::PgConfig* target = nullptr;
  if (job.state == JobState::kBeginInstall) {
    base = FindConfig(job.old_segment);
    target = &*job.pending_config;
    // If metadata already shows the pending config (install landed but the
    // quorum callback lost a race with a timeout), skip straight ahead.
    if (base != nullptr && base->epoch() >= target->epoch()) {
      job.state = JobState::kHydrating;
      return;
    }
    if (base == nullptr) return;
  } else {
    base = &*job.pending_config;
    target = &*job.exit_config;
  }
  job.install_in_flight = true;
  ++job.install_attempts;
  const uint64_t gen = generation_;
  const SegmentId old_id = job.old_segment;
  cluster_->InstallPgConfigAsync(
      *base, *target,
      [this, gen, old_id](Status st) {
        if (gen != generation_) return;
        auto it = jobs_.find(old_id);
        if (it == jobs_.end()) return;
        RepairJob& job = it->second;
        job.install_in_flight = false;
        if (!st.ok()) return;  // next tick retries the same install
        switch (job.state) {
          case JobState::kBeginInstall: {
            job.state = JobState::kHydrating;
            ++stats_.begun;
            AURORA_COUNT(m_begun_, 1);
            if (auto* host = cluster_->node(job.host_node)) {
              job.last_pull_at = cluster_->sim().Now();
              host->StartHydrationPull(job.new_segment);
            }
            break;
          }
          case JobState::kCommitInstall:
            FinishCommit(job);
            break;
          case JobState::kRevertInstall:
            FinishRevert(job);
            break;
          default:
            break;
        }
      },
      options_.install_timeout);
}

void RepairPlanner::FinishCommit(RepairJob& job) {
  if (auto* host = cluster_->NodeForSegment(job.old_segment)) {
    host->DropSegment(job.old_segment);
  }
  const SimTime now = cluster_->sim().Now();
  const SimTime base =
      job.suspected_since > 0 ? job.suspected_since : job.decided_at;
  mttr_.Record(now - base);
  AURORA_OBSERVE(m_mttr_us_, now - base);
  ++stats_.committed;
  AURORA_COUNT(m_committed_, 1);
  AURORA_DEBUG << "repair: committed seg=" << job.old_segment << " -> seg="
               << job.new_segment << " mttr_us=" << (now - base);
  jobs_.erase(job.old_segment);
}

void RepairPlanner::FinishRevert(RepairJob& job) {
  if (auto* host = cluster_->node(job.host_node)) {
    host->DropSegment(job.new_segment);
  }
  ++stats_.reverted;
  AURORA_COUNT(m_reverted_, 1);
  AURORA_DEBUG << "repair: reverted seg=" << job.old_segment
               << " (replacement seg=" << job.new_segment << " dropped)";
  jobs_.erase(job.old_segment);
}

}  // namespace aurora::core
