#include "src/core/session.h"

#include <memory>
#include <utility>

#include "src/common/metrics.h"
#include "src/core/cluster.h"

namespace aurora::core {

namespace {

struct SessionMetrics {
  metrics::Counter* reads;
  metrics::Counter* replica_served;
  metrics::Counter* writer_fallbacks;
  Histogram* latency_us;
};
SessionMetrics& M() {
  static SessionMetrics m = [] {
    auto& r = metrics::Registry::Global();
    return SessionMetrics{r.GetCounter("aurora.read.session_reads"),
                          r.GetCounter("aurora.read.session_replica_reads"),
                          r.GetCounter("aurora.read.session_fallbacks"),
                          r.GetHistogram("aurora.read.session_read_us")};
  }();
  return m;
}

/// One-shot arbitration between the normal completion path and the
/// watchdog (messages lost to crashes or partitions never complete).
struct OpGuard {
  bool done = false;
};

constexpr uint64_t kRequestBytes = 64;

}  // namespace

ClientSession::ClientSession(AuroraCluster* cluster, AzId az,
                             SessionOptions options)
    : cluster_(cluster),
      node_(cluster->RegisterClientNode(az)),
      az_(az),
      options_(options),
      rr_cursor_(options.replica_offset) {}

replica::ReadReplica* ClientSession::PickReplica() {
  const auto& fleet = cluster_->replicas();
  if (fleet.empty()) return nullptr;
  for (size_t i = 0; i < fleet.size(); ++i) {
    replica::ReadReplica* rep =
        fleet[(rr_cursor_ + i) % fleet.size()].get();
    if (cluster_->network().IsUp(rep->id()) && rep->vdl() != kInvalidLsn) {
      rr_cursor_ = (rr_cursor_ + i + 1) % fleet.size();
      return rep;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

void ClientSession::Put(const std::string& key, const std::string& value,
                        std::function<void(Status)> cb) {
  stats_.puts++;
  auto guard = std::make_shared<OpGuard>();
  auto done = [guard, cb = std::move(cb)](Status st) {
    if (guard->done) return;
    guard->done = true;
    cb(std::move(st));
  };
  cluster_->sim().Schedule(options_.op_timeout, [done]() {
    done(Status::TimedOut("session put timed out"));
  });
  engine::DbInstance* writer = cluster_->writer();
  if (writer == nullptr) {
    done(Status::Unavailable("no writer"));
    return;
  }
  sim::Network& net = cluster_->network();
  net.Send(
      node_, writer->id(), kRequestBytes + key.size() + value.size(),
      [this, writer, key, value, done]() {
        const TxnId txn = writer->Begin();
        writer->Put(txn, key, value, [this, writer, txn,
                                      done](Status st) mutable {
          if (!st.ok()) {
            cluster_->network().Send(writer->id(), node_, kRequestBytes,
                                     [done, st]() { done(st); });
            return;
          }
          writer->Commit(txn, [this, writer, txn,
                               done](Status commit_st) mutable {
            Lsn scn = kInvalidLsn;
            if (commit_st.ok()) {
              if (auto s = writer->txns().CommitScnOf(txn)) scn = *s;
            }
            cluster_->network().Send(
                writer->id(), node_, kRequestBytes,
                [this, scn, commit_st, done]() {
                  // The ack carries the commit SCN: the session anchor
                  // only ever advances (read-your-writes).
                  if (commit_st.ok() && scn != kInvalidLsn &&
                      (anchor_ == kInvalidLsn || scn > anchor_)) {
                    anchor_ = scn;
                  }
                  done(commit_st);
                });
          });
        });
      });
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

void ClientSession::RunAtWriterAnchor(
    Lsn anchor, SimTime deadline, std::function<void(engine::DbInstance*)> op,
    std::function<void()> fail) {
  // Runs on the writer's shard (callers reach it via one network hop).
  // VDL >= anchor is required even here: the writer acks a commit at
  // VCL >= SCN, but statement views anchor at VDL, which can trail SCN
  // for a beat.
  engine::DbInstance* writer = cluster_->writer();
  if (writer != nullptr && writer->IsOpen() &&
      (anchor == kInvalidLsn || writer->vdl() >= anchor)) {
    op(writer);
    return;
  }
  if (cluster_->sim().Now() >= deadline) {
    fail();
    return;
  }
  cluster_->sim().Schedule(
      options_.writer_poll,
      [this, anchor, deadline, op = std::move(op), fail = std::move(fail)]() {
        RunAtWriterAnchor(anchor, deadline, std::move(op), std::move(fail));
      });
}

void ClientSession::GetFromWriter(
    const std::string& key, Lsn anchor, SimTime deadline,
    std::function<void(Result<std::string>)> cb) {
  engine::DbInstance* writer = cluster_->writer();
  if (writer == nullptr) {
    cb(Status::Unavailable("no writer"));
    return;
  }
  sim::Network& net = cluster_->network();
  net.Send(node_, writer->id(), kRequestBytes + key.size(),
           [this, key, anchor, deadline, cb = std::move(cb)]() mutable {
             RunAtWriterAnchor(
                 anchor, deadline,
                 [this, key, cb](engine::DbInstance* writer) {
                   writer->Get(
                       kInvalidTxn, key,
                       [this, writer, cb](Result<std::string> r) {
                         cluster_->network().Send(
                             writer->id(), node_, kRequestBytes,
                             [cb, r = std::move(r)]() { cb(r); });
                       });
                 },
                 [cb]() {
                   cb(Status::TimedOut("writer did not reach the anchor"));
                 });
           });
}

void ClientSession::Get(const std::string& key,
                        std::function<void(Result<std::string>)> cb) {
  stats_.gets++;
  AURORA_COUNT(M().reads, 1);
  const SimTime start = cluster_->sim().Now();
  const SimTime deadline = start + options_.op_timeout;
  const Lsn anchor = anchor_;
  auto guard = std::make_shared<OpGuard>();
  auto done = [this, guard, start,
               cb = std::move(cb)](Result<std::string> r) {
    if (guard->done) return;
    guard->done = true;
    AURORA_OBSERVE(M().latency_us, cluster_->sim().Now() - start);
    cb(std::move(r));
  };
  cluster_->sim().Schedule(options_.op_timeout, [done]() {
    done(Status::TimedOut("session get timed out"));
  });
  replica::ReadReplica* rep = PickReplica();
  if (rep == nullptr) {
    stats_.writer_fallbacks++;
    AURORA_COUNT(M().writer_fallbacks, 1);
    GetFromWriter(key, anchor, deadline, done);
    return;
  }
  sim::Network& net = cluster_->network();
  net.Send(
      node_, rep->id(), kRequestBytes + key.size(),
      [this, rep, key, anchor, deadline, done]() {
        rep->GetAtAnchor(
            key, anchor,
            [this, rep, key, anchor, deadline,
             done](Result<std::string> r) mutable {
              cluster_->network().Send(
                  rep->id(), node_, kRequestBytes,
                  [this, key, anchor, deadline, done,
                   r = std::move(r)]() mutable {
                    if (r.ok() || r.status().IsNotFound()) {
                      stats_.replica_reads++;
                      AURORA_COUNT(M().replica_served, 1);
                      done(std::move(r));
                      return;
                    }
                    // Replica could not serve the anchor (lag, crash,
                    // invalidation storm): the writer always can.
                    stats_.writer_fallbacks++;
                    AURORA_COUNT(M().writer_fallbacks, 1);
                    GetFromWriter(key, anchor, deadline, done);
                  });
            });
      });
}

void ClientSession::ScanFromWriter(
    const std::string& lo, const std::string& hi, size_t limit, Lsn anchor,
    SimTime deadline,
    std::function<
        void(Result<std::vector<std::pair<std::string, std::string>>>)>
        cb) {
  engine::DbInstance* writer = cluster_->writer();
  if (writer == nullptr) {
    cb(Status::Unavailable("no writer"));
    return;
  }
  sim::Network& net = cluster_->network();
  net.Send(
      node_, writer->id(), kRequestBytes + lo.size() + hi.size(),
      [this, lo, hi, limit, anchor, deadline, cb = std::move(cb)]() mutable {
        RunAtWriterAnchor(
            anchor, deadline,
            [this, lo, hi, limit, cb](engine::DbInstance* writer) {
              writer->Scan(
                  kInvalidTxn, lo, hi, limit,
                  [this, writer,
                   cb](Result<
                       std::vector<std::pair<std::string, std::string>>>
                           r) {
                    cluster_->network().Send(
                        writer->id(), node_, kRequestBytes,
                        [cb, r = std::move(r)]() { cb(r); });
                  });
            },
            [cb]() {
              cb(Status::TimedOut("writer did not reach the anchor"));
            });
      });
}

void ClientSession::Scan(
    const std::string& lo, const std::string& hi, size_t limit,
    std::function<
        void(Result<std::vector<std::pair<std::string, std::string>>>)>
        cb) {
  stats_.scans++;
  AURORA_COUNT(M().reads, 1);
  const SimTime start = cluster_->sim().Now();
  const SimTime deadline = start + options_.op_timeout;
  const Lsn anchor = anchor_;
  auto guard = std::make_shared<OpGuard>();
  auto done =
      [this, guard, start, cb = std::move(cb)](
          Result<std::vector<std::pair<std::string, std::string>>> r) {
        if (guard->done) return;
        guard->done = true;
        AURORA_OBSERVE(M().latency_us, cluster_->sim().Now() - start);
        cb(std::move(r));
      };
  cluster_->sim().Schedule(options_.op_timeout, [done]() {
    done(Status::TimedOut("session scan timed out"));
  });
  replica::ReadReplica* rep = PickReplica();
  if (rep == nullptr) {
    stats_.writer_fallbacks++;
    AURORA_COUNT(M().writer_fallbacks, 1);
    ScanFromWriter(lo, hi, limit, anchor, deadline, done);
    return;
  }
  sim::Network& net = cluster_->network();
  net.Send(
      node_, rep->id(), kRequestBytes + lo.size() + hi.size(),
      [this, rep, lo, hi, limit, anchor, deadline, done]() {
        rep->ScanAtAnchor(
            lo, hi, limit, anchor,
            [this, rep, lo, hi, limit, anchor, deadline, done](
                Result<std::vector<std::pair<std::string, std::string>>>
                    r) mutable {
              cluster_->network().Send(
                  rep->id(), node_, kRequestBytes,
                  [this, lo, hi, limit, anchor, deadline, done,
                   r = std::move(r)]() mutable {
                    if (r.ok()) {
                      stats_.replica_reads++;
                      AURORA_COUNT(M().replica_served, 1);
                      done(std::move(r));
                      return;
                    }
                    stats_.writer_fallbacks++;
                    AURORA_COUNT(M().writer_fallbacks, 1);
                    ScanFromWriter(lo, hi, limit, anchor, deadline, done);
                  });
            });
      });
}

}  // namespace aurora::core
