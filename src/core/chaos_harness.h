// Schedule-driven chaos harness: generate, execute, capture, replay, and
// shrink randomized failure schedules against a full cluster.
//
// The chaos suite's randomized runs used to be welded into the test
// binary; this harness turns a run into data so the same schedule can be
// (a) executed under the invariant auditor, (b) captured as a trace
// (src/sim/trace.h), (c) re-executed bit-identically from that trace, and
// (d) delta-debugged down to a minimal reproducer (src/sim/shrink.h) when
// it trips an invariant. `tests/chaos_audit_test.cc` drives it for the
// 50-seed sweep; `tools/aurora_shrink` drives it from captured trace
// files.
//
// Determinism contract: every stochastic choice is drawn at GENERATION
// time and stored in the op (ChaosOp::pick_*); execution maps picks onto
// runtime state (e.g. pick modulo the current node count). Executing the
// same schedule therefore always produces the same simulation, and
// dropping an op never re-randomizes the ops after it — the property the
// shrinker's subset replays rely on.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/invariant_auditor.h"
#include "src/sim/trace.h"

namespace aurora::core {

/// One chaos operation. Kinds mirror the fault vocabulary of the original
/// chaos test; the two poison ops exist to give the shrinker tests a known
/// minimal violation (they corrupt VDL via the test-only tracker hook, and
/// only when both are present — a deliberate 2-op bug).
enum class ChaosOpKind {
  kPut,                 ///< autocommit write; pick_a chooses the key
  kCrashOrRestartNode,  ///< pick_a: restart-vs-crash coin, pick_b: node
  kTogglePartition,     ///< pick_a: storage node to (un)partition from writer
  kCorruptRecord,       ///< pick_a: segment store, pick_b: record
  kWriterCrashRecover,  ///< crash the writer, heal, recover
  kReplaceSegment,      ///< pick_a: PG, pick_b: member slot
  kAzBlip,              ///< pick_a: AZ, pick_b: blip duration (ms)
  kPoisonVdlArm,        ///< test-only: arms the VDL poison
  kPoisonVdlFire,       ///< test-only: if armed, forces VDL above VCL
};

struct ChaosOp {
  ChaosOpKind kind = ChaosOpKind::kPut;
  uint64_t pick_a = 0;
  uint64_t pick_b = 0;
  /// Virtual time the harness runs after the op (pre-drawn, so dropping an
  /// op also drops its advance — and the shrinker can tighten these).
  SimDuration advance = 0;

  sim::FaultOp ToFaultOp() const;
  static Result<ChaosOp> FromFaultOp(const sim::FaultOp& op);

  bool operator==(const ChaosOp&) const = default;
};

/// A complete, self-contained chaos run: the cluster seed plus the op list.
struct ChaosSchedule {
  uint64_t seed = 0;
  std::vector<ChaosOp> ops;
};

/// Draws a `num_ops`-op schedule with the chaos suite's historical op mix
/// (50% writes, the rest faults). Deterministic in `seed`.
ChaosSchedule GenerateChaosSchedule(uint64_t seed, int num_ops);

struct ChaosRunOptions {
  /// Capture the run (ops, executed events, summary) into this trace.
  sim::Trace* record = nullptr;
  /// Verify the run's event schedule against a previously captured trace.
  const sim::Trace* replay = nullptr;
  /// Stop executing ops at the first audit violation (the remaining
  /// schedule can only obscure the root cause; heal/drain are skipped too).
  bool stop_at_first_violation = true;
  /// Run the end-of-run durability contract (every acked key reads back at
  /// or after its last acknowledged write). Skipped after violations.
  bool check_durability = true;
};

struct ChaosRunResult {
  /// Harness-level failure (cluster would not start / recover). Not a
  /// protocol violation — the run is inconclusive, not red.
  Status status = Status::OK();
  /// Durability-contract breaches (empty means the contract held).
  std::vector<std::string> errors;
  /// Audit violations, in detection order, with snapshots.
  std::vector<AuditViolation> violations;

  /// Determinism fingerprint of the executed schedule plus the run's final
  /// consistency points — what trace replay must reproduce bit-identically.
  uint64_t fingerprint = 0;
  Lsn vcl = kInvalidLsn;
  Lsn vdl = kInvalidLsn;
  uint64_t executed_events = 0;
  SimTime end_time = 0;

  /// Replay-check outcome (only meaningful when options.replay was set).
  bool replay_diverged = false;
  std::string replay_divergence;

  bool ok() const {
    return status.ok() && errors.empty() && violations.empty() &&
           !replay_diverged;
  }
};

/// Executes `schedule` on a fresh cluster with the invariant auditor
/// attached at every event. Deterministic in the schedule.
ChaosRunResult RunChaosSchedule(const ChaosSchedule& schedule,
                                const ChaosRunOptions& options = {});

/// Reconstructs the schedule embedded in a captured trace.
Result<ChaosSchedule> ScheduleFromTrace(const sim::Trace& trace);

/// Builds the trace header/op records for `schedule` (the run fills in
/// events and summary).
void ScheduleToTrace(const ChaosSchedule& schedule, sim::Trace* trace);

struct ChaosShrinkResult {
  ChaosSchedule minimized;
  std::string invariant;      ///< the violation the reproducer preserves
  size_t original_ops = 0;
  size_t replays = 0;         ///< schedule re-executions the shrink cost
  std::string timeline;       ///< human-readable minimized schedule
};

/// Delta-debugs `schedule` (which must reproduce a violation of
/// `invariant`) to a 1-minimal op subset, then tightens the inter-op time
/// advances. Fails if the full schedule does not reproduce the violation.
Result<ChaosShrinkResult> ShrinkChaosViolation(const ChaosSchedule& schedule,
                                               const std::string& invariant);

/// Renders a schedule as one human-readable line per op.
std::string RenderTimeline(const ChaosSchedule& schedule);

}  // namespace aurora::core
