#include "src/core/cluster.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace aurora::core {

// ---------------------------------------------------------------------------
// MetadataService
// ---------------------------------------------------------------------------

MetadataService::MetadataService(sim::Simulator* sim, sim::Network* network,
                                 NodeId id, AzId az)
    : sim_(sim), network_(network), id_(id) {
  network_->RegisterNode(id_, az);
  volumes_[0];  // the primary volume's lineage always exists, epoch 1
}

MetadataService::VolumeState& MetadataService::StateFor(VolumeId volume) {
  return volumes_[volume];
}

const MetadataService::VolumeState& MetadataService::StateFor(
    VolumeId volume) const {
  auto it = volumes_.find(volume);
  assert(it != volumes_.end() && "unknown volume");
  return it->second;
}

VolumeEpoch MetadataService::volume_epoch(VolumeId volume) const {
  return StateFor(volume).epoch;
}

const quorum::VolumeGeometry& MetadataService::geometry(
    VolumeId volume) const {
  return StateFor(volume).geometry;
}

quorum::VolumeGeometry& MetadataService::mutable_geometry(VolumeId volume) {
  return StateFor(volume).geometry;
}

void MetadataService::SetGeometry(quorum::VolumeGeometry geometry,
                                  VolumeId volume) {
  StateFor(volume).geometry = std::move(geometry);
}

std::vector<VolumeId> MetadataService::VolumeIds() const {
  std::vector<VolumeId> ids;
  ids.reserve(volumes_.size());
  for (const auto& [volume, _] : volumes_) ids.push_back(volume);
  return ids;
}

void MetadataService::IncrementVolumeEpoch(
    NodeId caller, VolumeId volume, std::function<void(VolumeEpoch)> cb) {
  network_->Send(caller, id_, 64,
                 [this, caller, volume, cb = std::move(cb)]() {
                   const VolumeEpoch next = ++StateFor(volume).epoch;
                   network_->Send(id_, caller, 64, [cb, next]() { cb(next); });
                 });
}

void MetadataService::FetchGeometry(
    NodeId caller, VolumeId volume,
    std::function<void(quorum::VolumeGeometry, VolumeEpoch)> cb) {
  network_->Send(caller, id_, 64,
                 [this, caller, volume, cb = std::move(cb)]() {
                   const VolumeState& state = StateFor(volume);
                   const quorum::VolumeGeometry geometry = state.geometry;
                   const VolumeEpoch epoch = state.epoch;
                   network_->Send(id_, caller, 1024, [cb, geometry, epoch]() {
                     cb(geometry, epoch);
                   });
                 });
}

// ---------------------------------------------------------------------------
// AuroraCluster assembly
// ---------------------------------------------------------------------------

namespace {
constexpr NodeId kMetadataNode = 90;
constexpr NodeId kFirstStorageNode = 100;
}  // namespace

AuroraCluster::AuroraCluster(AuroraOptions options)
    : options_(options), sim_(options.seed), network_(&sim_, options.network) {
  if (options_.event_shards > 0) {
    // Shard the event engine before any actor schedules or forks RNGs.
    // The lookahead is the network's latency floor: no cross-node (hence
    // cross-shard) message beats it, so conservative windows are sound.
    uint32_t shard_count = options_.event_shards;
    const bool per_node =
        options_.shard_granularity == ShardGranularity::kPerNode &&
        options_.event_shards >= 2;
    if (per_node) {
      // Fine-grained mapping: one shard per storage node (folded into the
      // cap), plus shard 0 for the control plane. event_shards >= 2 only
      // opts in; the count is derived from the fleet.
      const size_t fleet = options_.num_azs * options_.storage_nodes_per_az;
      const uint32_t cap = std::max<uint32_t>(2, options_.max_event_shards);
      shard_count =
          1 + static_cast<uint32_t>(std::min<size_t>(fleet, cap - 1));
    }
    sim_.ConfigureShards(shard_count);
    sim_.SetLookahead(network_.MinCrossNodeLatency());
    network_.PrepareShardLanes();
    // Per-node mode refines the scalar bound into the pairwise matrix:
    // node registrations below lower each (src, dst) entry to the
    // tightest link class connecting the pair.
    if (per_node) network_.EnablePairwiseLookahead();
  }
  object_store_ =
      std::make_unique<storage::ObjectStore>(&sim_, options_.object_store);
  object_store_->SetHomeShard(0);
  failure_injector_ = std::make_unique<sim::FailureInjector>(&sim_, &network_);
  metadata_ =
      std::make_unique<MetadataService>(&sim_, &network_, kMetadataNode, 0);
  network_.SetNodeShard(kMetadataNode, ShardForControl(0));
  // Storage fleet. In per-AZ mode shards partition by AZ: intra-AZ
  // chatter (gossip, segment peers) stays shard-local and cross-AZ
  // traffic is the cross-shard traffic the latency floor bounds. In
  // per-node mode every storage node owns a shard — all its peer
  // traffic is network-mediated (UnaryCall), so every hop clears the
  // pairwise matrix entry for its link class.
  NodeId id = kFirstStorageNode;
  size_t fleet_index = 0;
  for (size_t az = 0; az < options_.num_azs; ++az) {
    for (size_t i = 0; i < options_.storage_nodes_per_az; ++i) {
      auto node = std::make_unique<storage::StorageNode>(
          &sim_, &network_, id, static_cast<AzId>(az), object_store_.get(),
          options_.storage_node);
      network_.SetNodeShard(
          id, ShardForStorageIndex(fleet_index, static_cast<AzId>(az)));
      node_index_[id] = node.get();
      storage_nodes_.push_back(std::move(node));
      ++id;
      ++fleet_index;
    }
  }
  auto resolver = MakeResolver();
  for (auto& node : storage_nodes_) {
    node->SetResolver(resolver);
  }
}

AuroraCluster::~AuroraCluster() = default;

storage::NodeResolver AuroraCluster::MakeResolver() {
  return [this](NodeId id) -> storage::StorageNode* {
    auto it = node_index_.find(id);
    return it == node_index_.end() ? nullptr : it->second;
  };
}

engine::ControlPlane AuroraCluster::MakeControlPlane(NodeId caller,
                                                     VolumeId volume) {
  // The volume is bound into the closures, so the engine stays
  // volume-oblivious: each writer talks to "its" metadata authority and
  // never sees another tenant's epochs or geometry.
  engine::ControlPlane cp;
  cp.increment_volume_epoch =
      [this, caller, volume](std::function<void(VolumeEpoch)> cb) {
        metadata_->IncrementVolumeEpoch(caller, volume, std::move(cb));
      };
  cp.fetch_geometry =
      [this, caller, volume](
          std::function<void(quorum::VolumeGeometry, VolumeEpoch)> cb) {
        metadata_->FetchGeometry(caller, volume, std::move(cb));
      };
  return cp;
}

quorum::PgConfig AuroraCluster::BuildPgConfig(ProtectionGroupId pg) {
  // Six segments: two per AZ. With the full/tail model, one of the two in
  // each AZ is full and the other is a tail (§4.2 keeps one full copy per
  // AZ so an AZ loss cannot take every full segment).
  std::vector<quorum::SegmentInfo> members;
  for (size_t az = 0; az < options_.num_azs; ++az) {
    for (int copy = 0; copy < 2; ++copy) {
      quorum::SegmentInfo info;
      info.id = next_segment_id_++;
      info.az = static_cast<AzId>(az);
      const size_t node_index =
          az * options_.storage_nodes_per_az +
          (pg + copy) % options_.storage_nodes_per_az;
      info.node = storage_nodes_[node_index]->id();
      info.is_full = options_.quorum_model == quorum::QuorumModel::kFullTail
                         ? (copy == 0)
                         : true;
      members.push_back(info);
    }
  }
  return quorum::PgConfig::Create(pg, options_.quorum_model,
                                  std::move(members));
}

Result<quorum::PgConfig> AuroraCluster::PlacePgConfig(VolumeId volume,
                                                      ProtectionGroupId pg) {
  assert(placement_ != nullptr);
  auto members = placement_->PlacePg(
      volume, options_.quorum_model, [this]() { return next_segment_id_++; });
  if (!members.ok()) return members.status();
  return quorum::PgConfig::Create(pg, options_.quorum_model,
                                  std::move(members).value());
}

void AuroraCluster::CreateSegmentStores(const quorum::PgConfig& config) {
  for (const auto& member : config.AllMembers()) {
    storage::StorageNode* node = node_index_.at(member.node);
    node->AddSegment(member, config.pg(), config,
                     metadata_->volume_epoch(member.volume));
  }
}

std::unique_ptr<engine::DbInstance> AuroraCluster::MakeWriter(
    NodeId id, AzId az, VolumeId volume) {
  return std::make_unique<engine::DbInstance>(
      &sim_, &network_, id, az, MakeResolver(),
      MakeControlPlane(id, volume), options_.db);
}

Status AuroraCluster::BootstrapWriterBlocking(engine::DbInstance* writer) {
  bool done = false;
  Status result = Status::OK();
  writer->Bootstrap([&](Status st) {
    result = std::move(st);
    done = true;
  });
  if (!RunUntil([&]() { return done; })) {
    return Status::TimedOut("bootstrap did not complete");
  }
  return result;
}

Status AuroraCluster::StartBlocking() {
  if (options_.volumes > 1) {
    // Multi-tenant assembly (DESIGN.md §11): the placement service lays
    // out every volume's PGs across the shared fleet under anti-affinity
    // rules; load balances across tenants because placement reads hosted
    // segment counts as it goes.
    placement_ = std::make_unique<PlacementService>();
    for (auto& node : storage_nodes_) {
      placement_->RegisterServer(node->id(), node->az());
    }
    placement_->SetLoadSource([this](NodeId id) {
      auto it = node_index_.find(id);
      return it == node_index_.end() ? 0 : it->second->segments().size();
    });
    placement_->SetLiveness([this](NodeId id) { return network_.IsUp(id); });
    for (VolumeId volume = 0; volume < options_.volumes; ++volume) {
      std::vector<quorum::PgConfig> pgs;
      for (size_t pg = 0; pg < options_.num_pgs; ++pg) {
        auto config =
            PlacePgConfig(volume, static_cast<ProtectionGroupId>(pg));
        if (!config.ok()) return config.status();
        pgs.push_back(std::move(config).value());
      }
      metadata_->SetGeometry(quorum::VolumeGeometry(options_.blocks_per_pg,
                                                    pgs),
                             volume);
      // Create stores per PG as we place, so placement's load probe sees
      // the segments already committed to each server.
      for (const auto& pg : pgs) CreateSegmentStores(pg);
    }
  } else {
    // Single-tenant assembly: the legacy round-robin layout, kept
    // verbatim so default-config schedules stay bit-identical.
    std::vector<quorum::PgConfig> pgs;
    for (size_t pg = 0; pg < options_.num_pgs; ++pg) {
      pgs.push_back(BuildPgConfig(static_cast<ProtectionGroupId>(pg)));
    }
    metadata_->SetGeometry(
        quorum::VolumeGeometry(options_.blocks_per_pg, pgs));
    for (const auto& pg : pgs) CreateSegmentStores(pg);
  }
  for (auto& node : storage_nodes_) {
    // Each node's background timers must start on the node's own shard.
    sim::Simulator::ShardScope scope(&sim_, network_.ShardOf(node->id()));
    node->StartBackground();
  }

  writer_ = MakeWriter(next_node_id_++, 0);
  network_.SetNodeShard(writer_->id(), ShardForControl(0));
  AURORA_RETURN_IF_ERROR(BootstrapWriterBlocking(writer_.get()));
  // Tenant writers (volumes 1..N-1), spread across AZs, bootstrapped
  // sequentially: each recovers its own volume independently.
  for (VolumeId volume = 1; volume < options_.volumes; ++volume) {
    const AzId az = static_cast<AzId>(volume % options_.num_azs);
    auto writer = MakeWriter(next_node_id_++, az, volume);
    network_.SetNodeShard(writer->id(), ShardForControl(az));
    AURORA_RETURN_IF_ERROR(BootstrapWriterBlocking(writer.get()));
    tenant_writers_.push_back(std::move(writer));
  }
  return Status::OK();
}

engine::DbInstance* AuroraCluster::writer(VolumeId volume) {
  if (volume == 0) return writer_.get();
  const size_t index = volume - 1;
  return index < tenant_writers_.size() ? tenant_writers_[index].get()
                                        : nullptr;
}

storage::StorageNode* AuroraCluster::node(NodeId id) {
  auto it = node_index_.find(id);
  return it == node_index_.end() ? nullptr : it->second;
}

std::vector<NodeId> AuroraCluster::StorageNodeIds() const {
  std::vector<NodeId> ids;
  for (const auto& node : storage_nodes_) ids.push_back(node->id());
  return ids;
}

std::vector<AzId> AuroraCluster::AzIds() const {
  std::vector<AzId> ids;
  for (size_t az = 0; az < options_.num_azs; ++az) {
    ids.push_back(static_cast<AzId>(az));
  }
  return ids;
}

storage::StorageNode* AuroraCluster::NodeForSegment(SegmentId segment) {
  for (auto& node : storage_nodes_) {
    if (node->FindSegment(segment) != nullptr) return node.get();
  }
  return nullptr;
}

void AuroraCluster::ForEachSegment(
    const std::function<void(storage::StorageNode*, storage::SegmentStore*)>&
        fn) {
  for (auto& node : storage_nodes_) {
    for (auto& [id, segment] : node->segments()) {
      fn(node.get(), segment.get());
    }
  }
}

void AuroraCluster::ForEachPgConfig(
    const std::function<void(VolumeId, const quorum::PgConfig&)>& fn) const {
  for (VolumeId volume : metadata_->VolumeIds()) {
    for (const auto& pg : metadata_->geometry(volume).pgs()) {
      fn(volume, pg);
    }
  }
}

VolumeId AuroraCluster::VolumeOf(const quorum::PgConfig& config) {
  for (const auto& slot : config.slots()) {
    if (!slot.empty()) return slot.front().volume;
  }
  return 0;
}

const quorum::PgConfig* AuroraCluster::FindConfigForSegment(
    SegmentId segment, VolumeId* volume_out) const {
  for (VolumeId volume : metadata_->VolumeIds()) {
    for (const auto& pg : metadata_->geometry(volume).pgs()) {
      if (pg.ContainsSegment(segment)) {
        if (volume_out != nullptr) *volume_out = volume;
        return &pg;
      }
    }
  }
  return nullptr;
}

bool AuroraCluster::RunUntil(const std::function<bool()>& pred,
                             SimDuration timeout) {
  if (timeout == 0) timeout = options_.blocking_timeout;
  const SimTime deadline = sim_.Now() + timeout;
  while (!pred()) {
    if (sim_.Now() >= deadline) return false;
    if (!sim_.Step()) return pred();
  }
  return true;
}

// ---------------------------------------------------------------------------
// Replicas & failover
// ---------------------------------------------------------------------------

NodeId AuroraCluster::RegisterClientNode(AzId az) {
  const NodeId id = next_node_id_++;
  network_.RegisterNode(id, az, nullptr);
  network_.SetNodeShard(id, ShardForControl(az));
  return id;
}

replica::ReadReplica* AuroraCluster::AddReplica() {
  if (replicas_.size() >= kMaxReplicas) return nullptr;
  const NodeId id = next_node_id_++;
  const AzId az = static_cast<AzId>(replicas_.size() % options_.num_azs);
  auto rep = std::make_unique<replica::ReadReplica>(
      &sim_, &network_, id, az, MakeResolver(), writer_->id(),
      metadata_->geometry(), metadata_->volume_epoch(), options_.replica);
  network_.SetNodeShard(id, ShardForControl(az));
  replica::ReadReplica* raw = rep.get();
  replicas_.push_back(std::move(rep));
  WireReplica(raw);
  {
    // Replica timers start on the replica's shard; its links to the writer
    // (replication sink, read-point reports) are all network-mediated, so
    // they cross shards as messages, never as direct calls.
    sim::Simulator::ShardScope scope(&sim_, ShardForControl(az));
    raw->Start();
  }
  return raw;
}

void AuroraCluster::WireReplica(replica::ReadReplica* rep) {
  writer_->AddReplicationSink(rep->id(),
                              [rep](engine::ReplicationEvent event) {
                                rep->OnReplicationEvent(event);
                              });
  engine::DbInstance* writer = writer_.get();
  const NodeId rep_id = rep->id();
  rep->SetReadPointReporter([writer, rep_id](Lsn point) {
    writer->ObserveReplicaReadPoint(rep_id, point);
  });
}

std::unique_ptr<engine::DbInstance> AuroraCluster::CreateDetachedInstance() {
  return MakeWriter(next_node_id_++, 0);
}

Result<engine::DbInstance*> AuroraCluster::FailoverBlocking() {
  if (writer_ && network_.IsUp(writer_->id())) {
    network_.Crash(writer_->id());
  }
  // Promote: a fresh instance runs crash recovery against shared storage;
  // "if a commit has been marked durable and acknowledged to the client,
  // there is no data loss" (§3.2).
  retired_writers_.push_back(std::move(writer_));
  writer_ = MakeWriter(next_node_id_++, 0);
  bool done = false;
  Status result = Status::OK();
  writer_->Open([&](Status st) {
    result = std::move(st);
    done = true;
  });
  if (!RunUntil([&]() { return done; })) {
    return Status::TimedOut("failover recovery did not complete");
  }
  if (!result.ok()) return result;
  // Re-attach replicas to the new writer's stream.
  for (auto& rep : replicas_) {
    WireReplica(rep.get());
    rep->UpdateGeometry(metadata_->geometry(), metadata_->volume_epoch());
  }
  return writer_.get();
}

// ---------------------------------------------------------------------------
// Simple data-path helpers
// ---------------------------------------------------------------------------

Status AuroraCluster::PutBlocking(const std::string& key,
                                  const std::string& value) {
  const TxnId txn = writer_->Begin();
  bool done = false;
  Status result = Status::OK();
  writer_->Put(txn, key, value, [&](Status st) {
    if (!st.ok()) {
      result = std::move(st);
      done = true;
      return;
    }
    writer_->Commit(txn, [&](Status commit_st) {
      result = std::move(commit_st);
      done = true;
    });
  });
  if (!RunUntil([&]() { return done; })) {
    return Status::TimedOut("put did not complete");
  }
  return result;
}

Status AuroraCluster::PutBlocking(VolumeId volume, const std::string& key,
                                  const std::string& value) {
  engine::DbInstance* owner = writer(volume);
  if (owner == nullptr) return Status::NotFound("no such volume");
  const TxnId txn = owner->Begin();
  bool done = false;
  Status result = Status::OK();
  owner->Put(txn, key, value, [&](Status st) {
    if (!st.ok()) {
      result = std::move(st);
      done = true;
      return;
    }
    owner->Commit(txn, [&](Status commit_st) {
      result = std::move(commit_st);
      done = true;
    });
  });
  if (!RunUntil([&]() { return done; })) {
    return Status::TimedOut("put did not complete");
  }
  return result;
}

Result<std::string> AuroraCluster::GetBlocking(const std::string& key) {
  bool done = false;
  Result<std::string> result = Status::Internal("unset");
  writer_->Get(kInvalidTxn, key, [&](Result<std::string> r) {
    result = std::move(r);
    done = true;
  });
  if (!RunUntil([&]() { return done; })) {
    return Status::TimedOut("get did not complete");
  }
  return result;
}

Result<std::string> AuroraCluster::GetBlocking(VolumeId volume,
                                               const std::string& key) {
  engine::DbInstance* owner = writer(volume);
  if (owner == nullptr) return Status::NotFound("no such volume");
  bool done = false;
  Result<std::string> result = Status::Internal("unset");
  owner->Get(kInvalidTxn, key, [&](Result<std::string> r) {
    result = std::move(r);
    done = true;
  });
  if (!RunUntil([&]() { return done; })) {
    return Status::TimedOut("get did not complete");
  }
  return result;
}

Status AuroraCluster::DeleteBlocking(const std::string& key) {
  const TxnId txn = writer_->Begin();
  bool done = false;
  Status result = Status::OK();
  writer_->Delete(txn, key, [&](Status st) {
    if (!st.ok()) {
      result = std::move(st);
      done = true;
      return;
    }
    writer_->Commit(txn, [&](Status commit_st) {
      result = std::move(commit_st);
      done = true;
    });
  });
  if (!RunUntil([&]() { return done; })) {
    return Status::TimedOut("delete did not complete");
  }
  return result;
}

Status AuroraCluster::CommitBlocking(TxnId txn) {
  bool done = false;
  Status result = Status::OK();
  writer_->Commit(txn, [&](Status st) {
    result = std::move(st);
    done = true;
  });
  if (!RunUntil([&]() { return done; })) {
    return Status::TimedOut("commit did not complete");
  }
  return result;
}

Status AuroraCluster::RollbackBlocking(TxnId txn) {
  bool done = false;
  Status result = Status::OK();
  writer_->Rollback(txn, [&](Status st) {
    result = std::move(st);
    done = true;
  });
  if (!RunUntil([&]() { return done; })) {
    return Status::TimedOut("rollback did not complete");
  }
  return result;
}

// ---------------------------------------------------------------------------
// Fault & membership operations
// ---------------------------------------------------------------------------

void AuroraCluster::CrashWriter() {
  if (writer_) network_.Crash(writer_->id());
}

Status AuroraCluster::RecoverWriterBlocking() {
  if (!writer_) return Status::Internal("no writer");
  network_.Restart(writer_->id());
  bool done = false;
  Status result = Status::OK();
  writer_->Open([&](Status st) {
    result = std::move(st);
    done = true;
  });
  if (!RunUntil([&]() { return done; })) {
    return Status::TimedOut("recovery did not complete");
  }
  if (result.ok()) {
    for (auto& rep : replicas_) {
      WireReplica(rep.get());
      rep->UpdateGeometry(metadata_->geometry(), metadata_->volume_epoch());
    }
  }
  return result;
}

storage::StorageNode* AuroraCluster::PickNodeForNewSegment(
    AzId az, const quorum::PgConfig& config) {
  // Never co-locate two members of one protection group: a node failure
  // must cost the quorum at most one member.
  if (placement_ != nullptr) {
    // Multi-tenant mode: placement applies the same anti-affinity rule
    // but picks the least-loaded candidate, balancing repair traffic
    // across the shared fleet.
    auto host = placement_->PickReplacement(config, az);
    if (!host.ok()) return nullptr;
    return node(*host);
  }
  std::set<NodeId> occupied;
  for (const auto& member : config.AllMembers()) occupied.insert(member.node);
  storage::StorageNode* fallback = nullptr;
  for (auto& node : storage_nodes_) {
    if (node->az() != az) continue;
    if (occupied.contains(node->id())) continue;
    if (network_.IsUp(node->id())) return node.get();
    fallback = node.get();
  }
  return fallback;
}

Status AuroraCluster::InstallPgConfigBlocking(
    const quorum::PgConfig& old_config, const quorum::PgConfig& new_config) {
  assert(quorum::TransitionIsSafe(old_config, new_config));
  // An epoch increment requires a write quorum, like any other write
  // (§4.1). Send the new config to every member; succeed once the OLD
  // config's write set acknowledges.
  const VolumeId volume = VolumeOf(new_config);
  engine::DbInstance* owner = writer(volume);
  auto acks = std::make_shared<quorum::SegmentSet>();
  for (const auto& member : new_config.AllMembers()) {
    storage::MembershipUpdateRequest request;
    request.segment = member.id;
    request.expected_epoch = old_config.epoch();
    request.config = new_config;
    request.volume_epoch = metadata_->volume_epoch(volume);
    storage::StorageNode* target = node_index_.at(member.node);
    network_.Send(
        owner ? owner->id() : kMetadataNode, member.node,
        request.SerializedSize(), [target, request, acks, this]() {
          target->HandleMembershipUpdate(
              request,
              [acks, seg = request.segment](
                  storage::MembershipUpdateResponse response) {
                if (response.status.ok()) acks->insert(seg);
              });
        });
  }
  const auto& write_set = old_config.WriteSet();
  if (!RunUntil([&]() { return write_set.SatisfiedBy(*acks); })) {
    return Status::QuorumUnavailable(
        "membership epoch increment did not reach write quorum");
  }
  // Record at the authority and refresh instances.
  AURORA_RETURN_IF_ERROR(
      metadata_->mutable_geometry(volume).UpdatePg(new_config));
  if (owner != nullptr && owner->driver() != nullptr) {
    owner->driver()->UpdatePgConfig(new_config);
  }
  if (volume == 0) {
    // Read replicas attach to the primary volume only.
    for (auto& rep : replicas_) {
      rep->UpdateGeometry(metadata_->geometry(), metadata_->volume_epoch());
    }
  }
  return Status::OK();
}

void AuroraCluster::InstallPgConfigAsync(const quorum::PgConfig& old_config,
                                         const quorum::PgConfig& new_config,
                                         std::function<void(Status)> done,
                                         SimDuration timeout) {
  assert(quorum::TransitionIsSafe(old_config, new_config));
  // Event-driven twin of InstallPgConfigBlocking for the repair planner:
  // same quorum rule (the OLD config's write set must ack the epoch+1
  // config), but completion is a callback, so it can run underneath any
  // workload without pumping the event loop.
  struct InstallState {
    quorum::SegmentSet acks;
    quorum::QuorumSet write_set;
    bool finished = false;
  };
  auto state = std::make_shared<InstallState>();
  state->write_set = old_config.WriteSet();
  const MembershipEpoch target_epoch = new_config.epoch();
  const VolumeId volume = VolumeOf(new_config);
  for (const auto& member : new_config.AllMembers()) {
    storage::MembershipUpdateRequest request;
    request.segment = member.id;
    request.expected_epoch = old_config.epoch();
    request.config = new_config;
    request.volume_epoch = metadata_->volume_epoch(volume);
    auto node_it = node_index_.find(member.node);
    if (node_it == node_index_.end()) continue;
    storage::StorageNode* target = node_it->second;
    network_.Send(
        metadata_->id(), member.node, request.SerializedSize(),
        [this, target, request, state, target_epoch, new_config, volume,
         done]() {
          target->HandleMembershipUpdate(
              request, [this, state, seg = request.segment, target_epoch,
                        new_config, volume,
                        done](storage::MembershipUpdateResponse response) {
                if (state->finished) return;
                // A StaleEpoch reply whose current epoch already covers
                // the target means the node holds this (or a newer)
                // config — membership installs are monotone, so that is
                // an ack for quorum purposes. This is what makes install
                // retries idempotent instead of wedging half-installed.
                const bool accepted =
                    response.status.ok() ||
                    (response.status.IsStaleEpoch() &&
                     response.current_epoch >= target_epoch);
                if (!accepted) return;
                state->acks.insert(seg);
                if (!state->write_set.SatisfiedBy(state->acks)) return;
                state->finished = true;
                Status update =
                    metadata_->mutable_geometry(volume).UpdatePg(new_config);
                if (!update.ok()) {
                  done(std::move(update));
                  return;
                }
                engine::DbInstance* owner = writer(volume);
                if (owner != nullptr && owner->driver() != nullptr) {
                  owner->driver()->UpdatePgConfig(new_config);
                }
                if (volume == 0) {
                  for (auto& rep : replicas_) {
                    rep->UpdateGeometry(metadata_->geometry(),
                                        metadata_->volume_epoch());
                  }
                }
                done(Status::OK());
              });
        });
  }
  sim_.Schedule(
      timeout,
      [state, done]() {
        if (state->finished) return;
        state->finished = true;
        done(Status::QuorumUnavailable(
            "membership epoch increment did not reach write quorum"));
      },
      "cluster.install_timeout");
}

Result<MembershipChangeReport> AuroraCluster::BeginReplaceBlocking(
    SegmentId old_segment) {
  MembershipChangeReport report;
  report.old_segment = old_segment;
  report.started_at = sim_.Now();
  // Locate the PG and the suspect member (any volume's geometry).
  VolumeId volume = 0;
  const quorum::PgConfig* config = FindConfigForSegment(old_segment, &volume);
  if (config == nullptr) return Status::NotFound("segment not in volume");
  const quorum::SegmentInfo* old_info = config->FindSegment(old_segment);

  // New segment placed in the same AZ (preserves AZ+1 tolerance).
  quorum::SegmentInfo new_info;
  new_info.id = next_segment_id_++;
  new_info.az = old_info->az;
  new_info.is_full = old_info->is_full;
  new_info.volume = old_info->volume;
  storage::StorageNode* host = PickNodeForNewSegment(old_info->az, *config);
  if (host == nullptr) return Status::Unavailable("no host for new segment");
  new_info.node = host->id();

  auto next = config->BeginReplace(old_segment, new_info);
  if (!next.ok()) return next.status();
  report.new_segment = new_info.id;
  report.begin_epoch = next->epoch();

  // Hydration target: the highest SCL among reachable current members.
  auto target_scl = std::make_shared<Lsn>(kInvalidLsn);
  auto probes = std::make_shared<size_t>(0);
  engine::DbInstance* owner = writer(volume);
  const NodeId prober = owner ? owner->id() : kMetadataNode;
  for (const auto& member : config->AllMembers()) {
    storage::StorageNode* target = node_index_.at(member.node);
    storage::SegmentStateRequest request{member.id};
    network_.Send(prober, member.node, request.SerializedSize(),
                  [target, request, target_scl, probes]() {
                    target->HandleSegmentState(
                        request, [target_scl, probes](
                                     storage::SegmentStateResponse r) {
                          if (r.status.ok()) {
                            *target_scl = std::max(*target_scl, r.scl);
                            (*probes)++;
                          }
                        });
                  });
  }
  RunUntil([&]() { return *probes >= 3; }, 5 * kSecond);

  // Create the (empty, un-hydrated) segment with the DUAL-quorum config.
  host->AddSegment(new_info, config->pg(), *next,
                   metadata_->volume_epoch(volume),
                   /*hydrated=*/false);
  host->FindSegment(new_info.id)->BeginHydration(*target_scl);

  // Install the epoch increment at a write quorum of the old config.
  const quorum::PgConfig old_copy = *config;
  AURORA_RETURN_IF_ERROR(InstallPgConfigBlocking(old_copy, *next));
  host->StartHydrationPull(new_info.id);
  report.status = Status::OK();
  report.finished_at = sim_.Now();
  return report;
}

Status AuroraCluster::CommitReplaceBlocking(SegmentId old_segment) {
  const quorum::PgConfig* config = FindConfigForSegment(old_segment, nullptr);
  if (config == nullptr) return Status::NotFound("segment not in volume");
  auto next = config->CommitReplace(old_segment);
  if (!next.ok()) return next.status();
  // The replacement must be hydrated before the old member's data can be
  // abandoned ("we do not discard any durable state until back to a fully
  // repaired quorum", §4.1).
  SegmentId replacement = kInvalidSegment;
  for (const auto& slot : config->slots()) {
    if (slot.size() == 2) {
      replacement = slot[0].id == old_segment ? slot[1].id : slot[0].id;
    }
  }
  if (replacement != kInvalidSegment) {
    storage::StorageNode* host = NodeForSegment(replacement);
    if (host != nullptr) {
      host->StartHydrationPull(replacement);
      storage::SegmentStore* store = host->FindSegment(replacement);
      if (!RunUntil([&]() { return store->hydrated(); })) {
        return Status::TimedOut("replacement did not hydrate");
      }
    }
  }
  const quorum::PgConfig old_copy = *config;
  AURORA_RETURN_IF_ERROR(InstallPgConfigBlocking(old_copy, *next));
  // Old segment's state can now be dropped (if its node still exists).
  if (storage::StorageNode* host = NodeForSegment(old_segment)) {
    host->DropSegment(old_segment);
  }
  return Status::OK();
}

Status AuroraCluster::RevertReplaceBlocking(SegmentId old_segment) {
  const quorum::PgConfig* config = FindConfigForSegment(old_segment, nullptr);
  if (config == nullptr) return Status::NotFound("segment not in volume");
  auto next = config->RevertReplace(old_segment);
  if (!next.ok()) return next.status();
  SegmentId replacement = kInvalidSegment;
  for (const auto& slot : config->slots()) {
    if (slot.size() == 2 &&
        (slot[0].id == old_segment || slot[1].id == old_segment)) {
      replacement = slot[0].id == old_segment ? slot[1].id : slot[0].id;
    }
  }
  const quorum::PgConfig old_copy = *config;
  AURORA_RETURN_IF_ERROR(InstallPgConfigBlocking(old_copy, *next));
  if (replacement != kInvalidSegment) {
    if (storage::StorageNode* host = NodeForSegment(replacement)) {
      host->DropSegment(replacement);
    }
  }
  return Status::OK();
}

Result<MembershipChangeReport> AuroraCluster::ReplaceSegmentBlocking(
    SegmentId old_segment) {
  auto report = BeginReplaceBlocking(old_segment);
  if (!report.ok()) return report;
  Status commit = CommitReplaceBlocking(old_segment);
  if (!commit.ok()) return commit;
  report->finished_at = sim_.Now();
  if (const quorum::PgConfig* final_config =
          FindConfigForSegment(report->new_segment, nullptr)) {
    report->final_epoch = final_config->epoch();
  }
  return report;
}

Lsn AuroraCluster::ArchiveHorizon() const {
  Lsn horizon = kInvalidLsn;
  bool first = true;
  for (const auto& pg : metadata_->geometry().pgs()) {
    // A group that has never received a record (e.g. just added by volume
    // growth) does not bound the horizon — there is nothing of it to
    // restore.
    bool has_data = false;
    for (const auto& member : pg.AllMembers()) {
      auto it = node_index_.find(member.node);
      if (it == node_index_.end()) continue;
      storage::SegmentStore* segment = it->second->FindSegment(member.id);
      if (segment != nullptr && segment->scl() != kInvalidLsn) {
        has_data = true;
        break;
      }
    }
    if (!has_data) continue;
    const Lsn max_archived = object_store_->MaxArchivedLsn(pg.pg());
    if (first || max_archived < horizon) horizon = max_archived;
    first = false;
  }
  return horizon;
}

Status AuroraCluster::RestoreToPointBlocking(Lsn restore_point) {
  if (restore_point == kInvalidLsn || restore_point > ArchiveHorizon()) {
    return Status::InvalidArgument(
        "restore point beyond the archive horizon");
  }
  if (writer_ && network_.IsUp(writer_->id())) {
    network_.Crash(writer_->id());
  }
  // Reload every segment from the per-PG archive. This is an offline
  // storage operation: segment state (disk) is rewritten even on nodes
  // that are currently down.
  for (const auto& pg : metadata_->geometry().pgs()) {
    bool fetched = false;
    std::vector<log::RedoRecord> records;
    object_store_->Get(pg.pg(), 1, restore_point,
                       [&](std::vector<log::RedoRecord> r) {
                         records = std::move(r);
                         fetched = true;
                       });
    if (!RunUntil([&]() { return fetched; })) {
      return Status::TimedOut("archive fetch did not complete");
    }
    for (const auto& member : pg.AllMembers()) {
      storage::StorageNode* node = node_index_.at(member.node);
      storage::SegmentStore* segment = node->FindSegment(member.id);
      if (segment == nullptr) {
        segment = node->AddSegment(member, pg.pg(), pg,
                                   metadata_->volume_epoch());
      }
      segment->ResetToArchive(records, restore_point,
                              metadata_->volume_epoch());
    }
  }
  // Replica caches hold pages from the abandoned timeline: bounce them.
  for (auto& rep : replicas_) {
    network_.Crash(rep->id());
    network_.Restart(rep->id());
  }
  // Open a fresh writer against the restored volume; ordinary crash
  // recovery recomputes VDL (== the restore point rounded to the last
  // complete MTR) and fences the old timeline with a new volume epoch.
  auto promoted = FailoverBlocking();
  if (!promoted.ok()) return promoted.status();
  for (auto& rep : replicas_) rep->Start();
  return Status::OK();
}

Status AuroraCluster::ShrinkAfterAzLossBlocking(AzId lost_az) {
  // Each PG transitions independently; all use the surviving members'
  // write quorum to install the epoch increment. An AZ loss hits every
  // tenant on the shared fleet, so all volumes shrink.
  for (VolumeId volume : metadata_->VolumeIds()) {
    // Copy: InstallPgConfigBlocking mutates the geometry mid-iteration.
    const std::vector<quorum::PgConfig> pgs =
        metadata_->geometry(volume).pgs();
    for (const auto& pg : pgs) {
      auto next = pg.ShrinkAfterAzLoss(lost_az);
      if (!next.ok()) return next.status();
      AURORA_RETURN_IF_ERROR(InstallPgConfigBlocking(pg, *next));
    }
  }
  return Status::OK();
}

Status AuroraCluster::ExpandToSixBlocking(AzId restored_az) {
  for (VolumeId volume : metadata_->VolumeIds()) {
    const std::vector<quorum::PgConfig> shrunk =
        metadata_->geometry(volume).pgs();
    for (const auto& pg : shrunk) {
      if (pg.slots().size() >= 6) continue;
      // Two fresh members on distinct nodes in the restored AZ.
      std::vector<quorum::SegmentInfo> fresh;
      std::set<NodeId> occupied;
      for (const auto& member : pg.AllMembers()) occupied.insert(member.node);
      for (int copy = 0; copy < 2; ++copy) {
        quorum::SegmentInfo info;
        info.id = next_segment_id_++;
        info.az = restored_az;
        info.is_full = true;
        info.volume = volume;
        storage::StorageNode* host = nullptr;
        for (auto& node : storage_nodes_) {
          if (node->az() != restored_az || occupied.contains(node->id())) {
            continue;
          }
          if (network_.IsUp(node->id())) {
            host = node.get();
            break;
          }
        }
        if (host == nullptr) {
          return Status::Unavailable("no host for restored segment");
        }
        info.node = host->id();
        occupied.insert(host->id());
        fresh.push_back(info);
      }
      auto next = pg.ExpandToSix(fresh);
      if (!next.ok()) return next.status();
      // Probe the hydration target, create the segments, install, hydrate.
      Lsn target = kInvalidLsn;
      for (const auto& member : pg.AllMembers()) {
        storage::StorageNode* node = node_index_.at(member.node);
        storage::SegmentStore* store = node->FindSegment(member.id);
        if (store != nullptr) target = std::max(target, store->scl());
      }
      for (const auto& info : fresh) {
        storage::StorageNode* host = node_index_.at(info.node);
        host->AddSegment(info, pg.pg(), *next,
                         metadata_->volume_epoch(volume),
                         /*hydrated=*/false);
        host->FindSegment(info.id)->BeginHydration(target);
      }
      AURORA_RETURN_IF_ERROR(InstallPgConfigBlocking(pg, *next));
      for (const auto& info : fresh) {
        node_index_.at(info.node)->StartHydrationPull(info.id);
      }
      for (const auto& info : fresh) {
        storage::SegmentStore* store =
            node_index_.at(info.node)->FindSegment(info.id);
        if (!RunUntil([&]() { return store->hydrated(); })) {
          return Status::TimedOut("restored segment did not hydrate");
        }
      }
    }
  }
  return Status::OK();
}

Status AuroraCluster::GrowVolumeBlocking(VolumeId volume) {
  engine::DbInstance* owner = writer(volume);
  if (volume != 0 && owner == nullptr) {
    return Status::NotFound("no such volume");
  }
  const auto pg_id =
      static_cast<ProtectionGroupId>(metadata_->geometry(volume).PgCount());
  quorum::PgConfig config;
  if (placement_ != nullptr) {
    auto placed = PlacePgConfig(volume, pg_id);
    if (!placed.ok()) return placed.status();
    config = std::move(placed).value();
  } else {
    if (volume != 0) return Status::NotFound("no such volume");
    config = BuildPgConfig(pg_id);
  }
  CreateSegmentStores(config);
  metadata_->mutable_geometry(volume).AddPg(config);
  if (owner != nullptr && owner->driver() != nullptr) {
    owner->driver()->SetGeometry(metadata_->geometry(volume),
                                 owner->volume_epoch());
  }
  if (volume == 0) {
    for (auto& rep : replicas_) {
      rep->UpdateGeometry(metadata_->geometry(), metadata_->volume_epoch());
    }
  }
  return Status::OK();
}

}  // namespace aurora::core
