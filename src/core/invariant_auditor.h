// Invariant auditor: protocol-level safety checks over a live cluster.
//
// The paper's central claim is that Aurora stays consistent "without
// distributed consensus" because every consistency point is established by
// local bookkeeping over quorum acknowledgements (§2.3, §3, §4). The
// auditor turns the claims behind that argument into executable checks,
// evaluated between simulator events — the points at which the system must
// be in a protocol-legal state. The chaos tests attach it at every event,
// so any schedule of crashes, partitions, scrub corruption, and membership
// changes that drives the cluster into an illegal state is caught at the
// first event boundary where it is visible, with a serialized snapshot and
// the seed for replay.
//
// Audited invariants (references are to the SIGMOD'18 paper):
//  1. scl-monotonic      Per-segment SCLs never regress (§2.3: the SCL is
//                        "the latest point ... below which all log records
//                        have been received"), except at explicit
//                        re-baselining events: truncation installation
//                        (§2.4), a volume-epoch change (recovery/restore),
//                        or a scrub dropping a corrupt record (§2.1).
//  2. pgcl-durable       Each PG's completion point is covered by a write
//                        quorum of member SCLs (§2.3: PGCL advances only
//                        over quorum-acknowledged writes). PGCL is a
//                        per-record quorum property, so members whose SCL
//                        legitimately trails it — down node (frozen SCL,
//                        durable disk), post-scrub hole awaiting gossip
//                        refill (§3.2), hydrating replacement (§4.1), or
//                        an out-of-order tail above a hole in repair —
//                        count as potentially covering, and only coverage
//                        loss persisting past ten gossip rounds fires.
//  3. vdl-le-vcl         VDL <= VCL <= highest allocated LSN (§2.3: "the
//                        volume durable LSN ... must be at or below the
//                        volume complete LSN").
//  4. acked-scn-durable  No acknowledged commit is ever above the volume
//                        durable point, across writer incarnations (§2.3
//                        commit protocol + §2.4 crash recovery: recovery
//                        must never lose an acked commit).
//  5. single-epoch-quorum Segments still at an older volume epoch can never
//                        form a write quorum once a newer-epoch writer is
//                        open (§2.4/§4.1 fencing: "storage nodes will not
//                        accept requests at stale volume epochs").
//  6. pgmrpl-le-views    No segment's GC floor (PGMRPL) is above any active
//                        read view — the writer's VDL, the writer's oldest
//                        open snapshot, or any replica's minimum read point
//                        (§3.4: versions are reclaimed only below the
//                        fleet-wide minimum read point).
//  7. membership-epoch-monotonic  Per-PG membership epochs (and the volume
//                        epoch) as published by the metadata service never
//                        regress (§4: every Figure-5 transition — begin,
//                        commit, AND revert — increments the epoch; rolling
//                        back never reuses an old one).
//  8. repair-quiet-decision  The repair planner never holds an active job
//                        against a segment the health monitor has never
//                        suspected (§4.1: repair is driven by suspicion
//                        evidence, not by whim), and a job whose suspect
//                        has produced fresh liveness evidence must revert
//                        promptly rather than plough on to commit.
//                        Requires ObserveControlPlane().
//  9. hydrating-read-exclusion  A segment the writer has observed to be
//                        mid-hydration never counts toward read-quorum
//                        eligibility, and an un-hydrated segment store
//                        must never be considered read-complete by the
//                        open writer (§4.1: a hydrating replacement's
//                        prefix is incomplete by construction).
//
// The auditor is strictly read-only: it never schedules events and never
// mutates actor state, so an attached auditor cannot change an execution
// (determinism fingerprints are unaffected).
//
// Multi-tenant clusters (DESIGN.md §11): every check that reads "the
// writer" or "the geometry" runs once per volume against that volume's
// writer, geometry, and epoch lineage. Per-PG audit state is keyed by
// (volume, pg) — pg ids are per-volume ordinals on the shared fleet — and
// durability floors are per volume, since tenant LSN spaces never compare.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/types.h"
#include "src/core/cluster.h"

namespace aurora::core {

class HealthMonitor;
class RepairPlanner;

/// One invariant violation, captured at an event boundary.
struct AuditViolation {
  std::string invariant;  ///< slug, e.g. "vdl-le-vcl"
  std::string detail;     ///< human-readable specifics
  SimTime at = 0;         ///< virtual time of the boundary
  uint64_t event_index = 0;
  /// Full cluster snapshot serialized at detection time (first violation
  /// only; replaying the seed reproduces the rest).
  std::string snapshot;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(AuroraCluster* cluster);

  /// Hooks the cluster's simulator: checks run after every `every_n_events`
  /// executed events. Call Detach() before destroying the auditor if the
  /// cluster outlives it.
  void Attach(uint64_t every_n_events = 1);
  void Detach();

  /// Runs every check once, immediately (also what the hook calls).
  void CheckNow();

  bool ok() const { return violations_.empty(); }
  const std::vector<AuditViolation>& violations() const { return violations_; }
  uint64_t checks_run() const { return checks_run_; }

  /// Points the auditor at a self-healing control plane so the
  /// repair-quiet-decision check can correlate planner jobs with monitor
  /// suspicion evidence. Both pointers are observed read-only and must
  /// outlive the auditor (or be cleared with nullptrs first). The
  /// membership-epoch and hydration checks run regardless.
  void ObserveControlPlane(const HealthMonitor* monitor,
                           const RepairPlanner* planner);

  /// Forgets the acked-commit durability floor. Required after an
  /// intentional rewind of history — point-in-time restore discards
  /// acknowledged commits above the restore point by design (§2.1
  /// activity 6), which is not a protocol violation.
  void ResetDurabilityFloor();

  /// Serializes the observable cluster state (seed, consistency points,
  /// per-segment state, replica read points) as JSON for repro reports.
  std::string SnapshotJson() const;

  /// Human-readable digest of all violations (empty string when ok).
  std::string Report() const;

 private:
  void RunChecks();
  void AddViolation(const std::string& invariant, const std::string& detail);

  void CheckSclMonotonic();
  void CheckPgclDurable();
  void CheckVdlVclOrder();
  void CheckAckedScnDurable();
  void CheckSingleEpochQuorum();
  void CheckPgmrplBelowViews();
  void CheckMembershipEpochMonotonic();
  void CheckRepairQuietDecision();
  void CheckHydratingReadExclusion();

  AuroraCluster* cluster_;
  bool attached_ = false;

  const HealthMonitor* monitor_ = nullptr;
  const RepairPlanner* planner_ = nullptr;

  /// Last observed SCL per segment, with the re-baseline key that makes a
  /// regression legal: (volume epoch, truncation count, scrub drops).
  struct SclBaseline {
    Lsn scl = kInvalidLsn;
    std::tuple<VolumeEpoch, size_t, uint64_t> key{0, 0, 0};
  };
  std::map<SegmentId, SclBaseline> scl_seen_;

  /// Highest commit SCN ever acknowledged to a client, per volume, across
  /// writer incarnations (survives failover; reset only by
  /// ResetDurabilityFloor). Keyed by volume: each tenant writer has an
  /// independent LSN space, so floors never compare across tenants.
  std::map<VolumeId, Scn> durability_floor_;

  /// First sim time at which a PG's PGCL coverage (with every legal excuse
  /// applied) fell below a write quorum. Coverage must recover within
  /// kPgclRepairGrace — ten gossip rounds — or it is a violation. Keyed
  /// by (volume, pg): pg ids are per-volume ordinals on a shared fleet.
  static constexpr SimDuration kPgclRepairGrace = 1 * kSecond;
  std::map<ArchiveKey, SimTime> pgcl_uncovered_since_;

  /// Highest membership epoch seen per (volume, pg) and highest volume
  /// epoch seen per volume, from the metadata service. Epochs only move
  /// forward — independently per tenant.
  std::map<ArchiveKey, MembershipEpoch> membership_epoch_seen_;
  std::map<VolumeId, VolumeEpoch> volume_epoch_seen_;

  /// First sim time at which an active repair job's suspect was observed
  /// healthy again. Figure-5 transitions are reversible, so the planner is
  /// allowed a short window to notice and revert; holding the job open
  /// past the grace is a violation.
  static constexpr SimDuration kRepairRevertGrace = 500 * kMillisecond;
  std::map<SegmentId, SimTime> repair_unsuspect_since_;

  std::vector<AuditViolation> violations_;
  uint64_t checks_run_ = 0;

  metrics::Counter* m_checks_;
  metrics::Counter* m_violations_;
};

}  // namespace aurora::core
