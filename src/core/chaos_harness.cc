#include "src/core/chaos_harness.h"

#include <map>
#include <memory>
#include <set>
#include <utility>

#include "src/common/random.h"
#include "src/core/cluster.h"
#include "src/core/health_monitor.h"
#include "src/core/repair_planner.h"
#include "src/sim/shrink.h"

namespace aurora::core {

namespace {

struct KindName {
  ChaosOpKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {ChaosOpKind::kPut, "put"},
    {ChaosOpKind::kCrashOrRestartNode, "crash_or_restart_node"},
    {ChaosOpKind::kTogglePartition, "toggle_partition"},
    {ChaosOpKind::kCorruptRecord, "corrupt_record"},
    {ChaosOpKind::kWriterCrashRecover, "writer_crash_recover"},
    {ChaosOpKind::kReplaceSegment, "replace_segment"},
    {ChaosOpKind::kAzBlip, "az_blip"},
    {ChaosOpKind::kPoisonVdlArm, "poison_vdl_arm"},
    {ChaosOpKind::kPoisonVdlFire, "poison_vdl_fire"},
    {ChaosOpKind::kFlapNode, "flap_node"},
};

const char* KindToName(ChaosOpKind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "unknown";
}

AuroraOptions ChaosOptions(uint64_t seed, const ChaosRunOptions& run) {
  AuroraOptions options;
  options.seed = seed;
  options.num_pgs = 2;
  options.blocks_per_pg = 1 << 16;
  // Three nodes per AZ so segment replacement always has a free host.
  options.storage_nodes_per_az = 3;
  options.event_shards = run.event_shards;
  options.storage_node = run.storage_node;
  return options;
}

// Extracts the global write sequence from a value "v<seq>".
uint64_t SeqOf(const std::string& value) {
  return std::stoull(value.substr(1));
}

/// Executes one schedule against a fresh cluster. The op implementations
/// are the chaos test's historical fault mix; every runtime choice maps a
/// pre-drawn pick onto current state (pick % size) so subsets of a
/// schedule replay without re-randomizing.
class ChaosExecutor {
 public:
  ChaosExecutor(const ChaosSchedule& schedule, const ChaosRunOptions& options)
      : schedule_(schedule),
        options_(options),
        cluster_(ChaosOptions(schedule.seed, options)) {}

  ChaosRunResult Run() {
    if (options_.record != nullptr) {
      ScheduleToTrace(schedule_, options_.record);
      cluster_.sim().StartTrace(options_.record);
    }
    if (options_.replay != nullptr) {
      cluster_.sim().BeginReplayCheck(options_.replay);
    }

    Status st = cluster_.StartBlocking();
    if (!st.ok()) {
      result_.status = st;
      return Finish();
    }
    auditor_ = std::make_unique<InvariantAuditor>(&cluster_);
    auditor_->Attach(/*every_n_events=*/1);

    if (options_.campaign) {
      // The flap dwell draws go through the injector's decision stream;
      // wire it into the trace so a captured campaign replays (and
      // shrinks) with the exact same flap rhythm.
      if (options_.record != nullptr) {
        cluster_.failures().RecordDecisionsTo(options_.record);
      }
      if (options_.replay != nullptr) {
        cluster_.failures().ReplayDecisionsFrom(options_.replay);
      }
      monitor_ = std::make_unique<HealthMonitor>(&cluster_);
      planner_ = std::make_unique<RepairPlanner>(&cluster_, monitor_.get());
      monitor_->Start();
      planner_->Start();
      auditor_->ObserveControlPlane(monitor_.get(), planner_.get());
    }

    for (const ChaosOp& op : schedule_.ops) {
      Execute(op);
      if (!result_.status.ok()) break;
      cluster_.RunFor(op.advance);
      auditor_->CheckNow();
      if (!auditor_->ok() && options_.stop_at_first_violation) break;
    }

    const bool violated = !auditor_->ok();
    std::vector<AuditViolation> campaign_violations;
    if (result_.status.ok() && !(violated && options_.stop_at_first_violation)) {
      HealEverything();
      if (writer() != nullptr && !writer()->IsOpen()) {
        st = cluster_.RecoverWriterBlocking();
        if (!st.ok()) result_.status = st;
      }
      if (result_.status.ok() && options_.campaign) {
        // A sustained campaign's pass condition: with the faults healed,
        // the control plane must bring the volume back to six healthy,
        // hydrated segments per PG on its own.
        const bool converged = cluster_.RunUntil(
            [this]() { return CampaignConverged(); }, 60 * kSecond);
        if (!converged) {
          AuditViolation v;
          v.invariant = "campaign-convergence";
          v.detail = DescribeNonConvergence();
          v.at = cluster_.sim().Now();
          v.event_index = cluster_.sim().ExecutedEvents();
          v.snapshot = auditor_->SnapshotJson();
          campaign_violations.push_back(std::move(v));
        }
      }
      if (result_.status.ok()) {
        cluster_.RunFor(2 * kSecond);  // drain gossip, scrub, retransmissions
        if (options_.check_durability && auditor_->ok()) CheckDurability();
        auditor_->CheckNow();
        // Degraded-mode contract: every commit parked while write quorum
        // was lost must have been acknowledged or aborted by now.
        if (options_.campaign && writer() != nullptr &&
            writer()->CommitQueueDepth() > 0) {
          AuditViolation v;
          v.invariant = "campaign-parked-commits";
          v.detail = std::to_string(writer()->CommitQueueDepth()) +
                     " commit(s) still parked after the post-campaign drain" +
                     " (min pending scn " +
                     std::to_string(writer()->MinPendingCommitScn()) +
                     ", vcl " + std::to_string(writer()->vcl()) + ", vdl " +
                     std::to_string(writer()->vdl()) + ")";
          v.at = cluster_.sim().Now();
          v.event_index = cluster_.sim().ExecutedEvents();
          v.snapshot = auditor_->SnapshotJson();
          campaign_violations.push_back(std::move(v));
        }
      }
    }

    if (planner_ != nullptr) {
      result_.repairs_committed = planner_->stats().committed;
      result_.repairs_reverted = planner_->stats().reverted;
      result_.repair_mttr = planner_->mttr();
      planner_->Stop();
    }
    if (monitor_ != nullptr) monitor_->Stop();

    result_.violations = auditor_->violations();
    for (auto& v : campaign_violations) {
      result_.violations.push_back(std::move(v));
    }
    auditor_->Detach();
    return Finish();
  }

 private:
  engine::DbInstance* writer() { return cluster_.writer(); }

  ChaosRunResult Finish() {
    auto& sim = cluster_.sim();
    result_.fingerprint = sim.ScheduleFingerprint();
    result_.executed_events = sim.ExecutedEvents();
    result_.end_time = sim.Now();
    if (writer() != nullptr) {
      result_.vcl = writer()->vcl();
      result_.vdl = writer()->vdl();
    }
    if (options_.replay != nullptr) {
      result_.replay_diverged = sim.ReplayDiverged();
      result_.replay_divergence = sim.ReplayDivergence();
      sim.EndReplayCheck();
    }
    if (options_.record != nullptr) {
      sim.StopTrace();
      auto& summary = options_.record->summary;
      summary.present = true;
      summary.fingerprint = result_.fingerprint;
      summary.vcl = result_.vcl;
      summary.vdl = result_.vdl;
      summary.executed_events = result_.executed_events;
      summary.end_time = result_.end_time;
    }
    return std::move(result_);
  }

  void Execute(const ChaosOp& op) {
    switch (op.kind) {
      case ChaosOpKind::kPut:
        DoPut(op);
        break;
      case ChaosOpKind::kCrashOrRestartNode:
        DoCrashOrRestartStorageNode(op);
        break;
      case ChaosOpKind::kTogglePartition:
        DoTogglePartition(op);
        break;
      case ChaosOpKind::kCorruptRecord:
        DoCorruptRecord(op);
        break;
      case ChaosOpKind::kWriterCrashRecover:
        DoWriterCrashRecover();
        break;
      case ChaosOpKind::kReplaceSegment:
        DoReplaceSegment(op);
        break;
      case ChaosOpKind::kAzBlip:
        DoAzBlip(op);
        break;
      case ChaosOpKind::kPoisonVdlArm:
        poison_armed_ = true;
        break;
      case ChaosOpKind::kPoisonVdlFire:
        if (poison_armed_ && writer() != nullptr && writer()->IsOpen()) {
          writer()->driver()->tracker().CorruptVdlForTest(writer()->vcl() +
                                                          1000);
        }
        break;
      case ChaosOpKind::kFlapNode:
        DoFlapNode(op);
        break;
    }
  }

  void DoPut(const ChaosOp& op) {
    if (writer() == nullptr || !writer()->IsOpen()) return;
    const std::string key = "k" + std::to_string(op.pick_a % 48);
    const uint64_t seq = ++next_seq_;
    const std::string value = "v" + std::to_string(seq);
    written_[key].insert(seq);

    const TxnId txn = writer()->Begin();
    auto put_state = std::make_shared<int>(0);  // 0 pending, 1 ok, -1 fail
    writer()->Put(txn, key, value, [put_state](Status st) {
      *put_state = st.ok() ? 1 : -1;
    });
    cluster_.RunUntil([&]() { return *put_state != 0; }, 500 * kMillisecond);
    if (*put_state != 1) {
      // Timed out (quorum down) or aborted: fire-and-forget rollback so
      // the locks drain; the txn was never acknowledged.
      if (writer() != nullptr && writer()->IsOpen()) {
        writer()->Rollback(txn, [](Status) {});
      }
      return;
    }
    auto commit_state = std::make_shared<int>(0);
    // The commit callback may fire long after this op returns (e.g. once
    // a partition heals); record the ack whenever it lands.
    writer()->Commit(txn, [this, key, seq, commit_state](Status st) {
      *commit_state = st.ok() ? 1 : -1;
      if (st.ok() && seq > last_acked_[key]) last_acked_[key] = seq;
    });
    cluster_.RunUntil([&]() { return *commit_state != 0; },
                      500 * kMillisecond);
  }

  void DoCrashOrRestartStorageNode(const ChaosOp& op) {
    const auto ids = cluster_.StorageNodeIds();
    if (!crashed_.empty() && (op.pick_a & 1) != 0) {
      const NodeId id = *crashed_.begin();
      cluster_.network().Restart(id);
      crashed_.erase(id);
      return;
    }
    if (crashed_.size() >= 2) return;  // keep quorums winnable
    const NodeId id = ids[op.pick_b % ids.size()];
    if (crashed_.contains(id)) return;
    cluster_.network().Crash(id);
    crashed_.insert(id);
  }

  void DoTogglePartition(const ChaosOp& op) {
    if (writer() == nullptr) return;
    const auto ids = cluster_.StorageNodeIds();
    const NodeId node = ids[op.pick_a % ids.size()];
    const auto pair = std::make_pair(writer()->id(), node);
    const bool blocked = !partitions_.contains(pair);
    cluster_.network().Partition(pair.first, pair.second, blocked);
    if (blocked) {
      partitions_.insert(pair);
    } else {
      partitions_.erase(pair);
    }
  }

  void DoCorruptRecord(const ChaosOp& op) {
    // Corrupt one stored record on one segment; the periodic scrub will
    // drop it and gossip will re-fill it from peers (§2.1 activity 8).
    std::vector<storage::SegmentStore*> stores;
    cluster_.ForEachSegment(
        [&stores](storage::StorageNode*, storage::SegmentStore* segment) {
          stores.push_back(segment);
        });
    if (stores.empty()) return;
    storage::SegmentStore* victim = stores[op.pick_a % stores.size()];
    const auto records = victim->hot_log().ChainAfter(kInvalidLsn, 16);
    if (records.empty()) return;
    victim->CorruptRecordForTest(records[op.pick_b % records.size()].lsn);
  }

  void DoWriterCrashRecover() {
    if (writer() == nullptr || !writer()->IsOpen()) return;
    cluster_.CrashWriter();
    cluster_.RunFor(10 * kMillisecond);
    // Recovery needs read quorums everywhere: heal the fleet first.
    HealEverything();
    const Status st = cluster_.RecoverWriterBlocking();
    if (!st.ok()) result_.status = st;
  }

  void DoReplaceSegment(const ChaosOp& op) {
    // Membership changes only from a calm fleet; racing them against
    // partitions is exercised by membership_test with tighter control.
    if (!crashed_.empty() || !partitions_.empty()) return;
    if (writer() == nullptr || !writer()->IsOpen()) return;
    const auto& pgs = cluster_.geometry().pgs();
    const auto& pg = pgs[op.pick_a % pgs.size()];
    if (pg.HasPendingChange()) return;
    const auto members = pg.AllMembers();
    const SegmentId victim = members[op.pick_b % members.size()].id;
    // May legitimately fail (e.g. hydration still catching up); invariants
    // must hold either way.
    (void)cluster_.ReplaceSegmentBlocking(victim);
  }

  void DoAzBlip(const ChaosOp& op) {
    const auto azs = cluster_.AzIds();
    const AzId az = azs[op.pick_a % azs.size()];
    cluster_.network().FailAz(az);
    cluster_.RunFor(static_cast<SimDuration>(op.pick_b) * kMillisecond);
    cluster_.network().RestoreAz(az);
    // RestoreAz restarts every node in the AZ, including ones we crashed
    // individually.
    for (auto it = crashed_.begin(); it != crashed_.end();) {
      if (cluster_.network().AzOf(*it) == az) {
        it = crashed_.erase(it);
      } else {
        ++it;
      }
    }
    // The writer lives in an AZ too; if the blip took it down, bring it
    // back through crash recovery (its ephemeral state is gone).
    if (writer() != nullptr && !writer()->IsOpen()) {
      HealEverything();
      const Status st = cluster_.RecoverWriterBlocking();
      if (!st.ok()) result_.status = st;
    }
  }

  void DoFlapNode(const ChaosOp& op) {
    const auto ids = cluster_.StorageNodeIds();
    const NodeId node = ids[op.pick_a % ids.size()];
    // A flap ends with the node UP; flapping a node we track as crashed
    // would silently resurrect it and skew the crashed_ cap.
    if (crashed_.contains(node)) return;
    const SimDuration period =
        static_cast<SimDuration>(4 + op.pick_b % 32) * kMillisecond;
    const int count = 2 + static_cast<int>((op.pick_b >> 8) % 2);
    cluster_.failures().Flap(node, period, count);
  }

  /// Campaign pass condition: writer open, no active repairs or suspects,
  /// every PG settled on six healthy, hydrated members on live nodes.
  bool CampaignConverged() {
    if (writer() == nullptr || !writer()->IsOpen()) return false;
    if (planner_ != nullptr && planner_->ActiveCount() != 0) return false;
    if (monitor_ != nullptr && !monitor_->Suspects().empty()) return false;
    for (const auto& pg : cluster_.geometry().pgs()) {
      if (pg.HasPendingChange()) return false;
      const auto members = pg.AllMembers();
      if (members.size() != 6) return false;
      for (const auto& member : members) {
        if (!cluster_.network().IsUp(member.node)) return false;
        storage::StorageNode* node = cluster_.NodeForSegment(member.id);
        storage::SegmentStore* store =
            node != nullptr ? node->FindSegment(member.id) : nullptr;
        if (store == nullptr || !store->hydrated()) return false;
      }
    }
    return true;
  }

  std::string DescribeNonConvergence() {
    std::string out = "campaign did not re-converge: ";
    if (writer() == nullptr || !writer()->IsOpen()) out += "[writer closed] ";
    if (planner_ != nullptr && planner_->ActiveCount() != 0) {
      out += "[" + std::to_string(planner_->ActiveCount()) +
             " repair job(s) still active] ";
    }
    if (monitor_ != nullptr && !monitor_->Suspects().empty()) {
      out += "[" + std::to_string(monitor_->Suspects().size()) +
             " segment(s) still suspected] ";
    }
    for (const auto& pg : cluster_.geometry().pgs()) {
      if (pg.HasPendingChange()) {
        out += "[pg " + std::to_string(pg.pg()) + " mid-change] ";
      }
      for (const auto& member : pg.AllMembers()) {
        if (!cluster_.network().IsUp(member.node)) {
          out += "[segment " + std::to_string(member.id) + " node down] ";
          continue;
        }
        storage::StorageNode* node = cluster_.NodeForSegment(member.id);
        storage::SegmentStore* store =
            node != nullptr ? node->FindSegment(member.id) : nullptr;
        if (store == nullptr) {
          out += "[segment " + std::to_string(member.id) + " missing] ";
        } else if (!store->hydrated()) {
          out += "[segment " + std::to_string(member.id) + " hydrating] ";
        }
      }
    }
    return out;
  }

  void HealEverything() {
    for (const auto& [a, b] : partitions_) {
      cluster_.network().Partition(a, b, false);
    }
    partitions_.clear();
    for (NodeId id : crashed_) cluster_.network().Restart(id);
    crashed_.clear();
  }

  // Durability contract: every key reads back at or after its last
  // acknowledged write, and with a value actually written to it.
  void CheckDurability() {
    for (const auto& [key, acked_seq] : last_acked_) {
      auto value = cluster_.GetBlocking(key);
      if (!value.ok()) {
        result_.errors.push_back("acked key " + key + " unreadable: " +
                                 value.status().ToString());
        continue;
      }
      const uint64_t seq = SeqOf(*value);
      if (!written_[key].contains(seq)) {
        result_.errors.push_back(key + " holds " + *value +
                                 ", never written to it");
      }
      if (seq < acked_seq) {
        result_.errors.push_back(key + " regressed below its last acked "
                                 "write (" + *value + " < v" +
                                 std::to_string(acked_seq) + ")");
      }
    }
  }

  const ChaosSchedule& schedule_;
  const ChaosRunOptions& options_;
  AuroraCluster cluster_;
  std::unique_ptr<InvariantAuditor> auditor_;
  std::unique_ptr<HealthMonitor> monitor_;
  std::unique_ptr<RepairPlanner> planner_;
  ChaosRunResult result_;

  uint64_t next_seq_ = 0;
  bool poison_armed_ = false;
  std::map<std::string, std::set<uint64_t>> written_;
  std::map<std::string, uint64_t> last_acked_;
  std::set<NodeId> crashed_;
  std::set<std::pair<NodeId, NodeId>> partitions_;
};

bool HasViolation(const ChaosRunResult& result, const std::string& invariant) {
  for (const AuditViolation& v : result.violations) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

}  // namespace

sim::FaultOp ChaosOp::ToFaultOp() const {
  sim::FaultOp op;
  op.kind = KindToName(kind);
  op.args = {static_cast<int64_t>(pick_a), static_cast<int64_t>(pick_b)};
  op.advance_us = advance;
  return op;
}

Result<ChaosOp> ChaosOp::FromFaultOp(const sim::FaultOp& op) {
  ChaosOp out;
  bool known = false;
  for (const auto& [kind, name] : kKindNames) {
    if (op.kind == name) {
      out.kind = kind;
      known = true;
      break;
    }
  }
  if (!known) {
    return Status::NotSupported("unknown chaos op kind \"" + op.kind + "\"");
  }
  if (op.args.size() != 2) {
    return Status::Corruption("chaos op \"" + op.kind + "\" wants 2 args, has " +
                              std::to_string(op.args.size()));
  }
  out.pick_a = static_cast<uint64_t>(op.args[0]);
  out.pick_b = static_cast<uint64_t>(op.args[1]);
  out.advance = op.advance_us;
  return out;
}

ChaosSchedule GenerateChaosSchedule(uint64_t seed, int num_ops) {
  ChaosSchedule schedule;
  schedule.seed = seed;
  Rng rng(seed * 7919 + 13);
  for (int i = 0; i < num_ops; ++i) {
    ChaosOp op;
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 50) {
      op.kind = ChaosOpKind::kPut;
      op.pick_a = rng.NextBounded(48);
    } else if (dice < 62) {
      op.kind = ChaosOpKind::kCrashOrRestartNode;
      op.pick_a = rng.NextBounded(2);
      op.pick_b = rng.NextBounded(1 << 16);
    } else if (dice < 72) {
      op.kind = ChaosOpKind::kTogglePartition;
      op.pick_a = rng.NextBounded(1 << 16);
    } else if (dice < 80) {
      op.kind = ChaosOpKind::kCorruptRecord;
      op.pick_a = rng.NextBounded(1 << 16);
      op.pick_b = rng.NextBounded(1 << 16);
    } else if (dice < 88) {
      op.kind = ChaosOpKind::kWriterCrashRecover;
    } else if (dice < 94) {
      op.kind = ChaosOpKind::kReplaceSegment;
      op.pick_a = rng.NextBounded(1 << 16);
      op.pick_b = rng.NextBounded(1 << 16);
    } else {
      op.kind = ChaosOpKind::kAzBlip;
      op.pick_a = rng.NextBounded(1 << 16);
      op.pick_b = 1 + rng.NextBounded(50);  // blip duration, ms
    }
    op.advance = static_cast<SimDuration>(rng.NextBounded(20)) * kMillisecond;
    schedule.ops.push_back(op);
  }
  return schedule;
}

ChaosSchedule GenerateCampaignSchedule(uint64_t seed, int num_ops) {
  ChaosSchedule schedule;
  schedule.seed = seed;
  Rng rng(seed * 104729 + 31);
  for (int i = 0; i < num_ops; ++i) {
    ChaosOp op;
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 45) {
      op.kind = ChaosOpKind::kPut;
      op.pick_a = rng.NextBounded(48);
    } else if (dice < 60) {
      op.kind = ChaosOpKind::kCrashOrRestartNode;
      op.pick_a = rng.NextBounded(2);
      op.pick_b = rng.NextBounded(1 << 16);
    } else if (dice < 70) {
      op.kind = ChaosOpKind::kTogglePartition;
      op.pick_a = rng.NextBounded(1 << 16);
    } else if (dice < 78) {
      op.kind = ChaosOpKind::kFlapNode;
      op.pick_a = rng.NextBounded(1 << 16);
      op.pick_b = rng.NextBounded(1 << 16);
    } else if (dice < 86) {
      op.kind = ChaosOpKind::kCorruptRecord;
      op.pick_a = rng.NextBounded(1 << 16);
      op.pick_b = rng.NextBounded(1 << 16);
    } else if (dice < 92) {
      op.kind = ChaosOpKind::kWriterCrashRecover;
    } else {
      op.kind = ChaosOpKind::kAzBlip;
      op.pick_a = rng.NextBounded(1 << 16);
      op.pick_b = 1 + rng.NextBounded(50);  // blip duration, ms
    }
    // Longer inter-op windows than the plain mix: the control plane needs
    // room to suspect, begin, hydrate, and commit between punches.
    op.advance =
        static_cast<SimDuration>(5 + rng.NextBounded(35)) * kMillisecond;
    schedule.ops.push_back(op);
  }
  return schedule;
}

ChaosRunResult RunChaosSchedule(const ChaosSchedule& schedule,
                                const ChaosRunOptions& options) {
  return ChaosExecutor(schedule, options).Run();
}

void ScheduleToTrace(const ChaosSchedule& schedule, sim::Trace* trace) {
  trace->Clear();
  trace->seed = schedule.seed;
  trace->scenario = "chaos";
  trace->ops.reserve(schedule.ops.size());
  for (const ChaosOp& op : schedule.ops) trace->ops.push_back(op.ToFaultOp());
}

Result<ChaosSchedule> ScheduleFromTrace(const sim::Trace& trace) {
  ChaosSchedule schedule;
  schedule.seed = trace.seed;
  for (const sim::FaultOp& fault_op : trace.ops) {
    auto op = ChaosOp::FromFaultOp(fault_op);
    if (!op.ok()) return op.status();
    schedule.ops.push_back(*op);
  }
  return schedule;
}

Result<ChaosShrinkResult> ShrinkChaosViolation(const ChaosSchedule& schedule,
                                               const std::string& invariant,
                                               bool campaign) {
  ChaosRunOptions replay_options;
  replay_options.check_durability = false;
  replay_options.campaign = campaign;

  auto run_subset = [&](const ChaosSchedule& subset) {
    return HasViolation(RunChaosSchedule(subset, replay_options), invariant);
  };
  auto subset_of = [&](const std::vector<size_t>& kept) {
    ChaosSchedule subset;
    subset.seed = schedule.seed;
    for (size_t i : kept) subset.ops.push_back(schedule.ops[i]);
    return subset;
  };

  ChaosShrinkResult result;
  result.invariant = invariant;
  result.original_ops = schedule.ops.size();

  // The shrink is only meaningful if the input reproduces at all.
  ++result.replays;
  if (!run_subset(schedule)) {
    return Status::InvalidArgument(
        "schedule does not reproduce invariant \"" + invariant + "\"");
  }

  // Phase 1+2 (drop halves, then individual ops): ddmin to a 1-minimal
  // op subset.
  sim::ShrinkStats op_stats;
  const std::vector<size_t> kept = sim::DdMin(
      schedule.ops.size(),
      [&](const std::vector<size_t>& indices) {
        return run_subset(subset_of(indices));
      },
      &op_stats);
  result.minimized = subset_of(kept);
  result.replays += op_stats.attempts;

  // Phase 3: tighten the virtual-time window between the surviving ops.
  std::vector<int64_t> advances;
  advances.reserve(result.minimized.ops.size());
  for (const ChaosOp& op : result.minimized.ops) advances.push_back(op.advance);
  sim::ShrinkStats window_stats;
  advances = sim::TightenValues(
      advances,
      [&](const std::vector<int64_t>& candidate) {
        ChaosSchedule attempt = result.minimized;
        for (size_t i = 0; i < candidate.size(); ++i) {
          attempt.ops[i].advance = candidate[i];
        }
        return run_subset(attempt);
      },
      &window_stats);
  for (size_t i = 0; i < advances.size(); ++i) {
    result.minimized.ops[i].advance = advances[i];
  }
  result.replays += window_stats.attempts;

  result.timeline = RenderTimeline(result.minimized);
  return result;
}

std::string RenderTimeline(const ChaosSchedule& schedule) {
  std::string out = "seed " + std::to_string(schedule.seed) + ", " +
                    std::to_string(schedule.ops.size()) + " ops\n";
  SimTime elapsed = 0;
  size_t index = 0;
  for (const ChaosOp& op : schedule.ops) {
    out += "  [" + std::to_string(index++) + "] t+" +
           std::to_string(elapsed / kMillisecond) + "ms " + KindToName(op.kind);
    switch (op.kind) {
      case ChaosOpKind::kPut:
        out += " key=k" + std::to_string(op.pick_a % 48);
        break;
      case ChaosOpKind::kWriterCrashRecover:
      case ChaosOpKind::kPoisonVdlArm:
      case ChaosOpKind::kPoisonVdlFire:
        break;
      default:
        out += " pick_a=" + std::to_string(op.pick_a) +
               " pick_b=" + std::to_string(op.pick_b);
        break;
    }
    out += " advance=" + std::to_string(op.advance / kMillisecond) + "ms\n";
    elapsed += op.advance;
  }
  return out;
}

}  // namespace aurora::core
