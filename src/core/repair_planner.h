// Autonomous Figure-5 repair: turns HealthMonitor suspicions into
// membership transitions, end to end, without consensus and without any
// blocking helper.
//
// Per suspected segment the planner runs one job through this state
// machine (every edge is an ordinary quorum operation; the job itself is
// only planner-local state and can be re-derived from suspicion at any
// time):
//
//   kProbing        async SCL probes of the group's members establish the
//     │             hydration target (max SCL over a read quorum of
//     │             hydrated replies). Aborted if suspicion clears first.
//   kBeginInstall   BeginReplace(old, fresh) computed; the replacement
//     │             segment is created un-hydrated on a live host in the
//     │             same AZ; the epoch+1 dual config installs at a write
//     │             quorum of the OLD config (retried until it lands —
//     │             membership installs are monotone and idempotent at
//     │             the nodes, so re-sending is always safe).
//   kHydrating      the replacement pulls from peers/archive. Exits:
//     │               hydrated            → kCommitInstall (Figure-5
//     │                                     roll-forward, epoch+2)
//     │               suspicion cleared   → kRevertInstall (the suspect
//     │                                     acked again; roll-back,
//     │                                     epoch+2, replacement dropped)
//     │               job deadline        → kRevertInstall (placement
//     │                                     went nowhere; a fresh job
//     │                                     will pick a new host)
//   kCommitInstall / kRevertInstall
//                   the exit config installs at a write quorum of the
//                   dual config, then the loser segment is dropped and
//                   the job erased.
//
// Concurrency is bounded per AZ, per segment server, and globally, and at
// most one job runs per protection group (the Figure-5 slot machinery
// supports nesting, but eager bounded repair keeps blast radius small —
// the paper's point is that each change is cheap, not that many must run
// at once). On a multi-tenant fleet (DESIGN.md §11) suspects compete for
// those bounded slots, so candidates are ranked most-degraded PG first: a
// tenant one failure away from losing write quorum is repaired before a
// tenant with a single slow segment, regardless of which volume raised
// the suspicion first. The per-server bound keeps one shared host from
// absorbing every hydration pull at once. MTTR (suspicion → commit) is
// recorded to `aurora.repair.mttr_us`.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/metrics.h"
#include "src/common/types.h"
#include "src/quorum/membership.h"

namespace aurora::core {

class AuroraCluster;
class HealthMonitor;

struct RepairPlannerOptions {
  /// Cadence of the decision loop.
  SimDuration tick_interval = 20 * kMillisecond;
  /// Concurrent repair bounds (jobs, not epochs).
  size_t max_concurrent_per_az = 1;
  size_t max_concurrent_total = 2;
  /// At most this many jobs may hydrate onto one segment server at a
  /// time: on a shared fleet every replacement is a full-prefix pull, and
  /// an unbounded pile-up on the least-loaded host would turn one server
  /// loss into a fleet-wide noisy neighbor. (With the default global
  /// bound of two this never binds; it matters when a multi-tenant
  /// deployment raises max_concurrent_total.)
  size_t max_concurrent_per_server = 2;
  /// How long kProbing waits for a read quorum of SCL replies before
  /// re-probing (the PG may be temporarily unreachable).
  SimDuration probe_window = 500 * kMillisecond;
  /// Re-kick the hydration pull if the replacement made no visible
  /// progress for this long.
  SimDuration hydration_retry = 500 * kMillisecond;
  /// Per-attempt timeout for one config install quorum.
  SimDuration install_timeout = 2 * kSecond;
  /// A job stuck in the dual-quorum state longer than this rolls back so
  /// a fresh job can pick a different host.
  SimDuration job_deadline = 20 * kSecond;
};

class RepairPlanner {
 public:
  enum class JobState {
    kProbing,
    kBeginInstall,
    kHydrating,
    kCommitInstall,
    kRevertInstall,
  };

  struct RepairJob {
    SegmentId old_segment = kInvalidSegment;
    SegmentId new_segment = kInvalidSegment;
    /// Owning volume: pg ids are per-volume ordinals on a shared fleet,
    /// so (volume, pg) — not pg alone — names the protection group.
    VolumeId volume = 0;
    ProtectionGroupId pg = 0;
    AzId az = 0;
    JobState state = JobState::kProbing;
    /// When the planner decided to act (job creation).
    SimTime decided_at = 0;
    /// Monitor evidence captured at decision time; MTTR base.
    SimTime suspected_since = 0;
    SimTime probe_deadline = 0;
    SimTime deadline = 0;
    Lsn target_scl = kInvalidLsn;
    /// Distinct hydrated members that answered an SCL probe. A member
    /// replying in several probe rounds (or a stale duplicate reply)
    /// must not inflate the count: the hydration target is only a safe
    /// read quorum when kSclProbeQuorum DIFFERENT members contribute.
    std::set<SegmentId> probe_responders;
    NodeId host_node = kInvalidNode;
    bool install_in_flight = false;
    uint64_t install_attempts = 0;
    SimTime last_pull_at = 0;
    /// The dual (mid-change) config while one is pending, and the chosen
    /// exit config during kCommitInstall/kRevertInstall.
    std::optional<quorum::PgConfig> pending_config;
    std::optional<quorum::PgConfig> exit_config;
  };

  struct PlannerStats {
    uint64_t jobs_started = 0;
    uint64_t begun = 0;
    uint64_t committed = 0;
    uint64_t reverted = 0;
    uint64_t failed = 0;
    uint64_t aborted_before_begin = 0;
  };

  RepairPlanner(AuroraCluster* cluster, HealthMonitor* monitor,
                RepairPlannerOptions options = {});

  void Start();
  void Stop();
  bool running() const { return running_; }

  /// Active jobs keyed by the suspected (old) segment; completed jobs are
  /// erased, so this is the planner's live working set.
  const std::map<SegmentId, RepairJob>& jobs() const { return jobs_; }
  size_t ActiveCount() const { return jobs_.size(); }
  const PlannerStats& stats() const { return stats_; }
  /// Suspicion→commit latency, recorded regardless of the metrics switch
  /// so campaign reports work without enabling the global registry.
  const Histogram& mttr() const { return mttr_; }

 private:
  void Tick();
  void StartNewJobs();
  void AdvanceJobs();
  void ProbeScls(SegmentId old_segment);
  void BeginChange(RepairJob& job);
  void StartInstall(RepairJob& job);
  void FinishCommit(RepairJob& job);
  void FinishRevert(RepairJob& job);
  const quorum::PgConfig* FindConfig(SegmentId segment,
                                     VolumeId* volume = nullptr) const;
  size_t JobsInAz(AzId az) const;
  size_t JobsOnServer(NodeId node) const;
  bool PgHasJob(VolumeId volume, ProtectionGroupId pg) const;

  AuroraCluster* cluster_;
  HealthMonitor* monitor_;
  RepairPlannerOptions options_;
  bool running_ = false;
  uint64_t generation_ = 0;

  std::map<SegmentId, RepairJob> jobs_;
  PlannerStats stats_;
  Histogram mttr_;

  metrics::Counter* m_begun_;
  metrics::Counter* m_committed_;
  metrics::Counter* m_reverted_;
  metrics::Counter* m_failed_;
  metrics::Gauge* m_active_;
  Histogram* m_mttr_us_;
};

}  // namespace aurora::core
