// Client sessions with read-your-writes (session consistency).
//
// §3.3: replica read views anchor at VDL control points shipped by the
// writer. A session extends that to a client-visible guarantee: every
// acknowledged write carries an SCN, the session remembers the highest
// SCN it was acked ("the session anchor"), and reads routed to replicas
// first wait until the replica's VDL has reached the anchor. Because the
// writer only acks a commit once it is durable (SCN <= VCL) and
// recovery re-establishes VDL at or above every acked SCN (§2.4), the
// anchor survives writer failovers and replica promotes — the session
// can never observe a database state older than its own last write.
//
// The session is itself a simulated network node: requests to the
// writer and to replicas cross the network, so sessions compose with
// AZ placement, partitions, and the sharded parallel engine (their
// traffic is messages, never cross-shard calls).

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace aurora::engine {
class DbInstance;
}  // namespace aurora::engine

namespace aurora::replica {
class ReadReplica;
}  // namespace aurora::replica

namespace aurora::core {

class AuroraCluster;

struct SessionOptions {
  /// Round-robin starting offset into the replica fleet (spreads
  /// sessions across replicas deterministically).
  size_t replica_offset = 0;
  /// Writer-fallback poll cadence: a fallback read must still honor the
  /// anchor, so it polls the writer's VDL at this interval (the poll
  /// runs on the writer's shard, reached via one network hop).
  SimDuration writer_poll = 1 * kMillisecond;
  /// Give up on an operation after this long (replica wait + writer
  /// fallback + a watchdog for messages lost to crashes/partitions).
  SimDuration op_timeout = 10 * kSecond;
};

struct SessionStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t scans = 0;
  /// Reads served by a replica (possibly after an anchor wait).
  uint64_t replica_reads = 0;
  /// Reads that fell back to the writer (no ready replica, anchor-wait
  /// timeout, or replica error).
  uint64_t writer_fallbacks = 0;
};

/// One client session bound to a cluster. Not thread-safe; lives on the
/// simulator shard of its registered node (the cluster places it on the
/// writer's shard so its callbacks never cross shards).
class ClientSession {
 public:
  /// Registers a client endpoint node in `az` on the cluster's network.
  ClientSession(AuroraCluster* cluster, AzId az,
                SessionOptions options = {});

  NodeId node() const { return node_; }
  /// Highest acked commit SCN (kInvalidLsn before the first write).
  Lsn anchor() const { return anchor_; }
  const SessionStats& stats() const { return stats_; }

  /// Autocommit write through the writer; advances the session anchor
  /// to the commit SCN on ack.
  void Put(const std::string& key, const std::string& value,
           std::function<void(Status)> cb);

  /// Session-consistent read: routed to a replica anchored at the
  /// session's last commit, falling back to the writer when no replica
  /// can serve the anchor in time.
  void Get(const std::string& key,
           std::function<void(Result<std::string>)> cb);

  /// Session-consistent range scan (same routing as Get).
  void Scan(const std::string& lo, const std::string& hi, size_t limit,
            std::function<void(
                Result<std::vector<std::pair<std::string, std::string>>>)>
                cb);

 private:
  /// Next live replica in round-robin order, or nullptr.
  replica::ReadReplica* PickReplica();
  /// Runs `op(writer)` on the writer's shard once the writer is open
  /// with VDL >= `anchor`; `fail()` after `deadline`. Re-resolves the
  /// current writer each poll so it rides through failovers.
  void RunAtWriterAnchor(Lsn anchor, SimTime deadline,
                         std::function<void(engine::DbInstance*)> op,
                         std::function<void()> fail);
  void GetFromWriter(const std::string& key, Lsn anchor, SimTime deadline,
                     std::function<void(Result<std::string>)> cb);
  void ScanFromWriter(
      const std::string& lo, const std::string& hi, size_t limit,
      Lsn anchor, SimTime deadline,
      std::function<void(
          Result<std::vector<std::pair<std::string, std::string>>>)>
          cb);

  AuroraCluster* cluster_;
  NodeId node_;
  AzId az_;
  SessionOptions options_;
  Lsn anchor_ = kInvalidLsn;
  size_t rr_cursor_ = 0;
  SessionStats stats_;
};

}  // namespace aurora::core
