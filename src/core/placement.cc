#include "src/core/placement.h"

#include <algorithm>

namespace aurora::core {

PlacementService::PlacementService(PlacementOptions options)
    : options_(options) {}

void PlacementService::RegisterServer(NodeId node, AzId az) {
  if (servers_.contains(node)) return;
  servers_[node] = az;
  auto& list = by_az_[az];
  list.insert(std::upper_bound(list.begin(), list.end(), node), node);
}

void PlacementService::SetLoadSource(LoadFn load) { load_ = std::move(load); }

void PlacementService::SetLiveness(LivenessFn is_up) {
  is_up_ = std::move(is_up);
}

std::vector<AzId> PlacementService::Azs() const {
  std::vector<AzId> azs;
  azs.reserve(by_az_.size());
  for (const auto& [az, _] : by_az_) azs.push_back(az);
  return azs;
}

const std::vector<NodeId>& PlacementService::ServersIn(AzId az) const {
  static const std::vector<NodeId> kEmpty;
  auto it = by_az_.find(az);
  return it == by_az_.end() ? kEmpty : it->second;
}

size_t PlacementService::LoadOf(NodeId node) const {
  return load_ ? load_(node) : 0;
}

bool PlacementService::IsUp(NodeId node) const {
  return is_up_ ? is_up_(node) : true;
}

NodeId PlacementService::PickLeastLoaded(AzId az,
                                         const std::set<NodeId>& exclude,
                                         bool require_up) const {
  // Candidates sort by (load, node id): deterministic, no RNG, so the
  // same fleet state always yields the same placement.
  NodeId best = kInvalidNode;
  size_t best_load = 0;
  NodeId best_down = kInvalidNode;
  size_t best_down_load = 0;
  for (NodeId node : ServersIn(az)) {
    if (exclude.contains(node)) continue;
    size_t load = LoadOf(node);
    if (IsUp(node)) {
      if (best == kInvalidNode || load < best_load) {
        best = node;
        best_load = load;
      }
    } else if (best_down == kInvalidNode || load < best_down_load) {
      best_down = node;
      best_down_load = load;
    }
  }
  if (best != kInvalidNode) return best;
  return require_up ? kInvalidNode : best_down;
}

Result<std::vector<quorum::SegmentInfo>> PlacementService::PlacePg(
    VolumeId volume, quorum::QuorumModel model,
    const std::function<SegmentId()>& alloc_id) const {
  std::vector<quorum::SegmentInfo> members;
  std::set<NodeId> used;  // rule 2: fleet-wide server anti-affinity
  for (const auto& [az, _] : by_az_) {
    for (size_t copy = 0; copy < options_.copies_per_az; ++copy) {
      NodeId host = PickLeastLoaded(az, used, /*require_up=*/true);
      if (host == kInvalidNode) {
        return Status::Unavailable(
            "placement: AZ " + std::to_string(az) + " lacks " +
            std::to_string(options_.copies_per_az) +
            " distinct live servers");
      }
      used.insert(host);
      quorum::SegmentInfo info;
      info.id = alloc_id();
      info.node = host;
      info.az = az;
      // Mirrors the legacy BuildPgConfig shape: under full/tail, the
      // first copy per AZ materializes blocks, the second is redo-only.
      info.is_full =
          model == quorum::QuorumModel::kFullTail ? (copy == 0) : true;
      info.volume = volume;
      members.push_back(info);
    }
  }
  return members;
}

Result<NodeId> PlacementService::PickReplacement(
    const quorum::PgConfig& config, AzId az) const {
  std::set<NodeId> exclude;
  for (const auto& member : config.AllMembers()) exclude.insert(member.node);
  NodeId host = PickLeastLoaded(az, exclude, /*require_up=*/false);
  if (host == kInvalidNode) {
    return Status::Unavailable(
        "placement: no anti-affine replacement host in AZ " +
        std::to_string(az));
  }
  return host;
}

std::vector<PlacementService::Displaced> PlacementService::PlanRebalance(
    NodeId lost, const std::vector<quorum::PgConfig>& configs) const {
  std::vector<Displaced> plan;
  for (const auto& config : configs) {
    for (const auto& member : config.AllMembers()) {
      if (member.node != lost) continue;
      Displaced d;
      d.volume = member.volume;
      d.pg = config.pg();
      d.segment = member.id;
      d.az = member.az;
      auto host = PickReplacement(config, member.az);
      d.suggested_host = host.ok() ? *host : kInvalidNode;
      plan.push_back(d);
    }
  }
  return plan;
}

}  // namespace aurora::core
