// Redo log records and their binary codec.
//
// Each record stores three back-chain pointers (§2.2):
//  * the LSN of the preceding record in the volume (full log chain —
//    fallback path for regenerating volume metadata),
//  * the previous LSN for the protection group's segment log (the
//    "segment chain" used for gap detection, gossip, and SCL),
//  * the previous LSN for the block being modified (the "block chain" used
//    to materialize individual blocks on demand).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/common/types.h"

namespace aurora::log {

/// What kind of change a record carries.
enum class RecordType : uint8_t {
  /// A change to one data block (payload = encoded PageOp).
  kData = 0,
  /// A transaction commit marker; its LSN is the transaction's SCN (§2.3).
  kCommit = 1,
  /// A control record carrying no block change (epoch bumps, tests).
  kControl = 2,
};

/// Position of a record within its mini-transaction (§3.2). VDL is the
/// highest LSN <= VCL that completes an MTR, i.e. has kSingle or kEnd.
enum class MtrBoundary : uint8_t {
  kSingle = 0,
  kBegin = 1,
  kMiddle = 2,
  kEnd = 3,
};

/// One redo log record. LSNs are allocated by the writer instance only and
/// are unique volume-wide.
struct RedoRecord {
  Lsn lsn = kInvalidLsn;
  Lsn prev_lsn_volume = kInvalidLsn;
  /// Previous LSN for this protection group's log ("segment chain").
  Lsn prev_lsn_segment = kInvalidLsn;
  /// Previous LSN for the target block ("block chain").
  Lsn prev_lsn_block = kInvalidLsn;
  ProtectionGroupId pg = 0;
  BlockId block = kInvalidBlock;
  TxnId txn = kInvalidTxn;
  RecordType type = RecordType::kData;
  MtrBoundary mtr = MtrBoundary::kSingle;
  std::string payload;

  /// True if this record closes its mini-transaction.
  bool IsMtrComplete() const {
    return mtr == MtrBoundary::kSingle || mtr == MtrBoundary::kEnd;
  }

  /// Bytes this record occupies on the wire / on disk (header + payload).
  uint64_t SerializedSize() const;

  bool operator==(const RedoRecord&) const = default;

  std::string ToString() const;
};

/// Serializes a record with a trailing CRC-32C. The scrubber re-validates
/// this checksum against stored bytes.
std::string EncodeRecord(const RedoRecord& record);

/// Decodes a record, verifying length framing and CRC. Returns
/// Status::Corruption on any mismatch.
Result<RedoRecord> DecodeRecord(std::string_view encoded);

/// CRC-32C of the record's serialized body (header + payload, EXCLUDING
/// the trailing checksum field). This is what integrity checks must
/// compare: the checksum of encoding-plus-trailing-CRC is a constant
/// residue for every record and detects nothing.
uint32_t RecordBodyCrc(const RedoRecord& record);

}  // namespace aurora::log
