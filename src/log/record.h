// Redo log records and their binary codec.
//
// Each record stores three back-chain pointers (§2.2):
//  * the LSN of the preceding record in the volume (full log chain —
//    fallback path for regenerating volume metadata),
//  * the previous LSN for the protection group's segment log (the
//    "segment chain" used for gap detection, gossip, and SCL),
//  * the previous LSN for the block being modified (the "block chain" used
//    to materialize individual blocks on demand).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "src/common/status.h"
#include "src/common/types.h"

namespace aurora::log {

/// Refcounted immutable record payload.
///
/// A redo record fans out to many holders on the hot path — six segment
/// boxcars, the driver's retransmission buffer, the wire message, each
/// segment's hot log, gossip replies, replication streams, the archive.
/// All of them share ONE immutable buffer; copying a record bumps a
/// refcount instead of duplicating bytes. Construction from std::string is
/// implicit so producers keep writing `record.payload = EncodePageOp(op)`.
class Payload {
 public:
  Payload() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): payloads ARE strings.
  Payload(std::string bytes)
      : bytes_(bytes.empty() ? nullptr
                             : std::make_shared<const std::string>(
                                   std::move(bytes))) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Payload(const char* bytes) : Payload(std::string(bytes)) {}

  std::string_view view() const {
    return bytes_ ? std::string_view(*bytes_) : std::string_view();
  }
  size_t size() const { return bytes_ ? bytes_->size() : 0; }
  bool empty() const { return size() == 0; }
  const char* data() const { return bytes_ ? bytes_->data() : nullptr; }
  char operator[](size_t i) const { return (*bytes_)[i]; }

  /// Content equality (not pointer identity): decoded copies of the same
  /// record must compare equal to the original.
  bool operator==(const Payload& other) const {
    return bytes_ == other.bytes_ || view() == other.view();
  }

 private:
  std::shared_ptr<const std::string> bytes_;
};

/// What kind of change a record carries.
enum class RecordType : uint8_t {
  /// A change to one data block (payload = encoded PageOp).
  kData = 0,
  /// A transaction commit marker; its LSN is the transaction's SCN (§2.3).
  kCommit = 1,
  /// A control record carrying no block change (epoch bumps, tests).
  kControl = 2,
};

/// Position of a record within its mini-transaction (§3.2). VDL is the
/// highest LSN <= VCL that completes an MTR, i.e. has kSingle or kEnd.
enum class MtrBoundary : uint8_t {
  kSingle = 0,
  kBegin = 1,
  kMiddle = 2,
  kEnd = 3,
};

/// One redo log record. LSNs are allocated by the writer instance only and
/// are unique volume-wide.
struct RedoRecord {
  Lsn lsn = kInvalidLsn;
  Lsn prev_lsn_volume = kInvalidLsn;
  /// Previous LSN for this protection group's log ("segment chain").
  Lsn prev_lsn_segment = kInvalidLsn;
  /// Previous LSN for the target block ("block chain").
  Lsn prev_lsn_block = kInvalidLsn;
  ProtectionGroupId pg = 0;
  BlockId block = kInvalidBlock;
  TxnId txn = kInvalidTxn;
  RecordType type = RecordType::kData;
  MtrBoundary mtr = MtrBoundary::kSingle;
  Payload payload;

  /// True if this record closes its mini-transaction.
  bool IsMtrComplete() const {
    return mtr == MtrBoundary::kSingle || mtr == MtrBoundary::kEnd;
  }

  /// Bytes this record occupies on the wire / on disk (header + payload).
  uint64_t SerializedSize() const;

  bool operator==(const RedoRecord&) const = default;

  std::string ToString() const;
};

/// Serializes a record with a trailing CRC-32C. The scrubber re-validates
/// this checksum against stored bytes.
std::string EncodeRecord(const RedoRecord& record);

/// Decodes a record, verifying length framing and CRC. Returns
/// Status::Corruption on any mismatch.
Result<RedoRecord> DecodeRecord(std::string_view encoded);

/// CRC-32C of the record's serialized body (header + payload, EXCLUDING
/// the trailing checksum field). This is what integrity checks must
/// compare: the checksum of encoding-plus-trailing-CRC is a constant
/// residue for every record and detects nothing.
uint32_t RecordBodyCrc(const RedoRecord& record);

}  // namespace aurora::log
