#include "src/log/record.h"

#include <cstring>

#include "src/common/crc32.h"

namespace aurora::log {

namespace {

constexpr size_t kHeaderSize = 8 * 4 +  // lsn + 3 chain pointers
                               4 +      // pg
                               8 +      // block
                               8 +      // txn
                               1 +      // type
                               1 +      // mtr
                               4;       // payload length

void PutU32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

uint64_t RedoRecord::SerializedSize() const {
  return kHeaderSize + payload.size() + 4;  // + CRC
}

std::string RedoRecord::ToString() const {
  std::string out = "RedoRecord{lsn=" + std::to_string(lsn) +
                    " prev_vol=" + std::to_string(prev_lsn_volume) +
                    " prev_seg=" + std::to_string(prev_lsn_segment) +
                    " prev_blk=" + std::to_string(prev_lsn_block) +
                    " pg=" + std::to_string(pg);
  out += " block=" + (block == kInvalidBlock ? std::string("-")
                                             : std::to_string(block));
  out += " txn=" + std::to_string(txn);
  switch (type) {
    case RecordType::kData:
      out += " DATA";
      break;
    case RecordType::kCommit:
      out += " COMMIT";
      break;
    case RecordType::kControl:
      out += " CONTROL";
      break;
  }
  switch (mtr) {
    case MtrBoundary::kSingle:
      out += "/single";
      break;
    case MtrBoundary::kBegin:
      out += "/begin";
      break;
    case MtrBoundary::kMiddle:
      out += "/middle";
      break;
    case MtrBoundary::kEnd:
      out += "/end";
      break;
  }
  out += " payload=" + std::to_string(payload.size()) + "B}";
  return out;
}

namespace {

/// Serializes the fixed header into a caller-provided stack buffer.
void EncodeHeader(const RedoRecord& record, char (&buf)[kHeaderSize]) {
  char* p = buf;
  auto put64 = [&p](uint64_t v) {
    std::memcpy(p, &v, 8);
    p += 8;
  };
  auto put32 = [&p](uint32_t v) {
    std::memcpy(p, &v, 4);
    p += 4;
  };
  put64(record.lsn);
  put64(record.prev_lsn_volume);
  put64(record.prev_lsn_segment);
  put64(record.prev_lsn_block);
  put32(record.pg);
  put64(record.block);
  put64(record.txn);
  *p++ = static_cast<char>(record.type);
  *p++ = static_cast<char>(record.mtr);
  put32(static_cast<uint32_t>(record.payload.size()));
}

}  // namespace

uint32_t RecordBodyCrc(const RedoRecord& record) {
  // Allocation-free: CRC the stack-encoded header, then continue over the
  // shared payload bytes in place. Scrub calls this for every stored
  // record, so it must not materialize a full encoding each time.
  char header[kHeaderSize];
  EncodeHeader(record, header);
  const uint32_t header_crc = Crc32c(header, kHeaderSize);
  return Crc32c(record.payload.data(), record.payload.size(), header_crc);
}

std::string EncodeRecord(const RedoRecord& record) {
  std::string out;
  out.reserve(record.SerializedSize());
  char header[kHeaderSize];
  EncodeHeader(record, header);
  out.append(header, kHeaderSize);
  out.append(record.payload.view());
  PutU32(out, Crc32c(out.data(), out.size()));
  return out;
}

Result<RedoRecord> DecodeRecord(std::string_view encoded) {
  if (encoded.size() < kHeaderSize + 4) {
    return Status::Corruption("record too short");
  }
  const char* p = encoded.data();
  RedoRecord rec;
  rec.lsn = GetU64(p);
  rec.prev_lsn_volume = GetU64(p + 8);
  rec.prev_lsn_segment = GetU64(p + 16);
  rec.prev_lsn_block = GetU64(p + 24);
  rec.pg = GetU32(p + 32);
  rec.block = GetU64(p + 36);
  rec.txn = GetU64(p + 44);
  const uint8_t type = static_cast<uint8_t>(p[52]);
  const uint8_t mtr = static_cast<uint8_t>(p[53]);
  if (type > static_cast<uint8_t>(RecordType::kControl) ||
      mtr > static_cast<uint8_t>(MtrBoundary::kEnd)) {
    return Status::Corruption("bad record enum");
  }
  rec.type = static_cast<RecordType>(type);
  rec.mtr = static_cast<MtrBoundary>(mtr);
  const uint32_t payload_len = GetU32(p + 54);
  if (encoded.size() != kHeaderSize + payload_len + 4) {
    return Status::Corruption("record length mismatch");
  }
  rec.payload = std::string(p + kHeaderSize, payload_len);
  const uint32_t stored_crc = GetU32(p + kHeaderSize + payload_len);
  const uint32_t computed_crc = Crc32c(p, kHeaderSize + payload_len);
  if (stored_crc != computed_crc) {
    return Status::Corruption("record CRC mismatch");
  }
  return rec;
}

}  // namespace aurora::log
