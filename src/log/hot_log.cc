#include "src/log/hot_log.h"

#include <algorithm>
#include <string>

#include "src/common/metrics.h"

namespace aurora::log {

SegmentHotLog::Iter SegmentHotLog::LowerBound(Lsn lsn) const {
  return std::lower_bound(
      records_.begin(), records_.end(), lsn,
      [](const RedoRecord& r, Lsn value) { return r.lsn < value; });
}

bool SegmentHotLog::Annulled(Lsn lsn) const {
  for (const auto& range : truncations_) {
    if (range.Annuls(lsn)) return true;
  }
  return false;
}

Status SegmentHotLog::Append(const RedoRecord& record) {
  if (record.lsn == kInvalidLsn) {
    return Status::InvalidArgument("record has invalid LSN");
  }
  if (Annulled(record.lsn)) {
    // Late-arriving in-flight write from before a crash: annulled.
    return Status::OK();
  }
  if (record.lsn <= gc_floor_ && gc_floor_ != kInvalidLsn) {
    return Status::OK();  // already coalesced + collected
  }
  // Hot path: a single writer allocates LSNs monotonically, so almost
  // every arrival lands past the current back — O(1), no node allocation.
  if (records_.empty() || record.lsn > records_.back().lsn) {
    records_.push_back(record);
  } else {
    const Iter it = LowerBound(record.lsn);
    if (it != records_.end() && it->lsn == record.lsn) {
      return Status::OK();  // idempotent re-delivery
    }
    // Out-of-order arrival (gossip fill, retransmission): sorted insert.
    records_.insert(records_.begin() + (it - records_.begin()), record);
  }
  total_bytes_ += record.SerializedSize();
  AdvanceScl();
  return Status::OK();
}

void SegmentHotLog::AdvanceScl() {
  // In sorted order the chain is implicit: the next stored record extends
  // the chain iff its segment back-pointer equals the current SCL.
  const Lsn before = scl_;
  Iter it = LowerBound(scl_ + 1);
  while (it != records_.end() && it->prev_lsn_segment == scl_) {
    scl_ = it->lsn;
    ++it;
  }
  if (scl_ != before && AURORA_METRICS_ON()) {
    metrics::Registry::Global().GetCounter("storage.scl_advances")->Add(1);
  }
}

void SegmentHotLog::RewindScl() {
  // Everything at or below the GC floor was chain-complete when evicted,
  // so the walk re-anchors there (or at the very start if nothing was
  // ever evicted).
  scl_ = gc_floor_;
  AdvanceScl();
}

bool SegmentHotLog::Contains(Lsn lsn) const {
  const Iter it = LowerBound(lsn);
  return it != records_.end() && it->lsn == lsn;
}

const RedoRecord* SegmentHotLog::Find(Lsn lsn) const {
  const Iter it = LowerBound(lsn);
  return (it != records_.end() && it->lsn == lsn) ? &*it : nullptr;
}

RedoRecord* SegmentHotLog::FindMutable(Lsn lsn) {
  const Iter it = LowerBound(lsn);
  if (it == records_.end() || it->lsn != lsn) return nullptr;
  return &records_[it - records_.begin()];
}

std::vector<RedoRecord> SegmentHotLog::ChainAfter(Lsn from_scl,
                                                  size_t max_records) const {
  std::vector<RedoRecord> out;
  Lsn cursor = from_scl;
  for (Iter it = LowerBound(from_scl + 1);
       it != records_.end() && out.size() < max_records &&
       it->prev_lsn_segment == cursor;
       ++it) {
    out.push_back(*it);
    cursor = it->lsn;
  }
  return out;
}

std::vector<RedoRecord> SegmentHotLog::RecordsAbove(
    Lsn lsn, size_t max_records) const {
  std::vector<RedoRecord> out;
  for (Iter it = LowerBound(lsn + 1);
       it != records_.end() && out.size() < max_records; ++it) {
    out.push_back(*it);
  }
  return out;
}

std::vector<RedoRecord> SegmentHotLog::RecordsInRange(Lsn lo, Lsn hi) const {
  std::vector<RedoRecord> out;
  for (Iter it = LowerBound(lo); it != records_.end() && it->lsn <= hi;
       ++it) {
    out.push_back(*it);
  }
  return out;
}

void SegmentHotLog::Truncate(const TruncationRange& range) {
  if (range.start == kInvalidLsn) return;
  truncations_.push_back(range);
  // Drop stored records inside the annulled range (a contiguous run in
  // sorted order).
  const Iter lo = LowerBound(range.start);
  Iter hi = lo;
  while (hi != records_.end() && hi->lsn <= range.end) {
    total_bytes_ -= hi->SerializedSize();
    ++hi;
  }
  records_.erase(records_.begin() + (lo - records_.begin()),
                 records_.begin() + (hi - records_.begin()));
  if (scl_ >= range.start) {
    // SCL may not point into the annulled range; rewind to the last kept
    // record on the chain.
    RewindScl();
  }
}

bool SegmentHotLog::Remove(Lsn lsn) {
  const Iter it = LowerBound(lsn);
  if (it == records_.end() || it->lsn != lsn) return false;
  total_bytes_ -= it->SerializedSize();
  records_.erase(records_.begin() + (it - records_.begin()));
  if (scl_ >= lsn) {
    RewindScl();
  }
  return true;
}

bool SegmentHotLog::CorruptPayloadForTest(Lsn lsn) {
  RedoRecord* record = FindMutable(lsn);
  if (record == nullptr || record->payload.empty()) return false;
  // Copy-on-write: the payload buffer is shared with every other holder
  // of this record (peers, retransmission buffers, the archive); only
  // this segment's copy may go bad.
  std::string bytes(record->payload.view());
  bytes[0] = static_cast<char>(bytes[0] ^ 0x40);
  record->payload = Payload(std::move(bytes));
  return true;
}

void SegmentHotLog::EvictBelow(Lsn lsn) {
  // GC is a prefix pop — O(1) per record on the deque.
  while (!records_.empty() && records_.front().lsn <= lsn) {
    total_bytes_ -= records_.front().SerializedSize();
    records_.pop_front();
  }
  gc_floor_ = std::max(gc_floor_, lsn);
}

}  // namespace aurora::log
