#include "src/log/hot_log.h"

#include <algorithm>

namespace aurora::log {

Status SegmentHotLog::Append(const RedoRecord& record) {
  if (record.lsn == kInvalidLsn) {
    return Status::InvalidArgument("record has invalid LSN");
  }
  for (const auto& range : truncations_) {
    if (range.Annuls(record.lsn)) {
      // Late-arriving in-flight write from before a crash: annulled.
      return Status::OK();
    }
  }
  if (records_.contains(record.lsn)) {
    return Status::OK();  // idempotent re-delivery
  }
  if (record.lsn <= gc_floor_ && gc_floor_ != kInvalidLsn) {
    return Status::OK();  // already coalesced + collected
  }
  total_bytes_ += record.SerializedSize();
  chain_next_[record.prev_lsn_segment] = record.lsn;
  records_.emplace(record.lsn, record);
  AdvanceScl();
  return Status::OK();
}

void SegmentHotLog::AdvanceScl() {
  for (;;) {
    auto it = chain_next_.find(scl_);
    if (it == chain_next_.end()) break;
    scl_ = it->second;
  }
}

const RedoRecord* SegmentHotLog::Find(Lsn lsn) const {
  auto it = records_.find(lsn);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<RedoRecord> SegmentHotLog::ChainAfter(Lsn from_scl,
                                                  size_t max_records) const {
  std::vector<RedoRecord> out;
  Lsn cursor = from_scl;
  while (out.size() < max_records) {
    auto it = chain_next_.find(cursor);
    if (it == chain_next_.end()) break;
    auto rec = records_.find(it->second);
    if (rec == records_.end()) break;  // evicted by GC
    out.push_back(rec->second);
    cursor = it->second;
  }
  return out;
}

std::vector<RedoRecord> SegmentHotLog::RecordsAbove(
    Lsn lsn, size_t max_records) const {
  std::vector<RedoRecord> out;
  for (auto it = records_.upper_bound(lsn);
       it != records_.end() && out.size() < max_records; ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<RedoRecord> SegmentHotLog::RecordsInRange(Lsn lo, Lsn hi) const {
  std::vector<RedoRecord> out;
  for (auto it = records_.lower_bound(lo);
       it != records_.end() && it->first <= hi; ++it) {
    out.push_back(it->second);
  }
  return out;
}

void SegmentHotLog::Truncate(const TruncationRange& range) {
  if (range.start == kInvalidLsn) return;
  truncations_.push_back(range);
  // Drop stored records inside the annulled range and their chain edges.
  auto it = records_.lower_bound(range.start);
  while (it != records_.end() && it->first <= range.end) {
    auto edge = chain_next_.find(it->second.prev_lsn_segment);
    if (edge != chain_next_.end() && edge->second == it->first) {
      chain_next_.erase(edge);
    }
    total_bytes_ -= it->second.SerializedSize();
    it = records_.erase(it);
  }
  if (scl_ >= range.start) {
    // SCL may not point into the annulled range; rewind to last kept
    // record on the chain.
    scl_ = kInvalidLsn;
    AdvanceScl();
  }
}

bool SegmentHotLog::Remove(Lsn lsn) {
  auto it = records_.find(lsn);
  if (it == records_.end()) return false;
  auto edge = chain_next_.find(it->second.prev_lsn_segment);
  if (edge != chain_next_.end() && edge->second == lsn) {
    chain_next_.erase(edge);
  }
  total_bytes_ -= it->second.SerializedSize();
  records_.erase(it);
  if (scl_ >= lsn) {
    scl_ = kInvalidLsn;
    AdvanceScl();
  }
  return true;
}

void SegmentHotLog::EvictBelow(Lsn lsn) {
  auto it = records_.begin();
  while (it != records_.end() && it->first <= lsn) {
    total_bytes_ -= it->second.SerializedSize();
    it = records_.erase(it);
  }
  gc_floor_ = std::max(gc_floor_, lsn);
}

}  // namespace aurora::log
