// Per-segment "hot log": the storage-node-resident portion of the redo log
// that has not yet been coalesced into data blocks.
//
// Implements the SCL (Segment Complete LSN) bookkeeping of §2.3: SCL is the
// inclusive upper bound on log records continuously linked through the
// segment chain without gaps. Because writes may be lost for any reason,
// records arrive out of order and with holes; SCL only advances along the
// unbroken chain, and the gap structure drives peer gossip.
//
// Storage is a FLAT monotonic structure, not a node-based map: a single
// writer allocates LSNs monotonically, so records arrive (mostly) in
// ascending order. They live in a deque sorted by LSN — appends at the
// back are O(1) with no per-record node allocation, the rare out-of-order
// arrival inserts at its sorted position, lookups are binary searches, and
// GC pops a prefix. The segment chain needs no edge map either: in sorted
// order, record i+1 extends the chain iff its prev_lsn_segment equals
// record i's LSN. Chain-walk anchoring below the GC floor uses the floor
// itself (everything at or below it was chain-complete when evicted).

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/log/record.h"

namespace aurora::log {

/// A truncation range recorded during crash recovery (§2.4): all records
/// with LSN in [start, end] are annulled, even if in-flight writes for them
/// land after recovery completes.
struct TruncationRange {
  Lsn start = kInvalidLsn;  // first annulled LSN
  Lsn end = kInvalidLsn;    // last annulled LSN (inclusive)
  bool Annuls(Lsn lsn) const {
    return start != kInvalidLsn && lsn >= start && lsn <= end;
  }
  bool operator==(const TruncationRange&) const = default;
};

/// Storage for one segment's redo records, with chain-based completeness
/// tracking.
class SegmentHotLog {
 public:
  /// Appends a record. Idempotent: re-appending an LSN already present is
  /// OK (quorum writes retry). Records annulled by a truncation range are
  /// silently ignored (§2.4: in-flight operations completing during crash
  /// recovery must be ignored).
  Status Append(const RedoRecord& record);

  /// Segment Complete LSN: highest LSN reachable from the chain start with
  /// no gaps. kInvalidLsn if nothing is complete yet.
  Lsn scl() const { return scl_; }

  bool Contains(Lsn lsn) const;
  const RedoRecord* Find(Lsn lsn) const;

  size_t RecordCount() const { return records_.size(); }
  uint64_t TotalBytes() const { return total_bytes_; }

  /// Records on the segment chain strictly above `from_scl`, in chain
  /// order, up to `max_records`. This is the gossip reply (§2.3): a peer
  /// advertises its SCL and receives the records it is missing.
  std::vector<RedoRecord> ChainAfter(Lsn from_scl, size_t max_records) const;

  /// Records held above the current SCL (the out-of-order tail); used by
  /// gossip to also fill holes below a stalled chain head.
  std::vector<RedoRecord> RecordsAbove(Lsn lsn, size_t max_records) const;

  /// All records in [lo, hi], LSN order (backup / repair reads).
  std::vector<RedoRecord> RecordsInRange(Lsn lo, Lsn hi) const;

  /// Installs a truncation range: drops stored records inside it and
  /// refuses future appends inside it. Ranges accumulate across repeated
  /// crash recoveries.
  void Truncate(const TruncationRange& range);

  const std::vector<TruncationRange>& truncations() const {
    return truncations_;
  }

  /// Drops records at or below `lsn` that have been coalesced and backed
  /// up (GC, §2.1 activity 7). Chain completeness below SCL is preserved
  /// logically by remembering the GC floor.
  void EvictBelow(Lsn lsn);

  /// Removes one record (scrub found it corrupt). SCL rewinds if the
  /// removal breaks the chain; gossip is expected to re-fill the hole.
  /// Returns true if the record was present.
  bool Remove(Lsn lsn);

  /// Test hook: replaces a stored record's payload with a copy whose first
  /// byte is flipped. Copy-on-write — payload buffers are shared across
  /// the fleet, so corrupting THIS segment's copy must not touch peers.
  bool CorruptPayloadForTest(Lsn lsn);

  Lsn gc_floor() const { return gc_floor_; }

 private:
  using Iter = std::deque<RedoRecord>::const_iterator;

  /// First stored record with LSN >= lsn (binary search; deque iterators
  /// are random-access).
  Iter LowerBound(Lsn lsn) const;
  RedoRecord* FindMutable(Lsn lsn);
  void AdvanceScl();
  /// Recomputes SCL from the chain anchor after a removal mid-chain.
  void RewindScl();
  bool Annulled(Lsn lsn) const;

  /// Sorted by LSN; contiguous prefix is the chain, back is the
  /// out-of-order tail.
  std::deque<RedoRecord> records_;
  Lsn scl_ = kInvalidLsn;
  Lsn gc_floor_ = kInvalidLsn;
  uint64_t total_bytes_ = 0;
  std::vector<TruncationRange> truncations_;
};

}  // namespace aurora::log
