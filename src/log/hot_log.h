// Per-segment "hot log": the storage-node-resident portion of the redo log
// that has not yet been coalesced into data blocks.
//
// Implements the SCL (Segment Complete LSN) bookkeeping of §2.3: SCL is the
// inclusive upper bound on log records continuously linked through the
// segment chain without gaps. Because writes may be lost for any reason,
// records arrive out of order and with holes; SCL only advances along the
// unbroken chain, and the gap structure drives peer gossip.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/log/record.h"

namespace aurora::log {

/// A truncation range recorded during crash recovery (§2.4): all records
/// with LSN in [start, end] are annulled, even if in-flight writes for them
/// land after recovery completes.
struct TruncationRange {
  Lsn start = kInvalidLsn;  // first annulled LSN
  Lsn end = kInvalidLsn;    // last annulled LSN (inclusive)
  bool Annuls(Lsn lsn) const {
    return start != kInvalidLsn && lsn >= start && lsn <= end;
  }
  bool operator==(const TruncationRange&) const = default;
};

/// Storage for one segment's redo records, with chain-based completeness
/// tracking.
class SegmentHotLog {
 public:
  /// Appends a record. Idempotent: re-appending an LSN already present is
  /// OK (quorum writes retry). Records annulled by a truncation range are
  /// silently ignored (§2.4: in-flight operations completing during crash
  /// recovery must be ignored).
  Status Append(const RedoRecord& record);

  /// Segment Complete LSN: highest LSN reachable from the chain start with
  /// no gaps. kInvalidLsn if nothing is complete yet.
  Lsn scl() const { return scl_; }

  bool Contains(Lsn lsn) const { return records_.contains(lsn); }
  const RedoRecord* Find(Lsn lsn) const;

  size_t RecordCount() const { return records_.size(); }
  uint64_t TotalBytes() const { return total_bytes_; }

  /// Records on the segment chain strictly above `from_scl`, in chain
  /// order, up to `max_records`. This is the gossip reply (§2.3): a peer
  /// advertises its SCL and receives the records it is missing.
  std::vector<RedoRecord> ChainAfter(Lsn from_scl, size_t max_records) const;

  /// Records held above the current SCL (the out-of-order tail); used by
  /// gossip to also fill holes below a stalled chain head.
  std::vector<RedoRecord> RecordsAbove(Lsn lsn, size_t max_records) const;

  /// All records in [lo, hi], LSN order (backup / repair reads).
  std::vector<RedoRecord> RecordsInRange(Lsn lo, Lsn hi) const;

  /// Installs a truncation range: drops stored records inside it and
  /// refuses future appends inside it. Ranges accumulate across repeated
  /// crash recoveries.
  void Truncate(const TruncationRange& range);

  const std::vector<TruncationRange>& truncations() const {
    return truncations_;
  }

  /// Drops records at or below `lsn` that have been coalesced and backed
  /// up (GC, §2.1 activity 7). Chain completeness below SCL is preserved
  /// logically by remembering the GC floor.
  void EvictBelow(Lsn lsn);

  /// Removes one record (scrub found it corrupt). SCL rewinds if the
  /// removal breaks the chain; gossip is expected to re-fill the hole.
  /// Returns true if the record was present.
  bool Remove(Lsn lsn);

  Lsn gc_floor() const { return gc_floor_; }

 private:
  void AdvanceScl();

  std::map<Lsn, RedoRecord> records_;
  // segment-chain edges: prev_lsn_segment -> lsn
  std::map<Lsn, Lsn> chain_next_;
  Lsn scl_ = kInvalidLsn;
  Lsn gc_floor_ = kInvalidLsn;
  uint64_t total_bytes_ = 0;
  std::vector<TruncationRange> truncations_;
};

}  // namespace aurora::log
