// Writer-side record batching ("boxcarring") policies.
//
// §2.2: many databases boxcar redo writes, trading latency for packing;
// waiting creates jitter, worst at low load when the boxcar times out.
// Aurora instead submits the asynchronous network operation when the FIRST
// record enters the boxcar but keeps filling the buffer until the operation
// actually executes — no induced latency, yet records still pack together.
//
// Both policies are implemented so the C2 benchmark can contrast them.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/types.h"
#include "src/log/record.h"
#include "src/sim/simulator.h"

namespace aurora::log {

/// How a batch decides it is ready to leave.
enum class BoxcarPolicy {
  /// Aurora: dispatch is scheduled as soon as the first record arrives;
  /// everything added before the dispatch executes rides along.
  kSubmitOnFirst,
  /// Baseline: wait for the batch to fill or a timeout since the first
  /// record, whichever comes first.
  kFillOrTimeout,
  /// kSubmitOnFirst with a load-adaptive dispatch delay: when batches
  /// leave at least half full the delay doubles (up to
  /// `adaptive_max_delay`) so heavier traffic packs more records per
  /// request; when they leave sparse it halves back toward
  /// `dispatch_delay`, restoring the low-latency behaviour at low load.
  /// The adaptation reads only local batch history, so schedules stay
  /// deterministic. Opt-in (benchmarks, throughput-oriented workloads);
  /// the default policy is unchanged.
  kAdaptive,
};

struct BoxcarOptions {
  BoxcarPolicy policy = BoxcarPolicy::kSubmitOnFirst;
  /// Delay between scheduling the async network op and its execution
  /// (kernel/NIC queue time). Applies to kSubmitOnFirst.
  SimDuration dispatch_delay = 20;
  /// Timeout since first record for kFillOrTimeout.
  SimDuration fill_timeout = 4 * kMillisecond;
  /// Ceiling for the kAdaptive dispatch delay.
  SimDuration adaptive_max_delay = 320;
  /// Batch is dispatched immediately once it reaches this many bytes.
  uint64_t max_batch_bytes = 32 * 1024;
};

/// Batches records destined for one storage segment and invokes a flush
/// callback with each completed batch.
class BoxcarBatcher {
 public:
  using FlushFn = std::function<void(std::vector<RedoRecord>)>;

  BoxcarBatcher(sim::Simulator* sim, BoxcarOptions options, FlushFn flush);

  /// Adds a record to the open batch, possibly scheduling or triggering a
  /// dispatch per policy.
  void Add(RedoRecord record);

  /// Force-dispatches the open batch (used at shutdown / crash points).
  void Flush();

  uint64_t batches_sent() const { return batches_sent_; }
  uint64_t records_sent() const { return records_sent_; }

  /// Mean records per dispatched batch (packing efficiency metric for C2).
  double MeanBatchFill() const {
    return batches_sent_ == 0
               ? 0.0
               : static_cast<double>(records_sent_) /
                     static_cast<double>(batches_sent_);
  }

  /// Current kAdaptive dispatch delay (== dispatch_delay for the other
  /// policies).
  SimDuration CurrentDelay() const { return current_delay_; }

 private:
  void Dispatch();

  sim::Simulator* sim_;
  BoxcarOptions options_;
  FlushFn flush_;
  std::vector<RedoRecord> open_batch_;
  uint64_t open_bytes_ = 0;
  SimDuration current_delay_ = 0;  // set from options in the constructor
  sim::EventId pending_dispatch_ = sim::kInvalidEvent;
  uint64_t batches_sent_ = 0;
  uint64_t records_sent_ = 0;
};

}  // namespace aurora::log
