#include "src/log/boxcar.h"

#include <algorithm>

namespace aurora::log {

BoxcarBatcher::BoxcarBatcher(sim::Simulator* sim, BoxcarOptions options,
                             FlushFn flush)
    : sim_(sim),
      options_(options),
      flush_(std::move(flush)),
      current_delay_(options.dispatch_delay) {}

void BoxcarBatcher::Add(RedoRecord record) {
  const bool was_empty = open_batch_.empty();
  open_bytes_ += record.SerializedSize();
  open_batch_.push_back(std::move(record));

  if (open_bytes_ >= options_.max_batch_bytes) {
    Dispatch();
    return;
  }
  if (was_empty) {
    const SimDuration delay = options_.policy == BoxcarPolicy::kFillOrTimeout
                                  ? options_.fill_timeout
                                  : current_delay_;
    pending_dispatch_ = sim_->Schedule(delay, [this]() {
      pending_dispatch_ = sim::kInvalidEvent;
      Dispatch();
    });
  }
}

void BoxcarBatcher::Flush() { Dispatch(); }

void BoxcarBatcher::Dispatch() {
  if (pending_dispatch_ != sim::kInvalidEvent) {
    sim_->Cancel(pending_dispatch_);
    pending_dispatch_ = sim::kInvalidEvent;
  }
  if (open_batch_.empty()) return;
  batches_sent_++;
  records_sent_ += open_batch_.size();
  if (options_.policy == BoxcarPolicy::kAdaptive) {
    // Half-full departures mean traffic outpaces the window: widen it to
    // pack more. Sparse departures shrink back toward the base delay so a
    // quiet tenant is not taxed with batching latency it cannot use.
    if (open_bytes_ >= options_.max_batch_bytes / 2) {
      current_delay_ = std::min(current_delay_ * 2,
                                options_.adaptive_max_delay);
    } else {
      current_delay_ = std::max(current_delay_ / 2,
                                options_.dispatch_delay);
    }
  }
  std::vector<RedoRecord> batch;
  batch.swap(open_batch_);
  open_bytes_ = 0;
  flush_(std::move(batch));
}

}  // namespace aurora::log
