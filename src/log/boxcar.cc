#include "src/log/boxcar.h"

namespace aurora::log {

BoxcarBatcher::BoxcarBatcher(sim::Simulator* sim, BoxcarOptions options,
                             FlushFn flush)
    : sim_(sim), options_(options), flush_(std::move(flush)) {}

void BoxcarBatcher::Add(RedoRecord record) {
  const bool was_empty = open_batch_.empty();
  open_bytes_ += record.SerializedSize();
  open_batch_.push_back(std::move(record));

  if (open_bytes_ >= options_.max_batch_bytes) {
    Dispatch();
    return;
  }
  if (was_empty) {
    const SimDuration delay = options_.policy == BoxcarPolicy::kSubmitOnFirst
                                  ? options_.dispatch_delay
                                  : options_.fill_timeout;
    pending_dispatch_ = sim_->Schedule(delay, [this]() {
      pending_dispatch_ = sim::kInvalidEvent;
      Dispatch();
    });
  }
}

void BoxcarBatcher::Flush() { Dispatch(); }

void BoxcarBatcher::Dispatch() {
  if (pending_dispatch_ != sim::kInvalidEvent) {
    sim_->Cancel(pending_dispatch_);
    pending_dispatch_ = sim::kInvalidEvent;
  }
  if (open_batch_.empty()) return;
  batches_sent_++;
  records_sent_ += open_batch_.size();
  std::vector<RedoRecord> batch;
  batch.swap(open_batch_);
  open_bytes_ = 0;
  flush_(std::move(batch));
}

}  // namespace aurora::log
