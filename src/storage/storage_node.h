// A storage node (segment server): hosts segments, runs the Figure-2
// activity pipeline.
//
// Foreground: (1) receive redo records, (2) append to the update queue on
// disk and acknowledge. Background: (3) sort/group into the hot log,
// (4) gossip with peers to fill holes, (5) coalesce records into data
// blocks, (6) archive to the object store, (7) garbage-collect, (8) scrub
// checksums. Crucially, storage nodes "do not have a vote in determining
// whether to accept a write, they must do so" (§2.3) — every handler is
// idempotent and works from local state only.
//
// Multi-tenancy (DESIGN.md §11): one server hosts segments from MANY
// volumes, filed under (volume, pg, segment). Per-tenant accounting is
// always on (TenantStats); fair scheduling of the shared disk is opt-in
// (`fair_scheduler`): incoming writes queue per tenant and a
// deficit-round-robin scheduler dispatches them, so an aggressive tenant
// cannot starve a quiet co-tenant's commits. The default (scheduler off)
// preserves the single-tenant fast path bit-for-bit.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "src/common/metrics.h"

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/sim/network.h"
#include "src/sim/rpc.h"
#include "src/sim/simulator.h"
#include "src/storage/disk.h"
#include "src/storage/messages.h"
#include "src/storage/object_store.h"
#include "src/storage/segment_store.h"

namespace aurora::storage {

struct StorageNodeOptions {
  DiskOptions disk;
  SimDuration gossip_interval = 100 * kMillisecond;
  SimDuration coalesce_interval = 5 * kMillisecond;
  SimDuration backup_interval = 100 * kMillisecond;
  SimDuration gc_interval = 500 * kMillisecond;
  SimDuration scrub_interval = 30 * kSecond;
  size_t coalesce_batch = 1024;
  size_t gossip_batch = 1024;
  size_t backup_batch = 4096;
  /// If false, no periodic timers are scheduled; tests drive stages
  /// manually via the Run*Once methods.
  bool background_enabled = true;
  /// Multi-tenant QoS (DESIGN.md §11). Off (default): writes go straight
  /// to the disk queue — the legacy single-tenant path, bit-identical to
  /// pre-multi-tenant schedules. On: writes enqueue per tenant and a
  /// deficit-round-robin scheduler owns dispatch order, bounding how far
  /// a noisy tenant can push a quiet one's ack latency.
  bool fair_scheduler = false;
  /// DRR quantum: bytes of dispatch credit a backlogged tenant earns per
  /// scheduling round. Every backlogged tenant earns a quantum each
  /// round, so no tenant can starve (see DESIGN.md §11 for the
  /// argument). Smaller = tighter fairness, larger = fewer switches.
  /// The default is deliberately a few redo records, not tens of KB: a
  /// backlogged tenant may burst roughly quantum/record-cost consecutive
  /// disk ops when its turn comes, so the quantum directly sets the
  /// co-tenant latency floor (quantum bytes / disk service rate), and a
  /// 16 KB quantum would let a saturating tenant hold the disk for
  /// multiple milliseconds per round (C11's noisy-neighbor cell).
  uint64_t fair_quantum_bytes = 512;
};

/// Per-tenant accounting on one segment server (always maintained;
/// `aurora.tenant.*` metrics mirror these when the registry is enabled).
struct TenantStats {
  uint64_t records = 0;     ///< redo records received for this tenant
  uint64_t bytes = 0;       ///< serialized redo bytes received
  uint64_t dispatched = 0;  ///< write requests handed to the disk
  uint64_t throttled = 0;   ///< DRR turns skipped with backlog (deficit
                            ///< exhausted — fair-share deferrals)
  size_t queue_depth = 0;   ///< current fair-scheduler queue depth
};

/// Resolves a peer node id to its StorageNode instance (cluster
/// directory); the network still mediates latency and liveness.
class StorageNode;
using NodeResolver = std::function<StorageNode*(NodeId)>;

class StorageNode : public sim::NodeLifecycleListener {
 public:
  StorageNode(sim::Simulator* sim, sim::Network* network, NodeId id,
              AzId az, ObjectStore* object_store,
              StorageNodeOptions options = {});

  NodeId id() const { return id_; }
  AzId az() const { return az_; }
  SimDisk& disk() { return disk_; }

  void SetResolver(NodeResolver resolver) { resolver_ = std::move(resolver); }

  /// Hosts a new segment on this node.
  SegmentStore* AddSegment(quorum::SegmentInfo info, ProtectionGroupId pg,
                           quorum::PgConfig config, VolumeEpoch volume_epoch,
                           bool hydrated = true);

  SegmentStore* FindSegment(SegmentId segment);
  /// Tenant-qualified lookup: the (volume, pg, segment) key under which a
  /// shared segment server files each hosted replica.
  SegmentStore* FindSegment(VolumeId volume, ProtectionGroupId pg,
                            SegmentId segment);
  const std::map<SegmentId, std::unique_ptr<SegmentStore>>& segments() const {
    return segments_;
  }
  /// Visits this server's segments belonging to `volume`, in (pg, segment)
  /// order.
  void ForEachTenantSegment(VolumeId volume,
                            const std::function<void(SegmentStore*)>& fn);
  /// Accounting for one tenant (zeroes if the tenant never wrote here).
  TenantStats tenant_stats(VolumeId volume) const;
  /// Tenants with accounting state on this server, ascending.
  std::vector<VolumeId> TenantIds() const;

  /// Removes a segment (after a committed membership change away from it).
  void DropSegment(SegmentId segment);

  // -- RPC handlers (invoked at this node after request delivery) --------
  void HandleWrite(const WriteRequest& request,
                   sim::ReplyFn<WriteAck> reply);
  void HandleReadPage(const ReadPageRequest& request,
                      sim::ReplyFn<ReadPageResponse> reply);
  void HandleSegmentState(const SegmentStateRequest& request,
                          sim::ReplyFn<SegmentStateResponse> reply);
  void HandleTailRecords(const TailRecordsRequest& request,
                         sim::ReplyFn<TailRecordsResponse> reply);
  void HandleGossip(const GossipRequest& request,
                    sim::ReplyFn<GossipResponse> reply);
  void HandleMembershipUpdate(const MembershipUpdateRequest& request,
                              sim::ReplyFn<MembershipUpdateResponse> reply);
  void HandleVolumeEpochUpdate(const VolumeEpochUpdateRequest& request,
                               sim::ReplyFn<VolumeEpochUpdateResponse> reply);
  void HandleHydration(const HydrationRequest& request,
                       sim::ReplyFn<HydrationResponse> reply);

  // -- Background stages (also runnable manually for tests) --------------
  void StartBackground();
  void RunGossipOnce();
  void RunCoalesceOnce();
  void RunBackupOnce();
  void RunGcOnce();
  void RunScrubOnce();

  /// Drives hydration of a local (replacement) segment by pulling from a
  /// donor peer until the segment reports hydrated (§4.2 repair).
  void StartHydrationPull(SegmentId local_segment);

  // -- Lifecycle ----------------------------------------------------------
  void OnCrash() override;
  void OnRestart() override;

  bool IsUp() const { return network_->IsUp(id_); }

 private:
  template <typename Fn>
  void Every(SimDuration interval, Fn fn);

  void GossipSegment(SegmentStore* segment);

  /// One queued (not yet dispatched) tenant write under the fair
  /// scheduler. The reply is deferred with it: acks happen only after the
  /// scheduler grants the disk slot and the durable append completes.
  struct TenantWrite {
    WriteRequest request;
    sim::ReplyFn<WriteAck> reply;
    SimTime enqueued_at = 0;
    uint64_t cost = 1;  ///< serialized redo bytes — the DRR currency
  };

  /// Per-tenant scheduler + accounting state.
  struct TenantState {
    std::deque<TenantWrite> queue;
    uint64_t deficit = 0;  ///< DRR credit in bytes; reset when idle
    TenantStats stats;
    metrics::Counter* m_records = nullptr;
    metrics::Counter* m_bytes = nullptr;
    metrics::Counter* m_throttled = nullptr;
    metrics::Gauge* m_queue_depth = nullptr;
    Histogram* m_sched_wait = nullptr;
  };

  TenantState& TenantFor(VolumeId volume);
  void EnqueueTenantWrite(SegmentStore* segment, const WriteRequest& request,
                          sim::ReplyFn<WriteAck> reply);
  /// DRR scan: serves the next affordable head-of-queue request, earning
  /// quanta for backlogged tenants whose turn comes up short.
  void DispatchNextTenantWrite();
  void ServeTenantWrite(TenantWrite entry);

  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId id_;
  AzId az_;
  ObjectStore* object_store_;
  StorageNodeOptions options_;
  SimDisk disk_;
  Rng rng_;
  NodeResolver resolver_;
  std::map<SegmentId, std::unique_ptr<SegmentStore>> segments_;
  /// Tenant-qualified directory of `segments_`: (volume, pg, segment) →
  /// store. Kept in lockstep by AddSegment/DropSegment.
  std::map<std::tuple<VolumeId, ProtectionGroupId, SegmentId>, SegmentStore*>
      tenant_index_;
  /// Fair-scheduler queues and per-tenant accounting, keyed by volume.
  std::map<VolumeId, TenantState> tenants_;
  /// True while a DRR dispatch→disk-completion chain is running; the
  /// chain re-arms itself until every tenant queue drains.
  bool drain_active_ = false;
  /// Next tenant to consider in round-robin order (wraps).
  VolumeId drr_cursor_ = 0;
  std::map<SegmentId, uint64_t> hydration_tokens_;
  /// Consecutive gossip rounds in which a peer was ahead of the local
  /// segment but had nothing linkable to send (its hot log was coalesced
  /// and GC'd below our SCL). Two such rounds escalate the catch-up to the
  /// archive tier; any productive or caught-up round resets the count.
  std::map<SegmentId, int> gossip_behind_rounds_;
  bool background_started_ = false;
};

}  // namespace aurora::storage
