// A storage node: hosts segments, runs the Figure-2 activity pipeline.
//
// Foreground: (1) receive redo records, (2) append to the update queue on
// disk and acknowledge. Background: (3) sort/group into the hot log,
// (4) gossip with peers to fill holes, (5) coalesce records into data
// blocks, (6) archive to the object store, (7) garbage-collect, (8) scrub
// checksums. Crucially, storage nodes "do not have a vote in determining
// whether to accept a write, they must do so" (§2.3) — every handler is
// idempotent and works from local state only.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/sim/network.h"
#include "src/sim/rpc.h"
#include "src/sim/simulator.h"
#include "src/storage/disk.h"
#include "src/storage/messages.h"
#include "src/storage/object_store.h"
#include "src/storage/segment_store.h"

namespace aurora::storage {

struct StorageNodeOptions {
  DiskOptions disk;
  SimDuration gossip_interval = 100 * kMillisecond;
  SimDuration coalesce_interval = 5 * kMillisecond;
  SimDuration backup_interval = 100 * kMillisecond;
  SimDuration gc_interval = 500 * kMillisecond;
  SimDuration scrub_interval = 30 * kSecond;
  size_t coalesce_batch = 1024;
  size_t gossip_batch = 1024;
  size_t backup_batch = 4096;
  /// If false, no periodic timers are scheduled; tests drive stages
  /// manually via the Run*Once methods.
  bool background_enabled = true;
};

/// Resolves a peer node id to its StorageNode instance (cluster
/// directory); the network still mediates latency and liveness.
class StorageNode;
using NodeResolver = std::function<StorageNode*(NodeId)>;

class StorageNode : public sim::NodeLifecycleListener {
 public:
  StorageNode(sim::Simulator* sim, sim::Network* network, NodeId id,
              AzId az, ObjectStore* object_store,
              StorageNodeOptions options = {});

  NodeId id() const { return id_; }
  AzId az() const { return az_; }
  SimDisk& disk() { return disk_; }

  void SetResolver(NodeResolver resolver) { resolver_ = std::move(resolver); }

  /// Hosts a new segment on this node.
  SegmentStore* AddSegment(quorum::SegmentInfo info, ProtectionGroupId pg,
                           quorum::PgConfig config, VolumeEpoch volume_epoch,
                           bool hydrated = true);

  SegmentStore* FindSegment(SegmentId segment);
  const std::map<SegmentId, std::unique_ptr<SegmentStore>>& segments() const {
    return segments_;
  }

  /// Removes a segment (after a committed membership change away from it).
  void DropSegment(SegmentId segment);

  // -- RPC handlers (invoked at this node after request delivery) --------
  void HandleWrite(const WriteRequest& request,
                   sim::ReplyFn<WriteAck> reply);
  void HandleReadPage(const ReadPageRequest& request,
                      sim::ReplyFn<ReadPageResponse> reply);
  void HandleSegmentState(const SegmentStateRequest& request,
                          sim::ReplyFn<SegmentStateResponse> reply);
  void HandleTailRecords(const TailRecordsRequest& request,
                         sim::ReplyFn<TailRecordsResponse> reply);
  void HandleGossip(const GossipRequest& request,
                    sim::ReplyFn<GossipResponse> reply);
  void HandleMembershipUpdate(const MembershipUpdateRequest& request,
                              sim::ReplyFn<MembershipUpdateResponse> reply);
  void HandleVolumeEpochUpdate(const VolumeEpochUpdateRequest& request,
                               sim::ReplyFn<VolumeEpochUpdateResponse> reply);
  void HandleHydration(const HydrationRequest& request,
                       sim::ReplyFn<HydrationResponse> reply);

  // -- Background stages (also runnable manually for tests) --------------
  void StartBackground();
  void RunGossipOnce();
  void RunCoalesceOnce();
  void RunBackupOnce();
  void RunGcOnce();
  void RunScrubOnce();

  /// Drives hydration of a local (replacement) segment by pulling from a
  /// donor peer until the segment reports hydrated (§4.2 repair).
  void StartHydrationPull(SegmentId local_segment);

  // -- Lifecycle ----------------------------------------------------------
  void OnCrash() override;
  void OnRestart() override;

  bool IsUp() const { return network_->IsUp(id_); }

 private:
  template <typename Fn>
  void Every(SimDuration interval, Fn fn);

  void GossipSegment(SegmentStore* segment);

  sim::Simulator* sim_;
  sim::Network* network_;
  NodeId id_;
  AzId az_;
  ObjectStore* object_store_;
  StorageNodeOptions options_;
  SimDisk disk_;
  Rng rng_;
  NodeResolver resolver_;
  std::map<SegmentId, std::unique_ptr<SegmentStore>> segments_;
  std::map<SegmentId, uint64_t> hydration_tokens_;
  /// Consecutive gossip rounds in which a peer was ahead of the local
  /// segment but had nothing linkable to send (its hot log was coalesced
  /// and GC'd below our SCL). Two such rounds escalate the catch-up to the
  /// archive tier; any productive or caught-up round resets the count.
  std::map<SegmentId, int> gossip_behind_rounds_;
  bool background_started_ = false;
};

}  // namespace aurora::storage
