// Data block (page) model and redo page operations.
//
// §2.2: "No data blocks are written from the database instance... redo log
// application code is run within the storage nodes, materializing blocks in
// background or on-demand to satisfy a read request." This header defines
// the page structure shared by the storage nodes (materialization), the
// writer's buffer cache, and replicas (cache application) — all three apply
// the SAME PageOp payloads, which is what makes log application idempotent
// and location-independent.
//
// Pages are B+-tree nodes: sorted key→value entries plus header fields.
// Values are opaque to storage; the transaction layer encodes row versions
// (txn id + undo pointer) inside them.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace aurora::storage {

/// Sorted key→value entry set with structurally-shared storage.
///
/// The storage nodes retain many materialized versions of each block
/// (MVCC reads, §3.1), and coalescing produces a new version per applied
/// redo record. With a plain std::map every new version deep-copies every
/// entry — measured at ~3/4 of the C7 write-path wall time. PageEntries
/// keeps entries as refcounted immutable (key, value) pairs in a sorted
/// vector: copying a page copies N pointers, and applying one PageOp
/// replaces exactly one pointer, so adjacent versions share all unchanged
/// entries. The map-like read interface (find/at/contains/lower_bound/
/// upper_bound/ordered iteration) is preserved so the B-tree and the
/// buffer cache are representation-agnostic; mutation happens only through
/// ApplyPageOp's vocabulary (Upsert/Erase/TruncateFrom/clear).
class PageEntries {
 public:
  using Entry = std::pair<std::string, std::string>;

 private:
  using Ptr = std::shared_ptr<const Entry>;
  std::vector<Ptr> entries_;

 public:
  class const_iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = Entry;
    using difference_type = std::ptrdiff_t;
    using pointer = const Entry*;
    using reference = const Entry&;

    const_iterator() = default;
    explicit const_iterator(const Ptr* p) : p_(p) {}

    reference operator*() const { return **p_; }
    pointer operator->() const { return p_->get(); }
    const_iterator& operator++() {
      ++p_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator out = *this;
      ++p_;
      return out;
    }
    const_iterator& operator--() {
      --p_;
      return *this;
    }
    const_iterator operator--(int) {
      const_iterator out = *this;
      --p_;
      return out;
    }
    const_iterator& operator+=(difference_type n) {
      p_ += n;
      return *this;
    }
    const_iterator& operator-=(difference_type n) {
      p_ -= n;
      return *this;
    }
    friend const_iterator operator+(const_iterator it, difference_type n) {
      return it += n;
    }
    friend const_iterator operator-(const_iterator it, difference_type n) {
      return it -= n;
    }
    friend difference_type operator-(const_iterator a, const_iterator b) {
      return a.p_ - b.p_;
    }
    reference operator[](difference_type n) const { return **(p_ + n); }
    friend auto operator<=>(const const_iterator&,
                            const const_iterator&) = default;

   private:
    const Ptr* p_ = nullptr;
  };
  using iterator = const_iterator;

  const_iterator begin() const { return const_iterator(entries_.data()); }
  const_iterator end() const {
    return const_iterator(entries_.data() + entries_.size());
  }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  const_iterator lower_bound(std::string_view key) const {
    return const_iterator(entries_.data() + LowerBoundIndex(key));
  }
  const_iterator upper_bound(std::string_view key) const {
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), key,
        [](std::string_view k, const Ptr& e) { return k < e->first; });
    return const_iterator(entries_.data() + (it - entries_.begin()));
  }
  const_iterator find(std::string_view key) const {
    const size_t i = LowerBoundIndex(key);
    if (i < entries_.size() && entries_[i]->first == key) {
      return const_iterator(entries_.data() + i);
    }
    return end();
  }
  bool contains(std::string_view key) const { return find(key) != end(); }
  const std::string& at(std::string_view key) const {
    auto it = find(key);
    if (it == end()) throw std::out_of_range("PageEntries::at");
    return it->second;
  }

  /// Inserts or replaces one entry. Replacement swaps a single pointer;
  /// versions sharing the old entry are untouched.
  void Upsert(std::string key, std::string value) {
    const size_t i = LowerBoundIndex(key);
    auto entry = std::make_shared<const Entry>(std::move(key),
                                               std::move(value));
    if (i < entries_.size() && entries_[i]->first == entry->first) {
      entries_[i] = std::move(entry);
    } else {
      entries_.insert(entries_.begin() + i, std::move(entry));
    }
  }

  /// Removes one entry (no-op if absent; idempotent application).
  void Erase(std::string_view key) {
    const size_t i = LowerBoundIndex(key);
    if (i < entries_.size() && entries_[i]->first == key) {
      entries_.erase(entries_.begin() + i);
    }
  }

  /// Removes all entries with key >= pivot (split: donor side).
  void TruncateFrom(std::string_view pivot) {
    entries_.resize(LowerBoundIndex(pivot));
  }

  /// Content equality, with a pointer fast path for shared entries.
  bool operator==(const PageEntries& other) const {
    if (entries_.size() != other.entries_.size()) return false;
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Ptr& a = entries_[i];
      const Ptr& b = other.entries_[i];
      if (a != b && *a != *b) return false;
    }
    return true;
  }

 private:
  size_t LowerBoundIndex(std::string_view key) const {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Ptr& e, std::string_view k) { return e->first < k; });
    return static_cast<size_t>(it - entries_.begin());
  }
};

/// What role a page plays in the access method.
enum class PageType : uint8_t {
  kFree = 0,
  kLeaf = 1,
  kInternal = 2,
  kUndo = 3,
  kMeta = 4,
};

/// One materialized data block version. `page_lsn` is the LSN of the last
/// redo record applied; the block chain guarantees records apply in order.
struct Page {
  BlockId id = kInvalidBlock;
  Lsn page_lsn = kInvalidLsn;
  PageType type = PageType::kFree;
  uint16_t level = 0;              // B-tree level (0 = leaf)
  BlockId next = kInvalidBlock;    // right-sibling link for leaf scans
  BlockId prev = kInvalidBlock;    // left-sibling link
  PageEntries entries;

  bool operator==(const Page&) const = default;

  uint64_t SizeBytes() const;
  std::string ToString() const;
};

/// The kinds of physical page changes carried in redo payloads.
enum class PageOpType : uint8_t {
  /// (Re)formats the page with a type/level; clears entries.
  kFormat = 0,
  /// Upserts one entry.
  kInsert = 1,
  /// Removes one entry (no-op if absent; idempotent application).
  kErase = 2,
  /// Sets the sibling links.
  kSetLinks = 3,
  /// Removes all entries with key >= pivot (split: donor side).
  kTruncateFrom = 4,
};

/// A single physical operation on one page. Encoded into
/// RedoRecord::payload; applied identically by storage nodes, the writer's
/// cache, and replica caches.
struct PageOp {
  PageOpType type = PageOpType::kInsert;
  PageType page_type = PageType::kLeaf;  // kFormat
  uint16_t level = 0;                    // kFormat
  std::string key;                       // kInsert/kErase/kTruncateFrom
  std::string value;                     // kInsert
  BlockId next = kInvalidBlock;          // kSetLinks
  BlockId prev = kInvalidBlock;          // kSetLinks

  bool operator==(const PageOp&) const = default;
};

/// Serializes a PageOp into a redo payload.
std::string EncodePageOp(const PageOp& op);

/// Decodes a redo payload; Corruption on malformed input.
Result<PageOp> DecodePageOp(std::string_view payload);

/// Applies `op` to `page` and stamps `lsn` as the new page_lsn. The caller
/// is responsible for ordering (prev_lsn_block chain); application itself
/// is deterministic and total.
Status ApplyPageOp(Page* page, const PageOp& op, Lsn lsn);

/// Convenience: decode + apply a raw redo payload.
Status ApplyRedoPayload(Page* page, std::string_view payload, Lsn lsn);

}  // namespace aurora::storage
