// Data block (page) model and redo page operations.
//
// §2.2: "No data blocks are written from the database instance... redo log
// application code is run within the storage nodes, materializing blocks in
// background or on-demand to satisfy a read request." This header defines
// the page structure shared by the storage nodes (materialization), the
// writer's buffer cache, and replicas (cache application) — all three apply
// the SAME PageOp payloads, which is what makes log application idempotent
// and location-independent.
//
// Pages are B+-tree nodes: sorted key→value entries plus header fields.
// Values are opaque to storage; the transaction layer encodes row versions
// (txn id + undo pointer) inside them.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/common/types.h"

namespace aurora::storage {

/// What role a page plays in the access method.
enum class PageType : uint8_t {
  kFree = 0,
  kLeaf = 1,
  kInternal = 2,
  kUndo = 3,
  kMeta = 4,
};

/// One materialized data block version. `page_lsn` is the LSN of the last
/// redo record applied; the block chain guarantees records apply in order.
struct Page {
  BlockId id = kInvalidBlock;
  Lsn page_lsn = kInvalidLsn;
  PageType type = PageType::kFree;
  uint16_t level = 0;              // B-tree level (0 = leaf)
  BlockId next = kInvalidBlock;    // right-sibling link for leaf scans
  BlockId prev = kInvalidBlock;    // left-sibling link
  std::map<std::string, std::string> entries;

  bool operator==(const Page&) const = default;

  uint64_t SizeBytes() const;
  std::string ToString() const;
};

/// The kinds of physical page changes carried in redo payloads.
enum class PageOpType : uint8_t {
  /// (Re)formats the page with a type/level; clears entries.
  kFormat = 0,
  /// Upserts one entry.
  kInsert = 1,
  /// Removes one entry (no-op if absent; idempotent application).
  kErase = 2,
  /// Sets the sibling links.
  kSetLinks = 3,
  /// Removes all entries with key >= pivot (split: donor side).
  kTruncateFrom = 4,
};

/// A single physical operation on one page. Encoded into
/// RedoRecord::payload; applied identically by storage nodes, the writer's
/// cache, and replica caches.
struct PageOp {
  PageOpType type = PageOpType::kInsert;
  PageType page_type = PageType::kLeaf;  // kFormat
  uint16_t level = 0;                    // kFormat
  std::string key;                       // kInsert/kErase/kTruncateFrom
  std::string value;                     // kInsert
  BlockId next = kInvalidBlock;          // kSetLinks
  BlockId prev = kInvalidBlock;          // kSetLinks

  bool operator==(const PageOp&) const = default;
};

/// Serializes a PageOp into a redo payload.
std::string EncodePageOp(const PageOp& op);

/// Decodes a redo payload; Corruption on malformed input.
Result<PageOp> DecodePageOp(std::string_view payload);

/// Applies `op` to `page` and stamps `lsn` as the new page_lsn. The caller
/// is responsible for ordering (prev_lsn_block chain); application itself
/// is deterministic and total.
Status ApplyPageOp(Page* page, const PageOp& op, Lsn lsn);

/// Convenience: decode + apply a raw redo payload.
Status ApplyRedoPayload(Page* page, std::string_view payload, Lsn lsn);

}  // namespace aurora::storage
